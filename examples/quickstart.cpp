// Quickstart: encode a synthetic sEMG contraction with D-ATC, reconstruct
// the force envelope at the receiver, and print the correlation.
//
//   $ ./quickstart
//
// Walks the minimal API path: force profile -> motor-unit sEMG ->
// encode_datc -> DatcReconstructor -> Pearson score.

#include <cstdio>

#include "core/datc_encoder.hpp"
#include "core/reconstruct.hpp"
#include "core/symbols.hpp"
#include "dsp/envelope.hpp"
#include "dsp/stats.hpp"
#include "emg/generator.hpp"

using namespace datc;
using dsp::Real;

int main() {
  // 1) A 10 s grip: ramp to 60 % MVC, hold, release.
  const auto drive = emg::trapezoid_force(/*level=*/0.6, /*ramp_s=*/1.5,
                                          /*hold_s=*/4.0, /*rest_s=*/1.5,
                                          /*fs_hz=*/2500.0);

  // 2) Synthesise surface EMG through the motor-unit pool and scale to
  //    volts at the comparator input (0.4 V ARV at full MVC).
  dsp::Rng rng(42);
  auto emg_v = emg::synthesize_pool(drive, emg::MotorUnitPoolConfig{}, rng);
  for (auto& v : emg_v.samples()) v *= 0.4;

  // 3) Run the D-ATC transmitter (2 kHz DTC, 4-bit DAC, 100-cycle frames).
  const core::DatcEncoderConfig tx_cfg;
  const auto tx = core::encode_datc(emg_v, tx_cfg);
  std::printf("transmitted %zu events (%zu symbols at %u+1 bits each)\n",
              tx.events.size(),
              core::datc_symbols(tx.events.size()).total,
              tx_cfg.dtc.dac_bits);

  // 4) Receiver: calibrate the crossing-rate curve once, then invert the
  //    event stream into an ARV-envelope estimate.
  core::RateCalibrationConfig cal_cfg;
  cal_cfg.count_fs_hz = tx_cfg.clock_hz;
  const auto cal = std::make_shared<core::RateCalibration>(cal_cfg);
  const core::DatcReconstructor rx(core::ReconstructionConfig{}, cal);
  const auto estimate = rx.reconstruct(tx.events, emg_v.duration_s());

  // 5) Score against the ground-truth ARV envelope.
  const auto truth = dsp::arv_envelope(emg_v.view(), 2500.0, 0.25);
  const std::size_t n = std::min(truth.size(), estimate.size());
  const Real corr = dsp::correlation_percent(
      std::span<const Real>(truth.data(), n),
      std::span<const Real>(estimate.data(), n));
  std::printf("reconstruction correlation vs ARV envelope: %.2f %%\n", corr);
  std::printf("(the paper reports ~96 %% on its 20 s recordings)\n");
  return corr > 80.0 ? 0 : 1;
}
