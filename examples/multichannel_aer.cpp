// Multi-channel example: an 8-electrode forearm array (the AER-based
// multi-channel systems of refs [9] and [12]) sharing a single IR-UWB
// link. Each electrode runs its own D-ATC encoder; events are merged by
// an AER arbiter with a minimum on-air spacing, then split and
// reconstructed per channel at the receiver.
//
//   $ ./multichannel_aer

#include <cstdio>

#include "dsp/stats.hpp"
#include "sim/evaluation.hpp"
#include "sim/table_writer.hpp"
#include "uwb/aer.hpp"

using namespace datc;
using dsp::Real;

int main() {
  constexpr std::size_t kChannels = 8;
  const sim::Evaluator eval;

  // Eight electrodes over different forearm muscles: each sees its own
  // force trace and its own electrode gain.
  std::vector<emg::Recording> recs;
  std::vector<core::EventStream> tx_streams;
  dsp::Rng gain_rng(2013);  // ref [12] year
  for (std::size_t c = 0; c < kChannels; ++c) {
    emg::RecordingSpec spec;
    spec.seed = 9100 + c;
    spec.gain_v = gain_rng.log_uniform(0.2, 0.6);
    spec.duration_s = 10.0;
    spec.name = "electrode" + std::to_string(c);
    recs.push_back(emg::make_recording(spec));
    tx_streams.push_back(
        core::encode_datc(recs.back().emg_v, core::DatcEncoderConfig{})
            .events);
  }

  // AER arbitration: 3 address bits, one packet slot per 0.5 ms.
  uwb::AerConfig aer;
  aer.address_bits = 3;
  aer.min_spacing_s = 0.5e-3;
  aer.max_queue_delay_s = 10e-3;
  uwb::AerStats stats;
  const auto merged = uwb::aer_merge(tx_streams, aer, &stats);
  std::printf(
      "AER link: %zu events offered, %zu sent, %zu dropped, worst queue "
      "delay %.2f ms, %zu symbols/event\n",
      stats.in_events, stats.sent, stats.dropped, stats.max_delay_s * 1e3,
      uwb::aer_symbols_per_event(aer, 4));

  // Receiver side: split by address and reconstruct each channel.
  const auto split = uwb::aer_split(merged, kChannels);
  sim::Table t({"channel", "gain V", "TX events", "RX events", "corr %"});
  Real worst = 100.0;
  for (std::size_t c = 0; c < kChannels; ++c) {
    const auto recon =
        eval.reconstruct_datc(split[c], recs[c].emg_v.duration_s());
    const auto truth = eval.ground_truth(recs[c]);
    const std::size_t n = std::min(recon.size(), truth.size());
    const Real corr = dsp::correlation_percent(
        std::span<const Real>(truth.data(), n),
        std::span<const Real>(recon.data(), n));
    worst = std::min(worst, corr);
    t.add_row({sim::Table::integer(c),
               sim::Table::num(recs[c].spec.gain_v, 2),
               sim::Table::integer(tx_streams[c].size()),
               sim::Table::integer(split[c].size()),
               sim::Table::num(corr, 2)});
  }
  std::printf("\n%s", t.to_text().c_str());
  std::printf("\nworst channel correlation: %.2f %%\n", worst);
  return worst > 80.0 ? 0 : 1;
}
