// Hardware-flow example: run the structural RTL DTC on the comparator
// bitstream of a real encoding, dump a VCD waveform (open it in GTKWave),
// verify cycle-exactness against the behavioural model, and print the
// Table-I synthesis report.
//
//   $ ./hardware_trace [out.vcd]

#include <cstdio>

#include "core/datc_encoder.hpp"
#include "emg/dataset.hpp"
#include "rtl/dtc_rtl.hpp"
#include "rtl/simulator.hpp"
#include "rtl/vcd.hpp"
#include "synth/report.hpp"

using namespace datc;

int main(int argc, char** argv) {
  const std::string vcd_path = argc > 1 ? argv[1] : "dtc_trace.vcd";

  // Stimulus: the comparator bitstream of a real 4 s encoding run.
  emg::RecordingSpec spec;
  spec.seed = 77;
  spec.gain_v = 0.35;
  spec.duration_s = 4.0;
  const auto rec = emg::make_recording(spec);
  const auto tx = core::encode_datc(rec.emg_v, core::DatcEncoderConfig{});
  std::printf("stimulus: %zu DTC clock cycles from a real sEMG encoding\n",
              tx.trace.d_out.size());

  // RTL run with VCD tracing, checked cycle-exact against the behavioural
  // model (the paper's Verilog-vs-Matlab verification).
  const core::DtcConfig cfg;
  rtl::DtcRtl dut(cfg);
  core::Dtc golden(cfg);
  rtl::Simulator sim;
  sim.add(dut);
  rtl::VcdWriter vcd(vcd_path, /*timescale_ns=*/500000.0);  // 2 kHz clock
  for (auto* s : dut.trace_signals()) vcd.track(*s);
  sim.attach_vcd(&vcd);
  sim.reset();

  std::size_t mismatches = 0;
  std::size_t events = 0;
  for (const auto bit : tx.trace.d_out) {
    const bool d_in = bit != 0;
    dut.set_d_in(d_in);
    sim.step();
    const auto expect = golden.step(d_in);
    if (dut.set_vth() != expect.set_vth || dut.event() != expect.event) {
      ++mismatches;
    }
    if (dut.event()) ++events;
  }
  vcd.close();
  std::printf(
      "RTL vs behavioural: %zu mismatches over %zu cycles (%zu events); "
      "VCD written to %s\n",
      mismatches, sim.stats().cycles, events, vcd_path.c_str());
  std::printf("combinational settle depth (max): %zu delta cycles\n",
              sim.stats().max_delta_depth);

  // Synthesis report on the same stimulus.
  std::vector<bool> stim;
  stim.reserve(tx.trace.d_out.size());
  for (const auto b : tx.trace.d_out) stim.push_back(b != 0);
  const auto rep = synth::synthesize_dtc(cfg, stim);
  std::printf("\n%s\n", synth::format_table1(rep).c_str());
  return mismatches == 0 ? 0 : 1;
}
