// Grip-session example: the paper's experimental protocol end to end —
// a cylindrical power grip sweeping 70 % MVC down to rest, encoded with
// both ATC and D-ATC, radiated over the simulated IR-UWB link, decoded by
// the energy-detection receiver, and scored at the laptop.
//
//   $ ./grip_session [seed]

#include <cstdio>
#include <cstdlib>

#include "sim/end_to_end.hpp"
#include "sim/table_writer.hpp"

using namespace datc;
using dsp::Real;

int main(int argc, char** argv) {
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7u;

  // One subject's 20 s session.
  emg::RecordingSpec spec;
  spec.seed = seed;
  spec.gain_v = 0.35;
  spec.name = "grip_session";
  const auto rec = emg::make_recording(spec);
  std::printf("synthesised %zu samples (%.0f s at %.0f Hz), gain %.2f V\n",
              rec.emg_v.size(), rec.emg_v.duration_s(),
              rec.emg_v.sample_rate_hz(), spec.gain_v);

  // Body-area IR-UWB link: 1 m, mild pulse loss.
  sim::LinkConfig link;
  link.modulator.shape.amplitude_v = 0.5;
  link.channel.distance_m = 1.0;
  link.channel.ref_loss_db = 35.0;
  link.channel.erasure_prob = 0.02;

  const sim::EvalConfig eval_cfg;
  const sim::EndToEnd e2e(eval_cfg, link);

  const auto datc_run = e2e.run_datc(rec);
  const auto atc_run = e2e.run_atc(rec, 0.3);

  sim::Table t({"scheme", "TX events", "RX events", "pulses lost",
                "corr % (ideal link)", "corr % (over UWB)"});
  t.add_row({"D-ATC", sim::Table::integer(datc_run.tx_side.num_events),
             sim::Table::integer(datc_run.events_rx),
             sim::Table::integer(datc_run.pulses_erased),
             sim::Table::num(datc_run.tx_side.correlation_pct, 2),
             sim::Table::num(datc_run.rx_side.correlation_pct, 2)});
  t.add_row({"ATC (0.3 V)", sim::Table::integer(atc_run.tx_side.num_events),
             sim::Table::integer(atc_run.events_rx),
             sim::Table::integer(atc_run.pulses_erased),
             sim::Table::num(atc_run.tx_side.correlation_pct, 2),
             sim::Table::num(atc_run.rx_side.correlation_pct, 2)});
  std::printf("\n%s", t.to_text().c_str());

  std::printf(
      "\nUWB decode stats (D-ATC): %zu pulses in, %zu detected, %zu "
      "packets, %zu false-alarm bits\n",
      datc_run.decode.pulses_in, datc_run.decode.pulses_detected,
      datc_run.decode.packets_decoded, datc_run.decode.false_alarm_bits);

  const bool ok = datc_run.rx_side.correlation_pct > 85.0;
  std::printf("\n%s\n", ok ? "session OK: force recovered over the air"
                           : "session DEGRADED: check link budget");
  return ok ? 0 : 1;
}
