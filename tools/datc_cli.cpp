// datc — command-line front end to the library.
//
// `datc` (no arguments) lists the subcommands; `datc <sub> --help` prints
// the detailed per-subcommand reference (flags, defaults, examples).
//
// All I/O is CSV so results pipe straight into plotting tools; the event
// store subcommands (record/query/replay) additionally speak the binary
// segment format under a session directory.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <limits>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "config/factory.hpp"
#include "config/scenario.hpp"
#include "core/atc_encoder.hpp"
#include "core/datc_encoder.hpp"
#include "core/event_io.hpp"
#include "core/reconstruct.hpp"
#include "dsp/envelope.hpp"
#include "dsp/stats.hpp"
#include "emg/dataset.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "runtime/pipeline_runner.hpp"
#include "runtime/session.hpp"
#include "sim/link_sweep.hpp"
#include "config/scenario_grid.hpp"
#include "sim/stream_parity.hpp"
#include "store/log.hpp"
#include "store/recorder.hpp"
#include "store/replay.hpp"
#include "synth/report.hpp"

using namespace datc;
using dsp::Real;

namespace {

using Args = std::map<std::string, std::string>;

Args parse_args(int argc, char** argv, int first) {
  Args args;
  int i = first;
  for (; i + 1 < argc; i += 2) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) {
      throw std::invalid_argument("expected --flag, got " + key);
    }
    args[key.substr(2)] = argv[i + 1];
  }
  if (i < argc) {
    // A trailing flag without a value used to be silently discarded —
    // and a mistyped command would then run with side effects.
    throw std::invalid_argument(std::string("flag without a value: ") +
                                argv[i]);
  }
  return args;
}

Real arg_num(const Args& a, const std::string& key, Real fallback) {
  const auto it = a.find(key);
  return it == a.end() ? fallback : std::stod(it->second);
}

std::string arg_str(const Args& a, const std::string& key,
                    const std::string& fallback) {
  const auto it = a.find(key);
  return it == a.end() ? fallback : it->second;
}

/// Comma-separated numeric list, e.g. --distances 0.5,1,2.
std::vector<Real> arg_num_list(const Args& a, const std::string& key,
                               std::vector<Real> fallback) {
  const auto it = a.find(key);
  if (it == a.end()) return fallback;
  std::vector<Real> out;
  std::istringstream ss(it->second);
  std::string cell;
  while (std::getline(ss, cell, ',')) {
    dsp::require(!cell.empty(), "--" + key + ": empty list element");
    out.push_back(std::stod(cell));
  }
  dsp::require(!out.empty(), "--" + key + ": empty list");
  return out;
}

/// Smallest AER address width covering `channels` endpoints.
unsigned address_bits_for(std::size_t channels) {
  unsigned bits = 0;
  while ((std::size_t{1} << bits) < channels) ++bits;
  return bits;
}

bool write_signal_csv(const std::string& path, const dsp::TimeSeries& sig) {
  std::ofstream f(path);
  if (!f.good()) return false;
  f << "time_s,emg_v\n";
  f.precision(10);
  for (std::size_t i = 0; i < sig.size(); ++i) {
    f << sig.time_of(i) << ',' << sig[i] << '\n';
  }
  return f.good();
}

dsp::TimeSeries read_signal_csv(const std::string& path) {
  std::ifstream f(path);
  dsp::require(f.good(), "cannot open " + path);
  std::string line;
  dsp::require(static_cast<bool>(std::getline(f, line)), "empty file");
  std::vector<Real> t;
  std::vector<Real> v;
  while (std::getline(f, line)) {
    if (line.empty()) continue;
    std::istringstream row(line);
    std::string a;
    std::string b;
    dsp::require(static_cast<bool>(std::getline(row, a, ',')) &&
                     static_cast<bool>(std::getline(row, b, ',')),
                 "bad row: " + line);
    t.push_back(std::stod(a));
    v.push_back(std::stod(b));
  }
  dsp::require(t.size() >= 2, "need at least two samples");
  const Real fs = 1.0 / (t[1] - t[0]);
  return dsp::TimeSeries(std::move(v), fs);
}

/// Incremental time_s,value CSV source: a file or stdin ("-"). Derives
/// the sample rate from the first two rows' time column, so a
/// mis-declared rate cannot silently mis-parameterise the chain.
class SignalCsvSource {
 public:
  explicit SignalCsvSource(const std::string& in) {
    if (in != "-") {
      file_.open(in);
      dsp::require(file_.good(), "cannot open " + in);
      is_ = &file_;
    } else {
      is_ = &std::cin;
    }
    std::string line;
    dsp::require(static_cast<bool>(std::getline(*is_, line)),
                 "signal CSV: empty input");  // header
    Real t0;
    Real t1;
    dsp::require(next_row(&t0, &first_) && next_row(&t1, &second_),
                 "signal CSV: need at least two samples");
    dsp::require(t1 > t0, "signal CSV: time column must be increasing");
    fs_hz_ = 1.0 / (t1 - t0);
  }

  [[nodiscard]] Real sample_rate_hz() const { return fs_hz_; }

  /// Yields every sample value in order (the two header-probe rows
  /// first). False at end of input.
  [[nodiscard]] bool next(Real* v) {
    if (pending_ < 2) {
      *v = pending_ == 0 ? first_ : second_;
      ++pending_;
      return true;
    }
    Real t;
    return next_row(&t, v);
  }

 private:
  [[nodiscard]] bool next_row(Real* t, Real* v) {
    std::string line;
    while (std::getline(*is_, line)) {
      if (line.empty()) continue;
      std::istringstream row(line);
      std::string t_cell;
      std::string v_cell;
      dsp::require(static_cast<bool>(std::getline(row, t_cell, ',')) &&
                       static_cast<bool>(std::getline(row, v_cell, ',')),
                   "bad row: " + line);
      *t = std::stod(t_cell);
      *v = std::stod(v_cell);
      return true;
    }
    return false;
  }

  std::ifstream file_;
  std::istream* is_{nullptr};
  Real fs_hz_{0.0};
  Real first_{0.0};
  Real second_{0.0};
  int pending_{0};
};

// ---------------------------------------------------- scenario plumbing
//
// Every pipeline-running subcommand resolves its parameters into a
// config::ScenarioSpec and builds the chain through PipelineFactory —
// the CLI never wires encoder/link/recon structs by hand. Without
// --scenario, the historical flag defaults are applied on top of the
// spec defaults, so legacy invocations behave identically.

/// Exact decimal form of a Real for set_scenario_key round-trips.
std::string real_str(Real v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

/// One `--flag VALUE` forwarded into a scenario key.
struct FlagKey {
  const char* flag;
  const char* key;
  /// Historical default applied when no --scenario is given; nullptr
  /// leaves the spec's own default.
  const char* legacy_default;
};

/// Flags were historically parsed as doubles then cast (`--seed 1e6`,
/// `--channels 16.0` were accepted), so a flag value whose double form
/// is a non-negative integer is normalised to plain digits before it
/// reaches the strict scenario-key parser. Everything else (fractions,
/// enums, malformed text) passes through for the key's own parser to
/// judge. Scenario FILES stay strict — only the flag surface is lenient.
std::string normalize_flag_value(const std::string& v) {
  std::size_t pos = 0;
  double d = 0.0;
  try {
    d = std::stod(v, &pos);
  } catch (const std::exception&) {
    return v;
  }
  if (pos != v.size() || !std::isfinite(d) || d < 0.0 ||
      d != std::floor(d) || d >= 9.007199254740992e15) {
    return v;  // not an exactly-representable non-negative integer
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.0f", d);
  return buf;
}

/// Builds the spec for a subcommand: `--scenario FILE|PRESET` (else the
/// defaults), explicit flags on top, then free-form `--set "k=v; k=v"`.
config::ScenarioSpec spec_from_args(const Args& a,
                                    std::initializer_list<FlagKey> flags,
                                    const char* cmd_name) {
  const bool have_scenario = a.count("scenario") != 0;
  config::ScenarioSpec spec;
  if (have_scenario) spec = config::load_scenario(a.at("scenario"));
  for (const auto& fk : flags) {
    const auto it = a.find(fk.flag);
    if (it != a.end()) {
      config::set_scenario_key(spec, fk.key,
                               normalize_flag_value(it->second));
    } else if (!have_scenario && fk.legacy_default != nullptr) {
      config::set_scenario_key(spec, fk.key, fk.legacy_default);
    }
  }
  const auto set_it = a.find("set");
  if (set_it != a.end()) {
    for (const auto& axis : config::parse_axes(set_it->second)) {
      dsp::require(axis.values.size() == 1,
                   std::string(cmd_name) +
                       ": --set takes one value per key (use `datc sweep` "
                       "for value lists)");
      config::set_scenario_key(spec, axis.key, axis.values[0]);
    }
  }
  return spec;
}

int cmd_generate(const Args& a) {
  emg::RecordingSpec spec;
  spec.seed = static_cast<std::uint64_t>(arg_num(a, "seed", 1.0));
  spec.gain_v = arg_num(a, "gain", 0.35);
  spec.duration_s = arg_num(a, "duration", 20.0);
  spec.name = "cli";
  const auto rec = emg::make_recording(spec);
  const auto out = arg_str(a, "out", "signal.csv");
  if (!write_signal_csv(out, rec.emg_v)) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  std::printf("wrote %zu samples (%.1f s, gain %.2f V) to %s\n",
              rec.emg_v.size(), spec.duration_s, spec.gain_v, out.c_str());
  return 0;
}

int cmd_encode(const Args& a) {
  const auto sig = read_signal_csv(arg_str(a, "in", "signal.csv"));
  const auto scheme = arg_str(a, "scheme", "datc");
  const auto out = arg_str(a, "out", "events.csv");
  core::EventStream events;
  if (scheme == "datc") {
    const auto r = core::encode_datc(sig, core::DatcEncoderConfig{});
    events = r.events;
  } else if (scheme == "atc") {
    core::AtcEncoderConfig cfg;
    cfg.threshold_v = arg_num(a, "vth", 0.3);
    events = core::encode_atc(sig, cfg).events;
  } else {
    std::fprintf(stderr, "unknown scheme '%s' (datc|atc)\n", scheme.c_str());
    return 1;
  }
  if (!core::write_events_csv(out, events)) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  std::printf("%s: %zu events -> %s\n", scheme.c_str(), events.size(),
              out.c_str());
  return 0;
}

int cmd_reconstruct(const Args& a) {
  const auto events = core::read_events_csv(arg_str(a, "events", "events.csv"));
  const Real duration = arg_num(a, "duration", 20.0);
  core::RateCalibrationConfig cal_cfg;
  cal_cfg.count_fs_hz = 2000.0;
  const auto cal = std::make_shared<core::RateCalibration>(cal_cfg);
  const core::DatcReconstructor rx(core::ReconstructionConfig{}, cal);
  const auto est = rx.reconstruct(events, duration);
  const auto out = arg_str(a, "out", "envelope.csv");
  {
    std::ofstream f(out);
    if (!f.good()) {
      std::fprintf(stderr, "cannot write %s\n", out.c_str());
      return 1;
    }
    f << "time_s,arv_v\n";
    for (std::size_t i = 0; i < est.size(); ++i) {
      f << static_cast<Real>(i) / 2500.0 << ',' << est[i] << '\n';
    }
  }
  std::printf("reconstructed %zu envelope samples -> %s\n", est.size(),
              out.c_str());
  const auto truth_path = arg_str(a, "truth", "");
  if (!truth_path.empty()) {
    const auto sig = read_signal_csv(truth_path);
    const auto truth = dsp::arv_envelope(sig.view(), sig.sample_rate_hz(),
                                         0.25);
    const std::size_t n = std::min(truth.size(), est.size());
    std::printf("correlation vs %s: %.2f %%\n", truth_path.c_str(),
                dsp::correlation_percent(
                    std::span<const Real>(truth.data(), n),
                    std::span<const Real>(est.data(), n)));
  }
  return 0;
}

int cmd_pipeline(const Args& a) {
  auto spec = spec_from_args(
      a,
      {
          {"channels", "source.channels", "16"},
          {"duration", "source.duration_s", "20"},
          {"seed", "source.seed", "1"},
          {"seed", "link.seed", "1"},  // one --seed drives both, as before
          {"gain-lo", "source.gain_lo_v", "0.16"},
          {"gain-hi", "source.gain_hi_v", "0.85"},
          {"distance", "link.distance_m", "0.5"},
          {"jobs", "session.jobs", "0"},
          {"link", "aer.topology", "private"},
      },
      "pipeline");
  if (a.count("spacing-us") != 0) {
    const Real spacing_us = arg_num(a, "spacing-us", 2.0);
    dsp::require(spacing_us >= 0.0, "pipeline: --spacing-us must be >= 0");
    config::set_scenario_key(spec, "aer.min_spacing_s",
                             real_str(spacing_us * 1e-6));
  }
  const config::PipelineFactory factory(spec);

  std::printf("synthesising %zu channel(s) x %.1f s ...\n",
              spec.source.channels, spec.source.duration_s);
  const auto recs = factory.make_recordings();
  const auto runner = factory.make_runner();
  const auto report = runner->run(recs);

  // In shared mode the radio is link-wide, so per-channel pulse counts do
  // not exist — the column is dashed out and the totals printed below.
  const bool shared_mode = report.link_mode == runtime::LinkMode::kSharedAer;
  std::printf("ch  gain_v  events_tx  pulses_tx  events_rx  tx_corr  rx_corr\n");
  for (const auto& ch : report.channels) {
    std::printf("%2u  %6.3f  %9zu  ", ch.channel,
                recs[ch.channel].spec.gain_v, ch.events_tx);
    if (shared_mode) {
      std::printf("%9s  ", "-");
    } else {
      std::printf("%9zu  ", ch.pulses_tx);
    }
    std::printf("%9zu  %6.1f%%  %6.1f%%\n", ch.events_rx,
                ch.tx_correlation_pct, ch.rx_correlation_pct);
  }
  if (report.link_mode == runtime::LinkMode::kSharedAer) {
    const auto& s = report.shared;
    std::printf(
        "shared AER link: %zu events offered, %zu sent (%zu dropped in "
        "arbitration, worst queue %.2f ms), %zu pulses on air (%zu erased), "
        "%zu frames decoded, %zu bad addresses\n",
        s.arbiter.in_events, s.arbiter.sent, s.arbiter.dropped,
        s.arbiter.max_delay_s * 1e3, s.pulses_tx, s.pulses_erased,
        s.events_rx, s.demux.invalid_address);
  }
  std::printf(
      "%zu channel(s) on %zu job(s): %.1f ms wall, %.0fx realtime\n",
      report.channels.size(), runner->jobs(), report.wall_seconds * 1e3,
      report.throughput_x_realtime());
  return 0;
}

int cmd_link_sweep(const Args& a) {
  const Real channels_f = arg_num(a, "channels", 8.0);
  dsp::require(channels_f >= 1.0 && channels_f <= 4096.0,
               "link-sweep: --channels must lie in [1, 4096]");
  sim::LinkSweepConfig cfg;
  cfg.channels = static_cast<std::size_t>(channels_f);
  cfg.duration_s = arg_num(a, "duration", 5.0);
  dsp::require(cfg.duration_s > 0.0, "link-sweep: --duration must be > 0");
  const Real seed_f = arg_num(a, "seed", 500.0);
  dsp::require(seed_f >= 0.0, "link-sweep: --seed must be non-negative");
  cfg.emg_seed = static_cast<std::uint64_t>(seed_f);
  cfg.distances_m = arg_num_list(a, "distances", cfg.distances_m);
  cfg.false_alarm_probs = arg_num_list(a, "pfa", cfg.false_alarm_probs);
  for (const Real v : arg_num_list(a, "channel-counts", {})) {
    dsp::require(v >= 1.0, "link-sweep: bad --channel-counts entry");
    cfg.channel_counts.push_back(static_cast<std::size_t>(v));
  }
  cfg.shared.aer.address_bits = address_bits_for(cfg.channels);
  const Real spacing_us = arg_num(a, "spacing-us", 2.0);
  dsp::require(spacing_us >= 0.0, "link-sweep: --spacing-us must be >= 0");
  cfg.shared.aer.min_spacing_s = spacing_us * 1e-6;

  std::printf(
      "shared AER link sweep: %zu channel(s) x %.1f s, %u address bit(s), "
      "%.1f us slot\n",
      cfg.channels, cfg.duration_s, cfg.shared.aer.address_bits, spacing_us);
  const auto result = sim::run_link_sweep(cfg);
  std::printf("%s", sim::link_sweep_table(result).c_str());

  const auto out = arg_str(a, "out", "");
  if (!out.empty()) {
    if (!sim::write_link_sweep_json(out, cfg, result)) {
      std::fprintf(stderr, "cannot write %s\n", out.c_str());
      return 1;
    }
    std::printf("wrote %zu sweep point(s) to %s\n", result.points.size(),
                out.c_str());
  }
  return 0;
}

/// The `stream`/`record` flag -> key forwarding (legacy defaults equal
/// the spec defaults; the list keeps explicit flags working on top of
/// --scenario).
constexpr std::initializer_list<FlagKey> kStreamFlags = {
    {"chunk", "session.chunk_samples", nullptr},
    {"seed", "link.seed", nullptr},
    {"channel", "session.channel", nullptr},
    {"distance", "link.distance_m", nullptr},
};

int cmd_stream(const Args& a) {
  SignalCsvSource source(arg_str(a, "in", "-"));
  const Real fs = source.sample_rate_hz();
  auto spec = spec_from_args(a, kStreamFlags, "stream");
  // The signal's own rate wins: a scenario cannot mis-declare the rate of
  // a CSV it does not produce.
  config::set_scenario_key(spec, "source.sample_rate_hz", real_str(fs));
  const config::PipelineFactory factory(spec);
  const auto eval = factory.eval_config();
  const std::size_t chunk_size = spec.session.chunk_samples;

  const bool verify = arg_num(a, "verify", 0.0) != 0.0;
  auto cfg = factory.session_config();
  cfg.keep_rx_events = verify;
  runtime::StreamingSession session(cfg, spec.session.channel);

  const auto out_path = arg_str(a, "out", "envelope.csv");
  std::ofstream fout(out_path);
  if (!fout.good()) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  fout << "time_s,arv_v\n";
  fout.precision(10);

  std::vector<Real> all_samples;  // retained only when verifying
  std::vector<Real> all_arv;      // ditto: the envelope actually written
  std::vector<Real> chunk_buf;
  chunk_buf.reserve(chunk_size);
  std::vector<Real> arv;
  std::size_t emitted = 0;
  const auto flush_chunk = [&] {
    if (chunk_buf.empty()) return;
    session.push_chunk(chunk_buf);
    chunk_buf.clear();
    arv.clear();
    session.drain_arv(arv);
    for (const Real v : arv) {
      fout << static_cast<Real>(emitted++) / eval.analog_fs_hz << ',' << v
           << '\n';
    }
    if (verify) all_arv.insert(all_arv.end(), arv.begin(), arv.end());
  };
  Real v_row;
  while (source.next(&v_row)) {
    chunk_buf.push_back(v_row);
    if (verify) all_samples.push_back(v_row);
    if (chunk_buf.size() >= chunk_size) flush_chunk();
  }
  flush_chunk();
  session.finish();
  arv.clear();
  session.drain_arv(arv);
  for (const Real v : arv) {
    fout << static_cast<Real>(emitted++) / eval.analog_fs_hz << ',' << v
         << '\n';
  }
  if (verify) all_arv.insert(all_arv.end(), arv.begin(), arv.end());

  const auto report = session.report();
  std::printf(
      "streamed %zu samples (%.0f Hz) in %zu-sample chunks: %zu events tx, "
      "%zu pulses on air (%zu erased), %zu events rx, %zu envelope samples "
      "-> %s\n",
      report.samples_in, fs, chunk_size, report.events_tx,
      report.pulses_tx,
      report.pulses_erased, report.events_rx, report.arv_emitted,
      out_path.c_str());
  std::printf("fixed latency %.0f ms, peak working set %.1f KiB\n",
              1e3 * (eval.window_s / 2.0 + 1.0 / eval.analog_fs_hz),
              static_cast<Real>(session.peak_buffered_bytes()) / 1024.0);

  if (verify) {
    // Verify the envelope THIS run emitted (not a fresh re-stream), so
    // the CLI's own feed path is covered too.
    const dsp::TimeSeries sig(std::move(all_samples), eval.analog_fs_hz);
    const auto r =
        sim::check_stream_output(sig, eval, factory.link_config(),
                                 factory.calibration(), chunk_size,
                                 spec.session.channel, session.rx_events(),
                                 all_arv);
    std::printf("verify vs batch: events %s (%zu), ARV %s (max diff %.3g)\n",
                r.events_equal ? "identical" : "DIFFER", r.events_batch,
                r.arv_equal ? "identical" : "DIFFER", r.max_abs_arv_diff);
    if (!r.identical()) return 1;
  }
  return 0;
}

int cmd_record(const Args& a) {
  SignalCsvSource source(arg_str(a, "in", "-"));
  const auto dir = arg_str(a, "dir", "");
  dsp::require(!dir.empty(), "record: --dir is required");
  // A session directory is one recording: appending a second session
  // would collide with the resumed time watermark (new times restart at
  // ~0) and overwrite the manifest/envelope sidecars. Refuse up front
  // with a usable message instead of failing inside the writer thread.
  if (std::filesystem::exists(dir)) {
    dsp::require(std::filesystem::is_directory(dir) &&
                     std::filesystem::is_empty(dir),
                 "record: --dir " + dir +
                     " already holds data; record each session into a "
                     "fresh directory");
  }
  const Real fs = source.sample_rate_hz();
  auto spec = spec_from_args(a, kStreamFlags, "record");
  config::set_scenario_key(spec, "source.sample_rate_hz", real_str(fs));
  const config::PipelineFactory factory(spec);
  const std::size_t chunk_size = spec.session.chunk_samples;

  const Real seg_events_f = arg_num(a, "segment-events", 65536.0);
  dsp::require(seg_events_f >= 1.0,
               "record: --segment-events must be >= 1");
  const Real seg_span = arg_num(a, "segment-span",
                                std::numeric_limits<Real>::infinity());
  dsp::require(seg_span > 0.0, "record: --segment-span must be positive");

  const auto session =
      factory.make_streaming_session(spec.session.channel);

  // Factory-built recorder config: fault.store_* keys in the scenario
  // route segment I/O through the seeded fault-injection seam.
  store::RecorderConfig rcfg = factory.recorder_config(dir);
  rcfg.log.max_events_per_segment =
      static_cast<std::uint64_t>(seg_events_f);
  rcfg.log.max_segment_span_s = seg_span;
  store::Recorder recorder(rcfg);
  session->set_event_tee(
      [&recorder](std::span<const core::Event> ev) { recorder.offer(ev); });

  std::vector<Real> live_arv;
  std::vector<Real> chunk_buf;
  chunk_buf.reserve(chunk_size);
  Real v_row;
  while (source.next(&v_row)) {
    chunk_buf.push_back(v_row);
    if (chunk_buf.size() >= chunk_size) {
      session->push_chunk(chunk_buf);
      chunk_buf.clear();
      session->drain_arv(live_arv);
    }
  }
  if (!chunk_buf.empty()) session->push_chunk(chunk_buf);
  session->finish();
  session->drain_arv(live_arv);
  recorder.close();

  const auto report = session->report();
  const auto manifest = factory.manifest(
      static_cast<Real>(report.samples_in) / spec.source.sample_rate_hz);
  store::write_manifest(dir, manifest);
  store::write_envelope_f64(dir, live_arv);

  const auto stats = recorder.stats();
  std::printf(
      "recorded %zu samples (%.1f s at %.0f Hz): %zu events decoded, %llu "
      "stored in %llu segment(s) (%llu dropped at the queue) -> %s\n",
      report.samples_in, manifest.duration_s, fs, report.events_rx,
      static_cast<unsigned long long>(stats.written),
      static_cast<unsigned long long>(stats.segments_finalized),
      static_cast<unsigned long long>(stats.dropped), dir.c_str());
  std::printf("manifest + %zu-sample live envelope sidecar written; replay "
              "with: datc replay --dir %s --verify 1\n",
              live_arv.size(), dir.c_str());
  return 0;
}

/// `serve` flag -> scenario-key forwarding (serve.* shapes the daemon;
/// session.jobs sizes the shard worker pools).
constexpr std::initializer_list<FlagKey> kServeFlags = {
    {"port", "serve.port", nullptr},
    {"shards", "serve.shards", nullptr},
    {"max-sessions", "serve.max_sessions", nullptr},
    {"inflight", "serve.inflight", nullptr},
    {"jobs", "session.jobs", nullptr},
};

int cmd_serve(const Args& a) {
  const auto spec = spec_from_args(a, kServeFlags, "serve");
  const auto out_dir = arg_str(a, "out-dir", "");
  net::Server server(net::make_serve_config(spec, out_dir));
  server.install_signal_handlers();
  std::printf(
      "datc serve: listening on 127.0.0.1:%u — %zu shard(s), max %zu "
      "session(s), inflight bound %zu%s%s\n",
      static_cast<unsigned>(server.port()), spec.serve.shards,
      spec.serve.max_sessions, spec.serve.max_inflight_chunks,
      out_dir.empty() ? " (ingest only, no persistence)" : ", output -> ",
      out_dir.c_str());
  std::fflush(stdout);
  server.run();
  const auto st = server.stats();
  std::printf(
      "datc serve: drained: %llu session(s) finished, %llu aborted, %llu "
      "quarantined; %llu chunk(s), %.1f MiB rx; chunk->envelope p50 %.0f "
      "us, p99 %.0f us\n",
      static_cast<unsigned long long>(st.sessions_finished),
      static_cast<unsigned long long>(st.sessions_aborted),
      static_cast<unsigned long long>(st.quarantined_sessions),
      static_cast<unsigned long long>(st.chunks_rx),
      static_cast<Real>(st.bytes_rx) / (1024.0 * 1024.0),
      st.chunk_to_envelope.p50_us, st.chunk_to_envelope.p99_us);
  return 0;
}

int cmd_loadgen(const Args& a) {
  const auto spec = spec_from_args(a, kStreamFlags, "loadgen");
  const Real port_f = arg_num(a, "port", 0.0);
  dsp::require(port_f >= 1.0 && port_f <= 65535.0,
               "loadgen: --port is required (1..65535)");
  net::LoadGenConfig cfg;
  cfg.port = static_cast<std::uint16_t>(port_f);
  cfg.host = arg_str(a, "host", "127.0.0.1");
  cfg.sessions = static_cast<std::size_t>(arg_num(a, "sessions", 8.0));
  cfg.concurrency =
      static_cast<std::size_t>(arg_num(a, "concurrency", 64.0));
  cfg.chunk_samples = spec.session.chunk_samples;
  cfg.tenant = arg_str(a, "tenant", "loadgen");
  const bool shared = spec.aer.topology == config::LinkTopology::kSharedAer;
  cfg.channel_count = shared ? spec.source.channels : 1;
  cfg.rate_chunks_per_s = arg_num(a, "rate", 0.0);
  const Real realtime = arg_num(a, "realtime", 0.0);
  if (realtime > 0.0) {
    cfg.rate_chunks_per_s = realtime * spec.source.sample_rate_hz /
                            static_cast<Real>(cfg.chunk_samples);
  }
  // A built-in preset resolves on the server too, so name it in HELLO;
  // scenario FILES shape only the local signal (the server cannot be
  // asked to read files over the wire).
  const auto scen_ref = arg_str(a, "scenario", "");
  const auto& presets = config::preset_names();
  if (std::find(presets.begin(), presets.end(), scen_ref) !=
      presets.end()) {
    cfg.scenario = scen_ref;
  }

  std::vector<Real> signal;
  const auto in = arg_str(a, "in", "");
  if (!in.empty()) {
    dsp::require(!shared,
                 "loadgen: --in replays a single-channel CSV; shared "
                 "topologies use the synthetic source");
    const auto sig = read_signal_csv(in);
    signal.reserve(sig.size());
    for (std::size_t i = 0; i < sig.size(); ++i) signal.push_back(sig[i]);
  } else {
    const config::PipelineFactory factory(spec);
    if (shared) {
      // Channel-major lockstep rounds of chunk_samples, the layout
      // SharedAerStreamingSession consumes.
      const auto recs = factory.make_recordings();
      const std::size_t per_ch = recs[0].emg_v.size();
      signal.reserve(per_ch * recs.size());
      for (std::size_t at = 0; at < per_ch; at += cfg.chunk_samples) {
        const std::size_t n = std::min(cfg.chunk_samples, per_ch - at);
        for (const auto& rec : recs) {
          for (std::size_t i = 0; i < n; ++i) {
            signal.push_back(rec.emg_v[at + i]);
          }
        }
      }
    } else {
      const auto rec = factory.make_recording(spec.session.channel);
      signal.reserve(rec.emg_v.size());
      for (std::size_t i = 0; i < rec.emg_v.size(); ++i) {
        signal.push_back(rec.emg_v[i]);
      }
    }
  }

  const auto report = net::run_loadgen(cfg, signal);
  const Real per_ch_samples =
      static_cast<Real>(report.samples_sent) /
      static_cast<Real>(std::max<std::size_t>(1, cfg.channel_count));
  const Real signal_s = per_ch_samples / spec.source.sample_rate_hz;
  std::printf(
      "loadgen: %zu/%zu session(s) ok (%zu failed), %llu chunk(s), %llu "
      "sample(s), %llu envelope sample(s) acked in %.2f s (%.1fx "
      "realtime aggregate)\n",
      report.sessions_ok, cfg.sessions, report.sessions_failed,
      static_cast<unsigned long long>(report.chunks_sent),
      static_cast<unsigned long long>(report.samples_sent),
      static_cast<unsigned long long>(report.envelope_samples),
      report.wall_s,
      report.wall_s > 0.0 ? signal_s / report.wall_s : 0.0);
  return report.sessions_failed == 0 ? 0 : 1;
}

int cmd_query(const Args& a) {
  const auto dir = arg_str(a, "dir", "");
  dsp::require(!dir.empty(), "query: --dir is required");
  // Validate the cheap flags before any I/O: a --format typo must not
  // cost a full CRC pass over a large log first.
  const auto format = arg_str(a, "format", "csv");
  dsp::require(format == "csv" || format == "binary",
               "query: unknown --format '" + format + "' (csv|binary)");
  const auto out = arg_str(a, "out", "-");
  dsp::require(format != "binary" || out != "-",
               "query: --format binary needs --out <path>");
  const Real t_lo = arg_num(a, "from", 0.0);
  const Real t_hi = arg_num(a, "to",
                            std::numeric_limits<Real>::infinity());
  dsp::require(t_lo < t_hi, "query: need --from < --to");
  std::optional<std::uint16_t> channel;
  if (a.count("channel") != 0) {
    const Real channel_f = arg_num(a, "channel", 0.0);
    dsp::require(channel_f >= 0.0 && channel_f <= 65535.0,
                 "query: --channel must lie in [0, 65535]");
    channel = static_cast<std::uint16_t>(channel_f);
  }
  const store::LogReader log(dir);

  if (arg_num(a, "verify", 0.0) != 0.0) {
    dsp::require(log.verify(), "query: segment CRC verification FAILED");
  }
  const auto events = log.query(t_lo, t_hi, channel);

  if (format == "csv") {
    if (out == "-") {
      core::write_events_csv(std::cout, events);
    } else if (!core::write_events_csv(out, events)) {
      std::fprintf(stderr, "cannot write %s\n", out.c_str());
      return 1;
    }
  } else {
    if (!core::write_events_binary(out, events)) {
      std::fprintf(stderr, "cannot write %s\n", out.c_str());
      return 1;
    }
  }
  // Summary on stderr so stdout stays a clean event stream.
  const std::string chan_note =
      channel ? " channel " + std::to_string(*channel) : "";
  std::fprintf(stderr,
               "%zu event(s) in [%g, %g)%s from %zu segment(s), %llu "
               "events total\n",
               events.size(), t_lo, t_hi, chan_note.c_str(),
               log.segments().size(),
               static_cast<unsigned long long>(log.total_events()));
  return 0;
}

int cmd_replay(const Args& a) {
  const auto dir = arg_str(a, "dir", "");
  dsp::require(!dir.empty(), "replay: --dir is required");
  const auto result = store::replay_envelope(dir);
  const auto out_path = arg_str(a, "out", "envelope.csv");
  {
    std::ofstream f(out_path);
    if (!f.good()) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 1;
    }
    f << "time_s,arv_v\n";
    f.precision(10);
    for (std::size_t i = 0; i < result.arv.size(); ++i) {
      f << static_cast<Real>(i) / result.manifest.analog_fs_hz << ','
        << result.arv[i] << '\n';
    }
  }
  std::printf(
      "replayed %zu stored event(s) over %.1f s -> %zu envelope samples "
      "-> %s\n",
      result.events, result.duration_s, result.arv.size(),
      out_path.c_str());
  if (arg_num(a, "verify", 0.0) != 0.0) {
    dsp::require(store::has_envelope_f64(dir),
                 "replay: no envelope.f64 sidecar to verify against");
    const auto parity = store::check_replay_parity(dir);
    std::printf("replay vs recorded live envelope: %s (%zu samples, max "
                "diff %.3g)\n",
                parity.equal ? "bit-identical" : "DIFFER", parity.samples,
                parity.max_abs_diff);
    if (!parity.equal) return 1;
  }
  return 0;
}

int cmd_sweep(const Args& a) {
  Args with_default = a;
  with_default.emplace("scenario", "paper-baseline");
  config::ScenarioGridConfig cfg;
  cfg.base = spec_from_args(with_default, {}, "sweep");
  cfg.axes = config::parse_axes(arg_str(a, "axes", ""));
  const Real jobs_f = arg_num(a, "jobs", 0.0);
  dsp::require(jobs_f >= 0.0 && jobs_f <= 1024.0,
               "sweep: --jobs must lie in [0, 1024] (0 = hardware)");
  cfg.jobs = static_cast<std::size_t>(jobs_f);

  std::size_t points = 1;
  for (const auto& axis : cfg.axes) points *= axis.values.size();
  std::printf("scenario grid: base '%s', %zu axis(es), %zu point(s)\n",
              cfg.base.name.c_str(), cfg.axes.size(), points);
  const auto result = config::run_scenario_grid(cfg);
  std::printf("%s", config::scenario_grid_table(result).c_str());

  const auto out = arg_str(a, "out", "");
  if (!out.empty()) {
    if (!config::write_scenario_grid_json(out, result)) {
      std::fprintf(stderr, "cannot write %s\n", out.c_str());
      return 1;
    }
    std::printf("wrote %zu grid point(s) to %s\n", result.points.size(),
                out.c_str());
  }
  return 0;
}

/// Matches `name` against a shell-style pattern with `*` (any run) and
/// `?` (any one char). Iterative two-cursor match, no recursion.
bool glob_match(const std::string& pat, const std::string& name) {
  std::size_t p = 0, n = 0;
  std::size_t star = std::string::npos, star_n = 0;
  while (n < name.size()) {
    if (p < pat.size() && (pat[p] == '?' || pat[p] == name[n])) {
      ++p;
      ++n;
    } else if (p < pat.size() && pat[p] == '*') {
      star = p++;
      star_n = n;
    } else if (star != std::string::npos) {
      p = star + 1;
      n = ++star_n;
    } else {
      return false;
    }
  }
  while (p < pat.size() && pat[p] == '*') ++p;
  return p == pat.size();
}

/// Expands a literal glob in the pattern's own directory (the wildcard
/// may only appear in the filename component). Returns sorted matches.
std::vector<std::string> expand_glob(const std::string& pattern) {
  const std::filesystem::path pat(pattern);
  const auto dir = pat.parent_path();
  const std::string leaf = pat.filename().string();
  std::vector<std::string> out;
  std::error_code ec;
  for (std::filesystem::directory_iterator
           it(dir.empty() ? std::filesystem::path(".") : dir, ec),
       end;
       it != end; it.increment(ec)) {
    if (ec) break;
    if (!it->is_regular_file()) continue;
    if (!glob_match(leaf, it->path().filename().string())) continue;
    out.push_back(dir.empty() ? it->path().filename().string()
                              : (dir / it->path().filename()).string());
  }
  std::sort(out.begin(), out.end());
  return out;
}

// `datc scenario <action> ...` takes positional arguments, so it parses
// argv itself instead of going through the --flag/value Args map.
int cmd_scenario_raw(int argc, char** argv) {
  const auto usage = [] {
    std::fprintf(stderr,
                 "usage: datc scenario list | keys | print REF |\n"
                 "       validate FILE... | emit NAME|all [--out FILE] "
                 "[--dir DIR]\n");
    return 2;
  };
  if (argc < 3) return usage();
  const std::string action = argv[2];

  if (action == "list") {
    for (const auto& name : config::preset_names()) {
      std::printf("  %-16s %s\n", name.c_str(),
                  config::preset_summary(name).c_str());
    }
    return 0;
  }
  if (action == "keys") {
    const config::ScenarioSpec defaults;
    std::printf("%-30s %-16s %s\n", "key", "default", "description");
    for (const auto& k : config::scenario_keys()) {
      std::printf("%-30s %-16s %s\n", k.key.c_str(),
                  k.get(defaults).c_str(), k.doc.c_str());
    }
    return 0;
  }
  if (action == "print") {
    if (argc != 4) return usage();
    const auto spec = config::load_scenario(argv[3]);
    std::fputs(config::serialize_scenario(spec).c_str(), stdout);
    return 0;
  }
  if (action == "validate") {
    if (argc < 4) return usage();
    // Expand literal glob patterns ourselves: a quoted `datc scenario
    // validate 'scenarios/*.datc'` (or a pattern the shell found no match
    // for and passed through verbatim) must behave like the expanded
    // list, not like one file named `*`.
    std::vector<std::string> files;
    std::size_t failed = 0;
    for (int i = 3; i < argc; ++i) {
      const std::string pat = argv[i];
      if (pat.find_first_of("*?") == std::string::npos) {
        files.push_back(pat);
        continue;
      }
      const auto matches = expand_glob(pat);
      if (matches.empty()) {
        std::printf("FAIL  %s\nno files match pattern\n", pat.c_str());
        ++failed;
      }
      files.insert(files.end(), matches.begin(), matches.end());
    }
    // Validate EVERY file before exiting: a CI run must show the full
    // damage report, not the first parse error.
    std::size_t ok = 0;
    for (const auto& file : files) {
      try {
        const auto spec = config::parse_scenario_file(file);
        std::printf("OK    %s (%s)\n", file.c_str(), spec.name.c_str());
        ++ok;
      } catch (const std::exception& e) {
        std::printf("FAIL  %s\n%s\n", file.c_str(), e.what());
        ++failed;
      } catch (...) {
        std::printf("FAIL  %s\nunknown error\n", file.c_str());
        ++failed;
      }
    }
    std::printf("%zu file(s): %zu ok, %zu failed\n", ok + failed, ok,
                failed);
    return failed == 0 ? 0 : 1;
  }
  if (action == "emit") {
    if (argc < 4) return usage();
    const std::string name = argv[3];
    const auto args = parse_args(argc, argv, 4);
    const auto write_one = [](const std::string& preset,
                              const std::string& path) {
      std::ofstream f(path);
      dsp::require(f.good(), "scenario emit: cannot write " + path);
      f << config::serialize_scenario(config::make_preset(preset));
      dsp::require(f.good(), "scenario emit: write failed for " + path);
      std::printf("wrote %s\n", path.c_str());
    };
    if (name == "all") {
      const auto dir = arg_str(args, "dir", "scenarios");
      std::filesystem::create_directories(dir);
      for (const auto& preset : config::preset_names()) {
        write_one(preset, (std::filesystem::path(dir) / (preset + ".datc"))
                              .string());
      }
      return 0;
    }
    const auto out = arg_str(args, "out", "");
    if (out.empty()) {
      std::fputs(
          config::serialize_scenario(config::make_preset(name)).c_str(),
          stdout);
    } else {
      write_one(name, out);
    }
    return 0;
  }
  return usage();
}

int cmd_table1() {
  std::vector<bool> stim(8000);
  for (std::size_t i = 0; i < stim.size(); ++i) stim[i] = (i / 7) % 4 == 0;
  const auto rep = synth::synthesize_dtc(core::DtcConfig{}, stim);
  std::printf("%s", synth::format_table1(rep).c_str());
  return 0;
}

// -------------------------------------------------- subcommand dispatch

struct Subcommand {
  const char* name;
  const char* summary;  ///< one-liner for the usage listing
  const char* help;     ///< full `datc <sub> --help` reference
  int (*run)(const Args&);
  /// Commands with positional arguments (scenario) parse argv directly.
  int (*run_raw)(int argc, char** argv){nullptr};
};

int cmd_table1_adapter(const Args&) { return cmd_table1(); }

constexpr Subcommand kSubcommands[] = {
    {"generate", "synthesise a grip-protocol sEMG recording (CSV)",
     "usage: datc generate [--seed N] [--gain G] [--duration S]\n"
     "                     [--out sig.csv]\n"
     "  --seed N       recording seed (default 1)\n"
     "  --gain G       sEMG amplitude in volts (default 0.35)\n"
     "  --duration S   record length in seconds (default 20)\n"
     "  --out PATH     output CSV `time_s,emg_v` (default signal.csv)\n",
     cmd_generate},
    {"encode", "run a D-ATC/ATC transmitter over a recording",
     "usage: datc encode [--in sig.csv] [--scheme datc|atc] [--vth V]\n"
     "                   [--out events.csv]\n"
     "  --in PATH      input CSV `time_s,emg_v` (default signal.csv)\n"
     "  --scheme S     datc (self-adjusting threshold) or atc (fixed)\n"
     "  --vth V        atc threshold in volts (default 0.3)\n"
     "  --out PATH     output events CSV (default events.csv)\n",
     cmd_encode},
    {"reconstruct", "rebuild the force envelope from an event stream",
     "usage: datc reconstruct [--events events.csv] [--duration S]\n"
     "                        [--out envelope.csv] [--truth sig.csv]\n"
     "  --events PATH  input events CSV (default events.csv)\n"
     "  --duration S   record length in seconds (default 20)\n"
     "  --out PATH     output envelope CSV (default envelope.csv)\n"
     "  --truth PATH   ground-truth signal; prints correlation %\n",
     cmd_reconstruct},
    {"pipeline", "multi-channel engine: encode -> UWB link -> reconstruct",
     "usage: datc pipeline [--scenario FILE|PRESET] [--set \"k=v; k=v\"]\n"
     "                     [--channels M] [--jobs N] [--duration S]\n"
     "                     [--seed K] [--distance D] [--link private|shared]\n"
     "                     [--spacing-us U] [--gain-lo G] [--gain-hi G]\n"
     "  --scenario S   scenario file or built-in preset; explicit flags\n"
     "                 and --set overrides apply on top of it\n"
     "  --set KV       free-form key overrides, e.g. \"erasure_prob=0.1\"\n"
     "  --channels M   number of EMG channels (default 16)\n"
     "  --jobs N       worker threads, 0 = hardware (default 0)\n"
     "  --link MODE    private radios, or `shared` for ONE arbitrated\n"
     "                 AER radio every channel contends for\n"
     "  --distance D   TX-RX distance in metres (default 0.5)\n"
     "  --spacing-us U minimum AER on-air spacing (shared mode)\n",
     cmd_pipeline},
    {"link-sweep", "sweep the shared AER link over a parameter grid",
     "usage: datc link-sweep [--channels M] [--distances 0.5,1,2]\n"
     "                       [--pfa 1e-6,...] [--channel-counts 2,4,8]\n"
     "                       [--duration S] [--seed K] [--out FILE.json]\n"
     "  Prints per-point correlation, drop %% and address-error %%;\n"
     "  --out writes the JSON report (BENCH_link.json schema).\n",
     cmd_link_sweep},
    {"stream", "run the full chain incrementally on sample chunks",
     "usage: datc stream [--in sig.csv|-] [--scenario FILE|PRESET]\n"
     "                   [--set \"k=v; k=v\"] [--chunk N] [--seed K]\n"
     "                   [--distance D] [--channel C] [--out envelope.csv]\n"
     "                   [--verify 1]\n"
     "  --in PATH      CSV signal, `-` reads stdin (default -)\n"
     "  --scenario S   scenario file or preset for the chain parameters\n"
     "                 (the CSV's own sample rate always wins)\n"
     "  --chunk N      samples per chunk (default 256)\n"
     "  --verify 1     re-run the batch pipeline and require the chunked\n"
     "                 output to be bit-identical\n"
     "  The envelope is written as it is emitted (fixed window/2 latency).\n",
     cmd_stream},
    {"record", "stream a signal AND persist decoded events to a store",
     "usage: datc record --dir SESSION_DIR [--in sig.csv|-] [--chunk N]\n"
     "                   [--scenario FILE|PRESET] [--set \"k=v; k=v\"]\n"
     "                   [--seed K] [--distance D] [--channel C]\n"
     "                   [--segment-events N] [--segment-span S]\n"
     "  Runs the streaming chain like `stream`, teeing every decoded\n"
     "  event into an append-only segmented log under SESSION_DIR,\n"
     "  which must be new or empty — one directory per session\n"
     "  (bounded write queue: storage never blocks decoding). Also\n"
     "  writes manifest.txt (replay parameters) and envelope.f64 (the\n"
     "  live ARV envelope, for replay parity checks).\n"
     "  --segment-events N  rotate segments after N events (default 65536)\n"
     "  --segment-span S    rotate segments after S seconds of events\n",
     cmd_record},
    {"query", "time-range/channel queries over a recorded event store",
     "usage: datc query --dir SESSION_DIR [--from T] [--to T]\n"
     "                  [--channel C] [--format csv|binary] [--out -|PATH]\n"
     "                  [--verify 1]\n"
     "  Returns every stored event with time in [--from, --to) — the\n"
     "  half-open window the rate estimator uses — optionally restricted\n"
     "  to one AER channel. O(log n): binary search over segment time\n"
     "  bounds, then over each segment's fixed-width records.\n"
     "  --format csv     `time_s,vth_code,channel` (stdout with --out -)\n"
     "  --format binary  DATCEVT2 file with CRC trailer (needs --out)\n"
     "  --verify 1       recompute every segment CRC first\n",
     cmd_query},
    {"replay", "re-simulate reconstruction from a recorded store",
     "usage: datc replay --dir SESSION_DIR [--out envelope.csv]\n"
     "                   [--verify 1]\n"
     "  Rebuilds the receiver (calibration + reconstructor) from\n"
     "  manifest.txt, feeds the stored event log back through it and\n"
     "  writes the ARV envelope. --verify 1 additionally requires the\n"
     "  replayed envelope to be bit-identical to the live run's\n"
     "  envelope.f64 sidecar.\n",
     cmd_replay},
    {"serve", "fleet-scale ingest daemon over a framed TCP protocol",
     "usage: datc serve [--scenario FILE|PRESET] [--set \"k=v; k=v\"]\n"
     "                  [--port P] [--shards N] [--max-sessions N]\n"
     "                  [--inflight N] [--jobs N] [--out-dir DIR]\n"
     "  Accepts length-prefixed HELLO/DATA/END sessions on 127.0.0.1 and\n"
     "  runs each through the factory-built streaming chain on N sharded\n"
     "  session managers — envelopes are bit-identical to a direct\n"
     "  `datc stream` of the same chunks. Per-connection backpressure:\n"
     "  past `--inflight` unprocessed chunks the socket stops being read\n"
     "  (TCP pushback). SIGINT/SIGTERM drains gracefully: accepted\n"
     "  sessions finish and recorders flush before exit.\n"
     "  --port P        TCP port; 0 = ephemeral, printed on startup\n"
     "  --shards N      SessionManager shards (serve.shards)\n"
     "  --max-sessions N concurrent session cap (serve.max_sessions)\n"
     "  --inflight N    inflight-chunk bound (serve.inflight)\n"
     "  --out-dir DIR   persist DIR/<tenant>/session-<id>/ (event log +\n"
     "                  manifest.txt + envelope.f64); default ingest-only\n",
     cmd_serve},
    {"loadgen", "loopback load generator for a running `datc serve`",
     "usage: datc loadgen --port P [--sessions N] [--concurrency N]\n"
     "                    [--scenario PRESET|FILE] [--set \"k=v; k=v\"]\n"
     "                    [--in sig.csv] [--rate R] [--realtime X]\n"
     "                    [--tenant NAME] [--host H] [--chunk N]\n"
     "  Replays a synthetic (scenario-built) or CSV signal into a running\n"
     "  server from many worker threads and reports completed sessions,\n"
     "  failures and aggregate throughput. A built-in PRESET passed via\n"
     "  --scenario is also named in HELLO, so the server runs the same\n"
     "  pipeline it was generated with.\n"
     "  --sessions N    sessions to run to completion (default 8)\n"
     "  --concurrency N worker threads = open sockets (default 64)\n"
     "  --rate R        chunks per second per session (default unpaced)\n"
     "  --realtime X    pace at X times realtime (overrides --rate)\n",
     cmd_loadgen},
    {"scenario", "inspect, validate and emit declarative scenarios",
     "usage: datc scenario list              built-in presets\n"
     "       datc scenario keys              full key reference + defaults\n"
     "       datc scenario print REF         serialize a preset or file\n"
     "       datc scenario validate FILE...  parse + validate (CI gate)\n"
     "       datc scenario emit NAME|all [--out FILE] [--dir DIR]\n"
     "  A scenario is `key = value` text ('#' comments). Every pipeline\n"
     "  subcommand accepts --scenario FILE|PRESET; `datc sweep` expands\n"
     "  axis overrides over one.\n",
     nullptr, cmd_scenario_raw},
    {"sweep", "expand scenario axis overrides into a comparable grid",
     "usage: datc sweep [--scenario FILE|PRESET] [--set \"k=v; k=v\"]\n"
     "                  [--axes \"channels=1,8,64; distance=0.2,1\"]\n"
     "                  [--jobs N] [--out FILE.json]\n"
     "  Runs the cross-product of the axis values over the base scenario\n"
     "  (default preset paper-baseline) through the batch engine, one\n"
     "  grid point per pool job, and prints one comparable report row\n"
     "  per point (BENCH_scenarios.json schema with --out).\n",
     cmd_sweep},
    {"table1", "print the DTC synthesis report",
     "usage: datc table1\n"
     "  Prints the standard-cell synthesis summary (the paper's Table 1).\n",
     cmd_table1_adapter},
};

void usage() {
  std::fprintf(stderr, "usage: datc <subcommand> [--flag value ...]\n"
                       "       datc <subcommand> --help\n\n");
  for (const auto& sub : kSubcommands) {
    std::fprintf(stderr, "  %-12s %s\n", sub.name, sub.summary);
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string cmd = argv[1];
  const Subcommand* sub = nullptr;
  for (const auto& s : kSubcommands) {
    if (cmd == s.name) sub = &s;
  }
  if (sub == nullptr) {
    usage();
    return 2;
  }
  // --help anywhere on the line prints help; running a command the user
  // was still asking about would have side effects.
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0 ||
        std::strcmp(argv[i], "-h") == 0) {
      std::fprintf(stderr, "%s", sub->help);
      return 0;
    }
  }
  try {
    if (sub->run_raw != nullptr) return sub->run_raw(argc, argv);
    const auto args = parse_args(argc, argv, 2);
    return sub->run(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "datc %s: %s\n", cmd.c_str(), e.what());
    return 1;
  }
}
