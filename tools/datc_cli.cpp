// datc — command-line front end to the library.
//
//   datc generate --seed N --gain G --duration S --out sig.csv
//       synthesise a grip-protocol sEMG recording (CSV: time_s,emg_v)
//   datc encode   --in sig.csv --scheme datc|atc --vth V --out events.csv
//       run a transmitter over a recording
//   datc reconstruct --events events.csv --duration S [--truth sig.csv]
//       rebuild the force envelope; prints correlation when truth given
//   datc pipeline --channels M --jobs N [--duration S] [--seed K]
//                 [--link private|shared]
//       synthesise M channels and run the multi-threaded encoding engine
//       (encode -> UWB link -> reconstruct per channel), printing per-
//       channel scores and aggregate throughput. --link shared arbitrates
//       every channel onto ONE AER radio instead of private links.
//   datc link-sweep --channels M [--distances 0.5,1,2] [--pfa 1e-6,...]
//                   [--channel-counts 2,4,8] [--duration S] [--seed K]
//                   [--out BENCH_link.json]
//       sweep the shared AER link over distance / false-alarm rate /
//       channel count; prints per-point correlation, drop % and address
//       error %, optionally writing the JSON report
//   datc stream --in sig.csv|- --chunk N [--out envelope.csv] [--seed K]
//               [--distance D] [--channel C] [--verify 1]
//       run the full chain incrementally on N-sample chunks read from a
//       file or stdin ("-"), writing the envelope as it is emitted and
//       printing the cumulative session report; --verify 1 re-runs the
//       batch pipeline and asserts bit-identical output
//   datc table1
//       print the DTC synthesis report
//
// All I/O is CSV so results pipe straight into plotting tools.

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/atc_encoder.hpp"
#include "core/datc_encoder.hpp"
#include "core/event_io.hpp"
#include "core/reconstruct.hpp"
#include "dsp/envelope.hpp"
#include "dsp/stats.hpp"
#include "emg/dataset.hpp"
#include "runtime/pipeline_runner.hpp"
#include "runtime/session.hpp"
#include "sim/link_sweep.hpp"
#include "sim/stream_parity.hpp"
#include "synth/report.hpp"

using namespace datc;
using dsp::Real;

namespace {

using Args = std::map<std::string, std::string>;

Args parse_args(int argc, char** argv, int first) {
  Args args;
  for (int i = first; i + 1 < argc; i += 2) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) {
      throw std::invalid_argument("expected --flag, got " + key);
    }
    args[key.substr(2)] = argv[i + 1];
  }
  return args;
}

Real arg_num(const Args& a, const std::string& key, Real fallback) {
  const auto it = a.find(key);
  return it == a.end() ? fallback : std::stod(it->second);
}

std::string arg_str(const Args& a, const std::string& key,
                    const std::string& fallback) {
  const auto it = a.find(key);
  return it == a.end() ? fallback : it->second;
}

/// Comma-separated numeric list, e.g. --distances 0.5,1,2.
std::vector<Real> arg_num_list(const Args& a, const std::string& key,
                               std::vector<Real> fallback) {
  const auto it = a.find(key);
  if (it == a.end()) return fallback;
  std::vector<Real> out;
  std::istringstream ss(it->second);
  std::string cell;
  while (std::getline(ss, cell, ',')) {
    dsp::require(!cell.empty(), "--" + key + ": empty list element");
    out.push_back(std::stod(cell));
  }
  dsp::require(!out.empty(), "--" + key + ": empty list");
  return out;
}

/// Smallest AER address width covering `channels` endpoints.
unsigned address_bits_for(std::size_t channels) {
  unsigned bits = 0;
  while ((std::size_t{1} << bits) < channels) ++bits;
  return bits;
}

bool write_signal_csv(const std::string& path, const dsp::TimeSeries& sig) {
  std::ofstream f(path);
  if (!f.good()) return false;
  f << "time_s,emg_v\n";
  f.precision(10);
  for (std::size_t i = 0; i < sig.size(); ++i) {
    f << sig.time_of(i) << ',' << sig[i] << '\n';
  }
  return f.good();
}

dsp::TimeSeries read_signal_csv(const std::string& path) {
  std::ifstream f(path);
  dsp::require(f.good(), "cannot open " + path);
  std::string line;
  dsp::require(static_cast<bool>(std::getline(f, line)), "empty file");
  std::vector<Real> t;
  std::vector<Real> v;
  while (std::getline(f, line)) {
    if (line.empty()) continue;
    std::istringstream row(line);
    std::string a;
    std::string b;
    dsp::require(static_cast<bool>(std::getline(row, a, ',')) &&
                     static_cast<bool>(std::getline(row, b, ',')),
                 "bad row: " + line);
    t.push_back(std::stod(a));
    v.push_back(std::stod(b));
  }
  dsp::require(t.size() >= 2, "need at least two samples");
  const Real fs = 1.0 / (t[1] - t[0]);
  return dsp::TimeSeries(std::move(v), fs);
}

int cmd_generate(const Args& a) {
  emg::RecordingSpec spec;
  spec.seed = static_cast<std::uint64_t>(arg_num(a, "seed", 1.0));
  spec.gain_v = arg_num(a, "gain", 0.35);
  spec.duration_s = arg_num(a, "duration", 20.0);
  spec.name = "cli";
  const auto rec = emg::make_recording(spec);
  const auto out = arg_str(a, "out", "signal.csv");
  if (!write_signal_csv(out, rec.emg_v)) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  std::printf("wrote %zu samples (%.1f s, gain %.2f V) to %s\n",
              rec.emg_v.size(), spec.duration_s, spec.gain_v, out.c_str());
  return 0;
}

int cmd_encode(const Args& a) {
  const auto sig = read_signal_csv(arg_str(a, "in", "signal.csv"));
  const auto scheme = arg_str(a, "scheme", "datc");
  const auto out = arg_str(a, "out", "events.csv");
  core::EventStream events;
  if (scheme == "datc") {
    const auto r = core::encode_datc(sig, core::DatcEncoderConfig{});
    events = r.events;
  } else if (scheme == "atc") {
    core::AtcEncoderConfig cfg;
    cfg.threshold_v = arg_num(a, "vth", 0.3);
    events = core::encode_atc(sig, cfg).events;
  } else {
    std::fprintf(stderr, "unknown scheme '%s' (datc|atc)\n", scheme.c_str());
    return 1;
  }
  if (!core::write_events_csv(out, events)) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  std::printf("%s: %zu events -> %s\n", scheme.c_str(), events.size(),
              out.c_str());
  return 0;
}

int cmd_reconstruct(const Args& a) {
  const auto events = core::read_events_csv(arg_str(a, "events", "events.csv"));
  const Real duration = arg_num(a, "duration", 20.0);
  core::RateCalibrationConfig cal_cfg;
  cal_cfg.count_fs_hz = 2000.0;
  const auto cal = std::make_shared<core::RateCalibration>(cal_cfg);
  const core::DatcReconstructor rx(core::ReconstructionConfig{}, cal);
  const auto est = rx.reconstruct(events, duration);
  const auto out = arg_str(a, "out", "envelope.csv");
  {
    std::ofstream f(out);
    if (!f.good()) {
      std::fprintf(stderr, "cannot write %s\n", out.c_str());
      return 1;
    }
    f << "time_s,arv_v\n";
    for (std::size_t i = 0; i < est.size(); ++i) {
      f << static_cast<Real>(i) / 2500.0 << ',' << est[i] << '\n';
    }
  }
  std::printf("reconstructed %zu envelope samples -> %s\n", est.size(),
              out.c_str());
  const auto truth_path = arg_str(a, "truth", "");
  if (!truth_path.empty()) {
    const auto sig = read_signal_csv(truth_path);
    const auto truth = dsp::arv_envelope(sig.view(), sig.sample_rate_hz(),
                                         0.25);
    const std::size_t n = std::min(truth.size(), est.size());
    std::printf("correlation vs %s: %.2f %%\n", truth_path.c_str(),
                dsp::correlation_percent(
                    std::span<const Real>(truth.data(), n),
                    std::span<const Real>(est.data(), n)));
  }
  return 0;
}

int cmd_pipeline(const Args& a) {
  // Validate in the floating domain before casting: a negative double cast
  // to an unsigned type is UB (and in practice would wrap to ~2^64 jobs).
  const Real channels_f = arg_num(a, "channels", 16.0);
  dsp::require(channels_f >= 1.0 && channels_f <= 4096.0,
               "pipeline: --channels must lie in [1, 4096]");
  const Real jobs_f = arg_num(a, "jobs", 0.0);
  dsp::require(jobs_f >= 0.0 && jobs_f <= 1024.0,
               "pipeline: --jobs must lie in [0, 1024] (0 = hardware)");
  const Real seed_f = arg_num(a, "seed", 1.0);
  dsp::require(seed_f >= 0.0, "pipeline: --seed must be non-negative");
  const auto channels = static_cast<std::size_t>(channels_f);
  const auto jobs = static_cast<std::size_t>(jobs_f);
  const auto seed = static_cast<std::uint64_t>(seed_f);
  const Real duration = arg_num(a, "duration", 20.0);
  dsp::require(duration > 0.0, "pipeline: --duration must be positive");
  const Real gain_lo = arg_num(a, "gain-lo", 0.16);
  const Real gain_hi = arg_num(a, "gain-hi", 0.85);
  dsp::require(gain_lo > 0.0 && gain_hi >= gain_lo,
               "pipeline: need 0 < gain-lo <= gain-hi");

  std::printf("synthesising %zu channel(s) x %.1f s ...\n", channels,
              duration);
  std::vector<emg::Recording> recs;
  recs.reserve(channels);
  for (std::size_t i = 0; i < channels; ++i) {
    emg::RecordingSpec spec;
    spec.seed = seed + i;
    spec.duration_s = duration;
    spec.gain_v =
        channels == 1
            ? gain_lo
            : gain_lo * std::pow(gain_hi / gain_lo,
                                 static_cast<Real>(i) /
                                     static_cast<Real>(channels - 1));
    spec.name = "ch" + std::to_string(i);
    recs.push_back(emg::make_recording(spec));
  }

  runtime::RunnerConfig cfg;
  cfg.jobs = jobs;
  cfg.link.seed = seed;
  // Body-area link defaults (the stock ChannelConfig is below the
  // detector floor at any of these distances); --distance moves the RX.
  const Real distance = arg_num(a, "distance", 0.5);
  dsp::require(distance > 0.0, "pipeline: --distance must be positive");
  cfg.link.channel.distance_m = distance;
  cfg.link.channel.ref_loss_db = 30.0;
  const auto link_mode = arg_str(a, "link", "private");
  if (link_mode == "shared") {
    cfg.link_mode = runtime::LinkMode::kSharedAer;
    cfg.shared.aer.address_bits = address_bits_for(channels);
    const Real spacing_us = arg_num(a, "spacing-us", 2.0);
    dsp::require(spacing_us >= 0.0, "pipeline: --spacing-us must be >= 0");
    cfg.shared.aer.min_spacing_s = spacing_us * 1e-6;
  } else if (link_mode != "private") {
    std::fprintf(stderr, "unknown --link '%s' (private|shared)\n",
                 link_mode.c_str());
    return 1;
  }
  runtime::PipelineRunner runner(cfg);
  const auto report = runner.run(recs);

  // In shared mode the radio is link-wide, so per-channel pulse counts do
  // not exist — the column is dashed out and the totals printed below.
  const bool shared_mode = report.link_mode == runtime::LinkMode::kSharedAer;
  std::printf("ch  gain_v  events_tx  pulses_tx  events_rx  tx_corr  rx_corr\n");
  for (const auto& ch : report.channels) {
    std::printf("%2u  %6.3f  %9zu  ", ch.channel,
                recs[ch.channel].spec.gain_v, ch.events_tx);
    if (shared_mode) {
      std::printf("%9s  ", "-");
    } else {
      std::printf("%9zu  ", ch.pulses_tx);
    }
    std::printf("%9zu  %6.1f%%  %6.1f%%\n", ch.events_rx,
                ch.tx_correlation_pct, ch.rx_correlation_pct);
  }
  if (report.link_mode == runtime::LinkMode::kSharedAer) {
    const auto& s = report.shared;
    std::printf(
        "shared AER link: %zu events offered, %zu sent (%zu dropped in "
        "arbitration, worst queue %.2f ms), %zu pulses on air (%zu erased), "
        "%zu frames decoded, %zu bad addresses\n",
        s.arbiter.in_events, s.arbiter.sent, s.arbiter.dropped,
        s.arbiter.max_delay_s * 1e3, s.pulses_tx, s.pulses_erased,
        s.events_rx, s.demux.invalid_address);
  }
  std::printf(
      "%zu channel(s) on %zu job(s): %.1f ms wall, %.0fx realtime\n",
      report.channels.size(), runner.jobs(), report.wall_seconds * 1e3,
      report.throughput_x_realtime());
  return 0;
}

int cmd_link_sweep(const Args& a) {
  const Real channels_f = arg_num(a, "channels", 8.0);
  dsp::require(channels_f >= 1.0 && channels_f <= 4096.0,
               "link-sweep: --channels must lie in [1, 4096]");
  sim::LinkSweepConfig cfg;
  cfg.channels = static_cast<std::size_t>(channels_f);
  cfg.duration_s = arg_num(a, "duration", 5.0);
  dsp::require(cfg.duration_s > 0.0, "link-sweep: --duration must be > 0");
  const Real seed_f = arg_num(a, "seed", 500.0);
  dsp::require(seed_f >= 0.0, "link-sweep: --seed must be non-negative");
  cfg.emg_seed = static_cast<std::uint64_t>(seed_f);
  cfg.distances_m = arg_num_list(a, "distances", cfg.distances_m);
  cfg.false_alarm_probs = arg_num_list(a, "pfa", cfg.false_alarm_probs);
  for (const Real v : arg_num_list(a, "channel-counts", {})) {
    dsp::require(v >= 1.0, "link-sweep: bad --channel-counts entry");
    cfg.channel_counts.push_back(static_cast<std::size_t>(v));
  }
  cfg.shared.aer.address_bits = address_bits_for(cfg.channels);
  const Real spacing_us = arg_num(a, "spacing-us", 2.0);
  dsp::require(spacing_us >= 0.0, "link-sweep: --spacing-us must be >= 0");
  cfg.shared.aer.min_spacing_s = spacing_us * 1e-6;

  std::printf(
      "shared AER link sweep: %zu channel(s) x %.1f s, %u address bit(s), "
      "%.1f us slot\n",
      cfg.channels, cfg.duration_s, cfg.shared.aer.address_bits, spacing_us);
  const auto result = sim::run_link_sweep(cfg);
  std::printf("%s", sim::link_sweep_table(result).c_str());

  const auto out = arg_str(a, "out", "");
  if (!out.empty()) {
    if (!sim::write_link_sweep_json(out, cfg, result)) {
      std::fprintf(stderr, "cannot write %s\n", out.c_str());
      return 1;
    }
    std::printf("wrote %zu sweep point(s) to %s\n", result.points.size(),
                out.c_str());
  }
  return 0;
}

int cmd_stream(const Args& a) {
  const Real chunk_f = arg_num(a, "chunk", 256.0);
  dsp::require(chunk_f >= 1.0 && chunk_f <= 1e6,
               "stream: --chunk must lie in [1, 1e6]");
  const auto chunk = static_cast<std::size_t>(chunk_f);
  const Real seed_f = arg_num(a, "seed", 7.0);
  dsp::require(seed_f >= 0.0, "stream: --seed must be non-negative");
  const Real channel_f = arg_num(a, "channel", 0.0);
  dsp::require(channel_f >= 0.0 && channel_f <= 65535.0,
               "stream: --channel must lie in [0, 65535]");
  const Real distance = arg_num(a, "distance", 0.5);
  dsp::require(distance > 0.0, "stream: --distance must be positive");

  // CSV source: file or stdin.
  const auto in = arg_str(a, "in", "-");
  std::ifstream file;
  std::istream* is = &std::cin;
  if (in != "-") {
    file.open(in);
    dsp::require(file.good(), "cannot open " + in);
    is = &file;
  }
  std::string line;
  dsp::require(static_cast<bool>(std::getline(*is, line)),
               "stream: empty input");  // header
  const auto read_row = [&](Real* t, Real* v) -> bool {
    while (std::getline(*is, line)) {
      if (line.empty()) continue;
      std::istringstream row(line);
      std::string t_cell;
      std::string v_cell;
      dsp::require(static_cast<bool>(std::getline(row, t_cell, ',')) &&
                       static_cast<bool>(std::getline(row, v_cell, ',')),
                   "bad row: " + line);
      *t = std::stod(t_cell);
      *v = std::stod(v_cell);
      return true;
    }
    return false;
  };
  // The sample rate comes from the time column (first two rows), not an
  // assumption — a mis-declared rate would silently mis-parameterise the
  // whole chain.
  Real t0;
  Real v0;
  Real t1;
  Real v1;
  dsp::require(read_row(&t0, &v0) && read_row(&t1, &v1),
               "stream: need at least two samples");
  dsp::require(t1 > t0, "stream: time column must be increasing");
  const Real fs = 1.0 / (t1 - t0);

  sim::EvalConfig eval;
  eval.analog_fs_hz = fs;
  sim::LinkConfig link;
  link.seed = static_cast<std::uint64_t>(seed_f);
  link.channel.distance_m = distance;
  link.channel.ref_loss_db = 30.0;  // body-area defaults, as in `pipeline`

  // One Monte Carlo calibration (the receiver's rate-inversion table).
  core::RateCalibrationConfig cal_cfg;
  cal_cfg.analog_fs_hz = eval.analog_fs_hz;
  cal_cfg.band_lo_hz = eval.band_lo_hz;
  cal_cfg.band_hi_hz = eval.band_hi_hz;
  cal_cfg.count_fs_hz = eval.datc_clock_hz;
  const auto cal = std::make_shared<core::RateCalibration>(cal_cfg);

  const bool verify = arg_num(a, "verify", 0.0) != 0.0;
  auto cfg = sim::make_session_config(eval, link, cal);
  cfg.keep_rx_events = verify;
  runtime::StreamingSession session(
      cfg, static_cast<std::uint32_t>(channel_f));

  const auto out_path = arg_str(a, "out", "envelope.csv");
  std::ofstream fout(out_path);
  if (!fout.good()) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  fout << "time_s,arv_v\n";
  fout.precision(10);

  std::vector<Real> all_samples;  // retained only when verifying
  std::vector<Real> all_arv;      // ditto: the envelope actually written
  std::vector<Real> chunk_buf;
  chunk_buf.reserve(chunk);
  std::vector<Real> arv;
  std::size_t emitted = 0;
  const auto flush_chunk = [&] {
    if (chunk_buf.empty()) return;
    session.push_chunk(chunk_buf);
    chunk_buf.clear();
    arv.clear();
    session.drain_arv(arv);
    for (const Real v : arv) {
      fout << static_cast<Real>(emitted++) / eval.analog_fs_hz << ',' << v
           << '\n';
    }
    if (verify) all_arv.insert(all_arv.end(), arv.begin(), arv.end());
  };
  const auto push_sample = [&](Real v) {
    chunk_buf.push_back(v);
    if (verify) all_samples.push_back(v);
    if (chunk_buf.size() >= chunk) flush_chunk();
  };
  push_sample(v0);
  push_sample(v1);
  Real t_row;
  Real v_row;
  while (read_row(&t_row, &v_row)) push_sample(v_row);
  flush_chunk();
  session.finish();
  arv.clear();
  session.drain_arv(arv);
  for (const Real v : arv) {
    fout << static_cast<Real>(emitted++) / eval.analog_fs_hz << ',' << v
         << '\n';
  }
  if (verify) all_arv.insert(all_arv.end(), arv.begin(), arv.end());

  const auto report = session.report();
  std::printf(
      "streamed %zu samples (%.0f Hz) in %zu-sample chunks: %zu events tx, "
      "%zu pulses on air (%zu erased), %zu events rx, %zu envelope samples "
      "-> %s\n",
      report.samples_in, fs, chunk, report.events_tx, report.pulses_tx,
      report.pulses_erased, report.events_rx, report.arv_emitted,
      out_path.c_str());
  std::printf("fixed latency %.0f ms, peak working set %.1f KiB\n",
              1e3 * (eval.window_s / 2.0 + 1.0 / eval.analog_fs_hz),
              static_cast<Real>(session.peak_buffered_bytes()) / 1024.0);

  if (verify) {
    // Verify the envelope THIS run emitted (not a fresh re-stream), so
    // the CLI's own feed path is covered too.
    const dsp::TimeSeries sig(std::move(all_samples), eval.analog_fs_hz);
    const auto r = sim::check_stream_output(
        sig, eval, link, cal, chunk, static_cast<std::uint32_t>(channel_f),
        session.rx_events(), all_arv);
    std::printf("verify vs batch: events %s (%zu), ARV %s (max diff %.3g)\n",
                r.events_equal ? "identical" : "DIFFER", r.events_batch,
                r.arv_equal ? "identical" : "DIFFER", r.max_abs_arv_diff);
    if (!r.identical()) return 1;
  }
  return 0;
}

int cmd_table1() {
  std::vector<bool> stim(8000);
  for (std::size_t i = 0; i < stim.size(); ++i) stim[i] = (i / 7) % 4 == 0;
  const auto rep = synth::synthesize_dtc(core::DtcConfig{}, stim);
  std::printf("%s", synth::format_table1(rep).c_str());
  return 0;
}

void usage() {
  std::fprintf(stderr,
               "usage: datc "
               "<generate|encode|reconstruct|pipeline|link-sweep|stream|"
               "table1> [--flag value ...]\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string cmd = argv[1];
  try {
    const auto args = parse_args(argc, argv, 2);
    if (cmd == "generate") return cmd_generate(args);
    if (cmd == "encode") return cmd_encode(args);
    if (cmd == "reconstruct") return cmd_reconstruct(args);
    if (cmd == "pipeline") return cmd_pipeline(args);
    if (cmd == "link-sweep") return cmd_link_sweep(args);
    if (cmd == "stream") return cmd_stream(args);
    if (cmd == "table1") return cmd_table1();
    usage();
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "datc %s: %s\n", cmd.c_str(), e.what());
    return 1;
  }
}
