// datc — command-line front end to the library.
//
//   datc generate --seed N --gain G --duration S --out sig.csv
//       synthesise a grip-protocol sEMG recording (CSV: time_s,emg_v)
//   datc encode   --in sig.csv --scheme datc|atc --vth V --out events.csv
//       run a transmitter over a recording
//   datc reconstruct --events events.csv --duration S [--truth sig.csv]
//       rebuild the force envelope; prints correlation when truth given
//   datc pipeline --channels M --jobs N [--duration S] [--seed K]
//       synthesise M channels and run the multi-threaded encoding engine
//       (encode -> UWB link -> reconstruct per channel), printing per-
//       channel scores and aggregate throughput
//   datc table1
//       print the DTC synthesis report
//
// All I/O is CSV so results pipe straight into plotting tools.

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/atc_encoder.hpp"
#include "core/datc_encoder.hpp"
#include "core/event_io.hpp"
#include "core/reconstruct.hpp"
#include "dsp/envelope.hpp"
#include "dsp/stats.hpp"
#include "emg/dataset.hpp"
#include "runtime/pipeline_runner.hpp"
#include "synth/report.hpp"

using namespace datc;
using dsp::Real;

namespace {

using Args = std::map<std::string, std::string>;

Args parse_args(int argc, char** argv, int first) {
  Args args;
  for (int i = first; i + 1 < argc; i += 2) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) {
      throw std::invalid_argument("expected --flag, got " + key);
    }
    args[key.substr(2)] = argv[i + 1];
  }
  return args;
}

Real arg_num(const Args& a, const std::string& key, Real fallback) {
  const auto it = a.find(key);
  return it == a.end() ? fallback : std::stod(it->second);
}

std::string arg_str(const Args& a, const std::string& key,
                    const std::string& fallback) {
  const auto it = a.find(key);
  return it == a.end() ? fallback : it->second;
}

bool write_signal_csv(const std::string& path, const dsp::TimeSeries& sig) {
  std::ofstream f(path);
  if (!f.good()) return false;
  f << "time_s,emg_v\n";
  f.precision(10);
  for (std::size_t i = 0; i < sig.size(); ++i) {
    f << sig.time_of(i) << ',' << sig[i] << '\n';
  }
  return f.good();
}

dsp::TimeSeries read_signal_csv(const std::string& path) {
  std::ifstream f(path);
  dsp::require(f.good(), "cannot open " + path);
  std::string line;
  dsp::require(static_cast<bool>(std::getline(f, line)), "empty file");
  std::vector<Real> t;
  std::vector<Real> v;
  while (std::getline(f, line)) {
    if (line.empty()) continue;
    std::istringstream row(line);
    std::string a;
    std::string b;
    dsp::require(static_cast<bool>(std::getline(row, a, ',')) &&
                     static_cast<bool>(std::getline(row, b, ',')),
                 "bad row: " + line);
    t.push_back(std::stod(a));
    v.push_back(std::stod(b));
  }
  dsp::require(t.size() >= 2, "need at least two samples");
  const Real fs = 1.0 / (t[1] - t[0]);
  return dsp::TimeSeries(std::move(v), fs);
}

int cmd_generate(const Args& a) {
  emg::RecordingSpec spec;
  spec.seed = static_cast<std::uint64_t>(arg_num(a, "seed", 1.0));
  spec.gain_v = arg_num(a, "gain", 0.35);
  spec.duration_s = arg_num(a, "duration", 20.0);
  spec.name = "cli";
  const auto rec = emg::make_recording(spec);
  const auto out = arg_str(a, "out", "signal.csv");
  if (!write_signal_csv(out, rec.emg_v)) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  std::printf("wrote %zu samples (%.1f s, gain %.2f V) to %s\n",
              rec.emg_v.size(), spec.duration_s, spec.gain_v, out.c_str());
  return 0;
}

int cmd_encode(const Args& a) {
  const auto sig = read_signal_csv(arg_str(a, "in", "signal.csv"));
  const auto scheme = arg_str(a, "scheme", "datc");
  const auto out = arg_str(a, "out", "events.csv");
  core::EventStream events;
  if (scheme == "datc") {
    const auto r = core::encode_datc(sig, core::DatcEncoderConfig{});
    events = r.events;
  } else if (scheme == "atc") {
    core::AtcEncoderConfig cfg;
    cfg.threshold_v = arg_num(a, "vth", 0.3);
    events = core::encode_atc(sig, cfg).events;
  } else {
    std::fprintf(stderr, "unknown scheme '%s' (datc|atc)\n", scheme.c_str());
    return 1;
  }
  if (!core::write_events_csv(out, events)) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  std::printf("%s: %zu events -> %s\n", scheme.c_str(), events.size(),
              out.c_str());
  return 0;
}

int cmd_reconstruct(const Args& a) {
  const auto events = core::read_events_csv(arg_str(a, "events", "events.csv"));
  const Real duration = arg_num(a, "duration", 20.0);
  core::RateCalibrationConfig cal_cfg;
  cal_cfg.count_fs_hz = 2000.0;
  const auto cal = std::make_shared<core::RateCalibration>(cal_cfg);
  const core::DatcReconstructor rx(core::ReconstructionConfig{}, cal);
  const auto est = rx.reconstruct(events, duration);
  const auto out = arg_str(a, "out", "envelope.csv");
  {
    std::ofstream f(out);
    if (!f.good()) {
      std::fprintf(stderr, "cannot write %s\n", out.c_str());
      return 1;
    }
    f << "time_s,arv_v\n";
    for (std::size_t i = 0; i < est.size(); ++i) {
      f << static_cast<Real>(i) / 2500.0 << ',' << est[i] << '\n';
    }
  }
  std::printf("reconstructed %zu envelope samples -> %s\n", est.size(),
              out.c_str());
  const auto truth_path = arg_str(a, "truth", "");
  if (!truth_path.empty()) {
    const auto sig = read_signal_csv(truth_path);
    const auto truth = dsp::arv_envelope(sig.view(), sig.sample_rate_hz(),
                                         0.25);
    const std::size_t n = std::min(truth.size(), est.size());
    std::printf("correlation vs %s: %.2f %%\n", truth_path.c_str(),
                dsp::correlation_percent(
                    std::span<const Real>(truth.data(), n),
                    std::span<const Real>(est.data(), n)));
  }
  return 0;
}

int cmd_pipeline(const Args& a) {
  // Validate in the floating domain before casting: a negative double cast
  // to an unsigned type is UB (and in practice would wrap to ~2^64 jobs).
  const Real channels_f = arg_num(a, "channels", 16.0);
  dsp::require(channels_f >= 1.0 && channels_f <= 4096.0,
               "pipeline: --channels must lie in [1, 4096]");
  const Real jobs_f = arg_num(a, "jobs", 0.0);
  dsp::require(jobs_f >= 0.0 && jobs_f <= 1024.0,
               "pipeline: --jobs must lie in [0, 1024] (0 = hardware)");
  const Real seed_f = arg_num(a, "seed", 1.0);
  dsp::require(seed_f >= 0.0, "pipeline: --seed must be non-negative");
  const auto channels = static_cast<std::size_t>(channels_f);
  const auto jobs = static_cast<std::size_t>(jobs_f);
  const auto seed = static_cast<std::uint64_t>(seed_f);
  const Real duration = arg_num(a, "duration", 20.0);
  dsp::require(duration > 0.0, "pipeline: --duration must be positive");
  const Real gain_lo = arg_num(a, "gain-lo", 0.16);
  const Real gain_hi = arg_num(a, "gain-hi", 0.85);
  dsp::require(gain_lo > 0.0 && gain_hi >= gain_lo,
               "pipeline: need 0 < gain-lo <= gain-hi");

  std::printf("synthesising %zu channel(s) x %.1f s ...\n", channels,
              duration);
  std::vector<emg::Recording> recs;
  recs.reserve(channels);
  for (std::size_t i = 0; i < channels; ++i) {
    emg::RecordingSpec spec;
    spec.seed = seed + i;
    spec.duration_s = duration;
    spec.gain_v =
        channels == 1
            ? gain_lo
            : gain_lo * std::pow(gain_hi / gain_lo,
                                 static_cast<Real>(i) /
                                     static_cast<Real>(channels - 1));
    spec.name = "ch" + std::to_string(i);
    recs.push_back(emg::make_recording(spec));
  }

  runtime::RunnerConfig cfg;
  cfg.jobs = jobs;
  cfg.link.seed = seed;
  runtime::PipelineRunner runner(cfg);
  const auto report = runner.run(recs);

  std::printf("ch  gain_v  events_tx  pulses_tx  events_rx  tx_corr  rx_corr\n");
  for (const auto& ch : report.channels) {
    std::printf("%2u  %6.3f  %9zu  %9zu  %9zu  %6.1f%%  %6.1f%%\n",
                ch.channel, recs[ch.channel].spec.gain_v, ch.events_tx,
                ch.pulses_tx, ch.events_rx, ch.tx_correlation_pct,
                ch.rx_correlation_pct);
  }
  std::printf(
      "%zu channel(s) on %zu job(s): %.1f ms wall, %.0fx realtime\n",
      report.channels.size(), runner.jobs(), report.wall_seconds * 1e3,
      report.throughput_x_realtime());
  return 0;
}

int cmd_table1() {
  std::vector<bool> stim(8000);
  for (std::size_t i = 0; i < stim.size(); ++i) stim[i] = (i / 7) % 4 == 0;
  const auto rep = synth::synthesize_dtc(core::DtcConfig{}, stim);
  std::printf("%s", synth::format_table1(rep).c_str());
  return 0;
}

void usage() {
  std::fprintf(stderr,
               "usage: datc <generate|encode|reconstruct|pipeline|table1> "
               "[--flag value ...]\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string cmd = argv[1];
  try {
    const auto args = parse_args(argc, argv, 2);
    if (cmd == "generate") return cmd_generate(args);
    if (cmd == "encode") return cmd_encode(args);
    if (cmd == "reconstruct") return cmd_reconstruct(args);
    if (cmd == "pipeline") return cmd_pipeline(args);
    if (cmd == "table1") return cmd_table1();
    usage();
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "datc %s: %s\n", cmd.c_str(), e.what());
    return 1;
  }
}
