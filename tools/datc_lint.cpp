// datc_lint — the repo-specific determinism/correctness lint.
//
// Generic static analyzers cannot know this repo's invariants; these four
// rules encode the bug classes past PRs actually hit, as a token/regex
// "AST-lite" pass over src/ (no libclang dependency, runs anywhere the
// repo builds):
//
//   wall-clock      The deterministic layers (core/, uwb/, sim/, fault/,
//                   config/) promise bit-identical outputs from seeds
//                   alone. Wall-clock and ambient-entropy sources —
//                   std::chrono::system_clock, time(), rand(), srand(),
//                   clock(), std::random_device, gettimeofday — are
//                   banned there; dsp::Rng carries all randomness.
//
//   float-eq        Raw float/double ==/!= against a floating literal is
//                   almost always a latent tolerance bug. Exact equality
//                   is the *parity harness's* job (sim/stream_parity.*,
//                   exempt); everywhere else compare against a bound or
//                   go through the harness.
//
//   narrow-channel  PR 2's bug class: channel ids / AER addresses are
//                   u16 end-to-end. Casting or declaring them at 8 bits
//                   (static_cast<uint8_t>(...channel...), `uint8_t
//                   channel`) silently truncates address spaces > 256.
//
//   store-io        PR 6's retry contract: every write-side file
//                   operation in store/ goes through the fault::FileIo
//                   seam so faults inject and retries stay positional.
//                   Direct std::ofstream / fopen / fwrite in store/
//                   bypass the seam. Reads are exempt.
//
// Escape hatch: a comment containing `datc-lint: allow(<rule>)` on the
// offending line or the line above suppresses that rule there — use it
// with a reason, the way sanitizer suppressions carry one.
//
// Adding a rule: add a Rule entry to kRules, implement its check_*
// function over the stripped source, and drop a violating fixture into
// tools/lint_fixtures/ with a `datc-lint-fixture:` directive so the
// self-test pins it. See README "Correctness tooling".
//
// Usage:
//   datc_lint --root DIR [--root DIR]... [FILE]...   lint; exit 1 on findings
//   datc_lint --self-test FIXTURE_DIR                fixture mode
//   datc_lint --list-rules

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Finding {
  std::string file;
  int line{0};
  std::string rule;
  std::string message;
};

struct Rule {
  const char* name;
  const char* summary;
};

constexpr Rule kRules[] = {
    {"wall-clock",
     "no wall-clock/ambient-entropy calls in the deterministic layers "
     "(core/, uwb/, sim/, fault/, config/)"},
    {"float-eq",
     "no raw float/double ==/!= against floating literals outside the "
     "parity harness"},
    {"narrow-channel",
     "no narrowing of channel ids / AER addresses below u16"},
    {"store-io",
     "no write-side file I/O in store/ bypassing the fault::FileIo seam"},
};

bool is_known_rule(const std::string& name) {
  for (const auto& r : kRules) {
    if (name == r.name) return true;
  }
  return false;
}

// ------------------------------------------------------------ source prep

/// Line number (1-based) of offset `pos` in `text`.
int line_of(const std::string& text, std::size_t pos) {
  return 1 + static_cast<int>(std::count(text.begin(), text.begin() +
                                             static_cast<long>(pos), '\n'));
}

/// Blanks comments and string/char literals with spaces (newlines kept,
/// so offsets and line numbers survive). Handles //, /*...*/, "...",
/// '...', and R"delim(...)delim" raw strings.
std::string strip_comments_and_strings(const std::string& src) {
  std::string out = src;
  std::size_t i = 0;
  const std::size_t n = src.size();
  auto blank = [&out](std::size_t from, std::size_t to) {
    for (std::size_t k = from; k < to; ++k) {
      if (out[k] != '\n') out[k] = ' ';
    }
  };
  while (i < n) {
    const char c = src[i];
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      std::size_t j = i;
      while (j < n && src[j] != '\n') ++j;
      blank(i, j);
      i = j;
    } else if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      std::size_t j = src.find("*/", i + 2);
      j = (j == std::string::npos) ? n : j + 2;
      blank(i, j);
      i = j;
    } else if (c == 'R' && i + 1 < n && src[i + 1] == '"' &&
               (i == 0 || (!std::isalnum(static_cast<unsigned char>(
                               src[i - 1])) &&
                           src[i - 1] != '_'))) {
      // Raw string: R"delim( ... )delim"
      std::size_t p = i + 2;
      std::string delim;
      while (p < n && src[p] != '(') delim += src[p++];
      const std::string closer = ")" + delim + "\"";
      std::size_t j = src.find(closer, p);
      j = (j == std::string::npos) ? n : j + closer.size();
      blank(i, j);
      i = j;
    } else if (c == '"' || c == '\'') {
      // Skip char/string literal with escapes. A lone apostrophe inside
      // a digit sequence is a C++14 digit separator, not a literal.
      if (c == '\'' && i > 0 &&
          std::isdigit(static_cast<unsigned char>(src[i - 1]))) {
        ++i;
        continue;
      }
      std::size_t j = i + 1;
      while (j < n && src[j] != c) {
        j += (src[j] == '\\') ? 2 : 1;
      }
      j = (j >= n) ? n : j + 1;
      blank(i, j);
      i = j;
    } else {
      ++i;
    }
  }
  return out;
}

/// Lines carrying a `datc-lint: allow(rule[,rule...])` marker (from the
/// ORIGINAL source — markers live in comments). A marker suppresses its
/// rules on its own line, across the rest of its comment block (lines
/// that are comment-only), and on the first code line after it — so a
/// marker whose justification wraps still covers the line it guards.
std::map<int, std::set<std::string>> collect_allow_markers(
    const std::string& src) {
  std::vector<std::string> lines;
  {
    std::stringstream ss(src);
    std::string line;
    while (std::getline(ss, line)) lines.push_back(line);
  }
  const auto comment_only = [](const std::string& line) {
    const auto b = line.find_first_not_of(" \t");
    return b != std::string::npos && line.compare(b, 2, "//") == 0;
  };
  std::map<int, std::set<std::string>> allow;
  static const std::string kTag = "datc-lint: allow(";
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const auto pos = lines[i].find(kTag);
    if (pos == std::string::npos) continue;
    const std::size_t open = pos + kTag.size();
    const std::size_t close = lines[i].find(')', open);
    if (close == std::string::npos) continue;
    std::set<std::string> rules;
    std::stringstream list(lines[i].substr(open, close - open));
    std::string rule;
    while (std::getline(list, rule, ',')) {
      rule.erase(std::remove_if(rule.begin(), rule.end(), ::isspace),
                 rule.end());
      if (!rule.empty()) rules.insert(rule);
    }
    // Marker line, trailing comment-only lines, first code line after.
    std::size_t j = i;
    allow[static_cast<int>(j + 1)].insert(rules.begin(), rules.end());
    while (j + 1 < lines.size() && comment_only(lines[j + 1])) {
      ++j;
      allow[static_cast<int>(j + 1)].insert(rules.begin(), rules.end());
    }
    allow[static_cast<int>(j + 2)].insert(rules.begin(), rules.end());
  }
  return allow;
}

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Identifier token with its offset.
struct Token {
  std::string text;
  std::size_t pos{0};
};

std::vector<Token> identifiers(const std::string& stripped) {
  std::vector<Token> out;
  std::size_t i = 0;
  const std::size_t n = stripped.size();
  while (i < n) {
    if (is_ident_char(stripped[i]) &&
        !std::isdigit(static_cast<unsigned char>(stripped[i]))) {
      std::size_t j = i;
      while (j < n && is_ident_char(stripped[j])) ++j;
      out.push_back(Token{stripped.substr(i, j - i), i});
      i = j;
    } else {
      ++i;
    }
  }
  return out;
}

char next_nonspace(const std::string& s, std::size_t pos) {
  while (pos < s.size()) {
    if (!std::isspace(static_cast<unsigned char>(s[pos]))) return s[pos];
    ++pos;
  }
  return '\0';
}

/// True when the identifier at `tok` is a member access (`.x` / `->x`)
/// or qualified by something other than `std` (`foo::x` where foo!=std).
bool is_member_or_nonstd_qualified(const std::string& s, const Token& tok) {
  std::size_t p = tok.pos;
  while (p > 0 &&
         std::isspace(static_cast<unsigned char>(s[p - 1]))) {
    --p;
  }
  if (p == 0) return false;
  if (s[p - 1] == '.') return true;
  if (p >= 2 && s[p - 2] == '-' && s[p - 1] == '>') return true;
  if (p >= 2 && s[p - 2] == ':' && s[p - 1] == ':') {
    // Qualified: find the qualifier identifier.
    std::size_t q = p - 2;
    while (q > 0 && std::isspace(static_cast<unsigned char>(s[q - 1]))) --q;
    std::size_t e = q;
    while (q > 0 && is_ident_char(s[q - 1])) --q;
    return s.substr(q, e - q) != "std";
  }
  return false;
}

// ------------------------------------------------------------- layer map

/// Forward-slashed path for matching (fixtures pass virtual paths).
std::string norm_path(const std::string& path) {
  std::string p = path;
  std::replace(p.begin(), p.end(), '\\', '/');
  return p;
}

bool in_dir(const std::string& path, const char* dir) {
  const std::string p = norm_path(path);
  const std::string mid = std::string("/") + dir + "/";
  const std::string pre = std::string(dir) + "/";
  return p.find(mid) != std::string::npos || p.rfind(pre, 0) == 0;
}

bool in_deterministic_layer(const std::string& path) {
  return in_dir(path, "core") || in_dir(path, "uwb") ||
         in_dir(path, "sim") || in_dir(path, "fault") ||
         in_dir(path, "config");
}

bool is_parity_harness(const std::string& path) {
  return norm_path(path).find("stream_parity.") != std::string::npos;
}

// ----------------------------------------------------------------- rules

void check_wall_clock(const std::string& path, const std::string& stripped,
                      std::vector<Finding>& out) {
  if (!in_deterministic_layer(path)) return;
  static const std::set<std::string> kBannedAnywhere = {
      "system_clock", "random_device", "gettimeofday", "clock_gettime",
      "timespec_get"};
  static const std::set<std::string> kBannedCalls = {"time", "rand", "srand",
                                                     "clock"};
  for (const auto& tok : identifiers(stripped)) {
    const bool call_like =
        next_nonspace(stripped, tok.pos + tok.text.size()) == '(';
    if (kBannedAnywhere.count(tok.text) != 0 ||
        (call_like && kBannedCalls.count(tok.text) != 0 &&
         !is_member_or_nonstd_qualified(stripped, tok))) {
      out.push_back({path, line_of(stripped, tok.pos), "wall-clock",
                     "'" + tok.text +
                         "' in a deterministic layer — outputs must be a "
                         "pure function of seeds (use dsp::Rng / passed-in "
                         "times)"});
    }
  }
}

/// Floating literal: digits with a '.', or a bare exponent (1e-3), with
/// optional f/F/l/L suffix. `.5` and `2.` count; plain integers do not.
bool looks_like_float_literal(std::string t) {
  if (!t.empty() && (t.back() == 'f' || t.back() == 'F' || t.back() == 'l' ||
                     t.back() == 'L')) {
    t.pop_back();
  }
  if (t.empty()) return false;
  if (!std::isdigit(static_cast<unsigned char>(t[0])) && t[0] != '.') {
    return false;
  }
  bool digit = false;
  bool dot = false;
  bool exp = false;
  for (std::size_t i = 0; i < t.size(); ++i) {
    const char c = t[i];
    if (std::isdigit(static_cast<unsigned char>(c))) {
      digit = true;
    } else if (c == '.' && !dot && !exp) {
      dot = true;
    } else if ((c == 'e' || c == 'E') && digit && !exp) {
      exp = true;
      if (i + 1 < t.size() && (t[i + 1] == '+' || t[i + 1] == '-')) ++i;
    } else {
      return false;
    }
  }
  return digit && (dot || exp);
}

void check_float_eq(const std::string& path, const std::string& stripped,
                    std::vector<Finding>& out) {
  if (is_parity_harness(path)) return;
  const std::size_t n = stripped.size();
  for (std::size_t i = 0; i + 1 < n; ++i) {
    if (stripped[i + 1] != '=' ||
        (stripped[i] != '=' && stripped[i] != '!')) {
      continue;
    }
    // Exclude ===, <=, >=, ==>, spaceship etc.
    if (i > 0 && (stripped[i - 1] == '=' || stripped[i - 1] == '<' ||
                  stripped[i - 1] == '>' || stripped[i - 1] == '!')) {
      continue;
    }
    if (i + 2 < n && stripped[i + 2] == '=') continue;
    // Right token.
    std::size_t r = i + 2;
    while (r < n && std::isspace(static_cast<unsigned char>(stripped[r]))) {
      ++r;
    }
    if (r < n && (stripped[r] == '-' || stripped[r] == '+')) ++r;
    std::size_t re = r;
    while (re < n && (is_ident_char(stripped[re]) || stripped[re] == '.' ||
                      ((stripped[re] == '-' || stripped[re] == '+') &&
                       re > r && (stripped[re - 1] == 'e' ||
                                  stripped[re - 1] == 'E')))) {
      ++re;
    }
    const std::string right = stripped.substr(r, re - r);
    // Left token.
    std::size_t l = i;
    while (l > 0 &&
           std::isspace(static_cast<unsigned char>(stripped[l - 1]))) {
      --l;
    }
    std::size_t lb = l;
    while (lb > 0 && (is_ident_char(stripped[lb - 1]) ||
                      stripped[lb - 1] == '.')) {
      --lb;
    }
    const std::string left = stripped.substr(lb, l - lb);
    if (looks_like_float_literal(left) || looks_like_float_literal(right)) {
      out.push_back({path, line_of(stripped, i), "float-eq",
                     "raw floating ==/!= against a literal — compare with "
                     "a tolerance, or route exactness through the parity "
                     "harness (sim/stream_parity)"});
    }
  }
}

/// True when `text` carries an identifier naming a channel id or AER
/// address. Identifiers ending in "bits" are widths/offsets (addr_bits,
/// address_bits), not ids, and are excluded.
bool mentions_channel_or_address(const std::string& text) {
  for (const auto& tok : identifiers(text)) {
    std::string low = tok.text;
    std::transform(low.begin(), low.end(), low.begin(),
                   [](unsigned char c) {
                     return static_cast<char>(std::tolower(c));
                   });
    if (low.size() >= 4 && low.rfind("bits") == low.size() - 4) continue;
    if (low.find("channel") != std::string::npos ||
        low.find("addr") != std::string::npos) {
      return true;
    }
  }
  return false;
}

void check_narrow_channel(const std::string& path,
                          const std::string& stripped,
                          std::vector<Finding>& out) {
  const std::size_t n = stripped.size();
  // Pattern A: static_cast<narrow>(...channel/addr...).
  std::size_t pos = 0;
  while ((pos = stripped.find("static_cast", pos)) != std::string::npos) {
    const std::size_t open = stripped.find('<', pos);
    if (open == std::string::npos) break;
    const std::size_t close = stripped.find('>', open);
    if (close == std::string::npos) break;
    std::string type = stripped.substr(open + 1, close - open - 1);
    type.erase(std::remove_if(type.begin(), type.end(), ::isspace),
               type.end());
    const bool narrow = type == "std::uint8_t" || type == "uint8_t" ||
                        type == "std::int8_t" || type == "int8_t" ||
                        type == "unsignedchar" || type == "signedchar" ||
                        type == "char";
    if (narrow) {
      std::size_t p = stripped.find('(', close);
      if (p != std::string::npos) {
        int depth = 1;
        std::size_t q = p + 1;
        while (q < n && depth > 0) {
          depth += (stripped[q] == '(') - (stripped[q] == ')');
          ++q;
        }
        const std::string arg = stripped.substr(p + 1, q - p - 2);
        if (mentions_channel_or_address(arg)) {
          out.push_back(
              {path, line_of(stripped, pos), "narrow-channel",
               "narrowing a channel id / address to " + type +
                   " — ids are u16 end-to-end (the PR 2 truncation bug)"});
        }
      }
    }
    pos = close;
  }
  // Pattern B: `uint8_t <name-with-channel/addr>` declarations. The
  // declared name may be separated from the type by `*`, `&`/`&&` and
  // cv-qualifiers (`uint8_t* channel_ids`, `uint8_t const& channel`);
  // any other punctuation (`uint8_t>` in a template argument, `(uint8_t)`
  // casts) means this is not a declaration.
  const auto toks = identifiers(stripped);
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const std::string& t = toks[i].text;
    const bool narrow8 =
        t == "uint8_t" || t == "int8_t" ||
        (t == "char" && i > 0 &&
         (toks[i - 1].text == "unsigned" || toks[i - 1].text == "signed"));
    if (!narrow8) continue;
    std::string name;
    std::size_t p = toks[i].pos + t.size();
    while (p < n) {
      const char c = stripped[p];
      if (std::isspace(static_cast<unsigned char>(c)) || c == '*' ||
          c == '&') {
        ++p;
        continue;
      }
      if (!is_ident_char(c)) break;
      std::size_t e = p;
      while (e < n && is_ident_char(stripped[e])) ++e;
      const std::string word = stripped.substr(p, e - p);
      if (word == "const" || word == "volatile") {
        p = e;
        continue;
      }
      name = word;
      break;
    }
    if (name.empty()) continue;
    if (mentions_channel_or_address(name)) {
      out.push_back({path, line_of(stripped, toks[i].pos), "narrow-channel",
                     "declaring '" + name + "' as " + t +
                         " — channel ids / addresses are u16 end-to-end"});
    }
  }
}

void check_store_io(const std::string& path, const std::string& stripped,
                    std::vector<Finding>& out) {
  if (!in_dir(path, "store")) return;
  static const std::set<std::string> kBanned = {
      "ofstream", "fopen", "freopen", "fwrite", "fprintf", "fputs",
      "fputc", "creat", "FILE"};
  for (const auto& tok : identifiers(stripped)) {
    if (kBanned.count(tok.text) != 0) {
      out.push_back({path, line_of(stripped, tok.pos), "store-io",
                     "'" + tok.text +
                         "' writes in store/ bypassing the fault::FileIo "
                         "seam — use fault::write_file / LogWriterConfig::io "
                         "so faults inject and retries stay positional"});
    }
  }
}

// ------------------------------------------------------------- lint driver

std::vector<Finding> lint_source(const std::string& path,
                                 const std::string& src) {
  const std::string stripped = strip_comments_and_strings(src);
  const auto allow = collect_allow_markers(src);
  std::vector<Finding> raw;
  check_wall_clock(path, stripped, raw);
  check_float_eq(path, stripped, raw);
  check_narrow_channel(path, stripped, raw);
  check_store_io(path, stripped, raw);
  std::vector<Finding> out;
  for (auto& f : raw) {
    const auto it = allow.find(f.line);
    if (it != allow.end() && it->second.count(f.rule) != 0) continue;
    out.push_back(std::move(f));
  }
  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    return std::tie(a.file, a.line, a.rule) <
           std::tie(b.file, b.line, b.rule);
  });
  return out;
}

std::string read_file(const fs::path& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f.good()) {
    std::cerr << "datc_lint: cannot open " << path << "\n";
    std::exit(2);
  }
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

bool lintable(const fs::path& p) {
  const auto ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".cc" || ext == ".h";
}

int run_lint(const std::vector<std::string>& roots,
             const std::vector<std::string>& files) {
  std::vector<fs::path> targets;
  for (const auto& root : roots) {
    if (!fs::is_directory(root)) {
      std::cerr << "datc_lint: --root " << root << " is not a directory\n";
      return 2;
    }
    for (const auto& entry : fs::recursive_directory_iterator(root)) {
      if (entry.is_regular_file() && lintable(entry.path())) {
        targets.push_back(entry.path());
      }
    }
  }
  for (const auto& f : files) targets.emplace_back(f);
  std::sort(targets.begin(), targets.end());
  std::vector<Finding> findings;
  for (const auto& t : targets) {
    const auto file_findings = lint_source(t.string(), read_file(t));
    findings.insert(findings.end(), file_findings.begin(),
                    file_findings.end());
  }
  for (const auto& f : findings) {
    std::cout << f.file << ":" << f.line << ": [" << f.rule << "] "
              << f.message << "\n";
  }
  std::cout << "datc_lint: " << targets.size() << " files, "
            << findings.size() << " finding(s)\n";
  return findings.empty() ? 0 : 1;
}

// --------------------------------------------------------------- self-test

/// Fixture directive: `// datc-lint-fixture: rule=<rule|none> path=<vpath>`
/// on the first line. The fixture is linted AS IF it lived at <vpath>;
/// rule=<r> must produce >= 1 finding, all of rule <r>; rule=none must be
/// clean (exercises allow-markers and layer scoping).
int run_self_test(const std::string& dir) {
  if (!fs::is_directory(dir)) {
    std::cerr << "datc_lint: fixture dir " << dir << " not found\n";
    return 2;
  }
  std::vector<fs::path> fixtures;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.is_regular_file() && lintable(entry.path())) {
      fixtures.push_back(entry.path());
    }
  }
  std::sort(fixtures.begin(), fixtures.end());
  if (fixtures.empty()) {
    std::cerr << "datc_lint: no fixtures in " << dir << "\n";
    return 2;
  }
  int failures = 0;
  std::set<std::string> covered;
  for (const auto& fixture : fixtures) {
    const std::string src = read_file(fixture);
    static const std::string kTag = "datc-lint-fixture:";
    const auto tag_pos = src.find(kTag);
    std::string expected_rule;
    std::string vpath;
    if (tag_pos != std::string::npos) {
      const std::string header =
          src.substr(tag_pos, src.find('\n', tag_pos) - tag_pos);
      std::stringstream ss(header.substr(kTag.size()));
      std::string kv;
      while (ss >> kv) {
        const auto eq = kv.find('=');
        if (eq == std::string::npos) continue;
        const std::string key = kv.substr(0, eq);
        if (key == "rule") expected_rule = kv.substr(eq + 1);
        if (key == "path") vpath = kv.substr(eq + 1);
      }
    }
    if (expected_rule.empty() || vpath.empty() ||
        (expected_rule != "none" && !is_known_rule(expected_rule))) {
      std::cerr << "FAIL " << fixture.filename().string()
                << ": missing/bad `datc-lint-fixture: rule=... path=...` "
                   "directive\n";
      ++failures;
      continue;
    }
    const auto findings = lint_source(vpath, src);
    bool ok;
    if (expected_rule == "none") {
      ok = findings.empty();
    } else {
      ok = !findings.empty() &&
           std::all_of(findings.begin(), findings.end(),
                       [&expected_rule](const Finding& f) {
                         return f.rule == expected_rule;
                       });
    }
    if (ok) {
      if (expected_rule != "none") covered.insert(expected_rule);
      std::cout << "PASS " << fixture.filename().string() << " ("
                << expected_rule << ", " << findings.size()
                << " finding(s))\n";
    } else {
      std::cerr << "FAIL " << fixture.filename().string() << ": expected "
                << (expected_rule == "none"
                        ? "no findings"
                        : ">=1 finding, all of rule '" + expected_rule + "'")
                << ", got " << findings.size() << ":\n";
      for (const auto& f : findings) {
        std::cerr << "  " << f.file << ":" << f.line << ": [" << f.rule
                  << "] " << f.message << "\n";
      }
      ++failures;
    }
  }
  // Every rule must have at least one violating fixture: a rule whose
  // fixture disappears (or silently stops firing) is an unenforced rule.
  for (const auto& r : kRules) {
    if (covered.count(r.name) == 0) {
      std::cerr << "FAIL: rule '" << r.name
                << "' has no passing violating fixture in " << dir << "\n";
      ++failures;
    }
  }
  std::cout << "datc_lint self-test: " << fixtures.size() << " fixtures, "
            << failures << " failure(s)\n";
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> roots;
  std::vector<std::string> files;
  std::string self_test_dir;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      roots.emplace_back(argv[++i]);
    } else if (arg == "--self-test" && i + 1 < argc) {
      self_test_dir = argv[++i];
    } else if (arg == "--list-rules") {
      for (const auto& r : kRules) {
        std::cout << r.name << "\t" << r.summary << "\n";
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: datc_lint [--root DIR]... [FILE]...\n"
                   "       datc_lint --self-test FIXTURE_DIR\n"
                   "       datc_lint --list-rules\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "datc_lint: unknown option " << arg << "\n";
      return 2;
    } else {
      files.push_back(arg);
    }
  }
  if (!self_test_dir.empty()) return run_self_test(self_test_dir);
  if (roots.empty() && files.empty()) {
    std::cerr << "datc_lint: nothing to lint (pass --root or files)\n";
    return 2;
  }
  return run_lint(roots, files);
}
