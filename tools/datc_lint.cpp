// datc_lint — the repo-specific static analyzer.
//
// Generic tools cannot know this repo's invariants. datc_lint encodes
// them as two passes over a shared C++ tokenizer (tools/lint/lexer.*,
// literal/comment/preprocessor-aware — no libclang dependency, runs
// anywhere the repo builds):
//
// File-scope rules (tools/lint/rules.cpp):
//
//   wall-clock      The deterministic layers (core/, uwb/, sim/, fault/,
//                   config/, emg/) promise bit-identical outputs from
//                   seeds alone; wall-clock/ambient-entropy calls are
//                   banned there — dsp::Rng carries all randomness.
//   float-eq        Raw float/double ==/!= against a floating literal is
//                   a latent tolerance bug; exact equality is the parity
//                   harness's job (sim/stream_parity.*, exempt).
//   narrow-channel  PR 2's bug class: channel ids / AER addresses are
//                   u16 end-to-end; 8-bit casts/declarations truncate.
//   store-io        PR 6's retry contract: write-side file I/O in store/
//                   must go through the fault::FileIo seam.
//   rng-fork        PR 3's bug class: an Rng passed into a per-channel/
//                   per-chunk loop body without .fork() makes the draw
//                   order depend on chunking.
//   lock-scope      No manual std::mutex::lock() without a RAII guard;
//                   no guard held across a thread-pool submit/enqueue/
//                   parallel_for handoff.
//   hot-alloc       The block kernel and per-pulse hot loops
//                   (core/datc_block.hpp, uwb/receiver.cpp,
//                   core/streaming_reconstruct.*) must not allocate.
//
// Include-graph rules (tools/lint/include_graph.cpp) — one graph, four
// rule families: include-cycle, layer-order (the src/ layer DAG),
// include-unused and include-transitive (IWYU-lite). The same graph
// emits docs/include_graph.dot, drift-checked in CI.
//
// Escape hatches: `datc-lint: allow(<rule>)` in a comment on/above the
// offending line (use with a written reason), and `datc-lint:
// export(Name, ...)` in a header to declare symbols the heuristic
// extractor cannot see.
//
// Usage:
//   datc_lint --root DIR [--root DIR]... [FILE]...  lint; exit 1 on findings
//       --graph           also run the include-graph pass over each root
//       --diff BASE       only report findings in files changed vs BASE
//       --sarif OUT       write findings as SARIF 2.1.0 (code scanning)
//       --dot OUT         write the directory-level include graph as DOT
//   datc_lint --self-test FIXTURE_DIR               fixture mode
//   datc_lint --list-rules

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "lint/include_graph.hpp"
#include "lint/lexer.hpp"
#include "lint/rules.hpp"

namespace {

namespace fs = std::filesystem;

using datc_lint::Finding;
using datc_lint::IncludeGraph;
using datc_lint::LayerSpec;

std::string read_file(const fs::path& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f.good()) {
    std::cerr << "datc_lint: cannot open " << path << "\n";
    std::exit(2);
  }
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

bool lintable(const fs::path& p) {
  const auto ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".cc" || ext == ".h";
}

std::string norm(const std::string& p) {
  return fs::path(p).lexically_normal().generic_string();
}

// ------------------------------------------------------------- diff mode

/// Files changed relative to BASE (git diff), normalized; deleted files
/// excluded. Exits 2 when git cannot answer — a silent empty set would
/// make --diff mode pass vacuously.
std::set<std::string> git_changed_files(const std::string& base) {
  const std::string cmd =
      "git diff --name-only --diff-filter=d " + base + " -- '*.cpp' '*.hpp' "
      "'*.cc' '*.h'";
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) {
    std::cerr << "datc_lint: cannot run git for --diff " << base << "\n";
    std::exit(2);
  }
  std::string output;
  char buf[4096];
  std::size_t got = 0;
  while ((got = fread(buf, 1, sizeof(buf), pipe)) > 0) {
    output.append(buf, got);
  }
  const int rc = pclose(pipe);
  if (rc != 0) {
    std::cerr << "datc_lint: `" << cmd << "` failed (exit " << rc << ")\n";
    std::exit(2);
  }
  std::set<std::string> files;
  std::stringstream ss(output);
  std::string line;
  while (std::getline(ss, line)) {
    if (!line.empty()) files.insert(norm(line));
  }
  return files;
}

// ------------------------------------------------------------------ SARIF

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char hex[8];
          std::snprintf(hex, sizeof(hex), "\\u%04x", c);
          out += hex;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// SARIF 2.1.0 with full rule metadata, consumable by GitHub code
/// scanning (upload-sarif) and by anything else that reads SARIF.
void write_sarif(std::ostream& os, const std::vector<Finding>& findings) {
  os << "{\n"
     << "  \"$schema\": "
        "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
     << "  \"version\": \"2.1.0\",\n"
     << "  \"runs\": [{\n"
     << "    \"tool\": {\"driver\": {\n"
     << "      \"name\": \"datc_lint\",\n"
     << "      \"informationUri\": "
        "\"https://example.invalid/datc/README.md#correctness-tooling\",\n"
     << "      \"rules\": [\n";
  const auto& rules = datc_lint::all_rules();
  for (std::size_t i = 0; i < rules.size(); ++i) {
    os << "        {\"id\": \"" << rules[i].name
       << "\", \"shortDescription\": {\"text\": \""
       << json_escape(rules[i].summary) << "\"}}"
       << (i + 1 < rules.size() ? "," : "") << "\n";
  }
  os << "      ]\n    }},\n    \"results\": [\n";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    os << "      {\"ruleId\": \"" << f.rule
       << "\", \"level\": \"error\", \"message\": {\"text\": \""
       << json_escape(f.message) << "\"}, \"locations\": [{"
       << "\"physicalLocation\": {\"artifactLocation\": {\"uri\": \""
       << json_escape(norm(f.file)) << "\"}, \"region\": {\"startLine\": "
       << std::max(1, f.line) << "}}}]}"
       << (i + 1 < findings.size() ? "," : "") << "\n";
  }
  os << "    ]\n  }]\n}\n";
}

// ------------------------------------------------------------ lint driver

struct Options {
  std::vector<std::string> roots;
  std::vector<std::string> files;
  bool graph{false};
  std::string diff_base;
  std::string sarif_out;
  std::string dot_out;
};

int write_output(const std::string& out_path, const std::string& content,
                 const char* what) {
  if (out_path == "-") {
    std::cout << content;
    return 0;
  }
  std::ofstream f(out_path, std::ios::binary);
  f << content;
  if (!f.good()) {
    std::cerr << "datc_lint: cannot write " << what << " to " << out_path
              << "\n";
    return 2;
  }
  return 0;
}

int run_lint(const Options& opt) {
  std::vector<fs::path> targets;
  for (const auto& root : opt.roots) {
    if (!fs::is_directory(root)) {
      std::cerr << "datc_lint: --root " << root << " is not a directory\n";
      return 2;
    }
    for (const auto& entry : fs::recursive_directory_iterator(root)) {
      if (entry.is_regular_file() && lintable(entry.path())) {
        targets.push_back(entry.path());
      }
    }
  }
  for (const auto& f : opt.files) targets.emplace_back(f);
  std::sort(targets.begin(), targets.end());

  std::vector<Finding> findings;
  for (const auto& t : targets) {
    const auto file_findings =
        datc_lint::lint_source(t.generic_string(), read_file(t));
    findings.insert(findings.end(), file_findings.begin(),
                    file_findings.end());
  }

  const LayerSpec spec = datc_lint::datc_layer_spec();
  for (const std::string& err : spec.spec_errors()) {
    std::cerr << "datc_lint: BAD LAYER TABLE: " << err << "\n";
  }
  if (!spec.spec_errors().empty()) return 2;

  if (opt.graph || !opt.dot_out.empty()) {
    if (opt.roots.empty()) {
      std::cerr << "datc_lint: --graph/--dot need at least one --root\n";
      return 2;
    }
    for (const auto& root : opt.roots) {
      const IncludeGraph graph = IncludeGraph::build(root);
      if (opt.graph) {
        const auto graph_findings = graph.check(spec);
        findings.insert(findings.end(), graph_findings.begin(),
                        graph_findings.end());
      }
      if (!opt.dot_out.empty()) {
        // One DOT file describes one tree; multiple roots would clobber.
        if (opt.roots.size() != 1) {
          std::cerr << "datc_lint: --dot requires exactly one --root\n";
          return 2;
        }
        const int rc =
            write_output(opt.dot_out, graph.to_dot(spec), "DOT graph");
        if (rc != 0) return rc;
      }
    }
  }

  // --diff BASE: the full tree is still analyzed (graph properties are
  // global) but only findings in changed files are reported.
  if (!opt.diff_base.empty()) {
    const std::set<std::string> changed = git_changed_files(opt.diff_base);
    std::vector<Finding> kept;
    for (auto& f : findings) {
      if (changed.count(norm(f.file)) != 0) kept.push_back(std::move(f));
    }
    std::cout << "datc_lint: --diff " << opt.diff_base << ": "
              << changed.size() << " changed file(s) in scope\n";
    findings = std::move(kept);
  }
  datc_lint::sort_findings(findings);

  for (const auto& f : findings) {
    std::cout << f.file << ":" << f.line << ": [" << f.rule << "] "
              << f.message << "\n";
  }
  std::cout << "datc_lint: " << targets.size() << " files, "
            << findings.size() << " finding(s)\n";
  if (!opt.sarif_out.empty()) {
    std::ostringstream ss;
    write_sarif(ss, findings);
    const int rc = write_output(opt.sarif_out, ss.str(), "SARIF");
    if (rc != 0) return rc;
  }
  return findings.empty() ? 0 : 1;
}

// --------------------------------------------------------------- self-test

/// Flat fixture directive, first comment line:
///   datc-lint-fixture: rule=<rule|none> path=<vpath> [clean=<r1,r2,...>]
/// The fixture is linted AS IF it lived at <vpath>. rule=<r> must produce
/// >= 1 finding, all of rule <r>; rule=none must be clean, and its
/// clean= list records which rules it deliberately exercises the clean
/// side of (near-miss patterns that must NOT fire).
///
/// Graph fixtures live in FIXTURE_DIR/graph/<case>/: a mini source tree
/// plus an EXPECT file of `rule|relpath|line|message-substring` lines
/// (or the single word `none`). The include-graph pass must reproduce
/// exactly those diagnostics.
///
/// Coverage accounting: every file-scope rule needs >= 1 passing
/// violating fixture AND >= 1 clean fixture claiming it; every graph
/// rule needs >= 1 expected diagnostic across the graph cases, and at
/// least one graph case must be `none`. An unenforced rule is a lie in
/// the README.
int run_self_test(const std::string& dir) {
  if (!fs::is_directory(dir)) {
    std::cerr << "datc_lint: fixture dir " << dir << " not found\n";
    return 2;
  }
  int failures = 0;
  std::set<std::string> violating_covered;
  std::set<std::string> clean_covered;

  // ---- flat fixtures: file-scope rules ----
  std::vector<fs::path> fixtures;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.is_regular_file() && lintable(entry.path())) {
      fixtures.push_back(entry.path());
    }
  }
  std::sort(fixtures.begin(), fixtures.end());
  if (fixtures.empty()) {
    std::cerr << "datc_lint: no fixtures in " << dir << "\n";
    return 2;
  }
  for (const auto& fixture : fixtures) {
    const std::string src = read_file(fixture);
    static const std::string kTag = "datc-lint-fixture:";
    const auto tag_pos = src.find(kTag);
    std::string expected_rule;
    std::string vpath;
    std::vector<std::string> clean_claims;
    if (tag_pos != std::string::npos) {
      const std::string header =
          src.substr(tag_pos, src.find('\n', tag_pos) - tag_pos);
      std::stringstream ss(header.substr(kTag.size()));
      std::string kv;
      while (ss >> kv) {
        const auto eq = kv.find('=');
        if (eq == std::string::npos) continue;
        const std::string key = kv.substr(0, eq);
        const std::string val = kv.substr(eq + 1);
        if (key == "rule") expected_rule = val;
        if (key == "path") vpath = val;
        if (key == "clean") {
          std::stringstream list(val);
          std::string r;
          while (std::getline(list, r, ',')) {
            if (!r.empty()) clean_claims.push_back(r);
          }
        }
      }
    }
    bool directive_ok =
        !expected_rule.empty() && !vpath.empty() &&
        (expected_rule == "none" || datc_lint::is_known_rule(expected_rule));
    for (const auto& r : clean_claims) {
      if (!datc_lint::is_known_rule(r)) directive_ok = false;
    }
    if (!clean_claims.empty() && expected_rule != "none") {
      directive_ok = false;  // clean= only makes sense on clean fixtures
    }
    if (!directive_ok) {
      std::cerr << "FAIL " << fixture.filename().string()
                << ": missing/bad `datc-lint-fixture: rule=... path=... "
                   "[clean=...]` directive\n";
      ++failures;
      continue;
    }
    const auto findings = datc_lint::lint_source(vpath, src);
    bool ok;
    if (expected_rule == "none") {
      ok = findings.empty();
    } else {
      ok = !findings.empty() &&
           std::all_of(findings.begin(), findings.end(),
                       [&expected_rule](const Finding& f) {
                         return f.rule == expected_rule;
                       });
    }
    if (ok) {
      if (expected_rule != "none") violating_covered.insert(expected_rule);
      clean_covered.insert(clean_claims.begin(), clean_claims.end());
      std::cout << "PASS " << fixture.filename().string() << " ("
                << expected_rule << ", " << findings.size()
                << " finding(s))\n";
    } else {
      std::cerr << "FAIL " << fixture.filename().string() << ": expected "
                << (expected_rule == "none"
                        ? "no findings"
                        : ">=1 finding, all of rule '" + expected_rule + "'")
                << ", got " << findings.size() << ":\n";
      for (const auto& f : findings) {
        std::cerr << "  " << f.file << ":" << f.line << ": [" << f.rule
                  << "] " << f.message << "\n";
      }
      ++failures;
    }
  }

  // ---- the layer table itself must be a valid DAG ----
  const LayerSpec spec = datc_lint::datc_layer_spec();
  for (const std::string& err : spec.spec_errors()) {
    std::cerr << "FAIL layer table: " << err << "\n";
    ++failures;
  }

  // ---- graph fixtures: include-graph rules with exact diagnostics ----
  std::set<std::string> graph_covered;
  bool graph_clean_case = false;
  const fs::path graph_dir = fs::path(dir) / "graph";
  std::vector<fs::path> cases;
  if (fs::is_directory(graph_dir)) {
    for (const auto& entry : fs::directory_iterator(graph_dir)) {
      if (entry.is_directory()) cases.push_back(entry.path());
    }
  }
  std::sort(cases.begin(), cases.end());
  for (const auto& case_dir : cases) {
    const fs::path expect_path = case_dir / "EXPECT";
    if (!fs::is_regular_file(expect_path)) {
      std::cerr << "FAIL graph/" << case_dir.filename().string()
                << ": no EXPECT file\n";
      ++failures;
      continue;
    }
    struct Expected {
      std::string rule, rel, substring;
      int line{0};
    };
    std::vector<Expected> expected;
    bool expect_none = false;
    {
      std::stringstream ss(read_file(expect_path));
      std::string line;
      while (std::getline(ss, line)) {
        if (line.empty() || line[0] == '#') continue;
        if (line == "none") {
          expect_none = true;
          continue;
        }
        Expected e;
        std::stringstream parts(line);
        std::string field;
        std::getline(parts, e.rule, '|');
        std::getline(parts, e.rel, '|');
        std::getline(parts, field, '|');
        std::getline(parts, e.substring);
        e.line = field.empty() ? 0 : std::stoi(field);
        expected.push_back(std::move(e));
      }
    }
    const IncludeGraph graph = IncludeGraph::build(case_dir.string());
    const auto findings = graph.check(spec);
    bool ok = true;
    std::string why;
    if (expect_none) {
      ok = findings.empty();
      if (!ok) why = "expected no findings";
    } else {
      // Exact set match: every expected diagnostic present (rule, file,
      // line, message substring) and no unexpected ones.
      if (findings.size() != expected.size()) {
        ok = false;
        why = "expected " + std::to_string(expected.size()) +
              " finding(s), got " + std::to_string(findings.size());
      }
      for (const auto& e : expected) {
        const std::string want_file =
            (case_dir / e.rel).lexically_normal().generic_string();
        const bool found = std::any_of(
            findings.begin(), findings.end(), [&](const Finding& f) {
              return f.rule == e.rule && norm(f.file) == want_file &&
                     f.line == e.line &&
                     f.message.find(e.substring) != std::string::npos;
            });
        if (!found) {
          ok = false;
          why = "missing diagnostic " + e.rule + "|" + e.rel + "|" +
                std::to_string(e.line) + "|" + e.substring;
          break;
        }
      }
    }
    if (ok) {
      if (expect_none) graph_clean_case = true;
      for (const auto& e : expected) graph_covered.insert(e.rule);
      std::cout << "PASS graph/" << case_dir.filename().string() << " ("
                << (expect_none ? "none"
                                : std::to_string(expected.size()) +
                                      " diagnostic(s)")
                << ")\n";
    } else {
      std::cerr << "FAIL graph/" << case_dir.filename().string() << ": "
                << why << "; actual findings:\n";
      for (const auto& f : findings) {
        std::cerr << "  " << f.file << ":" << f.line << ": [" << f.rule
                  << "] " << f.message << "\n";
      }
      ++failures;
    }
  }

  // ---- coverage accounting ----
  for (const auto& r : datc_lint::file_rules()) {
    if (violating_covered.count(r.name) == 0) {
      std::cerr << "FAIL: rule '" << r.name
                << "' has no passing violating fixture in " << dir << "\n";
      ++failures;
    }
    if (clean_covered.count(r.name) == 0) {
      std::cerr << "FAIL: rule '" << r.name
                << "' has no clean fixture claiming it (clean=" << r.name
                << ") in " << dir << "\n";
      ++failures;
    }
  }
  for (const auto& r : datc_lint::all_rules()) {
    const bool graph_rule =
        std::string(r.name).rfind("include-", 0) == 0 ||
        std::string(r.name) == "layer-order";
    if (graph_rule && graph_covered.count(r.name) == 0) {
      std::cerr << "FAIL: graph rule '" << r.name
                << "' has no graph fixture case expecting it\n";
      ++failures;
    }
  }
  if (!cases.empty() && !graph_clean_case) {
    std::cerr << "FAIL: no clean graph fixture case (EXPECT `none`)\n";
    ++failures;
  }
  if (cases.empty()) {
    std::cerr << "FAIL: no graph fixture cases in "
              << graph_dir.generic_string() << "\n";
    ++failures;
  }

  std::cout << "datc_lint self-test: " << fixtures.size() << " fixtures + "
            << cases.size() << " graph case(s), " << failures
            << " failure(s)\n";
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  std::string self_test_dir;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      opt.roots.emplace_back(argv[++i]);
    } else if (arg == "--self-test" && i + 1 < argc) {
      self_test_dir = argv[++i];
    } else if (arg == "--graph") {
      opt.graph = true;
    } else if (arg == "--diff" && i + 1 < argc) {
      opt.diff_base = argv[++i];
    } else if (arg == "--sarif" && i + 1 < argc) {
      opt.sarif_out = argv[++i];
    } else if (arg == "--dot" && i + 1 < argc) {
      opt.dot_out = argv[++i];
    } else if (arg == "--list-rules") {
      for (const auto& r : datc_lint::all_rules()) {
        std::cout << r.name << "\t" << r.summary << "\n";
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      std::cout
          << "usage: datc_lint [--root DIR]... [FILE]...\n"
             "         [--graph] [--diff BASE] [--sarif OUT] [--dot OUT]\n"
             "       datc_lint --self-test FIXTURE_DIR\n"
             "       datc_lint --list-rules\n"
             "OUT may be '-' for stdout. Exit: 0 clean, 1 findings, "
             "2 usage/IO error.\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "datc_lint: unknown option " << arg << "\n";
      return 2;
    } else {
      opt.files.push_back(arg);
    }
  }
  if (!self_test_dir.empty()) return run_self_test(self_test_dir);
  if (opt.roots.empty() && opt.files.empty()) {
    std::cerr << "datc_lint: nothing to lint (pass --root or files)\n";
    return 2;
  }
  return run_lint(opt);
}
