#pragma once
// Include-graph pass: builds the real #include graph over a source tree
// and checks it against the repo's intended layer DAG.
//
// Four rule families come out of one graph:
//
//   include-cycle       any cycle in the file-level include graph
//   layer-order         a cross-directory include not in the allowed
//                       layer table (a back-edge, e.g. core/ -> runtime/)
//   include-unused      a direct include none of whose exported symbols
//                       are referenced by the including file
//   include-transitive  a symbol used whose (unique) declaring header is
//                       only reachable transitively — include it directly
//
// The same graph is emitted as DOT (directory-level condensation with
// rank clusters), committed as docs/include_graph.dot and drift-checked
// in CI, so the architecture diagram can never go stale.
//
// Symbol extraction is heuristic (class/struct/enum/union names, using
// aliases, typedefs, #defines, namespace-scope function/variable names):
// good enough to lint a tree we also control. Escape hatches: the
// standard `datc-lint: allow(rule)` marker on the offending line, and a
// `datc-lint: export(Name, ...)` marker in a header to declare symbols
// the extractor cannot see.

#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint/lexer.hpp"
#include "lint/rules.hpp"

namespace datc_lint {

/// One layer (top-level directory under the linted root) and the layers
/// it may include from. Every allowed dependency must have a strictly
/// lower rank, so the table itself is a DAG by construction (validated
/// by spec_errors()).
struct Layer {
  std::string dir;
  int rank{0};
  std::vector<std::string> allowed;
};

struct LayerSpec {
  std::vector<Layer> layers;

  [[nodiscard]] const Layer* find(const std::string& dir) const;
  /// Table self-check: unknown deps, non-decreasing ranks. Empty == OK.
  [[nodiscard]] std::vector<std::string> spec_errors() const;
};

/// The repo's intended layer DAG for src/ (documented in README
/// "Correctness tooling"; the generated docs/include_graph.dot shows the
/// edges actually present).
[[nodiscard]] LayerSpec datc_layer_spec();

struct GraphFile {
  std::string rel;   ///< path relative to the root, forward slashes
  std::string dir;   ///< first path component ("" if at the root)
  bool header{false};
  std::vector<std::size_t> direct;  ///< indices of resolved includes
  std::vector<int> direct_lines;    ///< line of each include directive
  std::vector<Token> tokens;
  std::map<int, std::set<std::string>> allow;  ///< allow-marker lines
  std::set<std::string> exported;  ///< declared top-level names (headers)
  std::set<std::string> declared;  ///< same extraction, any file kind
};

class IncludeGraph {
 public:
  /// Scans `root` recursively for C++ sources, resolves quote-includes
  /// against the root, and lexes every file once.
  [[nodiscard]] static IncludeGraph build(const std::string& root);

  /// Runs every graph rule; findings are allow-marker filtered and carry
  /// paths prefixed with the build root.
  [[nodiscard]] std::vector<Finding> check(const LayerSpec& spec) const;

  /// Directory-level condensation as deterministic DOT.
  [[nodiscard]] std::string to_dot(const LayerSpec& spec) const;

  [[nodiscard]] const std::vector<GraphFile>& files() const { return files_; }

 private:
  std::string root_;
  std::vector<GraphFile> files_;

  [[nodiscard]] std::string display(std::size_t idx) const;
  void check_cycles(std::vector<Finding>& out) const;
  void check_layers(const LayerSpec& spec, std::vector<Finding>& out) const;
  void check_iwyu(const LayerSpec& spec, std::vector<Finding>& out) const;
};

}  // namespace datc_lint
