#include "lint/lexer.hpp"

#include <cctype>

namespace datc_lint {
namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}
bool digit(char c) { return std::isdigit(static_cast<unsigned char>(c)); }

/// Multi-character operators, longest first (maximal munch).
const char* const kPuncts[] = {
    "<<=", ">>=", "<=>", "...", "->*", "::", "->", "==", "!=", "<=", ">=",
    "&&",  "||",  "<<",  ">>",  "+=",  "-=", "*=", "/=", "%=", "&=", "|=",
    "^=",  "++",  "--",  ".*",
};

}  // namespace

LexedSource lex(const std::string& src) {
  LexedSource out;
  out.stripped = src;
  const std::size_t n = src.size();
  std::size_t i = 0;
  int line = 1;
  bool in_directive = false;      // inside a # line (continuations honored)
  bool line_has_code = false;     // a non-ws token already seen on this line

  auto blank = [&out](std::size_t from, std::size_t to) {
    for (std::size_t k = from; k < to && k < out.stripped.size(); ++k) {
      if (out.stripped[k] != '\n') out.stripped[k] = ' ';
    }
  };
  auto count_lines = [&src](std::size_t from, std::size_t to) {
    int c = 0;
    for (std::size_t k = from; k < to && k < src.size(); ++k) {
      if (src[k] == '\n') ++c;
    }
    return c;
  };

  while (i < n) {
    const char c = src[i];
    // ---- newlines terminate directives (unless escaped) ----
    if (c == '\n') {
      in_directive = false;
      line_has_code = false;
      ++line;
      ++i;
      continue;
    }
    if (c == '\\' && i + 1 < n && src[i + 1] == '\n') {
      ++line;
      i += 2;  // line continuation: the directive (if any) carries on
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // ---- comments ----
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      std::size_t j = i;
      while (j < n && src[j] != '\n') ++j;
      blank(i, j);
      i = j;
      continue;
    }
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      std::size_t j = src.find("*/", i + 2);
      j = (j == std::string::npos) ? n : j + 2;
      blank(i, j);
      line += count_lines(i, j);
      i = j;
      continue;
    }
    // ---- preprocessor directive start ----
    if (c == '#' && !line_has_code) {
      in_directive = true;
      line_has_code = true;
      out.tokens.push_back({TokKind::kPunct, "#", line, i, true});
      ++i;
      // Peek the directive name; `#include` gets its path captured here
      // because <...> would otherwise lex as operators.
      std::size_t j = i;
      while (j < n && (src[j] == ' ' || src[j] == '\t')) ++j;
      std::size_t e = j;
      while (e < n && ident_char(src[e])) ++e;
      const std::string word = src.substr(j, e - j);
      if (!word.empty()) {
        out.tokens.push_back({TokKind::kIdent, word, line, j, true});
      }
      i = e;
      if (word == "include" || word == "include_next") {
        while (i < n && (src[i] == ' ' || src[i] == '\t')) ++i;
        if (i < n && (src[i] == '"' || src[i] == '<')) {
          const char close = (src[i] == '<') ? '>' : '"';
          const bool angled = (src[i] == '<');
          std::size_t p = i + 1;
          std::size_t q = p;
          while (q < n && src[q] != close && src[q] != '\n') ++q;
          out.includes.push_back({src.substr(p, q - p), angled, line});
          blank(i, (q < n) ? q + 1 : q);
          i = (q < n && src[q] == close) ? q + 1 : q;
        }
      }
      continue;
    }
    line_has_code = true;
    // ---- raw strings ----
    if (c == 'R' && i + 1 < n && src[i + 1] == '"' &&
        (i == 0 || !ident_char(src[i - 1]))) {
      std::size_t p = i + 2;
      std::string delim;
      while (p < n && src[p] != '(' && delim.size() < 16) delim += src[p++];
      const std::string closer = ")" + delim + "\"";
      std::size_t j = src.find(closer, p);
      j = (j == std::string::npos) ? n : j + closer.size();
      out.tokens.push_back({TokKind::kString,
                            src.substr(i, j - i), line, i, in_directive});
      blank(i, j);
      line += count_lines(i, j);
      i = j;
      continue;
    }
    // ---- string / char literals ----
    if (c == '"' || c == '\'') {
      // An apostrophe between digits is a C++14 digit separator; the
      // number lexer below consumes it, so reaching here with a digit on
      // the left means a genuine char literal boundary was mis-guessed —
      // never happens because numbers are lexed greedily first.
      std::size_t j = i + 1;
      while (j < n && src[j] != c && src[j] != '\n') {
        j += (src[j] == '\\' && j + 1 < n) ? 2 : 1;
      }
      j = (j < n && src[j] == c) ? j + 1 : j;
      out.tokens.push_back({c == '"' ? TokKind::kString : TokKind::kChar,
                            src.substr(i + 1, j - i - (j > i + 1 ? 2 : 1)),
                            line, i, in_directive});
      blank(i, j);
      i = j;
      continue;
    }
    // ---- numbers (pp-number: covers hex, exponents, suffixes, ') ----
    if (digit(c) || (c == '.' && i + 1 < n && digit(src[i + 1]))) {
      std::size_t j = i;
      while (j < n) {
        const char d = src[j];
        if (ident_char(d) || d == '.') {
          ++j;
        } else if ((d == '+' || d == '-') && j > i &&
                   (src[j - 1] == 'e' || src[j - 1] == 'E' ||
                    src[j - 1] == 'p' || src[j - 1] == 'P')) {
          ++j;
        } else if (d == '\'' && j + 1 < n && ident_char(src[j + 1])) {
          ++j;  // digit separator
        } else {
          break;
        }
      }
      out.tokens.push_back({TokKind::kNumber, src.substr(i, j - i), line, i,
                            in_directive});
      i = j;
      continue;
    }
    // ---- identifiers ----
    if (ident_start(c)) {
      std::size_t j = i;
      while (j < n && ident_char(src[j])) ++j;
      out.tokens.push_back({TokKind::kIdent, src.substr(i, j - i), line, i,
                            in_directive});
      i = j;
      continue;
    }
    // ---- punctuation, maximal munch ----
    {
      std::string text(1, c);
      for (const char* p : kPuncts) {
        const std::size_t len = std::char_traits<char>::length(p);
        if (src.compare(i, len, p) == 0) {
          text.assign(p);
          break;
        }
      }
      out.tokens.push_back({TokKind::kPunct, text, line, i, in_directive});
      i += text.size();
    }
  }
  return out;
}

}  // namespace datc_lint
