# Regenerates the architecture diagram from the real include graph and
# fails when the committed docs/include_graph.dot has drifted. Run via:
#   cmake -DDATC_LINT=<path> -DSOURCE_DIR=<repo> -P check_dot_drift.cmake
# (wired up as the `datc_lint_dot_drift` ctest).
#
# To refresh the committed file after an intentional architecture change:
#   build/datc_lint --root src --dot docs/include_graph.dot

if(NOT DEFINED DATC_LINT OR NOT DEFINED SOURCE_DIR)
  message(FATAL_ERROR "need -DDATC_LINT=<datc_lint binary> -DSOURCE_DIR=<repo root>")
endif()

set(committed "${SOURCE_DIR}/docs/include_graph.dot")
set(generated "${CMAKE_CURRENT_BINARY_DIR}/include_graph.gen.dot")

if(NOT EXISTS "${committed}")
  message(FATAL_ERROR
    "docs/include_graph.dot is missing — generate it with "
    "`datc_lint --root src --dot docs/include_graph.dot` and commit it")
endif()

execute_process(
  COMMAND "${DATC_LINT}" --root "${SOURCE_DIR}/src" --dot "${generated}"
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
# Exit 1 just means the sweep found lint findings elsewhere; the DOT file
# is still written. Only 2+ (usage/IO) is fatal here.
if(rc GREATER 1)
  message(FATAL_ERROR "datc_lint --dot failed (${rc}): ${out}${err}")
endif()

execute_process(
  COMMAND "${CMAKE_COMMAND}" -E compare_files "${committed}" "${generated}"
  RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
  execute_process(COMMAND "${CMAKE_COMMAND}" -E echo "--- committed: ${committed}")
  file(READ "${committed}" committed_text)
  file(READ "${generated}" generated_text)
  message(STATUS "committed docs/include_graph.dot:\n${committed_text}")
  message(STATUS "regenerated from src/:\n${generated_text}")
  message(FATAL_ERROR
    "docs/include_graph.dot is stale — the include graph changed. "
    "Refresh it with `datc_lint --root src --dot docs/include_graph.dot` "
    "and commit the result.")
endif()
message(STATUS "docs/include_graph.dot matches the tree")
