#include "lint/include_graph.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

namespace fs = std::filesystem;

namespace datc_lint {
namespace {

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".hpp" || ext == ".h" || ext == ".cpp" || ext == ".cc" ||
         ext == ".cxx";
}

bool header_ext(const std::string& rel) {
  return rel.size() > 2 && (rel.rfind(".hpp") == rel.size() - 4 ||
                            rel.rfind(".h") == rel.size() - 2);
}

std::string stem_of(const std::string& rel) {
  const std::size_t dot = rel.rfind('.');
  return dot == std::string::npos ? rel : rel.substr(0, dot);
}

std::string dir_of(const std::string& rel) {
  const std::size_t slash = rel.find('/');
  return slash == std::string::npos ? std::string() : rel.substr(0, slash);
}

std::size_t match_angle(const std::vector<Token>& ts, std::size_t i) {
  int depth = 0;
  for (std::size_t j = i; j < ts.size(); ++j) {
    if (is_punct(ts[j], "<")) ++depth;
    if ((is_punct(ts[j], ">") && --depth == 0) ||
        (is_punct(ts[j], ">>") && (depth -= 2) <= 0)) {
      return j;
    }
  }
  return ts.size();
}

/// Heuristic extraction of the names a file declares at namespace scope:
/// type names, using-aliases, typedefs, #defines, and function/variable
/// names. Over-approximates (a call in a namespace-scope initializer can
/// slip in); that direction only weakens include-unused, never breaks
/// the build-facing checks.
std::set<std::string> extract_decls(const std::vector<Token>& ts) {
  // Standard-library vocabulary types leak in through functional casts
  // (`std::uint64_t{0}`) and using-declarations; no repo header is their
  // provider, so they never belong in the export set.
  static const std::set<std::string> kStdNames = {
      "uint8_t",  "uint16_t", "uint32_t", "uint64_t", "int8_t",
      "int16_t",  "int32_t",  "int64_t",  "size_t",   "ptrdiff_t",
      "intptr_t", "uintptr_t", "string",  "vector",   "byte",
      "nullptr_t"};
  std::set<std::string> out;
  std::vector<char> braces;  // 'n' = namespace/extern block, 'o' = other
  bool pending_ns = false;
  const auto top_level = [&] {
    return std::all_of(braces.begin(), braces.end(),
                       [](char b) { return b == 'n'; });
  };
  for (std::size_t i = 0; i < ts.size(); ++i) {
    const Token& t = ts[i];
    if (t.in_directive) {
      if (is_ident(t, "define") && i > 0 && is_punct(ts[i - 1], "#") &&
          i + 1 < ts.size() && ts[i + 1].kind == TokKind::kIdent) {
        out.insert(ts[i + 1].text);
      }
      continue;
    }
    if (is_punct(t, "{")) {
      braces.push_back(pending_ns ? 'n' : 'o');
      pending_ns = false;
      continue;
    }
    if (is_punct(t, "}")) {
      if (!braces.empty()) braces.pop_back();
      continue;
    }
    if (is_punct(t, ";") || is_punct(t, "=")) pending_ns = false;
    if (t.kind != TokKind::kIdent) continue;
    if (t.text == "template" && i + 1 < ts.size() &&
        is_punct(ts[i + 1], "<")) {
      i = match_angle(ts, i + 1);  // skip the parameter list entirely
      continue;
    }
    if (t.text == "namespace") {
      pending_ns = true;
      continue;
    }
    if (!top_level()) continue;
    if (t.text == "extern") {
      pending_ns = true;  // extern "C" { ... } blocks stay transparent
      continue;
    }
    if (t.text == "class" || t.text == "struct" || t.text == "union" ||
        t.text == "enum") {
      std::size_t j = i + 1;
      if (j < ts.size() &&
          (is_ident(ts[j], "class") || is_ident(ts[j], "struct"))) {
        ++j;  // enum class
      }
      if (j < ts.size() && ts[j].kind == TokKind::kIdent) {
        out.insert(ts[j].text);
      }
      continue;
    }
    if (t.text == "using") {
      if (i + 1 < ts.size() && is_ident(ts[i + 1], "namespace")) continue;
      std::string last;
      for (std::size_t j = i + 1; j < ts.size(); ++j) {
        if (is_punct(ts[j], "=")) {
          if (!last.empty()) out.insert(last);  // using Alias = ...;
          break;
        }
        if (is_punct(ts[j], ";")) {
          if (!last.empty()) out.insert(last);  // using ns::Name;
          break;
        }
        if (ts[j].kind == TokKind::kIdent) last = ts[j].text;
      }
      continue;
    }
    if (t.text == "typedef") {
      std::string last;
      for (std::size_t j = i + 1; j < ts.size(); ++j) {
        if (is_punct(ts[j], ";")) break;
        if (is_punct(ts[j], "(") && j + 2 < ts.size() &&
            is_punct(ts[j + 1], "*") &&
            ts[j + 2].kind == TokKind::kIdent) {
          last = ts[j + 2].text;  // typedef ret (*name)(args);
          break;
        }
        if (ts[j].kind == TokKind::kIdent) last = ts[j].text;
      }
      if (!last.empty()) out.insert(last);
      continue;
    }
    // Function or variable name: `Type name(` / `Type name =` / ... —
    // the previous token must look like the tail of a type.
    if (i > 0 && i + 1 < ts.size() && t.text != "operator") {
      const Token& prev = ts[i - 1];
      const bool typed_prev =
          prev.kind == TokKind::kIdent || is_punct(prev, ">") ||
          is_punct(prev, "*") || is_punct(prev, "&") || is_punct(prev, "::");
      const Token& next = ts[i + 1];
      const bool decl_next = is_punct(next, "(") || is_punct(next, "=") ||
                             is_punct(next, ";") || is_punct(next, "{") ||
                             is_punct(next, "[");
      if (typed_prev && decl_next) out.insert(t.text);
    }
  }
  for (const std::string& name : kStdNames) out.erase(name);
  return out;
}

std::string join(const std::vector<std::string>& parts, const char* sep) {
  std::string out;
  for (const auto& p : parts) {
    if (!out.empty()) out += sep;
    out += p;
  }
  return out;
}

}  // namespace

// ------------------------------------------------------------ LayerSpec

const Layer* LayerSpec::find(const std::string& dir) const {
  for (const Layer& l : layers) {
    if (l.dir == dir) return &l;
  }
  return nullptr;
}

std::vector<std::string> LayerSpec::spec_errors() const {
  std::vector<std::string> errs;
  std::set<std::string> seen;
  for (const Layer& l : layers) {
    if (!seen.insert(l.dir).second) {
      errs.push_back("layer table lists '" + l.dir + "' twice");
    }
    for (const std::string& dep : l.allowed) {
      const Layer* d = find(dep);
      if (d == nullptr) {
        errs.push_back("layer '" + l.dir + "' allows unknown layer '" +
                       dep + "'");
      } else if (d->rank >= l.rank) {
        errs.push_back("layer '" + l.dir + "' (rank " +
                       std::to_string(l.rank) + ") allows '" + dep +
                       "' (rank " + std::to_string(d->rank) +
                       ") — allowed deps must rank strictly lower");
      }
    }
  }
  return errs;
}

LayerSpec datc_layer_spec() {
  // Keep in sync with the table in README.md "Correctness tooling".
  return LayerSpec{{
      {"dsp", 0, {}},
      {"afe", 1, {"dsp"}},
      {"fault", 1, {"dsp"}},
      {"simd", 1, {"dsp"}},
      {"core", 2, {"dsp", "afe", "simd"}},
      {"emg", 3, {"dsp", "core"}},
      {"rtl", 3, {"dsp", "core"}},
      {"uwb", 3, {"dsp", "afe", "core", "simd"}},
      {"synth", 4, {"dsp", "core", "rtl"}},
      {"store", 4, {"dsp", "core", "fault"}},
      {"runtime", 5, {"dsp", "afe", "core", "emg", "uwb", "fault", "store"}},
      {"sim", 6,
       {"dsp", "afe", "core", "emg", "uwb", "fault", "store", "runtime"}},
      {"config", 7,
       {"dsp", "afe", "core", "emg", "uwb", "fault", "store", "runtime",
        "sim"}},
      {"net", 8, {"dsp", "core", "store", "runtime", "config"}},
  }};
}

// --------------------------------------------------------- IncludeGraph

IncludeGraph IncludeGraph::build(const std::string& root) {
  IncludeGraph g;
  g.root_ = root;
  std::vector<std::string> rels;
  std::error_code ec;
  for (fs::recursive_directory_iterator it(root, ec), end; it != end;
       it.increment(ec)) {
    if (ec) break;
    if (!it->is_regular_file() || !lintable(it->path())) continue;
    std::string rel = fs::relative(it->path(), root).generic_string();
    rels.push_back(std::move(rel));
  }
  std::sort(rels.begin(), rels.end());

  std::map<std::string, std::size_t> index;
  for (std::size_t i = 0; i < rels.size(); ++i) index[rels[i]] = i;

  for (const std::string& rel : rels) {
    GraphFile f;
    f.rel = rel;
    f.dir = dir_of(rel);
    f.header = header_ext(rel);
    std::ifstream in(fs::path(root) / rel, std::ios::binary);
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string src = ss.str();
    LexedSource lexed = lex(src);
    f.tokens = std::move(lexed.tokens);
    f.allow = collect_allow_markers(src);
    f.declared = extract_decls(f.tokens);
    if (f.header) {
      f.exported = f.declared;
      for (const std::string& name : collect_export_markers(src)) {
        f.exported.insert(name);
      }
    }
    for (const IncludeDirective& inc : lexed.includes) {
      if (inc.angled) continue;  // system/external headers are out of scope
      auto it = index.find(inc.path);
      if (it == index.end()) {
        // Quote-include relative to the including file's directory.
        const std::string base = fs::path(rel).parent_path().generic_string();
        const std::string joined =
            base.empty() ? inc.path : base + "/" + inc.path;
        it = index.find(fs::path(joined).lexically_normal().generic_string());
      }
      if (it != index.end()) {
        f.direct.push_back(it->second);
        f.direct_lines.push_back(inc.line);
      }
    }
    g.files_.push_back(std::move(f));
  }
  return g;
}

std::string IncludeGraph::display(std::size_t idx) const {
  return root_.empty() ? files_[idx].rel : root_ + "/" + files_[idx].rel;
}

void IncludeGraph::check_cycles(std::vector<Finding>& out) const {
  enum { kWhite, kGray, kBlack };
  std::vector<int> color(files_.size(), kWhite);
  std::vector<std::size_t> stack;

  // Iterative DFS with an explicit edge cursor so the gray stack is the
  // current path and cycles reconstruct exactly.
  struct Frame {
    std::size_t node;
    std::size_t next_edge;
  };
  for (std::size_t start = 0; start < files_.size(); ++start) {
    if (color[start] != kWhite) continue;
    std::vector<Frame> frames{{start, 0}};
    color[start] = kGray;
    stack.push_back(start);
    while (!frames.empty()) {
      Frame& f = frames.back();
      const GraphFile& file = files_[f.node];
      if (f.next_edge >= file.direct.size()) {
        color[f.node] = kBlack;
        stack.pop_back();
        frames.pop_back();
        continue;
      }
      const std::size_t e = f.next_edge++;
      const std::size_t to = file.direct[e];
      if (color[to] == kGray) {
        std::vector<std::string> path;
        bool in_cycle = false;
        for (std::size_t n : stack) {
          if (n == to) in_cycle = true;
          if (in_cycle) path.push_back(files_[n].rel);
        }
        path.push_back(files_[to].rel);
        out.push_back({display(f.node), file.direct_lines[e],
                       "include-cycle",
                       "include cycle: " + join(path, " -> ")});
      } else if (color[to] == kWhite) {
        color[to] = kGray;
        stack.push_back(to);
        frames.push_back({to, 0});
      }
    }
  }
}

void IncludeGraph::check_layers(const LayerSpec& spec,
                                std::vector<Finding>& out) const {
  for (std::size_t i = 0; i < files_.size(); ++i) {
    const GraphFile& f = files_[i];
    if (f.dir.empty()) continue;
    const Layer* from = spec.find(f.dir);
    for (std::size_t e = 0; e < f.direct.size(); ++e) {
      const GraphFile& g = files_[f.direct[e]];
      if (g.dir.empty() || g.dir == f.dir) continue;
      if (from == nullptr) {
        out.push_back({display(i), f.direct_lines[e], "layer-order",
                       "directory '" + f.dir +
                           "/' is not in the layer table — add it to "
                           "datc_layer_spec() with an explicit rank"});
        break;  // one finding per unknown directory is enough
      }
      if (std::find(from->allowed.begin(), from->allowed.end(), g.dir) ==
          from->allowed.end()) {
        out.push_back(
            {display(i), f.direct_lines[e], "layer-order",
             f.dir + "/ may not include " + g.dir + "/ (" + f.rel +
                 " -> " + g.rel + "); allowed deps of " + f.dir + "/: [" +
                 join(std::vector<std::string>(from->allowed.begin(),
                                               from->allowed.end()),
                      ", ") +
                 "]"});
      }
    }
  }
}

void IncludeGraph::check_iwyu(const LayerSpec& spec,
                              std::vector<Finding>& out) const {
  // Unique provider per exported symbol (headers only).
  std::map<std::string, std::vector<std::size_t>> providers;
  for (std::size_t i = 0; i < files_.size(); ++i) {
    if (!files_[i].header) continue;
    for (const std::string& sym : files_[i].exported) {
      providers[sym].push_back(i);
    }
  }

  for (std::size_t i = 0; i < files_.size(); ++i) {
    const GraphFile& f = files_[i];
    // Identifiers referenced, with the first line each appears on.
    std::map<std::string, int> used;
    for (const Token& t : f.tokens) {
      if (t.kind == TokKind::kIdent) used.emplace(t.text, t.line);
    }
    // Transitive closure of includes (excluding f itself unless cyclic).
    std::set<std::size_t> closure;
    std::vector<std::size_t> work(f.direct.begin(), f.direct.end());
    while (!work.empty()) {
      const std::size_t n = work.back();
      work.pop_back();
      if (!closure.insert(n).second) continue;
      for (std::size_t d : files_[n].direct) work.push_back(d);
    }

    // include-unused: a direct include contributing no referenced symbol.
    for (std::size_t e = 0; e < f.direct.size(); ++e) {
      const GraphFile& g = files_[f.direct[e]];
      if (!g.header || g.exported.empty()) continue;
      if (stem_of(g.rel) == stem_of(f.rel)) continue;  // companion header
      const bool contributes =
          std::any_of(g.exported.begin(), g.exported.end(),
                      [&](const std::string& sym) {
                        return used.count(sym) != 0;
                      });
      if (!contributes) {
        out.push_back({display(i), f.direct_lines[e], "include-unused",
                       "direct include \"" + g.rel +
                           "\" is unused — no symbol it exports appears "
                           "in this file (remove it, or mark the line "
                           "with datc-lint: allow(include-unused) if it "
                           "is a deliberate re-export)"});
      }
    }

    // include-transitive: a used symbol whose unique declaring header is
    // reachable but not included directly.
    const std::set<std::size_t> direct_set(f.direct.begin(), f.direct.end());
    const Layer* from = f.dir.empty() ? nullptr : spec.find(f.dir);
    std::map<std::size_t, std::pair<std::string, int>> missing;
    for (const auto& [sym, line] : used) {
      if (sym.size() < 4 || f.declared.count(sym) != 0) continue;
      const auto it = providers.find(sym);
      if (it == providers.end() || it->second.size() != 1) continue;
      const std::size_t p = it->second.front();
      if (p == i || direct_set.count(p) != 0 || closure.count(p) == 0) {
        continue;
      }
      const GraphFile& ph = files_[p];
      if (stem_of(ph.rel) == stem_of(f.rel)) continue;
      // Only demand a direct include the layer table permits.
      if (ph.dir != f.dir && from != nullptr &&
          std::find(from->allowed.begin(), from->allowed.end(), ph.dir) ==
              from->allowed.end()) {
        continue;
      }
      missing.emplace(p, std::make_pair(sym, line));
    }
    for (const auto& [p, sym_line] : missing) {
      out.push_back({display(i), sym_line.second, "include-transitive",
                     "uses '" + sym_line.first + "' from \"" +
                         files_[p].rel +
                         "\" but only includes it transitively — include "
                         "it directly so refactors of intermediate "
                         "headers cannot break this file"});
    }
  }
}

std::vector<Finding> IncludeGraph::check(const LayerSpec& spec) const {
  std::vector<Finding> raw;
  check_cycles(raw);
  check_layers(spec, raw);
  check_iwyu(spec, raw);
  // Allow-marker filtering uses the per-file marker maps gathered at
  // build time, keyed by the finding's root-relative display path.
  std::map<std::string, const GraphFile*> by_display;
  for (std::size_t i = 0; i < files_.size(); ++i) {
    by_display[display(i)] = &files_[i];
  }
  std::vector<Finding> out;
  for (auto& f : raw) {
    const auto it = by_display.find(f.file);
    if (it != by_display.end()) {
      const auto line_it = it->second->allow.find(f.line);
      if (line_it != it->second->allow.end() &&
          line_it->second.count(f.rule) != 0) {
        continue;
      }
    }
    out.push_back(std::move(f));
  }
  sort_findings(out);
  return out;
}

std::string IncludeGraph::to_dot(const LayerSpec& spec) const {
  // Directory-level condensation: one node per top-level directory, one
  // edge per dependency with the number of file-level includes behind it.
  std::set<std::string> dirs;
  std::map<std::pair<std::string, std::string>, int> edges;
  for (const GraphFile& f : files_) {
    if (f.dir.empty()) continue;
    dirs.insert(f.dir);
    for (std::size_t d : f.direct) {
      const GraphFile& g = files_[d];
      if (g.dir.empty() || g.dir == f.dir) continue;
      ++edges[{f.dir, g.dir}];
    }
  }
  std::ostringstream dot;
  dot << "// Generated by `datc_lint --root src --dot "
         "docs/include_graph.dot`.\n"
      << "// Do not edit: CI regenerates this file and fails on drift.\n"
      << "digraph datc_include_graph {\n"
      << "  rankdir=BT;\n"
      << "  node [shape=box, fontname=\"Helvetica\", style=filled, "
         "fillcolor=\"#eef4fb\"];\n"
      << "  edge [fontname=\"Helvetica\", fontsize=10, color=\"#446688\"];\n";
  // Same-rank directories sit on the same row so the DAG reads bottom-up.
  std::map<int, std::vector<std::string>> by_rank;
  for (const std::string& d : dirs) {
    const Layer* l = spec.find(d);
    by_rank[l != nullptr ? l->rank : 99].push_back(d);
  }
  for (const auto& [rank, row] : by_rank) {
    dot << "  { rank=same;";
    for (const std::string& d : row) dot << " \"" << d << "\";";
    dot << " }  // rank " << rank << "\n";
  }
  for (const auto& [edge, count] : edges) {
    dot << "  \"" << edge.first << "\" -> \"" << edge.second
        << "\" [label=\"" << count << "\"];\n";
  }
  dot << "}\n";
  return dot.str();
}

}  // namespace datc_lint
