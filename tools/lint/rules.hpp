#pragma once
// datc_lint rule registry + the file-scope rule families. The include-
// graph rules live in lint/include_graph.{hpp,cpp}; both passes share
// the Finding type and the allow-marker contract defined here.

#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint/lexer.hpp"

namespace datc_lint {

struct Finding {
  std::string file;
  int line{0};
  std::string rule;
  std::string message;
};

struct RuleInfo {
  const char* name;
  const char* summary;
};

/// Every rule the tool can emit, file-scope and graph-scope alike — the
/// single source for --list-rules, SARIF rule metadata and the
/// self-test's coverage accounting.
[[nodiscard]] const std::vector<RuleInfo>& all_rules();
[[nodiscard]] bool is_known_rule(const std::string& name);
/// File-scope rules only (the ones exercised by flat fixtures).
[[nodiscard]] const std::vector<RuleInfo>& file_rules();

/// Lines suppressed per rule by `datc-lint: allow(rule[,rule...])`
/// markers in the ORIGINAL source: the marker line, the remainder of its
/// comment block, and the first code line after it.
[[nodiscard]] std::map<int, std::set<std::string>> collect_allow_markers(
    const std::string& src);

/// Extra exported symbols declared via `datc-lint: export(Name, ...)`.
[[nodiscard]] std::set<std::string> collect_export_markers(
    const std::string& src);

/// Runs every file-scope rule over one source file (path decides layer
/// scoping; fixtures pass virtual paths) and filters allow-marked lines.
[[nodiscard]] std::vector<Finding> lint_source(const std::string& path,
                                               const std::string& src);

/// Sorts by (file, line, rule) for deterministic output.
void sort_findings(std::vector<Finding>& findings);

}  // namespace datc_lint
