#include "lint/rules.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>
#include <tuple>

namespace datc_lint {
namespace {

// ------------------------------------------------------------ registries

const std::vector<RuleInfo>& file_rules_impl() {
  static const std::vector<RuleInfo> kRules = {
      {"wall-clock",
       "no wall-clock/ambient-entropy calls in the deterministic layers "
       "(core/, uwb/, sim/, fault/, config/, emg/)"},
      {"float-eq",
       "no raw float/double ==/!= against floating literals outside the "
       "parity harness"},
      {"narrow-channel",
       "no narrowing of channel ids / AER addresses below u16"},
      {"store-io",
       "no write-side file I/O in store/ bypassing the fault::FileIo seam"},
      {"rng-fork",
       "no shared Rng passed by reference inside a per-channel/per-chunk "
       "loop without fork() (the PR 3 seed-ordering bug class)"},
      {"lock-scope",
       "no manual std::mutex lock() without a RAII guard, and no lock "
       "held across a thread-pool submit/enqueue/parallel_for call"},
      {"hot-alloc",
       "no allocation (new/make_unique/unreserved push_back) inside the "
       "block-kernel and per-pulse hot loops"},
      {"hot-rng",
       "no per-sample scalar RNG draws (gaussian/gaussian_bm/uniform) "
       "inside the chunk loops of uwb/ and fault/ — batch them with "
       "Rng::fill_gaussian()/fill_uniform()"},
  };
  return kRules;
}

const std::vector<RuleInfo>& graph_rules_impl() {
  static const std::vector<RuleInfo> kRules = {
      {"include-cycle", "no cycles in the file-level include graph"},
      {"layer-order",
       "cross-directory includes must follow the declared layer DAG "
       "(no back-edges like core/ -> runtime/)"},
      {"include-unused",
       "every direct include must contribute at least one referenced "
       "symbol (IWYU-lite)"},
      {"include-transitive",
       "a symbol's declaring header must be included directly, not "
       "reached through another header's includes (IWYU-lite)"},
  };
  return kRules;
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

// ------------------------------------------------------------- layer map

std::string norm_path(const std::string& path) {
  std::string p = path;
  std::replace(p.begin(), p.end(), '\\', '/');
  return p;
}

bool in_dir(const std::string& path, const char* dir) {
  const std::string p = norm_path(path);
  const std::string mid = std::string("/") + dir + "/";
  const std::string pre = std::string(dir) + "/";
  return p.find(mid) != std::string::npos || p.rfind(pre, 0) == 0;
}

bool in_deterministic_layer(const std::string& path) {
  return in_dir(path, "core") || in_dir(path, "uwb") ||
         in_dir(path, "sim") || in_dir(path, "fault") ||
         in_dir(path, "config") || in_dir(path, "emg");
}

bool is_parity_harness(const std::string& path) {
  return norm_path(path).find("stream_parity.") != std::string::npos;
}

bool is_hot_file(const std::string& path) {
  const std::string p = norm_path(path);
  for (const char* hot :
       {"core/datc_block.hpp", "uwb/receiver.cpp",
        "core/streaming_reconstruct.cpp", "core/streaming_reconstruct.hpp"}) {
    const std::string h = hot;
    if (p == h || (p.size() > h.size() &&
                   p.compare(p.size() - h.size() - 1, h.size() + 1,
                             "/" + h) == 0)) {
      return true;
    }
  }
  return false;
}

// --------------------------------------------------------- token helpers

using Tokens = std::vector<Token>;

/// Index of the token matching the opener at `i` ("(" or "{" or "<"), or
/// tokens.size() when unbalanced.
std::size_t match(const Tokens& ts, std::size_t i, const char* open,
                  const char* close) {
  int depth = 0;
  for (std::size_t j = i; j < ts.size(); ++j) {
    if (is_punct(ts[j], open)) ++depth;
    if (is_punct(ts[j], close) && --depth == 0) return j;
  }
  return ts.size();
}

/// Brace depth before each token ('{' counted after, '}' before).
std::vector<int> brace_depths(const Tokens& ts) {
  std::vector<int> depth(ts.size(), 0);
  int d = 0;
  for (std::size_t i = 0; i < ts.size(); ++i) {
    if (is_punct(ts[i], "}")) d = std::max(0, d - 1);
    depth[i] = d;
    if (is_punct(ts[i], "{")) ++d;
  }
  return depth;
}

struct Loop {
  std::size_t header_begin{0};  ///< first token inside the for/while parens
  std::size_t header_end{0};    ///< the closing ')'
  std::size_t body_begin{0};    ///< first token of the body
  std::size_t body_end{0};      ///< one past the last body token
};

std::vector<Loop> find_loops(const Tokens& ts) {
  std::vector<Loop> loops;
  for (std::size_t i = 0; i + 1 < ts.size(); ++i) {
    if (ts[i].in_directive) continue;
    if (!is_ident(ts[i], "for") && !is_ident(ts[i], "while")) continue;
    if (!is_punct(ts[i + 1], "(")) continue;
    const std::size_t close = match(ts, i + 1, "(", ")");
    if (close >= ts.size() || close + 1 >= ts.size()) continue;
    Loop loop;
    loop.header_begin = i + 2;
    loop.header_end = close;
    if (is_punct(ts[close + 1], "{")) {
      const std::size_t end = match(ts, close + 1, "{", "}");
      loop.body_begin = close + 2;
      loop.body_end = std::min(end, ts.size());
    } else {
      // Single-statement body: up to the ';' at this nesting level.
      std::size_t j = close + 1;
      int paren = 0;
      while (j < ts.size() &&
             !(paren == 0 && is_punct(ts[j], ";"))) {
        paren += is_punct(ts[j], "(") - is_punct(ts[j], ")");
        ++j;
      }
      loop.body_begin = close + 1;
      loop.body_end = j;
    }
    loops.push_back(loop);
  }
  return loops;
}

// ----------------------------------------------------------------- rules

void check_wall_clock(const std::string& path, const Tokens& ts,
                      std::vector<Finding>& out) {
  if (!in_deterministic_layer(path)) return;
  static const std::set<std::string> kBannedAnywhere = {
      "system_clock", "random_device", "gettimeofday", "clock_gettime",
      "timespec_get"};
  static const std::set<std::string> kBannedCalls = {"time", "rand", "srand",
                                                     "clock"};
  for (std::size_t i = 0; i < ts.size(); ++i) {
    const Token& t = ts[i];
    if (t.kind != TokKind::kIdent || t.in_directive) continue;
    bool hit = kBannedAnywhere.count(t.text) != 0;
    if (!hit && kBannedCalls.count(t.text) != 0 && i + 1 < ts.size() &&
        is_punct(ts[i + 1], "(")) {
      // `x.time(...)`, `foo::time(...)` are someone else's API; bare and
      // std-qualified calls are the libc/chrono ambient sources.
      bool member_or_foreign = false;
      if (i > 0 && (is_punct(ts[i - 1], ".") || is_punct(ts[i - 1], "->"))) {
        member_or_foreign = true;
      } else if (i > 1 && is_punct(ts[i - 1], "::") &&
                 !is_ident(ts[i - 2], "std")) {
        member_or_foreign = true;
      }
      hit = !member_or_foreign;
    }
    if (hit) {
      out.push_back({path, t.line, "wall-clock",
                     "'" + t.text +
                         "' in a deterministic layer — outputs must be a "
                         "pure function of seeds (use dsp::Rng / passed-in "
                         "times)"});
    }
  }
}

bool is_float_literal(std::string t) {
  while (!t.empty() && (t.back() == 'f' || t.back() == 'F' ||
                        t.back() == 'l' || t.back() == 'L')) {
    t.pop_back();
  }
  if (t.empty()) return false;
  if (t.size() > 1 && t[0] == '0' && (t[1] == 'x' || t[1] == 'X')) {
    return t.find('p') != std::string::npos ||
           t.find('P') != std::string::npos;
  }
  return t.find('.') != std::string::npos ||
         t.find('e') != std::string::npos ||
         t.find('E') != std::string::npos;
}

void check_float_eq(const std::string& path, const Tokens& ts,
                    std::vector<Finding>& out) {
  if (is_parity_harness(path)) return;
  for (std::size_t i = 0; i < ts.size(); ++i) {
    if (ts[i].in_directive) continue;
    if (!is_punct(ts[i], "==") && !is_punct(ts[i], "!=")) continue;
    bool literal = false;
    if (i > 0 && ts[i - 1].kind == TokKind::kNumber &&
        is_float_literal(ts[i - 1].text)) {
      literal = true;
    }
    std::size_t r = i + 1;
    if (r < ts.size() && (is_punct(ts[r], "-") || is_punct(ts[r], "+"))) {
      ++r;
    }
    if (r < ts.size() && ts[r].kind == TokKind::kNumber &&
        is_float_literal(ts[r].text)) {
      literal = true;
    }
    if (literal) {
      out.push_back({path, ts[i].line, "float-eq",
                     "raw floating ==/!= against a literal — compare with "
                     "a tolerance, or route exactness through the parity "
                     "harness (sim/stream_parity)"});
    }
  }
}

/// An identifier naming a channel id or AER address. Identifiers ending
/// in "bits" are widths (addr_bits), not ids.
bool channel_like(const std::string& ident) {
  const std::string low = lower(ident);
  if (low.size() >= 4 && low.rfind("bits") == low.size() - 4) return false;
  return low.find("channel") != std::string::npos ||
         low.find("addr") != std::string::npos;
}

bool range_mentions_channel(const Tokens& ts, std::size_t begin,
                            std::size_t end) {
  for (std::size_t i = begin; i < end && i < ts.size(); ++i) {
    if (ts[i].kind == TokKind::kIdent && channel_like(ts[i].text)) {
      return true;
    }
  }
  return false;
}

void check_narrow_channel(const std::string& path, const Tokens& ts,
                          std::vector<Finding>& out) {
  static const std::set<std::string> kNarrow = {
      "std::uint8_t", "uint8_t", "std::int8_t", "int8_t",
      "unsignedchar", "signedchar", "char"};
  for (std::size_t i = 0; i < ts.size(); ++i) {
    // Pattern A: static_cast<narrow>(...channel/addr...).
    if (is_ident(ts[i], "static_cast") && i + 1 < ts.size() &&
        is_punct(ts[i + 1], "<")) {
      const std::size_t close = match(ts, i + 1, "<", ">");
      if (close >= ts.size()) continue;
      std::string type;
      for (std::size_t j = i + 2; j < close; ++j) type += ts[j].text;
      if (kNarrow.count(type) != 0 && close + 1 < ts.size() &&
          is_punct(ts[close + 1], "(")) {
        const std::size_t args_end = match(ts, close + 1, "(", ")");
        if (range_mentions_channel(ts, close + 2, args_end)) {
          out.push_back(
              {path, ts[i].line, "narrow-channel",
               "narrowing a channel id / address to " + type +
                   " — ids are u16 end-to-end (the PR 2 truncation bug)"});
        }
      }
      continue;
    }
    // Pattern B: `uint8_t <name-with-channel/addr>` declarations; the
    // declared name may be separated by *, &, && and cv-qualifiers.
    const bool narrow8 =
        is_ident(ts[i], "uint8_t") || is_ident(ts[i], "int8_t") ||
        (is_ident(ts[i], "char") && i > 0 &&
         (is_ident(ts[i - 1], "unsigned") || is_ident(ts[i - 1], "signed")));
    if (!narrow8) continue;
    std::size_t j = i + 1;
    std::string name;
    while (j < ts.size()) {
      if (is_punct(ts[j], "*") || is_punct(ts[j], "&") ||
          is_punct(ts[j], "&&") || is_ident(ts[j], "const") ||
          is_ident(ts[j], "volatile")) {
        ++j;
        continue;
      }
      if (ts[j].kind == TokKind::kIdent) name = ts[j].text;
      break;
    }
    if (!name.empty() && channel_like(name)) {
      out.push_back({path, ts[i].line, "narrow-channel",
                     "declaring '" + name + "' as " + ts[i].text +
                         " — channel ids / addresses are u16 end-to-end"});
    }
  }
}

void check_store_io(const std::string& path, const Tokens& ts,
                    std::vector<Finding>& out) {
  if (!in_dir(path, "store")) return;
  static const std::set<std::string> kBanned = {
      "ofstream", "fopen", "freopen", "fwrite", "fprintf", "fputs",
      "fputc", "creat", "FILE"};
  for (const Token& t : ts) {
    if (t.kind == TokKind::kIdent && !t.in_directive &&
        kBanned.count(t.text) != 0) {
      out.push_back({path, t.line, "store-io",
                     "'" + t.text +
                         "' writes in store/ bypassing the fault::FileIo "
                         "seam — use fault::write_file / LogWriterConfig::io "
                         "so faults inject and retries stay positional"});
    }
  }
}

/// A loop whose header iterates channels or chunks: any identifier
/// containing "chan"/"chunk", or the conventional short names.
bool per_channel_loop(const Tokens& ts, const Loop& loop) {
  for (std::size_t i = loop.header_begin; i < loop.header_end; ++i) {
    if (ts[i].kind != TokKind::kIdent) continue;
    const std::string low = lower(ts[i].text);
    if (low.find("chan") != std::string::npos ||
        low.find("chunk") != std::string::npos || low == "ch" ||
        low == "n_ch" || low == "nch") {
      return true;
    }
  }
  return false;
}

/// True when `name` is declared (or re-seeded via fork) inside
/// [begin, use): `Rng name`, `auto name = ...`, `dsp::Rng name(...)`.
bool declared_in_range(const Tokens& ts, std::size_t begin, std::size_t use,
                       const std::string& name) {
  for (std::size_t j = begin; j < use; ++j) {
    if (ts[j].kind != TokKind::kIdent || ts[j].text != name) continue;
    std::size_t k = j;
    while (k > begin &&
           (is_punct(ts[k - 1], "&") || is_punct(ts[k - 1], "*") ||
            is_punct(ts[k - 1], "&&") || is_ident(ts[k - 1], "const"))) {
      --k;
    }
    if (k > begin && (is_ident(ts[k - 1], "Rng") ||
                      is_ident(ts[k - 1], "auto"))) {
      return true;
    }
  }
  return false;
}

void check_rng_fork(const std::string& path, const Tokens& ts,
                    std::vector<Finding>& out) {
  const auto loops = find_loops(ts);
  std::set<std::pair<int, std::string>> reported;
  for (const Loop& loop : loops) {
    if (!per_channel_loop(ts, loop)) continue;
    for (std::size_t i = loop.body_begin;
         i < loop.body_end && i + 1 < ts.size(); ++i) {
      const Token& t = ts[i];
      if (t.kind != TokKind::kIdent ||
          lower(t.text).find("rng") == std::string::npos) {
        continue;
      }
      if (i == 0) continue;
      // Bare pass as a call argument: `(rng`, `, rng`, `(&rng`, `, &rng`
      // followed by `,` or `)`. Member calls (`rng.fork()`, `rng.chance`)
      // and constructions (`Rng(seed ^ i)`) do not match.
      std::size_t lhs = i - 1;
      if (is_punct(ts[lhs], "&") && lhs > 0) --lhs;
      const bool arg_left =
          is_punct(ts[lhs], "(") || is_punct(ts[lhs], ",");
      const bool arg_right =
          is_punct(ts[i + 1], ",") || is_punct(ts[i + 1], ")");
      if (!arg_left || !arg_right) continue;
      if (declared_in_range(ts, loop.body_begin, i, t.text)) continue;
      if (reported.emplace(t.line, t.text).second) {
        out.push_back(
            {path, t.line, "rng-fork",
             "'" + t.text +
                 "' is passed into a per-channel/per-chunk loop body "
                 "without fork() — each iteration must own an independent "
                 "stream or chunk boundaries change the draw order (the "
                 "PR 3 seed-ordering bug class)"});
      }
    }
  }
}

bool mutex_like(const std::string& ident) {
  const std::string low = lower(ident);
  return low.find("mutex") != std::string::npos ||
         low.find("mtx") != std::string::npos || low == "mu_" || low == "mu";
}

void check_lock_scope(const std::string& path, const Tokens& ts,
                      std::vector<Finding>& out) {
  const auto depth = brace_depths(ts);
  for (std::size_t i = 0; i + 3 < ts.size(); ++i) {
    // (a) manual mutex lock: `mu_.lock()` — take std::lock_guard instead,
    // so no exception path can leave the mutex held.
    if (ts[i].kind == TokKind::kIdent && mutex_like(ts[i].text) &&
        (is_punct(ts[i + 1], ".") || is_punct(ts[i + 1], "->")) &&
        is_ident(ts[i + 2], "lock") && is_punct(ts[i + 3], "(")) {
      out.push_back({path, ts[i].line, "lock-scope",
                     "manual '" + ts[i].text +
                         ".lock()' — use std::lock_guard/std::unique_lock "
                         "so every exit path (including exceptions) "
                         "releases the mutex"});
    }
    // (b) RAII guard held across a thread-pool handoff.
    if (ts[i].kind == TokKind::kIdent &&
        (ts[i].text == "lock_guard" || ts[i].text == "unique_lock" ||
         ts[i].text == "scoped_lock")) {
      std::size_t j = i + 1;
      if (j < ts.size() && is_punct(ts[j], "<")) {
        j = match(ts, j, "<", ">") + 1;
      }
      if (j >= ts.size() || ts[j].kind != TokKind::kIdent) continue;
      const std::string guard = ts[j].text;
      if (j + 1 >= ts.size() ||
          !(is_punct(ts[j + 1], "(") || is_punct(ts[j + 1], "{"))) {
        continue;
      }
      const int guard_depth = depth[j];
      for (std::size_t k = j + 2; k < ts.size() && depth[k] >= guard_depth;
           ++k) {
        if (is_ident(ts[k], guard.c_str()) && k + 2 < ts.size() &&
            is_punct(ts[k + 1], ".") && is_ident(ts[k + 2], "unlock")) {
          break;  // explicitly released before any handoff below
        }
        if (ts[k].kind == TokKind::kIdent && k + 1 < ts.size() &&
            is_punct(ts[k + 1], "(") &&
            (ts[k].text == "submit" || ts[k].text == "enqueue" ||
             ts[k].text == "parallel_for")) {
          out.push_back(
              {path, ts[k].line, "lock-scope",
               "'" + ts[k].text + "' called while '" + guard +
                   "' holds a lock — release the guard before handing "
                   "work to the thread pool (lock-ordering/latency "
                   "hazard)"});
          break;
        }
      }
    }
  }
}

void check_hot_alloc(const std::string& path, const Tokens& ts,
                     std::vector<Finding>& out) {
  if (!is_hot_file(path)) return;
  const auto loops = find_loops(ts);
  std::set<int> reported;
  auto report = [&](const Token& t, const std::string& what) {
    if (!reported.insert(t.line).second) return;
    out.push_back({path, t.line, "hot-alloc",
                   what + " inside a hot loop — the block kernel and "
                          "per-pulse paths must not allocate (reserve "
                          "outside the loop, reuse arenas); this paves the "
                          "SIMD roadmap item"});
  };
  auto reserved_before = [&](const std::string& container, std::size_t idx) {
    for (std::size_t j = 3; j < idx; ++j) {
      if (is_ident(ts[j], "reserve") && is_punct(ts[j + 1], "(") &&
          (is_punct(ts[j - 1], ".") || is_punct(ts[j - 1], "->")) &&
          ts[j - 2].text == container) {
        return true;
      }
    }
    return false;
  };
  for (const Loop& loop : loops) {
    for (std::size_t i = loop.body_begin;
         i < loop.body_end && i < ts.size(); ++i) {
      const Token& t = ts[i];
      if (t.kind != TokKind::kIdent || t.in_directive) continue;
      if (t.text == "new" && (i == 0 || !is_punct(ts[i - 1], "::"))) {
        report(t, "'new'");
      } else if (t.text == "make_unique" || t.text == "make_shared" ||
                 t.text == "malloc" || t.text == "calloc" ||
                 t.text == "realloc") {
        report(t, "'" + t.text + "'");
      } else if ((t.text == "push_back" || t.text == "emplace_back") &&
                 i >= 2 &&
                 (is_punct(ts[i - 1], ".") || is_punct(ts[i - 1], "->"))) {
        const std::string container =
            ts[i - 2].kind == TokKind::kIdent ? ts[i - 2].text : "";
        if (container.empty() || !reserved_before(container, i)) {
          report(t, "'" + t.text + "' without a visible '" +
                        (container.empty() ? std::string("<container>")
                                           : container) +
                        ".reserve()' earlier in the file");
        }
      }
    }
  }
}

void check_hot_rng(const std::string& path, const Tokens& ts,
                   std::vector<Finding>& out) {
  // The chunk loops of the channel/receiver/fault layers: one scalar
  // distribution draw per sample discards distribution state and blocks
  // the vectorised polar tail. chance() stays legal — erasure gating is
  // inherently per pulse and consumes the uniform stream one value at a
  // time by contract.
  if (!in_dir(path, "uwb") && !in_dir(path, "fault")) return;
  const auto loops = find_loops(ts);
  std::set<int> reported;
  for (const Loop& loop : loops) {
    for (std::size_t i = loop.body_begin;
         i < loop.body_end && i + 3 < ts.size(); ++i) {
      const Token& recv = ts[i];
      if (recv.kind != TokKind::kIdent || recv.in_directive) continue;
      if (lower(recv.text).find("rng") == std::string::npos) continue;
      if (!is_punct(ts[i + 1], ".") && !is_punct(ts[i + 1], "->")) continue;
      const Token& call = ts[i + 2];
      if (call.kind != TokKind::kIdent ||
          (call.text != "gaussian" && call.text != "gaussian_bm" &&
           call.text != "uniform")) {
        continue;
      }
      if (!is_punct(ts[i + 3], "(")) continue;
      if (!reported.insert(call.line).second) continue;
      out.push_back({path, call.line, "hot-rng",
                     "per-sample '" + recv.text + "." + call.text +
                         "()' inside a chunk loop — hoist the draws into "
                         "one Rng::fill_gaussian()/fill_uniform() batch "
                         "before the loop (identical stream, vectorised "
                         "tail)"});
    }
  }
}

}  // namespace

// ----------------------------------------------------------- public API

const std::vector<RuleInfo>& file_rules() { return file_rules_impl(); }

const std::vector<RuleInfo>& all_rules() {
  static const std::vector<RuleInfo> kAll = [] {
    std::vector<RuleInfo> rules = file_rules_impl();
    const auto& graph = graph_rules_impl();
    rules.insert(rules.end(), graph.begin(), graph.end());
    return rules;
  }();
  return kAll;
}

bool is_known_rule(const std::string& name) {
  for (const auto& r : all_rules()) {
    if (name == r.name) return true;
  }
  return false;
}

std::map<int, std::set<std::string>> collect_allow_markers(
    const std::string& src) {
  std::vector<std::string> lines;
  {
    std::stringstream ss(src);
    std::string line;
    while (std::getline(ss, line)) lines.push_back(line);
  }
  const auto comment_only = [](const std::string& line) {
    const auto b = line.find_first_not_of(" \t");
    return b != std::string::npos && line.compare(b, 2, "//") == 0;
  };
  std::map<int, std::set<std::string>> allow;
  static const std::string kTag = "datc-lint: allow(";
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const auto pos = lines[i].find(kTag);
    if (pos == std::string::npos) continue;
    const std::size_t open = pos + kTag.size();
    const std::size_t close = lines[i].find(')', open);
    if (close == std::string::npos) continue;
    std::set<std::string> rules;
    std::stringstream list(lines[i].substr(open, close - open));
    std::string rule;
    while (std::getline(list, rule, ',')) {
      rule.erase(std::remove_if(rule.begin(), rule.end(), ::isspace),
                 rule.end());
      if (!rule.empty()) rules.insert(rule);
    }
    // Marker line, trailing comment-only lines, first code line after.
    std::size_t j = i;
    allow[static_cast<int>(j + 1)].insert(rules.begin(), rules.end());
    while (j + 1 < lines.size() && comment_only(lines[j + 1])) {
      ++j;
      allow[static_cast<int>(j + 1)].insert(rules.begin(), rules.end());
    }
    allow[static_cast<int>(j + 2)].insert(rules.begin(), rules.end());
  }
  return allow;
}

std::set<std::string> collect_export_markers(const std::string& src) {
  std::set<std::string> names;
  static const std::string kTag = "datc-lint: export(";
  std::size_t pos = 0;
  while ((pos = src.find(kTag, pos)) != std::string::npos) {
    const std::size_t open = pos + kTag.size();
    const std::size_t close = src.find(')', open);
    if (close == std::string::npos) break;
    std::stringstream list(src.substr(open, close - open));
    std::string name;
    while (std::getline(list, name, ',')) {
      name.erase(std::remove_if(name.begin(), name.end(), ::isspace),
                 name.end());
      if (!name.empty()) names.insert(name);
    }
    pos = close;
  }
  return names;
}

void sort_findings(std::vector<Finding>& findings) {
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule, a.message) <
                     std::tie(b.file, b.line, b.rule, b.message);
            });
}

std::vector<Finding> lint_source(const std::string& path,
                                 const std::string& src) {
  const LexedSource lexed = lex(src);
  const auto allow = collect_allow_markers(src);
  std::vector<Finding> raw;
  check_wall_clock(path, lexed.tokens, raw);
  check_float_eq(path, lexed.tokens, raw);
  check_narrow_channel(path, lexed.tokens, raw);
  check_store_io(path, lexed.tokens, raw);
  check_rng_fork(path, lexed.tokens, raw);
  check_lock_scope(path, lexed.tokens, raw);
  check_hot_alloc(path, lexed.tokens, raw);
  check_hot_rng(path, lexed.tokens, raw);
  std::vector<Finding> out;
  for (auto& f : raw) {
    const auto it = allow.find(f.line);
    if (it != allow.end() && it->second.count(f.rule) != 0) continue;
    out.push_back(std::move(f));
  }
  sort_findings(out);
  return out;
}

}  // namespace datc_lint
