#pragma once
// The C++ tokenizer every datc_lint pass shares. One lexer, many rules:
// the token-level rule families (rng-fork, lock-scope, hot-alloc, the
// ported PR-7 rules) and the include-graph builder all consume the same
// token stream, so comment/string/raw-string/preprocessor handling lives
// in exactly one place and cannot drift between passes.
//
// Deliberately NOT a full C++ front end: no keyword table, no macro
// expansion, no template disambiguation. It produces what a line-oriented
// regex scanner cannot: literal-safe tokens with line numbers, maximal-
// munch multi-character operators (so `==` is distinguishable from `<=`
// and `<=>`), pp-number literals (so `1.5e-3f` is one token), and a
// structured record of every #include directive.

#include <cstddef>
#include <string>
#include <vector>

namespace datc_lint {

enum class TokKind {
  kIdent,    ///< identifiers and keywords
  kNumber,   ///< pp-number: 1.5e-3f, 0x1F, 1'000'000
  kString,   ///< "..." and R"(...)" (text holds the uncooked contents)
  kChar,     ///< '...'
  kPunct,    ///< operators/punctuation, maximal munch ("==", "->", "::")
};

struct Token {
  TokKind kind{TokKind::kPunct};
  std::string text;
  int line{1};             ///< 1-based line of the first character
  std::size_t pos{0};      ///< byte offset in the original source
  bool in_directive{false};///< inside a preprocessor directive line
};

struct IncludeDirective {
  std::string path;   ///< text between the quotes/angle brackets
  bool angled{false}; ///< <...> form (true) vs "..." form (false)
  int line{1};
};

struct LexedSource {
  std::vector<Token> tokens;
  std::vector<IncludeDirective> includes;
  /// Original source with comments and literal contents blanked to
  /// spaces (newlines kept), for rules that still scan raw text.
  std::string stripped;
};

/// Tokenize one translation unit. Never fails: unterminated literals and
/// comments extend to end-of-file, mirroring how compilers recover.
[[nodiscard]] LexedSource lex(const std::string& src);

[[nodiscard]] inline bool is_ident(const Token& t, const char* text) {
  return t.kind == TokKind::kIdent && t.text == text;
}
[[nodiscard]] inline bool is_punct(const Token& t, const char* text) {
  return t.kind == TokKind::kPunct && t.text == text;
}

}  // namespace datc_lint
