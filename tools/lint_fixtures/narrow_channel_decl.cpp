// datc-lint-fixture: rule=narrow-channel path=src/runtime/fixture.cpp
// Deliberate violation: declaring channel ids / addresses at 8 bits.
// Event::channel is u16 end-to-end; an 8-bit local re-introduces the
// truncation the u16 widening (PR 2) fixed.
#include <cstdint>

namespace datc::runtime {

struct FixtureFrame {
  std::uint8_t channel{0};
  std::uint8_t dest_address{0};
};

// Pointer/reference/cv-qualified forms narrow just the same: the id is
// still stored at 8 bits behind the indirection.
void fixture_narrow_indirect(FixtureFrame& frame) {
  std::uint8_t* channel_ids = &frame.channel;
  std::uint8_t& channel_ref = frame.channel;
  const std::uint8_t addr_lo = 0;
  (void)channel_ids;
  (void)channel_ref;
  (void)addr_lo;
}

}  // namespace datc::runtime
