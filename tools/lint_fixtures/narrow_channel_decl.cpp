// datc-lint-fixture: rule=narrow-channel path=src/runtime/fixture.cpp
// Deliberate violation: declaring channel ids / addresses at 8 bits.
// Event::channel is u16 end-to-end; an 8-bit local re-introduces the
// truncation the u16 widening (PR 2) fixed.
#include <cstdint>

namespace datc::runtime {

struct FixtureFrame {
  std::uint8_t channel{0};
  std::uint8_t dest_address{0};
};

}  // namespace datc::runtime
