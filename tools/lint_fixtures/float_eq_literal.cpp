// datc-lint-fixture: rule=float-eq path=src/dsp/fixture.cpp
// Deliberate violation: raw floating equality against literals. After
// any arithmetic, == 0.25 is a coin flip; exact-equality checks belong
// in the parity harness (sim/stream_parity), everything else compares
// against a tolerance.

namespace datc::dsp {

bool fixture_is_quarter(double x) { return x == 0.25; }

bool fixture_is_nonzero(float y) { return y != 0.0f; }

}  // namespace datc::dsp
