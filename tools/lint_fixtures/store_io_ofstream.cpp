// datc-lint-fixture: rule=store-io path=src/store/fixture.cpp
// Deliberate violation: write-side file I/O in store/ around the
// fault::FileIo seam. An ofstream here is invisible to fault injection
// and has none of the positional-retry guarantees of the seam, so the
// PR 6 offered == written + dropped contract silently stops covering it.
#include <fstream>
#include <string>

namespace datc::store {

void fixture_write_marker(const std::string& path) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  f << "marker";
}

}  // namespace datc::store
