// datc-lint-fixture: rule=wall-clock path=src/sim/fixture.cpp
// Deliberate violation: C library entropy in a deterministic layer.
// srand(time(...)) is the classic way to make a "deterministic"
// simulation unreproducible; dsp::Rng carries all randomness here.
#include <cstdlib>
#include <ctime>
#include <random>

namespace datc::sim {

int fixture_noise() {
  std::srand(static_cast<unsigned>(std::time(nullptr)));
  std::random_device entropy;
  return std::rand() + static_cast<int>(entropy());
}

}  // namespace datc::sim
