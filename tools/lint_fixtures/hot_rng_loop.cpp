// datc-lint-fixture: rule=hot-rng path=src/uwb/fixture_channel.cpp
// Violating fixture: per-sample scalar RNG draws inside chunk loops of
// the link layer. Each call re-derives distribution state and keeps the
// Marsaglia tail scalar; the batch fill API draws the identical stream
// through the vector kernel.
#include <cstddef>
#include <vector>

#include "dsp/rng.hpp"

namespace datc::uwb {

struct FixturePulse {
  double time_s{0.0};
};

inline void fixture_jitter(std::vector<FixturePulse>& pulses,
                           datc::dsp::Rng& rng, double rms_s) {
  for (auto& p : pulses) {
    p.time_s += rms_s * rng.gaussian();
  }
}

inline void fixture_jitter_bm(std::vector<FixturePulse>& pulses,
                              datc::dsp::Rng& chan_rng, double rms_s) {
  for (auto& p : pulses) {
    p.time_s += rms_s * chan_rng.gaussian_bm();
  }
}

inline double fixture_dither(std::size_t n, datc::dsp::Rng& rng) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += rng.uniform(-0.5, 0.5);
  }
  return acc;
}

}  // namespace datc::uwb
