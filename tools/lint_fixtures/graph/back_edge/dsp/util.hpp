#pragma once
// dsp/ is rank 0 and may depend on nothing — this include is a
// deliberate back-edge into core/ (rank 2).
#include "core/thing.hpp"

inline int fixture_rank_break(const CoreThing& t) { return t.thing_v; }
