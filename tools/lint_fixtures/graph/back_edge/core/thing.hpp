#pragma once

struct CoreThing {
  int thing_v;
};
