#pragma once

struct FixtureHelper {
  int helper_v;
};
