// Includes core/helpers.hpp but never names anything it exports.
#include "core/helpers.hpp"

namespace datc::core {
int fixture_unrelated() { return 42; }
}  // namespace datc::core
