#pragma once
// Legal downward dependency: core/ (rank 2) may include dsp/ (rank 0),
// and the included symbol is actually used.
#include "dsp/help.hpp"

inline double fixture_value(const FixtureSample& s) { return s.value_v; }
