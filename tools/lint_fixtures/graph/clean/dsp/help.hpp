#pragma once

struct FixtureSample {
  double value_v;
};
