#pragma once
// Other half of the cycle; the DFS reports the edge that closes it.
#include "core/a.hpp"

struct CycleBeta {
  int beta_v;
};

inline int cycle_beta_of(const CycleAlpha& a) { return a.alpha_v; }
