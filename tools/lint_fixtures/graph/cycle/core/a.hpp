#pragma once
// Half of a deliberate include cycle with core/b.hpp.
#include "core/b.hpp"

struct CycleAlpha {
  int alpha_v;
};

inline int cycle_alpha_of(const CycleBeta& b) { return b.beta_v; }
