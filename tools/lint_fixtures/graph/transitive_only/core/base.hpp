#pragma once

struct FixtureBaseWidget {
  int base_v;
};
