#pragma once
#include "core/base.hpp"

struct FixtureMiddle {
  FixtureBaseWidget widget;
};
