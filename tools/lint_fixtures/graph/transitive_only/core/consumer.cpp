// Uses FixtureBaseWidget but includes only core/middle.hpp — the
// direct-include demand fires on the first use.
#include "core/middle.hpp"

namespace datc::core {
int fixture_read(const FixtureMiddle& m) { return m.widget.base_v; }
int fixture_make(const FixtureBaseWidget& w) { return w.base_v; }
}  // namespace datc::core
