// datc-lint-fixture: rule=rng-fork path=src/core/fixture_rng.cpp
// Violating fixture: ONE Rng stream threaded through a per-channel loop.
// Every iteration advances the shared stream, so the draw order depends
// on how channels are chunked — the PR 3 seed-ordering bug class. The
// fix is `dsp::Rng ch_rng = rng.fork();` per iteration (see the clean
// fixture).
#include <cstddef>

#include "dsp/rng.hpp"

namespace datc::core {

double fixture_noise_draw(dsp::Rng& rng);

double fixture_sum_channels(std::size_t num_channels, dsp::Rng& rng) {
  double acc = 0.0;
  for (std::size_t chan = 0; chan < num_channels; ++chan) {
    acc += fixture_noise_draw(rng);
  }
  return acc;
}

}  // namespace datc::core
