// datc-lint-fixture: rule=none path=src/runtime/fixture_clean_lock.cpp clean=lock-scope
// Clean fixture: RAII guards for every acquisition, and the snapshot
// idiom for thread-pool handoff — copy what the job needs under the
// lock, release explicitly, THEN submit.
#include <mutex>

namespace datc::runtime {

struct FixturePool {
  template <typename F>
  void submit(F&& f);
};

struct FixtureQueue {
  std::mutex mu_;
  int counter_{0};
  int next_job_{0};
  FixturePool pool_;

  void ok_guarded_increment() {
    std::lock_guard<std::mutex> guard(mu_);
    ++counter_;
  }

  void ok_snapshot_then_submit() {
    std::unique_lock<std::mutex> work(mu_);
    const int job = next_job_++;
    work.unlock();
    pool_.submit([job] { (void)job; });
  }
};

}  // namespace datc::runtime
