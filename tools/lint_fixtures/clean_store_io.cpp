// datc-lint-fixture: rule=none path=src/store/fixture_clean.cpp clean=store-io
// Clean fixture: store/ code that persists through the fault::FileIo
// seam. Writing through the seam (instead of ofstream/fopen/fwrite)
// is exactly what the store-io rule enforces, so this idiom must
// never start flagging.
#include <cstddef>
#include <string>
#include <vector>

#include "fault/file_io.hpp"

namespace datc::store {

void fixture_persist(fault::FileIo& io, const std::string& path,
                     const std::vector<unsigned char>& bytes) {
  fault::write_file(io, path, bytes.data(), bytes.size());
}

}  // namespace datc::store
