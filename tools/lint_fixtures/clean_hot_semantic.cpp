// datc-lint-fixture: rule=none path=src/core/streaming_reconstruct.cpp clean=hot-alloc,rng-fork
// Clean fixture in a hot file: the allocation-free idioms the hot-alloc
// rule is steering towards, and the per-channel fork() discipline the
// rng-fork rule wants. None of this may ever start flagging.
#include <cstddef>
#include <vector>

#include "dsp/rng.hpp"

namespace datc::core {

double fixture_noise_draw(dsp::Rng& rng);

// reserve() before the loop: push_back is amortisation-free after that.
inline void fixture_collect_ok(const double* x, std::size_t n,
                               std::vector<double>& out) {
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(x[i] * 0.5);
  }
}

// Each channel forks its own stream, so chunk boundaries cannot change
// the draw order; the forked handle may then be passed bare.
inline double fixture_sum_channels_ok(std::size_t num_channels,
                                      dsp::Rng& rng) {
  double acc = 0.0;
  for (std::size_t chan = 0; chan < num_channels; ++chan) {
    dsp::Rng chan_rng = rng.fork();
    acc += fixture_noise_draw(chan_rng);
  }
  return acc;
}

}  // namespace datc::core
