// datc-lint-fixture: rule=narrow-channel path=src/uwb/fixture.cpp
// Deliberate violation: the PR 2 truncation bug. Casting a channel id /
// AER address to 8 bits silently wraps every id >= 256, so a 512-channel
// grid decodes onto the wrong reconstructors with no error anywhere.
#include <cstdint>

namespace datc::uwb {

std::uint8_t fixture_pack_address(std::uint16_t channel_id) {
  return static_cast<std::uint8_t>(channel_id);
}

}  // namespace datc::uwb
