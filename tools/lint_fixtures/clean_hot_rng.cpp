// datc-lint-fixture: rule=none path=src/uwb/fixture_channel_ok.cpp clean=hot-rng
// Clean fixture: the batched-fill idiom the hot-rng rule steers towards,
// plus the draws that must stay legal — per-pulse chance() (erasure
// gating consumes one uniform per pulse by contract), fills issued
// outside the loop, and the explicit allow-marker escape hatch for the
// erasure path where the draw really is conditional per pulse.
#include <cstddef>
#include <vector>

#include "dsp/rng.hpp"

namespace datc::uwb {

struct FixturePulse {
  double time_s{0.0};
};

// Batch fill before the loop: same stream, vectorised tail.
inline void fixture_jitter_batched(std::vector<FixturePulse>& pulses,
                                   datc::dsp::Rng& rng, double rms_s,
                                   std::vector<double>& scratch) {
  scratch.resize(pulses.size());
  rng.fill_gaussian(scratch);
  for (std::size_t i = 0; i < pulses.size(); ++i) {
    pulses[i].time_s += rms_s * scratch[i];
  }
}

// chance() per pulse is the contract, not a violation.
inline std::size_t fixture_erase(const std::vector<FixturePulse>& pulses,
                                 datc::dsp::Rng& rng, double p_erase) {
  std::size_t kept = 0;
  for (const auto& p : pulses) {
    (void)p;
    if (!rng.chance(p_erase)) ++kept;
  }
  return kept;
}

// Mixed path: the conditional draw cannot batch (erasures interleave the
// uniform and normal streams), which is exactly what the marker records.
inline void fixture_jitter_lossy(std::vector<FixturePulse>& pulses,
                                 datc::dsp::Rng& rng, double rms_s,
                                 double p_erase) {
  for (auto& p : pulses) {
    if (rng.chance(p_erase)) continue;
    // datc-lint: allow(hot-rng) — draw is conditional on the erasure
    // outcome, so the streams interleave per pulse by construction.
    p.time_s += rms_s * rng.gaussian_bm();
  }
}

}  // namespace datc::uwb
