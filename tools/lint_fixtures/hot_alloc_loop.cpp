// datc-lint-fixture: rule=hot-alloc path=src/core/datc_block.hpp
// Violating fixture: allocation inside a hot loop of a kernel file.
// The block kernel runs per pulse per channel; a push_back without a
// visible reserve() reallocates mid-kernel, and a naked `new` is worse.
#include <cstddef>
#include <vector>

namespace datc::core {

inline void fixture_collect(const double* x, std::size_t n,
                            std::vector<double>& out) {
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(x[i] * 0.5);
  }
}

inline double* fixture_leaky(std::size_t n) {
  double* head = nullptr;
  for (std::size_t i = 0; i < n; ++i) {
    head = new double(static_cast<double>(i));
  }
  return head;
}

}  // namespace datc::core
