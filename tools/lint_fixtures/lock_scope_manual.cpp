// datc-lint-fixture: rule=lock-scope path=src/runtime/fixture_lock.cpp
// Violating fixture, both lock-scope families:
//   (a) manual mu_.lock()/unlock() — an exception between them leaves
//       the mutex held forever;
//   (b) submitting to the thread pool while an RAII guard is live —
//       the pool worker may need the same mutex (ordering hazard) and
//       the submit latency extends the critical section.
#include <mutex>

namespace datc::runtime {

struct FixturePool {
  template <typename F>
  void submit(F&& f);
};

struct FixtureQueue {
  std::mutex mu_;
  int counter_{0};
  FixturePool pool_;

  void bad_manual_lock() {
    mu_.lock();
    ++counter_;
    mu_.unlock();
  }

  void bad_handoff_under_lock() {
    std::lock_guard<std::mutex> guard(mu_);
    ++counter_;
    pool_.submit([] {});
  }
};

}  // namespace datc::runtime
