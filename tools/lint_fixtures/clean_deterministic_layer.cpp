// datc-lint-fixture: rule=none path=src/core/fixture_clean.cpp clean=wall-clock,float-eq,narrow-channel
// Clean fixture: everything here is allowed and must stay allowed —
// steady_clock (monotonic, not wall time), member/derived identifiers
// that merely contain banned names, u16 channel handling, and the
// explicit allow-marker escape hatch.
#include <chrono>
#include <cstdint>

namespace datc::core {

struct FixtureRec {
  double event_time(std::size_t i) const { return 0.001 * double(i); }
  double time_scale{1.0};
};

double fixture_elapsed() {
  // Monotonic timing for benchmarks is fine; only wall time is banned.
  const auto t0 = std::chrono::steady_clock::now();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

double fixture_member_calls(const FixtureRec& rec) {
  // `.time(...)` is a member access, not ::time(); `event_time` merely
  // contains the substring.
  return rec.event_time(3) * rec.time_scale;
}

std::uint16_t fixture_channel_ok(std::uint32_t channel_id) {
  return static_cast<std::uint16_t>(channel_id & 0xffffu);
}

bool fixture_sentinel(double x) {
  // datc-lint: allow(float-eq) — exact stored sentinel, no arithmetic.
  return x == -1.0;
}

}  // namespace datc::core
