// datc-lint-fixture: rule=none path=src/rtl/fixture_clean.cpp clean=wall-clock
// Clean fixture: layer scoping. rtl/ is NOT a deterministic layer, so
// wall-clock/entropy calls are out of datc_lint's jurisdiction there
// (generic tools still see them). Keeps the rule from creeping beyond
// the layers whose contract it encodes.
#include <cstdlib>
#include <ctime>

namespace datc::rtl {

unsigned fixture_entropy() {
  return static_cast<unsigned>(std::time(nullptr)) ^
         static_cast<unsigned>(std::rand());
}

}  // namespace datc::rtl
