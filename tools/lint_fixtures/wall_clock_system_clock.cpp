// datc-lint-fixture: rule=wall-clock path=src/core/fixture.cpp
// Deliberate violation: wall-clock reads in a deterministic layer. The
// encode chain must be a pure function of seeds — a timestamp here would
// make two runs of the same scenario diverge.
#include <chrono>

namespace datc::core {

double fixture_now_seconds() {
  const auto now = std::chrono::system_clock::now();
  return std::chrono::duration<double>(now.time_since_epoch()).count();
}

}  // namespace datc::core
