// Analog-front-end behavioural models: amplifier, comparator, DAC/ADC,
// synchroniser.

#include <cmath>
#include <gtest/gtest.h>

#include "afe/amplifier.hpp"
#include "afe/comparator.hpp"
#include "afe/dac.hpp"
#include "afe/synchronizer.hpp"
#include "dsp/stats.hpp"

namespace {

using datc::dsp::Real;
using namespace datc;

TEST(Amplifier, LinearGainInSmallSignal) {
  afe::AmplifierConfig cfg;
  cfg.gain = 100.0;
  cfg.supply_v = 200.0;  // effectively no saturation
  cfg.soft_clip = false;
  afe::Amplifier amp(cfg, dsp::Rng(1));
  EXPECT_NEAR(amp.process(0.01), 1.0, 1e-12);
  EXPECT_NEAR(amp.process(-0.02), -2.0, 1e-12);
}

TEST(Amplifier, HardClipAtRails) {
  afe::AmplifierConfig cfg;
  cfg.gain = 10.0;
  cfg.supply_v = 2.0;
  cfg.soft_clip = false;
  afe::Amplifier amp(cfg, dsp::Rng(1));
  EXPECT_DOUBLE_EQ(amp.process(1.0), 1.0);    // clipped to supply/2
  EXPECT_DOUBLE_EQ(amp.process(-1.0), -1.0);
}

TEST(Amplifier, SoftClipIsBoundedAndMonotone) {
  afe::AmplifierConfig cfg;
  cfg.gain = 10.0;
  cfg.supply_v = 2.0;
  cfg.soft_clip = true;
  afe::Amplifier amp(cfg, dsp::Rng(1));
  Real prev = -10.0;
  for (Real x = -1.0; x <= 1.0; x += 0.05) {
    const Real y = amp.process(x);
    EXPECT_LE(std::abs(y), 1.0 + 1e-9);
    EXPECT_GE(y, prev - 1e-12);
    prev = y;
  }
}

TEST(Amplifier, NoiseHasConfiguredRms) {
  afe::AmplifierConfig cfg;
  cfg.gain = 1.0;
  cfg.supply_v = 100.0;
  cfg.input_noise_rms = 0.1;
  afe::Amplifier amp(cfg, dsp::Rng(3));
  std::vector<Real> out(20000);
  for (auto& v : out) v = amp.process(0.0);
  EXPECT_NEAR(dsp::rms(out), 0.1, 0.005);
}

TEST(Amplifier, AmplifyWholeRecord) {
  afe::AmplifierConfig cfg;
  cfg.gain = 2.0;
  cfg.supply_v = 100.0;
  cfg.soft_clip = false;
  afe::Amplifier amp(cfg, dsp::Rng(1));
  dsp::TimeSeries in({0.1, -0.2, 0.3}, 10.0);
  const auto out = amp.amplify(in);
  EXPECT_DOUBLE_EQ(out[0], 0.2);
  EXPECT_DOUBLE_EQ(out[1], -0.4);
  EXPECT_DOUBLE_EQ(out.sample_rate_hz(), 10.0);
}

TEST(Comparator, BasicDecision) {
  afe::Comparator cmp;
  EXPECT_TRUE(cmp.compare(0.5, 0.3));
  EXPECT_FALSE(cmp.compare(0.2, 0.3));
}

TEST(Comparator, HysteresisSuppressesChatter) {
  afe::ComparatorConfig cfg;
  cfg.hysteresis_v = 0.1;
  afe::Comparator cmp(cfg);
  // Rising: must exceed threshold + hyst/2 to switch high.
  EXPECT_FALSE(cmp.compare(0.32, 0.3));
  EXPECT_TRUE(cmp.compare(0.40, 0.3));
  // Now high: small dips above threshold - hyst/2 keep it high.
  EXPECT_TRUE(cmp.compare(0.28, 0.3));
  // Falling below threshold - hyst/2 releases it.
  EXPECT_FALSE(cmp.compare(0.20, 0.3));
}

TEST(Comparator, OffsetShiftsDecision) {
  afe::ComparatorConfig cfg;
  cfg.offset_v = 0.05;
  afe::Comparator cmp(cfg);
  EXPECT_TRUE(cmp.compare(0.26, 0.3));  // 0.26 + 0.05 > 0.3
}

TEST(Comparator, MetastabilityNeedsRng) {
  afe::ComparatorConfig cfg;
  cfg.metastable_prob = 0.5;
  cfg.metastable_window_v = 0.01;
  EXPECT_THROW(afe::Comparator c(cfg), std::invalid_argument);
  afe::Comparator ok(cfg, dsp::Rng(1));
  // Inside the window the output occasionally errs.
  int flips = 0;
  for (int i = 0; i < 1000; ++i) {
    afe::Comparator c2(cfg, dsp::Rng(static_cast<std::uint64_t>(i)));
    if (!c2.compare(0.305, 0.3)) ++flips;
  }
  EXPECT_GT(flips, 300);
  EXPECT_LT(flips, 700);
}

TEST(Dac, PaperEquation3) {
  const afe::Dac dac;  // 4 bits, 1 V
  EXPECT_DOUBLE_EQ(dac.voltage(0), 0.0);
  EXPECT_DOUBLE_EQ(dac.voltage(1), 1.0 / 16.0);   // 62.5 mV LSB
  EXPECT_DOUBLE_EQ(dac.voltage(8), 0.5);
  EXPECT_DOUBLE_EQ(dac.voltage(15), 15.0 / 16.0);
  EXPECT_DOUBLE_EQ(dac.voltage(99), 15.0 / 16.0);  // clamps
  EXPECT_DOUBLE_EQ(dac.lsb(), 0.0625);
  EXPECT_EQ(dac.max_code(), 15u);
}

TEST(Dac, MonotoneForAllResolutions) {
  for (unsigned bits = 1; bits <= 8; ++bits) {
    afe::DacConfig cfg;
    cfg.bits = bits;
    const afe::Dac dac(cfg);
    for (unsigned c = 1; c <= dac.max_code(); ++c) {
      EXPECT_GT(dac.voltage(c), dac.voltage(c - 1)) << "bits=" << bits;
    }
  }
}

TEST(Dac, InlPerturbsButEndpointsTrimmed) {
  afe::DacConfig cfg;
  cfg.inl_lsb_rms = 0.3;
  const afe::Dac dac(cfg);
  const afe::Dac ideal;
  EXPECT_DOUBLE_EQ(dac.voltage(0), ideal.voltage(0));
  EXPECT_DOUBLE_EQ(dac.voltage(15), ideal.voltage(15));
  bool any_diff = false;
  for (unsigned c = 1; c < 15; ++c) {
    if (dac.voltage(c) != ideal.voltage(c)) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Adc, RoundTripWithinHalfLsb) {
  const afe::Adc adc;  // 12 bits, +-1 V
  const Real step = 2.0 / 4096.0;
  for (Real v = -0.999; v < 0.999; v += 0.037) {
    const auto code = adc.code(v);
    EXPECT_NEAR(adc.voltage(code), v, step * 0.51) << "v=" << v;
  }
}

TEST(Adc, ClampsOutOfRange) {
  const afe::Adc adc;
  EXPECT_EQ(adc.code(-5.0), 0u);
  EXPECT_EQ(adc.code(5.0), 4095u);
}

TEST(Synchronizer, TwoStageDelay) {
  afe::Synchronizer sync;  // 2 stages
  // Output reflects the input two clock edges later.
  EXPECT_FALSE(sync.clock(true));   // t0: captures 1
  EXPECT_FALSE(sync.clock(true));   // t1: stage2 still old
  EXPECT_TRUE(sync.clock(true));    // t2: the t0 value emerges
}

TEST(Synchronizer, MetastabilityStallsOneCycle) {
  afe::SynchronizerConfig cfg;
  cfg.stages = 1;
  cfg.metastable_prob = 1.0;  // always stall on a change
  afe::Synchronizer sync(cfg, dsp::Rng(2));
  (void)sync.clock(true);  // change is swallowed (stays 0)
  // The stage kept its old value, so even next cycle reads 0 until the
  // input persists.
  EXPECT_FALSE(sync.clock(true));
}

TEST(Synchronizer, Validation) {
  afe::SynchronizerConfig cfg;
  cfg.stages = 0;
  EXPECT_THROW(afe::Synchronizer s(cfg), std::invalid_argument);
  cfg = afe::SynchronizerConfig{};
  cfg.metastable_prob = 0.5;
  EXPECT_THROW(afe::Synchronizer s(cfg), std::invalid_argument);  // no rng
}

}  // namespace
