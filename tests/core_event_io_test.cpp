// Event-stream persistence: CSV and binary round trips, malformed-input
// rejection.

#include "core/event_io.hpp"

#include <gtest/gtest.h>
#include <sstream>

#include "dsp/rng.hpp"

namespace {

using datc::dsp::Real;
using namespace datc;

core::EventStream sample_events(std::size_t n = 100) {
  core::EventStream ev;
  dsp::Rng rng(55);
  Real t = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    t += rng.uniform(1e-4, 5e-3);
    ev.add(t, static_cast<std::uint8_t>(rng.integer(0, 15)),
           static_cast<std::uint8_t>(rng.integer(0, 7)));
  }
  return ev;
}

TEST(EventIo, CsvRoundTripExact) {
  const auto ev = sample_events();
  std::stringstream ss;
  core::write_events_csv(ss, ev);
  const auto back = core::read_events_csv(ss);
  ASSERT_EQ(back.size(), ev.size());
  for (std::size_t i = 0; i < ev.size(); ++i) {
    EXPECT_DOUBLE_EQ(back[i].time_s, ev[i].time_s);
    EXPECT_EQ(back[i].vth_code, ev[i].vth_code);
    EXPECT_EQ(back[i].channel, ev[i].channel);
  }
}

TEST(EventIo, CsvEmptyStreamRoundTrip) {
  core::EventStream empty;
  std::stringstream ss;
  core::write_events_csv(ss, empty);
  EXPECT_TRUE(core::read_events_csv(ss).empty());
}

TEST(EventIo, CsvRejectsBadHeader) {
  std::stringstream ss("wrong,header,here\n1,2,3\n");
  EXPECT_THROW((void)core::read_events_csv(ss), std::invalid_argument);
}

TEST(EventIo, CsvRejectsBadRows) {
  {
    std::stringstream ss("time_s,vth_code,channel\n0.1,2\n");
    EXPECT_THROW((void)core::read_events_csv(ss), std::invalid_argument);
  }
  {
    std::stringstream ss("time_s,vth_code,channel\n0.1,abc,0\n");
    EXPECT_THROW((void)core::read_events_csv(ss), std::invalid_argument);
  }
  {
    std::stringstream ss("time_s,vth_code,channel\n0.1,999,0\n");
    EXPECT_THROW((void)core::read_events_csv(ss), std::invalid_argument);
  }
}

TEST(EventIo, CsvToleratesCrlf) {
  std::stringstream ss("time_s,vth_code,channel\r\n0.5,3,1\n");
  const auto ev = core::read_events_csv(ss);
  ASSERT_EQ(ev.size(), 1u);
  EXPECT_DOUBLE_EQ(ev[0].time_s, 0.5);
}

TEST(EventIo, BinaryRoundTripExact) {
  const auto ev = sample_events(500);
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  core::write_events_binary(ss, ev);
  const auto back = core::read_events_binary(ss);
  ASSERT_EQ(back.size(), ev.size());
  for (std::size_t i = 0; i < ev.size(); ++i) {
    EXPECT_DOUBLE_EQ(back[i].time_s, ev[i].time_s);
    EXPECT_EQ(back[i].vth_code, ev[i].vth_code);
    EXPECT_EQ(back[i].channel, ev[i].channel);
  }
}

TEST(EventIo, BinaryReadsLegacyV1Files) {
  // Hand-built DATCEVT1 buffer: u64 count, then f64 time / u8 code /
  // u8 channel per event (the pre-AER 8-bit address). The v2 reader must
  // keep decoding these byte-exactly.
  const double times[2] = {0.125, 2.5};
  const std::uint8_t codes[2] = {11, 3};
  const std::uint8_t chans[2] = {0, 200};
  std::string data = "DATCEVT1";
  const std::uint64_t count = 2;
  data.append(reinterpret_cast<const char*>(&count), sizeof(count));
  for (int i = 0; i < 2; ++i) {
    data.append(reinterpret_cast<const char*>(&times[i]), sizeof(double));
    data.append(reinterpret_cast<const char*>(&codes[i]), 1);
    data.append(reinterpret_cast<const char*>(&chans[i]), 1);
  }
  std::stringstream ss(data, std::ios::in | std::ios::binary);
  const auto back = core::read_events_binary(ss);
  ASSERT_EQ(back.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_DOUBLE_EQ(back[i].time_s, times[i]);
    EXPECT_EQ(back[i].vth_code, codes[i]);
    EXPECT_EQ(back[i].channel, chans[i]);
  }
}

TEST(EventIo, BinaryRejectsBadMagic) {
  std::stringstream ss("NOTMAGIC........", std::ios::in | std::ios::binary);
  EXPECT_THROW((void)core::read_events_binary(ss), std::invalid_argument);
}

TEST(EventIo, BinaryRejectsTruncation) {
  const auto ev = sample_events(10);
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  core::write_events_binary(ss, ev);
  std::string data = ss.str();
  data.resize(data.size() - 5);  // chop the last event
  std::stringstream cut(data, std::ios::in | std::ios::binary);
  EXPECT_THROW((void)core::read_events_binary(cut), std::invalid_argument);
}

TEST(EventIo, BinaryV2CarriesVerifiedCrcTrailer) {
  const auto ev = sample_events(100);
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  core::write_events_binary(ss, ev);
  // Layout: magic(8) + count(8) + 11 bytes/event + "CRC2" + u32.
  const std::string data = ss.str();
  ASSERT_EQ(data.size(), 16 + 11 * ev.size() + 8);
  EXPECT_EQ(data.substr(data.size() - 8, 4), "CRC2");

  // A corrupted payload byte is caught by the trailer even though the
  // record itself stays structurally valid.
  std::string bad = data;
  bad[16 + 8] ^= 0x40;  // vth_code of the first event
  std::stringstream corrupt(bad, std::ios::in | std::ios::binary);
  EXPECT_THROW((void)core::read_events_binary(corrupt),
               std::invalid_argument);

  // A half-written trailer is corruption, not a legacy file.
  std::string torn = data.substr(0, data.size() - 6);
  std::stringstream torn_ss(torn, std::ios::in | std::ios::binary);
  EXPECT_THROW((void)core::read_events_binary(torn_ss),
               std::invalid_argument);
}

TEST(EventIo, BinaryAcceptsChecksumlessV2Files) {
  // Files written before the trailer existed end right after the last
  // record; they must keep reading.
  const auto ev = sample_events(20);
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  core::write_events_binary(ss, ev);
  std::string data = ss.str();
  data.resize(data.size() - 8);  // strip "CRC2" + u32
  std::stringstream legacy(data, std::ios::in | std::ios::binary);
  const auto back = core::read_events_binary(legacy);
  ASSERT_EQ(back.size(), ev.size());
  for (std::size_t i = 0; i < ev.size(); ++i) {
    EXPECT_DOUBLE_EQ(back[i].time_s, ev[i].time_s);
  }
}

TEST(EventIo, BinaryRejectsMidRecordTruncationWithClearError) {
  const auto ev = sample_events(10);
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  core::write_events_binary(ss, ev);
  std::string data = ss.str();
  // Cut inside event 6's record: header says 10 events, the payload
  // carries 6.36 — the reader must throw, never yield a partial stream.
  data.resize(16 + 11 * 6 + 4);
  std::stringstream cut(data, std::ios::in | std::ios::binary);
  try {
    (void)core::read_events_binary(cut);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("event 6"), std::string::npos);
  }
}

TEST(EventIo, BinaryV1RoundTripExact) {
  // The PR 2 channel widening kept v1 read compat; this pins it with a
  // write -> read round trip through the real v1 writer.
  core::EventStream ev;
  ev.add(0.25, 12, 0);
  ev.add(0.5, 3, 255);  // the widest address v1 can carry
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  core::write_events_binary_v1(ss, ev);
  const auto back = core::read_events_binary(ss);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_DOUBLE_EQ(back[0].time_s, 0.25);
  EXPECT_EQ(back[0].vth_code, 12u);
  EXPECT_EQ(back[1].channel, 255u);
}

TEST(EventIo, BinaryV1RefusesWideChannels) {
  core::EventStream ev;
  ev.add(0.1, 1, 256);  // needs the v2 u16 address field
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  EXPECT_THROW(core::write_events_binary_v1(ss, ev), std::invalid_argument);
}

TEST(EventIo, FileRoundTrip) {
  const auto ev = sample_events(50);
  EXPECT_TRUE(core::write_events_csv("/tmp/datc_events_test.csv", ev));
  const auto csv = core::read_events_csv("/tmp/datc_events_test.csv");
  EXPECT_EQ(csv.size(), ev.size());
  EXPECT_TRUE(core::write_events_binary("/tmp/datc_events_test.bin", ev));
  const auto bin = core::read_events_binary("/tmp/datc_events_test.bin");
  EXPECT_EQ(bin.size(), ev.size());
  EXPECT_FALSE(core::write_events_csv("/nonexistent_dir_xyz/e.csv", ev));
  EXPECT_THROW((void)core::read_events_csv("/nonexistent_dir_xyz/e.csv"),
               std::invalid_argument);
}

}  // namespace
