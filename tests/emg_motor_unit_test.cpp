// Motor-unit pool physiology: size-principle recruitment, rate coding,
// ARV calibration and force monotonicity — the properties that make the
// synthetic dataset a valid stand-in for the paper's recordings.

#include "emg/motor_unit.hpp"

#include <gtest/gtest.h>

#include "dsp/envelope.hpp"
#include "dsp/stats.hpp"
#include "emg/generator.hpp"

namespace {

using datc::dsp::Real;
using namespace datc;

emg::MotorUnitPool make_pool(std::uint64_t seed = 1) {
  return emg::MotorUnitPool(emg::MotorUnitPoolConfig{}, dsp::Rng(seed));
}

TEST(MotorUnitPool, SizePrincipleOrdering) {
  const auto pool = make_pool();
  const auto& units = pool.units();
  ASSERT_GE(units.size(), 2u);
  for (std::size_t i = 1; i < units.size(); ++i) {
    EXPECT_GE(units[i].recruitment_threshold,
              units[i - 1].recruitment_threshold);
    EXPECT_GE(units[i].amplitude, units[i - 1].amplitude);
  }
  // All units recruited by 70 % excitation.
  EXPECT_LE(units.back().recruitment_threshold, 0.7 + 1e-9);
  EXPECT_GT(units.front().recruitment_threshold, 0.0);
}

TEST(MotorUnitPool, FiringRateModel) {
  const auto pool = make_pool();
  const auto& cfg = pool.config();
  // Below threshold: silent.
  EXPECT_DOUBLE_EQ(pool.firing_rate(50, 0.0), 0.0);
  // At threshold: minimum rate.
  const Real rte = pool.units()[50].recruitment_threshold;
  EXPECT_NEAR(pool.firing_rate(50, rte), cfg.min_rate_hz, 1e-9);
  // Saturates at the peak rate.
  EXPECT_DOUBLE_EQ(pool.firing_rate(0, 1.0), cfg.peak_rate_hz);
  EXPECT_THROW((void)pool.firing_rate(10000, 0.5), std::invalid_argument);
}

TEST(MotorUnitPool, SilentAtRest) {
  auto pool = make_pool(3);
  const auto drive = emg::constant_force(0.0, 1.0, 2500.0);
  const auto emg_sig = pool.synthesize(drive);
  // Only measurement noise remains.
  EXPECT_LT(dsp::rms(emg_sig.view()), 3.0 * pool.config().noise_rms);
}

TEST(MotorUnitPool, ArvCalibratedAtFullMvc) {
  auto pool = make_pool(7);
  const auto drive = emg::constant_force(1.0, 4.0, 2500.0);
  const auto emg_sig = pool.synthesize(drive);
  const auto rect = dsp::rectify(emg_sig.view());
  // Campbell-theorem calibration targets ARV ~ 1 at 100 % MVC; the
  // interference-pattern approximation is good to ~20 %.
  EXPECT_NEAR(dsp::mean(rect), 1.0, 0.2);
}

TEST(MotorUnitPool, ZeroMeanOutput) {
  auto pool = make_pool(11);
  const auto drive = emg::constant_force(0.5, 4.0, 2500.0);
  const auto emg_sig = pool.synthesize(drive);
  EXPECT_NEAR(dsp::mean(emg_sig.view()), 0.0, 0.02);
}

TEST(MotorUnitPool, EmptyDriveGivesEmptySignal) {
  auto pool = make_pool(5);
  emg::ForceProfile empty;
  empty.sample_rate_hz = 2500.0;
  const auto emg_sig = pool.synthesize(empty);
  EXPECT_TRUE(emg_sig.empty());
}

// Property: ARV grows monotonically with sustained force level.
class ArvMonotoneTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ArvMonotoneTest, ArvIncreasesWithForce) {
  auto pool = make_pool(GetParam());
  Real last_arv = -1.0;
  for (const Real level : {0.1, 0.25, 0.45, 0.7, 1.0}) {
    const auto drive = emg::constant_force(level, 2.0, 2500.0);
    const auto emg_sig = pool.synthesize(drive);
    const Real arv = dsp::mean(dsp::rectify(emg_sig.view()));
    EXPECT_GT(arv, last_arv) << "level=" << level;
    last_arv = arv;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ArvMonotoneTest,
                         ::testing::Values(1, 2, 3, 10, 20));

TEST(MotorUnitPool, SpectrumIsBandLimited) {
  // sEMG energy should concentrate well below 800 Hz at fs = 2500.
  auto pool = make_pool(13);
  const auto drive = emg::constant_force(0.6, 4.0, 2500.0);
  const auto emg_sig = pool.synthesize(drive);
  Real low = 0.0;
  Real high = 0.0;
  // Crude split via half-band energies using differences: the derivative
  // emphasises high frequencies, so compare signal vs derivative power.
  const auto& x = emg_sig.samples();
  for (std::size_t i = 1; i < x.size(); ++i) {
    low += x[i] * x[i];
    const Real d = x[i] - x[i - 1];
    high += d * d;
  }
  // For a process concentrated below fs/4 the difference power is much
  // smaller than 2x the signal power.
  EXPECT_LT(high, low);
}

TEST(MotorUnitPool, ConfigValidation) {
  emg::MotorUnitPoolConfig bad;
  bad.num_units = 0;
  EXPECT_THROW(emg::MotorUnitPool(bad, dsp::Rng(1)), std::invalid_argument);
  bad = emg::MotorUnitPoolConfig{};
  bad.recruitment_range = 0.5;
  EXPECT_THROW(emg::MotorUnitPool(bad, dsp::Rng(1)), std::invalid_argument);
  bad = emg::MotorUnitPoolConfig{};
  bad.min_rate_hz = 10.0;
  bad.peak_rate_hz = 5.0;
  EXPECT_THROW(emg::MotorUnitPool(bad, dsp::Rng(1)), std::invalid_argument);
}

TEST(FilteredNoiseModel, ArvTracksDrive) {
  dsp::Rng rng(17);
  auto drive = emg::constant_force(0.5, 4.0, 2500.0);
  const auto sig =
      emg::synthesize_filtered_noise(drive, emg::FilteredNoiseConfig{}, rng);
  const Real arv = dsp::mean(dsp::rectify(sig.view()));
  EXPECT_NEAR(arv, 0.5, 0.08);
}

TEST(FilteredNoiseModel, RejectsBandAboveNyquist) {
  dsp::Rng rng(1);
  auto drive = emg::constant_force(0.5, 1.0, 500.0);
  emg::FilteredNoiseConfig cfg;  // 450 Hz band edge vs 250 Hz Nyquist
  EXPECT_THROW((void)emg::synthesize_filtered_noise(drive, cfg, rng),
               std::invalid_argument);
}

TEST(Synthesize, DispatchesBothModels) {
  dsp::Rng rng(19);
  auto drive = emg::constant_force(0.4, 1.0, 2500.0);
  const auto a = emg::synthesize(emg::EmgModel::kMotorUnitPool, drive, rng);
  const auto b = emg::synthesize(emg::EmgModel::kFilteredNoise, drive, rng);
  EXPECT_EQ(a.size(), drive.fraction_mvc.size());
  EXPECT_EQ(b.size(), drive.fraction_mvc.size());
}

}  // namespace
