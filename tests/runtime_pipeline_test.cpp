// The multi-channel encoding engine: parallel output must be bit-identical
// to serial output, and the fast per-channel pipeline must be bit-identical
// to the reference sim::EndToEnd path for the same per-channel seeds.

#include <atomic>
#include <stdexcept>

#include <gtest/gtest.h>

#include "runtime/pipeline_runner.hpp"
#include "sim/end_to_end.hpp"
#include "runtime/thread_pool.hpp"

namespace {

using datc::dsp::Real;
using namespace datc;

std::vector<emg::Recording> make_channels(std::size_t n, Real duration_s) {
  std::vector<emg::Recording> recs;
  recs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    emg::RecordingSpec spec;
    spec.seed = 1000 + i;
    spec.duration_s = duration_s;
    // Spread the per-channel gains like the dataset's subject population.
    spec.gain_v = 0.2 + 0.05 * static_cast<Real>(i);
    spec.name = "ch" + std::to_string(i);
    recs.push_back(emg::make_recording(spec));
  }
  return recs;
}

TEST(ThreadPool, RunsAllTasks) {
  runtime::ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ParallelForCoversEveryIndex) {
  runtime::ThreadPool pool(3);
  std::vector<int> hits(257, 0);
  runtime::parallel_for(pool, hits.size(),
                        [&hits](std::size_t i) { hits[i] = 1; });
  for (std::size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i], 1) << i;
}

TEST(ThreadPool, PropagatesTaskException) {
  runtime::ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The pool stays usable after an error.
  std::atomic<int> counter{0};
  pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 1);
}

TEST(PipelineRunner, ParallelIsBitIdenticalToSerial) {
  const auto recs = make_channels(6, 2.0);
  runtime::RunnerConfig cfg;
  cfg.jobs = 4;
  cfg.keep_rx_events = true;
  cfg.link.seed = 7;
  runtime::PipelineRunner runner(cfg);

  const auto serial = runner.run_serial(recs);
  const auto parallel = runner.run(recs);

  ASSERT_EQ(serial.channels.size(), parallel.channels.size());
  for (std::size_t i = 0; i < serial.channels.size(); ++i) {
    const auto& s = serial.channels[i];
    const auto& p = parallel.channels[i];
    EXPECT_EQ(s.channel, p.channel);
    EXPECT_EQ(s.events_tx, p.events_tx) << i;
    EXPECT_EQ(s.pulses_tx, p.pulses_tx) << i;
    EXPECT_EQ(s.pulses_erased, p.pulses_erased) << i;
    EXPECT_EQ(s.events_rx, p.events_rx) << i;
    // Exact equality: parallel channels draw from private Rngs.
    EXPECT_EQ(s.tx_correlation_pct, p.tx_correlation_pct) << i;
    EXPECT_EQ(s.rx_correlation_pct, p.rx_correlation_pct) << i;
    ASSERT_EQ(s.rx_events.size(), p.rx_events.size()) << i;
    for (std::size_t k = 0; k < s.rx_events.size(); ++k) {
      EXPECT_EQ(s.rx_events[k].time_s, p.rx_events[k].time_s);
      EXPECT_EQ(s.rx_events[k].vth_code, p.rx_events[k].vth_code);
    }
  }
  EXPECT_GT(parallel.throughput_x_realtime(), 0.0);
  EXPECT_EQ(parallel.emg_seconds_processed, 12.0);
}

TEST(PipelineRunner, FastPathMatchesReferenceEndToEnd) {
  // The engine's per-channel pipeline (block encode + cached-detection
  // receiver) must reproduce the seed reference path exactly: same encoder
  // arithmetic, same Rng draw sequence, same scores.
  const auto recs = make_channels(3, 2.0);
  runtime::RunnerConfig cfg;
  cfg.jobs = 2;
  cfg.link.seed = 42;
  runtime::PipelineRunner runner(cfg);
  const auto engine = runner.run(recs);

  const sim::EndToEnd reference(cfg.eval, cfg.link);
  const auto ref = reference.run_datc_batch(recs, /*jobs=*/1);

  ASSERT_EQ(engine.channels.size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_EQ(engine.channels[i].pulses_tx, ref[i].pulses_tx) << i;
    EXPECT_EQ(engine.channels[i].pulses_erased, ref[i].pulses_erased) << i;
    EXPECT_EQ(engine.channels[i].events_rx, ref[i].events_rx) << i;
    EXPECT_EQ(engine.channels[i].rx_correlation_pct,
              ref[i].rx_side.correlation_pct)
        << i;
    EXPECT_EQ(engine.channels[i].tx_correlation_pct,
              ref[i].tx_side.correlation_pct)
        << i;
  }
}

TEST(PipelineRunner, BatchApiIsJobCountInvariant) {
  const auto recs = make_channels(4, 1.5);
  const sim::EvalConfig eval;
  sim::LinkConfig link;
  link.seed = 3;
  const sim::EndToEnd e2e(eval, link);
  const auto serial = e2e.run_datc_batch(recs, 1);
  const auto parallel = e2e.run_datc_batch(recs, 3);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].rx_side.correlation_pct,
              parallel[i].rx_side.correlation_pct)
        << i;
    EXPECT_EQ(serial[i].events_rx, parallel[i].events_rx) << i;
  }
  // Channel 0 reproduces the single-channel API exactly.
  const auto single = e2e.run_datc(recs[0]);
  EXPECT_EQ(serial[0].rx_side.correlation_pct, single.rx_side.correlation_pct);
  EXPECT_EQ(serial[0].events_rx, single.events_rx);
}

TEST(PipelineRunner, SharedAerNoiselessMatchesIdealRadio) {
  // Acceptance gate for the shared-medium mode: with a noiseless channel
  // and zero queue-delay drops, the real radio (modulate -> propagate ->
  // decode -> demux) must reproduce the arbitration-only ideal reference
  // exactly, per channel, for >= 8 contending encoders.
  const auto recs = make_channels(8, 2.0);
  runtime::RunnerConfig cfg;
  cfg.jobs = 4;
  cfg.keep_rx_events = true;
  cfg.link_mode = runtime::LinkMode::kSharedAer;
  cfg.link.seed = 11;
  cfg.link.channel = uwb::noiseless_channel();
  cfg.link.modulator.shape.amplitude_v = 0.5;
  cfg.link.detector.false_alarm_prob = 1e-9;
  cfg.shared.aer.address_bits = 3;
  cfg.shared.aer.min_spacing_s = 2e-6;

  runtime::PipelineRunner real_radio(cfg);
  const auto over_air = real_radio.run(recs);

  auto ideal_cfg = cfg;
  ideal_cfg.shared.ideal_radio = true;
  runtime::PipelineRunner ideal_radio(ideal_cfg);
  const auto ideal = ideal_radio.run(recs);

  EXPECT_EQ(over_air.shared.arbiter.dropped, 0u);
  EXPECT_EQ(over_air.shared.pulses_erased, 0u);
  EXPECT_EQ(over_air.shared.demux.invalid_address, 0u);
  EXPECT_EQ(over_air.shared.events_rx, over_air.shared.arbiter.sent);
  ASSERT_EQ(over_air.channels.size(), 8u);
  for (std::size_t c = 0; c < over_air.channels.size(); ++c) {
    const auto& a = over_air.channels[c].rx_events;
    const auto& b = ideal.channels[c].rx_events;
    ASSERT_EQ(a.size(), b.size()) << c;
    for (std::size_t k = 0; k < a.size(); ++k) {
      EXPECT_EQ(a[k].time_s, b[k].time_s) << c;
      EXPECT_EQ(a[k].vth_code, b[k].vth_code) << c;
      EXPECT_EQ(a[k].channel, b[k].channel) << c;
    }
    EXPECT_EQ(over_air.channels[c].rx_correlation_pct,
              ideal.channels[c].rx_correlation_pct)
        << c;
  }
}

TEST(PipelineRunner, SharedModeEmptyBatchIsANoOp) {
  // Both link modes must accept an empty batch cleanly; the shared path
  // used to reach aer_split with zero channels and throw.
  runtime::RunnerConfig cfg;
  cfg.link_mode = runtime::LinkMode::kSharedAer;
  runtime::PipelineRunner runner(cfg);
  const std::vector<emg::Recording> none;
  const auto report = runner.run(none);
  EXPECT_TRUE(report.channels.empty());
  EXPECT_EQ(report.shared.arbiter.in_events, 0u);
  EXPECT_EQ(report.shared.events_rx, 0u);
}

TEST(PipelineRunner, SharedModeParallelMatchesSerial) {
  // The shared link itself is one serial radio, but the encode and
  // reconstruction stages fan out across the pool — the batch must stay
  // bit-identical to the serial run, noise and all.
  const auto recs = make_channels(5, 1.5);
  runtime::RunnerConfig cfg;
  cfg.jobs = 3;
  cfg.keep_rx_events = true;
  cfg.link_mode = runtime::LinkMode::kSharedAer;
  cfg.link.seed = 29;
  cfg.link.channel.distance_m = 0.7;
  cfg.link.channel.ref_loss_db = 30.0;
  cfg.shared.aer.address_bits = 3;
  cfg.shared.aer.min_spacing_s = 2e-6;
  runtime::PipelineRunner runner(cfg);

  const auto serial = runner.run_serial(recs);
  const auto parallel = runner.run(recs);

  EXPECT_EQ(serial.shared.arbiter.sent, parallel.shared.arbiter.sent);
  EXPECT_EQ(serial.shared.pulses_tx, parallel.shared.pulses_tx);
  EXPECT_EQ(serial.shared.pulses_erased, parallel.shared.pulses_erased);
  EXPECT_EQ(serial.shared.events_rx, parallel.shared.events_rx);
  EXPECT_EQ(serial.shared.demux.invalid_address,
            parallel.shared.demux.invalid_address);
  ASSERT_EQ(serial.channels.size(), parallel.channels.size());
  for (std::size_t c = 0; c < serial.channels.size(); ++c) {
    const auto& s = serial.channels[c];
    const auto& p = parallel.channels[c];
    EXPECT_EQ(s.events_tx, p.events_tx) << c;
    EXPECT_EQ(s.events_rx, p.events_rx) << c;
    EXPECT_EQ(s.rx_correlation_pct, p.rx_correlation_pct) << c;
    EXPECT_EQ(s.tx_correlation_pct, p.tx_correlation_pct) << c;
    ASSERT_EQ(s.rx_events.size(), p.rx_events.size()) << c;
    for (std::size_t k = 0; k < s.rx_events.size(); ++k) {
      EXPECT_EQ(s.rx_events[k].time_s, p.rx_events[k].time_s);
      EXPECT_EQ(s.rx_events[k].vth_code, p.rx_events[k].vth_code);
      EXPECT_EQ(s.rx_events[k].channel, p.rx_events[k].channel);
    }
  }
}

TEST(PipelineRunner, CachedDetectionMatchesReferenceDecode) {
  // Build a pulse train, run it through both receiver configurations with
  // the same Rng seed; decoded streams must match event-for-event.
  const auto recs = make_channels(1, 2.0);
  const sim::EvalConfig eval;
  core::DatcEncoderConfig enc;
  enc.dtc = eval.dtc;
  const auto tx = core::encode_datc_events(recs[0].emg_v, enc);

  uwb::ModulatorConfig mod;
  mod.code_bits = eval.dtc.dac_bits;
  const auto train = uwb::modulate_datc(tx, mod);

  uwb::ChannelConfig channel;
  dsp::Rng rng_a(99);
  dsp::Rng rng_b(99);
  const auto prop_a = uwb::propagate(train, channel, rng_a);
  const auto prop_b = uwb::propagate(train, channel, rng_b);

  uwb::UwbReceiverConfig rxc;
  rxc.modulator = mod;
  rxc.cache_detection = false;
  uwb::UwbReceiver rx_ref(rxc, channel, rng_a.fork());
  rxc.cache_detection = true;
  uwb::UwbReceiver rx_fast(rxc, channel, rng_b.fork());

  const auto ev_ref = rx_ref.decode(prop_a.received);
  const auto ev_fast = rx_fast.decode(prop_b.received);
  ASSERT_EQ(ev_ref.size(), ev_fast.size());
  for (std::size_t i = 0; i < ev_ref.size(); ++i) {
    EXPECT_EQ(ev_ref[i].time_s, ev_fast[i].time_s) << i;
    EXPECT_EQ(ev_ref[i].vth_code, ev_fast[i].vth_code) << i;
  }
  EXPECT_EQ(rx_ref.stats().pulses_detected, rx_fast.stats().pulses_detected);
}

}  // namespace
