// Segment format: header round trips, implicit time index, CRC
// integrity, channel bitmap filtering, and crash-tail recovery.

#include "store/segment.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>

#include "dsp/rng.hpp"

namespace {

namespace fs = std::filesystem;
using datc::dsp::Real;
using namespace datc;

class StoreSegmentTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("datc_seg_test_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] std::string path(const char* name) const {
    return (dir_ / name).string();
  }

  fs::path dir_;
};

core::EventStream ramp_events(std::size_t n, Real t0 = 0.0,
                              Real dt = 1e-3) {
  core::EventStream ev;
  for (std::size_t i = 0; i < n; ++i) {
    ev.add(t0 + static_cast<Real>(i) * dt,
           static_cast<std::uint8_t>(i % 16),
           static_cast<std::uint16_t>(i % 5));
  }
  return ev;
}

void write_segment(const std::string& path, const core::EventStream& ev,
                   std::uint64_t seqno = 0) {
  store::SegmentWriter w(path, seqno);
  for (const auto& e : ev.events()) w.append(e);
  w.finalize();
}

TEST_F(StoreSegmentTest, HeaderRoundTrip) {
  const auto ev = ramp_events(257, 1.5, 2e-3);
  write_segment(path("a.datcseg"), ev, 42);

  store::SegmentReader r(path("a.datcseg"));
  const auto& h = r.header();
  EXPECT_TRUE(h.finalized);
  EXPECT_EQ(h.seqno, 42u);
  EXPECT_EQ(h.count, 257u);
  EXPECT_DOUBLE_EQ(h.t_min, ev[0].time_s);
  EXPECT_DOUBLE_EQ(h.t_max, ev[256].time_s);
  EXPECT_EQ(h.decimation, 1u);
  // Channels 0..4 present, nothing else.
  EXPECT_EQ(h.channel_bitmap, 0b11111u);
  EXPECT_TRUE(r.verify());

  const auto back = r.read_all();
  ASSERT_EQ(back.size(), ev.size());
  for (std::size_t i = 0; i < ev.size(); ++i) {
    EXPECT_DOUBLE_EQ(back[i].time_s, ev[i].time_s);
    EXPECT_EQ(back[i].vth_code, ev[i].vth_code);
    EXPECT_EQ(back[i].channel, ev[i].channel);
  }
}

TEST_F(StoreSegmentTest, RejectsOutOfOrderAppend) {
  store::SegmentWriter w(path("o.datcseg"), 0);
  w.append(core::Event{1.0, 0, 0});
  EXPECT_THROW(w.append(core::Event{0.5, 0, 0}), std::invalid_argument);
}

TEST_F(StoreSegmentTest, LowerBoundMatchesReference) {
  const auto ev = ramp_events(1000);
  write_segment(path("b.datcseg"), ev);
  store::SegmentReader r(path("b.datcseg"));
  // Probe exact times, midpoints and out-of-range values.
  for (const Real t : {-1.0, 0.0, 0.0005, 0.1, 0.4995, 0.999, 2.0}) {
    std::uint64_t expected = 0;
    while (expected < ev.size() && ev[expected].time_s < t) ++expected;
    EXPECT_EQ(r.lower_bound(t), expected) << "t=" << t;
  }
}

TEST_F(StoreSegmentTest, QueryRangeAndChannel) {
  const auto ev = ramp_events(500);
  write_segment(path("c.datcseg"), ev);
  store::SegmentReader r(path("c.datcseg"));

  core::EventStream got;
  r.query(0.1, 0.2, std::nullopt, got);
  core::EventStream want;
  for (const auto& e : ev.events()) {
    if (e.time_s >= 0.1 && e.time_s < 0.2) want.add(e.time_s, e.vth_code,
                                                    e.channel);
  }
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_DOUBLE_EQ(got[i].time_s, want[i].time_s);
  }

  core::EventStream ch3;
  r.query(0.0, 1.0, std::uint16_t{3}, ch3);
  const auto want3 = ev.channel_slice(3);
  ASSERT_EQ(ch3.size(), want3.size());
  for (std::size_t i = 0; i < ch3.size(); ++i) {
    EXPECT_EQ(ch3[i].channel, 3u);
    EXPECT_DOUBLE_EQ(ch3[i].time_s, want3[i].time_s);
  }

  // Bitmap filter: channel 7 never occurs (only 0..4 do), so the query
  // short-circuits on the header bitmap.
  EXPECT_FALSE(store::segment_may_have_channel(r.header(), 7));
  core::EventStream none;
  r.query(0.0, 1.0, std::uint16_t{7}, none);
  EXPECT_TRUE(none.empty());
}

TEST_F(StoreSegmentTest, DetectsPayloadCorruption) {
  const auto ev = ramp_events(64);
  write_segment(path("d.datcseg"), ev);
  {
    // Flip one payload byte (a vth_code, so time order stays intact).
    std::fstream f(path("d.datcseg"),
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(static_cast<std::streamoff>(store::kSegmentHeaderBytes + 8));
    const char bad = 0x5A;
    f.write(&bad, 1);
  }
  store::SegmentReader r(path("d.datcseg"));
  EXPECT_FALSE(r.verify());
  EXPECT_THROW((void)r.read_all(), std::invalid_argument);
}

TEST_F(StoreSegmentTest, RecoversCrashTruncatedTail) {
  const auto ev = ramp_events(100);
  write_segment(path("e.datcseg"), ev, 7);
  // Rebuild a crash image from the finalized file: clear the finalized
  // flag (as if the header rewrite never ran) and tear the last record
  // in half.
  {
    std::fstream f(path("e.datcseg"),
                   std::ios::binary | std::ios::in | std::ios::out);
    const std::uint32_t flags = 0;  // not finalized
    f.seekp(8);
    f.write(reinterpret_cast<const char*>(&flags), sizeof(flags));
  }
  const auto full_size = fs::file_size(path("e.datcseg"));
  fs::resize_file(path("e.datcseg"), full_size - 5);

  // Read-only view reconstructs the 99-event valid prefix.
  {
    store::SegmentReader r(path("e.datcseg"));
    EXPECT_FALSE(r.header().finalized);
    EXPECT_EQ(r.header().count, 99u);
    EXPECT_DOUBLE_EQ(r.header().t_max, ev[98].time_s);
  }
  // recover_segment repairs in place: truncates and finalizes.
  EXPECT_EQ(store::recover_segment(path("e.datcseg")), 99u);
  store::SegmentReader r(path("e.datcseg"));
  EXPECT_TRUE(r.header().finalized);
  EXPECT_EQ(r.header().count, 99u);
  EXPECT_TRUE(r.verify());
  const auto back = r.read_all();
  ASSERT_EQ(back.size(), 99u);
  EXPECT_DOUBLE_EQ(back[98].time_s, ev[98].time_s);
  // Recovery of an already-finalized segment is a no-op.
  EXPECT_EQ(store::recover_segment(path("e.datcseg")), 99u);
}

TEST_F(StoreSegmentTest, RecoveryRejectsNaNGarbageTail) {
  // A crash can leave >= 1 whole record of garbage whose time bytes
  // decode to NaN. Recovery must stop the valid prefix there — a NaN
  // t_max in a finalized header would brick every LogReader open on the
  // directory.
  const auto ev = ramp_events(10);
  write_segment(path("n.datcseg"), ev, 1);
  {
    std::fstream f(path("n.datcseg"),
                   std::ios::binary | std::ios::in | std::ios::out);
    const std::uint32_t flags = 0;  // back to "open" (crash image)
    f.seekp(8);
    f.write(reinterpret_cast<const char*>(&flags), sizeof(flags));
    // Append one whole garbage record with a NaN time.
    f.seekp(0, std::ios::end);
    const double nan_t = std::numeric_limits<double>::quiet_NaN();
    const char pad[3] = {0x7F, 0x33, 0x01};
    f.write(reinterpret_cast<const char*>(&nan_t), sizeof(nan_t));
    f.write(pad, sizeof(pad));
  }
  EXPECT_EQ(store::recover_segment(path("n.datcseg")), 10u);
  store::SegmentReader r(path("n.datcseg"));
  EXPECT_TRUE(r.header().finalized);
  EXPECT_EQ(r.header().count, 10u);
  EXPECT_DOUBLE_EQ(r.header().t_max, ev[9].time_s);
  EXPECT_TRUE(r.verify());
}

TEST_F(StoreSegmentTest, WriterRejectsNonFiniteTime) {
  store::SegmentWriter w(path("inf.datcseg"), 0);
  EXPECT_THROW(
      w.append(core::Event{std::numeric_limits<Real>::quiet_NaN(), 0, 0}),
      std::invalid_argument);
  EXPECT_THROW(
      w.append(core::Event{std::numeric_limits<Real>::infinity(), 0, 0}),
      std::invalid_argument);
}

TEST_F(StoreSegmentTest, EmptySegmentReadsBack) {
  {
    store::SegmentWriter w(path("f.datcseg"), 3);
    w.finalize();
  }
  store::SegmentReader r(path("f.datcseg"));
  EXPECT_TRUE(r.header().finalized);
  EXPECT_EQ(r.header().count, 0u);
  EXPECT_TRUE(r.verify());
  EXPECT_TRUE(r.read_all().empty());
}

TEST_F(StoreSegmentTest, RejectsForeignFile) {
  {
    std::ofstream f(path("g.datcseg"), std::ios::binary);
    f << "this is not a segment file, padded to header size ............";
  }
  EXPECT_THROW(store::SegmentReader r(path("g.datcseg")),
               std::invalid_argument);
}

}  // namespace
