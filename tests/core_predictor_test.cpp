// Weighted-average predictor (Eqn. 1 / Listing 1): fixed-point vs float
// agreement and the priority level selection.

#include "core/predictor.hpp"

#include <gtest/gtest.h>

#include "dsp/rng.hpp"

namespace {

using datc::dsp::Real;
using namespace datc;

TEST(Predictor, PaperWeightsQ8) {
  const core::PredictorWeights w;
  const auto q = w.q8();
  EXPECT_EQ(q[0], 256u);  // WF3 = 1.00
  EXPECT_EQ(q[1], 166u);  // WF2 = 0.65 (0.6484 in Q8)
  EXPECT_EQ(q[2], 90u);   // WF1 = 0.35 (0.3516 in Q8)
  EXPECT_EQ(q[0] + q[1] + q[2], 512u);  // the >>9 normalisation is exact
}

TEST(Predictor, FloatMatchesHandComputation) {
  const core::PredictorWeights w;
  // (1*100 + 0.65*50 + 0.35*20) / 2 = 69.75
  EXPECT_NEAR(core::weighted_average_float(w, 100, 50, 20), 69.75, 1e-12);
}

TEST(Predictor, FixedTruncatesLikeHardware) {
  const core::PredictorWeights w;
  // (256*100 + 166*50 + 90*20) / 512 = 35500/512 = 69.33 -> 69
  EXPECT_EQ(core::weighted_average_fixed(w, 100, 50, 20), 69u);
}

TEST(Predictor, EqualInputsAreFixedPoint) {
  const core::PredictorWeights w;
  for (const std::uint32_t n : {0u, 1u, 7u, 100u, 800u}) {
    EXPECT_EQ(core::weighted_average_fixed(w, n, n, n), n);
    EXPECT_NEAR(core::weighted_average_float(w, n, n, n),
                static_cast<Real>(n), 1e-9);
  }
}

class FixedVsFloatTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FixedVsFloatTest, AgreeWithinOneCount) {
  dsp::Rng rng(GetParam());
  const core::PredictorWeights w;
  for (int i = 0; i < 2000; ++i) {
    const auto n3 = static_cast<std::uint32_t>(rng.integer(0, 800));
    const auto n2 = static_cast<std::uint32_t>(rng.integer(0, 800));
    const auto n1 = static_cast<std::uint32_t>(rng.integer(0, 800));
    const Real f = core::weighted_average_float(
        w, static_cast<Real>(n3), static_cast<Real>(n2),
        static_cast<Real>(n1));
    const auto fx = core::weighted_average_fixed(w, n3, n2, n1);
    // Q8 quantisation of 0.65/0.35 contributes up to ~0.0008 * 800 per
    // tap plus 1 count of truncation: bounded by 2.5 counts.
    EXPECT_NEAR(static_cast<Real>(fx), f, 2.5)
        << n3 << "," << n2 << "," << n1;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FixedVsFloatTest,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(Predictor, NewestFrameDominates) {
  const core::PredictorWeights w;
  // A jump in the newest frame moves the average more than the same jump
  // in the oldest frame.
  const Real base = core::weighted_average_float(w, 100, 100, 100);
  const Real newest = core::weighted_average_float(w, 200, 100, 100);
  const Real oldest = core::weighted_average_float(w, 100, 100, 200);
  EXPECT_GT(newest - base, oldest - base);
}

TEST(SelectLevel, PriorityChainOfListing1) {
  const core::IntervalTable t;  // levels at 0.03(k+1)*frame
  const auto f = core::FrameSize::k100;
  // AVR >= 48 -> 15.
  EXPECT_EQ(core::select_level(t, f, 48.0), 15u);
  EXPECT_EQ(core::select_level(t, f, 100.0), 15u);
  // 45 <= AVR < 48 -> 14.
  EXPECT_EQ(core::select_level(t, f, 45.0), 14u);
  EXPECT_EQ(core::select_level(t, f, 47.9), 14u);
  // interval_level_2 = 9: AVR >= 9 -> 2.
  EXPECT_EQ(core::select_level(t, f, 9.0), 2u);
  // Below interval_level_2 the chain falls through to 1 — never 0, as in
  // the paper's Listing 1 (interval_level_1 and _0 are defined by Eqn. 2
  // but unused by the priority chain).
  EXPECT_EQ(core::select_level(t, f, 8.9), 1u);
  EXPECT_EQ(core::select_level(t, f, 0.0), 1u);
}

TEST(SelectLevel, OptionalLevelZeroFloor) {
  const core::IntervalTable t;
  const auto f = core::FrameSize::k100;
  // With min_code = 0 the unused interval_level_1 entry (= 6) becomes
  // live and code 0 becomes reachable.
  EXPECT_EQ(core::select_level(t, f, 0.0, 0), 0u);
  EXPECT_EQ(core::select_level(t, f, 6.0, 0), 1u);  // >= level_1 (6)
  EXPECT_EQ(core::select_level(t, f, 5.9, 0), 0u);
}

TEST(SelectLevel, MonotoneInAvr) {
  const core::IntervalTable t;
  for (const auto frame : core::kAllFrameSizes) {
    unsigned last = 0;
    for (Real avr = 0.0; avr <= 400.0; avr += 0.5) {
      const unsigned lvl = core::select_level(t, frame, avr);
      EXPECT_GE(lvl, last);
      last = lvl;
    }
  }
}

TEST(SelectLevel, MinCodeValidation) {
  const core::IntervalTable t;
  EXPECT_THROW((void)core::select_level(t, core::FrameSize::k100, 0.0, 16),
               std::invalid_argument);
}

TEST(Predictor, ZeroWeightSumRejected) {
  core::PredictorWeights w;
  w.w = {0.0, 0.0, 0.0};
  EXPECT_THROW((void)core::weighted_average_float(w, 1, 1, 1),
               std::invalid_argument);
  EXPECT_THROW((void)core::weighted_average_fixed(w, 1, 1, 1),
               std::invalid_argument);
}

}  // namespace
