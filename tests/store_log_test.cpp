// Segmented log: rotation, O(log n) time-range queries across many
// segments vs an unrotated reference, per-channel queries, crash
// recovery on reopen, and the retention/compaction pass.

#include "store/log.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "dsp/rng.hpp"
#include "store/retention.hpp"

namespace {

namespace fs = std::filesystem;
using datc::dsp::Real;
using namespace datc;

class StoreLogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("datc_log_test_" + std::string(::testing::UnitTest::GetInstance()
                                               ->current_test_info()
                                               ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] std::string dir() const { return dir_.string(); }
  [[nodiscard]] std::string sub(const char* name) const {
    return (dir_ / name).string();
  }

  fs::path dir_;
};

/// Irregularly spaced multi-channel events (the D-ATC stream shape).
core::EventStream random_events(std::size_t n, std::uint64_t seed = 11,
                                std::uint16_t channels = 6) {
  core::EventStream ev;
  dsp::Rng rng(seed);
  Real t = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    t += rng.uniform(1e-4, 4e-3);
    ev.add(t, static_cast<std::uint8_t>(rng.integer(0, 15)),
           static_cast<std::uint16_t>(rng.integer(0, channels - 1)));
  }
  return ev;
}

void expect_streams_equal(const core::EventStream& got,
                          const core::EventStream& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_DOUBLE_EQ(got[i].time_s, want[i].time_s) << "event " << i;
    EXPECT_EQ(got[i].vth_code, want[i].vth_code) << "event " << i;
    EXPECT_EQ(got[i].channel, want[i].channel) << "event " << i;
  }
}

TEST_F(StoreLogTest, RotationByEventCount) {
  const auto ev = random_events(1000);
  store::LogWriterConfig cfg;
  cfg.dir = sub("by_count");
  cfg.max_events_per_segment = 256;
  {
    store::LogWriter w(cfg);
    w.append(std::span<const core::Event>(ev.events()));
    w.close();
    EXPECT_EQ(w.events_written(), 1000u);
    EXPECT_EQ(w.segments_finalized(), 4u);  // 256+256+256+232
  }
  store::LogReader r(cfg.dir);
  ASSERT_EQ(r.segments().size(), 4u);
  EXPECT_EQ(r.segments()[0].header.count, 256u);
  EXPECT_EQ(r.segments()[3].header.count, 232u);
  EXPECT_EQ(r.total_events(), 1000u);
  EXPECT_TRUE(r.verify());
  expect_streams_equal(r.read_all(), ev);
}

TEST_F(StoreLogTest, RotationByTimeSpan) {
  const auto ev = random_events(1000);  // ~2 s of events
  store::LogWriterConfig cfg;
  cfg.dir = sub("by_time");
  cfg.max_segment_span_s = 0.25;
  store::LogWriter w(cfg);
  w.append(std::span<const core::Event>(ev.events()));
  w.close();
  store::LogReader r(cfg.dir);
  EXPECT_GE(r.segments().size(), 3u);
  for (const auto& s : r.segments()) {
    EXPECT_LE(s.header.t_max - s.header.t_min, 0.25);
  }
  expect_streams_equal(r.read_all(), ev);
}

TEST_F(StoreLogTest, QueryAcrossRotatedSegmentsMatchesUnrotatedLog) {
  const auto ev = random_events(2000, 23);
  // Rotated: many small segments. Reference: one unrotated segment.
  store::LogWriterConfig rotated;
  rotated.dir = sub("rotated");
  rotated.max_events_per_segment = 300;
  {
    store::LogWriter w(rotated);
    w.append(std::span<const core::Event>(ev.events()));
  }
  store::LogWriterConfig whole;
  whole.dir = sub("whole");
  {
    store::LogWriter w(whole);
    w.append(std::span<const core::Event>(ev.events()));
  }
  store::LogReader rot(rotated.dir);
  store::LogReader ref(whole.dir);
  ASSERT_GE(rot.segments().size(), 3u);
  ASSERT_EQ(ref.segments().size(), 1u);

  const Real t0 = ev[0].time_s;
  const Real t1 = ev[ev.size() - 1].time_s;
  // Ranges probing: inside one segment, straddling segment boundaries,
  // the whole record, empty, and out of range. Segment boundaries sit at
  // multiples of 300 events — range around event 300's time straddles.
  const Real boundary = ev[300].time_s;
  const struct {
    Real lo, hi;
  } ranges[] = {
      {t0, t1 + 1.0},                  // everything
      {boundary - 0.05, boundary + 0.05},  // straddles segments 0/1
      {ev[550].time_s, ev[1250].time_s},   // straddles several
      {t0 + 0.2, t0 + 0.2001},         // sliver
      {t1 + 1.0, t1 + 2.0},            // beyond the log
      {0.5, 0.5},                      // empty interval
  };
  for (const auto& range : ranges) {
    const auto got = rot.query(range.lo, range.hi);
    const auto want = ref.query(range.lo, range.hi);
    expect_streams_equal(got, want);
    EXPECT_EQ(want.size(), ev.count_in(range.lo, range.hi));
  }
  // Per-channel queries against the reference slice.
  for (std::uint16_t c = 0; c < 6; ++c) {
    const auto got = rot.query(t0, t1 + 1.0, c);
    expect_streams_equal(got, ev.channel_slice(c));
  }
  // Half-open semantics: an event exactly at t_hi is excluded, at t_lo
  // included.
  const Real exact = ev[700].time_s;
  const auto upto = rot.query(t0, exact);
  EXPECT_EQ(upto.size(), ev.count_in(t0, exact));
  const auto from = rot.query(exact, t1 + 1.0);
  EXPECT_DOUBLE_EQ(from[0].time_s, exact);
}

TEST_F(StoreLogTest, ReopenResumesAfterCrashRecovery) {
  const auto ev = random_events(600, 31);
  store::LogWriterConfig cfg;
  cfg.dir = sub("crash");
  cfg.max_events_per_segment = 200;
  {
    store::LogWriter w(cfg);
    w.append(std::span<const core::Event>(ev.events()));
  }
  // Tear the tail segment: clear its finalized flag and cut mid-record.
  store::LogReader before(cfg.dir);
  ASSERT_EQ(before.segments().size(), 3u);
  const auto tail = before.segments().back().path;
  {
    std::fstream f(tail, std::ios::binary | std::ios::in | std::ios::out);
    const std::uint32_t flags = 0;
    f.seekp(8);
    f.write(reinterpret_cast<const char*>(&flags), sizeof(flags));
  }
  fs::resize_file(tail, fs::file_size(tail) - 7);

  // Reader-side: the torn tail exposes its valid prefix (199 events).
  {
    store::LogReader r(cfg.dir);
    EXPECT_EQ(r.total_events(), 599u);
  }
  // Writer-side: reopening repairs the tail, resumes the seqno chain and
  // keeps the time watermark, so appends continue seamlessly.
  {
    store::LogWriter w(cfg);
    EXPECT_EQ(w.next_seqno(), 3u);
    core::Event extra;
    extra.time_s = ev[ev.size() - 1].time_s + 1.0;
    extra.vth_code = 9;
    extra.channel = 2;
    w.append(extra);
  }
  store::LogReader r(cfg.dir);
  ASSERT_EQ(r.segments().size(), 4u);
  EXPECT_EQ(r.total_events(), 600u);
  EXPECT_TRUE(r.verify());
  const auto all = r.read_all();
  EXPECT_TRUE(all.is_time_sorted());
  EXPECT_EQ(all[599].vth_code, 9u);
}

TEST_F(StoreLogTest, RejectsOutOfOrderAcrossReopen) {
  store::LogWriterConfig cfg;
  cfg.dir = sub("order");
  {
    store::LogWriter w(cfg);
    w.append(core::Event{5.0, 1, 0});
  }
  store::LogWriter w(cfg);
  EXPECT_THROW(w.append(core::Event{4.0, 1, 0}), std::invalid_argument);
  w.append(core::Event{5.0, 2, 0});  // equal time is fine
}

TEST_F(StoreLogTest, EmptyLogReadsBack) {
  store::LogReader r(dir());
  EXPECT_EQ(r.segments().size(), 0u);
  EXPECT_EQ(r.total_events(), 0u);
  EXPECT_TRUE(r.read_all().empty());
  EXPECT_TRUE(r.query(0.0, 100.0).empty());
  EXPECT_TRUE(r.verify());
}

TEST_F(StoreLogTest, RetentionDropsByAge) {
  const auto ev = random_events(1000, 47);
  store::LogWriterConfig cfg;
  cfg.dir = sub("age");
  cfg.max_events_per_segment = 100;  // 10 segments over ~2 s
  {
    store::LogWriter w(cfg);
    w.append(std::span<const core::Event>(ev.events()));
  }
  store::LogReader before(cfg.dir);
  const Real newest = before.t_max();
  const Real cutoff_age = newest - before.segments()[4].header.t_max;

  store::RetentionPolicy policy;
  policy.max_age_s = cutoff_age;  // segments 0..3 are strictly older
  const auto stats = store::apply_retention(cfg.dir, policy);
  EXPECT_EQ(stats.segments_dropped, 4u);
  EXPECT_EQ(stats.events_before, 1000u);
  EXPECT_EQ(stats.events_after, 600u);
  EXPECT_EQ(stats.events_dropped, 400u);

  store::LogReader after(cfg.dir);
  EXPECT_EQ(after.segments().size(), 6u);
  EXPECT_EQ(after.total_events(), 600u);
  // The surviving stream is the reference suffix.
  const auto survived = after.read_all();
  expect_streams_equal(survived, after.query(ev[400].time_s, newest + 1.0));
  EXPECT_DOUBLE_EQ(survived[0].time_s, ev[400].time_s);
}

TEST_F(StoreLogTest, RetentionDecimatesOldSegments) {
  const auto ev = random_events(900, 53);
  store::LogWriterConfig cfg;
  cfg.dir = sub("decimate");
  cfg.max_events_per_segment = 300;
  {
    store::LogWriter w(cfg);
    w.append(std::span<const core::Event>(ev.events()));
  }
  store::LogReader before(cfg.dir);
  ASSERT_EQ(before.segments().size(), 3u);
  const Real newest = before.t_max();
  const Real age_of_first = newest - before.segments()[0].header.t_max;

  store::RetentionPolicy policy;
  policy.decimate_older_than_s = age_of_first - 1e-9;
  policy.decimation_factor = 4;
  const auto stats = store::apply_retention(cfg.dir, policy);
  EXPECT_EQ(stats.segments_dropped, 0u);
  EXPECT_EQ(stats.segments_decimated, 1u);
  EXPECT_EQ(stats.events_after, 600u + 75u);

  store::LogReader after(cfg.dir);
  ASSERT_EQ(after.segments().size(), 3u);
  EXPECT_EQ(after.segments()[0].header.count, 75u);
  EXPECT_EQ(after.segments()[0].header.decimation, 4u);
  EXPECT_TRUE(after.verify());
  // Every 4th event of the original first segment survives.
  const auto first = store::SegmentReader(after.segments()[0].path).read_all();
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_DOUBLE_EQ(first[i].time_s, ev[i * 4].time_s);
  }
  // Idempotent: a second pass with the same policy changes nothing.
  const auto again = store::apply_retention(cfg.dir, policy);
  EXPECT_EQ(again.segments_decimated, 0u);
  EXPECT_EQ(again.events_after, again.events_before);

  // Escalation: factor 8 on the already-4x segment thins only by the
  // REMAINING step (every 2nd survivor), landing on exactly 1/8 of the
  // original — not 1/32 — with the true density in the header.
  store::RetentionPolicy stronger = policy;
  stronger.decimation_factor = 8;
  const auto escalated = store::apply_retention(cfg.dir, stronger);
  EXPECT_EQ(escalated.segments_decimated, 1u);
  store::LogReader final_log(cfg.dir);
  EXPECT_EQ(final_log.segments()[0].header.count, 38u);  // ceil(75/2)
  EXPECT_EQ(final_log.segments()[0].header.decimation, 8u);
  const auto eighth =
      store::SegmentReader(final_log.segments()[0].path).read_all();
  for (std::size_t i = 0; i < eighth.size(); ++i) {
    EXPECT_DOUBLE_EQ(eighth[i].time_s, ev[i * 8].time_s);
  }
}

}  // namespace
