// Scenario layer acceptance: parser/serializer round-trips, line-precise
// validation, the shipped preset library, and — the refactor's contract —
// factory-built pipelines bit-identical to the pre-refactor hand-wired
// construction paths (batch, PipelineRunner, streaming, shared-AER,
// record->replay).

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "config/factory.hpp"
#include "config/scenario.hpp"
#include "config/scenario_grid.hpp"
#include "sim/stream_parity.hpp"
#include "store/replay.hpp"

namespace datc {
namespace {

namespace fs = std::filesystem;
using dsp::Real;

// ------------------------------------------------------------ round trips

TEST(ScenarioSpecTest, DefaultSpecIsValid) {
  EXPECT_TRUE(config::ScenarioSpec{}.validate().empty());
}

TEST(ScenarioSpecTest, SerializeParseRoundTripIsIdentity) {
  for (const auto& name : config::preset_names()) {
    const auto spec = config::make_preset(name);
    const auto text = config::serialize_scenario(spec);
    const auto reparsed = config::parse_scenario(text, name);
    EXPECT_TRUE(config::scenario_equal(spec, reparsed)) << name;
    // Fixed point: serialize(parse(serialize(s))) == serialize(s).
    EXPECT_EQ(text, config::serialize_scenario(reparsed)) << name;
  }
}

TEST(ScenarioSpecTest, ParsesHandWrittenTextWithShortKeysAndComments) {
  const auto spec = config::parse_scenario(
      "# a hand-written scenario\n"
      "scenario = hand.written-1\n"
      "\n"
      "channels=8            # short key, no spaces\n"
      "  link.distance_m   =   1.5\n"
      "topology = shared     # unique prefix of aer.topology's leaf\n"
      "erasure_prob = 0.25   # trailing comment\n");
  EXPECT_EQ(spec.name, "hand.written-1");
  EXPECT_EQ(spec.source.channels, 8u);
  EXPECT_EQ(spec.link.distance_m, 1.5);
  EXPECT_EQ(spec.aer.topology, config::LinkTopology::kSharedAer);
  EXPECT_EQ(spec.link.erasure_prob, 0.25);
}

TEST(ScenarioSpecTest, ResolvesShortAndPrefixKeys) {
  EXPECT_EQ(config::resolve_scenario_key("channels").key, "source.channels");
  EXPECT_EQ(config::resolve_scenario_key("distance").key, "link.distance_m");
  EXPECT_EQ(config::resolve_scenario_key("erasure_prob").key,
            "link.erasure_prob");
  // "seed" names source.seed, link.seed and artifact_seed's leaf is
  // different — exact-leaf pass still finds two: ambiguous.
  EXPECT_THROW((void)config::resolve_scenario_key("seed"),
               config::ScenarioError);
  EXPECT_THROW((void)config::resolve_scenario_key("no_such_key"),
               config::ScenarioError);
}

// ------------------------------------------------- line-precise rejection

void expect_error_containing(const std::string& text,
                             const std::string& needle) {
  try {
    (void)config::parse_scenario(text, "spec");
    FAIL() << "expected ScenarioError containing '" << needle << "'";
  } catch (const config::ScenarioError& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "got: " << e.what();
  }
}

TEST(ScenarioSpecTest, RejectsUnknownKeyWithLineNumber) {
  expect_error_containing("scenario = x\nlink.warp_factor = 9\n", "spec:2");
  expect_error_containing("link.warp_factor = 9\n", "unknown key");
}

TEST(ScenarioSpecTest, RejectsDuplicateKeyCitingBothLines) {
  expect_error_containing(
      "channels = 4\nchannels = 8\n", "duplicate key 'source.channels'");
  expect_error_containing("channels = 4\nchannels = 8\n", "line 1");
}

TEST(ScenarioSpecTest, RejectsMalformedValueWithLineNumber) {
  expect_error_containing("source.duration_s = fast\n", "spec:1");
  expect_error_containing("source.channels = -3\n", "non-negative");
  expect_error_containing("source.channels\n", "key = value");
  expect_error_containing("source.channels =\n", "missing value");
}

TEST(ScenarioSpecTest, RejectsNonFiniteAndNonPositiveRates) {
  expect_error_containing("source.sample_rate_hz = nan\n",
                          "spec:1: source.sample_rate_hz");
  expect_error_containing("source.sample_rate_hz = 0\n", "finite and > 0");
  expect_error_containing("encoder.window_s = 0\n", "encoder.window_s");
  expect_error_containing("link.erasure_prob = 1\n", "[0, 1)");
  expect_error_containing("link.false_alarm_prob = 0\n", "(0, 0.5)");
}

TEST(ScenarioSpecTest, RejectsAddressWidthTooSmallForChannels) {
  expect_error_containing(
      "channels = 8\ntopology = shared\naer.address_bits = 2\n",
      "spec:3: aer.address_bits");
  expect_error_containing(
      "channels = 8\ntopology = shared\naer.address_bits = 2\n",
      "cover only 4 endpoints");
  // Auto width (0) always covers the channel count.
  EXPECT_EQ(config::parse_scenario("channels = 8\ntopology = shared\n")
                .resolved_address_bits(),
            3u);
}

TEST(ScenarioSpecTest, ValidationOfDefaultedKeyCitesTheKey) {
  // gain_hi_v keeps its 0.28 default; the conflicting key sits on line 1.
  expect_error_containing("source.gain_lo_v = 0.5\n",
                          "source.gain_hi_v");
}

TEST(ScenarioSpecTest, SetScenarioKeyDrivesGridOverrides) {
  config::ScenarioSpec spec;
  config::set_scenario_key(spec, "channels", "64");
  config::set_scenario_key(spec, "source.model", "noise");
  EXPECT_EQ(spec.source.channels, 64u);
  EXPECT_EQ(spec.source.model, config::SourceModel::kFilteredNoise);
  EXPECT_THROW(config::set_scenario_key(spec, "source.model", "quantum"),
               config::ScenarioError);
}

// ------------------------------------------------------- preset library

TEST(ScenarioPresetTest, ShippedFilesMatchBuiltinPresets) {
  const fs::path dir = DATC_SCENARIO_DIR;
  ASSERT_TRUE(fs::is_directory(dir)) << dir;
  std::size_t seen = 0;
  for (const auto& name : config::preset_names()) {
    const auto path = dir / (name + ".datc");
    ASSERT_TRUE(fs::is_regular_file(path)) << path;
    const auto from_file = config::parse_scenario_file(path.string());
    EXPECT_TRUE(config::scenario_equal(from_file, config::make_preset(name)))
        << name << ": scenarios/" << name
        << ".datc drifted from the built-in (run `datc scenario emit all`)";
    ++seen;
  }
  EXPECT_EQ(seen, config::preset_names().size());
  // No stray .datc files without a matching builtin.
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() != ".datc") continue;
    const auto stem = entry.path().stem().string();
    EXPECT_NE(std::find(config::preset_names().begin(),
                        config::preset_names().end(), stem),
              config::preset_names().end())
        << "unregistered preset file " << entry.path();
  }
}

TEST(ScenarioPresetTest, EveryPresetRunsEndToEnd) {
  for (const auto& name : config::preset_names()) {
    auto spec = config::make_preset(name);
    // Shortened pass; the bench runs the full-length presets.
    config::set_scenario_key(spec, "source.duration_s", "1");
    if (spec.source.channels > 4) {
      config::set_scenario_key(spec, "source.channels", "4");
    }
    const auto report = config::run_scenario(spec);
    EXPECT_GT(report.events_tx, 0u) << name;
    EXPECT_GT(report.events_rx, 0u) << name;
    EXPECT_GT(report.mean_rx_correlation_pct, 0.0) << name;
  }
}

// -------------------------------------- factory vs legacy bit-identity
//
// The hand-built structs below restate the pre-refactor wiring on
// purpose: they are the frozen reference the factory must keep matching.

config::ScenarioSpec identity_spec() {
  auto spec = config::make_preset("paper-baseline");
  config::set_scenario_key(spec, "source.duration_s", "2");
  config::set_scenario_key(spec, "link.erasure_prob", "0.05");
  config::set_scenario_key(spec, "link.distance_m", "0.6");
  config::set_scenario_key(spec, "link.seed", "321");
  return spec;
}

sim::LinkConfig legacy_link() {
  sim::LinkConfig link;
  link.seed = 321;
  link.channel.distance_m = 0.6;
  link.channel.ref_loss_db = 30.0;
  link.channel.erasure_prob = 0.05;
  return link;
}

TEST(FactoryParityTest, BatchEndToEndMatchesLegacyWiring) {
  const config::PipelineFactory factory(identity_spec());
  const auto rec = factory.make_recording(0);

  const sim::EndToEnd legacy(sim::EvalConfig{}, legacy_link());
  const auto a = factory.make_end_to_end().run_datc(rec);
  const auto b = legacy.run_datc(rec);
  EXPECT_EQ(a.pulses_tx, b.pulses_tx);
  EXPECT_EQ(a.pulses_erased, b.pulses_erased);
  EXPECT_EQ(a.events_rx, b.events_rx);
  EXPECT_EQ(a.rx_side.correlation_pct, b.rx_side.correlation_pct);
  EXPECT_EQ(a.tx_side.correlation_pct, b.tx_side.correlation_pct);
}

TEST(FactoryParityTest, RunnerConfigMatchesLegacyWiring) {
  auto spec = identity_spec();
  config::set_scenario_key(spec, "source.channels", "3");
  config::set_scenario_key(spec, "source.gain_lo_v", "0.16");
  config::set_scenario_key(spec, "source.gain_hi_v", "0.85");
  const config::PipelineFactory factory(spec);
  const auto recs = factory.make_recordings();

  // The block cmd_pipeline used to hand-assemble.
  runtime::RunnerConfig legacy;
  legacy.jobs = 1;
  legacy.link = legacy_link();
  runtime::PipelineRunner legacy_runner(legacy);

  const auto a = factory.make_runner()->run_serial(recs);
  const auto b = legacy_runner.run_serial(recs);
  ASSERT_EQ(a.channels.size(), b.channels.size());
  for (std::size_t i = 0; i < a.channels.size(); ++i) {
    EXPECT_EQ(a.channels[i].events_tx, b.channels[i].events_tx);
    EXPECT_EQ(a.channels[i].events_rx, b.channels[i].events_rx);
    EXPECT_EQ(a.channels[i].pulses_tx, b.channels[i].pulses_tx);
    EXPECT_EQ(a.channels[i].rx_correlation_pct,
              b.channels[i].rx_correlation_pct);
    EXPECT_EQ(a.channels[i].tx_correlation_pct,
              b.channels[i].tx_correlation_pct);
  }
}

TEST(FactoryParityTest, StreamingSessionMatchesLegacyBatchPath) {
  const config::PipelineFactory factory(identity_spec());
  const auto rec = factory.make_recording(0);
  // check_stream_parity builds the legacy batch reference internally and
  // compares the streaming session against it bit-for-bit.
  for (const std::size_t chunk : {std::size_t{64}, std::size_t{0}}) {
    const auto r = sim::check_stream_parity(
        rec.emg_v, factory.eval_config(), factory.link_config(),
        factory.calibration(), chunk);
    EXPECT_TRUE(r.identical()) << "chunk " << chunk;
    EXPECT_GT(r.events_batch, 0u);
  }
  // And the factory's own session must equal a hand-built one.
  const auto legacy_cfg = sim::make_session_config(
      factory.eval_config(), factory.link_config(), factory.calibration());
  auto session_a = factory.make_streaming_session(0);
  runtime::StreamingSession session_b(legacy_cfg, 0);
  std::vector<Real> arv_a;
  std::vector<Real> arv_b;
  session_a->push_chunk(rec.emg_v.samples());
  session_b.push_chunk(rec.emg_v.samples());
  session_a->finish();
  session_b.finish();
  session_a->drain_arv(arv_a);
  session_b.drain_arv(arv_b);
  EXPECT_EQ(arv_a, arv_b);
  EXPECT_EQ(session_a->report().events_rx, session_b.report().events_rx);
}

TEST(FactoryParityTest, SharedAerSessionMatchesLegacyWiring) {
  auto spec = identity_spec();
  config::set_scenario_key(spec, "source.channels", "4");
  config::set_scenario_key(spec, "source.model", "noise");
  config::set_scenario_key(spec, "topology", "shared");
  const config::PipelineFactory factory(spec);
  const auto recs = factory.make_recordings();

  // Legacy batch reference: encode -> aer merge -> one radio -> demux.
  std::vector<core::EventStream> tx;
  for (const auto& rec : recs) {
    tx.push_back(core::encode_datc_events(
        rec.emg_v, sim::datc_encoder_config(sim::EvalConfig{})));
  }
  sim::SharedAerConfig legacy_shared;
  legacy_shared.aer.address_bits = 2;
  legacy_shared.aer.min_spacing_s = 2e-6;
  const auto legacy =
      sim::run_aer_over_link(tx, legacy_link(), legacy_shared, 4);

  auto session_cfg = factory.session_config();
  session_cfg.keep_rx_events = true;  // retain the streams for comparison
  runtime::SharedAerStreamingSession session(
      session_cfg, factory.shared_config(), recs.size());
  std::vector<Real> round;
  for (const auto& rec : recs) {
    const auto& s = rec.emg_v.samples();
    round.insert(round.end(), s.begin(), s.end());
  }
  session.push_chunk(round);
  session.finish();

  ASSERT_EQ(legacy.per_channel_rx.size(), session.num_channels());
  for (std::size_t c = 0; c < session.num_channels(); ++c) {
    const auto& a = session.rx_events(c);
    const auto& b = legacy.per_channel_rx[c];
    ASSERT_EQ(a.size(), b.size()) << "channel " << c;
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].time_s, b[i].time_s);
      EXPECT_EQ(a[i].vth_code, b[i].vth_code);
      EXPECT_EQ(a[i].channel, b[i].channel);
    }
  }
  EXPECT_EQ(session.arbiter_stats().sent, legacy.arbiter.sent);
  EXPECT_EQ(session.arbiter_stats().dropped, legacy.arbiter.dropped);
}

TEST(FactoryParityTest, RecordReplayThroughFactoryIsBitIdentical) {
  const auto dir =
      (fs::temp_directory_path() / "datc_config_replay_test").string();
  fs::remove_all(dir);
  fs::create_directories(dir);

  const config::PipelineFactory factory(identity_spec());
  const auto rec = factory.make_recording(0);
  auto session = factory.make_streaming_session(0);

  store::RecorderConfig rcfg;
  rcfg.log.dir = dir;
  std::vector<Real> live_arv;
  {
    store::Recorder recorder(rcfg);
    session->set_event_tee([&recorder](std::span<const core::Event> ev) {
      recorder.offer(ev);
    });
    const auto& samples = rec.emg_v.samples();
    for (std::size_t pos = 0; pos < samples.size(); pos += 512) {
      const std::size_t n = std::min<std::size_t>(512, samples.size() - pos);
      session->push_chunk(std::span<const Real>(samples.data() + pos, n));
      session->drain_arv(live_arv);
    }
    session->finish();
    session->drain_arv(live_arv);
    recorder.close();
  }
  store::write_manifest(dir, factory.manifest(rec.emg_v.duration_s()));
  store::write_envelope_f64(dir, live_arv);

  const auto parity =
      store::check_replay_parity(dir, live_arv, factory.calibration());
  EXPECT_TRUE(parity.equal);
  EXPECT_EQ(parity.samples, live_arv.size());
  // The manifest alone must rebuild the identical receiver (no shared
  // calibration object): the path `datc replay` takes.
  const auto parity_cold = store::check_replay_parity(dir);
  EXPECT_TRUE(parity_cold.equal);
  fs::remove_all(dir);
}

TEST(FactoryParityTest, StreamingRejectsCodeDutyMode) {
  auto spec = identity_spec();
  config::set_scenario_key(spec, "recon.mode", "code-duty");
  const config::PipelineFactory factory(spec);
  EXPECT_THROW((void)factory.session_config(), config::ScenarioError);
  // The batch paths accept it.
  EXPECT_EQ(factory.eval_config().datc_mode, core::DatcDecodeMode::kCodeDuty);
}

}  // namespace
}  // namespace datc
