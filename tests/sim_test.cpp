// Evaluation layer: scheme scoring on the showcase recording, the table
// writer, and the end-to-end UWB pipeline.

#include <gtest/gtest.h>

#include "sim/end_to_end.hpp"
#include "sim/evaluation.hpp"
#include "sim/table_writer.hpp"

namespace {

using datc::dsp::Real;
using namespace datc;

// One shared evaluator (two Monte Carlo calibrations) for the fixture.
class EvaluatorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    eval_ = new sim::Evaluator();
    rec_ = new emg::Recording(emg::showcase_recording());
  }
  static void TearDownTestSuite() {
    delete eval_;
    delete rec_;
    eval_ = nullptr;
    rec_ = nullptr;
  }
  static sim::Evaluator* eval_;
  static emg::Recording* rec_;
};

sim::Evaluator* EvaluatorTest::eval_ = nullptr;
emg::Recording* EvaluatorTest::rec_ = nullptr;

TEST_F(EvaluatorTest, DatcBeatsAtcOnShowcase) {
  const auto a = eval_->atc(*rec_, 0.3);
  const auto d = eval_->datc(*rec_);
  // Fig. 3's qualitative result: D-ATC reconstructs better than the fixed
  // 0.3 V threshold and both are in the 85..100 band.
  EXPECT_GT(d.correlation_pct, a.correlation_pct);
  EXPECT_GT(d.correlation_pct, 93.0);
  EXPECT_GT(a.correlation_pct, 85.0);
}

TEST_F(EvaluatorTest, SymbolAccountingWired) {
  const auto d = eval_->datc(*rec_);
  EXPECT_EQ(d.symbols.symbols_per_event, 5u);  // 1 marker + 4 bits
  EXPECT_EQ(d.symbols.total, d.num_events * 5u);
  const auto a = eval_->atc(*rec_, 0.3);
  EXPECT_EQ(a.symbols.total, a.num_events);
}

TEST_F(EvaluatorTest, LowerThresholdMoreEvents) {
  const auto hi = eval_->atc(*rec_, 0.3);
  const auto lo = eval_->atc(*rec_, 0.2);
  EXPECT_GT(lo.num_events, hi.num_events);
}

TEST_F(EvaluatorTest, GroundTruthMatchesSignalLength) {
  const auto truth = eval_->ground_truth(*rec_);
  EXPECT_EQ(truth.size(), rec_->emg_v.size());
}

TEST_F(EvaluatorTest, EndToEndLosslessLinkPreservesScore) {
  sim::LinkConfig link;
  link.modulator.shape.amplitude_v = 0.5;
  link.channel.distance_m = 0.3;
  link.channel.ref_loss_db = 30.0;
  const sim::EndToEnd e2e(eval_->config(), link);
  const auto r = e2e.run_datc(*rec_);
  EXPECT_EQ(r.pulses_erased, 0u);
  EXPECT_EQ(r.events_rx, r.tx_side.num_events);
  EXPECT_NEAR(r.rx_side.correlation_pct, r.tx_side.correlation_pct, 0.5);
}

TEST_F(EvaluatorTest, EndToEndErasuresDegradeGracefully) {
  sim::LinkConfig clean;
  clean.modulator.shape.amplitude_v = 0.5;
  clean.channel.distance_m = 0.3;
  clean.channel.ref_loss_db = 30.0;
  sim::LinkConfig lossy = clean;
  lossy.channel.erasure_prob = 0.3;
  const sim::EndToEnd a(eval_->config(), clean);
  const sim::EndToEnd b(eval_->config(), lossy);
  const auto ra = a.run_datc(*rec_);
  const auto rb = b.run_datc(*rec_);
  EXPECT_GT(rb.pulses_erased, 0u);
  EXPECT_LT(rb.events_rx, ra.events_rx);
  // The paper's robustness claim: losing pulses hurts only mildly.
  EXPECT_GT(rb.rx_side.correlation_pct,
            ra.rx_side.correlation_pct - 12.0);
}

TEST_F(EvaluatorTest, AtcOverUwbAlsoWorks) {
  sim::LinkConfig link;
  link.modulator.shape.amplitude_v = 0.5;
  link.channel.distance_m = 0.3;
  link.channel.ref_loss_db = 30.0;
  const sim::EndToEnd e2e(eval_->config(), link);
  const auto r = e2e.run_atc(*rec_, 0.3);
  EXPECT_EQ(r.events_rx, r.tx_side.num_events);
  EXPECT_NEAR(r.rx_side.correlation_pct, r.tx_side.correlation_pct, 0.5);
}

TEST(TableWriter, AlignedTextAndCsv) {
  sim::Table t({"scheme", "events", "corr %"});
  t.add_row({"ATC", "3183", sim::Table::num(91.5, 1)});
  t.add_row({"D-ATC", "3724", sim::Table::num(96.41, 2)});
  const auto text = t.to_text();
  EXPECT_NE(text.find("scheme"), std::string::npos);
  EXPECT_NE(text.find("3724"), std::string::npos);
  EXPECT_NE(text.find("96.41"), std::string::npos);
  const auto csv = t.to_csv();
  EXPECT_NE(csv.find("scheme,events,corr %"), std::string::npos);
  EXPECT_NE(csv.find("D-ATC,3724,96.41"), std::string::npos);
}

TEST(TableWriter, CsvEscaping) {
  sim::Table t({"a", "b"});
  t.add_row({"x,y", "quote\"inside"});
  const auto csv = t.to_csv();
  EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
  EXPECT_NE(csv.find("\"quote\"\"inside\""), std::string::npos);
}

TEST(TableWriter, RowWidthValidation) {
  sim::Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(sim::Table empty({}), std::invalid_argument);
}

TEST(TableWriter, WriteCsvFile) {
  sim::Table t({"k", "v"});
  t.add_row({"x", "1"});
  EXPECT_TRUE(t.write_csv("/tmp/datc_table_test.csv"));
  EXPECT_FALSE(t.write_csv("/nonexistent_dir_xyz/t.csv"));
}

}  // namespace
