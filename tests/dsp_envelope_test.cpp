// Envelope extraction and sliding-window smoothers.

#include "dsp/envelope.hpp"

#include <cmath>
#include <gtest/gtest.h>
#include <numbers>

#include "dsp/moving_average.hpp"
#include "dsp/rng.hpp"
#include "dsp/stats.hpp"

namespace {

using datc::dsp::Real;
using namespace datc;

TEST(Rectify, FullWave) {
  const std::vector<Real> x{-1.0, 2.0, -3.0, 0.0};
  const auto y = dsp::rectify(x);
  EXPECT_EQ(y, (std::vector<Real>{1.0, 2.0, 3.0, 0.0}));
}

TEST(Rectify, HalfWave) {
  const std::vector<Real> x{-1.0, 2.0, -3.0, 0.5};
  const auto y = dsp::rectify_half(x);
  EXPECT_EQ(y, (std::vector<Real>{0.0, 2.0, 0.0, 0.5}));
}

TEST(MovingAverage, CausalWarmup) {
  const std::vector<Real> x{2.0, 4.0, 6.0, 8.0};
  const auto y = dsp::moving_average(x, 2);
  EXPECT_DOUBLE_EQ(y[0], 2.0);  // only one sample seen
  EXPECT_DOUBLE_EQ(y[1], 3.0);
  EXPECT_DOUBLE_EQ(y[2], 5.0);
  EXPECT_DOUBLE_EQ(y[3], 7.0);
}

TEST(MovingAverage, WindowOneIsIdentity) {
  const std::vector<Real> x{1.0, -2.0, 3.0};
  EXPECT_EQ(dsp::moving_average(x, 1), x);
  EXPECT_EQ(dsp::centered_moving_average(x, 1), x);
}

TEST(MovingAverage, CenteredIsZeroLag) {
  // A symmetric triangular pulse centred at 50: the centred MA must peak
  // at the same index.
  std::vector<Real> x(101, 0.0);
  for (int i = 0; i <= 20; ++i) {
    x[static_cast<std::size_t>(50 - i)] = static_cast<Real>(20 - i);
    x[static_cast<std::size_t>(50 + i)] = static_cast<Real>(20 - i);
  }
  const auto y = dsp::centered_moving_average(x, 11);
  std::size_t peak_x = 0;
  std::size_t peak_y = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (x[i] > x[peak_x]) peak_x = i;
    if (y[i] > y[peak_y]) peak_y = i;
  }
  EXPECT_EQ(peak_x, peak_y);
}

TEST(MovingAverage, CenteredPreservesMeanOfConstant) {
  const std::vector<Real> x(50, 3.5);
  const auto y = dsp::centered_moving_average(x, 9);
  for (const Real v : y) EXPECT_NEAR(v, 3.5, 1e-12);
}

TEST(MovingAverage, StreamingMatchesBatch) {
  dsp::Rng rng(2);
  std::vector<Real> x(200);
  for (auto& v : x) v = rng.gaussian();
  const auto batch = dsp::moving_average(x, 16);
  dsp::MovingAverager ma(16);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(ma.process(x[i]), batch[i], 1e-12);
  }
  ma.reset();
  EXPECT_NEAR(ma.process(4.0), 4.0, 1e-12);
}

TEST(MedianFilter, RemovesImpulses) {
  std::vector<Real> x(51, 1.0);
  x[25] = 100.0;  // spike
  const auto y = dsp::median_filter(x, 5);
  EXPECT_DOUBLE_EQ(y[25], 1.0);
}

TEST(MedianFilter, RequiresOddWindow) {
  const std::vector<Real> x{1.0, 2.0, 3.0};
  EXPECT_THROW((void)dsp::median_filter(x, 4), std::invalid_argument);
}

TEST(WindowSamples, AlwaysOddAndPositive) {
  EXPECT_EQ(dsp::window_samples(2500.0, 0.25) % 2, 1u);
  EXPECT_GE(dsp::window_samples(10.0, 0.001), 1u);
  EXPECT_THROW((void)dsp::window_samples(0.0, 1.0), std::invalid_argument);
}

TEST(ArvEnvelope, TracksAmplitudeModulation) {
  // |sin| carrier with a step change in amplitude.
  const Real fs = 2500.0;
  std::vector<Real> x(5000);
  constexpr Real kTwoPi = 2.0 * std::numbers::pi_v<Real>;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const Real amp = i < 2500 ? 1.0 : 3.0;
    x[i] = amp * std::sin(kTwoPi * 200.0 * static_cast<Real>(i) / fs);
  }
  const auto env = dsp::arv_envelope(x, fs, 0.1);
  // ARV of a sine of amplitude A is 2A/pi.
  EXPECT_NEAR(env[1000], 2.0 / std::numbers::pi_v<Real>, 0.05);
  EXPECT_NEAR(env[4000], 6.0 / std::numbers::pi_v<Real>, 0.15);
}

TEST(RmsEnvelope, SineLevel) {
  const Real fs = 2500.0;
  std::vector<Real> x(5000);
  constexpr Real kTwoPi = 2.0 * std::numbers::pi_v<Real>;
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = 2.0 * std::sin(kTwoPi * 100.0 * static_cast<Real>(i) / fs);
  }
  const auto env = dsp::rms_envelope(x, fs, 0.1);
  EXPECT_NEAR(env[2500], 2.0 / std::sqrt(2.0), 0.05);
}

TEST(ArvEnvelope, GaussianRelation) {
  // For zero-mean Gaussian noise, ARV = sigma * sqrt(2/pi).
  dsp::Rng rng(31);
  std::vector<Real> x(50000);
  for (auto& v : x) v = 0.5 * rng.gaussian();
  const auto env = dsp::arv_envelope(x, 2500.0, 1.0);
  EXPECT_NEAR(dsp::mean(env), 0.5 * std::sqrt(2.0 / std::numbers::pi_v<Real>),
              0.02);
}

}  // namespace
