// The streaming session engine: chunked encode -> modulate -> propagate ->
// decode -> reconstruct must be bit-identical to the batch pipeline for
// EVERY chunk size, in both link modes; the SessionManager must preserve
// that while multiplexing sessions across the pool; and the streaming
// building blocks must hold their individual contracts (open frames across
// chunk boundaries, cumulative receiver stats, channel tagging).

#include <cmath>
#include <gtest/gtest.h>
#include <limits>
#include <numeric>

#include "core/streaming.hpp"
#include "runtime/session.hpp"
#include "sim/stream_parity.hpp"
#include "uwb/streaming_link.hpp"

namespace {

using datc::dsp::Real;
using namespace datc;

core::CalibrationPtr test_calibration() {
  // One Monte Carlo run shared by every test in this binary.
  static const core::CalibrationPtr cal = [] {
    core::RateCalibrationConfig c;
    c.count_fs_hz = 2000.0;
    c.num_samples = 100000;
    return std::make_shared<core::RateCalibration>(c);
  }();
  return cal;
}

emg::Recording make_channel(std::uint64_t seed, Real duration_s, Real gain) {
  emg::RecordingSpec spec;
  spec.seed = seed;
  spec.duration_s = duration_s;
  spec.gain_v = gain;
  spec.name = "stream-ch" + std::to_string(seed);
  return emg::make_recording(spec);
}

sim::LinkConfig noisy_link(std::uint64_t seed) {
  sim::LinkConfig link;
  link.seed = seed;
  // Body-area distance above the detector floor, with real impairments:
  // erasures and timing jitter exercise the carried-Rng and reorder paths.
  link.channel.distance_m = 0.6;
  link.channel.ref_loss_db = 30.0;
  link.channel.erasure_prob = 0.05;
  return link;
}

// ---------------------------------------------------------------- parity

class StreamChunkParityTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(StreamChunkParityTest, PerChannelStreamingMatchesBatchExactly) {
  const auto rec = make_channel(301, 3.0, 0.4);
  const sim::EvalConfig eval;
  const auto r = sim::check_stream_parity(rec.emg_v, eval, noisy_link(17),
                                          test_calibration(), GetParam(),
                                          /*channel_id=*/3);
  EXPECT_TRUE(r.events_equal)
      << "decoded streams differ: batch " << r.events_batch << " vs stream "
      << r.events_stream << " events (chunk " << GetParam() << ")";
  EXPECT_TRUE(r.arv_equal) << "ARV diverged by " << r.max_abs_arv_diff
                           << " over " << r.arv_samples << " samples (chunk "
                           << GetParam() << ")";
  EXPECT_GT(r.events_batch, 10u);  // the link actually carried traffic
  EXPECT_GT(r.arv_samples, 0u);
}

// 0 = whole record in one chunk.
INSTANTIATE_TEST_SUITE_P(ChunkSizes, StreamChunkParityTest,
                         ::testing::Values(1, 7, 64, 4096, 0));

class SharedStreamParityTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SharedStreamParityTest, SharedAerStreamingMatchesBatchExactly) {
  std::vector<dsp::TimeSeries> chans;
  for (std::size_t c = 0; c < 4; ++c) {
    chans.push_back(
        make_channel(400 + c, 2.0, 0.25 + 0.1 * static_cast<Real>(c)).emg_v);
  }
  const sim::EvalConfig eval;
  sim::SharedAerConfig shared;
  shared.aer.address_bits = 2;
  shared.aer.min_spacing_s = 2e-6;
  const auto r = sim::check_shared_stream_parity(chans, eval, noisy_link(29),
                                                 shared, test_calibration(),
                                                 GetParam());
  EXPECT_TRUE(r.events_equal)
      << "decoded/demuxed streams differ: batch " << r.events_batch
      << " vs stream " << r.events_stream << " (chunk " << GetParam() << ")";
  EXPECT_TRUE(r.arv_equal) << "ARV diverged by " << r.max_abs_arv_diff
                           << " (chunk " << GetParam() << ")";
  EXPECT_GT(r.events_batch, 40u);
}

INSTANTIATE_TEST_SUITE_P(ChunkSizes, SharedStreamParityTest,
                         ::testing::Values(1, 7, 64, 4096, 0));

// --------------------------------------------------------- session manager

TEST(SessionManager, MultiplexedSessionsMatchDirectExecution) {
  const sim::EvalConfig eval;
  const auto link = noisy_link(51);
  auto cfg = sim::make_session_config(eval, link, test_calibration());
  cfg.keep_rx_events = true;

  constexpr std::size_t kChannels = 5;
  constexpr std::size_t kChunk = 300;
  std::vector<emg::Recording> recs;
  for (std::size_t c = 0; c < kChannels; ++c) {
    recs.push_back(make_channel(700 + c, 1.6, 0.2 + 0.08 * static_cast<Real>(c)));
  }

  // Direct, serial execution.
  std::vector<runtime::SessionReport> direct_reports;
  std::vector<std::vector<Real>> direct_arv(kChannels);
  for (std::size_t c = 0; c < kChannels; ++c) {
    runtime::StreamingSession s(cfg, static_cast<std::uint32_t>(c));
    const auto& samples = recs[c].emg_v.samples();
    for (std::size_t pos = 0; pos < samples.size(); pos += kChunk) {
      const std::size_t n = std::min(kChunk, samples.size() - pos);
      s.push_chunk(std::span<const Real>(samples.data() + pos, n));
    }
    s.finish();
    s.drain_arv(direct_arv[c]);
    direct_reports.push_back(s.report());
  }

  // Through the manager: 3 workers, tight backpressure bound.
  runtime::SessionManager::Config mcfg;
  mcfg.jobs = 3;
  mcfg.max_pending_chunks = 2;
  runtime::SessionManager manager(mcfg);
  std::vector<runtime::StreamingSession*> sessions;
  std::vector<runtime::SessionManager::SessionId> ids;
  for (std::size_t c = 0; c < kChannels; ++c) {
    auto s = std::make_unique<runtime::StreamingSession>(
        cfg, static_cast<std::uint32_t>(c));
    sessions.push_back(s.get());
    ids.push_back(manager.add(std::move(s)));
  }
  // Interleave submissions round-robin so strands genuinely overlap.
  const std::size_t total = recs[0].emg_v.size();
  for (std::size_t pos = 0; pos < total; pos += kChunk) {
    for (std::size_t c = 0; c < kChannels; ++c) {
      const auto& samples = recs[c].emg_v.samples();
      const std::size_t n = std::min(kChunk, samples.size() - pos);
      manager.submit_chunk(ids[c],
                           std::span<const Real>(samples.data() + pos, n));
    }
  }
  for (const auto id : ids) manager.submit_finish(id);
  manager.drain();

  for (std::size_t c = 0; c < kChannels; ++c) {
    const auto& d = direct_reports[c];
    const auto m = sessions[c]->report();
    EXPECT_EQ(d.events_tx, m.events_tx) << c;
    EXPECT_EQ(d.pulses_tx, m.pulses_tx) << c;
    EXPECT_EQ(d.pulses_erased, m.pulses_erased) << c;
    EXPECT_EQ(d.events_rx, m.events_rx) << c;
    EXPECT_EQ(d.arv_emitted, m.arv_emitted) << c;
    std::vector<Real> arv;
    sessions[c]->drain_arv(arv);
    ASSERT_EQ(direct_arv[c].size(), arv.size()) << c;
    for (std::size_t i = 0; i < arv.size(); ++i) {
      ASSERT_EQ(direct_arv[c][i], arv[i]) << "c=" << c << " i=" << i;
    }
  }
}

TEST(SessionManager, ReportsDeltasAndPropagatesErrors) {
  const sim::EvalConfig eval;
  auto cfg = sim::make_session_config(eval, noisy_link(5), test_calibration());
  runtime::SessionManager manager({.jobs = 2, .max_pending_chunks = 1});
  auto owned = std::make_unique<runtime::StreamingSession>(cfg, 0);
  auto* session = owned.get();
  const auto id = manager.add(std::move(owned));

  const auto rec = make_channel(900, 1.0, 0.3);
  manager.submit_chunk(id, rec.emg_v.view());
  manager.drain();
  const auto d1 = session->take_delta();
  EXPECT_EQ(d1.samples_in, rec.emg_v.size());
  EXPECT_GT(d1.events_tx, 0u);
  manager.submit_finish(id);
  manager.drain();
  const auto d2 = session->take_delta();
  EXPECT_EQ(d2.samples_in, 0u);          // no new samples, only the flush
  EXPECT_GT(d2.arv_emitted, 0u);         // the reconstruction tail
  EXPECT_EQ(session->report().samples_in, rec.emg_v.size());

  // A chunk after finish() is a session error: surfaced at drain(), and
  // the manager stays usable.
  manager.submit_chunk(id, rec.emg_v.view());
  EXPECT_THROW(manager.drain(), std::invalid_argument);
  manager.drain();  // no pending work, no stale error
}

TEST(SessionManager, InterleavedDeltaPollsSumToCumulativeTotals) {
  // Two consumers poll the same session at interleaved points: one
  // through take_delta() (shared internal snapshot — the deltas partition
  // the totals across consumers), one keeping its own snapshot via
  // session_report_delta. Both accountings must land exactly on the
  // cumulative report.
  const sim::EvalConfig eval;
  auto cfg = sim::make_session_config(eval, noisy_link(77),
                                      test_calibration());
  runtime::StreamingSession session(cfg, 0);
  const auto rec = make_channel(901, 2.0, 0.35);
  const auto& samples = rec.emg_v.samples();

  const auto accumulate = [](runtime::SessionReport& into,
                             const runtime::SessionReport& d) {
    into.samples_in += d.samples_in;
    into.events_tx += d.events_tx;
    into.pulses_tx += d.pulses_tx;
    into.pulses_erased += d.pulses_erased;
    into.events_rx += d.events_rx;
    into.arv_emitted += d.arv_emitted;
    into.decode.packets_decoded += d.decode.packets_decoded;
  };

  runtime::SessionReport take_sum_a{};  // take_delta consumer A
  runtime::SessionReport take_sum_b{};  // take_delta consumer B
  runtime::SessionReport own_sum{};     // own-snapshot consumer
  runtime::SessionReport own_before{};
  constexpr std::size_t kChunk = 257;
  std::size_t round = 0;
  for (std::size_t pos = 0; pos < samples.size(); pos += kChunk, ++round) {
    const std::size_t n = std::min(kChunk, samples.size() - pos);
    session.push_chunk(std::span<const Real>(samples.data() + pos, n));
    // Irregular interleaving: A polls on rounds 0,2,4..., B on multiples
    // of 3, the own-snapshot consumer on multiples of 5.
    if (round % 2 == 0) accumulate(take_sum_a, session.take_delta());
    if (round % 3 == 0) accumulate(take_sum_b, session.take_delta());
    if (round % 5 == 0) {
      const auto now = session.report();
      accumulate(own_sum, runtime::session_report_delta(now, own_before));
      own_before = now;
    }
  }
  session.finish();
  accumulate(take_sum_a, session.take_delta());
  {
    const auto now = session.report();
    accumulate(own_sum, runtime::session_report_delta(now, own_before));
  }

  const auto total = session.report();
  EXPECT_GT(total.events_rx, 0u);
  runtime::SessionReport take_sum{};
  accumulate(take_sum, take_sum_a);
  accumulate(take_sum, take_sum_b);
  for (const auto* sum : {&take_sum, &own_sum}) {
    EXPECT_EQ(sum->samples_in, total.samples_in);
    EXPECT_EQ(sum->events_tx, total.events_tx);
    EXPECT_EQ(sum->pulses_tx, total.pulses_tx);
    EXPECT_EQ(sum->pulses_erased, total.pulses_erased);
    EXPECT_EQ(sum->events_rx, total.events_rx);
    EXPECT_EQ(sum->arv_emitted, total.arv_emitted);
    EXPECT_EQ(sum->decode.packets_decoded, total.decode.packets_decoded);
  }
}

// ------------------------------------------------- streaming link pieces

TEST(StreamingReceiver, FrameSpanningChunkBoundaryMatchesBatch) {
  // A packet whose marker lands in chunk 1 and whose code bits land in
  // chunk 2 must decode exactly as the unchunked train: the open-packet
  // state carries across decode_chunk calls.
  uwb::ModulatorConfig mod;  // ts = 100 ns, 4 code bits
  mod.shape.amplitude_v = 0.5;
  core::EventStream events;
  events.add(1e-3, 11);
  events.add(1e-3 + 5e-4, 13);
  events.add(1e-3 + 9e-4, 6);
  const auto train = uwb::modulate_datc(events, mod);

  uwb::ChannelConfig ch;
  ch.distance_m = 0.3;
  ch.ref_loss_db = 30.0;
  uwb::UwbReceiverConfig rxc;
  rxc.modulator = mod;
  uwb::UwbReceiver batch(rxc, ch, dsp::Rng(77));
  const auto want = batch.decode(train);
  ASSERT_EQ(want.size(), 3u);

  // Split mid-packet: the second packet's marker + first bits in chunk A,
  // the rest in chunk B.
  uwb::StreamingUwbReceiver streaming(rxc, ch, dsp::Rng(77));
  uwb::PulseTrain a;
  uwb::PulseTrain b;
  const Real split = 1e-3 + 5e-4 + 1.5e-7;  // inside packet 2's bit slots
  for (const auto& p : train.pulses()) {
    (p.time_s < split ? a : b).add(p);
  }
  ASSERT_FALSE(a.empty());
  ASSERT_FALSE(b.empty());
  core::EventStream got;
  streaming.decode_chunk(a, split, got);
  EXPECT_LT(got.size(), 3u);  // the straddling frame must still be open
  streaming.decode_chunk(b, std::numeric_limits<Real>::infinity(), got);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].time_s, want[i].time_s) << i;
    EXPECT_EQ(got[i].vth_code, want[i].vth_code) << i;
  }
  EXPECT_EQ(streaming.stats().packets_decoded, 3u);
}

TEST(UwbReceiver, StatsSplitPerCallAndCumulative) {
  // Regression for the stats_ wipe: decoding several trains with one
  // receiver must keep per-call stats per call and running totals intact.
  uwb::ModulatorConfig mod;
  mod.shape.amplitude_v = 0.5;
  uwb::ChannelConfig ch;
  ch.distance_m = 0.3;
  ch.ref_loss_db = 30.0;
  uwb::UwbReceiverConfig rxc;
  rxc.modulator = mod;
  uwb::UwbReceiver rx(rxc, ch, dsp::Rng(31));

  core::EventStream first;
  for (int i = 0; i < 20; ++i) first.add(1e-3 * (i + 1), 9);
  core::EventStream second;
  for (int i = 0; i < 30; ++i) second.add(1e-3 * (i + 1), 5);

  (void)rx.decode(uwb::modulate_datc(first, mod));
  const auto call1 = rx.stats();
  EXPECT_EQ(call1.packets_decoded, 20u);
  (void)rx.decode(uwb::modulate_datc(second, mod));
  const auto call2 = rx.stats();
  EXPECT_EQ(call2.packets_decoded, 30u);

  const auto& total = rx.cumulative_stats();
  EXPECT_EQ(total.packets_decoded, 50u);
  EXPECT_EQ(total.pulses_in, call1.pulses_in + call2.pulses_in);
  EXPECT_EQ(total.pulses_detected,
            call1.pulses_detected + call2.pulses_detected);
  EXPECT_EQ(total.false_alarm_bits,
            call1.false_alarm_bits + call2.false_alarm_bits);
}

TEST(StreamingEncoders, ChannelTagRidesOnEveryEvent) {
  // Regression: streamed events used to hardcode AER address 0.
  const auto rec = make_channel(11, 1.0, 0.4);
  core::EventStream tagged;
  core::StreamingDatcEncoderT<core::EventSink> enc(
      core::DatcEncoderConfig{}, rec.emg_v.sample_rate_hz(),
      [&tagged](const core::Event& e) {
        tagged.add(e.time_s, e.vth_code, e.channel);
      },
      /*channel=*/37);
  enc.push_block(rec.emg_v.view());
  ASSERT_GT(tagged.size(), 0u);
  for (const auto& e : tagged.events()) EXPECT_EQ(e.channel, 37u);

  core::EventStream atc_tagged;
  core::AtcEncoderConfig acfg;
  acfg.threshold_v = 0.1;
  core::StreamingAtcEncoderT<core::EventSink> aenc(
      acfg, rec.emg_v.sample_rate_hz(),
      [&atc_tagged](const core::Event& e) {
        atc_tagged.add(e.time_s, e.vth_code, e.channel);
      },
      /*channel=*/9);
  aenc.push_block(rec.emg_v.view());
  ASSERT_GT(atc_tagged.size(), 0u);
  for (const auto& e : atc_tagged.events()) EXPECT_EQ(e.channel, 9u);
}

TEST(StreamingAtc, FirstSampleAboveThresholdBootstrap) {
  // Satellite edge: a record that OPENS above threshold must not fire on
  // the bootstrap sample — the comparator starts disarmed and must see a
  // dip below the arm level first. Streaming must match the batch rule.
  core::AtcEncoderConfig cfg;
  cfg.threshold_v = 0.5;
  cfg.hysteresis_v = 0.1;
  const std::vector<Real> x = {0.9, 0.8, 0.7,   // above from sample 0
                               0.3,             // below arm level: re-arm
                               0.6, 0.7,        // genuine crossing -> event
                               0.45, 0.55};     // above arm: still disarmed
  const auto batch =
      core::encode_atc(dsp::TimeSeries(x, 100.0), cfg);
  ASSERT_EQ(batch.events.size(), 1u);

  core::EventStream streamed;
  core::StreamingAtcEncoderT<core::EventSink> enc(
      cfg, 100.0, [&streamed](const core::Event& e) {
        streamed.add(e.time_s);
      });
  for (const Real v : x) enc.push(v);
  ASSERT_EQ(streamed.size(), 1u);
  EXPECT_DOUBLE_EQ(streamed[0].time_s, batch.events[0].time_s);
  // The crossing interpolates between samples 3 (0.3) and 4 (0.6).
  EXPECT_NEAR(streamed[0].time_s, (3.0 + 2.0 / 3.0) / 100.0, 1e-12);
}

}  // namespace
