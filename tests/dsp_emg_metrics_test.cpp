// Spectral EMG metrics (median/mean frequency, Goertzel) and the fatigue
// synthesiser extension they measure.

#include "dsp/emg_metrics.hpp"

#include <cmath>
#include <gtest/gtest.h>
#include <numbers>

#include "dsp/rng.hpp"
#include "emg/fatigue.hpp"

namespace {

using datc::dsp::Real;
using namespace datc;

constexpr Real kTwoPi = 2.0 * std::numbers::pi_v<Real>;

std::vector<Real> tone(Real f, Real fs, std::size_t n, Real amp = 1.0) {
  std::vector<Real> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = amp * std::sin(kTwoPi * f * static_cast<Real>(i) / fs);
  }
  return x;
}

TEST(MedianFrequency, PureToneIsItsOwnMedian) {
  const auto x = tone(120.0, 2500.0, 16384);
  EXPECT_NEAR(dsp::median_frequency_hz(x, 2500.0), 120.0, 5.0);
}

TEST(MedianFrequency, TwoTonesSplit) {
  auto x = tone(100.0, 2500.0, 16384);
  const auto hi = tone(400.0, 2500.0, 16384);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] += hi[i];
  const Real mf = dsp::median_frequency_hz(x, 2500.0);
  EXPECT_GT(mf, 100.0);
  EXPECT_LT(mf, 400.0);
}

TEST(MeanFrequency, OrderedWithMedianForLowpassSpectrum) {
  // A decaying spectrum has mean above median? For EMG-like spectra both
  // sit in the band; check both are finite and ordered sanely for a
  // known two-tone case.
  auto x = tone(100.0, 2500.0, 16384, 2.0);
  const auto hi = tone(500.0, 2500.0, 16384, 1.0);
  for (std::size_t i = 0; i < x.size(); ++i) x[i] += hi[i];
  const auto psd = dsp::welch_psd(x, 2500.0, 1024);
  const Real median = dsp::median_frequency_hz(psd);
  const Real mean = dsp::mean_frequency_hz(psd);
  // Power 4:1 at 100 vs 500 Hz: median stays at the strong tone, the
  // mean is dragged towards the weak high tone.
  EXPECT_NEAR(median, 100.0, 10.0);
  EXPECT_GT(mean, median);
}

TEST(MedianFrequency, RejectsDegenerateInput) {
  dsp::PsdEstimate empty;
  EXPECT_THROW((void)dsp::median_frequency_hz(empty), std::invalid_argument);
  dsp::PsdEstimate zero;
  zero.freq_hz = {0.0, 1.0};
  zero.psd_v2_hz = {0.0, 0.0};
  EXPECT_THROW((void)dsp::median_frequency_hz(zero), std::invalid_argument);
}

TEST(Goertzel, MeasuresToneAmplitude) {
  const auto x = tone(50.0, 2500.0, 5000, 0.4);
  // goertzel_power ~ A^2 at the tone frequency.
  EXPECT_NEAR(dsp::goertzel_power(x, 2500.0, 50.0), 0.16, 0.02);
  // Far from the tone: near zero.
  EXPECT_LT(dsp::goertzel_power(x, 2500.0, 700.0), 0.005);
  EXPECT_THROW((void)dsp::goertzel_power(x, 2500.0, 2000.0),
               std::invalid_argument);
}

TEST(Goertzel, TonePowerFraction) {
  auto x = tone(50.0, 2500.0, 10000, 1.0);
  EXPECT_NEAR(dsp::tone_power_fraction(x, 2500.0, 50.0), 1.0, 0.02);
  dsp::Rng rng(4);
  for (auto& v : x) v += 3.0 * rng.gaussian();
  const Real frac = dsp::tone_power_fraction(x, 2500.0, 50.0);
  EXPECT_GT(frac, 0.01);
  EXPECT_LT(frac, 0.3);
}

TEST(Fatigue, TrajectoryAccumulatesAndRecovers) {
  emg::ForceProfile drive;
  drive.sample_rate_hz = 100.0;
  drive.fraction_mvc.assign(3000, 0.8);                    // 30 s effort
  drive.fraction_mvc.insert(drive.fraction_mvc.end(), 3000, 0.0);  // rest
  emg::FatigueConfig cfg;
  cfg.tau_s = 10.0;
  const auto s = emg::fatigue_trajectory(drive, cfg);
  EXPECT_LT(s.front(), 0.05);
  const Real peak = s[2999];
  EXPECT_GT(peak, 0.5);
  // Recovery is slower but monotone.
  EXPECT_LT(s.back(), peak);
}

TEST(Fatigue, MedianFrequencyDrops) {
  // A sustained contraction must show the classic spectral compression.
  emg::ForceProfile drive;
  drive.sample_rate_hz = 2500.0;
  drive.fraction_mvc.assign(2500 * 30, 0.7);  // 30 s hold
  emg::FatigueConfig cfg;
  cfg.tau_s = 8.0;
  cfg.sigma_stretch = 1.5;
  dsp::Rng rng(21);
  const auto sig = emg::synthesize_fatigued(
      drive, emg::MotorUnitPoolConfig{}, cfg, rng);
  ASSERT_EQ(sig.size(), drive.fraction_mvc.size());
  const std::size_t quarter = sig.size() / 4;
  const Real mf_early = dsp::median_frequency_hz(
      std::span<const Real>(sig.samples().data(), quarter), 2500.0);
  const Real mf_late = dsp::median_frequency_hz(
      std::span<const Real>(sig.samples().data() + 3 * quarter, quarter),
      2500.0);
  EXPECT_LT(mf_late, mf_early * 0.92);
}

TEST(Fatigue, Validation) {
  emg::ForceProfile drive;
  drive.sample_rate_hz = 100.0;
  drive.fraction_mvc.assign(100, 0.5);
  emg::FatigueConfig bad;
  bad.tau_s = 0.0;
  EXPECT_THROW((void)emg::fatigue_trajectory(drive, bad),
               std::invalid_argument);
  dsp::Rng rng(1);
  EXPECT_THROW((void)emg::synthesize_fatigued(
                   drive, emg::MotorUnitPoolConfig{}, emg::FatigueConfig{},
                   rng, 0.0),
               std::invalid_argument);
}

}  // namespace
