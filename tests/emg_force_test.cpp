// Force-profile generators: ranges, durations, shapes, determinism.

#include "emg/force_profile.hpp"

#include <gtest/gtest.h>

#include "dsp/stats.hpp"

namespace {

using datc::dsp::Real;
using namespace datc;

TEST(ForceProfile, ConstantLevelAndLength) {
  const auto p = emg::constant_force(0.4, 2.0, 1000.0);
  EXPECT_EQ(p.fraction_mvc.size(), 2000u);
  for (const Real v : p.fraction_mvc) EXPECT_DOUBLE_EQ(v, 0.4);
  EXPECT_THROW((void)emg::constant_force(1.5, 1.0, 100.0),
               std::invalid_argument);
}

TEST(ForceProfile, TrapezoidShape) {
  const auto p = emg::trapezoid_force(0.8, 0.5, 1.0, 0.5, 1000.0);
  const auto& f = p.fraction_mvc;
  // Rest at the start and end.
  EXPECT_DOUBLE_EQ(f.front(), 0.0);
  EXPECT_DOUBLE_EQ(f.back(), 0.0);
  // Plateau in the middle.
  const std::size_t mid = f.size() / 2;
  EXPECT_NEAR(f[mid], 0.8, 1e-9);
  // All values in range.
  for (const Real v : f) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 0.8 + 1e-12);
  }
}

TEST(ForceProfile, StaircaseDescendsToZero) {
  const auto p = emg::staircase_force(0.7, 5, 1.0, 100.0);
  const auto& f = p.fraction_mvc;
  EXPECT_EQ(f.size(), 500u);
  EXPECT_NEAR(f.front(), 0.7, 1e-12);
  EXPECT_NEAR(f.back(), 0.0, 1e-12);
  // Non-increasing plateau levels.
  for (std::size_t s = 1; s < 5; ++s) {
    EXPECT_LE(f[s * 100], f[(s - 1) * 100] + 1e-12);
  }
}

TEST(ForceProfile, SinusoidClamped) {
  const auto p = emg::sinusoid_force(0.2, 0.5, 1.0, 3.0, 500.0);
  for (const Real v : p.fraction_mvc) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
  // Should actually reach the clamp region (offset+amp > max).
  EXPECT_NEAR(dsp::max_value(p.fraction_mvc), 0.7, 0.01);
}

TEST(GripProtocol, ExactDurationAndBounds) {
  dsp::Rng rng(101);
  const auto p = emg::grip_protocol(rng, 0.7, 20.0, 2500.0);
  EXPECT_EQ(p.fraction_mvc.size(), 50000u);
  for (const Real v : p.fraction_mvc) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
  // Peak effort near the requested start level.
  EXPECT_GT(dsp::max_value(p.fraction_mvc), 0.45);
  EXPECT_LT(dsp::max_value(p.fraction_mvc), 0.95);
}

TEST(GripProtocol, DeterministicPerSeed) {
  dsp::Rng a(55);
  dsp::Rng b(55);
  const auto pa = emg::grip_protocol(a, 0.7, 5.0, 1000.0);
  const auto pb = emg::grip_protocol(b, 0.7, 5.0, 1000.0);
  EXPECT_EQ(pa.fraction_mvc, pb.fraction_mvc);
  dsp::Rng c(56);
  const auto pc = emg::grip_protocol(c, 0.7, 5.0, 1000.0);
  EXPECT_NE(pa.fraction_mvc, pc.fraction_mvc);
}

TEST(GripProtocol, EndsLowerThanItStarts) {
  // The protocol trends from ~70 % MVC down towards rest.
  dsp::Rng rng(77);
  const auto p = emg::grip_protocol(rng, 0.7, 20.0, 500.0);
  const auto& f = p.fraction_mvc;
  const std::size_t q = f.size() / 4;
  const Real first_quarter =
      dsp::mean(std::span<const Real>(f.data(), q));
  const Real last_quarter =
      dsp::mean(std::span<const Real>(f.data() + 3 * q, q));
  EXPECT_GT(first_quarter, last_quarter);
}

TEST(SmoothProfile, BandLimitsAndClamps) {
  // A square profile smoothed at 2 Hz must lose its sharp edge.
  emg::ForceProfile p;
  p.sample_rate_hz = 1000.0;
  p.fraction_mvc.assign(1000, 0.0);
  for (std::size_t i = 500; i < 1000; ++i) p.fraction_mvc[i] = 1.0;
  const auto s = emg::smooth_profile(p, 2.0);
  // The edge is no longer instantaneous: value just after the step is
  // far from 1.
  EXPECT_LT(s.fraction_mvc[510], 0.5);
  for (const Real v : s.fraction_mvc) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

class GripSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GripSeedSweep, AlwaysValid) {
  dsp::Rng rng(GetParam());
  const auto p = emg::grip_protocol(rng, 0.7, 10.0, 2000.0);
  EXPECT_EQ(p.fraction_mvc.size(), 20000u);
  for (const Real v : p.fraction_mvc) {
    ASSERT_GE(v, 0.0);
    ASSERT_LE(v, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GripSeedSweep,
                         ::testing::Values(1, 17, 99, 256, 1024, 31337));

}  // namespace
