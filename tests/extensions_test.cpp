// Cross-cutting extension scenarios: non-ideal analog behaviour inside
// the closed D-ATC loop, artifact removal with the notch designer, and
// hardware-activity effects of comparator hysteresis.

#include <gtest/gtest.h>

#include "core/datc_encoder.hpp"
#include "dsp/biquad.hpp"
#include "dsp/emg_metrics.hpp"
#include "dsp/stats.hpp"
#include "dsp/filter_design.hpp"
#include "emg/artifacts.hpp"
#include "emg/dataset.hpp"
#include "sim/evaluation.hpp"

namespace {

using datc::dsp::Real;
using namespace datc;

emg::Recording mid_recording(std::uint64_t seed = 404) {
  emg::RecordingSpec spec;
  spec.seed = seed;
  spec.gain_v = 0.35;
  spec.duration_s = 8.0;
  return emg::make_recording(spec);
}

TEST(Extensions, ComparatorHysteresisKeepsTrackingAndCutsToggles) {
  const auto rec = mid_recording();
  core::DatcEncoderConfig clean;
  core::DatcEncoderConfig hyst;
  hyst.comparator.hysteresis_v = 0.02;
  const auto a = core::encode_datc(rec.emg_v, clean);
  const auto b = core::encode_datc(rec.emg_v, hyst);

  auto toggles = [](const core::DatcTrace& tr) {
    std::size_t n = 0;
    for (std::size_t i = 1; i < tr.d_out.size(); ++i) {
      n += tr.d_out[i] != tr.d_out[i - 1];
    }
    return n;
  };
  // Hysteresis suppresses chattering near the threshold: fewer d_out
  // transitions, hence fewer events and less switching power.
  EXPECT_LT(toggles(b.trace), toggles(a.trace));
  EXPECT_LT(b.events.size(), a.events.size());
  EXPECT_GT(b.events.size(), a.events.size() / 3);  // but not starved
}

TEST(Extensions, ComparatorOffsetShiftsOperatingPoint) {
  const auto rec = mid_recording(405);
  core::DatcEncoderConfig pos;
  pos.comparator.offset_v = 0.05;  // input looks bigger -> higher codes
  core::DatcEncoderConfig neg;
  neg.comparator.offset_v = -0.05;
  const auto a = core::encode_datc(rec.emg_v, pos);
  const auto b = core::encode_datc(rec.emg_v, neg);
  Real mean_a = 0.0;
  Real mean_b = 0.0;
  for (const auto c : a.trace.set_vth) mean_a += c;
  for (const auto c : b.trace.set_vth) mean_b += c;
  mean_a /= static_cast<Real>(a.trace.set_vth.size());
  mean_b /= static_cast<Real>(b.trace.set_vth.size());
  // The DTC absorbs the offset by retargeting the DAC level.
  EXPECT_GT(mean_a, mean_b);
}

TEST(Extensions, MetastableComparatorDegradesGracefully) {
  const auto rec = mid_recording(406);
  const sim::Evaluator eval;
  const auto clean = eval.datc(rec);

  core::DatcEncoderConfig flaky;
  flaky.comparator.metastable_window_v = 0.01;
  flaky.comparator.metastable_prob = 0.25;
  // The comparator model needs an RNG when metastability is enabled; the
  // encoder constructs its own Comparator, so run the encoder manually.
  core::Dtc dtc(flaky.dtc);
  afe::Dac dac(afe::DacConfig{flaky.dtc.dac_bits, flaky.dac_vref});
  afe::Comparator cmp(flaky.comparator, dsp::Rng(9));
  core::EventStream events;
  const auto cycles = static_cast<std::size_t>(
      rec.emg_v.duration_s() * flaky.clock_hz);
  for (std::size_t k = 0; k < cycles; ++k) {
    const Real t = static_cast<Real>(k) / flaky.clock_hz;
    const Real v = std::abs(rec.emg_v.at_time(t));
    const unsigned code = dtc.set_vth();
    const auto s = dtc.step(cmp.compare(v, dac.voltage(code)));
    if (s.event) events.add(t, static_cast<std::uint8_t>(code));
  }
  const auto recon =
      eval.reconstruct_datc(events, rec.emg_v.duration_s());
  const auto truth = eval.ground_truth(rec);
  const std::size_t n = std::min(truth.size(), recon.size());
  const Real corr = dsp::correlation_percent(
      std::span<const Real>(truth.data(), n),
      std::span<const Real>(recon.data(), n));
  // Metastability near the threshold adds decision noise but no bias.
  EXPECT_GT(corr, clean.correlation_pct - 8.0);
}

TEST(Extensions, NotchRemovesInjectedHum) {
  auto rec = mid_recording(407);
  emg::ArtifactConfig art;
  art.powerline_amplitude = 0.08;
  dsp::Rng rng(3);
  emg::inject_artifacts(rec.emg_v, art, rng);
  const Real before =
      dsp::tone_power_fraction(rec.emg_v.view(), 2500.0, 50.0);
  dsp::BiquadCascade notch({dsp::notch(50.0, 8.0, 2500.0)});
  auto filtered = notch.filter(rec.emg_v.view());
  const Real after = dsp::tone_power_fraction(filtered, 2500.0, 50.0);
  EXPECT_GT(before, 0.05);
  EXPECT_LT(after, before / 10.0);
}

TEST(Extensions, DacInlBarelyMovesDatc) {
  // Static DAC nonlinearity of 0.3 LSB RMS: the feedback loop retargets
  // around it; correlation should not collapse.
  const auto rec = mid_recording(408);
  const sim::Evaluator eval;
  const auto ideal = eval.datc(rec);

  core::DatcEncoderConfig cfg;
  core::Dtc dtc(cfg.dtc);
  afe::DacConfig dac_cfg{cfg.dtc.dac_bits, cfg.dac_vref, 0.3, 77};
  afe::Dac dac(dac_cfg);
  afe::Comparator cmp;
  core::EventStream events;
  const auto cycles =
      static_cast<std::size_t>(rec.emg_v.duration_s() * cfg.clock_hz);
  for (std::size_t k = 0; k < cycles; ++k) {
    const Real t = static_cast<Real>(k) / cfg.clock_hz;
    const Real v = std::abs(rec.emg_v.at_time(t));
    const unsigned code = dtc.set_vth();
    const auto s = dtc.step(cmp.compare(v, dac.voltage(code)));
    if (s.event) events.add(t, static_cast<std::uint8_t>(code));
  }
  const auto recon = eval.reconstruct_datc(events, rec.emg_v.duration_s());
  const auto truth = eval.ground_truth(rec);
  const std::size_t n = std::min(truth.size(), recon.size());
  const Real corr = dsp::correlation_percent(
      std::span<const Real>(truth.data(), n),
      std::span<const Real>(recon.data(), n));
  EXPECT_GT(corr, ideal.correlation_pct - 5.0);
}

// Evaluator-level dataset property: over a mixed-gain subset, D-ATC's
// mean correlation beats ATC's and its event count varies far less.
TEST(Extensions, DatasetSubsetHeadlineProperty) {
  emg::DatasetConfig dc;
  dc.num_patterns = 12;
  dc.duration_s = 8.0;
  const emg::DatasetFactory factory(dc);
  const sim::Evaluator eval;
  Real sum_a = 0.0;
  Real sum_d = 0.0;
  std::size_t ev_min_d = SIZE_MAX;
  std::size_t ev_max_d = 0;
  std::size_t ev_min_a = SIZE_MAX;
  std::size_t ev_max_a = 0;
  for (std::size_t i = 0; i < factory.specs().size(); ++i) {
    const auto rec = factory.make(i);
    const auto a = eval.atc(rec, 0.3);
    const auto d = eval.datc(rec);
    sum_a += a.correlation_pct;
    sum_d += d.correlation_pct;
    ev_min_a = std::min(ev_min_a, a.num_events);
    ev_max_a = std::max(ev_max_a, a.num_events);
    ev_min_d = std::min(ev_min_d, d.num_events);
    ev_max_d = std::max(ev_max_d, d.num_events);
  }
  EXPECT_GT(sum_d, sum_a);
  const Real spread_a = static_cast<Real>(ev_max_a) /
                        static_cast<Real>(std::max<std::size_t>(ev_min_a, 1));
  const Real spread_d = static_cast<Real>(ev_max_d) /
                        static_cast<Real>(std::max<std::size_t>(ev_min_d, 1));
  EXPECT_LT(spread_d, spread_a);
}

}  // namespace
