// Dataset factory (the 190-pattern campaign) and artifact injectors.

#include "emg/dataset.hpp"

#include <gtest/gtest.h>
#include <set>

#include "dsp/envelope.hpp"
#include "dsp/stats.hpp"
#include "emg/artifacts.hpp"

namespace {

using datc::dsp::Real;
using namespace datc;

emg::DatasetConfig small_config() {
  emg::DatasetConfig c;
  c.num_patterns = 12;
  c.duration_s = 2.0;  // keep unit tests fast
  return c;
}

TEST(Dataset, SpecCountAndNames) {
  const emg::DatasetFactory f(small_config());
  EXPECT_EQ(f.specs().size(), 12u);
  std::set<std::string> names;
  for (const auto& s : f.specs()) names.insert(s.name);
  EXPECT_EQ(names.size(), 12u);  // unique names
}

TEST(Dataset, DefaultMatchesPaperCampaign) {
  const emg::DatasetFactory f{emg::DatasetConfig{}};
  EXPECT_EQ(f.specs().size(), 190u);
  EXPECT_EQ(f.config().num_subjects, 8u);
  // 50 000 samples over 20 s.
  EXPECT_DOUBLE_EQ(f.specs().front().sample_rate_hz, 2500.0);
  EXPECT_DOUBLE_EQ(f.specs().front().duration_s, 20.0);
}

TEST(Dataset, GainsWithinConfiguredSpread) {
  const auto cfg = small_config();
  const emg::DatasetFactory f(cfg);
  for (const auto& s : f.specs()) {
    EXPECT_GE(s.gain_v, cfg.gain_lo_v * 0.8);   // session jitter floor
    EXPECT_LE(s.gain_v, cfg.gain_hi_v * 1.25);  // session jitter ceiling
  }
}

TEST(Dataset, DeterministicAcrossFactories) {
  const emg::DatasetFactory a(small_config());
  const emg::DatasetFactory b(small_config());
  for (std::size_t i = 0; i < a.specs().size(); ++i) {
    EXPECT_EQ(a.specs()[i].seed, b.specs()[i].seed);
    EXPECT_DOUBLE_EQ(a.specs()[i].gain_v, b.specs()[i].gain_v);
  }
  const auto ra = a.make(0);
  const auto rb = b.make(0);
  EXPECT_EQ(ra.emg_v.samples(), rb.emg_v.samples());
}

TEST(Dataset, RecordingShapeAndScale) {
  const emg::DatasetFactory f(small_config());
  const auto rec = f.make(3);
  EXPECT_EQ(rec.emg_v.size(), 5000u);  // 2 s at 2.5 kHz
  EXPECT_EQ(rec.force.fraction_mvc.size(), rec.emg_v.size());
  EXPECT_THROW((void)f.make(999), std::invalid_argument);
}

TEST(Dataset, ShowcaseRecordingIsStable) {
  const auto rec = emg::showcase_recording();
  EXPECT_EQ(rec.emg_v.size(), 50000u);
  EXPECT_DOUBLE_EQ(rec.spec.gain_v, 0.28);
  // Deterministic: same call gives the same samples.
  const auto again = emg::showcase_recording();
  EXPECT_EQ(rec.emg_v.samples(), again.emg_v.samples());
}

TEST(Artifacts, PowerlineAddsTone) {
  dsp::TimeSeries sig(std::vector<Real>(5000, 0.0), 2500.0);
  emg::ArtifactConfig cfg;
  cfg.powerline_amplitude = 0.1;
  dsp::Rng rng(5);
  emg::inject_artifacts(sig, cfg, rng);
  EXPECT_NEAR(dsp::rms(sig.view()), 0.1 / std::sqrt(2.0), 0.01);
}

TEST(Artifacts, SpikeAndBurstCountsReported) {
  dsp::TimeSeries sig(std::vector<Real>(25000, 0.0), 2500.0);
  emg::ArtifactConfig cfg;
  cfg.spike_rate_hz = 5.0;
  cfg.spike_amp = 1.0;
  cfg.motion_burst_rate_hz = 1.0;
  cfg.motion_burst_amp = 0.5;
  dsp::Rng rng(8);
  const auto injected = emg::inject_artifacts(sig, cfg, rng);
  // 10 s at 5 spikes/s + 1 burst/s: expect on the order of 60 events.
  EXPECT_GT(injected, 20u);
  EXPECT_LT(injected, 150u);
  EXPECT_GT(dsp::max_value(sig.view()), 0.3);
}

TEST(Artifacts, NoConfigNoChange) {
  dsp::TimeSeries sig(std::vector<Real>(100, 0.5), 100.0);
  emg::ArtifactConfig cfg;  // all zero
  dsp::Rng rng(1);
  EXPECT_EQ(emg::inject_artifacts(sig, cfg, rng), 0u);
  for (const Real v : sig.samples()) EXPECT_DOUBLE_EQ(v, 0.5);
}

TEST(Artifacts, WhiteNoiseRms) {
  dsp::TimeSeries sig(std::vector<Real>(50000, 0.0), 2500.0);
  dsp::Rng rng(9);
  emg::add_white_noise(sig, 0.2, rng);
  EXPECT_NEAR(dsp::rms(sig.view()), 0.2, 0.01);
  EXPECT_THROW(emg::add_white_noise(sig, -1.0, rng), std::invalid_argument);
}

TEST(Artifacts, NormalizeArv) {
  dsp::Rng rng(4);
  std::vector<Real> x(10000);
  for (auto& v : x) v = rng.gaussian();
  dsp::TimeSeries sig(std::move(x), 2500.0);
  emg::normalize_arv(sig, 0.25);
  EXPECT_NEAR(dsp::mean(dsp::rectify(sig.view())), 0.25, 1e-9);
  dsp::TimeSeries zero(std::vector<Real>(10, 0.0), 10.0);
  EXPECT_THROW(emg::normalize_arv(zero, 1.0), std::invalid_argument);
}

TEST(Dataset, SubjectGainsDiffer) {
  // Patterns of different subjects should span a visible gain range —
  // that spread is what defeats the fixed threshold in Fig. 5.
  const emg::DatasetFactory f{emg::DatasetConfig{}};
  Real lo = 1e9;
  Real hi = 0.0;
  for (const auto& s : f.specs()) {
    lo = std::min(lo, s.gain_v);
    hi = std::max(hi, s.gain_v);
  }
  EXPECT_GT(hi / lo, 2.5);
}

}  // namespace
