// Static timing model and reconstruction-lag verification (xcorr).

#include <gtest/gtest.h>

#include "core/datc_encoder.hpp"
#include "dsp/xcorr.hpp"
#include "emg/dataset.hpp"
#include "rtl/dtc_rtl.hpp"
#include "sim/evaluation.hpp"
#include "synth/timing.hpp"

namespace {

using datc::dsp::Real;
using namespace datc;

std::vector<rtl::ComponentDescriptor> dtc_components() {
  rtl::DtcRtl dut{core::DtcConfig{}};
  std::vector<rtl::ComponentDescriptor> comps;
  dut.describe(comps);
  return comps;
}

TEST(Timing, DtcMeetsPaperClockWithHugeSlack) {
  const auto rep = synth::estimate_dtc_timing(dtc_components());
  EXPECT_GT(rep.total_levels, 10u);
  EXPECT_GT(rep.max_clock_hz, 1e6);   // MHz-class logic...
  EXPECT_LT(rep.max_clock_hz, 1e9);   // ...but an HV process, not GHz
  EXPECT_GT(rep.slack_ns(2000.0), 0.0);
  // At 2 kHz the slack is essentially the whole period.
  EXPECT_GT(rep.slack_ns(2000.0) / (1e9 / 2000.0), 0.999);
}

TEST(Timing, CriticalPathNamesDatapathStages) {
  const auto rep = synth::estimate_dtc_timing(dtc_components());
  bool has_wsum = false;
  bool has_priority = false;
  for (const auto& seg : rep.critical_path) {
    if (seg.name == "wsum") has_wsum = true;
    if (seg.name == "priority_enc") has_priority = true;
  }
  EXPECT_TRUE(has_wsum);
  EXPECT_TRUE(has_priority);
}

TEST(Timing, SlowerGatesLowerFmax) {
  synth::TimingConfig slow;
  slow.gate_delay_ns = 5.0;
  const auto fast_rep = synth::estimate_dtc_timing(dtc_components());
  const auto slow_rep = synth::estimate_dtc_timing(dtc_components(), slow);
  EXPECT_LT(slow_rep.max_clock_hz, fast_rep.max_clock_hz);
}

TEST(Timing, RejectsUnknownInventory) {
  std::vector<rtl::ComponentDescriptor> junk{
      {"mystery", rtl::ComponentKind::kGateMisc, 4}};
  EXPECT_THROW((void)synth::estimate_dtc_timing(junk),
               std::invalid_argument);
}

TEST(Xcorr, FindsKnownShift) {
  dsp::Rng rng(5);
  std::vector<Real> a(2000);
  for (auto& v : a) v = rng.gaussian();
  std::vector<Real> b(a.size(), 0.0);
  constexpr long kShift = 17;
  for (std::size_t i = kShift; i < b.size(); ++i) b[i] = a[i - kShift];
  const auto est = dsp::best_lag(a, b, 50);
  EXPECT_EQ(est.lag_samples, kShift);
  EXPECT_GT(est.correlation, 0.99);
}

TEST(Xcorr, SequenceLengthAndPeak) {
  dsp::Rng rng(6);
  std::vector<Real> a(1000);
  for (auto& v : a) v = rng.gaussian();
  const auto seq = dsp::xcorr_normalized(a, a, 20);
  EXPECT_EQ(seq.size(), 41u);
  EXPECT_NEAR(seq[20], 1.0, 1e-9);  // zero lag, identical signals
}

TEST(Xcorr, Validation) {
  std::vector<Real> a(10, 1.0);
  std::vector<Real> b(12, 1.0);
  EXPECT_THROW((void)dsp::correlation_at_lag(a, b, 0),
               std::invalid_argument);
  std::vector<Real> c(10, 1.0);
  EXPECT_THROW((void)dsp::best_lag(a, c, 10), std::invalid_argument);
}

TEST(Xcorr, ReconstructionIsZeroLag) {
  // The receiver's centred windowing must produce an envelope aligned
  // with the ground truth: best lag within +-40 ms of zero.
  emg::RecordingSpec spec;
  spec.seed = 99;
  spec.gain_v = 0.35;
  spec.duration_s = 8.0;
  const auto rec = emg::make_recording(spec);
  const sim::Evaluator eval;
  const auto tx = core::encode_datc(rec.emg_v, core::DatcEncoderConfig{});
  const auto recon = eval.reconstruct_datc(tx.events, rec.emg_v.duration_s());
  const auto truth = eval.ground_truth(rec);
  const std::size_t n = std::min(truth.size(), recon.size());
  const auto est = dsp::best_lag(
      std::span<const Real>(truth.data(), n),
      std::span<const Real>(recon.data(), n), 500);  // +-200 ms at 2.5 kHz
  EXPECT_LT(std::abs(est.lag_samples), 100);  // within 40 ms
  EXPECT_GT(est.correlation, 0.9);
}

}  // namespace
