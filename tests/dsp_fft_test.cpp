// FFT correctness against a direct DFT, round-trip identity, Parseval,
// and Welch PSD properties (sine-peak location, one-sided normalisation,
// dBm conversion).

#include "dsp/fft.hpp"

#include <cmath>
#include <gtest/gtest.h>
#include <numbers>

#include "dsp/rng.hpp"
#include "dsp/spectral.hpp"
#include "dsp/stats.hpp"

namespace {

using datc::dsp::Complex;
using datc::dsp::Real;
using namespace datc;

constexpr Real kTwoPi = 2.0 * std::numbers::pi_v<Real>;

class FftVsDftTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftVsDftTest, MatchesReferenceDft) {
  const std::size_t n = GetParam();
  dsp::Rng rng(n);
  std::vector<Complex> x(n);
  for (auto& v : x) v = Complex{rng.gaussian(), rng.gaussian()};
  auto fast = x;
  dsp::fft_inplace(fast);
  const auto ref = dsp::dft_reference(x);
  for (std::size_t k = 0; k < n; ++k) {
    EXPECT_NEAR(fast[k].real(), ref[k].real(), 1e-8 * static_cast<Real>(n));
    EXPECT_NEAR(fast[k].imag(), ref[k].imag(), 1e-8 * static_cast<Real>(n));
  }
}

INSTANTIATE_TEST_SUITE_P(Pow2Sizes, FftVsDftTest,
                         ::testing::Values(1, 2, 4, 8, 16, 32, 64, 128, 256));

TEST(Fft, RoundTripIdentity) {
  dsp::Rng rng(77);
  std::vector<Complex> x(1024);
  for (auto& v : x) v = Complex{rng.gaussian(), rng.gaussian()};
  auto y = x;
  dsp::fft_inplace(y);
  dsp::ifft_inplace(y);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(y[i].real(), x[i].real(), 1e-10);
    EXPECT_NEAR(y[i].imag(), x[i].imag(), 1e-10);
  }
}

TEST(Fft, ParsevalHolds) {
  dsp::Rng rng(13);
  std::vector<Complex> x(512);
  for (auto& v : x) v = Complex{rng.gaussian(), 0.0};
  Real time_energy = 0.0;
  for (const auto& v : x) time_energy += std::norm(v);
  auto y = x;
  dsp::fft_inplace(y);
  Real freq_energy = 0.0;
  for (const auto& v : y) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy / static_cast<Real>(x.size()), time_energy, 1e-6);
}

TEST(Fft, RejectsNonPow2) {
  std::vector<Complex> x(12);
  EXPECT_THROW(dsp::fft_inplace(x), std::invalid_argument);
}

TEST(Fft, NextPow2) {
  EXPECT_EQ(dsp::next_pow2(1), 1u);
  EXPECT_EQ(dsp::next_pow2(2), 2u);
  EXPECT_EQ(dsp::next_pow2(3), 4u);
  EXPECT_EQ(dsp::next_pow2(1000), 1024u);
}

TEST(Fft, FftRealPadsToPow2) {
  std::vector<Real> x(300, 1.0);
  const auto spec = dsp::fft_real(x);
  EXPECT_EQ(spec.size(), 512u);
}

TEST(Window, KnownShapes) {
  const auto hann = dsp::make_window(dsp::WindowKind::kHann, 8);
  EXPECT_NEAR(hann[0], 0.0, 1e-12);
  EXPECT_NEAR(hann[4], 1.0, 1e-12);
  const auto rect = dsp::make_window(dsp::WindowKind::kRect, 4);
  for (const Real v : rect) EXPECT_DOUBLE_EQ(v, 1.0);
  const auto ham = dsp::make_window(dsp::WindowKind::kHamming, 16);
  EXPECT_NEAR(ham[0], 0.08, 1e-12);
  const auto bl = dsp::make_window(dsp::WindowKind::kBlackman, 16);
  EXPECT_NEAR(bl[0], 0.0, 1e-12);
}

TEST(Welch, SinePeakAtCorrectBin) {
  const Real fs = 2000.0;
  const Real f0 = 250.0;
  std::vector<Real> x(8192);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = std::sin(kTwoPi * f0 * static_cast<Real>(i) / fs);
  }
  const auto psd = dsp::welch_psd(x, fs, 1024);
  std::size_t peak = 0;
  for (std::size_t k = 1; k < psd.psd_v2_hz.size(); ++k) {
    if (psd.psd_v2_hz[k] > psd.psd_v2_hz[peak]) peak = k;
  }
  EXPECT_NEAR(psd.freq_hz[peak], f0, fs / 1024.0 * 1.5);
}

TEST(Welch, PowerIntegratesToVariance) {
  dsp::Rng rng(21);
  std::vector<Real> x(1 << 16);
  for (auto& v : x) v = rng.gaussian();
  const Real fs = 1000.0;
  const auto psd = dsp::welch_psd(x, fs, 512);
  Real integrated = 0.0;
  const Real df = psd.freq_hz[1] - psd.freq_hz[0];
  for (const Real p : psd.psd_v2_hz) integrated += p * df;
  EXPECT_NEAR(integrated, dsp::variance(x), 0.1);
}

TEST(Welch, ShortRecordStillProducesEstimate) {
  std::vector<Real> x(100, 1.0);
  const auto psd = dsp::welch_psd(x, 1000.0, 512);
  EXPECT_FALSE(psd.psd_v2_hz.empty());
}

TEST(Psd, DbmConversion) {
  // 1 V^2/Hz across 50 ohm = 20 mW/Hz = 2e7 mW/MHz = 73 dBm/MHz.
  EXPECT_NEAR(dsp::psd_to_dbm_per_mhz(1.0, 50.0), 73.01, 0.02);
  EXPECT_LT(dsp::psd_to_dbm_per_mhz(0.0), -250.0);
  EXPECT_THROW((void)dsp::psd_to_dbm_per_mhz(1.0, 0.0),
               std::invalid_argument);
}

TEST(Psd, PeakSearchRespectsBand) {
  dsp::PsdEstimate psd;
  psd.freq_hz = {0.0, 100.0, 200.0, 300.0};
  psd.psd_v2_hz = {1.0, 10.0, 100.0, 1.0};
  const Real in_band = dsp::peak_dbm_per_mhz(psd, 50.0, 150.0);
  const Real all = dsp::peak_dbm_per_mhz(psd, 0.0, 400.0);
  EXPECT_LT(in_band, all);
}

}  // namespace
