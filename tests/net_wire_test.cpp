// Wire-protocol robustness: every frame type round-trips bit-exactly,
// the incremental decoder accepts arbitrary read boundaries (including
// byte-at-a-time and every two-part split), malformed payloads are
// skipped without losing the stream, and framing violations (zero or
// oversized length prefixes) are terminal for the stream but never for
// the process.

#include "net/wire.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace {

using namespace datc;
using datc::dsp::Real;
namespace wire = datc::net::wire;

/// Feeds everything and pulls one frame, asserting clean decode.
wire::Frame decode_one(const std::vector<std::uint8_t>& bytes) {
  wire::FrameDecoder dec;
  dec.feed(bytes);
  wire::Frame f;
  std::string reason;
  EXPECT_EQ(dec.next(&f, &reason), wire::FrameDecoder::Status::kFrame)
      << reason;
  EXPECT_EQ(dec.buffered_bytes(), 0u);
  return f;
}

/// A length-prefixed frame around a handcrafted payload (for malformed
/// and unknown-type cases the encoders refuse to produce).
std::vector<std::uint8_t> raw_frame(const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> out(4 + payload.size());
  const auto len = static_cast<std::uint32_t>(payload.size());
  for (std::size_t i = 0; i < 4; ++i) {
    out[i] = static_cast<std::uint8_t>((len >> (8 * i)) & 0xFF);
  }
  std::copy(payload.begin(), payload.end(), out.begin() + 4);
  return out;
}

TEST(NetWireTest, HelloRoundTripsEveryField) {
  wire::HelloBody h;
  h.version = 7;
  h.channel_count = 64;
  h.channel_id = 41;
  h.tenant = "ward-3.bed_12";
  h.scenario = "paper-baseline";
  const wire::Frame f = decode_one(wire::encode_hello(h));
  ASSERT_EQ(f.type, wire::FrameType::kHello);
  EXPECT_EQ(f.hello.version, 7);
  EXPECT_EQ(f.hello.channel_count, 64);
  EXPECT_EQ(f.hello.channel_id, 41u);
  EXPECT_EQ(f.hello.tenant, "ward-3.bed_12");
  EXPECT_EQ(f.hello.scenario, "paper-baseline");
}

TEST(NetWireTest, DataSamplesAreBitExact) {
  // Values chosen to catch any non-bit-transparent transport: denormal,
  // negative zero, extremes, and an irrational dense in the mantissa.
  const std::vector<Real> samples = {
      0.1, -0.3333333333333333, 5e-324, -0.0, 0.0,
      std::numeric_limits<Real>::max(), std::numeric_limits<Real>::lowest(),
      1.6180339887498949};
  const wire::Frame f =
      decode_one(wire::encode_data(1234567890123ULL, 42, samples));
  ASSERT_EQ(f.type, wire::FrameType::kData);
  EXPECT_EQ(f.data.session_id, 1234567890123ULL);
  EXPECT_EQ(f.data.seq, 42u);
  ASSERT_EQ(f.data.samples.size(), samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(f.data.samples[i]),
              std::bit_cast<std::uint64_t>(samples[i]))
        << "sample " << i;
  }
}

TEST(NetWireTest, ControlAndEndRoundTrip) {
  wire::ControlBody c;
  c.code = wire::ControlCode::kError;
  c.session_id = 9;
  c.value = static_cast<std::uint64_t>(wire::ErrorCode::kBadSequence);
  c.message = "expected seq 3, got 7";
  const wire::Frame fc = decode_one(wire::encode_control(c));
  ASSERT_EQ(fc.type, wire::FrameType::kControl);
  EXPECT_EQ(fc.control.code, wire::ControlCode::kError);
  EXPECT_EQ(fc.control.session_id, 9u);
  EXPECT_EQ(fc.control.value,
            static_cast<std::uint64_t>(wire::ErrorCode::kBadSequence));
  EXPECT_EQ(fc.control.message, "expected seq 3, got 7");

  const wire::Frame fe = decode_one(wire::encode_end(77));
  ASSERT_EQ(fe.type, wire::FrameType::kEnd);
  EXPECT_EQ(fe.end.session_id, 77u);
}

TEST(NetWireTest, ByteAtATimeFeedDecodesTheWholeStream) {
  std::vector<std::uint8_t> stream;
  wire::HelloBody h;
  h.tenant = "t";
  wire::append_hello(stream, h);
  wire::append_data(stream, 1, 0, std::vector<Real>{0.25, -0.5});
  wire::append_end(stream, 1);

  wire::FrameDecoder dec;
  std::vector<wire::FrameType> seen;
  for (const std::uint8_t byte : stream) {
    dec.feed(std::vector<std::uint8_t>{byte});
    for (;;) {
      wire::Frame f;
      std::string reason;
      const auto s = dec.next(&f, &reason);
      if (s != wire::FrameDecoder::Status::kFrame) {
        ASSERT_EQ(s, wire::FrameDecoder::Status::kNeedMore) << reason;
        break;
      }
      seen.push_back(f.type);
    }
  }
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], wire::FrameType::kHello);
  EXPECT_EQ(seen[1], wire::FrameType::kData);
  EXPECT_EQ(seen[2], wire::FrameType::kEnd);
}

TEST(NetWireTest, EveryTwoPartSplitDecodesIdentically) {
  std::vector<std::uint8_t> stream;
  wire::append_data(stream, 3, 1, std::vector<Real>{1.0, 2.0, 3.0});
  wire::append_control(stream,
                       {wire::ControlCode::kChunkAck, 3, 1, "ok"});
  for (std::size_t cut = 0; cut <= stream.size(); ++cut) {
    wire::FrameDecoder dec;
    dec.feed(std::span<const std::uint8_t>(stream.data(), cut));
    dec.feed(std::span<const std::uint8_t>(stream.data() + cut,
                                           stream.size() - cut));
    wire::Frame f;
    std::string reason;
    ASSERT_EQ(dec.next(&f, &reason), wire::FrameDecoder::Status::kFrame)
        << "cut at " << cut << ": " << reason;
    EXPECT_EQ(f.type, wire::FrameType::kData);
    ASSERT_EQ(dec.next(&f, &reason), wire::FrameDecoder::Status::kFrame)
        << "cut at " << cut << ": " << reason;
    EXPECT_EQ(f.type, wire::FrameType::kControl);
    EXPECT_EQ(dec.next(&f, &reason),
              wire::FrameDecoder::Status::kNeedMore);
  }
}

TEST(NetWireTest, TruncatedFrameWaitsForTheRest) {
  const auto bytes = wire::encode_data(1, 0, std::vector<Real>{1.0});
  wire::FrameDecoder dec;
  dec.feed(std::span<const std::uint8_t>(bytes.data(), bytes.size() - 1));
  wire::Frame f;
  std::string reason;
  EXPECT_EQ(dec.next(&f, &reason), wire::FrameDecoder::Status::kNeedMore);
  EXPECT_EQ(dec.next(&f, &reason), wire::FrameDecoder::Status::kNeedMore);
  dec.feed(std::span<const std::uint8_t>(bytes.data() + bytes.size() - 1, 1));
  EXPECT_EQ(dec.next(&f, &reason), wire::FrameDecoder::Status::kFrame);
}

TEST(NetWireTest, ZeroLengthFrameIsFatalAndSticky) {
  wire::FrameDecoder dec;
  dec.feed(std::vector<std::uint8_t>{0, 0, 0, 0});
  wire::Frame f;
  std::string reason;
  EXPECT_EQ(dec.next(&f, &reason), wire::FrameDecoder::Status::kFatal);
  EXPECT_NE(reason.find("zero-length"), std::string::npos);
  // Sticky: even a valid frame afterwards cannot resurrect the stream.
  dec.feed(wire::encode_end(1));
  EXPECT_EQ(dec.next(&f, &reason), wire::FrameDecoder::Status::kFatal);
}

TEST(NetWireTest, OversizedFrameIsFatalWithoutBuffering) {
  wire::FrameDecoder dec;
  // Length prefix claims ~4 GiB; only the 4 prefix bytes ever arrive.
  dec.feed(std::vector<std::uint8_t>{0xFF, 0xFF, 0xFF, 0xFF});
  wire::Frame f;
  std::string reason;
  EXPECT_EQ(dec.next(&f, &reason), wire::FrameDecoder::Status::kFatal);
  EXPECT_NE(reason.find("oversized"), std::string::npos);
}

TEST(NetWireTest, UnknownFrameTypeIsSkippedNotFatal) {
  std::vector<std::uint8_t> stream = raw_frame({0x7F, 1, 2, 3});
  wire::append_end(stream, 5);  // a good frame right behind the bad one
  wire::FrameDecoder dec;
  dec.feed(stream);
  wire::Frame f;
  std::string reason;
  EXPECT_EQ(dec.next(&f, &reason), wire::FrameDecoder::Status::kBadFrame);
  EXPECT_NE(reason.find("unknown frame type"), std::string::npos);
  ASSERT_EQ(dec.next(&f, &reason), wire::FrameDecoder::Status::kFrame);
  EXPECT_EQ(f.type, wire::FrameType::kEnd);
  EXPECT_EQ(f.end.session_id, 5u);
}

TEST(NetWireTest, MalformedPayloadsAreTypedBadFrames) {
  const struct {
    std::vector<std::uint8_t> payload;
    const char* reason_substr;
  } cases[] = {
      // HELLO cut off inside the version field.
      {{static_cast<std::uint8_t>(wire::FrameType::kHello), 1},
       "malformed HELLO"},
      // HELLO whose tenant length overruns the payload.
      {{static_cast<std::uint8_t>(wire::FrameType::kHello), 1, 0, 1, 0, 0,
        0, 0, 0, 0xFF, 0xFF},
       "malformed HELLO"},
      // DATA header truncated.
      {{static_cast<std::uint8_t>(wire::FrameType::kData), 1, 2, 3},
       "malformed DATA header"},
      // DATA claiming two samples but carrying none.
      {{static_cast<std::uint8_t>(wire::FrameType::kData), 0, 0, 0, 0, 0,
        0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 2, 0, 0, 0},
       "overruns payload"},
      // END with a trailing byte.
      {{static_cast<std::uint8_t>(wire::FrameType::kEnd), 0, 0, 0, 0, 0, 0,
        0, 0, 9},
       "malformed END"},
      // CONTROL with an out-of-range code.
      {{static_cast<std::uint8_t>(wire::FrameType::kControl), 99, 0, 0, 0,
        0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0},
       "unknown CONTROL code"},
  };
  for (const auto& c : cases) {
    wire::FrameDecoder dec;
    dec.feed(raw_frame(c.payload));
    wire::Frame f;
    std::string reason;
    EXPECT_EQ(dec.next(&f, &reason), wire::FrameDecoder::Status::kBadFrame)
        << c.reason_substr;
    EXPECT_NE(reason.find(c.reason_substr), std::string::npos)
        << "got reason: " << reason;
    // The stream survives the bad payload.
    dec.feed(wire::encode_end(1));
    EXPECT_EQ(dec.next(&f, &reason), wire::FrameDecoder::Status::kFrame)
        << c.reason_substr;
  }
}

TEST(NetWireTest, HugeDeclaredSampleCountIsABadFrameNotAnAllocation) {
  // A 21-byte DATA payload declaring 2^32-1 samples: the count must be
  // checked against the bytes actually present BEFORE any reserve — a
  // ~34 GB allocation attempt would kill the daemon with bad_alloc from
  // one tiny pre-HELLO frame.
  std::vector<std::uint8_t> payload = {
      static_cast<std::uint8_t>(wire::FrameType::kData)};
  payload.insert(payload.end(), 16, 0);  // session id + seq
  payload.insert(payload.end(), {0xFF, 0xFF, 0xFF, 0xFF});  // count
  wire::FrameDecoder dec;
  dec.feed(raw_frame(payload));
  wire::Frame f;
  std::string reason;
  EXPECT_EQ(dec.next(&f, &reason), wire::FrameDecoder::Status::kBadFrame);
  EXPECT_NE(reason.find("overruns payload"), std::string::npos);
  // The stream survives the rejected frame.
  dec.feed(wire::encode_end(1));
  EXPECT_EQ(dec.next(&f, &reason), wire::FrameDecoder::Status::kFrame);
}

TEST(NetWireTest, OverlongMessageIsTruncatedToADecodableFrame) {
  // Strings cap at kMaxStringLen on decode, so the encoder must truncate
  // (a server error carrying a long exception message would otherwise
  // produce a frame no conforming peer can parse).
  wire::ControlBody c;
  c.code = wire::ControlCode::kError;
  c.session_id = 1;
  c.value = static_cast<std::uint64_t>(wire::ErrorCode::kUnknownScenario);
  c.message = std::string(4 * wire::kMaxStringLen, 'x');
  const wire::Frame f = decode_one(wire::encode_control(c));
  ASSERT_EQ(f.type, wire::FrameType::kControl);
  EXPECT_EQ(f.control.message, std::string(wire::kMaxStringLen, 'x'));

  wire::HelloBody h;
  h.tenant = std::string(300, 't');
  const wire::Frame fh = decode_one(wire::encode_hello(h));
  ASSERT_EQ(fh.type, wire::FrameType::kHello);
  EXPECT_EQ(fh.hello.tenant, std::string(wire::kMaxStringLen, 't'));
}

TEST(NetWireTest, DataWithTrailingBytesIsBad) {
  auto bytes = wire::encode_data(1, 0, std::vector<Real>{1.0});
  bytes.push_back(0xAB);  // extend payload past the declared samples
  // Patch the length prefix to cover the extra byte.
  const auto len = static_cast<std::uint32_t>(bytes.size() - 4);
  for (int i = 0; i < 4; ++i) {
    bytes[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>((len >> (8 * i)) & 0xFF);
  }
  wire::FrameDecoder dec;
  dec.feed(bytes);
  wire::Frame f;
  std::string reason;
  EXPECT_EQ(dec.next(&f, &reason), wire::FrameDecoder::Status::kBadFrame);
  EXPECT_NE(reason.find("trailing bytes"), std::string::npos);
}

TEST(NetWireTest, LongLivedDecoderReclaimsItsBuffer) {
  wire::FrameDecoder dec;
  const auto one = wire::encode_data(1, 0, std::vector<Real>(64, 0.5));
  for (int round = 0; round < 200; ++round) {
    dec.feed(one);
    wire::Frame f;
    std::string reason;
    ASSERT_EQ(dec.next(&f, &reason), wire::FrameDecoder::Status::kFrame);
  }
  // Everything consumed: the compaction keeps the window, not history.
  EXPECT_EQ(dec.buffered_bytes(), 0u);
}

TEST(NetWireTest, ErrorCodeNamesAreStable) {
  EXPECT_STREQ(wire::error_code_name(wire::ErrorCode::kVersionMismatch),
               "version-mismatch");
  EXPECT_STREQ(wire::error_code_name(wire::ErrorCode::kQuarantined),
               "quarantined");
  EXPECT_STREQ(wire::error_code_name(wire::ErrorCode::kDraining),
               "draining");
}

}  // namespace
