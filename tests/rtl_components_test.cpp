// Generic RTL component library.

#include "rtl/components.hpp"

#include <gtest/gtest.h>

#include "rtl/simulator.hpp"

namespace {

using namespace datc;

TEST(Counter, CountsWithEnable) {
  rtl::Counter cnt("c", 4);
  rtl::Simulator sim;
  sim.add(cnt);
  sim.reset();
  cnt.set_enable(true);
  sim.run(5);
  EXPECT_EQ(cnt.value(), 5u);
  cnt.set_enable(false);
  sim.run(3);
  EXPECT_EQ(cnt.value(), 5u);
}

TEST(Counter, ClearWinsOverEnable) {
  rtl::Counter cnt("c", 4);
  rtl::Simulator sim;
  sim.add(cnt);
  sim.reset();
  cnt.set_enable(true);
  sim.run(3);
  cnt.set_clear(true);
  sim.step();
  EXPECT_EQ(cnt.value(), 0u);
}

TEST(Counter, WrapsAtWidth) {
  rtl::Counter cnt("c", 3);
  rtl::Simulator sim;
  sim.add(cnt);
  sim.reset();
  cnt.set_enable(true);
  sim.run(9);  // 8 states -> wraps once
  EXPECT_EQ(cnt.value(), 1u);
}

TEST(Counter, DescribesCost) {
  rtl::Counter cnt("c", 10);
  std::vector<rtl::ComponentDescriptor> d;
  cnt.describe(d);
  ASSERT_GE(d.size(), 2u);
  EXPECT_EQ(d[0].kind, rtl::ComponentKind::kFlipFlop);
  EXPECT_EQ(d[0].width, 10u);
}

TEST(ShiftRegisterBank, ShiftsThreeDeep) {
  rtl::ShiftRegisterBank bank("h", 10, 3);
  rtl::Simulator sim;
  sim.add(bank);
  sim.reset();
  bank.set_shift(true);
  bank.set_data(11);
  sim.step();
  bank.set_data(22);
  sim.step();
  bank.set_data(33);
  sim.step();
  EXPECT_EQ(bank.stage(0), 33u);
  EXPECT_EQ(bank.stage(1), 22u);
  EXPECT_EQ(bank.stage(2), 11u);
  bank.set_shift(false);
  bank.set_data(99);
  sim.step();
  EXPECT_EQ(bank.stage(0), 33u);  // hold
  EXPECT_THROW((void)bank.stage(3), std::invalid_argument);
}

TEST(EqualsConst, Compares) {
  rtl::EqualsConst eq("e", 10, 99);
  rtl::Simulator sim;
  sim.add(eq);
  sim.reset();
  eq.set_in(99);
  sim.step();
  EXPECT_TRUE(eq.out());
  eq.set_in(98);
  sim.step();
  EXPECT_FALSE(eq.out());
}

TEST(ThresholdPriorityEncoder, MatchesListingChain) {
  // Levels of the 4-bit table for frame 100: 3,6,9,...,48.
  std::vector<std::uint32_t> levels;
  for (unsigned k = 0; k < 16; ++k) levels.push_back(3 * (k + 1));
  rtl::ThresholdPriorityEncoder enc("p", levels, 1);
  rtl::Simulator sim;
  sim.add(enc);
  sim.reset();
  const struct {
    std::uint32_t in;
    unsigned expect;
  } cases[] = {{0, 1}, {8, 1}, {9, 2}, {47, 14}, {48, 15}, {400, 15}};
  for (const auto& c : cases) {
    enc.set_in(c.in);
    sim.step();
    EXPECT_EQ(enc.out(), c.expect) << "in=" << c.in;
  }
}

TEST(ThresholdPriorityEncoder, LevelSwapKeepsGeometry) {
  std::vector<std::uint32_t> levels{1, 2, 3, 4};
  rtl::ThresholdPriorityEncoder enc("p", levels, 0);
  EXPECT_THROW(enc.set_levels({1, 2, 3}), std::invalid_argument);
  enc.set_levels({10, 20, 30, 40});
  rtl::Simulator sim;
  sim.add(enc);
  sim.reset();
  enc.set_in(25);
  sim.step();
  EXPECT_EQ(enc.out(), 1u);
}

TEST(Rom, ReadsContents) {
  rtl::Rom rom("r", {5, 6, 7, 8}, 10);
  rtl::Simulator sim;
  sim.add(rom);
  sim.reset();
  rom.set_addr(2);
  sim.step();
  EXPECT_EQ(rom.out(), 7u);
  rom.set_addr(9);  // out of range reads 0
  sim.step();
  EXPECT_EQ(rom.out(), 0u);
}

TEST(Components, ComposedDesignInventory) {
  // A counter + history bank + encoder composed in one simulator must
  // yield a merged, plausible synthesis inventory.
  rtl::Counter cnt("cnt", 10);
  rtl::ShiftRegisterBank bank("hist", 10, 3);
  std::vector<std::uint32_t> levels(16, 1);
  rtl::ThresholdPriorityEncoder enc("enc", levels, 1);
  std::vector<rtl::ComponentDescriptor> d;
  cnt.describe(d);
  bank.describe(d);
  enc.describe(d);
  unsigned ff = 0;
  for (const auto& c : d) {
    if (c.kind == rtl::ComponentKind::kFlipFlop) ff += c.width;
  }
  EXPECT_EQ(ff, 10u + 30u);
}

}  // namespace
