// The equivalence theorem of the repository: the structural RTL DTC is
// cycle-exact against the bit-accurate behavioural model across frame
// sizes, predictor orders and stimulus classes — the paper's "Verilog
// results perfectly match the Matlab simulation outputs".

#include <gtest/gtest.h>

#include "core/dtc.hpp"
#include "dsp/rng.hpp"
#include "rtl/dtc_rtl.hpp"
#include "rtl/simulator.hpp"

namespace {

using namespace datc;

struct EquivCase {
  core::FrameSize frame;
  core::PredictorUpdateOrder order;
  double duty;        ///< Bernoulli probability of d_in = 1
  std::uint64_t seed;
};

class DtcEquivalenceTest : public ::testing::TestWithParam<EquivCase> {};

TEST_P(DtcEquivalenceTest, CycleExactAgainstBehavioural) {
  const auto p = GetParam();
  core::DtcConfig cfg;
  cfg.frame = p.frame;
  cfg.order = p.order;

  core::Dtc beh(cfg);
  rtl::DtcRtl dut(cfg);
  rtl::Simulator sim;
  sim.add(dut);
  sim.reset();

  dsp::Rng rng(p.seed);
  const std::size_t cycles = 6 * core::frame_cycles(p.frame) + 137;
  for (std::size_t k = 0; k < cycles; ++k) {
    const bool d_in = rng.chance(p.duty);
    dut.set_d_in(d_in);
    sim.step();
    const auto expect = beh.step(d_in);
    ASSERT_EQ(dut.d_out(), expect.d_out) << "cycle " << k;
    ASSERT_EQ(dut.event(), expect.event) << "cycle " << k;
    ASSERT_EQ(dut.end_of_frame(), expect.end_of_frame) << "cycle " << k;
    ASSERT_EQ(dut.set_vth(), expect.set_vth) << "cycle " << k;
  }
}

std::vector<EquivCase> equiv_cases() {
  std::vector<EquivCase> cases;
  std::uint64_t seed = 1;
  for (const auto frame : core::kAllFrameSizes) {
    for (const auto order : {core::PredictorUpdateOrder::kCountFirst,
                             core::PredictorUpdateOrder::kListingLiteral}) {
      for (const double duty : {0.05, 0.3, 0.7}) {
        cases.push_back(EquivCase{frame, order, duty, seed++});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllConfigs, DtcEquivalenceTest,
                         ::testing::ValuesIn(equiv_cases()));

TEST(DtcRtl, BurstStimulusEquivalence) {
  // Deterministic bursty pattern (worst case for edge logic).
  core::DtcConfig cfg;
  core::Dtc beh(cfg);
  rtl::DtcRtl dut(cfg);
  rtl::Simulator sim;
  sim.add(dut);
  sim.reset();
  for (std::size_t k = 0; k < 2000; ++k) {
    const bool d_in = (k / 7) % 3 == 0;  // bursts of 7 every 21 cycles
    dut.set_d_in(d_in);
    sim.step();
    const auto expect = beh.step(d_in);
    ASSERT_EQ(dut.set_vth(), expect.set_vth) << "cycle " << k;
    ASSERT_EQ(dut.event(), expect.event) << "cycle " << k;
  }
}

TEST(DtcRtl, ResetMidRunMatches) {
  core::DtcConfig cfg;
  core::Dtc beh(cfg);
  rtl::DtcRtl dut(cfg);
  rtl::Simulator sim;
  sim.add(dut);
  sim.reset();
  dsp::Rng rng(42);
  for (std::size_t k = 0; k < 350; ++k) {
    const bool d = rng.chance(0.4);
    dut.set_d_in(d);
    sim.step();
    (void)beh.step(d);
  }
  beh.reset();
  sim.reset();
  for (std::size_t k = 0; k < 500; ++k) {
    const bool d = rng.chance(0.2);
    dut.set_d_in(d);
    sim.step();
    const auto expect = beh.step(d);
    ASSERT_EQ(dut.set_vth(), expect.set_vth) << "cycle " << k;
  }
}

TEST(DtcRtl, RequiresFixedPointConfig) {
  core::DtcConfig cfg;
  cfg.use_fixed_point = false;
  EXPECT_THROW(rtl::DtcRtl dut(cfg), std::invalid_argument);
}

TEST(DtcRtl, DescribeInventoryIsPlausible) {
  core::DtcConfig cfg;
  rtl::DtcRtl dut(cfg);
  std::vector<rtl::ComponentDescriptor> comps;
  dut.describe(comps);
  ASSERT_FALSE(comps.empty());
  unsigned ff_bits = 0;
  for (const auto& c : comps) {
    if (c.kind == rtl::ComponentKind::kFlipFlop) ff_bits += c.width;
  }
  // 2x1-bit sync/edge + 2x10 counters + 3x10 history + 4 set_vth = 56.
  EXPECT_EQ(ff_bits, 56u);
}

TEST(DtcRtl, TraceSignalsNonEmptyAndNamed) {
  core::DtcConfig cfg;
  rtl::DtcRtl dut(cfg);
  const auto sigs = dut.trace_signals();
  EXPECT_GE(sigs.size(), 10u);
  for (const auto* s : sigs) {
    EXPECT_FALSE(s->name().empty());
  }
}

}  // namespace
