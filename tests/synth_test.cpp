// Synthesis cost model: technology mapping, area/power estimation and the
// Table-I report regime.

#include <gtest/gtest.h>

#include "dsp/rng.hpp"
#include "rtl/dtc_rtl.hpp"
#include "synth/report.hpp"

namespace {

using datc::dsp::Real;
using namespace datc;

synth::MappedNetlist map_default_dtc() {
  rtl::DtcRtl dut{core::DtcConfig{}};
  std::vector<rtl::ComponentDescriptor> comps;
  dut.describe(comps);
  return synth::map_components(comps);
}

TEST(TechLibrary, Hv180CellsPopulated) {
  const auto lib = synth::TechLibrary::hv180();
  EXPECT_DOUBLE_EQ(lib.vdd(), 1.8);
  EXPECT_GT(lib.cell(synth::CellKind::kDffr).area_um2, 0.0);
  EXPECT_GT(lib.cell(synth::CellKind::kDffr).clk_pin_cap_ff, 0.0);
  EXPECT_EQ(lib.cell(synth::CellKind::kInv).clk_pin_cap_ff, 0.0);
  // Sequential cells are bigger than inverters.
  EXPECT_GT(lib.cell(synth::CellKind::kDffr).area_um2,
            lib.cell(synth::CellKind::kInv).area_um2);
}

TEST(Mapper, FlipFlopsMapOneToOne) {
  std::vector<rtl::ComponentDescriptor> comps{
      {"regs", rtl::ComponentKind::kFlipFlop, 10}};
  const auto net = synth::map_components(comps);
  EXPECT_EQ(net.num_flip_flops, 10u);
  EXPECT_EQ(net.cell_counts.at(synth::CellKind::kDffr), 10u);
  // Clock buffers added (10 FF / 8 per buffer -> 2).
  EXPECT_EQ(net.cell_counts.at(synth::CellKind::kClkBuf), 2u);
}

TEST(Mapper, RomFoldsHeavily) {
  std::vector<rtl::ComponentDescriptor> comps{
      {"rom", rtl::ComponentKind::kRomBits, 640}};
  const auto net = synth::map_components(comps);
  // ~0.12 mux per bit.
  EXPECT_NEAR(static_cast<Real>(net.cell_counts.at(synth::CellKind::kMux2)),
              640.0 * 0.12, 3.0);
}

TEST(Mapper, DtcLandsInPaperRegime) {
  const auto net = map_default_dtc();
  const auto lib = synth::TechLibrary::hv180();
  // Paper: 512 cells, 11700 um^2. The model must land in the same decade
  // and within ~2x.
  EXPECT_GT(net.total_cells(), 250u);
  EXPECT_LT(net.total_cells(), 1000u);
  EXPECT_GT(net.total_area_um2(lib), 6000.0);
  EXPECT_LT(net.total_area_um2(lib), 24000.0);
  EXPECT_EQ(net.num_flip_flops, 56u);
}

TEST(Power, DefaultActivityInPaperRegime) {
  const auto net = map_default_dtc();
  const auto lib = synth::TechLibrary::hv180();
  const auto p = synth::estimate_default_activity(net, lib,
                                                  synth::PowerConfig{});
  // Paper: ~70 nW at 2 kHz / 1.8 V. Same decade required.
  EXPECT_GT(p.total_nw(), 15.0);
  EXPECT_LT(p.total_nw(), 200.0);
  EXPECT_GT(p.clock_nw, 0.0);
  EXPECT_GT(p.data_nw, 0.0);
}

TEST(Power, ScalesLinearlyWithClock) {
  const auto net = map_default_dtc();
  const auto lib = synth::TechLibrary::hv180();
  synth::PowerConfig slow;
  slow.clock_hz = 2000.0;
  synth::PowerConfig fast;
  fast.clock_hz = 4000.0;
  const auto p1 = synth::estimate_default_activity(net, lib, slow);
  const auto p2 = synth::estimate_default_activity(net, lib, fast);
  EXPECT_NEAR(p2.total_nw() / p1.total_nw(), 2.0, 1e-9);
}

TEST(Power, MeasuredActivityBelowDefaultForSparseInput) {
  // A mostly idle DTC toggles far less than the alpha=0.5 assumption.
  core::DtcConfig cfg;
  std::vector<bool> stim(4000, false);
  for (std::size_t i = 0; i < stim.size(); i += 40) stim[i] = true;
  const auto rep = synth::synthesize_dtc(cfg, stim);
  EXPECT_LT(rep.power_measured.total_nw(), rep.power_default.total_nw());
  EXPECT_GT(rep.power_measured.total_nw(), 0.0);
}

TEST(Power, MeasuredActivityRequiresCycles) {
  const auto net = map_default_dtc();
  const auto lib = synth::TechLibrary::hv180();
  EXPECT_THROW((void)synth::estimate_measured_activity(
                   net, lib, synth::PowerConfig{}, 100, 0),
               std::invalid_argument);
}

TEST(Report, PortCountMatchesPaper) {
  EXPECT_EQ(synth::dtc_port_count(core::DtcConfig{}), 12u);
  core::DtcConfig wide;
  wide.dac_bits = 6;
  EXPECT_EQ(synth::dtc_port_count(wide), 14u);
}

TEST(Report, SynthesizeDtcProducesFullReport) {
  dsp::Rng rng(3);
  std::vector<bool> stim(2000);
  for (std::size_t i = 0; i < stim.size(); ++i) stim[i] = rng.chance(0.2);
  const auto rep = synth::synthesize_dtc(core::DtcConfig{}, stim);
  EXPECT_EQ(rep.num_ports, 12u);
  EXPECT_GT(rep.num_cells, 0u);
  EXPECT_GT(rep.core_area_um2, 0.0);
  EXPECT_EQ(rep.activity_cycles, 2000u);
  EXPECT_GT(rep.activity_toggles, 0u);

  const auto text = synth::format_table1(rep);
  EXPECT_NE(text.find("Power supply"), std::string::npos);
  EXPECT_NE(text.find("Number of cells"), std::string::npos);
  EXPECT_NE(text.find("11700"), std::string::npos);  // paper column
  EXPECT_NE(text.find("~70 nW"), std::string::npos);
}

}  // namespace
