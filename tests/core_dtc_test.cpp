// Behavioural DTC: frame bookkeeping, event semantics, threshold
// adaptation dynamics and the duty-tracking equilibrium property.

#include "core/dtc.hpp"

#include <gtest/gtest.h>

#include "dsp/rng.hpp"

namespace {

using datc::dsp::Real;
using namespace datc;

TEST(Dtc, ResetState) {
  core::Dtc dtc;
  EXPECT_EQ(dtc.set_vth(), 1u);  // Listing 1 floor code
  EXPECT_EQ(dtc.current_count(), 0u);
  EXPECT_EQ(dtc.n_one3(), 0u);
}

TEST(Dtc, EndOfFrameEveryFrameLen) {
  core::Dtc dtc;  // frame = 100
  for (int f = 0; f < 3; ++f) {
    for (int k = 0; k < 99; ++k) {
      EXPECT_FALSE(dtc.step(false).end_of_frame);
    }
    EXPECT_TRUE(dtc.step(false).end_of_frame);
  }
}

TEST(Dtc, CountsOnesThroughInReg) {
  core::Dtc dtc;
  // In_reg delays by one cycle: the value fed at cycle k is counted at
  // cycle k+1.
  (void)dtc.step(true);             // captures 1, counts old 0
  EXPECT_EQ(dtc.current_count(), 0u);
  (void)dtc.step(false);            // counts the captured 1
  EXPECT_EQ(dtc.current_count(), 1u);
  (void)dtc.step(false);
  EXPECT_EQ(dtc.current_count(), 1u);
}

TEST(Dtc, EventOnRisingEdgeOnly) {
  core::Dtc dtc;
  (void)dtc.step(true);                    // capture 1
  auto s = dtc.step(true);                 // d_out rises
  EXPECT_TRUE(s.event);
  s = dtc.step(true);                      // still high: no event
  EXPECT_FALSE(s.event);
  (void)dtc.step(false);                   // capture 0
  s = dtc.step(true);                      // d_out low now
  EXPECT_FALSE(s.event);
  s = dtc.step(true);                      // rises again
  EXPECT_TRUE(s.event);
}

TEST(Dtc, HistoryShiftsAtFrameEnd) {
  core::Dtc dtc;  // frame 100
  // Frame 1: feed 30 ones.
  for (int k = 0; k < 30; ++k) (void)dtc.step(true);
  for (int k = 0; k < 70; ++k) (void)dtc.step(false);
  EXPECT_EQ(dtc.n_one3(), 30u);
  EXPECT_EQ(dtc.n_one2(), 0u);
  // Frame 2: feed 50 ones.
  for (int k = 0; k < 50; ++k) (void)dtc.step(true);
  for (int k = 0; k < 50; ++k) (void)dtc.step(false);
  EXPECT_EQ(dtc.n_one3(), 50u);
  EXPECT_EQ(dtc.n_one2(), 30u);
  EXPECT_EQ(dtc.n_one1(), 0u);
}

TEST(Dtc, ThresholdRisesWithDuty) {
  core::Dtc dtc;  // frame 100, reset code 1
  // Saturate: all ones for three frames -> AVR -> ~100 -> top code.
  for (int k = 0; k < 300; ++k) (void)dtc.step(true);
  EXPECT_EQ(dtc.set_vth(), 15u);
  // Go silent: code returns to the floor.
  for (int k = 0; k < 400; ++k) (void)dtc.step(false);
  EXPECT_EQ(dtc.set_vth(), 1u);
}

TEST(Dtc, SetVthTracksConfiguredDuty) {
  // Feeding a constant duty D for long enough must settle the code near
  // the interval index for D (code ~ D/0.03 - 1 for the 4-bit table).
  for (const Real duty : {0.09, 0.21, 0.33}) {
    core::DtcConfig cfg;
    cfg.frame = core::FrameSize::k200;
    core::Dtc dtc(cfg);
    constexpr std::size_t kPeriod = 100;  // deterministic duty pattern
    for (std::size_t k = 0; k < 3000; ++k) {
      const bool on = static_cast<Real>(k % kPeriod) <
                      duty * static_cast<Real>(kPeriod);
      (void)dtc.step(on);
    }
    const unsigned expected =
        static_cast<unsigned>(duty / 0.03) - 1;  // interval index
    EXPECT_NEAR(static_cast<Real>(dtc.set_vth()),
                static_cast<Real>(expected), 1.5)
        << "duty=" << duty;
  }
}

TEST(Dtc, ListingLiteralLagsByOneFrame) {
  core::DtcConfig literal;
  literal.order = core::PredictorUpdateOrder::kListingLiteral;
  core::Dtc a;          // kCountFirst
  core::Dtc b(literal);
  // One full frame of all-ones. kCountFirst reacts at the first frame
  // boundary; kListingLiteral still averages three empty frames.
  for (int k = 0; k < 100; ++k) {
    (void)a.step(true);
    (void)b.step(true);
  }
  EXPECT_GT(a.set_vth(), 1u);
  EXPECT_EQ(b.set_vth(), 1u);
  // After the next frame the literal order catches up.
  for (int k = 0; k < 100; ++k) (void)b.step(true);
  EXPECT_GT(b.set_vth(), 1u);
}

TEST(Dtc, ResetRestoresInitialState) {
  core::Dtc dtc;
  for (int k = 0; k < 500; ++k) (void)dtc.step(true);
  EXPECT_GT(dtc.set_vth(), 1u);
  dtc.reset();
  EXPECT_EQ(dtc.set_vth(), 1u);
  EXPECT_EQ(dtc.current_count(), 0u);
  EXPECT_EQ(dtc.n_one3(), 0u);
}

TEST(Dtc, ConfigValidation) {
  core::DtcConfig cfg;
  cfg.reset_code = 16;
  EXPECT_THROW(core::Dtc d(cfg), std::invalid_argument);
  cfg = core::DtcConfig{};
  cfg.min_code = 16;
  EXPECT_THROW(core::Dtc d(cfg), std::invalid_argument);
}

struct DutyCase {
  core::FrameSize frame;
  Real duty;
};

class DutyEquilibriumTest : public ::testing::TestWithParam<DutyCase> {};

TEST_P(DutyEquilibriumTest, RandomBernoulliDutySettles) {
  const auto p = GetParam();
  core::DtcConfig cfg;
  cfg.frame = p.frame;
  core::Dtc dtc(cfg);
  dsp::Rng rng(static_cast<std::uint64_t>(core::frame_cycles(p.frame)) +
               static_cast<std::uint64_t>(p.duty * 1000));
  // Drive with i.i.d. Bernoulli(duty) for 40 frames, then check the code
  // stays within +-2 of the expected interval index for 10 more frames.
  const unsigned flen = core::frame_cycles(p.frame);
  for (unsigned k = 0; k < 40 * flen; ++k) (void)dtc.step(rng.chance(p.duty));
  const Real expected = p.duty / 0.03 - 1.0;
  for (unsigned k = 0; k < 10 * flen; ++k) {
    (void)dtc.step(rng.chance(p.duty));
    ASSERT_NEAR(static_cast<Real>(dtc.set_vth()), expected, 2.2)
        << "frame=" << flen << " duty=" << p.duty;
  }
}

INSTANTIATE_TEST_SUITE_P(
    FramesAndDuties, DutyEquilibriumTest,
    ::testing::Values(DutyCase{core::FrameSize::k100, 0.09},
                      DutyCase{core::FrameSize::k100, 0.24},
                      DutyCase{core::FrameSize::k200, 0.15},
                      DutyCase{core::FrameSize::k200, 0.33},
                      DutyCase{core::FrameSize::k400, 0.09},
                      DutyCase{core::FrameSize::k400, 0.42},
                      DutyCase{core::FrameSize::k800, 0.21},
                      DutyCase{core::FrameSize::k800, 0.45}));

TEST(Dtc, FixedVsFloatDatapathAgreeOnCodes) {
  core::DtcConfig fx;
  core::DtcConfig fl;
  fl.use_fixed_point = false;
  core::Dtc a(fx);
  core::Dtc b(fl);
  dsp::Rng rng(99);
  int disagreements = 0;
  for (int k = 0; k < 20000; ++k) {
    const bool d = rng.chance(0.2);
    const auto sa = a.step(d);
    const auto sb = b.step(d);
    if (sa.set_vth != sb.set_vth) ++disagreements;
  }
  // Boundary cases may differ by the Q8 rounding, but only rarely.
  EXPECT_LT(disagreements, 20000 / 50);
}

}  // namespace
