// IIR filter design tests: frequency-response checks against the design
// targets, stability, and streaming-vs-batch consistency.

#include "dsp/filter_design.hpp"

#include <cmath>
#include <gtest/gtest.h>
#include <numbers>

#include "dsp/biquad.hpp"
#include "dsp/rng.hpp"
#include "dsp/stats.hpp"

namespace {

using datc::dsp::Real;
using namespace datc;

constexpr Real kPi = std::numbers::pi_v<Real>;

Real norm_w(Real f_hz, Real fs_hz) { return 2.0 * kPi * f_hz / fs_hz; }

TEST(Biquad, IdentityCoefficientsPassSignal) {
  dsp::Biquad bq(dsp::BiquadCoeffs{});
  for (int i = 0; i < 10; ++i) {
    const Real x = static_cast<Real>(i) * 0.1;
    EXPECT_DOUBLE_EQ(bq.process(x), x);
  }
}

TEST(Biquad, StabilityCriterion) {
  dsp::BiquadCoeffs stable{1, 0, 0, -1.2, 0.5};
  EXPECT_TRUE(stable.is_stable());
  dsp::BiquadCoeffs unstable{1, 0, 0, 0.0, 1.1};
  EXPECT_FALSE(unstable.is_stable());
}

TEST(Biquad, CascadeResetClearsState) {
  dsp::BiquadCascade c(dsp::butterworth_lowpass(4, 100.0, 1000.0));
  const std::vector<Real> x{1.0, 0.5, -0.3, 0.2};
  const auto y1 = c.filter(x);
  c.reset();
  const auto y2 = c.filter(x);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_DOUBLE_EQ(y1[i], y2[i]);
  }
}

struct LpCase {
  int order;
  Real fc;
  Real fs;
};

class ButterworthLpTest : public ::testing::TestWithParam<LpCase> {};

TEST_P(ButterworthLpTest, MagnitudeResponse) {
  const auto p = GetParam();
  dsp::BiquadCascade lp(dsp::butterworth_lowpass(p.order, p.fc, p.fs));
  EXPECT_TRUE(lp.is_stable());
  // DC gain ~1.
  EXPECT_NEAR(lp.magnitude_at(norm_w(1e-3, p.fs)), 1.0, 1e-3);
  // -3 dB at the cutoff.
  EXPECT_NEAR(lp.magnitude_at(norm_w(p.fc, p.fs)), std::sqrt(0.5), 0.02);
  // Monotone-ish decay: an octave above the cutoff the attenuation should
  // be at least ~5 dB per order.
  if (2.0 * p.fc < p.fs / 2.0) {
    const Real mag = lp.magnitude_at(norm_w(2.0 * p.fc, p.fs));
    const Real atten_db = -20.0 * std::log10(mag);
    EXPECT_GT(atten_db, 5.0 * p.order) << "order=" << p.order;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Orders, ButterworthLpTest,
    ::testing::Values(LpCase{1, 100.0, 2500.0}, LpCase{2, 100.0, 2500.0},
                      LpCase{3, 100.0, 2500.0}, LpCase{4, 100.0, 2500.0},
                      LpCase{5, 200.0, 2500.0}, LpCase{6, 450.0, 2500.0},
                      LpCase{8, 450.0, 2500.0}, LpCase{4, 2.0, 2500.0}));

class ButterworthHpTest : public ::testing::TestWithParam<LpCase> {};

TEST_P(ButterworthHpTest, MagnitudeResponse) {
  const auto p = GetParam();
  dsp::BiquadCascade hp(dsp::butterworth_highpass(p.order, p.fc, p.fs));
  EXPECT_TRUE(hp.is_stable());
  // Near Nyquist the gain should be ~1.
  EXPECT_NEAR(hp.magnitude_at(norm_w(0.49 * p.fs, p.fs)), 1.0, 0.02);
  EXPECT_NEAR(hp.magnitude_at(norm_w(p.fc, p.fs)), std::sqrt(0.5), 0.02);
  // Attenuation well below the cutoff: a first-order section only gives
  // |H(fc/4)| ~ 0.24; higher orders fall much faster.
  const Real mag = hp.magnitude_at(norm_w(p.fc / 4.0, p.fs));
  EXPECT_LT(mag, p.order == 1 ? 0.26 : 0.15) << "order=" << p.order;
}

INSTANTIATE_TEST_SUITE_P(
    Orders, ButterworthHpTest,
    ::testing::Values(LpCase{1, 100.0, 2500.0}, LpCase{2, 20.0, 2500.0},
                      LpCase{3, 20.0, 2500.0}, LpCase{4, 50.0, 2500.0},
                      LpCase{5, 100.0, 2500.0}));

TEST(FilterDesign, BandpassPassesCentreRejectsEdges) {
  dsp::BiquadCascade bp(dsp::butterworth_bandpass(4, 20.0, 450.0, 2500.0));
  EXPECT_TRUE(bp.is_stable());
  EXPECT_NEAR(bp.magnitude_at(norm_w(150.0, 2500.0)), 1.0, 0.05);
  EXPECT_LT(bp.magnitude_at(norm_w(2.0, 2500.0)), 0.05);
  EXPECT_LT(bp.magnitude_at(norm_w(1100.0, 2500.0)), 0.05);
}

TEST(FilterDesign, NotchKillsTargetFrequency) {
  const auto n = dsp::notch(50.0, 10.0, 2500.0);
  dsp::BiquadCascade c({n});
  EXPECT_LT(c.magnitude_at(norm_w(50.0, 2500.0)), 1e-6);
  EXPECT_NEAR(c.magnitude_at(norm_w(5.0, 2500.0)), 1.0, 0.02);
  EXPECT_NEAR(c.magnitude_at(norm_w(500.0, 2500.0)), 1.0, 0.02);
}

TEST(FilterDesign, InvalidParametersThrow) {
  EXPECT_THROW((void)dsp::butterworth_lowpass(0, 100.0, 1000.0),
               std::invalid_argument);
  EXPECT_THROW((void)dsp::butterworth_lowpass(2, 600.0, 1000.0),
               std::invalid_argument);
  EXPECT_THROW((void)dsp::butterworth_bandpass(2, 300.0, 100.0, 1000.0),
               std::invalid_argument);
  EXPECT_THROW((void)dsp::notch(50.0, -1.0, 1000.0), std::invalid_argument);
}

TEST(FilterDesign, FilteredNoiseVarianceShrinksWithBand) {
  dsp::Rng rng(3);
  std::vector<Real> white(20000);
  for (auto& v : white) v = rng.gaussian();
  dsp::BiquadCascade narrow(dsp::butterworth_bandpass(4, 100.0, 150.0, 2500.0));
  dsp::BiquadCascade wide(dsp::butterworth_bandpass(4, 20.0, 450.0, 2500.0));
  const Real var_narrow = dsp::variance(narrow.filter(white));
  const Real var_wide = dsp::variance(wide.filter(white));
  EXPECT_LT(var_narrow, var_wide);
}

// Streaming process() must equal batch filter().
TEST(Biquad, StreamingMatchesBatch) {
  dsp::Rng rng(5);
  std::vector<Real> x(500);
  for (auto& v : x) v = rng.gaussian();
  dsp::BiquadCascade a(dsp::butterworth_lowpass(4, 200.0, 2500.0));
  dsp::BiquadCascade b(dsp::butterworth_lowpass(4, 200.0, 2500.0));
  const auto batch = a.filter(x);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_DOUBLE_EQ(b.process(x[i]), batch[i]);
  }
}

}  // namespace
