// Unit tests for dsp statistics and similarity metrics.

#include "dsp/stats.hpp"

#include <cmath>
#include <gtest/gtest.h>

#include "dsp/rng.hpp"

namespace {

using datc::dsp::Real;
using namespace datc;

TEST(Stats, MeanOfKnownValues) {
  const std::vector<Real> x{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(dsp::mean(x), 2.5);
}

TEST(Stats, MeanOfEmptyIsZero) {
  EXPECT_DOUBLE_EQ(dsp::mean(std::vector<Real>{}), 0.0);
}

TEST(Stats, VarianceAndStdDev) {
  const std::vector<Real> x{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_NEAR(dsp::variance(x), 4.0, 1e-12);
  EXPECT_NEAR(dsp::std_dev(x), 2.0, 1e-12);
}

TEST(Stats, VarianceOfSingletonIsZero) {
  EXPECT_DOUBLE_EQ(dsp::variance(std::vector<Real>{3.0}), 0.0);
}

TEST(Stats, RmsOfConstant) {
  const std::vector<Real> x(100, -2.0);
  EXPECT_NEAR(dsp::rms(x), 2.0, 1e-12);
}

TEST(Stats, MinMaxThrowOnEmpty) {
  const std::vector<Real> empty;
  EXPECT_THROW((void)dsp::min_value(empty), std::invalid_argument);
  EXPECT_THROW((void)dsp::max_value(empty), std::invalid_argument);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<Real> x{0.0, 1.0, 2.0, 3.0, 4.0};
  EXPECT_NEAR(dsp::percentile(x, 0.0), 0.0, 1e-12);
  EXPECT_NEAR(dsp::percentile(x, 50.0), 2.0, 1e-12);
  EXPECT_NEAR(dsp::percentile(x, 100.0), 4.0, 1e-12);
  EXPECT_NEAR(dsp::percentile(x, 25.0), 1.0, 1e-12);
  EXPECT_THROW((void)dsp::percentile(x, 101.0), std::invalid_argument);
}

TEST(Stats, PearsonPerfectCorrelation) {
  std::vector<Real> a(50);
  std::vector<Real> b(50);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<Real>(i);
    b[i] = 3.0 * static_cast<Real>(i) + 7.0;
  }
  EXPECT_NEAR(dsp::pearson(a, b), 1.0, 1e-12);
  for (auto& v : b) v = -v;
  EXPECT_NEAR(dsp::pearson(a, b), -1.0, 1e-12);
}

TEST(Stats, PearsonOfConstantIsZeroByConvention) {
  const std::vector<Real> a{1.0, 1.0, 1.0};
  const std::vector<Real> b{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(dsp::pearson(a, b), 0.0);
}

TEST(Stats, PearsonRejectsMismatchedSizes) {
  const std::vector<Real> a{1.0, 2.0};
  const std::vector<Real> b{1.0, 2.0, 3.0};
  EXPECT_THROW((void)dsp::pearson(a, b), std::invalid_argument);
}

TEST(Stats, CorrelationPercentScales) {
  std::vector<Real> a(10);
  std::vector<Real> b(10);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<Real>(i);
    b[i] = static_cast<Real>(i);
  }
  EXPECT_NEAR(dsp::correlation_percent(a, b), 100.0, 1e-9);
}

TEST(Stats, RmseAndNrmse) {
  const std::vector<Real> a{0.0, 1.0, 2.0};
  const std::vector<Real> b{0.0, 1.0, 4.0};
  EXPECT_NEAR(dsp::rmse(a, b), std::sqrt(4.0 / 3.0), 1e-12);
  EXPECT_NEAR(dsp::nrmse(a, b), std::sqrt(4.0 / 3.0) / 2.0, 1e-12);
  const std::vector<Real> flat{1.0, 1.0, 1.0};
  EXPECT_THROW((void)dsp::nrmse(flat, a), std::invalid_argument);
}

TEST(Stats, NormalQKnownValues) {
  EXPECT_NEAR(dsp::normal_q(0.0), 0.5, 1e-12);
  EXPECT_NEAR(dsp::normal_q(1.6448536269514722), 0.05, 1e-9);
  EXPECT_NEAR(dsp::normal_q(-1.0) + dsp::normal_q(1.0), 1.0, 1e-12);
}

TEST(Stats, NormalQInvRoundTrip) {
  for (const Real p : {0.4, 0.1, 0.01, 1e-4, 1e-8}) {
    EXPECT_NEAR(dsp::normal_q(dsp::normal_q_inv(p)), p, p * 1e-6 + 1e-15)
        << "p=" << p;
  }
  EXPECT_THROW((void)dsp::normal_q_inv(0.0), std::invalid_argument);
  EXPECT_THROW((void)dsp::normal_q_inv(1.0), std::invalid_argument);
}

TEST(Stats, SummaryOrdering) {
  dsp::Rng rng(11);
  std::vector<Real> x(2000);
  for (auto& v : x) v = rng.gaussian();
  const auto s = dsp::summarize(x);
  EXPECT_LT(s.min, s.p05);
  EXPECT_LT(s.p05, s.p50);
  EXPECT_LT(s.p50, s.p95);
  EXPECT_LT(s.p95, s.max);
  EXPECT_NEAR(s.mean, 0.0, 0.1);
  EXPECT_NEAR(s.std_dev, 1.0, 0.1);
}

// Property sweep: pearson is invariant under affine transforms of either
// argument (positive scale).
class PearsonAffineTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PearsonAffineTest, AffineInvariance) {
  dsp::Rng rng(GetParam());
  std::vector<Real> a(200);
  std::vector<Real> b(200);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = rng.gaussian();
    b[i] = 0.5 * a[i] + rng.gaussian();
  }
  const Real base = dsp::pearson(a, b);
  std::vector<Real> b2(b.size());
  const Real scale = rng.uniform(0.1, 5.0);
  const Real offset = rng.uniform(-10.0, 10.0);
  for (std::size_t i = 0; i < b.size(); ++i) b2[i] = scale * b[i] + offset;
  EXPECT_NEAR(dsp::pearson(a, b2), base, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PearsonAffineTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// Rng determinism and independence of forked streams.
TEST(Rng, DeterministicAcrossInstances) {
  dsp::Rng a(42);
  dsp::Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(Rng, LogUniformWithinBounds) {
  dsp::Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const Real v = rng.log_uniform(0.1, 10.0);
    EXPECT_GE(v, 0.1);
    EXPECT_LE(v, 10.0);
  }
  EXPECT_THROW((void)rng.log_uniform(0.0, 1.0), std::invalid_argument);
}

TEST(Rng, ForkDiverges) {
  dsp::Rng a(9);
  dsp::Rng child = a.fork();
  // Parent and child should not produce the identical stream.
  int same = 0;
  for (int i = 0; i < 32; ++i) {
    if (a.uniform() == child.uniform()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(Rng, ChanceExtremes) {
  dsp::Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

}  // namespace
