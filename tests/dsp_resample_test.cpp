// TimeSeries semantics and sample-rate conversion (the 2.5 kHz analog /
// 2 kHz DTC-clock boundary).

#include "dsp/resample.hpp"

#include <cmath>
#include <gtest/gtest.h>
#include <numbers>

#include "dsp/stats.hpp"
#include "dsp/types.hpp"

namespace {

using datc::dsp::Real;
using datc::dsp::TimeSeries;
using namespace datc;

constexpr Real kTwoPi = 2.0 * std::numbers::pi_v<Real>;

TimeSeries make_sine(Real f_hz, Real fs_hz, Real duration_s) {
  const auto n = static_cast<std::size_t>(duration_s * fs_hz);
  std::vector<Real> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = std::sin(kTwoPi * f_hz * static_cast<Real>(i) / fs_hz);
  }
  return TimeSeries(std::move(x), fs_hz);
}

TEST(TimeSeries, BasicProperties) {
  TimeSeries ts({1.0, 2.0, 3.0, 4.0}, 2.0);
  EXPECT_EQ(ts.size(), 4u);
  EXPECT_DOUBLE_EQ(ts.duration_s(), 2.0);
  EXPECT_DOUBLE_EQ(ts.time_of(2), 1.0);
  EXPECT_THROW(TimeSeries({1.0}, 0.0), std::invalid_argument);
}

TEST(TimeSeries, AtTimeInterpolatesAndClamps) {
  TimeSeries ts({0.0, 1.0, 2.0}, 1.0);
  EXPECT_DOUBLE_EQ(ts.at_time(0.5), 0.5);
  EXPECT_DOUBLE_EQ(ts.at_time(1.25), 1.25);
  EXPECT_DOUBLE_EQ(ts.at_time(-5.0), 0.0);   // clamp left
  EXPECT_DOUBLE_EQ(ts.at_time(99.0), 2.0);   // clamp right
  TimeSeries empty;
  EXPECT_THROW((void)empty.at_time(0.0), std::logic_error);
}

TEST(Resample, PreservesSineShape) {
  const auto x = make_sine(50.0, 2500.0, 1.0);
  const auto y = dsp::resample_linear(x, 2000.0);
  EXPECT_EQ(y.size(), 2000u);
  // Compare against the analytic sine on the new grid.
  Real max_err = 0.0;
  for (std::size_t i = 100; i + 100 < y.size(); ++i) {
    const Real t = static_cast<Real>(i) / 2000.0;
    max_err = std::max(max_err, std::abs(y[i] - std::sin(kTwoPi * 50.0 * t)));
  }
  EXPECT_LT(max_err, 0.01);
}

TEST(Resample, RateUpAndDownRoundTrip) {
  const auto x = make_sine(30.0, 1000.0, 0.5);
  const auto up = dsp::resample_linear(x, 4000.0);
  const auto back = dsp::resample_linear(up, 1000.0);
  EXPECT_EQ(back.size(), x.size());
  for (std::size_t i = 10; i + 10 < x.size(); ++i) {
    EXPECT_NEAR(back[i], x[i], 0.01);
  }
}

TEST(Decimate, ReducesRateAndRejectsAliases) {
  // 300 Hz tone at 8 kHz, decimate by 8 -> 1 kHz (300 Hz still below
  // Nyquist, survives); a 450 Hz tone would alias and must be attenuated
  // by the anti-alias filter when decimating by 10 (Nyquist 400).
  auto x = make_sine(300.0, 8000.0, 1.0);
  const auto y = dsp::decimate(x, 8);
  EXPECT_DOUBLE_EQ(y.sample_rate_hz(), 1000.0);
  EXPECT_NEAR(dsp::rms(std::span<const Real>(y.samples())
                           .subspan(200, y.size() - 400)),
              1.0 / std::sqrt(2.0), 0.05);

  auto alias = make_sine(900.0, 8000.0, 1.0);
  const auto z = dsp::decimate(alias, 10);
  EXPECT_LT(dsp::rms(z.view()), 0.05);
}

TEST(Decimate, FactorOneIsIdentity) {
  const auto x = make_sine(10.0, 1000.0, 0.1);
  const auto y = dsp::decimate(x, 1);
  EXPECT_EQ(y.samples(), x.samples());
}

TEST(HoldUpsample, RepeatsValues) {
  TimeSeries x({1.0, 2.0}, 10.0);
  const auto y = dsp::hold_upsample(x, 3);
  EXPECT_EQ(y.samples(), (std::vector<Real>{1, 1, 1, 2, 2, 2}));
  EXPECT_DOUBLE_EQ(y.sample_rate_hz(), 30.0);
}

TEST(Resample, InvalidArgumentsThrow) {
  const auto x = make_sine(10.0, 100.0, 0.1);
  EXPECT_THROW((void)dsp::resample_linear(x, 0.0), std::invalid_argument);
  EXPECT_THROW((void)dsp::decimate(x, 0), std::invalid_argument);
  EXPECT_THROW((void)dsp::hold_upsample(x, 0), std::invalid_argument);
}

}  // namespace
