// Concurrency stress + edge-case suite, written to run clean under
// ThreadSanitizer (the `tsan` CMake preset builds everything with
// -fsanitize=thread and CI repeats this binary many times). Each test
// hammers one synchronization boundary the runtime relies on:
//
//   * ThreadPool     — shutdown with work still queued, exception
//                      propagation, zero/single-thread configs;
//   * SessionManager — quarantine and the stall watchdog while many
//                      producer threads submit concurrently;
//   * Recorder       — queue overflow + injected I/O faults with
//                      concurrent offerers, and the destructor-close
//                      error counter under concurrent destruction;
//   * scenario grid  — parallel fan-out determinism.
//
// Assertions here are about *invariants* (counts conserved, flags
// sticky, no lost tasks), not timing: the suite must be meaningful on a
// single-core runner and under TSan's heavy interleaving shuffle alike.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "config/scenario.hpp"
#include "fault/file_io.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "net/wire.hpp"
#include "runtime/session.hpp"
#include "runtime/thread_pool.hpp"
#include "config/scenario_grid.hpp"
#include "store/recorder.hpp"

#include <filesystem>

namespace datc {
namespace {

namespace fs = std::filesystem;
using dsp::Real;

// ------------------------------------------------------------ ThreadPool

TEST(ThreadPoolEdgeTest, ZeroThreadConfigUsesHardwareConcurrency) {
  runtime::ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
  EXPECT_EQ(pool.size(), runtime::ThreadPool::hardware_threads());
  std::atomic<int> ran{0};
  pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPoolEdgeTest, SingleThreadPoolRunsTasksInSubmissionOrder) {
  runtime::ThreadPool pool(1);
  std::vector<std::size_t> order;  // single worker: no lock needed
  for (std::size_t i = 0; i < 64; ++i) {
    pool.submit([&order, i] { order.push_back(i); });
  }
  pool.wait_idle();
  ASSERT_EQ(order.size(), 64u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPoolEdgeTest, DestructorDrainsQueuedTasks) {
  // Shutdown with pending work: the destructor contract is that every
  // already-submitted task still runs (workers drain the queue before
  // exiting), so no work is silently lost.
  std::atomic<std::size_t> ran{0};
  constexpr std::size_t kTasks = 256;
  {
    runtime::ThreadPool pool(2);
    for (std::size_t i = 0; i < kTasks; ++i) {
      pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
    // No wait_idle(): destruction races the queue on purpose.
  }
  EXPECT_EQ(ran.load(), kTasks);
}

TEST(ThreadPoolEdgeTest, RepeatedImmediateShutdownLosesNothing) {
  // The TSan-facing version of the above: many short-lived pools torn
  // down while their queues are still full, exercising the stop_ flag,
  // cv_task_ wakeups and the join path concurrently with task bodies.
  std::atomic<std::size_t> ran{0};
  std::size_t submitted = 0;
  for (std::size_t round = 0; round < 20; ++round) {
    runtime::ThreadPool pool(1 + round % 4);
    for (std::size_t i = 0; i < 50; ++i) {
      pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
      ++submitted;
    }
  }
  EXPECT_EQ(ran.load(), submitted);
}

TEST(ThreadPoolEdgeTest, WaitIdleRethrowsFirstTaskException) {
  runtime::ThreadPool pool(2);
  std::atomic<std::size_t> ran{0};
  pool.submit([] { throw std::runtime_error("pooled task failure"); });
  for (std::size_t i = 0; i < 32; ++i) {
    pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  }
  try {
    pool.wait_idle();
    FAIL() << "expected the pooled exception to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "pooled task failure");
  }
  // The error does not poison the pool: later work runs and a second
  // wait_idle() returns cleanly (the exception was consumed).
  EXPECT_EQ(ran.load(), 32u);
  pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 33u);
}

TEST(ThreadPoolEdgeTest, ParallelForPropagatesAndCompletes) {
  runtime::ThreadPool pool(3);
  std::atomic<std::size_t> visited{0};
  EXPECT_THROW(
      runtime::parallel_for(pool, 64,
                            [&visited](std::size_t i) {
                              visited.fetch_add(1,
                                                std::memory_order_relaxed);
                              if (i == 13) {
                                throw std::invalid_argument("slot 13");
                              }
                            }),
      std::invalid_argument);
  // parallel_for waits for idle before rethrowing: every iteration ran.
  EXPECT_EQ(visited.load(), 64u);
}

// -------------------------------------------------------- SessionManager

/// Counts deliveries; optionally sleeps (stall) or throws on a chunk.
class StressSession final : public runtime::Session {
 public:
  struct Behaviour {
    std::size_t throw_on{0};   ///< 1-based chunk index; 0 = never throw
    double sleep_ms{0.0};      ///< per-chunk stall
  };

  explicit StressSession(Behaviour b) : behaviour_(b) {}

  void push_chunk(std::span<const Real>) override {
    const auto n = chunks_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (behaviour_.sleep_ms > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(behaviour_.sleep_ms));
    }
    if (behaviour_.throw_on != 0 && n >= behaviour_.throw_on) {
      throw std::runtime_error("stress session failure");
    }
  }
  void finish() override { finished_.store(true, std::memory_order_relaxed); }

  [[nodiscard]] std::size_t chunks() const {
    return chunks_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] bool finished() const {
    return finished_.load(std::memory_order_relaxed);
  }

 private:
  Behaviour behaviour_;
  std::atomic<std::size_t> chunks_{0};
  std::atomic<bool> finished_{false};
};

TEST(SessionManagerStressTest, ConcurrentProducersAgainstQuarantine) {
  // Several producer threads hammer a mixed population: one session that
  // throws early (quarantined mid-stream while submits keep landing) and
  // healthy sessions that must see every chunk despite the contention.
  runtime::SessionManager manager({.jobs = 4,
                                   .max_pending_chunks = 2,
                                   .rethrow_on_drain = false});
  constexpr std::size_t kHealthy = 3;
  constexpr std::size_t kProducers = 4;
  constexpr std::size_t kChunksPerProducer = 25;

  auto bad_owned = std::make_unique<StressSession>(
      StressSession::Behaviour{.throw_on = 5});
  const auto bad_id = manager.add(std::move(bad_owned));
  std::vector<StressSession*> healthy;
  std::vector<runtime::SessionManager::SessionId> healthy_ids;
  for (std::size_t i = 0; i < kHealthy; ++i) {
    auto s = std::make_unique<StressSession>(StressSession::Behaviour{});
    healthy.push_back(s.get());
    healthy_ids.push_back(manager.add(std::move(s)));
  }

  const std::vector<Real> chunk(8, 0.0);
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&manager, &chunk, bad_id, &healthy_ids] {
      for (std::size_t c = 0; c < kChunksPerProducer; ++c) {
        manager.submit_chunk(bad_id, chunk);
        for (const auto id : healthy_ids) manager.submit_chunk(id, chunk);
      }
    });
  }
  for (auto& t : producers) t.join();
  for (const auto id : healthy_ids) manager.submit_finish(id);
  manager.submit_finish(bad_id);
  manager.drain();

  const auto bad_health = manager.health(bad_id);
  EXPECT_TRUE(bad_health.quarantined);
  EXPECT_NE(bad_health.error.find("stress session failure"),
            std::string::npos);
  EXPECT_EQ(manager.quarantined_count(), 1u);
  for (std::size_t i = 0; i < kHealthy; ++i) {
    EXPECT_EQ(healthy[i]->chunks(), kProducers * kChunksPerProducer) << i;
    EXPECT_TRUE(healthy[i]->finished()) << i;
    EXPECT_FALSE(manager.health(healthy_ids[i]).quarantined) << i;
  }
}

TEST(SessionManagerStressTest, ReleaseRacesStrandsWithoutUseAfterFree) {
  // Fleet-ingest regime: sessions are added, streamed, finished and
  // RELEASED continuously from several producer threads while other
  // strands keep running. release() must synchronize with the strand —
  // destroying a session whose strand is still between its last call
  // and marking itself idle would be a use-after-free TSan catches here.
  runtime::SessionManager manager({.jobs = 3,
                                   .max_pending_chunks = 2,
                                   .rethrow_on_drain = false});
  constexpr std::size_t kProducers = 4;
  constexpr std::size_t kSessionsPerProducer = 12;
  const std::vector<Real> chunk(8, 0.0);

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&manager, &chunk] {
      for (std::size_t s = 0; s < kSessionsPerProducer; ++s) {
        auto owned =
            std::make_unique<StressSession>(StressSession::Behaviour{});
        StressSession* raw = owned.get();
        const auto id = manager.add(std::move(owned));
        for (int c = 0; c < 5; ++c) manager.submit_chunk(id, chunk);
        manager.submit_finish(id);
        // The ingest daemon releases once the session reports finished;
        // the strand may not have marked itself idle yet — exactly the
        // window release() has to close.
        while (!raw->finished()) std::this_thread::yield();
        manager.release(id);
      }
    });
  }
  for (auto& t : producers) t.join();
  manager.drain();

  EXPECT_EQ(manager.size(), kProducers * kSessionsPerProducer);
  EXPECT_EQ(manager.quarantined_count(), 0u);
  // Released slots reject further submissions instead of crashing.
  EXPECT_THROW(manager.submit_chunk(0, chunk), std::exception);
  EXPECT_THROW(manager.submit_finish(0), std::exception);
}

TEST(SessionManagerStressTest, WatchdogUnderConcurrentSubmitsStaysSticky) {
  runtime::SessionManager manager({.jobs = 2,
                                   .max_pending_chunks = 2,
                                   .rethrow_on_drain = false,
                                   .stall_timeout_s = 0.01});
  const auto slow = manager.add(std::make_unique<StressSession>(
      StressSession::Behaviour{.sleep_ms = 40.0}));
  auto fast_owned =
      std::make_unique<StressSession>(StressSession::Behaviour{});
  StressSession* fast_raw = fast_owned.get();
  const auto fast = manager.add(std::move(fast_owned));

  const std::vector<Real> chunk(4, 0.0);
  std::thread slow_producer([&manager, &chunk, slow] {
    for (int i = 0; i < 3; ++i) manager.submit_chunk(slow, chunk);
  });
  std::thread fast_producer([&manager, &chunk, fast] {
    for (int i = 0; i < 50; ++i) manager.submit_chunk(fast, chunk);
  });
  slow_producer.join();
  fast_producer.join();
  manager.drain();

  // Sticky: the strand finished long ago, yet the flag must survive, and
  // health() must be readable while nothing is running.
  EXPECT_TRUE(manager.health(slow).stall_flagged);
  EXPECT_FALSE(manager.health(fast).stall_flagged);
  EXPECT_FALSE(manager.health(slow).quarantined);
  EXPECT_EQ(fast_raw->chunks(), 50u);
}

TEST(SessionManagerStressTest, HealthPollingRacesTheStrands) {
  // A monitoring thread polls health()/quarantined_count() continuously
  // while strands run, quarantine and stall — the reader path must be
  // fully synchronized with the mutating workers (this is where TSan
  // earns its keep; the assertions are deliberately weak).
  runtime::SessionManager manager({.jobs = 3,
                                   .max_pending_chunks = 2,
                                   .rethrow_on_drain = false,
                                   .stall_timeout_s = 0.005});
  std::vector<runtime::SessionManager::SessionId> ids;
  ids.push_back(manager.add(std::make_unique<StressSession>(
      StressSession::Behaviour{.throw_on = 3})));
  ids.push_back(manager.add(std::make_unique<StressSession>(
      StressSession::Behaviour{.sleep_ms = 15.0})));
  ids.push_back(manager.add(
      std::make_unique<StressSession>(StressSession::Behaviour{})));

  std::atomic<bool> stop_polling{false};
  std::thread poller([&manager, &ids, &stop_polling] {
    std::uint64_t observations = 0;
    while (!stop_polling.load(std::memory_order_relaxed)) {
      for (const auto id : ids) {
        const auto h = manager.health(id);
        observations += h.chunks_discarded + (h.quarantined ? 1 : 0) +
                        (h.stall_flagged ? 1 : 0);
      }
      observations += manager.quarantined_count();
    }
    EXPECT_GE(observations, 0u);
  });

  const std::vector<Real> chunk(4, 0.0);
  for (int round = 0; round < 10; ++round) {
    for (const auto id : ids) manager.submit_chunk(id, chunk);
  }
  for (const auto id : ids) manager.submit_finish(id);
  manager.drain();
  stop_polling.store(true, std::memory_order_relaxed);
  poller.join();

  EXPECT_TRUE(manager.health(ids[0]).quarantined);
  EXPECT_FALSE(manager.health(ids[2]).quarantined);
}

// -------------------------------------------------------------- Recorder

class ConcurrencyStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("datc_conc_test_" + std::string(::testing::UnitTest::GetInstance()
                                                ->current_test_info()
                                                ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] std::string dir(const char* sub = "") const {
    return (dir_ / sub).string();
  }

  fs::path dir_;
};

std::vector<core::Event> spaced_events(std::size_t n, Real t0) {
  std::vector<core::Event> ev(n);
  for (std::size_t i = 0; i < n; ++i) {
    ev[i] = core::Event{t0 + static_cast<Real>(i) * 1e-5, 1, 0};
  }
  return ev;
}

TEST_F(ConcurrencyStoreTest, OverflowPlusIoFaultsConservesEventCounts) {
  // A deliberately tiny queue, a paused writer (so overflow drops are
  // certain, not timing-dependent), transient injected I/O faults once
  // the writer resumes, and concurrent offerers. The ledger invariant
  // offered == written + dropped must survive all three at once.
  fault::StoreFaultSpec spec;
  spec.write_fail_prob = 0.2;
  spec.fsync_fail_prob = 0.1;

  store::RecorderConfig rcfg;
  rcfg.log.dir = dir("log");
  rcfg.log.io = std::make_shared<fault::FaultyFileIo>(spec, 2024);
  rcfg.max_queued_events = 64;  // far smaller than the offered volume
  rcfg.max_io_retries = 2;
  rcfg.io_backoff_initial_ms = 0.01;
  rcfg.io_backoff_max_ms = 0.02;
  store::Recorder recorder(rcfg);
  recorder.set_paused(true);

  constexpr std::size_t kOfferers = 4;
  constexpr std::size_t kEventsPerOfferer = 500;
  std::vector<std::thread> offerers;
  offerers.reserve(kOfferers);
  for (std::size_t p = 0; p < kOfferers; ++p) {
    offerers.emplace_back([&recorder, p] {
      // Disjoint, increasing time ranges per thread: whatever interleaving
      // the queue admits, each thread's own events stay time-ordered.
      const auto events =
          spaced_events(kEventsPerOfferer, static_cast<Real>(p) * 10.0);
      for (std::size_t pos = 0; pos < events.size(); pos += 37) {
        const std::size_t n =
            std::min<std::size_t>(37, events.size() - pos);
        recorder.offer(
            std::span<const core::Event>(events.data() + pos, n));
      }
    });
  }
  for (auto& t : offerers) t.join();
  recorder.set_paused(false);

  try {
    recorder.close();
  } catch (const std::exception&) {
    // Concurrent offerers admit chunks in arbitrary order, so the writer
    // may see a time-order violation — a logic error surfaced by
    // close(), which is itself part of the contract under test. The
    // ledger below must balance either way.
  }
  const auto s = recorder.stats();
  EXPECT_EQ(s.offered, kOfferers * kEventsPerOfferer);
  EXPECT_EQ(s.offered, s.written + s.dropped);
  EXPECT_GT(s.dropped, 0u);  // the paused 64-slot queue guarantees drops
}

TEST_F(ConcurrencyStoreTest, ConcurrentRecorderDestructionCountsCloseErrors) {
  // Several recorders, each primed with a guaranteed close()-time logic
  // error (a stale event queued behind a flushed later one), destroyed
  // from concurrent threads: the process-wide swallowed-error counter
  // must absorb exactly one increment per recorder, no lost updates.
  constexpr std::size_t kRecorders = 4;
  const auto before = store::Recorder::destructor_close_errors();
  std::vector<std::thread> destroyers;
  destroyers.reserve(kRecorders);
  for (std::size_t r = 0; r < kRecorders; ++r) {
    destroyers.emplace_back([this, r] {
      store::RecorderConfig rcfg;
      rcfg.log.dir = dir(("log" + std::to_string(r)).c_str());
      store::Recorder recorder(rcfg);
      const core::Event good{1.0, 1, 0};
      const core::Event stale{0.5, 1, 0};
      recorder.offer({&good, 1});
      recorder.flush();
      recorder.offer({&stale, 1});
      // Destroyed without close(): the destructor swallows and counts.
    });
  }
  for (auto& t : destroyers) t.join();
  EXPECT_EQ(store::Recorder::destructor_close_errors(), before + kRecorders);
}

TEST_F(ConcurrencyStoreTest, StatsPollingRacesTheWriterThread) {
  // stats() readers against the writer thread and an offering thread:
  // every counter it returns is mutated under mu_ by the writer loop,
  // and a reader tearing any of them is a race TSan must not find.
  store::RecorderConfig rcfg;
  rcfg.log.dir = dir("log");
  rcfg.max_queued_events = 1u << 12;
  store::Recorder recorder(rcfg);

  std::atomic<bool> stop{false};
  std::thread poller([&recorder, &stop] {
    std::uint64_t last_written = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const auto s = recorder.stats();
      EXPECT_LE(last_written, s.written);  // monotone under the lock
      EXPECT_LE(s.written + s.dropped, s.offered);
      last_written = s.written;
    }
  });
  const auto events = spaced_events(2000, 0.0);
  for (std::size_t pos = 0; pos < events.size(); pos += 101) {
    const std::size_t n = std::min<std::size_t>(101, events.size() - pos);
    recorder.offer(std::span<const core::Event>(events.data() + pos, n));
  }
  recorder.close();
  stop.store(true, std::memory_order_relaxed);
  poller.join();

  const auto s = recorder.stats();
  EXPECT_EQ(s.offered, 2000u);
  EXPECT_EQ(s.offered, s.written + s.dropped);
}

// ---------------------------------------------------------- grid fan-out

config::ScenarioSpec tiny_scenario() {
  config::ScenarioSpec spec;
  spec.name = "stress-grid";
  config::set_scenario_key(spec, "source.model", "noise");
  config::set_scenario_key(spec, "source.duration_s", "0.5");
  return spec;
}

TEST(ScenarioGridStressTest, ParallelFanOutIsDeterministicUnderRepetition) {
  // The grid fans every point out over a ThreadPool; repeated parallel
  // runs must agree with the serial expansion bit-for-bit even while the
  // pool's scheduling varies run to run (and TSan shuffles it further).
  config::ScenarioGridConfig cfg;
  cfg.base = tiny_scenario();
  cfg.axes = config::parse_axes("channels=1,2; distance=0.3,1.0");
  cfg.jobs = 1;
  const auto serial = config::run_scenario_grid(cfg);
  ASSERT_EQ(serial.points.size(), 4u);
  for (int rep = 0; rep < 3; ++rep) {
    cfg.jobs = 4;
    const auto parallel = config::run_scenario_grid(cfg);
    ASSERT_EQ(parallel.points.size(), serial.points.size());
    for (std::size_t i = 0; i < serial.points.size(); ++i) {
      EXPECT_EQ(serial.points[i].overrides, parallel.points[i].overrides);
      EXPECT_EQ(serial.points[i].events_tx, parallel.points[i].events_tx);
      EXPECT_EQ(serial.points[i].events_rx, parallel.points[i].events_rx);
      EXPECT_EQ(serial.points[i].mean_rx_correlation_pct,
                parallel.points[i].mean_rx_correlation_pct);
    }
  }
}

// ---------------------------------------------------------- ingest server

config::ScenarioSpec serve_stress_scenario() {
  config::ScenarioSpec spec;
  spec.name = "serve-stress";
  config::set_scenario_key(spec, "source.model", "noise");
  spec.source.duration_s = 0.5;
  spec.session.jobs = 2;
  return spec;
}

TEST(ServeStressTest, ConcurrentClientsAgainstAcceptSubmitAndFinish) {
  // Client threads hammer HELLO/DATA/END while the event-loop thread and
  // the shard strands run, and a monitoring thread polls stats()
  // throughout — accept, submit, completion signalling and the stats
  // snapshot all race each other here. Invariants: every client
  // completes, every session is accounted, counters conserve.
  net::ServeConfig cfg = net::make_serve_config(serve_stress_scenario());
  cfg.shards = 2;
  cfg.max_inflight_chunks = 2;  // backpressure engages under the burst
  net::Server server(std::move(cfg));  // no output_dir: pure ingest
  std::thread loop([&server] { server.run(); });

  std::atomic<bool> stop_polling{false};
  std::thread poller([&server, &stop_polling] {
    while (!stop_polling.load(std::memory_order_relaxed)) {
      const net::ServerStats s = server.stats();
      EXPECT_LE(s.sessions_finished + s.sessions_aborted, s.sessions_opened);
      EXPECT_LE(s.samples_rx, s.bytes_rx);  // every sample cost 8 bytes
    }
  });

  constexpr std::size_t kClients = 6;
  constexpr std::size_t kChunks = 10;
  const std::vector<Real> chunk(64, 0.01);
  std::atomic<std::size_t> completed{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (std::size_t i = 0; i < kClients; ++i) {
    clients.emplace_back([&server, &chunk, &completed] {
      net::Client client("127.0.0.1", server.port());
      client.hello(net::wire::HelloBody{});
      for (std::size_t c = 0; c < kChunks; ++c) client.send_chunk(chunk);
      client.finish();
      completed.fetch_add(1, std::memory_order_relaxed);
    });
  }
  for (auto& t : clients) t.join();
  stop_polling.store(true, std::memory_order_relaxed);
  poller.join();
  server.request_stop();
  loop.join();

  EXPECT_EQ(completed.load(), kClients);
  const net::ServerStats s = server.stats();
  EXPECT_EQ(s.sessions_opened, kClients);
  EXPECT_EQ(s.sessions_finished, kClients);
  EXPECT_EQ(s.sessions_aborted, 0u);
  EXPECT_EQ(s.sessions_active, 0u);
  EXPECT_EQ(s.chunks_rx, kClients * kChunks);
  EXPECT_EQ(s.samples_rx, kClients * kChunks * chunk.size());
  EXPECT_EQ(s.chunk_to_envelope.count, s.chunks_rx);
}

TEST(ServeStressTest, StopWhileClientsAreMidStreamDrainsEverySession) {
  // request_stop() lands while every client is mid-stream: the drain
  // must abort-and-flush each open session (never hang on inflight
  // chunks), notify peers with a typed kDraining error, and leave the
  // books balanced — opened == finished + aborted, nothing active.
  net::ServeConfig cfg = net::make_serve_config(serve_stress_scenario());
  cfg.shards = 2;
  net::Server server(std::move(cfg));
  std::thread loop([&server] { server.run(); });

  constexpr std::size_t kClients = 4;
  const std::vector<Real> chunk(64, 0.01);
  std::atomic<std::size_t> streaming{0};
  std::atomic<std::size_t> ended{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (std::size_t i = 0; i < kClients; ++i) {
    clients.emplace_back([&server, &chunk, &streaming, &ended] {
      try {
        net::Client client("127.0.0.1", server.port());
        client.hello(net::wire::HelloBody{});
        streaming.fetch_add(1, std::memory_order_relaxed);
        for (;;) client.send_chunk(chunk);  // until the server says stop
      } catch (const net::ClientError& e) {
        EXPECT_EQ(e.code(), net::wire::ErrorCode::kDraining);
        ended.fetch_add(1, std::memory_order_relaxed);
      } catch (const std::exception&) {
        // The server may close the socket before the error frame is
        // read; a connection-loss end is an acceptable outcome too.
        ended.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  while (streaming.load(std::memory_order_relaxed) < kClients) {
    std::this_thread::yield();
  }
  server.request_stop();
  loop.join();  // the drain must terminate with clients still pushing
  for (auto& t : clients) t.join();

  EXPECT_EQ(ended.load(), kClients);
  const net::ServerStats s = server.stats();
  EXPECT_EQ(s.sessions_opened, kClients);
  EXPECT_EQ(s.sessions_finished + s.sessions_aborted, kClients);
  EXPECT_EQ(s.sessions_active, 0u);
}

}  // namespace
}  // namespace datc
