// Recording and deterministic re-simulation: a live streaming session
// tees its decoded events into a Recorder (bounded queue, background
// writer); replaying the stored log through reconstruction reproduces
// the live ARV envelope bit-identically, and queries over the recorded
// log return exactly the session's decoded events.

#include "store/replay.hpp"

#include <gtest/gtest.h>

#include <filesystem>

#include "runtime/session.hpp"
#include "sim/stream_parity.hpp"
#include "store/recorder.hpp"

namespace {

namespace fs = std::filesystem;
using datc::dsp::Real;
using namespace datc;

class StoreReplayTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("datc_replay_test_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] std::string dir() const { return dir_.string(); }

  fs::path dir_;
};

core::CalibrationPtr test_calibration() {
  static const core::CalibrationPtr cal = [] {
    core::RateCalibrationConfig c;
    c.count_fs_hz = 2000.0;
    c.num_samples = 100000;
    return std::make_shared<core::RateCalibration>(c);
  }();
  return cal;
}

emg::Recording make_channel(std::uint64_t seed, Real duration_s) {
  emg::RecordingSpec spec;
  spec.seed = seed;
  spec.duration_s = duration_s;
  spec.gain_v = 0.4;
  spec.name = "replay-ch" + std::to_string(seed);
  return emg::make_recording(spec);
}

sim::LinkConfig noisy_link(std::uint64_t seed) {
  sim::LinkConfig link;
  link.seed = seed;
  link.channel.distance_m = 0.6;
  link.channel.ref_loss_db = 30.0;
  link.channel.erasure_prob = 0.05;
  return link;
}

TEST_F(StoreReplayTest, RecordedSessionReplaysBitIdentically) {
  const auto rec = make_channel(601, 3.0);
  const sim::EvalConfig eval;
  const auto link = noisy_link(29);
  auto cfg = sim::make_session_config(eval, link, test_calibration());
  cfg.keep_rx_events = true;
  runtime::StreamingSession session(cfg, /*channel_id=*/2);

  store::RecorderConfig rcfg;
  rcfg.log.dir = dir();
  rcfg.log.max_events_per_segment = 64;  // force many segments
  std::vector<Real> live_arv;
  {
    store::Recorder recorder(rcfg);
    session.set_event_tee(
        [&recorder](std::span<const core::Event> ev) { recorder.offer(ev); });
    const auto& samples = rec.emg_v.samples();
    for (std::size_t pos = 0; pos < samples.size(); pos += 512) {
      const std::size_t n = std::min<std::size_t>(512, samples.size() - pos);
      session.push_chunk(std::span<const Real>(samples.data() + pos, n));
      session.drain_arv(live_arv);
    }
    session.finish();
    session.drain_arv(live_arv);
    recorder.close();
    const auto stats = recorder.stats();
    EXPECT_EQ(stats.dropped, 0u);
    EXPECT_EQ(stats.offered, stats.written);
    EXPECT_EQ(stats.written, session.report().events_rx);
    EXPECT_GE(stats.segments_finalized, 3u);
  }
  store::write_manifest(
      dir(), sim::make_session_manifest(eval, 2, rec.emg_v.duration_s()));
  store::write_envelope_f64(dir(), live_arv);

  // The stored log holds exactly the session's decoded stream.
  store::LogReader log(dir());
  const auto stored = log.read_all();
  const auto& rx = session.rx_events();
  ASSERT_EQ(stored.size(), rx.size());
  for (std::size_t i = 0; i < rx.size(); ++i) {
    EXPECT_DOUBLE_EQ(stored[i].time_s, rx[i].time_s);
    EXPECT_EQ(stored[i].vth_code, rx[i].vth_code);
    EXPECT_EQ(stored[i].channel, rx[i].channel);
  }

  // Replay through reconstruction == the live envelope, bit for bit.
  const auto result = store::replay_envelope(dir(), test_calibration());
  ASSERT_EQ(result.arv.size(), live_arv.size());
  for (std::size_t i = 0; i < live_arv.size(); ++i) {
    ASSERT_EQ(result.arv[i], live_arv[i]) << "ARV diverged at sample " << i;
  }

  // The packaged parity check agrees, against the live vector and the
  // recorded envelope.f64 sidecar alike.
  const auto parity =
      store::check_replay_parity(dir(), live_arv, test_calibration());
  EXPECT_TRUE(parity.equal);
  EXPECT_EQ(parity.samples, live_arv.size());
  EXPECT_DOUBLE_EQ(parity.max_abs_diff, 0.0);
  const auto sidecar_parity =
      store::check_replay_parity(dir(), {}, test_calibration());
  EXPECT_TRUE(sidecar_parity.equal);

  // A time-range query over the recording matches count_in on the live
  // decoded stream (half-open window).
  const Real mid_lo = 0.8;
  const Real mid_hi = 1.9;
  EXPECT_EQ(log.query(mid_lo, mid_hi).size(), rx.count_in(mid_lo, mid_hi));
}

TEST_F(StoreReplayTest, ReplayRebuildsCalibrationFromManifest) {
  // Small recording, replayed with NO shared calibration: the manifest
  // alone must parameterise an identical Monte Carlo rebuild. The default
  // calibration config matches test parameters except num_samples, so
  // compare two manifest-driven replays for determinism instead.
  const auto rec = make_channel(602, 1.5);
  const sim::EvalConfig eval;
  auto cfg = sim::make_session_config(eval, noisy_link(31),
                                      test_calibration());
  runtime::StreamingSession session(cfg, 0);
  store::RecorderConfig rcfg;
  rcfg.log.dir = dir();
  {
    store::Recorder recorder(rcfg);
    session.set_event_tee(
        [&recorder](std::span<const core::Event> ev) { recorder.offer(ev); });
    session.push_chunk(rec.emg_v.samples());
    session.finish();
  }
  store::write_manifest(
      dir(), sim::make_session_manifest(eval, 0, rec.emg_v.duration_s()));

  const auto a = store::replay_envelope(dir());
  const auto b = store::replay_envelope(dir());
  ASSERT_EQ(a.arv.size(), b.arv.size());
  for (std::size_t i = 0; i < a.arv.size(); ++i) {
    ASSERT_EQ(a.arv[i], b.arv[i]);
  }
  EXPECT_GT(a.events, 0u);
  EXPECT_DOUBLE_EQ(a.manifest.analog_fs_hz, eval.analog_fs_hz);
}

TEST_F(StoreReplayTest, SessionManagerTeesIntoPerSessionDirectories) {
  // The production wiring: several sessions multiplexed over the pool,
  // each teeing into its own Recorder/directory. Offers come from strand
  // workers; every stored log must hold exactly its session's decoded
  // stream.
  const sim::EvalConfig eval;
  auto cfg = sim::make_session_config(eval, noisy_link(37),
                                      test_calibration());
  cfg.keep_rx_events = true;

  constexpr std::size_t kChannels = 3;
  std::vector<emg::Recording> recs;
  std::vector<std::unique_ptr<store::Recorder>> recorders;
  std::vector<runtime::StreamingSession*> sessions;
  runtime::SessionManager manager({.jobs = 2, .max_pending_chunks = 2});
  std::vector<runtime::SessionManager::SessionId> ids;
  for (std::size_t c = 0; c < kChannels; ++c) {
    recs.push_back(make_channel(620 + c, 1.5));
    store::RecorderConfig rcfg;
    rcfg.log.dir = (dir_ / ("session-" + std::to_string(c))).string();
    rcfg.log.max_events_per_segment = 100;
    recorders.push_back(std::make_unique<store::Recorder>(rcfg));
    auto s = std::make_unique<runtime::StreamingSession>(
        cfg, static_cast<std::uint32_t>(c));
    auto* recorder = recorders.back().get();
    s->set_event_tee([recorder](std::span<const core::Event> ev) {
      recorder->offer(ev);
    });
    sessions.push_back(s.get());
    ids.push_back(manager.add(std::move(s)));
  }
  constexpr std::size_t kChunk = 500;
  const std::size_t total = recs[0].emg_v.size();
  for (std::size_t pos = 0; pos < total; pos += kChunk) {
    for (std::size_t c = 0; c < kChannels; ++c) {
      const auto& samples = recs[c].emg_v.samples();
      const std::size_t n = std::min(kChunk, samples.size() - pos);
      manager.submit_chunk(ids[c],
                           std::span<const Real>(samples.data() + pos, n));
    }
  }
  for (const auto id : ids) manager.submit_finish(id);
  manager.drain();
  for (auto& r : recorders) r->close();

  for (std::size_t c = 0; c < kChannels; ++c) {
    const auto stats = recorders[c]->stats();
    EXPECT_EQ(stats.dropped, 0u) << c;
    EXPECT_EQ(stats.written, sessions[c]->report().events_rx) << c;
    store::LogReader log(recorders[c]->dir());
    const auto stored = log.read_all();
    const auto& rx = sessions[c]->rx_events();
    ASSERT_EQ(stored.size(), rx.size()) << c;
    for (std::size_t i = 0; i < rx.size(); ++i) {
      ASSERT_EQ(stored[i].time_s, rx[i].time_s) << "c=" << c << " i=" << i;
      ASSERT_EQ(stored[i].channel, rx[i].channel);
    }
  }
}

TEST_F(StoreReplayTest, ManifestRoundTrip) {
  store::SessionManifest m;
  m.analog_fs_hz = 2500.0;
  m.duration_s = 12.3456789012345678;
  m.window_s = 0.25;
  m.dac_vref = 1.0;
  m.dac_bits = 4;
  m.count_fs_hz = 2000.0;
  m.band_lo_hz = 20.0;
  m.band_hi_hz = 450.0;
  m.channel = 7;
  store::write_manifest(dir(), m);
  const auto back = store::read_manifest(dir());
  EXPECT_DOUBLE_EQ(back.analog_fs_hz, m.analog_fs_hz);
  EXPECT_EQ(back.duration_s, m.duration_s);  // bit-exact via precision 17
  EXPECT_EQ(back.dac_bits, m.dac_bits);
  EXPECT_EQ(back.channel, m.channel);
}

TEST_F(StoreReplayTest, RecorderDropsWhenQueueFullAndAccountsExactly) {
  store::RecorderConfig rcfg;
  rcfg.log.dir = dir();
  rcfg.max_queued_events = 10;
  store::Recorder recorder(rcfg);
  // Pause the writer so overflow is deterministic, not a race.
  recorder.set_paused(true);
  const auto chunk_at = [](Real t0) {
    std::vector<core::Event> chunk(4);
    for (std::size_t i = 0; i < chunk.size(); ++i) {
      chunk[i] = core::Event{t0 + static_cast<Real>(i) * 1e-3, 1, 0};
    }
    return chunk;
  };
  recorder.offer(chunk_at(0.0));  // queued: 4
  recorder.offer(chunk_at(0.1));  // queued: 8
  recorder.offer(chunk_at(0.2));  // only 2 fit; the other 2 are dropped
  {
    const auto s = recorder.stats();
    EXPECT_EQ(s.offered, 12u);
    EXPECT_EQ(s.dropped, 2u);
  }
  recorder.set_paused(false);
  recorder.flush();
  recorder.close();
  const auto s = recorder.stats();
  EXPECT_EQ(s.offered, 12u);
  EXPECT_EQ(s.written, 10u);
  EXPECT_EQ(s.dropped, 2u);
  EXPECT_EQ(s.offered, s.written + s.dropped);
  store::LogReader r(dir());
  EXPECT_EQ(r.total_events(), 10u);
}

TEST_F(StoreReplayTest, RecorderStoresOversizedChunkPrefix) {
  // One decoded chunk can exceed the whole queue bound; the fitting
  // prefix must be stored, not the entire chunk dropped.
  store::RecorderConfig rcfg;
  rcfg.log.dir = dir();
  rcfg.max_queued_events = 8;
  store::Recorder recorder(rcfg);
  recorder.set_paused(true);
  std::vector<core::Event> big(20);
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = core::Event{static_cast<Real>(i) * 1e-3, 1, 0};
  }
  recorder.offer(big);
  recorder.set_paused(false);
  recorder.close();
  const auto s = recorder.stats();
  EXPECT_EQ(s.offered, 20u);
  EXPECT_EQ(s.written, 8u);
  EXPECT_EQ(s.dropped, 12u);
  store::LogReader r(dir());
  const auto stored = r.read_all();
  ASSERT_EQ(stored.size(), 8u);
  EXPECT_DOUBLE_EQ(stored[7].time_s, big[7].time_s);  // the prefix
}

TEST_F(StoreReplayTest, RecorderSurfacesWriterErrors) {
  store::RecorderConfig rcfg;
  rcfg.log.dir = dir();
  store::Recorder recorder(rcfg);
  const core::Event good{1.0, 1, 0};
  const core::Event stale{0.5, 1, 0};  // violates the log's time order
  recorder.offer({&good, 1});
  recorder.flush();
  recorder.offer({&stale, 1});
  EXPECT_THROW(recorder.close(), std::invalid_argument);
  const auto s = recorder.stats();
  EXPECT_EQ(s.written, 1u);
  EXPECT_EQ(s.dropped, 1u);
  // Even on the error path close() finalized the tail segment: the log
  // is readable without crash recovery, and close() is now a no-op.
  EXPECT_EQ(s.segments_finalized, 1u);
  store::LogReader log(dir());
  ASSERT_EQ(log.segments().size(), 1u);
  EXPECT_TRUE(log.segments()[0].header.finalized);
  EXPECT_EQ(log.total_events(), 1u);
  recorder.close();
}

}  // namespace
