// Deterministic fault injection and graceful degradation: the same fault
// seed must reproduce the exact same fault sequence — retry/drop/
// quarantine counts and the degraded envelope, bit for bit — while every
// layer survives its faults observably instead of dying on the first one
// (Recorder: retry + counted drop-and-continue; SessionManager:
// quarantine + stall watchdog; streaming receiver: flagged envelope-hold).

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <thread>

#include "config/factory.hpp"
#include "config/scenario.hpp"
#include "fault/fault.hpp"
#include "runtime/faulty_session.hpp"
#include "fault/file_io.hpp"
#include "fault/health.hpp"
#include "runtime/session.hpp"
#include "sim/stream_parity.hpp"
#include "store/log.hpp"
#include "store/recorder.hpp"

namespace {

namespace fs = std::filesystem;
using datc::dsp::Real;
using namespace datc;

// ------------------------------------------------------- fault primitives

TEST(FaultPrimitivesTest, HashIsDeterministicAndInRange) {
  for (std::uint64_t n = 0; n < 1000; ++n) {
    EXPECT_EQ(fault::mix64(42, n), fault::mix64(42, n));
    const Real u = fault::hash01(42, n);
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    EXPECT_EQ(u, fault::hash01(42, n));
  }
  EXPECT_NE(fault::mix64(42, 0), fault::mix64(42, 1));
  EXPECT_NE(fault::mix64(42, 0), fault::mix64(43, 0));
}

TEST(FaultPrimitivesTest, DerivedSeedsSeparateStreams) {
  fault::FaultPlan plan;
  plan.seed = 99;
  EXPECT_NE(plan.store_seed(), plan.seed);
  EXPECT_NE(plan.store_seed(), plan.session_seed(0));
  EXPECT_NE(plan.session_seed(0), plan.session_seed(1));
  // Stable across invocations (it keys every determinism guarantee).
  EXPECT_EQ(plan.store_seed(), fault::derive_seed(99, "store"));
}

TEST(FaultPrimitivesTest, FaultStreamCopiesReplay) {
  fault::FaultStream a(7);
  std::vector<Real> first;
  for (int i = 0; i < 16; ++i) first.push_back(a.next01());
  fault::FaultStream b(7);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(b.next01(), first[i]);
}

// --------------------------------------------------------- faulty file io

TEST(FaultyIoTest, DecisionStreamIsDeterministic) {
  fault::StoreFaultSpec spec;
  spec.write_fail_prob = 0.2;
  spec.fsync_fail_prob = 0.1;
  const auto run = [&spec] {
    fault::FaultyFileIo io(spec, /*seed=*/555);
    for (int n = 0; n < 500; ++n) {
      std::size_t written = 0;
      try {
        io.check_op(/*is_sync=*/n % 10 == 9, 128, &written);
      } catch (const fault::IoError&) {
      }
    }
    return io.stats();
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.ops, 500u);
  EXPECT_GT(a.short_writes + a.sync_failures, 0u);
  EXPECT_EQ(a.short_writes, b.short_writes);
  EXPECT_EQ(a.sync_failures, b.sync_failures);
  EXPECT_EQ(a.enospc_failures, b.enospc_failures);
}

TEST(FaultyIoTest, EnospcWindowFailsExactlyTheWindowOps) {
  fault::StoreFaultSpec spec;
  spec.enospc_every_ops = 8;
  spec.enospc_window_ops = 2;
  fault::FaultyFileIo io(spec, 1);
  for (int n = 0; n < 32; ++n) {
    std::size_t written = 0;
    const bool in_window = n % 8 >= 6;
    if (in_window) {
      EXPECT_THROW(io.check_op(false, 64, &written), fault::IoError) << n;
    } else {
      EXPECT_NO_THROW(io.check_op(false, 64, &written)) << n;
    }
  }
  EXPECT_EQ(io.stats().enospc_failures, 8u);
}

TEST(FaultyIoTest, ShortWriteIsTransientAndReportsTornPrefix) {
  fault::StoreFaultSpec spec;
  spec.write_fail_prob = 1.0;
  fault::FaultyFileIo io(spec, 3);
  std::size_t written = 999;
  try {
    io.check_op(false, 100, &written);
    FAIL() << "expected an injected short write";
  } catch (const fault::IoError& e) {
    EXPECT_TRUE(e.transient());
    EXPECT_EQ(written, 50u);  // a prefix landed, then the op failed
  }
}

// ------------------------------------------------------ recorder degraded

class FaultStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("datc_fault_test_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] std::string dir(const char* sub = "") const {
    return (dir_ / sub).string();
  }

  fs::path dir_;
};

std::vector<core::Event> monotone_events(std::size_t n) {
  std::vector<core::Event> ev(n);
  for (std::size_t i = 0; i < n; ++i) {
    ev[i] = core::Event{static_cast<Real>(i) * 1e-4, 1, 0};
  }
  return ev;
}

store::Recorder::Stats record_through_faults(const std::string& dir,
                                             const fault::StoreFaultSpec& spec,
                                             std::uint64_t seed,
                                             std::size_t n_events,
                                             std::size_t max_retries = 4) {
  store::RecorderConfig rcfg;
  rcfg.log.dir = dir;
  rcfg.log.io = std::make_shared<fault::FaultyFileIo>(spec, seed);
  // Queue far larger than the offer so overflow drops (which depend on
  // thread timing) never occur: every drop is an I/O-degradation drop,
  // and the counts are deterministic.
  rcfg.max_queued_events = 1u << 20;
  rcfg.max_io_retries = max_retries;
  rcfg.io_backoff_initial_ms = 0.01;
  rcfg.io_backoff_max_ms = 0.05;
  store::Recorder recorder(rcfg);
  const auto events = monotone_events(n_events);
  // Offer in several chunks (chunk boundaries must not affect op indices).
  for (std::size_t pos = 0; pos < events.size(); pos += 333) {
    const std::size_t n = std::min<std::size_t>(333, events.size() - pos);
    recorder.offer(std::span<const core::Event>(events.data() + pos, n));
  }
  recorder.close();
  return recorder.stats();
}

TEST_F(FaultStoreTest, OfferedEqualsWrittenPlusDroppedUnderIoFaults) {
  fault::StoreFaultSpec spec;
  spec.write_fail_prob = 0.15;
  spec.fsync_fail_prob = 0.1;
  const auto s = record_through_faults(dir("a"), spec, 777, 4000);
  EXPECT_EQ(s.offered, 4000u);
  EXPECT_EQ(s.offered, s.written + s.dropped);
  EXPECT_GT(s.io_errors, 0u);
  EXPECT_GT(s.io_retries, 0u);
  EXPECT_FALSE(s.last_error.empty());
  // Transient faults at 15 % with 4 retries: nearly everything survives.
  EXPECT_GT(s.written, 3900u);
}

TEST_F(FaultStoreTest, SameFaultSeedReproducesIdenticalIoCounts) {
  fault::StoreFaultSpec spec;
  spec.write_fail_prob = 0.3;
  spec.fsync_fail_prob = 0.2;
  spec.enospc_every_ops = 512;
  spec.enospc_window_ops = 8;
  const auto a = record_through_faults(dir("a"), spec, 4242, 2500);
  const auto b = record_through_faults(dir("b"), spec, 4242, 2500);
  EXPECT_EQ(a.written, b.written);
  EXPECT_EQ(a.dropped, b.dropped);
  EXPECT_EQ(a.io_errors, b.io_errors);
  EXPECT_EQ(a.io_retries, b.io_retries);
  EXPECT_EQ(a.io_dropped, b.io_dropped);
  const auto c = record_through_faults(dir("c"), spec, 4243, 2500);
  EXPECT_NE(a.io_errors, c.io_errors);  // the seed is the lever
}

TEST_F(FaultStoreTest, EnospcBlackoutDropsEverythingButRecorderSurvives) {
  fault::StoreFaultSpec spec;
  spec.enospc_every_ops = 1;  // every op inside the window: total blackout
  spec.enospc_window_ops = 1;
  const auto s = record_through_faults(dir("a"), spec, 1, 60,
                                       /*max_retries=*/1);
  EXPECT_EQ(s.offered, 60u);
  EXPECT_EQ(s.written, 0u);
  EXPECT_EQ(s.dropped, 60u);
  EXPECT_EQ(s.io_dropped, 60u);
  EXPECT_NE(s.last_error.find("ENOSPC"), std::string::npos);
}

TEST_F(FaultStoreTest, DegradedLogRemainsReadable) {
  fault::StoreFaultSpec spec;
  spec.write_fail_prob = 0.4;
  const auto s = record_through_faults(dir("a"), spec, 99, 1000);
  EXPECT_EQ(s.offered, s.written + s.dropped);
  // Whatever was written survived torn writes bit-exactly (positional
  // retries overwrite the torn prefix) and reads back CRC-clean.
  store::LogReader log(dir("a"));
  EXPECT_TRUE(log.verify());
  EXPECT_EQ(log.total_events(), s.written);
}

TEST_F(FaultStoreTest, DestructorCountsSwallowedCloseErrors) {
  const auto before = store::Recorder::destructor_close_errors();
  {
    store::RecorderConfig rcfg;
    rcfg.log.dir = dir("a");
    store::Recorder recorder(rcfg);
    const core::Event good{1.0, 1, 0};
    const core::Event stale{0.5, 1, 0};  // time-order logic error
    recorder.offer({&good, 1});
    recorder.flush();
    recorder.offer({&stale, 1});
    // Destroyed without close(): the destructor must swallow the pending
    // writer error (it cannot throw) but count it.
  }
  EXPECT_EQ(store::Recorder::destructor_close_errors(), before + 1);
}

// ------------------------------------------------------ manifest parsing

void write_manifest_text(const std::string& dir, const std::string& text) {
  std::ofstream f((fs::path(dir) / "manifest.txt").string());
  f << text;
}

std::string manifest_error(const std::string& dir, const std::string& text) {
  write_manifest_text(dir, text);
  try {
    (void)store::read_manifest(dir);
  } catch (const std::invalid_argument& e) {
    return e.what();
  }
  return "";
}

constexpr char kGoodManifest[] =
    "analog_fs_hz=2500\nduration_s=2\nwindow_s=0.25\ndac_vref=1\n"
    "dac_bits=4\ncount_fs_hz=2000\nband_lo_hz=20\nband_hi_hz=450\n"
    "channel=3\n";

TEST_F(FaultStoreTest, ManifestRejectsMalformedLineWithLineNumber) {
  const auto err = manifest_error(
      dir(), std::string(kGoodManifest) + "this is not a key value pair\n");
  EXPECT_NE(err.find(":10:"), std::string::npos) << err;
  EXPECT_NE(err.find("expected `key=value`"), std::string::npos) << err;
}

TEST_F(FaultStoreTest, ManifestRejectsDuplicateKeyCitingBothLines) {
  const auto err = manifest_error(
      dir(), std::string(kGoodManifest) + "channel=4\n");
  EXPECT_NE(err.find(":10:"), std::string::npos) << err;
  EXPECT_NE(err.find("duplicate key 'channel'"), std::string::npos) << err;
  EXPECT_NE(err.find("line 9"), std::string::npos) << err;
}

TEST_F(FaultStoreTest, ManifestRejectsMissingKey) {
  // A truncated manifest must fail loudly, never yield silent defaults.
  const auto err = manifest_error(dir(), "analog_fs_hz=2500\n");
  EXPECT_NE(err.find("missing key"), std::string::npos) << err;
}

TEST_F(FaultStoreTest, ManifestRejectsBadNumbersAndUnknownKeys) {
  auto err = manifest_error(
      dir(),
      "analog_fs_hz=fast\nduration_s=2\nwindow_s=0.25\ndac_vref=1\n"
      "dac_bits=4\ncount_fs_hz=2000\nband_lo_hz=20\nband_hi_hz=450\n"
      "channel=3\n");
  EXPECT_NE(err.find(":1:"), std::string::npos) << err;
  EXPECT_NE(err.find("not a number"), std::string::npos) << err;

  err = manifest_error(
      dir(), std::string(kGoodManifest) + "flux_capacitance=88\n");
  EXPECT_NE(err.find("unknown key 'flux_capacitance'"), std::string::npos)
      << err;

  err = manifest_error(
      dir(),
      "analog_fs_hz=2500\nduration_s=2\nwindow_s=0.25\ndac_vref=1\n"
      "dac_bits=-4\ncount_fs_hz=2000\nband_lo_hz=20\nband_hi_hz=450\n"
      "channel=3\n");
  EXPECT_NE(err.find("non-negative integer"), std::string::npos) << err;
}

TEST_F(FaultStoreTest, ManifestGoodFileStillParses) {
  write_manifest_text(dir(), kGoodManifest);
  const auto m = store::read_manifest(dir());
  EXPECT_DOUBLE_EQ(m.analog_fs_hz, 2500.0);
  EXPECT_EQ(m.dac_bits, 4u);
  EXPECT_EQ(m.channel, 3u);
}

// ------------------------------------------------------- faulty sessions

/// Minimal inner session: counts deliveries and captures samples.
class CapturingSession final : public runtime::Session {
 public:
  void push_chunk(std::span<const Real> samples_v) override {
    ++chunks;
    samples.insert(samples.end(), samples_v.begin(), samples_v.end());
  }
  void finish() override { finished = true; }

  std::size_t chunks{0};
  bool finished{false};
  std::vector<Real> samples;
};

TEST(FaultySessionTest, SameSeedSameFaults) {
  fault::SessionFaultSpec spec;
  spec.chunk_drop_prob = 0.3;
  spec.chunk_dup_prob = 0.2;
  const std::vector<Real> chunk(8, 0.1);
  const auto run = [&](std::uint64_t seed) {
    auto inner = std::make_unique<CapturingSession>();
    auto* raw = inner.get();
    runtime::FaultySession session(std::move(inner), spec, seed);
    for (int i = 0; i < 300; ++i) session.push_chunk(chunk);
    session.finish();
    return std::pair<runtime::SessionFaultStats, std::size_t>(session.stats(),
                                                            raw->chunks);
  };
  const auto [a, delivered_a] = run(1234);
  const auto [b, delivered_b] = run(1234);
  EXPECT_EQ(a.chunks_dropped, b.chunks_dropped);
  EXPECT_EQ(a.chunks_duplicated, b.chunks_duplicated);
  EXPECT_EQ(delivered_a, delivered_b);
  EXPECT_GT(a.chunks_dropped, 0u);
  EXPECT_GT(a.chunks_duplicated, 0u);
  // Delivery accounting: every surviving chunk once, duplicates twice.
  EXPECT_EQ(delivered_a,
            300u - a.chunks_dropped + a.chunks_duplicated);
  const auto [c, delivered_c] = run(77);
  EXPECT_NE(delivered_a, delivered_c);  // different seed, different chaos
}

TEST(FaultySessionTest, PoisonThrowsIntoTheCaller) {
  fault::SessionFaultSpec spec;
  spec.chunk_poison_prob = 1.0;
  runtime::FaultySession session(std::make_unique<CapturingSession>(), spec, 5);
  const std::vector<Real> chunk(4, 0.0);
  EXPECT_THROW(session.push_chunk(chunk), std::runtime_error);
  EXPECT_EQ(session.stats().chunks_poisoned, 1u);
}

TEST(FaultySessionTest, SensorDropoutZeroesADeterministicSlice) {
  fault::SessionFaultSpec spec;
  spec.sensor_dropout_prob = 1.0;
  auto inner = std::make_unique<CapturingSession>();
  auto* raw = inner.get();
  runtime::FaultySession session(std::move(inner), spec, 9);
  const std::vector<Real> chunk(100, 0.5);
  session.push_chunk(chunk);
  const auto zeros = static_cast<std::size_t>(
      std::count(raw->samples.begin(), raw->samples.end(), 0.0));
  EXPECT_EQ(session.stats().sensor_dropout_bursts, 1u);
  EXPECT_EQ(session.stats().samples_corrupted, zeros);
  EXPECT_GT(zeros, 0u);
  EXPECT_LT(zeros, 100u);  // a burst, not the whole chunk
}

TEST(FaultySessionTest, SensorSaturationClipsToTheRails) {
  fault::SessionFaultSpec spec;
  spec.sensor_saturate_prob = 1.0;
  spec.sensor_rail_v = 0.9;
  auto inner = std::make_unique<CapturingSession>();
  auto* raw = inner.get();
  runtime::FaultySession session(std::move(inner), spec, 11);
  std::vector<Real> chunk(64);
  for (std::size_t i = 0; i < chunk.size(); ++i) {
    chunk[i] = (i % 2 == 0) ? 0.1 : -0.1;
  }
  session.push_chunk(chunk);
  std::size_t railed = 0;
  for (const Real v : raw->samples) {
    if (v == 0.9 || v == -0.9) ++railed;
  }
  EXPECT_EQ(session.stats().samples_corrupted, railed);
  EXPECT_GT(railed, 0u);
}

// -------------------------------------------------- manager fault domains

/// Throws on the Nth chunk; counts deliveries before that.
class ThrowingSession final : public runtime::Session {
 public:
  explicit ThrowingSession(std::size_t throw_on) : throw_on_(throw_on) {}
  void push_chunk(std::span<const Real>) override {
    if (++chunks >= throw_on_) {
      throw std::runtime_error("injected session failure");
    }
  }
  void finish() override { finished = true; }

  std::size_t chunks{0};
  bool finished{false};

 private:
  std::size_t throw_on_;
};

class SleepingSession final : public runtime::Session {
 public:
  void push_chunk(std::span<const Real>) override {
    std::this_thread::sleep_for(std::chrono::milliseconds(80));
  }
  void finish() override {}
};

TEST(SessionManagerFaultTest, QuarantineIsolatesTheFailingSession) {
  runtime::SessionManager manager(
      {.jobs = 2, .max_pending_chunks = 2, .rethrow_on_drain = false});
  auto bad = std::make_unique<ThrowingSession>(3);
  std::vector<CapturingSession*> healthy;
  std::vector<runtime::SessionManager::SessionId> ids;
  ids.push_back(manager.add(std::move(bad)));
  for (int c = 0; c < 3; ++c) {
    auto s = std::make_unique<CapturingSession>();
    healthy.push_back(s.get());
    ids.push_back(manager.add(std::move(s)));
  }
  const std::vector<Real> chunk(16, 0.0);
  for (int i = 0; i < 10; ++i) {
    for (const auto id : ids) manager.submit_chunk(id, chunk);
  }
  for (const auto id : ids) manager.submit_finish(id);
  manager.drain();

  // The failing session is quarantined with its error surfaced...
  const auto bad_health = manager.health(ids[0]);
  EXPECT_TRUE(bad_health.quarantined);
  EXPECT_NE(bad_health.error.find("injected session failure"),
            std::string::npos);
  EXPECT_EQ(manager.quarantined_count(), 1u);
  // ...while every healthy session processed its full stream untouched.
  for (std::size_t c = 0; c < healthy.size(); ++c) {
    EXPECT_EQ(healthy[c]->chunks, 10u) << c;
    EXPECT_TRUE(healthy[c]->finished) << c;
    EXPECT_FALSE(manager.health(ids[c + 1]).quarantined) << c;
  }
  // Submissions to a quarantined session are counted, never thrown.
  const auto before = manager.health(ids[0]).chunks_discarded;
  manager.submit_chunk(ids[0], chunk);
  EXPECT_EQ(manager.health(ids[0]).chunks_discarded, before + 1);
}

TEST(SessionManagerFaultTest, DrainStillRethrowsByDefault) {
  runtime::SessionManager manager({.jobs = 2, .max_pending_chunks = 2});
  const auto id = manager.add(std::make_unique<ThrowingSession>(1));
  const std::vector<Real> chunk(4, 0.0);
  manager.submit_chunk(id, chunk);
  EXPECT_THROW(manager.drain(), std::runtime_error);
  manager.drain();  // error consumed; the manager stays usable
  EXPECT_TRUE(manager.health(id).quarantined);
}

TEST(SessionManagerFaultTest, WatchdogFlagsAStalledStrand) {
  runtime::SessionManager manager({.jobs = 2,
                                   .max_pending_chunks = 2,
                                   .rethrow_on_drain = false,
                                   .stall_timeout_s = 0.02});
  const auto slow = manager.add(std::make_unique<SleepingSession>());
  const auto fast = manager.add(std::make_unique<CapturingSession>());
  const std::vector<Real> chunk(4, 0.0);
  manager.submit_chunk(slow, chunk);
  manager.submit_chunk(fast, chunk);
  manager.drain();
  EXPECT_TRUE(manager.health(slow).stall_flagged);
  EXPECT_FALSE(manager.health(fast).stall_flagged);
  // Observation only: the stalled strand was never interrupted.
  EXPECT_FALSE(manager.health(slow).quarantined);
}

// --------------------------------------------------- decode-health monitor

TEST(DecodeHealthTest, DisabledMonitorNeverTrips) {
  fault::DecodeHealthMonitor mon(fault::LinkHealthConfig{});
  mon.observe(1.0, 0, 100);
  mon.observe(100.0, 0, 0);
  EXPECT_TRUE(mon.healthy());
  EXPECT_EQ(mon.trips(), 0u);
}

TEST(DecodeHealthTest, StarvationArmsOnFirstEventThenTripsAndRecovers) {
  fault::LinkHealthConfig cfg;
  cfg.starvation_s = 0.5;
  fault::DecodeHealthMonitor mon(cfg);
  // A silent lead-in (nothing decoded yet) must not trip.
  mon.observe(2.0, 0, 0);
  EXPECT_TRUE(mon.healthy());
  mon.observe(2.1, 3, 0);  // first events: the check arms
  EXPECT_TRUE(mon.healthy());
  mon.observe(2.4, 0, 0);  // 0.3 s of silence: within budget
  EXPECT_TRUE(mon.healthy());
  mon.observe(2.8, 0, 0);  // 0.7 s: starved
  EXPECT_FALSE(mon.healthy());
  EXPECT_STREQ(mon.reason(), "starved");
  EXPECT_EQ(mon.trips(), 1u);
  mon.observe(2.9, 1, 0);  // events return: recovery
  EXPECT_TRUE(mon.healthy());
  EXPECT_STREQ(mon.reason(), "ok");
  EXPECT_EQ(mon.trips(), 1u);
}

TEST(DecodeHealthTest, BadRateTripsOnlyPastMinObservations) {
  fault::LinkHealthConfig cfg;
  cfg.bad_rate = 0.3;
  cfg.window_s = 1.0;
  cfg.min_observations = 8;
  fault::DecodeHealthMonitor mon(cfg);
  // 1 good + 2 bad is over the rate but under min_observations.
  mon.observe(0.1, 1, 2);
  EXPECT_TRUE(mon.healthy());
  // Push the window past the floor with a bad majority: storm.
  mon.observe(0.2, 2, 6);
  EXPECT_FALSE(mon.healthy());
  EXPECT_STREQ(mon.reason(), "bad-rate");
  // Time slides the bad burst out of the window; clean traffic recovers.
  mon.observe(1.5, 8, 0);
  EXPECT_TRUE(mon.healthy());
  EXPECT_EQ(mon.trips(), 1u);
}

// ------------------------------------------------- envelope-hold sessions

core::CalibrationPtr test_calibration() {
  static const core::CalibrationPtr cal = [] {
    core::RateCalibrationConfig c;
    c.count_fs_hz = 2000.0;
    c.num_samples = 100000;
    return std::make_shared<core::RateCalibration>(c);
  }();
  return cal;
}

TEST(EnvelopeHoldTest, StarvationHoldsEnvelopeDeterministically) {
  emg::RecordingSpec rspec;
  rspec.seed = 808;
  rspec.duration_s = 3.0;
  rspec.gain_v = 0.4;
  rspec.name = "hold-test";
  auto rec = emg::make_recording(rspec);
  // Kill the middle second of signal: a dead sensor starves the decoder.
  auto& samples = rec.emg_v.samples();
  const auto lo = static_cast<std::size_t>(1.0 * rspec.sample_rate_hz);
  const auto hi = static_cast<std::size_t>(2.0 * rspec.sample_rate_hz);
  for (std::size_t i = lo; i < hi && i < samples.size(); ++i) {
    samples[i] = 0.0;
  }

  const sim::EvalConfig eval;
  sim::LinkConfig link;
  link.seed = 17;
  link.channel.distance_m = 0.6;  // a link that actually closes
  link.channel.ref_loss_db = 30.0;
  auto cfg = sim::make_session_config(eval, link, test_calibration());
  cfg.health.starvation_s = 0.3;

  const auto run = [&] {
    runtime::StreamingSession session(cfg, 0);
    std::vector<Real> arv;
    for (std::size_t pos = 0; pos < samples.size(); pos += 256) {
      const std::size_t n = std::min<std::size_t>(256, samples.size() - pos);
      session.push_chunk(std::span<const Real>(samples.data() + pos, n));
      session.drain_arv(arv);
    }
    session.finish();
    session.drain_arv(arv);
    return std::pair<std::vector<Real>, runtime::SessionReport>(
        arv, session.report());
  };

  const auto [arv_a, report_a] = run();
  EXPECT_GE(report_a.health_trips, 1u);
  EXPECT_GT(report_a.arv_held, 0u);
  // During the hold the envelope is pinned, not garbage: the held samples
  // all equal the last good value (a constant run exists in the output).
  // And the degraded run is bit-identical across executions.
  const auto [arv_b, report_b] = run();
  ASSERT_EQ(arv_a.size(), arv_b.size());
  for (std::size_t i = 0; i < arv_a.size(); ++i) {
    ASSERT_EQ(arv_a[i], arv_b[i]) << "degraded ARV diverged at " << i;
  }
  EXPECT_EQ(report_a.arv_held, report_b.arv_held);
  EXPECT_EQ(report_a.events_quarantined, report_b.events_quarantined);
  EXPECT_EQ(report_a.health_trips, report_b.health_trips);

  // The same stream with the monitor off reconstructs everywhere (no
  // held samples) — the monitor is the only thing that held it.
  auto plain_cfg = cfg;
  plain_cfg.health = fault::LinkHealthConfig{};
  runtime::StreamingSession plain(plain_cfg, 0);
  plain.push_chunk(samples);
  plain.finish();
  const auto plain_report = plain.report();
  EXPECT_EQ(plain_report.arv_held, 0u);
  EXPECT_EQ(plain_report.health_trips, 0u);
}

// ------------------------------------------------------- chaos-soak preset

TEST_F(FaultStoreTest, ChaosSoakPresetDegradesDeterministically) {
  // The CI chaos gate: the chaos-soak preset (store + chunk + sensor
  // faults, lossy link, health monitor armed) must run to completion,
  // keep the accounting invariants, and produce bit-identical degraded
  // output and fault counts across two runs with the same fault seed.
  auto spec = config::make_preset("chaos-soak");
  config::set_scenario_key(spec, "source.duration_s", "3");
  const config::PipelineFactory factory(spec);
  ASSERT_TRUE(spec.has_faults());
  const auto recording = factory.make_recording(0);
  const auto& samples = recording.emg_v.samples();
  const auto plan = factory.fault_plan();

  struct RunResult {
    std::vector<Real> arv;
    runtime::SessionFaultStats session_faults;
    runtime::SessionReport report;
    store::Recorder::Stats store_stats;
  };
  const auto run = [&](const std::string& store_dir) {
    auto inner = factory.make_streaming_session(0);
    auto* streaming = inner.get();
    runtime::FaultySession session(std::move(inner), plan.session,
                                 plan.session_seed(0));
    auto rcfg = factory.recorder_config(store_dir);
    rcfg.max_queued_events = 1u << 20;  // overflow drops are timing-bound
    rcfg.io_backoff_initial_ms = 0.01;
    rcfg.io_backoff_max_ms = 0.05;
    store::Recorder recorder(rcfg);
    streaming->set_event_tee(
        [&recorder](std::span<const core::Event> ev) { recorder.offer(ev); });

    RunResult r;
    const std::size_t chunk = spec.session.chunk_samples;
    for (std::size_t pos = 0; pos < samples.size(); pos += chunk) {
      const std::size_t n = std::min(chunk, samples.size() - pos);
      session.push_chunk(std::span<const Real>(samples.data() + pos, n));
      streaming->drain_arv(r.arv);
    }
    session.finish();
    streaming->drain_arv(r.arv);
    recorder.close();
    r.session_faults = session.stats();
    r.report = streaming->report();
    r.store_stats = recorder.stats();
    return r;
  };

  const auto a = run(dir("a"));
  const auto b = run(dir("b"));

  // The chaos actually bit: faults fired at every layer.
  EXPECT_GT(a.session_faults.chunks_dropped + a.session_faults.chunks_duplicated,
            0u);
  EXPECT_GT(a.session_faults.samples_corrupted, 0u);
  EXPECT_GT(a.store_stats.io_errors, 0u);
  EXPECT_EQ(a.store_stats.offered, a.store_stats.written + a.store_stats.dropped);

  // Determinism: same fault seed, same degradation — bit for bit.
  ASSERT_EQ(a.arv.size(), b.arv.size());
  for (std::size_t i = 0; i < a.arv.size(); ++i) {
    ASSERT_EQ(a.arv[i], b.arv[i]) << "chaos ARV diverged at " << i;
  }
  EXPECT_EQ(a.session_faults.chunks_dropped, b.session_faults.chunks_dropped);
  EXPECT_EQ(a.session_faults.chunks_duplicated,
            b.session_faults.chunks_duplicated);
  EXPECT_EQ(a.session_faults.chunks_stalled, b.session_faults.chunks_stalled);
  EXPECT_EQ(a.session_faults.samples_corrupted,
            b.session_faults.samples_corrupted);
  EXPECT_EQ(a.report.events_rx, b.report.events_rx);
  EXPECT_EQ(a.report.events_quarantined, b.report.events_quarantined);
  EXPECT_EQ(a.report.arv_held, b.report.arv_held);
  EXPECT_EQ(a.store_stats.written, b.store_stats.written);
  EXPECT_EQ(a.store_stats.dropped, b.store_stats.dropped);
  EXPECT_EQ(a.store_stats.io_errors, b.store_stats.io_errors);
  EXPECT_EQ(a.store_stats.io_retries, b.store_stats.io_retries);
}

}  // namespace
