// Sweep-driver acceptance: axis parsing, cross-product expansion order,
// parallel == serial determinism, and the one-report-schema contract
// across link topologies.

#include <gtest/gtest.h>

#include "config/scenario.hpp"
#include "config/scenario_grid.hpp"

namespace datc {
namespace {

config::ScenarioSpec fast_base() {
  config::ScenarioSpec spec;
  spec.name = "grid-test";
  config::set_scenario_key(spec, "source.model", "noise");
  config::set_scenario_key(spec, "source.duration_s", "1");
  return spec;
}

TEST(ScenarioGridTest, ParsesAxes) {
  const auto axes =
      config::parse_axes("channels=1,8,64; link.distance_m = 0.2, 1.0");
  ASSERT_EQ(axes.size(), 2u);
  EXPECT_EQ(axes[0].key, "source.channels");
  EXPECT_EQ(axes[0].values, (std::vector<std::string>{"1", "8", "64"}));
  EXPECT_EQ(axes[1].key, "link.distance_m");
  EXPECT_EQ(axes[1].values, (std::vector<std::string>{"0.2", "1.0"}));
  EXPECT_TRUE(config::parse_axes("").empty());
  EXPECT_THROW(config::parse_axes("warp=1,2"), config::ScenarioError);
  EXPECT_THROW(config::parse_axes("channels"), config::ScenarioError);
  EXPECT_THROW(config::parse_axes("channels=1,,2"), config::ScenarioError);
}

TEST(ScenarioGridTest, ExpandsCrossProductRowMajor) {
  config::ScenarioGridConfig cfg;
  cfg.base = fast_base();
  cfg.axes = config::parse_axes("channels=1,2; distance=0.3,1.0");
  cfg.jobs = 1;
  const auto result = config::run_scenario_grid(cfg);
  ASSERT_EQ(result.points.size(), 4u);
  EXPECT_EQ(result.points[0].overrides,
            "source.channels=1 link.distance_m=0.3");
  EXPECT_EQ(result.points[1].overrides,
            "source.channels=1 link.distance_m=1.0");
  EXPECT_EQ(result.points[2].overrides,
            "source.channels=2 link.distance_m=0.3");
  EXPECT_EQ(result.points[3].overrides,
            "source.channels=2 link.distance_m=1.0");
  EXPECT_EQ(result.points[0].channels, 1u);
  EXPECT_EQ(result.points[3].channels, 2u);
  for (const auto& p : result.points) {
    EXPECT_EQ(p.scenario, "grid-test");
    EXPECT_EQ(p.topology, "private");
    EXPECT_GT(p.events_tx, 0u);
  }
}

TEST(ScenarioGridTest, ParallelGridMatchesSerial) {
  config::ScenarioGridConfig cfg;
  cfg.base = fast_base();
  cfg.axes = config::parse_axes("channels=1,2; distance=0.3,1.2");
  cfg.jobs = 1;
  const auto serial = config::run_scenario_grid(cfg);
  cfg.jobs = 4;
  const auto parallel = config::run_scenario_grid(cfg);
  ASSERT_EQ(serial.points.size(), parallel.points.size());
  for (std::size_t i = 0; i < serial.points.size(); ++i) {
    const auto& a = serial.points[i];
    const auto& b = parallel.points[i];
    EXPECT_EQ(a.overrides, b.overrides);
    EXPECT_EQ(a.events_tx, b.events_tx);
    EXPECT_EQ(a.events_rx, b.events_rx);
    EXPECT_EQ(a.pulses_tx, b.pulses_tx);
    EXPECT_EQ(a.mean_rx_correlation_pct, b.mean_rx_correlation_pct);
    EXPECT_EQ(a.min_rx_correlation_pct, b.min_rx_correlation_pct);
  }
}

TEST(ScenarioGridTest, SharedTopologyFillsTheSameSchema) {
  auto base = fast_base();
  config::set_scenario_key(base, "channels", "4");
  config::set_scenario_key(base, "topology", "shared");
  const auto report = config::run_scenario(base);
  EXPECT_EQ(report.topology, "shared");
  EXPECT_EQ(report.channels, 4u);
  EXPECT_GT(report.events_tx, 0u);
  EXPECT_GT(report.events_rx, 0u);
  EXPECT_LE(report.events_rx + report.events_dropped,
            report.events_tx + 64u);  // spurious decodes are rare but legal
  EXPECT_GT(report.mean_rx_correlation_pct, 0.0);
  EXPECT_LE(report.min_rx_correlation_pct, report.mean_rx_correlation_pct);
}

TEST(ScenarioGridTest, InvalidGridPointFailsFastNamingThePoint) {
  config::ScenarioGridConfig cfg;
  cfg.base = fast_base();
  cfg.axes = config::parse_axes("erasure_prob=0.0,1.5");
  try {
    (void)config::run_scenario_grid(cfg);
    FAIL() << "expected ScenarioError";
  } catch (const config::ScenarioError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("link.erasure_prob=1.5"), std::string::npos) << what;
  }
}

}  // namespace
}  // namespace datc
