// Block-mode hot paths: the fused encode kernel, the arena-sinked
// templated encoders and Dtc::run_frames must be bit-identical to their
// per-cycle reference implementations for any chunking of the input.

#include <random>

#include <gtest/gtest.h>

#include "core/datc_encoder.hpp"
#include "core/dtc.hpp"
#include "core/event_arena.hpp"
#include "core/streaming.hpp"
#include "emg/dataset.hpp"

namespace {

using datc::dsp::Real;
using namespace datc;

dsp::TimeSeries test_signal(std::uint64_t seed, Real duration_s = 4.0,
                            Real gain_v = 0.35) {
  emg::RecordingSpec spec;
  spec.seed = seed;
  spec.gain_v = gain_v;
  spec.duration_s = duration_s;
  return emg::make_recording(spec).emg_v;
}

void expect_same_events(const core::EventStream& a, const core::EventStream& b,
                        const char* label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (std::size_t i = 0; i < a.size(); ++i) {
    // Bit-identical, not merely close: the block kernel must evaluate the
    // same expressions as the reference.
    EXPECT_EQ(a[i].time_s, b[i].time_s) << label << " i=" << i;
    EXPECT_EQ(a[i].vth_code, b[i].vth_code) << label << " i=" << i;
  }
}

class BlockEncodeTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BlockEncodeTest, EventsOnlyFastPathMatchesReference) {
  const auto sig = test_signal(GetParam());
  const core::DatcEncoderConfig cfg;
  const auto reference = core::encode_datc(sig, cfg);
  const auto fast = core::encode_datc_events(sig, cfg);
  expect_same_events(fast, reference.events, "encode_datc_events");
}

TEST_P(BlockEncodeTest, ArenaReusedAcrossRecordsMatchesReference) {
  const core::DatcEncoderConfig cfg;
  core::EventArena arena;
  for (const std::uint64_t seed : {GetParam(), GetParam() + 100}) {
    const auto sig = test_signal(seed, 2.0);
    const auto reference = core::encode_datc(sig, cfg);
    const std::size_t n = core::encode_datc_events(sig, cfg, arena);
    EXPECT_EQ(n, arena.size());
    expect_same_events(arena.to_stream(), reference.events, "arena reuse");
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BlockEncodeTest,
                         ::testing::Values(3, 17, 42, 99));

TEST(BlockEncode, HysteresisAndOffsetComparator) {
  const auto sig = test_signal(7);
  core::DatcEncoderConfig cfg;
  cfg.comparator.hysteresis_v = 0.04;
  cfg.comparator.offset_v = -0.01;
  const auto reference = core::encode_datc(sig, cfg);
  const auto fast = core::encode_datc_events(sig, cfg);
  expect_same_events(fast, reference.events, "hysteresis+offset");
}

TEST(BlockEncode, NonDefaultFrameAndDacBits) {
  const auto sig = test_signal(11);
  core::DatcEncoderConfig cfg;
  cfg.dtc.frame = core::FrameSize::k200;
  cfg.dtc.dac_bits = 5;
  const auto reference = core::encode_datc(sig, cfg);
  const auto fast = core::encode_datc_events(sig, cfg);
  expect_same_events(fast, reference.events, "frame50 dac5");
}

TEST(BlockEncode, EmptySignal) {
  core::EventArena arena;
  EXPECT_EQ(core::encode_datc_events(dsp::TimeSeries{},
                                     core::DatcEncoderConfig{}, arena),
            0u);
}

TEST(StreamingBlockPath, ArenaSinkOddChunksMatchBatch) {
  const auto sig = test_signal(23);
  const core::DatcEncoderConfig cfg;
  const auto batch = core::encode_datc(sig, cfg);

  core::EventArena arena;
  core::StreamingDatcEncoderT<core::ArenaSink> enc(cfg, sig.sample_rate_hz(),
                                                   core::ArenaSink{&arena});
  // Feed deliberately awkward chunk sizes (1, prime, large, remainder).
  const auto& x = sig.samples();
  std::size_t i = 0;
  const std::size_t chunks[] = {1, 7, 97, 1003, 4096};
  std::size_t c = 0;
  while (i < x.size()) {
    const std::size_t len = std::min(chunks[c % 5], x.size() - i);
    enc.push_block(std::span<const Real>(x.data() + i, len));
    i += len;
    ++c;
  }
  expect_same_events(arena.to_stream(), batch.events, "odd chunks");
  EXPECT_EQ(enc.cycles(), batch.num_cycles);
  EXPECT_EQ(enc.events_emitted(), batch.events.size());
}

TEST(StreamingBlockPath, BlockMatchesSampleBySample) {
  const auto sig = test_signal(31, 2.0);
  const core::DatcEncoderConfig cfg;

  core::EventArena by_sample;
  core::StreamingDatcEncoderT<core::ArenaSink> ea(cfg, sig.sample_rate_hz(),
                                                  core::ArenaSink{&by_sample});
  for (const Real v : sig.samples()) ea.push(v);

  core::EventArena by_block;
  core::StreamingDatcEncoderT<core::ArenaSink> eb(cfg, sig.sample_rate_hz(),
                                                  core::ArenaSink{&by_block});
  eb.push_block(sig.view());

  expect_same_events(by_block.to_stream(), by_sample.to_stream(),
                     "block vs sample");
}

TEST(StreamingBlockPath, MetastableComparatorFallsBackToReference) {
  // A stochastic comparator forces the per-cycle path; behaviour must stay
  // deterministic given the comparator's own Rng... the streaming encoder
  // constructs the comparator without an Rng, so metastable_prob > 0 throws
  // from the Comparator precondition. Assert the precondition holds.
  core::DatcEncoderConfig cfg;
  cfg.comparator.metastable_prob = 0.5;
  cfg.comparator.metastable_window_v = 0.01;
  EXPECT_THROW(core::encode_datc_events(test_signal(1, 1.0), cfg),
               std::invalid_argument);
}

TEST(DtcRunFrames, MatchesStepLoop) {
  std::mt19937_64 gen(12345);
  std::vector<std::uint8_t> bits(9973);  // prime length: frames straddle
  for (auto& b : bits) b = (gen() & 3u) == 0 ? 1 : 0;

  for (const auto frame : {core::FrameSize::k100, core::FrameSize::k200,
                           core::FrameSize::k400}) {
    core::DtcConfig cfg;
    cfg.frame = frame;
    core::Dtc reference(cfg);
    core::Dtc block(cfg);

    std::vector<std::uint8_t> ref_events(bits.size());
    std::size_t ref_count = 0;
    for (std::size_t k = 0; k < bits.size(); ++k) {
      const auto s = reference.step(bits[k] != 0);
      ref_events[k] = s.event ? 1 : 0;
      ref_count += s.event;
    }

    std::vector<std::uint8_t> blk_events(bits.size());
    // Split the block run at odd boundaries to exercise state carry-over.
    std::size_t done = 0;
    std::size_t events = 0;
    const std::size_t cuts[] = {1, 130, 977, 2048, bits.size()};
    for (const std::size_t cut : cuts) {
      const std::size_t hi = std::min(cut, bits.size());
      if (hi <= done) continue;
      events += block.run_frames(
          std::span<const std::uint8_t>(bits.data() + done, hi - done),
          blk_events.data() + done);
      done = hi;
    }
    events += block.run_frames(
        std::span<const std::uint8_t>(bits.data() + done, bits.size() - done),
        blk_events.data() + done);

    EXPECT_EQ(events, ref_count);
    EXPECT_EQ(blk_events, ref_events);
    EXPECT_EQ(block.set_vth(), reference.set_vth());
    EXPECT_EQ(block.current_count(), reference.current_count());
    EXPECT_EQ(block.n_one3(), reference.n_one3());
    EXPECT_EQ(block.n_one2(), reference.n_one2());
    EXPECT_EQ(block.n_one1(), reference.n_one1());

    // Continued stepping after a block run stays in lockstep.
    for (std::size_t k = 0; k < 500; ++k) {
      const bool d = (k / 5) % 3 == 0;
      EXPECT_EQ(block.step(d).set_vth, reference.step(d).set_vth) << k;
    }
  }
}

TEST(EventArena, ReserveAndReuse) {
  core::EventArena arena(128);
  EXPECT_GE(arena.capacity(), 128u);
  const auto* data_before = arena.events().data();
  for (int i = 0; i < 100; ++i) {
    arena(core::Event{static_cast<Real>(i), 1, 0});
  }
  EXPECT_EQ(arena.size(), 100u);
  EXPECT_EQ(arena.events().data(), data_before) << "no reallocation expected";
  arena.clear();
  EXPECT_TRUE(arena.empty());
  EXPECT_GE(arena.capacity(), 128u) << "clear keeps the allocation";
  auto stream = arena.take_stream();
  EXPECT_TRUE(stream.empty());
}

TEST(EventStream, ReserveAndTake) {
  core::EventStream s;
  s.reserve(64);
  EXPECT_GE(s.capacity(), 64u);
  s.add(0.25, 3);
  auto v = s.take();
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].vth_code, 3);
}

}  // namespace
