// Runtime SIMD dispatch: every backend available on this host must
// produce BIT-IDENTICAL results to the scalar reference — decoded event
// streams, reconstructed envelopes and the raw kernel outputs — across
// the chunk-size x link-mode stream-parity matrix, and the batched RNG
// fills must draw the exact per-call sequence with the identical engine
// end-state. Backends the host cannot run are skipped (not passed): the
// CI matrix shows which lanes actually executed.

#include <bit>
#include <cmath>
#include <cstdint>
#include <gtest/gtest.h>
#include <span>
#include <vector>

#include "core/datc_encoder.hpp"
#include "core/event_arena.hpp"
#include "core/streaming_reconstruct.hpp"
#include "dsp/rng.hpp"
#include "emg/evaluation.hpp"
#include "sim/stream_parity.hpp"
#include "simd/dispatch.hpp"
#include "uwb/link_pipeline.hpp"

namespace {

using datc::dsp::Real;
using namespace datc;

core::CalibrationPtr test_calibration() {
  static const core::CalibrationPtr cal = [] {
    core::RateCalibrationConfig c;
    c.count_fs_hz = 2000.0;
    c.num_samples = 100000;
    return std::make_shared<core::RateCalibration>(c);
  }();
  return cal;
}

emg::Recording test_recording(std::uint64_t seed) {
  emg::RecordingSpec spec;
  spec.seed = seed;
  spec.duration_s = 2.0;
  spec.gain_v = 0.4;
  spec.name = "simd-ch" + std::to_string(seed);
  return emg::make_recording(spec);
}

sim::LinkConfig noisy_link(std::uint64_t seed) {
  sim::LinkConfig link;
  link.seed = seed;
  link.channel.distance_m = 0.6;
  link.channel.ref_loss_db = 30.0;
  link.channel.erasure_prob = 0.05;  // mixed per-pulse jitter path
  return link;
}

sim::LinkConfig clean_link(std::uint64_t seed) {
  auto link = noisy_link(seed);
  link.channel.erasure_prob = 0.0;  // batched fill_gaussian jitter path
  return link;
}

/// Restores the dispatched backend when a test exits (even on failure).
class BackendGuard {
 public:
  BackendGuard() : saved_(simd::kernels().backend) {}
  ~BackendGuard() { simd::force_backend(saved_); }

 private:
  simd::Backend saved_;
};

bool events_bitwise_equal(const core::EventStream& a,
                          const core::EventStream& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto& ea = a.events()[i];
    const auto& eb = b.events()[i];
    if (std::bit_cast<std::uint64_t>(ea.time_s) !=
            std::bit_cast<std::uint64_t>(eb.time_s) ||
        ea.vth_code != eb.vth_code || ea.channel != eb.channel) {
      return false;
    }
  }
  return true;
}

/// Encode -> link -> streaming reconstruction on the CURRENT backend.
struct PipelineOutput {
  core::EventStream tx;
  core::EventStream rx;
  std::vector<Real> arv;
};

PipelineOutput run_pipeline(const emg::Recording& rec,
                            const emg::EvalConfig& eval,
                            const sim::LinkConfig& link) {
  PipelineOutput out;
  core::EventArena arena;
  core::encode_datc_events(rec.emg_v, emg::datc_encoder_config(eval), arena);
  out.tx = arena.take_stream();
  out.rx = uwb::run_datc_over_link(out.tx, link, eval.dtc.dac_bits,
                                   /*cache_detection=*/true)
               .events_rx;
  core::StreamingDatcReconstructor recon(
      emg::datc_reconstruction_config(eval), test_calibration());
  recon.push_events(std::span<const core::Event>(out.rx.events()));
  recon.finish(rec.emg_v.duration_s());
  recon.drain(out.arv);
  return out;
}

// ------------------------------------------------------- backend matrix

class SimdBackendMatrixTest
    : public ::testing::TestWithParam<simd::Backend> {
 protected:
  void SetUp() override {
    if (!simd::backend_available(GetParam())) {
      GTEST_SKIP() << simd::backend_name(GetParam())
                   << " backend unavailable on this host";
    }
  }
};

// The full streaming == batch sweep under backend forcing: both link
// modes (erasure exercises the per-pulse RNG path, clean the batched
// fill), several chunkings including whole-record.
TEST_P(SimdBackendMatrixTest, StreamParityAcrossChunkSizesAndLinkModes) {
  BackendGuard guard;
  simd::force_backend(GetParam());
  const auto rec = test_recording(811);
  const sim::EvalConfig eval;
  for (const std::size_t chunk : {std::size_t{0}, std::size_t{64},
                                  std::size_t{257}, std::size_t{1000}}) {
    for (const bool noisy : {true, false}) {
      const auto link = noisy ? noisy_link(17) : clean_link(17);
      const auto r = sim::check_stream_parity(rec.emg_v, eval, link,
                                              test_calibration(), chunk);
      EXPECT_TRUE(r.events_equal)
          << simd::backend_name(GetParam()) << " chunk " << chunk
          << (noisy ? " noisy" : " clean") << ": decoded events diverged ("
          << r.events_batch << " batch vs " << r.events_stream << ")";
      EXPECT_TRUE(r.arv_equal)
          << simd::backend_name(GetParam()) << " chunk " << chunk
          << (noisy ? " noisy" : " clean") << ": max ARV diff "
          << r.max_abs_arv_diff;
    }
  }
}

TEST_P(SimdBackendMatrixTest, SharedAerStreamParity) {
  BackendGuard guard;
  simd::force_backend(GetParam());
  const sim::EvalConfig eval;
  std::vector<dsp::TimeSeries> chans;
  for (std::uint64_t s : {901, 902, 903}) {
    chans.push_back(test_recording(s).emg_v);
  }
  const sim::SharedAerConfig shared{};
  const auto r = sim::check_shared_stream_parity(
      chans, eval, noisy_link(29), shared, test_calibration(), 512);
  EXPECT_TRUE(r.identical())
      << simd::backend_name(GetParam()) << ": shared-AER parity broke";
}

// The fused block encoder against the per-cycle reference encoder.
TEST_P(SimdBackendMatrixTest, BlockEncodeMatchesReferenceEncoder) {
  BackendGuard guard;
  simd::force_backend(GetParam());
  const auto rec = test_recording(812);
  const emg::EvalConfig eval;
  const auto cfg = emg::datc_encoder_config(eval);
  const auto ref = core::encode_datc(rec.emg_v, cfg);
  core::EventArena arena;
  core::encode_datc_events(rec.emg_v, cfg, arena);
  EXPECT_TRUE(events_bitwise_equal(arena.take_stream(), ref.events));
}

// fill_gaussian must draw the exact per-call sequence — any batch split
// and the engine end-state included (the spare cache carries across).
TEST_P(SimdBackendMatrixTest, RngFillMatchesPerCallDraws) {
  BackendGuard guard;
  simd::force_backend(GetParam());
  constexpr std::uint64_t kSeed = 20260808;
  constexpr std::size_t kN = 1537;  // odd: ends mid polar pair

  dsp::Rng per_call(kSeed);
  std::vector<Real> expected(kN);
  for (auto& v : expected) v = per_call.gaussian_bm();

  dsp::Rng whole(kSeed);
  std::vector<Real> batch(kN);
  whole.fill_gaussian(batch);
  EXPECT_EQ(batch, expected);

  dsp::Rng split(kSeed);
  std::vector<Real> head(611);
  std::vector<Real> tail(kN - head.size());
  split.fill_gaussian(head);
  split.fill_gaussian(tail);
  head.insert(head.end(), tail.begin(), tail.end());
  EXPECT_EQ(head, expected);

  // End-state: all three streams must continue identically.
  const Real next = per_call.canonical();
  EXPECT_EQ(whole.canonical(), next);
  EXPECT_EQ(split.canonical(), next);

  dsp::Rng uni_ref(kSeed);
  dsp::Rng uni_fill(kSeed);
  std::vector<Real> uni(kN);
  uni_fill.fill_uniform(uni);
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(uni[i], uni_ref.canonical()) << "uniform draw " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Backends, SimdBackendMatrixTest,
    ::testing::Values(simd::Backend::scalar, simd::Backend::avx2,
                      simd::Backend::neon),
    [](const ::testing::TestParamInfo<simd::Backend>& param) {
      return simd::backend_name(param.param);
    });

// --------------------------------------------- cross-backend equality

// Whole pipeline, every non-scalar backend vs the scalar reference:
// decoded events and the reconstructed envelope bit for bit.
TEST(SimdCrossBackendTest, PipelineBitIdenticalToScalar) {
  BackendGuard guard;
  const auto rec = test_recording(813);
  const sim::EvalConfig eval;
  const auto link = noisy_link(41);

  simd::force_backend(simd::Backend::scalar);
  const auto ref = run_pipeline(rec, eval, link);
  ASSERT_GT(ref.tx.size(), 0u);
  ASSERT_GT(ref.rx.size(), 0u);
  ASSERT_GT(ref.arv.size(), 0u);

  for (const auto b : {simd::Backend::avx2, simd::Backend::neon}) {
    if (!simd::backend_available(b)) continue;
    simd::force_backend(b);
    const auto got = run_pipeline(rec, eval, link);
    EXPECT_TRUE(events_bitwise_equal(got.tx, ref.tx))
        << simd::backend_name(b) << ": encoded stream diverged";
    EXPECT_TRUE(events_bitwise_equal(got.rx, ref.rx))
        << simd::backend_name(b) << ": decoded stream diverged";
    ASSERT_EQ(got.arv.size(), ref.arv.size());
    for (std::size_t i = 0; i < ref.arv.size(); ++i) {
      ASSERT_EQ(std::bit_cast<std::uint64_t>(got.arv[i]),
                std::bit_cast<std::uint64_t>(ref.arv[i]))
          << simd::backend_name(b) << ": ARV sample " << i;
    }
  }
}

// Raw kernel outputs on synthetic operands, vector tables vs scalar.
TEST(SimdCrossBackendTest, KernelOutputsBitIdenticalToScalar) {
  constexpr std::size_t kN = 259;  // odd tail exercises remainder loops
  std::vector<Real> u(kN), v(kN), s(kN), a(kN), hi(kN), lo(kN);
  dsp::Rng rng(99);
  for (std::size_t i = 0; i < kN; ++i) {
    // Polar-tail operands: s in (0, 1), (u, v) inside the unit disc.
    Real x = 0.0;
    Real y = 0.0;
    Real m = 0.0;
    do {
      x = 2.0 * rng.canonical() - 1.0;
      y = 2.0 * rng.canonical() - 1.0;
      m = x * x + y * y;
    } while (m >= 1.0 || m == 0.0);
    u[i] = x;
    v[i] = y;
    s[i] = m;
    a[i] = 4.0 * rng.canonical() - 2.0;
    hi[i] = 10.0 * rng.canonical();
    lo[i] = 10.0 * rng.canonical();
  }

  const auto& scalar = simd::detail::scalar_table();
  std::vector<Real> z0_ref(kN), z1_ref(kN), sq_ref(kN), wd_ref(kN);
  scalar.gauss_tail(u.data(), v.data(), s.data(), z0_ref.data(),
                    z1_ref.data(), kN);
  scalar.square_scale(sq_ref.data(), a.data(), 0.37, kN);
  scalar.window_diff(wd_ref.data(), hi.data(), lo.data(), kN);

  for (const auto b : {simd::Backend::avx2, simd::Backend::neon}) {
    if (!simd::backend_available(b)) continue;
    const auto& kt = b == simd::Backend::avx2 ? simd::detail::avx2_table()
                                              : simd::detail::neon_table();
    std::vector<Real> z0(kN), z1(kN), sq(kN), wd(kN);
    kt.gauss_tail(u.data(), v.data(), s.data(), z0.data(), z1.data(), kN);
    kt.square_scale(sq.data(), a.data(), 0.37, kN);
    kt.window_diff(wd.data(), hi.data(), lo.data(), kN);
    for (std::size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(std::bit_cast<std::uint64_t>(z0[i]),
                std::bit_cast<std::uint64_t>(z0_ref[i]))
          << kt.name << " gauss_tail z0[" << i << "]";
      ASSERT_EQ(std::bit_cast<std::uint64_t>(z1[i]),
                std::bit_cast<std::uint64_t>(z1_ref[i]))
          << kt.name << " gauss_tail z1[" << i << "]";
      ASSERT_EQ(std::bit_cast<std::uint64_t>(sq[i]),
                std::bit_cast<std::uint64_t>(sq_ref[i]))
          << kt.name << " square_scale[" << i << "]";
      ASSERT_EQ(std::bit_cast<std::uint64_t>(wd[i]),
                std::bit_cast<std::uint64_t>(wd_ref[i]))
          << kt.name << " window_diff[" << i << "]";
    }
  }
}

}  // namespace
