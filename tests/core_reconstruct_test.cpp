// Receiver-side machinery: rate calibration (Rice-curve measurement and
// inversion), event-rate estimation, and the three decode paths.

#include <cmath>
#include <gtest/gtest.h>

#include "core/datc_encoder.hpp"
#include "core/rate_calibration.hpp"
#include "core/reconstruct.hpp"
#include "dsp/envelope.hpp"
#include "dsp/rng.hpp"
#include "dsp/stats.hpp"
#include "emg/dataset.hpp"

namespace {

using datc::dsp::Real;
using namespace datc;

core::RateCalibrationConfig fast_cal(Real count_fs = 2000.0) {
  core::RateCalibrationConfig c;
  c.count_fs_hz = count_fs;
  c.num_samples = 100000;
  return c;
}

TEST(RateCalibration, TailIsMonotoneDecreasing) {
  const core::RateCalibration cal(fast_cal());
  const auto& rates = cal.rates();
  const auto& us = cal.u_grid();
  ASSERT_EQ(rates.size(), us.size());
  // Find the peak, then require non-increase beyond it.
  std::size_t peak = 0;
  for (std::size_t i = 1; i < rates.size(); ++i) {
    if (rates[i] > rates[peak]) peak = i;
  }
  for (std::size_t i = peak + 1; i < rates.size(); ++i) {
    EXPECT_LE(rates[i], rates[i - 1]);
  }
  EXPECT_GT(cal.max_rate_hz(), 50.0);  // sane crossing rates for the band
  EXPECT_LT(cal.max_rate_hz(), 1000.0);
}

TEST(RateCalibration, InversionRoundTrip) {
  const core::RateCalibration cal(fast_cal());
  // For u on the decreasing branch, u_for_rate(rate_for_u(u)) ~ u.
  for (const Real u : {1.5, 2.0, 2.5, 3.0, 4.0}) {
    const Real r = cal.rate_for_u(u);
    if (r <= 0.0) continue;  // beyond measurable tail
    EXPECT_NEAR(cal.u_for_rate(r), u, 0.15) << "u=" << u;
  }
}

TEST(RateCalibration, ExtremeRatesClamp) {
  const core::RateCalibration cal(fast_cal());
  EXPECT_NEAR(cal.u_for_rate(1e9), cal.u_for_rate(cal.max_rate_hz()), 1e-9);
  EXPECT_DOUBLE_EQ(cal.u_for_rate(0.0), cal.u_grid().back());
}

TEST(RateCalibration, HigherThresholdFewerCrossings) {
  const core::RateCalibration cal(fast_cal());
  EXPECT_GT(cal.rate_for_u(1.0), cal.rate_for_u(2.0));
  EXPECT_GT(cal.rate_for_u(2.0), cal.rate_for_u(3.5));
}

TEST(RateCalibration, Validation) {
  auto cfg = fast_cal();
  cfg.band_hi_hz = 2000.0;  // above Nyquist of 2500
  EXPECT_THROW(core::RateCalibration c(cfg), std::invalid_argument);
  cfg = fast_cal();
  cfg.grid_points = 2;
  EXPECT_THROW(core::RateCalibration c(cfg), std::invalid_argument);
  cfg = fast_cal();
  cfg.u_min = -1.0;
  EXPECT_THROW(core::RateCalibration c(cfg), std::invalid_argument);
}

TEST(EventRate, UniformEventsGiveFlatRate) {
  core::EventStream ev;
  for (int i = 0; i < 200; ++i) ev.add(0.05 + 0.01 * i);  // 100 Hz for 2 s
  const auto rate = core::event_rate_estimate(ev, 2.0, 0.2, 100.0);
  // Mid-record windows hold ~20 events / 0.2 s = 100 Hz.
  for (std::size_t i = 40; i < rate.size() - 40; ++i) {
    EXPECT_NEAR(rate[i], 100.0, 8.0);
  }
}

TEST(EventRate, EdgeWindowsNormalisedByOverlap) {
  core::EventStream ev;
  for (int i = 0; i < 100; ++i) ev.add(0.005 + 0.01 * i);  // 100 Hz, 1 s
  const auto rate = core::event_rate_estimate(ev, 1.0, 0.2, 100.0);
  // The very first estimate uses only half a window but must still read
  // ~100 Hz thanks to the overlap normalisation.
  EXPECT_NEAR(rate.front(), 100.0, 15.0);
  EXPECT_NEAR(rate.back(), 100.0, 15.0);
}

TEST(EventRate, WindowIsHalfOpenAtExactBoundaries) {
  // The counting window is [t - w/2, t + w/2): an event exactly on the
  // lower edge is counted, one exactly on the upper edge is not. fs = 10,
  // w = 0.2 puts the edges of the t = 0.5 window at 0.4 and 0.6 exactly.
  core::EventStream ev;
  ev.add(0.4);
  ev.add(0.6);
  const auto rate = core::event_rate_estimate(ev, 1.0, 0.2, 10.0);
  ASSERT_EQ(rate.size(), 10u);
  // t = 0.5: only the 0.4 event lies in [0.4, 0.6).
  EXPECT_DOUBLE_EQ(rate[5], 1.0 / 0.2);
  // t = 0.6: window [0.5, 0.7) picks up exactly the 0.6 event.
  EXPECT_DOUBLE_EQ(rate[6], 1.0 / 0.2);
  // t = 0.3: window [0.2, 0.4) contains neither.
  EXPECT_DOUBLE_EQ(rate[3], 0.0);
}

TEST(EventRate, RecordBoundaryEventsAndTruncatedWindows) {
  // Events exactly at t = 0 and exactly at the record end, with windows
  // truncated by both edges and normalised by the overlap.
  core::EventStream ev;
  ev.add(0.0);
  ev.add(1.0);  // exactly at duration
  const auto rate = core::event_rate_estimate(ev, 1.0, 0.2, 10.0);
  ASSERT_EQ(rate.size(), 10u);
  // t = 0: window [-0.1, 0.1) overlaps the record on [0, 0.1) only; the
  // t = 0 event is inside, so the normalised rate is 1 / 0.1.
  EXPECT_DOUBLE_EQ(rate[0], 1.0 / 0.1);
  // t = 0.9: window [0.8, 1.0) excludes the event AT the duration (the
  // upper edge is open), so the mid-record normalisation applies.
  EXPECT_DOUBLE_EQ(rate[9], 0.0);
  // t = 0.5: no events at all mid-record.
  EXPECT_DOUBLE_EQ(rate[5], 0.0);
}

TEST(EventRate, RequiresSortedEvents) {
  core::EventStream ev;
  ev.add(0.5);
  ev.add(0.1);
  EXPECT_THROW((void)core::event_rate_estimate(ev, 1.0, 0.1, 100.0),
               std::invalid_argument);
}

TEST(Reconstructors, NullCalibrationRejected) {
  core::ReconstructionConfig rc;
  EXPECT_THROW(core::AtcReconstructor r(0.3, rc, nullptr),
               std::invalid_argument);
  EXPECT_THROW(core::DatcReconstructor r(rc, nullptr),
               std::invalid_argument);
}

class ReconstructionQualityTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ReconstructionQualityTest, DatcTracksEnvelope) {
  emg::RecordingSpec spec;
  spec.seed = GetParam();
  spec.gain_v = 0.4;
  spec.duration_s = 10.0;
  const auto rec = emg::make_recording(spec);

  const auto tx = core::encode_datc(rec.emg_v, core::DatcEncoderConfig{});
  core::ReconstructionConfig rc;
  auto cal = std::make_shared<core::RateCalibration>(fast_cal(2000.0));
  const core::DatcReconstructor recon(rc, cal);
  const auto est = recon.reconstruct(tx.events, rec.emg_v.duration_s());
  const auto truth = dsp::arv_envelope(rec.emg_v.view(), 2500.0, 0.25);
  const std::size_t n = std::min(est.size(), truth.size());
  const Real corr = dsp::correlation_percent(
      std::span<const Real>(truth.data(), n),
      std::span<const Real>(est.data(), n));
  EXPECT_GT(corr, 90.0) << "seed=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReconstructionQualityTest,
                         ::testing::Values(11, 22, 33, 44));

TEST(Reconstructors, DatcDecodeModesBothWork) {
  emg::RecordingSpec spec;
  spec.seed = 5;
  spec.gain_v = 0.4;
  spec.duration_s = 8.0;
  const auto rec = emg::make_recording(spec);
  const auto tx = core::encode_datc(rec.emg_v, core::DatcEncoderConfig{});
  auto cal = std::make_shared<core::RateCalibration>(fast_cal(2000.0));
  core::ReconstructionConfig rc;
  const auto truth = dsp::arv_envelope(rec.emg_v.view(), 2500.0, 0.25);
  for (const auto mode : {core::DatcDecodeMode::kRateInversion,
                          core::DatcDecodeMode::kCodeDuty}) {
    const core::DatcReconstructor recon(rc, cal, mode);
    const auto est = recon.reconstruct(tx.events, rec.emg_v.duration_s());
    const std::size_t n = std::min(est.size(), truth.size());
    const Real corr = dsp::correlation_percent(
        std::span<const Real>(truth.data(), n),
        std::span<const Real>(est.data(), n));
    EXPECT_GT(corr, 85.0) << "mode=" << static_cast<int>(mode);
  }
}

TEST(Reconstructors, SilentLeadingSegmentUsesOneSidedFloorDuty) {
  // Regression: kCodeDuty's pre-first-event hold used to be seeded from
  // the two-sided duty midpoint while the in-loop inversion uses the
  // one-sided floor interval for codes at/below min_code, biasing the
  // silent leading segment. With no events at all the whole record is
  // that segment; it must sit exactly at the one-sided floor inversion.
  auto cal_cfg = fast_cal(2000.0);
  // Clamp u_max low so the zero-rate disambiguation tail stays ABOVE the
  // floor sigma and the code-duty hold is what reaches the output.
  cal_cfg.u_max = 1.5;
  auto cal = std::make_shared<core::RateCalibration>(cal_cfg);
  core::ReconstructionConfig rc;
  rc.output_fs_hz = 100.0;
  const core::DatcReconstructor recon(rc, cal,
                                      core::DatcDecodeMode::kCodeDuty);
  const auto est = recon.reconstruct(core::EventStream{}, 1.0);
  ASSERT_EQ(est.size(), 100u);

  const Real lsb = rc.dac_vref / 16.0;
  const Real step = (rc.duty_hi - rc.duty_lo) / 15.0;
  // One-sided floor interval [0, level(min_code + 1)): representative
  // duty is half the upper edge.
  const Real one_sided_mid =
      (rc.duty_lo + step * static_cast<Real>(rc.min_code + 1)) / 2.0;
  const Real sigma_floor =
      lsb * static_cast<Real>(rc.min_code) /
      std::max(dsp::normal_q_inv(one_sided_mid / 2.0), Real{1e-6});
  const Real sigma_rate_tail = lsb * static_cast<Real>(rc.min_code) / 1.5;
  ASSERT_LT(sigma_floor, sigma_rate_tail);  // the clamp must not mask it
  const Real expected = 0.7978845608028654 * sigma_floor;
  // The constant hold picks up a few ULPs through the prefix-sum
  // smoother; the two-sided-midpoint bug shifted it by ~12 %.
  for (const Real v : est) {
    ASSERT_NEAR(v, expected, 1e-12);
  }
}

TEST(Reconstructors, VthTrajectoryHoldsLastCode) {
  core::EventStream ev;
  ev.add(0.1, 4);
  ev.add(0.3, 9);
  core::ReconstructionConfig rc;
  rc.output_fs_hz = 100.0;
  auto cal = std::make_shared<core::RateCalibration>(fast_cal(2000.0));
  const core::DatcReconstructor recon(rc, cal);
  const auto vth = recon.vth_trajectory(ev, 0.5);
  ASSERT_EQ(vth.size(), 50u);
  EXPECT_DOUBLE_EQ(vth[0], 1.0 / 16.0);   // reset code before first event
  EXPECT_DOUBLE_EQ(vth[20], 4.0 / 16.0);  // after t=0.1
  EXPECT_DOUBLE_EQ(vth[40], 9.0 / 16.0);  // after t=0.3
}

TEST(Reconstructors, AtcLinearRateIsScaledRate) {
  core::EventStream ev;
  for (int i = 0; i < 100; ++i) ev.add(0.005 + 0.01 * i);
  core::ReconstructionConfig rc;
  rc.output_fs_hz = 100.0;
  auto cal = std::make_shared<core::RateCalibration>(fast_cal(2500.0));
  const core::AtcReconstructor recon(0.3, rc, cal,
                                     core::AtcDecodeMode::kLinearRate);
  const auto est = recon.reconstruct(ev, 1.0);
  // Flat rate -> flat estimate.
  const Real mid = est[est.size() / 2];
  EXPECT_GT(mid, 0.0);
  for (std::size_t i = 30; i < est.size() - 30; ++i) {
    EXPECT_NEAR(est[i], mid, 0.2 * mid);
  }
}

TEST(Reconstructors, AtcBlindBelowThreshold) {
  // No events at all: the linear-rate estimate is identically zero, the
  // Rice-inversion estimate saturates at the calibration floor.
  core::EventStream none;
  core::ReconstructionConfig rc;
  rc.output_fs_hz = 100.0;
  auto cal = std::make_shared<core::RateCalibration>(fast_cal(2500.0));
  const core::AtcReconstructor lin(0.3, rc, cal,
                                   core::AtcDecodeMode::kLinearRate);
  const auto zero = lin.reconstruct(none, 1.0);
  for (const Real v : zero) EXPECT_DOUBLE_EQ(v, 0.0);
  const core::AtcReconstructor rice(0.3, rc, cal,
                                    core::AtcDecodeMode::kRiceInversion);
  const auto floor = rice.reconstruct(none, 1.0);
  for (const Real v : floor) {
    EXPECT_GT(v, 0.0);
    EXPECT_LT(v, 0.1);  // far below the threshold
  }
}

}  // namespace
