// Streaming encoders: sample-by-sample operation must be bit-identical to
// the batch encoders (the property a real-time integration relies on).

#include "core/streaming.hpp"

#include <cmath>
#include <gtest/gtest.h>
#include <numbers>

#include "emg/dataset.hpp"

namespace {

using datc::dsp::Real;
using namespace datc;

dsp::TimeSeries test_signal(std::uint64_t seed, Real duration_s = 4.0) {
  emg::RecordingSpec spec;
  spec.seed = seed;
  spec.gain_v = 0.35;
  spec.duration_s = duration_s;
  return emg::make_recording(spec).emg_v;
}

class StreamingEquivalenceTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StreamingEquivalenceTest, DatcStreamingMatchesBatch) {
  const auto sig = test_signal(GetParam());
  const core::DatcEncoderConfig cfg;
  const auto batch = core::encode_datc(sig, cfg);

  core::EventStream streamed;
  core::StreamingDatcEncoder enc(cfg, sig.sample_rate_hz(),
                                 [&streamed](const core::Event& e) {
                                   streamed.add(e.time_s, e.vth_code);
                                 });
  enc.push_block(sig.view());

  ASSERT_EQ(streamed.size(), batch.events.size());
  for (std::size_t i = 0; i < streamed.size(); ++i) {
    EXPECT_NEAR(streamed[i].time_s, batch.events[i].time_s, 1e-12);
    EXPECT_EQ(streamed[i].vth_code, batch.events[i].vth_code) << "i=" << i;
  }
  EXPECT_EQ(enc.cycles(), batch.num_cycles);
  EXPECT_EQ(enc.events_emitted(), batch.events.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, StreamingEquivalenceTest,
                         ::testing::Values(3, 17, 42, 99));

TEST(StreamingDatc, SampleBySampleEqualsBlock) {
  const auto sig = test_signal(5, 2.0);
  const core::DatcEncoderConfig cfg;
  core::EventStream a;
  core::StreamingDatcEncoder ea(cfg, sig.sample_rate_hz(),
                                [&a](const core::Event& e) {
                                  a.add(e.time_s, e.vth_code);
                                });
  for (const Real v : sig.samples()) ea.push(v);

  core::EventStream b;
  core::StreamingDatcEncoder eb(cfg, sig.sample_rate_hz(),
                                [&b](const core::Event& e) {
                                  b.add(e.time_s, e.vth_code);
                                });
  eb.push_block(sig.view());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].time_s, b[i].time_s);
  }
}

TEST(StreamingDatc, ResetRestartsCleanly) {
  const auto sig = test_signal(7, 2.0);
  const core::DatcEncoderConfig cfg;
  core::EventStream first;
  core::EventStream second;
  core::EventStream* target = &first;
  core::StreamingDatcEncoder enc(cfg, sig.sample_rate_hz(),
                                 [&target](const core::Event& e) {
                                   target->add(e.time_s, e.vth_code);
                                 });
  enc.push_block(sig.view());
  enc.reset();
  EXPECT_EQ(enc.cycles(), 0u);
  target = &second;
  enc.push_block(sig.view());
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_DOUBLE_EQ(first[i].time_s, second[i].time_s);
    EXPECT_EQ(first[i].vth_code, second[i].vth_code);
  }
}

TEST(StreamingDatc, Validation) {
  const core::DatcEncoderConfig cfg;
  EXPECT_THROW(core::StreamingDatcEncoder(cfg, 0.0, [](const core::Event&) {}),
               std::invalid_argument);
  EXPECT_THROW(core::StreamingDatcEncoder(cfg, 2500.0, nullptr),
               std::invalid_argument);
}

class StreamingAtcTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StreamingAtcTest, MatchesBatch) {
  const auto sig = test_signal(GetParam());
  core::AtcEncoderConfig cfg;
  cfg.threshold_v = 0.25;
  cfg.hysteresis_v = 0.02;
  const auto batch = core::encode_atc(sig, cfg);

  core::EventStream streamed;
  core::StreamingAtcEncoder enc(cfg, sig.sample_rate_hz(),
                                [&streamed](const core::Event& e) {
                                  streamed.add(e.time_s);
                                });
  enc.push_block(sig.view());
  ASSERT_EQ(streamed.size(), batch.events.size());
  for (std::size_t i = 0; i < streamed.size(); ++i) {
    EXPECT_NEAR(streamed[i].time_s, batch.events[i].time_s, 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StreamingAtcTest,
                         ::testing::Values(2, 11, 23));

TEST(StreamingAtc, SineEventTimes) {
  // 5 Hz rectified sine, threshold 0.5: two upward crossings per period.
  constexpr Real kTwoPi = 2.0 * std::numbers::pi_v<Real>;
  core::AtcEncoderConfig cfg;
  cfg.threshold_v = 0.5;
  std::vector<Real> times;
  core::StreamingAtcEncoder enc(cfg, 1000.0,
                                [&times](const core::Event& e) {
                                  times.push_back(e.time_s);
                                });
  for (int i = 0; i < 1000; ++i) {
    enc.push(std::sin(kTwoPi * 5.0 * static_cast<Real>(i) / 1000.0));
  }
  EXPECT_EQ(times.size(), 10u);
  // First |sin| crossing of 0.5 at asin(0.5)/(2 pi 5) = 1/60 s.
  EXPECT_NEAR(times.front(), 1.0 / 60.0, 1e-3);
}

}  // namespace
