// The simulated packet-based baseline system: CRC-16, framing, bit
// channel, SFD hunt and waveform recovery.

#include "uwb/packet_baseline.hpp"

#include <cmath>
#include <gtest/gtest.h>

#include "emg/dataset.hpp"
#include "uwb/energy.hpp"

namespace {

using datc::dsp::Real;
using namespace datc;

std::vector<bool> bits_of(std::initializer_list<int> v) {
  std::vector<bool> out;
  for (const int b : v) out.push_back(b != 0);
  return out;
}

TEST(Crc16, KnownVector) {
  // CRC-16/CCITT-FALSE of ASCII "123456789" is 0x29B1.
  std::vector<bool> bits;
  for (const char c : std::string("123456789")) {
    for (int b = 7; b >= 0; --b) bits.push_back((c >> b) & 1);
  }
  EXPECT_EQ(uwb::crc16_ccitt(bits), 0x29B1);
}

TEST(Crc16, DetectsSingleBitFlips) {
  auto bits = bits_of({1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1, 0});
  const auto good = uwb::crc16_ccitt(bits);
  for (std::size_t i = 0; i < bits.size(); ++i) {
    bits[i] = !bits[i];
    EXPECT_NE(uwb::crc16_ccitt(bits), good) << "flip at " << i;
    bits[i] = !bits[i];
  }
}

TEST(PacketBaseline, FrameBitLayout) {
  uwb::PacketBaselineConfig cfg;
  uwb::Frame f;
  f.seq = 7;
  f.samples = {0xABC, 0x123};
  const auto bits = f.to_bits(cfg);
  // SFD(8) + id(8) + seq(8) + 2*12 + crc(16).
  EXPECT_EQ(bits.size(), 8u + 8u + 8u + 24u + 16u);
  // SFD is the first byte, MSB first (0xA7 = 10100111).
  const auto sfd = bits_of({1, 0, 1, 0, 0, 1, 1, 1});
  for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(bits[i], sfd[i]);
}

TEST(PacketBaseline, PacketizeCountsMatchPaperAccounting) {
  emg::RecordingSpec spec;
  spec.seed = 3;
  spec.duration_s = 20.0;
  const auto rec = emg::make_recording(spec);
  uwb::PacketBaselineConfig cfg;
  const auto tx = uwb::packetize(rec.emg_v, cfg);
  // 50 000 samples x 12 bits payload = the paper's 600 000 symbols.
  EXPECT_EQ(tx.payload_bits, 600000u);
  EXPECT_EQ(tx.frames.size(), 3125u);  // 50 000 / 16
  EXPECT_GT(tx.total_bits, tx.payload_bits);
}

uwb::ChannelConfig strong_channel() {
  uwb::ChannelConfig ch;
  ch.distance_m = 0.3;
  ch.ref_loss_db = 30.0;
  return ch;
}

TEST(PacketBaseline, CleanChannelRecoversEverything) {
  emg::RecordingSpec spec;
  spec.seed = 5;
  spec.duration_s = 4.0;
  const auto rec = emg::make_recording(spec);
  uwb::PacketBaselineConfig cfg;
  uwb::PulseShapeConfig shape;
  shape.amplitude_v = 0.5;
  dsp::Rng rng(9);
  uwb::EnergyDetectorConfig det;
  // "Clean" here means the detector is not the limit: with ~72k zero
  // slots in flight even the default 1e-6 false-alarm rate corrupts the
  // odd frame, which is the lossy test's job to exercise.
  det.false_alarm_prob = 1e-12;
  const auto score = uwb::run_packet_baseline(
      rec.emg_v, cfg, det, strong_channel(), shape, rng);
  EXPECT_EQ(score.rx.frames_crc_fail, 0u);
  EXPECT_EQ(score.rx.frames_lost_sync, 0u);
  EXPECT_EQ(score.rx.frames_ok, score.rx.frames_sent);
  // 12-bit quantisation of the waveform: essentially perfect envelope.
  EXPECT_GT(score.correlation_pct, 99.0);
}

TEST(PacketBaseline, ErasuresKillFramesGracefully) {
  emg::RecordingSpec spec;
  spec.seed = 6;
  spec.duration_s = 4.0;
  const auto rec = emg::make_recording(spec);
  uwb::PacketBaselineConfig cfg;
  uwb::PulseShapeConfig shape;
  shape.amplitude_v = 0.5;
  auto ch = strong_channel();
  ch.erasure_prob = 0.002;  // 0.2 % pulse loss -> ~30 % of 232-bit frames hit
  dsp::Rng rng(10);
  const auto score = uwb::run_packet_baseline(
      rec.emg_v, cfg, uwb::EnergyDetectorConfig{}, ch, shape, rng);
  EXPECT_GT(score.rx.frames_crc_fail + score.rx.frames_lost_sync, 0u);
  EXPECT_LT(score.rx.frames_ok, score.rx.frames_sent);
  // Sample-and-hold across lost frames still tracks the envelope.
  EXPECT_GT(score.correlation_pct, 80.0);
}

TEST(PacketBaseline, PartialLastFrameSurvivesFrameLoss) {
  // A record whose length is not a multiple of samples_per_packet ends in
  // a short frame. The decoder must derive every frame's sample count
  // from the received bit length — never from the TX-side frame struct —
  // including on the lost-sync / CRC-fail replay paths.
  uwb::PacketBaselineConfig cfg;
  const std::size_t n_samples = 2 * cfg.samples_per_packet + 5;
  std::vector<Real> wave(n_samples);
  for (std::size_t i = 0; i < n_samples; ++i) {
    wave[i] = 0.4 * std::sin(0.1 * static_cast<Real>(i));
  }
  const dsp::TimeSeries signal(std::move(wave), cfg.tx_sample_rate_hz);
  const auto tx = uwb::packetize(signal, cfg);
  ASSERT_EQ(tx.frames.size(), 3u);
  ASSERT_EQ(tx.frames.back().samples.size(), 5u);

  uwb::PulseShapeConfig shape;
  shape.amplitude_v = 0.5;
  uwb::EnergyDetectorConfig det;
  det.false_alarm_prob = 1e-12;

  // Clean link: the short frame decodes and contributes exactly its own
  // sample count.
  {
    dsp::Rng rng(21);
    const auto rx =
        uwb::transmit_and_decode(tx, cfg, det, strong_channel(), shape, rng);
    EXPECT_EQ(rx.frames_ok, 3u);
    EXPECT_EQ(rx.reconstructed.size(), n_samples);
  }
  // Dead link: every frame loses sync, yet the held replay still lines up
  // sample-for-sample with the record (partial last frame included).
  {
    uwb::ChannelConfig dead = strong_channel();
    dead.distance_m = 50.0;
    dead.path_loss_exponent = 3.0;
    dsp::Rng rng(22);
    const auto rx = uwb::transmit_and_decode(tx, cfg, det, dead, shape, rng);
    EXPECT_EQ(rx.frames_ok, 0u);
    EXPECT_EQ(rx.frames_lost_sync + rx.frames_crc_fail, 3u);
    EXPECT_EQ(rx.reconstructed.size(), n_samples);
  }
}

TEST(PacketBaseline, CrcCatchesChannelErrors) {
  // With bit errors present, no corrupted frame may pass as OK: flip a
  // payload bit manually and confirm the CRC path rejects it.
  uwb::PacketBaselineConfig cfg;
  uwb::Frame f;
  f.seq = 1;
  f.samples.assign(cfg.samples_per_packet, 0x555);
  auto bits = f.to_bits(cfg);
  bits[20] = !bits[20];  // corrupt payload
  std::vector<bool> body(bits.begin() + 8, bits.end() - 16);
  std::uint16_t rx_crc = 0;
  for (std::size_t i = bits.size() - 16; i < bits.size(); ++i) {
    rx_crc = static_cast<std::uint16_t>((rx_crc << 1) | (bits[i] ? 1 : 0));
  }
  EXPECT_NE(uwb::crc16_ccitt(body), rx_crc);
}

TEST(TxEnergy, EventSchemesBeatPacketBaseline) {
  const uwb::TxEnergyConfig cfg;
  const Real duration = 20.0;
  // Paper-scale numbers: ATC 3183 pulses, D-ATC 18620, packets 600k bits.
  const auto atc = uwb::event_tx_energy(3183, duration, cfg, false);
  const auto datc = uwb::event_tx_energy(18620, duration, cfg, true);
  const auto pkt = uwb::packet_tx_energy(600000, duration, cfg);
  EXPECT_LT(atc.total_j, datc.total_j);
  EXPECT_LT(datc.total_j, pkt.total_j / 10.0);
  EXPECT_GT(datc.average_power_w(duration), 0.0);
}

TEST(TxEnergy, Validation) {
  const uwb::TxEnergyConfig cfg;
  EXPECT_THROW((void)uwb::event_tx_energy(1, 0.0, cfg, false),
               std::invalid_argument);
  EXPECT_THROW((void)uwb::packet_tx_energy(1, 1.0, cfg, 2.0),
               std::invalid_argument);
}

}  // namespace
