// Cross-module integration: the paper's system claims exercised through
// the whole stack (dataset -> encoders -> link -> reconstruction), plus
// the multi-channel AER pipeline and the behavioural/RTL/synthesis chain.

#include <gtest/gtest.h>

#include "sim/end_to_end.hpp"
#include "sim/evaluation.hpp"
#include "synth/report.hpp"
#include "dsp/stats.hpp"
#include "uwb/aer.hpp"

namespace {

using datc::dsp::Real;
using namespace datc;

TEST(Integration, FixedThresholdFailsWeakSubjectDatcDoesNot) {
  // A weak-gain recording (thin skin / poor electrode contact): the fixed
  // 0.3 V threshold barely fires while D-ATC adapts — the core Fig. 5
  // story.
  emg::RecordingSpec weak;
  weak.seed = 314159;
  weak.gain_v = 0.16;
  weak.duration_s = 10.0;
  const auto rec = emg::make_recording(weak);
  const sim::Evaluator eval;
  const auto a = eval.atc(rec, 0.3);
  const auto d = eval.datc(rec);
  EXPECT_LT(a.num_events, d.num_events / 3);
  EXPECT_GT(d.correlation_pct, a.correlation_pct + 3.0);
}

TEST(Integration, SymbolOrderingAcrossSchemes) {
  // packet-based >> D-ATC > ATC for any recording (Sec. III-B).
  const auto rec = emg::showcase_recording();
  const sim::Evaluator eval;
  const auto a = eval.atc(rec, 0.3);
  const auto d = eval.datc(rec);
  const auto packet = core::packet_symbols(rec.emg_v.size(), 12);
  EXPECT_GT(packet.total, 10 * d.symbols.total);
  EXPECT_GT(d.symbols.total, a.symbols.total);
}

TEST(Integration, MultichannelAerRoundTrip) {
  // Three electrodes encoded with D-ATC, merged over one AER link,
  // split and reconstructed per channel.
  const sim::Evaluator eval;
  std::vector<emg::Recording> recs;
  std::vector<core::EventStream> streams;
  for (std::uint64_t s = 0; s < 3; ++s) {
    emg::RecordingSpec spec;
    spec.seed = 1000 + s;
    spec.gain_v = 0.35;
    spec.duration_s = 6.0;
    recs.push_back(emg::make_recording(spec));
    core::DatcEncoderConfig enc;
    streams.push_back(core::encode_datc(recs.back().emg_v, enc).events);
  }
  uwb::AerConfig aer;
  aer.min_spacing_s = 0.6e-3;
  uwb::AerStats stats;
  const auto merged = uwb::aer_merge(streams, aer, &stats);
  EXPECT_GT(stats.sent, 0u);
  const auto split = uwb::aer_split(merged, 3);
  for (std::size_t c = 0; c < 3; ++c) {
    // Arbitration may drop a few colliding events but most survive.
    EXPECT_GT(split[c].size(), streams[c].size() * 8 / 10);
    const auto recon =
        eval.reconstruct_datc(split[c], recs[c].emg_v.duration_s());
    const auto truth = eval.ground_truth(recs[c]);
    const std::size_t n = std::min(recon.size(), truth.size());
    EXPECT_GT(dsp::correlation_percent(
                  std::span<const Real>(truth.data(), n),
                  std::span<const Real>(recon.data(), n)),
              88.0)
        << "channel " << c;
  }
}

TEST(Integration, BehaviouralRtlSynthesisChainOnRealStimulus) {
  // The comparator bitstream of a real encoding run drives the RTL DTC;
  // the synthesis report must come back in the paper's regime.
  emg::RecordingSpec spec;
  spec.seed = 2024;
  spec.gain_v = 0.3;
  spec.duration_s = 4.0;
  const auto rec = emg::make_recording(spec);
  const auto tx = core::encode_datc(rec.emg_v, core::DatcEncoderConfig{});
  std::vector<bool> stimulus;
  stimulus.reserve(tx.trace.d_out.size());
  for (const auto b : tx.trace.d_out) stimulus.push_back(b != 0);

  const auto rep = synth::synthesize_dtc(core::DtcConfig{}, stimulus);
  EXPECT_EQ(rep.num_ports, 12u);
  EXPECT_GT(rep.num_cells, 250u);
  EXPECT_LT(rep.num_cells, 1000u);
  EXPECT_GT(rep.power_default.total_nw(), 10.0);
  EXPECT_LT(rep.power_default.total_nw(), 250.0);
  EXPECT_EQ(rep.activity_cycles, stimulus.size());
}

TEST(Integration, FrameSizeTradeoffExists) {
  // Longer frames average more but adapt slower; all frame sizes must
  // still deliver usable correlation on a mid-gain recording.
  emg::RecordingSpec spec;
  spec.seed = 77;
  spec.gain_v = 0.35;
  spec.duration_s = 8.0;
  const auto rec = emg::make_recording(spec);
  for (const auto frame : core::kAllFrameSizes) {
    sim::EvalConfig cfg;
    cfg.dtc.frame = frame;
    const sim::Evaluator eval(cfg);
    const auto d = eval.datc(rec);
    EXPECT_GT(d.correlation_pct, 80.0)
        << "frame=" << core::frame_cycles(frame);
  }
}

TEST(Integration, DacResolutionSweepMonotoneCost) {
  // More DAC bits -> more symbols per event (cost side of the paper's
  // resolution trade-off).
  const auto rec = emg::showcase_recording();
  std::size_t last_symbols_per_event = 0;
  for (const unsigned bits : {2u, 4u, 6u}) {
    sim::EvalConfig cfg;
    cfg.dtc.dac_bits = bits;
    const sim::Evaluator eval(cfg);
    const auto d = eval.datc(rec);
    EXPECT_EQ(d.symbols.symbols_per_event, 1u + bits);
    EXPECT_GT(d.symbols.symbols_per_event, last_symbols_per_event);
    last_symbols_per_event = d.symbols.symbols_per_event;
  }
}

}  // namespace
