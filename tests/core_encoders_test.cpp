// ATC and D-ATC encoders plus the Sec-III-B symbol accounting.

#include <cmath>
#include <gtest/gtest.h>
#include <numbers>

#include "core/atc_encoder.hpp"
#include "core/datc_encoder.hpp"
#include "core/symbols.hpp"
#include "dsp/rng.hpp"

namespace {

using datc::dsp::Real;
using datc::dsp::TimeSeries;
using namespace datc;

constexpr Real kTwoPi = 2.0 * std::numbers::pi_v<Real>;

TimeSeries sine(Real amp, Real f_hz, Real fs_hz, Real duration_s) {
  const auto n = static_cast<std::size_t>(duration_s * fs_hz);
  std::vector<Real> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = amp * std::sin(kTwoPi * f_hz * static_cast<Real>(i) / fs_hz);
  }
  return TimeSeries(std::move(x), fs_hz);
}

TEST(AtcEncoder, SineCrossingCount) {
  // Rectified 10 Hz sine of amplitude 1 crosses 0.5 upward twice per
  // period: 2 * 10 * 2 s = 40 events.
  const auto sig = sine(1.0, 10.0, 2500.0, 2.0);
  core::AtcEncoderConfig cfg;
  cfg.threshold_v = 0.5;
  const auto r = core::encode_atc(sig, cfg);
  EXPECT_EQ(r.events.size(), 40u);
  EXPECT_TRUE(r.events.is_time_sorted());
}

TEST(AtcEncoder, NoEventsBelowThreshold) {
  const auto sig = sine(0.2, 50.0, 2500.0, 1.0);
  core::AtcEncoderConfig cfg;
  cfg.threshold_v = 0.3;
  const auto r = core::encode_atc(sig, cfg);
  EXPECT_TRUE(r.events.empty());
  EXPECT_DOUBLE_EQ(r.duty_cycle, 0.0);
}

TEST(AtcEncoder, InterpolatedTimestamps) {
  // A ramp crossing 0.5 exactly halfway between samples 4 and 5.
  std::vector<Real> x(10, 0.0);
  for (std::size_t i = 5; i < 10; ++i) x[i] = 1.0;
  x[4] = 0.0;  // crossing between index 4 (0.0) and 5 (1.0) at frac 0.5
  TimeSeries sig(std::move(x), 10.0);
  core::AtcEncoderConfig cfg;
  cfg.threshold_v = 0.5;
  const auto r = core::encode_atc(sig, cfg);
  ASSERT_EQ(r.events.size(), 1u);
  EXPECT_NEAR(r.events[0].time_s, 0.45, 1e-12);  // (4 + 0.5)/10
}

TEST(AtcEncoder, DutyCycleMeasured) {
  // Square wave above threshold half the time.
  std::vector<Real> x;
  for (int k = 0; k < 100; ++k) x.push_back(k % 2 ? 1.0 : 0.0);
  TimeSeries sig(std::move(x), 100.0);
  core::AtcEncoderConfig cfg;
  cfg.threshold_v = 0.5;
  const auto r = core::encode_atc(sig, cfg);
  EXPECT_NEAR(r.duty_cycle, 0.5, 0.02);
}

TEST(AtcEncoder, HysteresisReducesChatter) {
  // Noise riding on the threshold: hysteresis must reduce event count.
  dsp::Rng rng(3);
  std::vector<Real> x(5000);
  for (auto& v : x) v = 0.3 + 0.02 * rng.gaussian();
  TimeSeries sig(std::move(x), 2500.0);
  core::AtcEncoderConfig no_hyst;
  no_hyst.threshold_v = 0.3;
  core::AtcEncoderConfig hyst;
  hyst.threshold_v = 0.3;
  hyst.hysteresis_v = 0.05;
  const auto a = core::encode_atc(sig, no_hyst);
  const auto b = core::encode_atc(sig, hyst);
  EXPECT_LT(b.events.size(), a.events.size() / 2);
}

TEST(AtcEncoder, Validation) {
  const auto sig = sine(1.0, 10.0, 100.0, 0.1);
  core::AtcEncoderConfig cfg;
  cfg.threshold_v = 0.0;
  EXPECT_THROW((void)core::encode_atc(sig, cfg), std::invalid_argument);
  cfg.threshold_v = 0.2;
  cfg.hysteresis_v = 0.3;
  EXPECT_THROW((void)core::encode_atc(sig, cfg), std::invalid_argument);
}

TEST(DatcEncoder, TraceShapesConsistent) {
  const auto sig = sine(0.5, 80.0, 2500.0, 2.0);
  const auto r = core::encode_datc(sig, core::DatcEncoderConfig{});
  EXPECT_EQ(r.num_cycles, 4000u);  // 2 s at 2 kHz
  EXPECT_EQ(r.trace.d_out.size(), r.num_cycles);
  EXPECT_EQ(r.trace.set_vth.size(), r.num_cycles);
  EXPECT_EQ(r.trace.frame_ones.size(), 40u);  // 4000 / 100
  EXPECT_EQ(r.trace.frame_vth.size(), 40u);
}

TEST(DatcEncoder, EventsAreRisingEdgesOfTrace) {
  const auto sig = sine(0.5, 80.0, 2500.0, 2.0);
  const auto r = core::encode_datc(sig, core::DatcEncoderConfig{});
  std::size_t edges = 0;
  for (std::size_t k = 1; k < r.trace.d_out.size(); ++k) {
    if (r.trace.d_out[k] == 1 && r.trace.d_out[k - 1] == 0) ++edges;
  }
  // First-cycle rising edge (0 -> d_out[0]==1) would also fire.
  if (!r.trace.d_out.empty() && r.trace.d_out[0] == 1) ++edges;
  EXPECT_EQ(r.events.size(), edges);
}

TEST(DatcEncoder, FrameOnesMatchTraceSum) {
  const auto sig = sine(0.4, 60.0, 2500.0, 1.0);
  const auto r = core::encode_datc(sig, core::DatcEncoderConfig{});
  // Sum of d_out over frame f equals frame_ones[f].
  for (std::size_t f = 0; f < r.trace.frame_ones.size(); ++f) {
    std::uint32_t sum = 0;
    for (std::size_t k = f * 100; k < (f + 1) * 100; ++k) {
      sum += r.trace.d_out[k];
    }
    EXPECT_EQ(sum, r.trace.frame_ones[f]) << "frame " << f;
  }
}

TEST(DatcEncoder, AdaptsThresholdUpForLargeSignal) {
  const auto sig = sine(0.9, 80.0, 2500.0, 2.0);
  const auto r = core::encode_datc(sig, core::DatcEncoderConfig{});
  // After adaptation the code must sit well above the reset floor.
  EXPECT_GT(r.trace.set_vth.back(), 3u);
}

TEST(DatcEncoder, EventCarriesCodeInEffect) {
  const auto sig = sine(0.9, 80.0, 2500.0, 2.0);
  const auto r = core::encode_datc(sig, core::DatcEncoderConfig{});
  ASSERT_FALSE(r.events.empty());
  for (const auto& e : r.events.events()) {
    EXPECT_LE(e.vth_code, 15u);
  }
  // Late events should carry adapted (non-reset) codes.
  EXPECT_GT(r.events.events().back().vth_code, 1u);
}

TEST(DatcEncoder, VthVoltageUsesDacLaw) {
  const auto sig = sine(0.9, 80.0, 2500.0, 1.0);
  const auto r = core::encode_datc(sig, core::DatcEncoderConfig{});
  const auto v = r.vth_voltage();
  ASSERT_EQ(v.size(), r.trace.set_vth.size());
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_DOUBLE_EQ(v[i],
                     static_cast<Real>(r.trace.set_vth[i]) / 16.0);
  }
}

TEST(DatcEncoder, EmptySignal) {
  TimeSeries empty;
  const auto r = core::encode_datc(empty, core::DatcEncoderConfig{});
  EXPECT_TRUE(r.events.empty());
  EXPECT_EQ(r.num_cycles, 0u);
}

// Sec. III-B symbol accounting — the paper's own numbers.
TEST(Symbols, PaperComparisonNumbers) {
  EXPECT_EQ(core::packet_symbols(50000, 12).total, 600000u);
  EXPECT_EQ(core::atc_symbols(3183).total, 3183u);
  EXPECT_EQ(core::atc_symbols(5821).total, 5821u);
  const auto d = core::datc_symbols(3724, 4);
  EXPECT_EQ(d.symbols_per_event, 5u);
  EXPECT_EQ(d.total, 18620u);
}

TEST(Symbols, OverheadModel) {
  core::PacketOverhead oh;  // 40 bits per 16-sample packet
  const auto c = core::packet_symbols_with_overhead(160, 12, oh);
  // 160*12 payload + 10 packets * 40 overhead.
  EXPECT_EQ(c.total, 1920u + 400u);
  oh.samples_per_packet = 0;
  EXPECT_THROW((void)core::packet_symbols_with_overhead(10, 12, oh),
               std::invalid_argument);
}

TEST(Symbols, RateHelper) {
  EXPECT_DOUBLE_EQ(core::symbol_rate_hz(core::atc_symbols(2000), 20.0),
                   100.0);
  EXPECT_THROW((void)core::symbol_rate_hz(core::atc_symbols(1), 0.0),
               std::invalid_argument);
}

}  // namespace
