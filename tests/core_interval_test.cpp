// Interval table (Eqn. 2) — the exact constants the paper lists, for all
// four frame sizes, plus the generalised-resolution construction.

#include "core/interval_table.hpp"

#include <cmath>
#include <gtest/gtest.h>

namespace {

using datc::dsp::Real;
using namespace datc;

TEST(IntervalTable, PaperConstantsFourBit) {
  const core::IntervalTable t;  // 4 bits, 0.03 .. 0.48
  EXPECT_EQ(t.num_levels(), 16u);
  // Eqn. 2: interval_level_k = 0.03 * (k+1) * frame_size.
  for (const auto frame : core::kAllFrameSizes) {
    const Real fsize = static_cast<Real>(core::frame_cycles(frame));
    for (unsigned k = 0; k < 16; ++k) {
      const Real expected = 0.03 * static_cast<Real>(k + 1) * fsize;
      EXPECT_EQ(t.level(frame, k),
                static_cast<std::uint32_t>(std::lround(expected)))
          << "frame=" << fsize << " k=" << k;
    }
  }
  // Spot checks from the paper's text.
  EXPECT_EQ(t.level(core::FrameSize::k100, 15), 48u);   // 0.48 * 100
  EXPECT_EQ(t.level(core::FrameSize::k100, 14), 45u);   // 0.45 * 100
  EXPECT_EQ(t.level(core::FrameSize::k100, 1), 6u);     // 0.06 * 100
  EXPECT_EQ(t.level(core::FrameSize::k100, 0), 3u);     // 0.03 * 100
  EXPECT_EQ(t.level(core::FrameSize::k800, 15), 384u);  // 0.48 * 800
}

TEST(IntervalTable, DutyOfLevelLinear) {
  const core::IntervalTable t;
  EXPECT_NEAR(t.duty_of_level(0), 0.03, 1e-12);
  EXPECT_NEAR(t.duty_of_level(15), 0.48, 1e-12);
  EXPECT_NEAR(t.duty_of_level(7), 0.03 + 7.0 * 0.03, 1e-12);
  EXPECT_THROW((void)t.duty_of_level(16), std::invalid_argument);
}

TEST(IntervalTable, StrictlyIncreasingLevels) {
  for (unsigned bits = 2; bits <= 8; ++bits) {
    const core::IntervalTable t(bits);
    for (const auto frame : core::kAllFrameSizes) {
      for (unsigned k = 1; k < t.num_levels(); ++k) {
        EXPECT_GE(t.level(frame, k), t.level(frame, k - 1))
            << "bits=" << bits << " k=" << k;
      }
      // Strict increase for frames long enough to resolve the duty step.
      if (core::frame_cycles(frame) >= (1u << bits) * 4) {
        for (unsigned k = 1; k < t.num_levels(); ++k) {
          EXPECT_GT(t.level(frame, k), t.level(frame, k - 1));
        }
      }
    }
  }
}

TEST(IntervalTable, RomBitsAccounting) {
  const core::IntervalTable t;
  // 4 frame sizes x 16 levels x 9-bit entries (max value 384 needs 9 bits).
  EXPECT_EQ(t.rom_bits(), 4u * 16u * 9u);
}

TEST(IntervalTable, Validation) {
  EXPECT_THROW(core::IntervalTable(0), std::invalid_argument);
  EXPECT_THROW(core::IntervalTable(9), std::invalid_argument);
  EXPECT_THROW(core::IntervalTable(4, 0.5, 0.4), std::invalid_argument);
  EXPECT_THROW(core::IntervalTable(4, 0.0, 0.5), std::invalid_argument);
}

TEST(Frame, SelectorRoundTrip) {
  for (const auto f : core::kAllFrameSizes) {
    EXPECT_EQ(core::frame_from_selector(core::frame_selector(f)), f);
  }
  EXPECT_THROW((void)core::frame_from_selector(4), std::invalid_argument);
}

TEST(Frame, DurationsAtPaperClock) {
  EXPECT_DOUBLE_EQ(core::frame_duration_s(core::FrameSize::k100, 2000.0),
                   0.05);
  EXPECT_DOUBLE_EQ(core::frame_duration_s(core::FrameSize::k800, 2000.0),
                   0.4);
}

}  // namespace
