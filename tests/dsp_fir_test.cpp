// FIR design and filtering.

#include "dsp/fir.hpp"

#include <cmath>
#include <gtest/gtest.h>
#include <numbers>

#include "dsp/rng.hpp"
#include "dsp/stats.hpp"

namespace {

using datc::dsp::Real;
using namespace datc;

constexpr Real kTwoPi = 2.0 * std::numbers::pi_v<Real>;

Real tone_gain(const std::vector<Real>& taps, Real f_hz, Real fs_hz) {
  // Steady-state amplitude of a filtered tone.
  dsp::FirFilter fir(taps);
  const std::size_t n = 4000;
  Real peak = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const Real y =
        fir.process(std::sin(kTwoPi * f_hz * static_cast<Real>(i) / fs_hz));
    if (i > n / 2) peak = std::max(peak, std::abs(y));
  }
  return peak;
}

TEST(FirDesign, LowpassUnityDcAndStopband) {
  const auto taps = dsp::design_fir_lowpass(63, 200.0, 2500.0);
  Real dc = 0.0;
  for (const Real t : taps) dc += t;
  EXPECT_NEAR(dc, 1.0, 1e-12);
  EXPECT_NEAR(tone_gain(taps, 20.0, 2500.0), 1.0, 0.02);
  EXPECT_LT(tone_gain(taps, 800.0, 2500.0), 0.01);
}

TEST(FirDesign, HighpassBlocksDcPassesHigh) {
  const auto taps = dsp::design_fir_highpass(63, 200.0, 2500.0);
  Real dc = 0.0;
  for (const Real t : taps) dc += t;
  EXPECT_NEAR(dc, 0.0, 1e-9);
  EXPECT_LT(tone_gain(taps, 20.0, 2500.0), 0.05);
  EXPECT_NEAR(tone_gain(taps, 1000.0, 2500.0), 1.0, 0.05);
}

TEST(FirDesign, RejectsBadArguments) {
  EXPECT_THROW((void)dsp::design_fir_lowpass(10, 100.0, 1000.0),
               std::invalid_argument);  // even taps
  EXPECT_THROW((void)dsp::design_fir_lowpass(11, 600.0, 1000.0),
               std::invalid_argument);  // above Nyquist
}

TEST(FirFilter, ImpulseResponseEqualsTaps) {
  const std::vector<Real> taps{0.5, -0.25, 0.125};
  dsp::FirFilter fir(taps);
  std::vector<Real> impulse{1.0, 0.0, 0.0, 0.0};
  const auto y = fir.filter(impulse);
  EXPECT_DOUBLE_EQ(y[0], 0.5);
  EXPECT_DOUBLE_EQ(y[1], -0.25);
  EXPECT_DOUBLE_EQ(y[2], 0.125);
  EXPECT_DOUBLE_EQ(y[3], 0.0);
}

TEST(FirFilter, GroupDelaySymmetricTaps) {
  dsp::FirFilter fir(dsp::design_fir_lowpass(31, 100.0, 1000.0));
  EXPECT_DOUBLE_EQ(fir.group_delay(), 15.0);
}

TEST(MatchedFilter, PeaksAtAlignment) {
  // Matched filter output peaks exactly when the template fully overlaps.
  std::vector<Real> tmpl{0.2, -1.0, 0.7, 0.1};
  const auto taps = dsp::matched_filter_taps(tmpl);
  const auto y = dsp::convolve(tmpl, taps);
  std::size_t peak = 0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    if (y[i] > y[peak]) peak = i;
  }
  EXPECT_EQ(peak, tmpl.size() - 1);
  // Peak value equals the template norm (unit-energy taps).
  Real e = 0.0;
  for (const Real v : tmpl) e += v * v;
  EXPECT_NEAR(y[peak], std::sqrt(e), 1e-12);
}

TEST(MatchedFilter, RejectsZeroTemplate) {
  const std::vector<Real> zero(5, 0.0);
  EXPECT_THROW((void)dsp::matched_filter_taps(zero), std::invalid_argument);
}

TEST(Convolve, LengthAndIdentity) {
  const std::vector<Real> x{1.0, 2.0, 3.0};
  const std::vector<Real> delta{1.0};
  EXPECT_EQ(dsp::convolve(x, delta), x);
  const std::vector<Real> k{1.0, 1.0};
  const auto y = dsp::convolve(x, k);
  EXPECT_EQ(y.size(), 4u);
  EXPECT_DOUBLE_EQ(y[1], 3.0);
  EXPECT_DOUBLE_EQ(y[3], 3.0);
}

TEST(FirFilter, StreamingMatchesConvolution) {
  dsp::Rng rng(9);
  std::vector<Real> x(100);
  for (auto& v : x) v = rng.gaussian();
  const std::vector<Real> taps{0.3, 0.5, -0.2, 0.1};
  dsp::FirFilter fir(taps);
  const auto stream = fir.filter(x);
  const auto full = dsp::convolve(x, taps);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(stream[i], full[i], 1e-12);
  }
}

}  // namespace
