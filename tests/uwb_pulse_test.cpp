// IR-UWB pulse shapes and the FCC -41.3 dBm/MHz emission mask.

#include <cmath>
#include <gtest/gtest.h>

#include "core/events.hpp"
#include "dsp/spectral.hpp"
#include "dsp/stats.hpp"
#include "uwb/modulator.hpp"
#include "uwb/pulse.hpp"

namespace {

using datc::dsp::Real;
using namespace datc;

TEST(Pulse, PeakNormalisedToAmplitude) {
  for (unsigned order = 1; order <= 7; ++order) {
    uwb::PulseShapeConfig shape;
    shape.derivative_order = order;
    shape.amplitude_v = 0.25;
    const auto w = uwb::pulse_waveform(shape, 64.0 / shape.tau_s);
    Real peak = 0.0;
    for (const Real v : w) peak = std::max(peak, std::abs(v));
    EXPECT_NEAR(peak, 0.25, 0.01) << "order=" << order;
  }
}

TEST(Pulse, OddOrdersAreOdd) {
  uwb::PulseShapeConfig shape;  // 5th derivative
  EXPECT_NEAR(uwb::pulse_value(shape, 0.0), 0.0, 1e-9);
  const Real left = uwb::pulse_value(shape, -shape.tau_s);
  const Real right = uwb::pulse_value(shape, shape.tau_s);
  EXPECT_NEAR(left, -right, 1e-9);
}

TEST(Pulse, EnergyScalesWithAmplitudeSquared) {
  uwb::PulseShapeConfig a;
  a.amplitude_v = 0.1;
  uwb::PulseShapeConfig b = a;
  b.amplitude_v = 0.2;
  const Real fs = 64.0 / a.tau_s;
  EXPECT_NEAR(uwb::pulse_energy(b, fs) / uwb::pulse_energy(a, fs), 4.0,
              1e-6);
}

TEST(Pulse, CenterFrequencyInUwbBand) {
  uwb::PulseShapeConfig shape;  // order 5, tau 80 ps
  const Real fc = uwb::pulse_center_freq_hz(shape);
  EXPECT_GT(fc, 1e9);
  EXPECT_LT(fc, 10e9);
}

TEST(Pulse, ValidationBounds) {
  uwb::PulseShapeConfig shape;
  shape.derivative_order = 0;
  EXPECT_THROW((void)uwb::pulse_value(shape, 0.0), std::invalid_argument);
  shape.derivative_order = 9;
  EXPECT_THROW((void)uwb::pulse_value(shape, 0.0), std::invalid_argument);
  shape = uwb::PulseShapeConfig{};
  shape.tau_s = 0.0;
  EXPECT_THROW((void)uwb::pulse_value(shape, 0.0), std::invalid_argument);
}

TEST(PulseTrain, RenderPlacesPulses) {
  uwb::PulseTrain train;
  train.add({10e-9, 1.0, 0, true});
  uwb::PulseShapeConfig shape;
  const Real fs = 64.0 / shape.tau_s;
  const auto wav = train.render(shape, 0.0, 20e-9, fs);
  // Energy concentrated near the 10 ns mark.
  Real peak_t = 0.0;
  Real peak_v = 0.0;
  for (std::size_t i = 0; i < wav.size(); ++i) {
    if (std::abs(wav[i]) > peak_v) {
      peak_v = std::abs(wav[i]);
      peak_t = wav.time_of(i);
    }
  }
  EXPECT_NEAR(peak_t, 10e-9, 1e-9);
  EXPECT_GT(peak_v, 0.5);
}

TEST(PulseTrain, RenderRefusesHugeWindows) {
  uwb::PulseTrain train;
  uwb::PulseShapeConfig shape;
  EXPECT_THROW((void)train.render(shape, 0.0, 1.0, 20e9),
               std::invalid_argument);
}

TEST(FccMask, DatcPacketBurstCompliant) {
  // Render one densest D-ATC packet (marker + 4 one-bits) and check the
  // PSD of a sustained worst-case pulse rate against -41.3 dBm/MHz.
  core::EventStream ev;
  // Worst case: 1 kHz event rate for 2 ms, all-ones codes.
  for (int i = 0; i < 2; ++i) {
    ev.add(0.2e-3 + 1e-3 * i, 15);
  }
  uwb::ModulatorConfig mod;
  mod.shape.amplitude_v = 0.05;
  const auto train = uwb::modulate_datc(ev, mod);
  const Real fs = 16e9;
  const auto wav = train.render(mod.shape, 0.0, 2.2e-3, fs, 1u << 26);
  const auto psd = dsp::welch_psd(wav.view(), fs, 1 << 16);
  const Real peak = dsp::peak_dbm_per_mhz(psd, 3.1e9, 10.6e9);
  EXPECT_LT(peak, -41.3);
}

TEST(FccMask, ViolatedByExcessiveAmplitude) {
  core::EventStream ev;
  for (int i = 0; i < 2; ++i) ev.add(0.2e-3 + 0.5e-3 * i, 15);
  uwb::ModulatorConfig mod;
  mod.shape.amplitude_v = 400.0;  // absurd TX swing
  const auto train = uwb::modulate_datc(ev, mod);
  const Real fs = 16e9;
  const auto wav = train.render(mod.shape, 0.0, 1.2e-3, fs, 1u << 26);
  const auto psd = dsp::welch_psd(wav.view(), fs, 1 << 16);
  const Real peak = dsp::peak_dbm_per_mhz(psd, 1e9, 8e9);
  EXPECT_GT(peak, -41.3);
}

}  // namespace
