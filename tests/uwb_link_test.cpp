// UWB link: modulation layout, channel statistics, energy-detector
// probabilities, packet decode round-trips and AER arbitration.

#include <cmath>
#include <gtest/gtest.h>

#include "uwb/aer.hpp"
#include "uwb/channel.hpp"
#include "uwb/modulator.hpp"
#include "uwb/receiver.hpp"

namespace {

using datc::dsp::Real;
using namespace datc;

core::EventStream make_events(std::size_t n, Real spacing_s,
                              std::uint8_t code) {
  core::EventStream ev;
  for (std::size_t i = 0; i < n; ++i) {
    ev.add(1e-3 + spacing_s * static_cast<Real>(i), code);
  }
  return ev;
}

TEST(Modulator, AtcOnePulsePerEvent) {
  const auto ev = make_events(10, 1e-3, 0);
  const auto train = uwb::modulate_atc(ev, uwb::ModulatorConfig{});
  EXPECT_EQ(train.size(), 10u);
  for (const auto& p : train.pulses()) EXPECT_TRUE(p.is_marker);
}

TEST(Modulator, DatcPacketLayout) {
  // Code 0b1010 (10): marker + 2 one-bits = 3 pulses per event.
  const auto ev = make_events(4, 1e-3, 10);
  uwb::ModulatorConfig mod;
  const auto train = uwb::modulate_datc(ev, mod);
  EXPECT_EQ(train.size(), 4u * 3u);
  // MSB-first: bit slots 1 and 3 carry pulses for 0b1010.
  const auto& p = train.pulses();
  EXPECT_TRUE(p[0].is_marker);
  EXPECT_NEAR(p[1].time_s - p[0].time_s, 1.0 * mod.symbol_period_s, 1e-12);
  EXPECT_NEAR(p[2].time_s - p[0].time_s, 3.0 * mod.symbol_period_s, 1e-12);
}

TEST(Modulator, AllOnesCodeFullPacket) {
  const auto ev = make_events(1, 1e-3, 15);
  const auto train = uwb::modulate_datc(ev, uwb::ModulatorConfig{});
  EXPECT_EQ(train.size(), 5u);  // marker + 4 bits
  EXPECT_DOUBLE_EQ(uwb::packet_duration_s(uwb::ModulatorConfig{}),
                   5.0 * 100e-9);
}

TEST(Channel, GainDecreasesWithDistance) {
  uwb::ChannelConfig near;
  near.distance_m = 0.5;
  uwb::ChannelConfig far = near;
  far.distance_m = 3.0;
  EXPECT_GT(uwb::channel_gain(near), uwb::channel_gain(far));
  EXPECT_GT(uwb::channel_gain(near), 0.0);
}

TEST(Channel, ErasureStatistics) {
  const auto ev = make_events(2000, 1e-4, 15);
  const auto train = uwb::modulate_atc(ev, uwb::ModulatorConfig{});
  uwb::ChannelConfig ch;
  ch.erasure_prob = 0.25;
  dsp::Rng rng(3);
  const auto out = uwb::propagate(train, ch, rng);
  EXPECT_NEAR(static_cast<Real>(out.erased), 2000.0 * 0.25, 80.0);
  EXPECT_EQ(out.received.size() + out.erased, train.size());
}

TEST(Channel, JitterPerturbsTimes) {
  const auto ev = make_events(100, 1e-4, 0);
  const auto train = uwb::modulate_atc(ev, uwb::ModulatorConfig{});
  uwb::ChannelConfig ch;
  ch.jitter_rms_s = 1e-9;
  dsp::Rng rng(5);
  const auto out = uwb::propagate(train, ch, rng);
  Real max_shift = 0.0;
  for (std::size_t i = 0; i < out.received.size(); ++i) {
    max_shift = std::max(max_shift, std::abs(out.received.pulses()[i].time_s -
                                             train.pulses()[i].time_s));
  }
  EXPECT_GT(max_shift, 1e-10);
  EXPECT_LT(max_shift, 1e-8);
}

TEST(Channel, NoiseRmsSane) {
  uwb::ChannelConfig ch;
  const Real n = uwb::noise_rms_v(ch, 2e9);
  // Thermal noise with 6 dB NF in 2 GHz across 50 ohm: tens of microvolts.
  EXPECT_GT(n, 1e-6);
  EXPECT_LT(n, 1e-3);
}

TEST(Detector, ProbabilityMonotoneInEnergy) {
  uwb::EnergyDetectorConfig det;
  uwb::ChannelConfig ch;
  Real last = 0.0;
  for (const Real e : {1e-18, 1e-17, 1e-16, 1e-15, 1e-14}) {
    const Real pd = uwb::detection_probability(det, ch, e);
    EXPECT_GE(pd, last - 1e-12);
    last = pd;
  }
  // Strong pulse: certain detection; zero energy: near the false-alarm
  // floor.
  EXPECT_GT(uwb::detection_probability(det, ch, 1e-12), 0.999);
  EXPECT_LT(uwb::detection_probability(det, ch, 0.0), 0.01);
}

uwb::ChannelConfig strong_link() {
  uwb::ChannelConfig ch;
  ch.distance_m = 0.3;
  ch.ref_loss_db = 30.0;
  return ch;
}

TEST(Receiver, LosslessRoundTripRecoversCodes) {
  const auto ev = make_events(50, 1e-3, 11);
  uwb::ModulatorConfig mod;
  mod.shape.amplitude_v = 0.5;
  const auto train = uwb::modulate_datc(ev, mod);
  const auto ch = strong_link();
  dsp::Rng rng(7);
  const auto prop = uwb::propagate(train, ch, rng);

  uwb::UwbReceiverConfig rxc;
  rxc.modulator = mod;
  uwb::UwbReceiver rx(rxc, ch, dsp::Rng(8));
  const auto decoded = rx.decode(prop.received);
  ASSERT_EQ(decoded.size(), 50u);
  for (const auto& e : decoded.events()) {
    EXPECT_EQ(e.vth_code, 11u);
  }
  EXPECT_EQ(rx.stats().packets_decoded, 50u);
  EXPECT_EQ(rx.stats().pulses_detected, rx.stats().pulses_in);
}

TEST(Receiver, WeakLinkLosesEvents) {
  const auto ev = make_events(200, 1e-3, 15);
  uwb::ModulatorConfig mod;
  mod.shape.amplitude_v = 0.5;
  const auto train = uwb::modulate_datc(ev, mod);
  uwb::ChannelConfig ch;
  ch.distance_m = 50.0;  // absurdly far for a body-area link
  ch.path_loss_exponent = 3.0;
  dsp::Rng rng(9);
  const auto prop = uwb::propagate(train, ch, rng);
  uwb::UwbReceiverConfig rxc;
  rxc.modulator = mod;
  uwb::UwbReceiver rx(rxc, ch, dsp::Rng(10));
  const auto decoded = rx.decode(prop.received);
  EXPECT_LT(decoded.size(), 150u);
}

TEST(Receiver, MarkerOnlyModeForAtc) {
  const auto ev = make_events(30, 1e-3, 0);
  uwb::ModulatorConfig mod;
  mod.shape.amplitude_v = 0.5;
  const auto train = uwb::modulate_atc(ev, mod);
  const auto ch = strong_link();
  dsp::Rng rng(1);
  const auto prop = uwb::propagate(train, ch, rng);
  uwb::UwbReceiverConfig rxc;
  rxc.modulator = mod;
  rxc.decode_codes = false;
  uwb::UwbReceiver rx(rxc, ch, dsp::Rng(2));
  EXPECT_EQ(rx.decode(prop.received).size(), 30u);
}

TEST(Aer, MergePreservesEventsAndAddresses) {
  std::vector<core::EventStream> chans(3);
  chans[0].add(0.010, 5);
  chans[1].add(0.020, 6);
  chans[2].add(0.030, 7);
  uwb::AerStats stats;
  const auto merged = uwb::aer_merge(chans, uwb::AerConfig{}, &stats);
  EXPECT_EQ(merged.size(), 3u);
  EXPECT_EQ(stats.sent, 3u);
  EXPECT_EQ(stats.dropped, 0u);
  const auto split = uwb::aer_split(merged, 3);
  EXPECT_EQ(split[0].size(), 1u);
  EXPECT_EQ(split[1][0].vth_code, 6u);
}

TEST(Aer, ArbitrationDelaysCollisions) {
  std::vector<core::EventStream> chans(2);
  chans[0].add(0.010, 1);
  chans[1].add(0.010, 2);  // simultaneous
  uwb::AerConfig cfg;
  cfg.min_spacing_s = 1e-3;
  uwb::AerStats stats;
  const auto merged = uwb::aer_merge(chans, cfg, &stats);
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_NEAR(merged[1].time_s - merged[0].time_s, 1e-3, 1e-12);
  EXPECT_GT(stats.max_delay_s, 0.0);
}

TEST(Aer, DropsBeyondLatencyBudget) {
  std::vector<core::EventStream> chans(1);
  for (int i = 0; i < 100; ++i) chans[0].add(0.010, 0);  // burst
  uwb::AerConfig cfg;
  cfg.min_spacing_s = 1e-3;
  cfg.max_queue_delay_s = 5e-3;
  uwb::AerStats stats;
  const auto merged = uwb::aer_merge(chans, cfg, &stats);
  EXPECT_LT(merged.size(), 100u);
  EXPECT_GT(stats.dropped, 0u);
  EXPECT_EQ(stats.sent + stats.dropped, 100u);
}

TEST(Aer, AddressSpaceValidation) {
  std::vector<core::EventStream> chans(9);
  uwb::AerConfig cfg;
  cfg.address_bits = 3;  // max 8 channels
  EXPECT_THROW((void)uwb::aer_merge(chans, cfg), std::invalid_argument);
  EXPECT_EQ(uwb::aer_symbols_per_event(cfg, 4), 8u);  // 1 + 3 + 4
}

TEST(EventStream, HelpersBehave) {
  core::EventStream ev;
  ev.add(0.3, 1, 2);
  ev.add(0.1, 2, 1);
  EXPECT_FALSE(ev.is_time_sorted());
  ev.sort_by_time();
  EXPECT_TRUE(ev.is_time_sorted());
  EXPECT_EQ(ev.count_in(0.0, 0.2), 1u);
  EXPECT_DOUBLE_EQ(ev.mean_rate_hz(2.0), 1.0);
  const auto ch1 = ev.channel_slice(1);
  ASSERT_EQ(ch1.size(), 1u);
  EXPECT_DOUBLE_EQ(ch1[0].time_s, 0.1);
}

}  // namespace
