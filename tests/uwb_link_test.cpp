// UWB link: modulation layout, channel statistics, energy-detector
// probabilities, packet decode round-trips and AER arbitration.

#include <cmath>
#include <gtest/gtest.h>

#include "uwb/aer.hpp"
#include "uwb/channel.hpp"
#include "uwb/modulator.hpp"
#include "uwb/receiver.hpp"

namespace {

using datc::dsp::Real;
using namespace datc;

core::EventStream make_events(std::size_t n, Real spacing_s,
                              std::uint8_t code) {
  core::EventStream ev;
  for (std::size_t i = 0; i < n; ++i) {
    ev.add(1e-3 + spacing_s * static_cast<Real>(i), code);
  }
  return ev;
}

TEST(Modulator, AtcOnePulsePerEvent) {
  const auto ev = make_events(10, 1e-3, 0);
  const auto train = uwb::modulate_atc(ev, uwb::ModulatorConfig{});
  EXPECT_EQ(train.size(), 10u);
  for (const auto& p : train.pulses()) EXPECT_TRUE(p.is_marker);
}

TEST(Modulator, DatcPacketLayout) {
  // Code 0b1010 (10): marker + 2 one-bits = 3 pulses per event.
  const auto ev = make_events(4, 1e-3, 10);
  uwb::ModulatorConfig mod;
  const auto train = uwb::modulate_datc(ev, mod);
  EXPECT_EQ(train.size(), 4u * 3u);
  // MSB-first: bit slots 1 and 3 carry pulses for 0b1010.
  const auto& p = train.pulses();
  EXPECT_TRUE(p[0].is_marker);
  EXPECT_NEAR(p[1].time_s - p[0].time_s, 1.0 * mod.symbol_period_s, 1e-12);
  EXPECT_NEAR(p[2].time_s - p[0].time_s, 3.0 * mod.symbol_period_s, 1e-12);
}

TEST(Modulator, AllOnesCodeFullPacket) {
  const auto ev = make_events(1, 1e-3, 15);
  const auto train = uwb::modulate_datc(ev, uwb::ModulatorConfig{});
  EXPECT_EQ(train.size(), 5u);  // marker + 4 bits
  EXPECT_DOUBLE_EQ(uwb::packet_duration_s(uwb::ModulatorConfig{}),
                   5.0 * 100e-9);
}

TEST(Channel, GainDecreasesWithDistance) {
  uwb::ChannelConfig near;
  near.distance_m = 0.5;
  uwb::ChannelConfig far = near;
  far.distance_m = 3.0;
  EXPECT_GT(uwb::channel_gain(near), uwb::channel_gain(far));
  EXPECT_GT(uwb::channel_gain(near), 0.0);
}

TEST(Channel, ErasureStatistics) {
  const auto ev = make_events(2000, 1e-4, 15);
  const auto train = uwb::modulate_atc(ev, uwb::ModulatorConfig{});
  uwb::ChannelConfig ch;
  ch.erasure_prob = 0.25;
  dsp::Rng rng(3);
  const auto out = uwb::propagate(train, ch, rng);
  EXPECT_NEAR(static_cast<Real>(out.erased), 2000.0 * 0.25, 80.0);
  EXPECT_EQ(out.received.size() + out.erased, train.size());
}

TEST(Channel, JitterPerturbsTimes) {
  const auto ev = make_events(100, 1e-4, 0);
  const auto train = uwb::modulate_atc(ev, uwb::ModulatorConfig{});
  uwb::ChannelConfig ch;
  ch.jitter_rms_s = 1e-9;
  dsp::Rng rng(5);
  const auto out = uwb::propagate(train, ch, rng);
  Real max_shift = 0.0;
  for (std::size_t i = 0; i < out.received.size(); ++i) {
    max_shift = std::max(max_shift, std::abs(out.received.pulses()[i].time_s -
                                             train.pulses()[i].time_s));
  }
  EXPECT_GT(max_shift, 1e-10);
  EXPECT_LT(max_shift, 1e-8);
}

TEST(Channel, NoiseRmsSane) {
  uwb::ChannelConfig ch;
  const Real n = uwb::noise_rms_v(ch, 2e9);
  // Thermal noise with 6 dB NF in 2 GHz across 50 ohm: tens of microvolts.
  EXPECT_GT(n, 1e-6);
  EXPECT_LT(n, 1e-3);
}

TEST(Detector, ProbabilityMonotoneInEnergy) {
  uwb::EnergyDetectorConfig det;
  uwb::ChannelConfig ch;
  Real last = 0.0;
  for (const Real e : {1e-18, 1e-17, 1e-16, 1e-15, 1e-14}) {
    const Real pd = uwb::detection_probability(det, ch, e);
    EXPECT_GE(pd, last - 1e-12);
    last = pd;
  }
  // Strong pulse: certain detection; zero energy: near the false-alarm
  // floor.
  EXPECT_GT(uwb::detection_probability(det, ch, 1e-12), 0.999);
  EXPECT_LT(uwb::detection_probability(det, ch, 0.0), 0.01);
}

uwb::ChannelConfig strong_link() {
  uwb::ChannelConfig ch;
  ch.distance_m = 0.3;
  ch.ref_loss_db = 30.0;
  return ch;
}

TEST(Receiver, LosslessRoundTripRecoversCodes) {
  const auto ev = make_events(50, 1e-3, 11);
  uwb::ModulatorConfig mod;
  mod.shape.amplitude_v = 0.5;
  const auto train = uwb::modulate_datc(ev, mod);
  const auto ch = strong_link();
  dsp::Rng rng(7);
  const auto prop = uwb::propagate(train, ch, rng);

  uwb::UwbReceiverConfig rxc;
  rxc.modulator = mod;
  uwb::UwbReceiver rx(rxc, ch, dsp::Rng(8));
  const auto decoded = rx.decode(prop.received);
  ASSERT_EQ(decoded.size(), 50u);
  for (const auto& e : decoded.events()) {
    EXPECT_EQ(e.vth_code, 11u);
  }
  EXPECT_EQ(rx.stats().packets_decoded, 50u);
  EXPECT_EQ(rx.stats().pulses_detected, rx.stats().pulses_in);
}

TEST(Receiver, WeakLinkLosesEvents) {
  const auto ev = make_events(200, 1e-3, 15);
  uwb::ModulatorConfig mod;
  mod.shape.amplitude_v = 0.5;
  const auto train = uwb::modulate_datc(ev, mod);
  uwb::ChannelConfig ch;
  ch.distance_m = 50.0;  // absurdly far for a body-area link
  ch.path_loss_exponent = 3.0;
  dsp::Rng rng(9);
  const auto prop = uwb::propagate(train, ch, rng);
  uwb::UwbReceiverConfig rxc;
  rxc.modulator = mod;
  uwb::UwbReceiver rx(rxc, ch, dsp::Rng(10));
  const auto decoded = rx.decode(prop.received);
  EXPECT_LT(decoded.size(), 150u);
}

TEST(Receiver, MarkerOnlyModeForAtc) {
  const auto ev = make_events(30, 1e-3, 0);
  uwb::ModulatorConfig mod;
  mod.shape.amplitude_v = 0.5;
  const auto train = uwb::modulate_atc(ev, mod);
  const auto ch = strong_link();
  dsp::Rng rng(1);
  const auto prop = uwb::propagate(train, ch, rng);
  uwb::UwbReceiverConfig rxc;
  rxc.modulator = mod;
  rxc.decode_codes = false;
  uwb::UwbReceiver rx(rxc, ch, dsp::Rng(2));
  EXPECT_EQ(rx.decode(prop.received).size(), 30u);
}

TEST(Aer, MergePreservesEventsAndAddresses) {
  std::vector<core::EventStream> chans(3);
  chans[0].add(0.010, 5);
  chans[1].add(0.020, 6);
  chans[2].add(0.030, 7);
  uwb::AerStats stats;
  const auto merged = uwb::aer_merge(chans, uwb::AerConfig{}, &stats);
  EXPECT_EQ(merged.size(), 3u);
  EXPECT_EQ(stats.sent, 3u);
  EXPECT_EQ(stats.dropped, 0u);
  const auto split = uwb::aer_split(merged, 3);
  EXPECT_EQ(split[0].size(), 1u);
  EXPECT_EQ(split[1][0].vth_code, 6u);
}

TEST(Aer, ArbitrationDelaysCollisions) {
  std::vector<core::EventStream> chans(2);
  chans[0].add(0.010, 1);
  chans[1].add(0.010, 2);  // simultaneous
  uwb::AerConfig cfg;
  cfg.min_spacing_s = 1e-3;
  uwb::AerStats stats;
  const auto merged = uwb::aer_merge(chans, cfg, &stats);
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_NEAR(merged[1].time_s - merged[0].time_s, 1e-3, 1e-12);
  EXPECT_GT(stats.max_delay_s, 0.0);
}

TEST(Aer, DropsBeyondLatencyBudget) {
  std::vector<core::EventStream> chans(1);
  for (int i = 0; i < 100; ++i) chans[0].add(0.010, 0);  // burst
  uwb::AerConfig cfg;
  cfg.min_spacing_s = 1e-3;
  cfg.max_queue_delay_s = 5e-3;
  uwb::AerStats stats;
  const auto merged = uwb::aer_merge(chans, cfg, &stats);
  EXPECT_LT(merged.size(), 100u);
  EXPECT_GT(stats.dropped, 0u);
  EXPECT_EQ(stats.sent + stats.dropped, 100u);
}

TEST(Receiver, OffSlotMarkerResumesReassembly) {
  // Regression: a pulse inside an open frame's window that misses every
  // slot tolerance (e.g. the jittered marker of the next packet) used to
  // be consumed with the frame, so that packet — and everything it
  // started — was lost. The receiver must resume reassembly at the first
  // unclaimed pulse.
  uwb::ModulatorConfig mod;  // ts = 100 ns, 4 code bits, tol 25 ns
  const Real ts = mod.symbol_period_s;
  const Real amp = 0.5;  // far above the detector floor: Pd = 1
  const Real t0 = 1e-3;
  uwb::PulseTrain train;
  // Packet A: bare marker (code 0).
  train.add({t0, amp, 0, true});
  // Packet B: marker jittered to 1.5 slots after A — inside A's window,
  // off every slot. Code 15 -> all four bit slots pulsed.
  const Real tb = t0 + 1.5 * ts;
  train.add({tb, amp, 1, true});
  for (unsigned b = 1; b <= 4; ++b) {
    train.add({tb + static_cast<Real>(b) * ts, amp, 1, false});
  }
  // Packet C: well clear of both, code 5 = 0b0101 -> slots 2 and 4.
  const Real tc = t0 + 3e-6;
  train.add({tc, amp, 2, true});
  train.add({tc + 2.0 * ts, amp, 2, false});
  train.add({tc + 4.0 * ts, amp, 2, false});

  uwb::UwbReceiverConfig rxc;
  rxc.modulator = mod;
  rxc.detector.false_alarm_prob = 1e-9;
  uwb::UwbReceiver rx(rxc, strong_link(), dsp::Rng(21));
  const auto decoded = rx.decode(train);
  ASSERT_EQ(decoded.size(), 3u);
  EXPECT_DOUBLE_EQ(decoded[0].time_s, t0);
  EXPECT_EQ(decoded[0].vth_code, 0u);
  EXPECT_DOUBLE_EQ(decoded[1].time_s, tb);
  EXPECT_EQ(decoded[1].vth_code, 15u);
  EXPECT_DOUBLE_EQ(decoded[2].time_s, tc);
  EXPECT_EQ(decoded[2].vth_code, 5u);
  EXPECT_EQ(rx.stats().packets_decoded, 3u);
}

TEST(Receiver, ClaimedBitsAreNotPromotedToMarkers) {
  // Companion regression to the resume fix: a pulse claimed as a data bit
  // of one frame must not be revisited as a marker after reassembly
  // resumes at an earlier unclaimed pulse, or every jittered marker would
  // also fabricate a spurious trailing packet.
  uwb::ModulatorConfig mod;  // ts = 100 ns, 4 code bits, tol 25 ns
  const Real ts = mod.symbol_period_s;
  const Real amp = 0.5;
  const Real t0 = 1e-3;
  uwb::PulseTrain train;
  train.add({t0, amp, 0, true});              // marker A
  train.add({t0 + 1.5 * ts, amp, 1, true});   // off-slot marker B
  train.add({t0 + 2.0 * ts, amp, 0, false});  // A's bit slot 2

  uwb::UwbReceiverConfig rxc;
  rxc.modulator = mod;
  rxc.detector.false_alarm_prob = 1e-9;
  uwb::UwbReceiver rx(rxc, strong_link(), dsp::Rng(22));
  const auto decoded = rx.decode(train);
  ASSERT_EQ(decoded.size(), 2u);
  EXPECT_DOUBLE_EQ(decoded[0].time_s, t0);
  EXPECT_EQ(decoded[0].vth_code, 4u);  // slot 2 of 4, MSB-first
  EXPECT_DOUBLE_EQ(decoded[1].time_s, t0 + 1.5 * ts);
  // B's only in-window candidate was already claimed by A: code 0, and no
  // spurious third packet from the claimed pulse.
  EXPECT_EQ(decoded[1].vth_code, 0u);
  EXPECT_EQ(rx.stats().packets_decoded, 2u);
}

TEST(Aer, AddressSpaceValidation) {
  std::vector<core::EventStream> chans(9);
  uwb::AerConfig cfg;
  cfg.address_bits = 3;  // max 8 channels
  EXPECT_THROW((void)uwb::aer_merge(chans, cfg), std::invalid_argument);
  EXPECT_EQ(uwb::aer_symbols_per_event(cfg, 4), 8u);  // 1 + 3 + 4
  uwb::ModulatorConfig mod;  // 100 ns slots, 4 code bits
  EXPECT_DOUBLE_EQ(uwb::aer_frame_duration_s(mod, 3),
                   8.0 * mod.symbol_period_s);
}

TEST(Aer, RoundTripOverNoiselessRadioMatchesIdealReference) {
  // merge -> modulate (marker+address+code) -> noiseless channel ->
  // address-aware decode -> split must be bit/time-exact against the
  // radio-free reference (merge -> split): the shared radio is exactly
  // transparent when nothing in the channel can hurt it.
  const unsigned kChannels = 8;
  std::vector<core::EventStream> chans(kChannels);
  for (unsigned c = 0; c < kChannels; ++c) {
    for (std::size_t i = 0; i < 40; ++i) {
      chans[c].add(1e-3 * static_cast<Real>(i + 1) +
                       37e-6 * static_cast<Real>(c),
                   static_cast<std::uint8_t>((i + c) % 16));
    }
  }
  uwb::AerConfig aer;
  aer.address_bits = 3;
  aer.min_spacing_s = 2e-6;
  uwb::AerStats merge_stats;
  const auto merged = uwb::aer_merge(chans, aer, &merge_stats);
  EXPECT_EQ(merge_stats.dropped, 0u);
  const auto ideal = uwb::aer_split(merged, kChannels);

  uwb::ModulatorConfig mod;
  mod.shape.amplitude_v = 0.5;
  const auto train = uwb::modulate_aer(merged, mod, aer.address_bits);
  dsp::Rng rng(13);
  const auto prop = uwb::propagate(train, uwb::noiseless_channel(), rng);
  ASSERT_EQ(prop.erased, 0u);

  uwb::UwbReceiverConfig rxc;
  rxc.modulator = mod;
  rxc.address_bits = aer.address_bits;
  rxc.detector.false_alarm_prob = 1e-9;
  uwb::UwbReceiver rx(rxc, uwb::noiseless_channel(), rng.fork());
  auto decoded = rx.decode(prop.received);
  decoded.sort_by_time();
  uwb::AerStats split_stats;
  const auto split = uwb::aer_split(decoded, kChannels, &split_stats);
  EXPECT_EQ(split_stats.invalid_address, 0u);

  ASSERT_EQ(split.size(), ideal.size());
  for (unsigned c = 0; c < kChannels; ++c) {
    ASSERT_EQ(split[c].size(), ideal[c].size()) << c;
    for (std::size_t k = 0; k < split[c].size(); ++k) {
      EXPECT_EQ(split[c][k].time_s, ideal[c][k].time_s) << c;
      EXPECT_EQ(split[c][k].vth_code, ideal[c][k].vth_code) << c;
      EXPECT_EQ(split[c][k].channel, c) << c;
    }
  }
}

TEST(Aer, StatsStayConsistentUnderForcedDrops) {
  // A burst far beyond the arbiter's latency budget forces queue-delay
  // drops; the in/sent/dropped accounting must stay exact through the
  // merge and the split.
  std::vector<core::EventStream> chans(3);
  for (unsigned c = 0; c < 3; ++c) {
    for (int i = 0; i < 50; ++i) {
      chans[c].add(0.010, static_cast<std::uint8_t>(c));
    }
  }
  uwb::AerConfig cfg;
  cfg.min_spacing_s = 1e-3;
  cfg.max_queue_delay_s = 5e-3;
  uwb::AerStats stats;
  const auto merged = uwb::aer_merge(chans, cfg, &stats);
  EXPECT_EQ(stats.in_events, 150u);
  EXPECT_GT(stats.dropped, 0u);
  EXPECT_EQ(stats.sent + stats.dropped, stats.in_events);
  EXPECT_EQ(merged.size(), stats.sent);
  EXPECT_LE(stats.max_delay_s, cfg.max_queue_delay_s);

  uwb::AerStats split_stats;
  const auto split = uwb::aer_split(merged, 3, &split_stats);
  std::size_t total = 0;
  for (const auto& s : split) total += s.size();
  EXPECT_EQ(total, stats.sent);
  EXPECT_EQ(split_stats.sent, stats.sent);
  EXPECT_EQ(split_stats.invalid_address, 0u);
}

TEST(Aer, SplitReportsOutOfRangeAddresses) {
  // Address-field bit errors on a noisy link can demux to a channel that
  // does not exist; those events must be counted, not silently dropped.
  core::EventStream merged;
  merged.add(0.001, 3, 1);
  merged.add(0.002, 4, 7);  // only 2 channels exist
  merged.add(0.003, 5, 0);
  uwb::AerStats stats;
  const auto split = uwb::aer_split(merged, 2, &stats);
  EXPECT_EQ(stats.invalid_address, 1u);
  EXPECT_EQ(stats.sent, 2u);
  ASSERT_EQ(split.size(), 2u);
  EXPECT_EQ(split[0].size(), 1u);
  EXPECT_EQ(split[1].size(), 1u);
}

TEST(EventStream, HelpersBehave) {
  core::EventStream ev;
  ev.add(0.3, 1, 2);
  ev.add(0.1, 2, 1);
  EXPECT_FALSE(ev.is_time_sorted());
  ev.sort_by_time();
  EXPECT_TRUE(ev.is_time_sorted());
  EXPECT_EQ(ev.count_in(0.0, 0.2), 1u);
  EXPECT_DOUBLE_EQ(ev.mean_rate_hz(2.0), 1.0);
  const auto ch1 = ev.channel_slice(1);
  ASSERT_EQ(ch1.size(), 1u);
  EXPECT_DOUBLE_EQ(ch1[0].time_s, 0.1);
}

}  // namespace
