// RTL kernel: two-phase signals, toggle counting, combinational settle,
// and the VCD writer (validated by parsing its own output).

#include <fstream>
#include <gtest/gtest.h>
#include <sstream>

#include "rtl/module.hpp"
#include "rtl/signal.hpp"
#include "rtl/simulator.hpp"
#include "rtl/vcd.hpp"

namespace {

using namespace datc;

TEST(Signal, CommitSemantics) {
  rtl::Bus s("s", 8, 0);
  EXPECT_EQ(s.read(), 0u);
  s.write(5);
  EXPECT_EQ(s.read(), 0u);  // not yet committed
  EXPECT_TRUE(s.commit());
  EXPECT_EQ(s.read(), 5u);
  EXPECT_FALSE(s.commit());  // no change
}

TEST(Signal, ToggleCountsBits) {
  rtl::Bus s("s", 8, 0);
  s.write(0xFF);
  (void)s.commit();
  EXPECT_EQ(s.bit_toggles(), 8u);
  s.write(0xFE);
  (void)s.commit();
  EXPECT_EQ(s.bit_toggles(), 9u);
  s.reset_toggles();
  EXPECT_EQ(s.bit_toggles(), 0u);
}

TEST(Signal, BoolToggles) {
  rtl::Bit b("b", 1, false);
  b.write(true);
  (void)b.commit();
  b.write(false);
  (void)b.commit();
  EXPECT_EQ(b.bit_toggles(), 2u);
}

TEST(Signal, ForceSkipsToggleCount) {
  rtl::Bus s("s", 4, 0);
  s.force(0xF);
  EXPECT_EQ(s.read(), 0xFu);
  EXPECT_EQ(s.bit_toggles(), 0u);  // reset is not dynamic activity
}

TEST(Signal, WidthValidation) {
  EXPECT_THROW(rtl::Bus("bad", 0), std::invalid_argument);
  EXPECT_THROW(rtl::Bus("bad", 65), std::invalid_argument);
}

/// A 2-bit counter module used to exercise the simulator.
class Counter2 : public rtl::Module {
 public:
  Counter2() : Module("cnt2"),
               q_(make_signal<std::uint32_t>("q", 2, 0)),
               wrap_(make_signal<bool>("wrap", 1, false)) {}
  void eval() override { wrap_.write(q_.read() == 3); }
  void tick() override { q_.write((q_.read() + 1) & 3u); }
  void reset() override { q_.reset_value_now(); }
  rtl::Bus& q_;
  rtl::Bit& wrap_;
};

TEST(Simulator, CounterCounts) {
  Counter2 c;
  rtl::Simulator sim;
  sim.add(c);
  sim.reset();
  for (unsigned i = 1; i <= 10; ++i) {
    sim.step();
    EXPECT_EQ(c.q_.read(), i & 3u);
  }
  EXPECT_EQ(sim.stats().cycles, 10u);
}

/// A module whose combinational nets need several delta cycles to settle
/// (a 3-stage buffer chain).
class Chain : public rtl::Module {
 public:
  Chain() : Module("chain"),
            in_(make_signal<bool>("in", 1, false)),
            a_(make_signal<bool>("a", 1, false)),
            b_(make_signal<bool>("b", 1, false)),
            out_(make_signal<bool>("out", 1, false)) {}
  void eval() override {
    a_.write(in_.read());
    b_.write(a_.read());
    out_.write(b_.read());
  }
  rtl::Bit& in_;
  rtl::Bit& a_;
  rtl::Bit& b_;
  rtl::Bit& out_;
};

TEST(Simulator, SettlesMultiLevelCombinational) {
  Chain ch;
  rtl::Simulator sim;
  sim.add(ch);
  sim.reset();
  ch.in_.write(true);
  sim.step();
  EXPECT_TRUE(ch.out_.read());
  EXPECT_GE(sim.stats().max_delta_depth, 3u);
}

/// A combinational loop (ring oscillator) must be detected, not hang.
class Osc : public rtl::Module {
 public:
  Osc() : Module("osc"), x_(make_signal<bool>("x", 1, false)) {}
  void eval() override { x_.write(!x_.read()); }
  rtl::Bit& x_;
};

TEST(Simulator, DetectsCombinationalLoop) {
  Osc osc;
  rtl::Simulator sim(16);
  sim.add(osc);
  EXPECT_THROW(sim.step(), std::runtime_error);
}

TEST(Simulator, ToggleAccounting) {
  Counter2 c;
  rtl::Simulator sim;
  sim.add(c);
  sim.reset();
  sim.reset_toggles();
  sim.run(4);  // q: 0->1->2->3->0 = 1+2+1+2 = 6 bit toggles, wrap: 0->1->0
  EXPECT_GE(sim.total_bit_toggles(), 6u);
}

TEST(Vcd, WellFormedOutput) {
  const std::string path = "/tmp/datc_vcd_test.vcd";
  {
    Counter2 c;
    rtl::Simulator sim;
    sim.add(c);
    rtl::VcdWriter vcd(path, 500000.0);
    vcd.track(c.q_);
    vcd.track(c.wrap_);
    sim.attach_vcd(&vcd);
    sim.reset();
    sim.run(8);
    vcd.close();
  }
  std::ifstream f(path);
  ASSERT_TRUE(f.good());
  std::stringstream ss;
  ss << f.rdbuf();
  const std::string text = ss.str();
  // Mandatory VCD sections.
  EXPECT_NE(text.find("$timescale"), std::string::npos);
  EXPECT_NE(text.find("$var wire 2"), std::string::npos);
  EXPECT_NE(text.find("$var wire 1"), std::string::npos);
  EXPECT_NE(text.find("$enddefinitions"), std::string::npos);
  EXPECT_NE(text.find("$dumpvars"), std::string::npos);
  // Value changes with timestamps appear.
  EXPECT_NE(text.find("#1"), std::string::npos);
  // Multi-bit values are dumped in binary ('b' prefix).
  EXPECT_NE(text.find("b01"), std::string::npos);
}

TEST(Vcd, TrackAfterSampleRejected) {
  const std::string path = "/tmp/datc_vcd_test2.vcd";
  Counter2 c;
  rtl::Simulator sim;
  sim.add(c);
  rtl::VcdWriter vcd(path);
  vcd.track(c.q_);
  sim.attach_vcd(&vcd);
  sim.reset();
  sim.step();
  EXPECT_THROW(vcd.track(c.wrap_), std::invalid_argument);
}

TEST(Vcd, RejectsBadPath) {
  EXPECT_THROW(rtl::VcdWriter bad("/nonexistent_dir_xyz/q.vcd"),
               std::invalid_argument);
}

}  // namespace
