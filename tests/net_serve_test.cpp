// Loopback tests of the `datc serve` ingest daemon: the parity contract
// (a session streamed over the wire produces a bit-identical envelope to
// a direct StreamingSession / SharedAerStreamingSession run on the same
// chunks), the typed-reject surface (version, scenario, tenant, session
// limit, sequence gaps, framing loss, quarantine, draining), and the
// degradation guarantees (malformed frames and broken peers never take
// down other sessions, backpressure never deadlocks).

#include "net/client.hpp"
#include "net/server.hpp"
#include "net/wire.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <bit>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "config/factory.hpp"
#include "config/scenario.hpp"
#include "emg/dataset.hpp"
#include "runtime/session.hpp"
#include "store/replay.hpp"

namespace {

namespace fs = std::filesystem;
using namespace datc;
using dsp::Real;
namespace wire = datc::net::wire;

constexpr std::size_t kChunk = 256;

/// Noise source (fast synthesis), short duration, two worker threads —
/// the whole suite stays well under a second of signal per session.
config::ScenarioSpec fast_spec() {
  config::ScenarioSpec spec;
  spec.name = "net-serve-test";
  spec.source.model = config::SourceModel::kFilteredNoise;
  spec.source.duration_s = 1.0;
  spec.session.chunk_samples = kChunk;
  spec.session.jobs = 2;
  return spec;
}

config::ScenarioSpec shared_spec(std::size_t channels) {
  config::ScenarioSpec spec = fast_spec();
  spec.name = "net-serve-shared-test";
  spec.source.channels = channels;
  spec.aer.topology = config::LinkTopology::kSharedAer;
  return spec;
}

std::vector<Real> to_vector(const dsp::TimeSeries& ts) {
  std::vector<Real> out(ts.size());
  for (std::size_t i = 0; i < ts.size(); ++i) out[i] = ts[i];
  return out;
}

class NetServeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("datc_net_serve_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }

  void TearDown() override {
    stop();
    server_.reset();
    fs::remove_all(dir_);
  }

  /// Binds an ephemeral loopback port and runs the event loop on a
  /// background thread; `mutate` tweaks the ServeConfig (limits) first.
  void start(const config::ScenarioSpec& spec,
             void (*mutate)(net::ServeConfig&) = nullptr) {
    net::ServeConfig cfg = net::make_serve_config(spec, out_dir());
    if (mutate != nullptr) mutate(cfg);
    server_ = std::make_unique<net::Server>(std::move(cfg));
    loop_ = std::thread([this] { server_->run(); });
  }

  /// Stops the loop but keeps the Server alive: tests read stats()
  /// after the join (TearDown destroys it).
  void stop() {
    if (server_ != nullptr) server_->request_stop();
    if (loop_.joinable()) loop_.join();
  }

  [[nodiscard]] std::string out_dir() const { return dir_.string(); }
  [[nodiscard]] std::uint16_t port() const { return server_->port(); }
  [[nodiscard]] net::ServerStats stats() const { return server_->stats(); }
  [[nodiscard]] std::string session_dir(std::uint64_t id,
                                        const std::string& tenant =
                                            "default") const {
    return out_dir() + "/" + tenant + "/session-" + std::to_string(id);
  }

  /// Streams `signal` in kChunk*channels-sample rounds and ENDs.
  static std::uint64_t stream_all(net::Client& client,
                                  std::span<const Real> signal,
                                  std::size_t channels = 1) {
    const std::size_t stride = kChunk * channels;
    for (std::size_t at = 0; at < signal.size(); at += stride) {
      client.send_chunk(signal.subspan(at, std::min(stride,
                                                    signal.size() - at)));
    }
    return client.finish();
  }

  fs::path dir_;
  std::unique_ptr<net::Server> server_;
  std::thread loop_;
};

/// The direct (in-process) envelope for one private channel over the
/// same chunk boundaries the client uses.
std::vector<Real> direct_private_envelope(
    const config::PipelineFactory& factory, std::uint32_t channel_id,
    std::span<const Real> signal) {
  auto session = factory.make_streaming_session(channel_id);
  std::vector<Real> env;
  for (std::size_t at = 0; at < signal.size(); at += kChunk) {
    session->push_chunk(
        signal.subspan(at, std::min(kChunk, signal.size() - at)));
    session->drain_arv(env);
  }
  session->finish();
  session->drain_arv(env);
  return env;
}

TEST_F(NetServeTest, PrivateEnvelopeParityWithDirectSession) {
  const config::ScenarioSpec spec = fast_spec();
  start(spec);

  const config::PipelineFactory factory(spec);
  constexpr std::uint32_t kChannelId = 3;
  const std::vector<Real> signal =
      to_vector(factory.make_recording(kChannelId).emg_v);

  net::Client client("127.0.0.1", port());
  wire::HelloBody hello;
  hello.channel_id = kChannelId;
  hello.tenant = "parity";
  const std::uint64_t id = client.hello(hello);
  const std::uint64_t served_env = stream_all(client, signal);

  const std::vector<Real> direct =
      direct_private_envelope(factory, kChannelId, signal);
  EXPECT_EQ(served_env, direct.size());

  // The wire is bit-transparent end to end: the persisted envelope is
  // the direct run's envelope, bit for bit.
  const std::vector<Real> persisted =
      store::read_envelope_f64(session_dir(id, "parity"));
  ASSERT_EQ(persisted.size(), direct.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    ASSERT_EQ(std::bit_cast<std::uint64_t>(persisted[i]),
              std::bit_cast<std::uint64_t>(direct[i]))
        << "envelope sample " << i;
  }

  stop();
  const net::ServerStats st = stats();
  EXPECT_EQ(st.sessions_finished, 1u);
  EXPECT_EQ(st.sessions_aborted, 0u);
  EXPECT_EQ(st.chunks_rx, (signal.size() + kChunk - 1) / kChunk);
  EXPECT_EQ(st.samples_rx, signal.size());
  EXPECT_EQ(st.chunk_to_envelope.count, st.chunks_rx);
  EXPECT_LE(st.chunk_to_envelope.p50_us, st.chunk_to_envelope.p99_us);
}

TEST_F(NetServeTest, SharedAerEnvelopeParityWithDirectSession) {
  constexpr std::size_t kChannels = 3;
  const config::ScenarioSpec spec = shared_spec(kChannels);
  start(spec);

  const config::PipelineFactory factory(spec);
  const std::vector<emg::Recording> recordings = factory.make_recordings();
  ASSERT_EQ(recordings.size(), kChannels);

  // Channel-major lockstep rounds, exactly as the load generator ships.
  std::vector<std::vector<Real>> chans;
  chans.reserve(kChannels);
  for (const auto& r : recordings) chans.push_back(to_vector(r.emg_v));
  const std::size_t per_channel = chans[0].size();
  std::vector<Real> signal;
  signal.reserve(per_channel * kChannels);
  for (std::size_t at = 0; at < per_channel; at += kChunk) {
    const std::size_t k = std::min(kChunk, per_channel - at);
    for (std::size_t ch = 0; ch < kChannels; ++ch) {
      signal.insert(signal.end(), chans[ch].begin() + static_cast<long>(at),
                    chans[ch].begin() + static_cast<long>(at + k));
    }
  }

  net::Client client("127.0.0.1", port());
  wire::HelloBody hello;
  hello.channel_count = kChannels;
  const std::uint64_t id = client.hello(hello);
  stream_all(client, signal, kChannels);

  // Direct shared run on the same rounds.
  auto direct = factory.make_shared_session();
  std::vector<std::vector<Real>> direct_env(kChannels);
  for (std::size_t at = 0; at < per_channel; at += kChunk) {
    const std::size_t k = std::min(kChunk, per_channel - at);
    std::vector<Real> round;
    round.reserve(k * kChannels);
    for (std::size_t ch = 0; ch < kChannels; ++ch) {
      round.insert(round.end(), chans[ch].begin() + static_cast<long>(at),
                   chans[ch].begin() + static_cast<long>(at + k));
    }
    direct->push_chunk(round);
    for (std::size_t ch = 0; ch < kChannels; ++ch) {
      direct->drain_arv(ch, direct_env[ch]);
    }
  }
  direct->finish();
  for (std::size_t ch = 0; ch < kChannels; ++ch) {
    direct->drain_arv(ch, direct_env[ch]);
  }

  // Channel 0 lives in the session dir; channels >= 1 in ch<k>/ subdirs.
  for (std::size_t ch = 0; ch < kChannels; ++ch) {
    const std::string dir =
        ch == 0 ? session_dir(id)
                : session_dir(id) + "/ch" + std::to_string(ch);
    const std::vector<Real> persisted = store::read_envelope_f64(dir);
    ASSERT_EQ(persisted.size(), direct_env[ch].size()) << "channel " << ch;
    for (std::size_t i = 0; i < persisted.size(); ++i) {
      ASSERT_EQ(std::bit_cast<std::uint64_t>(persisted[i]),
                std::bit_cast<std::uint64_t>(direct_env[ch][i]))
          << "channel " << ch << " sample " << i;
    }
  }
}

TEST_F(NetServeTest, DuplicateSeqIsACountedDropNotAReject) {
  const config::ScenarioSpec spec = fast_spec();
  start(spec);

  const config::PipelineFactory factory(spec);
  const std::vector<Real> signal =
      to_vector(factory.make_recording(0).emg_v);
  const std::span<const Real> s(signal);

  net::Client client("127.0.0.1", port());
  client.hello(wire::HelloBody{});
  client.send_chunk(s.subspan(0, kChunk));
  client.set_next_seq(0);  // retransmit: same seq, same payload
  client.send_chunk(s.subspan(0, kChunk));
  client.set_next_seq(1);
  client.send_chunk(s.subspan(kChunk, kChunk));
  const std::uint64_t served_env = client.finish();

  // The duplicate was dropped, so the envelope equals a two-chunk run.
  const std::vector<Real> direct =
      direct_private_envelope(factory, 0, s.subspan(0, 2 * kChunk));
  EXPECT_EQ(served_env, direct.size());

  stop();
  const net::ServerStats st = stats();
  EXPECT_EQ(st.seq_duplicates_dropped, 1u);
  EXPECT_EQ(st.chunks_rx, 2u);
  EXPECT_EQ(st.sessions_finished, 1u);
}

TEST_F(NetServeTest, SequenceGapIsATypedRejectAndAbort) {
  start(fast_spec());

  const std::vector<Real> chunk(kChunk, 0.01);
  net::Client client("127.0.0.1", port());
  client.hello(wire::HelloBody{});
  client.send_chunk(chunk);    // seq 0: fine
  client.set_next_seq(7);      // gap: a future seq the server never saw
  client.send_chunk(chunk);
  const wire::ControlBody err = client.read_control();
  EXPECT_EQ(err.code, wire::ControlCode::kError);
  EXPECT_EQ(err.value,
            static_cast<std::uint64_t>(wire::ErrorCode::kBadSequence));

  stop();
  const net::ServerStats st = stats();
  EXPECT_EQ(st.seq_gap_rejects, 1u);
  EXPECT_EQ(st.sessions_aborted, 1u);
  EXPECT_EQ(st.sessions_finished, 0u);
}

TEST_F(NetServeTest, VersionMismatchIsATypedReject) {
  start(fast_spec());

  wire::HelloBody hello;
  hello.version = wire::kProtocolVersion + 1;
  try {
    net::Client client("127.0.0.1", port());
    client.hello(hello);
    FAIL() << "future protocol version was accepted";
  } catch (const net::ClientError& e) {
    EXPECT_EQ(e.code(), wire::ErrorCode::kVersionMismatch);
  }

  // The reject cost that one connection, nothing else.
  net::Client ok("127.0.0.1", port());
  ok.hello(wire::HelloBody{});
  const std::vector<Real> chunk(kChunk, 0.01);
  ok.send_chunk(chunk);
  EXPECT_GT(ok.finish(), 0u);

  stop();
  EXPECT_EQ(stats().version_rejects, 1u);
}

TEST_F(NetServeTest, UnknownScenarioAndBadTenantAreTypedRejects) {
  start(fast_spec());

  {
    // No such preset — and file paths must never resolve remotely.
    wire::HelloBody hello;
    hello.scenario = "../scenarios/paper-baseline.datc";
    try {
      net::Client client("127.0.0.1", port());
      client.hello(hello);
      FAIL() << "file-path scenario ref was accepted";
    } catch (const net::ClientError& e) {
      EXPECT_EQ(e.code(), wire::ErrorCode::kUnknownScenario);
    }
  }
  {
    wire::HelloBody hello;
    hello.tenant = "../escape";
    try {
      net::Client client("127.0.0.1", port());
      client.hello(hello);
      FAIL() << "path-traversal tenant was accepted";
    } catch (const net::ClientError& e) {
      EXPECT_EQ(e.code(), wire::ErrorCode::kBadState);
    }
  }
  {
    // Wrong channel count for a private-topology scenario.
    wire::HelloBody hello;
    hello.channel_count = 8;
    try {
      net::Client client("127.0.0.1", port());
      client.hello(hello);
      FAIL() << "channel-count mismatch was accepted";
    } catch (const net::ClientError& e) {
      EXPECT_EQ(e.code(), wire::ErrorCode::kBadState);
    }
  }

  stop();
  EXPECT_EQ(stats().scenario_rejects, 1u);
  EXPECT_EQ(stats().sessions_opened, 0u);
}

TEST_F(NetServeTest, SessionLimitRejectsUntilASlotFrees) {
  start(fast_spec(), [](net::ServeConfig& cfg) { cfg.max_sessions = 1; });

  const std::vector<Real> chunk(kChunk, 0.01);
  net::Client first("127.0.0.1", port());
  first.hello(wire::HelloBody{});
  first.send_chunk(chunk);

  try {
    net::Client second("127.0.0.1", port());
    second.hello(wire::HelloBody{});
    FAIL() << "second concurrent session exceeded serve.max_sessions = 1";
  } catch (const net::ClientError& e) {
    EXPECT_EQ(e.code(), wire::ErrorCode::kSessionLimit);
  }

  EXPECT_GT(first.finish(), 0u);  // finishing frees the slot...
  net::Client third("127.0.0.1", port());
  third.hello(wire::HelloBody{});  // ...so a new session fits again
  third.send_chunk(chunk);
  EXPECT_GT(third.finish(), 0u);

  stop();
  EXPECT_EQ(stats().session_limit_rejects, 1u);
  EXPECT_EQ(stats().sessions_finished, 2u);
}

TEST_F(NetServeTest, FramingLossClosesOneConnectionNotTheServer) {
  start(fast_spec());

  {
    net::Client broken("127.0.0.1", port());
    broken.hello(wire::HelloBody{});
    // A length prefix claiming ~4 GiB: the stream cannot be resync'd.
    const std::vector<std::uint8_t> garbage{0xFF, 0xFF, 0xFF, 0xFF};
    broken.send_raw(garbage);
    const wire::ControlBody err = broken.read_control();
    EXPECT_EQ(err.code, wire::ControlCode::kError);
    EXPECT_EQ(err.value,
              static_cast<std::uint64_t>(wire::ErrorCode::kFramingLost));
  }

  // The daemon survives the broken peer; fresh sessions stream fine.
  net::Client ok("127.0.0.1", port());
  ok.hello(wire::HelloBody{});
  const std::vector<Real> chunk(kChunk, 0.01);
  ok.send_chunk(chunk);
  EXPECT_GT(ok.finish(), 0u);

  stop();
  const net::ServerStats st = stats();
  EXPECT_EQ(st.framing_lost, 1u);
  EXPECT_EQ(st.sessions_aborted, 1u);
  EXPECT_EQ(st.sessions_finished, 1u);
}

TEST_F(NetServeTest, MalformedPayloadIsSkippedAndTheSessionContinues) {
  const config::ScenarioSpec spec = fast_spec();
  start(spec);

  const config::PipelineFactory factory(spec);
  const std::vector<Real> signal =
      to_vector(factory.make_recording(0).emg_v);
  const std::span<const Real> s(signal);

  net::Client client("127.0.0.1", port());
  client.hello(wire::HelloBody{});
  client.send_chunk(s.subspan(0, kChunk));

  // An intact frame with an unknown type byte: skipped, counted,
  // answered with a typed error — the connection stays up.
  const std::vector<std::uint8_t> bad = {4, 0, 0, 0, 0x7F, 1, 2, 3};
  client.send_raw(bad);
  const wire::ControlBody err = client.read_control();
  EXPECT_EQ(err.code, wire::ControlCode::kError);
  EXPECT_EQ(err.value,
            static_cast<std::uint64_t>(wire::ErrorCode::kMalformedFrame));

  client.send_chunk(s.subspan(kChunk, kChunk));
  const std::uint64_t served_env = client.finish();
  const std::vector<Real> direct =
      direct_private_envelope(factory, 0, s.subspan(0, 2 * kChunk));
  EXPECT_EQ(served_env, direct.size());

  stop();
  const net::ServerStats st = stats();
  EXPECT_EQ(st.frames_bad, 1u);
  EXPECT_EQ(st.sessions_finished, 1u);
}

TEST_F(NetServeTest, BackpressureBoundsInflightWithoutDeadlock) {
  start(fast_spec(),
        [](net::ServeConfig& cfg) { cfg.max_inflight_chunks = 1; });

  constexpr std::size_t kChunks = 24;
  const std::vector<Real> chunk(kChunk, 0.01);
  net::Client client("127.0.0.1", port());
  client.hello(wire::HelloBody{});
  for (std::size_t i = 0; i < kChunks; ++i) client.send_chunk(chunk);
  EXPECT_GT(client.finish(), 0u);

  stop();
  const net::ServerStats st = stats();
  EXPECT_EQ(st.chunks_rx, kChunks);
  // Bound 1 means a submit hits the bound whenever the strand has not
  // already finished the chunk in the submit->check window — throttling
  // provably engaged many times, and the session still completed.
  EXPECT_GT(st.throttle_events, kChunks / 2);
  EXPECT_EQ(st.sessions_finished, 1u);
}

TEST_F(NetServeTest, QuarantinedSessionGetsATypedErrorOthersKeepStreaming) {
  constexpr std::size_t kChannels = 2;
  start(shared_spec(kChannels));

  net::Client poisoned("127.0.0.1", port());
  wire::HelloBody hello;
  hello.channel_count = kChannels;
  poisoned.hello(hello);
  // 3 samples cannot split across 2 channels: the engine throws on the
  // strand, the shard quarantines the session, the sweep surfaces it.
  const std::vector<Real> odd(3, 0.01);
  poisoned.send_chunk(odd);
  const wire::ControlBody err = poisoned.read_control();
  EXPECT_EQ(err.code, wire::ControlCode::kError);
  EXPECT_EQ(err.value,
            static_cast<std::uint64_t>(wire::ErrorCode::kQuarantined));

  // Sibling sessions are untouched by the quarantine.
  net::Client ok("127.0.0.1", port());
  ok.hello(hello);
  const std::vector<Real> chunk(kChunk * kChannels, 0.01);
  ok.send_chunk(chunk);
  EXPECT_GT(ok.finish(), 0u);

  stop();
  const net::ServerStats st = stats();
  EXPECT_EQ(st.quarantined_sessions, 1u);
  EXPECT_EQ(st.sessions_finished, 1u);
}

TEST_F(NetServeTest, StopDrainsOpenSessionsWithATypedGoodbye) {
  start(fast_spec());

  net::Client client("127.0.0.1", port());
  client.hello(wire::HelloBody{});
  const std::vector<Real> chunk(kChunk, 0.01);
  client.send_chunk(chunk);

  server_->request_stop();
  const wire::ControlBody err = client.read_control();
  EXPECT_EQ(err.code, wire::ControlCode::kError);
  EXPECT_EQ(err.value,
            static_cast<std::uint64_t>(wire::ErrorCode::kDraining));

  stop();  // joins run(): the drain flushed the accepted work
  const net::ServerStats st = stats();
  EXPECT_EQ(st.sessions_aborted, 1u);
  EXPECT_EQ(st.sessions_active, 0u);
  // The aborted session still drained and persisted what it accepted.
  EXPECT_TRUE(store::has_envelope_f64(session_dir(1)));
}

TEST_F(NetServeTest, DrainForceClosesAPeerThatNeverDrainsItsErrors) {
  start(fast_spec());

  // A raw peer with a tiny receive window floods intact-but-malformed
  // frames and never reads the typed error responses: the server's
  // output backs up until the kernel buffer is full and POLLOUT never
  // fires again. Graceful drain must still finish — the close linger is
  // bounded, not at the dead peer's discretion (before the bound this
  // join hung forever).
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  const int rcvbuf = 4096;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port());
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  // ~330 k intact frames with an unknown type byte -> ~330 k error
  // responses (~14 MB), far past what the kernel can buffer towards a
  // closed receive window (tcp_wmem autotunes up to ~4 MB).
  constexpr std::uint64_t kBursts = 40;
  constexpr std::uint64_t kFramesPerBurst = 8192;
  std::vector<std::uint8_t> burst;
  const std::vector<std::uint8_t> bad = {4, 0, 0, 0, 0x7F, 1, 2, 3};
  for (std::uint64_t i = 0; i < kFramesPerBurst; ++i) {
    burst.insert(burst.end(), bad.begin(), bad.end());
  }
  for (std::uint64_t i = 0; i < kBursts; ++i) {
    ASSERT_EQ(::send(fd, burst.data(), burst.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(burst.size()));
  }
  // Wait until the server has answered the WHOLE flood (processing is
  // not gated on the peer reading), so megabytes of error output are
  // provably stuck behind the closed receive window before the drain.
  constexpr std::uint64_t kFrames = kBursts * kFramesPerBurst;
  for (int i = 0; i < 1000 && stats().frames_bad < kFrames; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_EQ(stats().frames_bad, kFrames);
  ASSERT_LT(stats().bytes_tx, kFrames * 30);  // most of it never flushed

  server_->request_stop();
  stop();  // joins run(): must return despite the unflushable zombie
  ::close(fd);
  const net::ServerStats st = stats();
  EXPECT_GT(st.frames_bad, 0u);
  EXPECT_EQ(st.sessions_active, 0u);
}

TEST_F(NetServeTest, LoadGenRunsManyConcurrentSessionsToCompletion) {
  const config::ScenarioSpec spec = fast_spec();
  start(spec);

  const config::PipelineFactory factory(spec);
  const std::vector<Real> signal =
      to_vector(factory.make_recording(0).emg_v);

  net::LoadGenConfig lg;
  lg.port = port();
  lg.sessions = 8;
  lg.concurrency = 4;
  lg.chunk_samples = kChunk;
  const net::LoadGenReport report = net::run_loadgen(lg, signal);
  EXPECT_EQ(report.sessions_ok, 8u);
  EXPECT_EQ(report.sessions_failed, 0u);
  EXPECT_EQ(report.samples_sent, 8u * signal.size());
  EXPECT_GT(report.envelope_samples, 0u);

  stop();
  const net::ServerStats st = stats();
  EXPECT_EQ(st.sessions_finished, 8u);
  EXPECT_EQ(st.samples_rx, 8u * signal.size());
  EXPECT_EQ(st.sessions_active, 0u);
}

}  // namespace
