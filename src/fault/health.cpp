#include "fault/health.hpp"

namespace datc::fault {

DecodeHealthMonitor::DecodeHealthMonitor(const LinkHealthConfig& config)
    : config_(config) {}

void DecodeHealthMonitor::observe(Real watermark, std::size_t good,
                                  std::size_t bad) {
  if (!config_.enabled()) return;

  if (good > 0) {
    last_good_t_ = watermark;
    armed_ = true;
  }

  if (good > 0 || bad > 0) {
    window_.push_back(Obs{watermark, good, bad});
    win_good_ += good;
    win_bad_ += bad;
  }
  while (!window_.empty() &&
         window_.front().t < watermark - config_.window_s) {
    win_good_ -= window_.front().good;
    win_bad_ -= window_.front().bad;
    window_.pop_front();
  }

  bool starved = false;
  if (config_.starvation_s > 0.0 && armed_) {
    starved = watermark - last_good_t_ > config_.starvation_s;
  }

  bool storm = false;
  if (config_.bad_rate > 0.0) {
    const std::size_t total = win_good_ + win_bad_;
    if (total >= config_.min_observations) {
      storm = static_cast<Real>(win_bad_) >
              config_.bad_rate * static_cast<Real>(total);
    }
  }

  const bool now_healthy = !starved && !storm;
  if (healthy_ && !now_healthy) ++trips_;
  healthy_ = now_healthy;
  reason_ = starved ? "starved" : (storm ? "bad-rate" : "ok");
}

}  // namespace datc::fault
