#include "fault/fault.hpp"
#include "fault/file_io.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

namespace datc::fault {

namespace {

/// Salt separating the fsync decision stream from the write stream.
constexpr std::uint64_t kSyncSalt = 0x73796e63ull;  // "sync"

class RealWritableFile final : public WritableFile {
 public:
  explicit RealWritableFile(const std::string& path)
      : path_(path), file_(std::fopen(path.c_str(), "wb")) {
    if (file_ == nullptr) {
      throw IoError("open " + path + ": " + std::strerror(errno),
                    /*transient=*/false);
    }
  }

  ~RealWritableFile() override {
    if (file_ != nullptr) std::fclose(file_);
  }

  void pwrite(std::uint64_t offset, const void* data,
              std::size_t size) override {
    require_open();
    if (std::fseek(file_, static_cast<long>(offset), SEEK_SET) != 0) {
      throw IoError("seek " + path_ + ": " + std::strerror(errno),
                    /*transient=*/false);
    }
    if (std::fwrite(data, 1, size, file_) != size) {
      throw IoError("write " + path_ + ": " + std::strerror(errno),
                    /*transient=*/false);
    }
  }

  void sync() override {
    require_open();
    if (std::fflush(file_) != 0) {
      throw IoError("flush " + path_ + ": " + std::strerror(errno),
                    /*transient=*/false);
    }
  }

  void close() override {
    if (file_ == nullptr) return;
    FILE* f = file_;
    file_ = nullptr;
    if (std::fclose(f) != 0) {
      throw IoError("close " + path_ + ": " + std::strerror(errno),
                    /*transient=*/false);
    }
  }

 private:
  void require_open() const {
    if (file_ == nullptr) {
      throw IoError("file " + path_ + " already closed",
                    /*transient=*/false);
    }
  }

  std::string path_;
  FILE* file_;
};

class RealFileIo final : public FileIo {
 public:
  std::unique_ptr<WritableFile> create(const std::string& path) override {
    return std::make_unique<RealWritableFile>(path);
  }
};

enum class OpFate { kOk, kShortWrite, kEnospc, kSyncFail };

}  // namespace

FileIo& real_file_io() {
  static RealFileIo io;
  return io;
}

void write_file(FileIo& io, const std::string& path, const void* data,
                std::size_t size) {
  auto file = io.create(path);
  if (size > 0) file->pwrite(0, data, size);
  file->sync();
  file->close();
}

// ------------------------------------------------------------ FaultyFileIo

namespace {

class FaultyWritableFile final : public WritableFile {
 public:
  FaultyWritableFile(std::unique_ptr<WritableFile> inner, FaultyFileIo* io)
      : inner_(std::move(inner)), io_(io) {}

  void pwrite(std::uint64_t offset, const void* data,
              std::size_t size) override {
    std::size_t prefix = 0;
    try {
      io_->check_op(/*is_sync=*/false, size, &prefix);
    } catch (const IoError&) {
      // A short write leaves a torn prefix on disk before failing — that
      // is the fault being modelled. The positional interface makes the
      // retry overwrite it at the same offset.
      if (prefix > 0) inner_->pwrite(offset, data, prefix);
      throw;
    }
    inner_->pwrite(offset, data, size);
  }

  void sync() override {
    io_->check_op(/*is_sync=*/true, 0, nullptr);
    inner_->sync();
  }

  void close() override {
    // Teardown is not injected: the fsync stream already covers the
    // finalize path, and a close that cannot fail keeps destructors
    // simple for every layer above.
    inner_->close();
  }

 private:
  std::unique_ptr<WritableFile> inner_;
  FaultyFileIo* io_;
};

}  // namespace

FaultyFileIo::FaultyFileIo(const StoreFaultSpec& spec, std::uint64_t seed,
                           FileIo& base)
    : spec_(spec), seed_(seed), base_(base) {}

std::unique_ptr<WritableFile> FaultyFileIo::create(const std::string& path) {
  return std::make_unique<FaultyWritableFile>(base_.create(path), this);
}

FaultyIoStats FaultyFileIo::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void FaultyFileIo::check_op(bool is_sync, std::size_t size,
                            std::size_t* written) {
  (void)size;
  std::uint64_t n = 0;
  OpFate fate = OpFate::kOk;
  {
    std::lock_guard<std::mutex> lock(mu_);
    n = stats_.ops++;
    // ENOSPC window: the tail of every `every`-op period fails. Retries
    // consume op indices, so a window shorter than the retry budget is
    // survived by backoff and a longer one forces counted drops.
    if (spec_.enospc_every_ops > 0) {
      const std::uint64_t every = spec_.enospc_every_ops;
      const std::uint64_t window =
          std::min(spec_.enospc_window_ops, every);
      if (n % every >= every - window) {
        fate = OpFate::kEnospc;
        ++stats_.enospc_failures;
      }
    }
    if (fate == OpFate::kOk) {
      if (is_sync) {
        if (hash01(seed_ ^ kSyncSalt, n) < spec_.fsync_fail_prob) {
          fate = OpFate::kSyncFail;
          ++stats_.sync_failures;
        }
      } else if (hash01(seed_, n) < spec_.write_fail_prob) {
        fate = OpFate::kShortWrite;
        ++stats_.short_writes;
      }
    }
  }
  switch (fate) {
    case OpFate::kOk:
      return;
    case OpFate::kEnospc:
      throw IoError("injected ENOSPC window (op " + std::to_string(n) + ")",
                    /*transient=*/true);
    case OpFate::kSyncFail:
      throw IoError("injected fsync failure (op " + std::to_string(n) + ")",
                    /*transient=*/true);
    case OpFate::kShortWrite:
      if (written != nullptr) *written = size / 2;
      throw IoError("injected short write (op " + std::to_string(n) + ")",
                    /*transient=*/true);
  }
}

}  // namespace datc::fault
