#pragma once
// Deterministic fault-injection layer: one seeded FaultPlan schedules
// every fault the chaos scenarios inject — store I/O failures (short
// writes, fsync failures, ENOSPC windows), session chunk-stream faults
// (drop / duplicate / stall / poison), and sensor faults (dropout and
// saturation bursts at the electrode).
//
// Determinism contract: every decision is a pure function of (seed,
// operation index) — never of wall time or thread timing — so the same
// fault seed reproduces the exact same fault sequence, and with it the
// same retry/drop/quarantine counts and the same degraded envelope,
// bit for bit. Each consumer derives its own decision stream from the
// plan seed (derive_seed) so streams never alias across subsystems or
// channels.

#include <cstdint>
#include <stdexcept>
#include <string>

#include "dsp/types.hpp"

namespace datc::fault {

using dsp::Real;

/// Splitmix64 of (seed, n): one hash = one i.i.d. decision. Unlike an
/// engine with hidden state, indexed hashing keeps decision k identical
/// no matter how many decisions other consumers drew in between.
[[nodiscard]] std::uint64_t mix64(std::uint64_t seed, std::uint64_t n);

/// Uniform in [0, 1) from mix64(seed, n) (53 mantissa bits).
[[nodiscard]] Real hash01(std::uint64_t seed, std::uint64_t n);

/// Derives an independent stream seed from a plan seed and a tag string
/// (e.g. "store", "session/3"). FNV-1a over the tag, mixed with the base.
[[nodiscard]] std::uint64_t derive_seed(std::uint64_t base,
                                        const std::string& tag);

/// A seeded counter over hash01: next01() returns decision i and
/// advances. Copyable; two copies replay the same sequence.
class FaultStream {
 public:
  explicit FaultStream(std::uint64_t seed) : seed_(seed) {}

  [[nodiscard]] Real next01() { return hash01(seed_, n_++); }
  [[nodiscard]] std::uint64_t index() const { return n_; }
  [[nodiscard]] std::uint64_t seed() const { return seed_; }

 private:
  std::uint64_t seed_;
  std::uint64_t n_{0};
};

/// Store-layer fault model, consumed by FaultyFileIo. Probabilities are
/// per I/O operation (one record/header write or one sync each).
struct StoreFaultSpec {
  /// Transient short-write probability per write op: a prefix of the
  /// buffer lands on disk, then the op fails (torn-record regime).
  Real write_fail_prob{0.0};
  /// Transient failure probability per sync (fsync/flush) op.
  Real fsync_fail_prob{0.0};
  /// Every Nth op period ends in an ENOSPC window (0 = off): ops with
  /// (n % every) >= every - window all fail. Retries consume ops, so a
  /// window longer than the retry budget forces counted drops; a shorter
  /// one is survived by backoff — both deterministically.
  std::uint64_t enospc_every_ops{0};
  std::uint64_t enospc_window_ops{16};

  [[nodiscard]] bool any() const {
    return write_fail_prob > 0.0 || fsync_fail_prob > 0.0 ||
           enospc_every_ops > 0;
  }
};

/// Session chunk-stream fault model, consumed by FaultySession.
/// Chunk probabilities are per push_chunk call, decided by chunk index.
struct SessionFaultSpec {
  Real chunk_drop_prob{0.0};       ///< chunk never reaches the session
  Real chunk_dup_prob{0.0};        ///< chunk is delivered twice
  Real chunk_stall_prob{0.0};      ///< delivery stalls for stall_ms first
  Real chunk_stall_ms{5.0};
  Real chunk_poison_prob{0.0};     ///< delivery throws (quarantine path)
  /// Sensor faults: a burst covering a deterministic slice of the chunk.
  Real sensor_dropout_prob{0.0};   ///< slice reads as 0 V (lead-off)
  Real sensor_saturate_prob{0.0};  ///< slice clips to +-sensor_rail_v
  Real sensor_rail_v{1.0};

  [[nodiscard]] bool any() const {
    return chunk_drop_prob > 0.0 || chunk_dup_prob > 0.0 ||
           chunk_stall_prob > 0.0 || chunk_poison_prob > 0.0 ||
           sensor_dropout_prob > 0.0 || sensor_saturate_prob > 0.0;
  }
};

/// One seed + the per-layer models: everything a chaos scenario needs.
/// config::PipelineFactory derives it from the `fault.*` scenario keys.
struct FaultPlan {
  std::uint64_t seed{4242};
  StoreFaultSpec store{};
  SessionFaultSpec session{};

  [[nodiscard]] bool any() const { return store.any() || session.any(); }
  /// Stream seed for the store I/O decision stream.
  [[nodiscard]] std::uint64_t store_seed() const {
    return derive_seed(seed, "store");
  }
  /// Stream seed for session `id`'s chunk-stream decisions.
  [[nodiscard]] std::uint64_t session_seed(std::uint32_t id) const {
    return derive_seed(seed, "session/" + std::to_string(id));
  }
};

/// Failure of one storage I/O operation. `transient` failures are worth
/// retrying (the injected windows clear; a real disk may too); the
/// Recorder retries them with bounded exponential backoff and falls back
/// to counted drop-and-continue when they persist.
class IoError : public std::runtime_error {
 public:
  IoError(const std::string& what, bool transient)
      : std::runtime_error(what), transient_(transient) {}

  [[nodiscard]] bool transient() const { return transient_; }

 private:
  bool transient_;
};

}  // namespace datc::fault
