#pragma once
// Fault-injectable file I/O seam for the persistent store. SegmentWriter
// performs all of its writes through WritableFile/FileIo, so the chaos
// layer can interpose failures without the store knowing.
//
// The write interface is positional (pwrite-style): the caller states
// the absolute offset of every write. That makes failed operations
// retryable by construction — a short write leaves torn bytes behind,
// but the retry lands on the same offset and simply overwrites them, so
// no misaligned records can ever enter a segment payload.
//
// FaultyFileIo wraps a base FileIo and injects StoreFaultSpec faults
// (short writes, fsync failures, ENOSPC windows) from one deterministic
// decision stream shared by every file it creates: decision n is a pure
// function of (seed, n), so the nth store I/O operation of a run always
// sees the same fate.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "fault/fault.hpp"

namespace datc::fault {

/// One file open for (over)writing. All methods throw IoError on failure.
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  /// Writes `size` bytes at absolute `offset` (extends the file as
  /// needed). Idempotent per (offset, data): safe to retry after failure.
  virtual void pwrite(std::uint64_t offset, const void* data,
                      std::size_t size) = 0;

  /// Flushes buffered data towards the device.
  virtual void sync() = 0;

  /// Flushes and closes. Idempotent; further ops are invalid.
  virtual void close() = 0;
};

/// Factory for WritableFiles (the only operation the store needs).
class FileIo {
 public:
  virtual ~FileIo() = default;

  /// Creates/truncates `path` for writing.
  virtual std::unique_ptr<WritableFile> create(const std::string& path) = 0;
};

/// The process-wide pass-through implementation over the real filesystem.
[[nodiscard]] FileIo& real_file_io();

/// Writes `size` bytes to a fresh `path` through the seam: create, one
/// positional write at offset 0, sync, close. The store's sidecar writers
/// (manifest.txt, envelope.f64) route through this so no write-side file
/// I/O bypasses fault injection or the positional-retry contract.
void write_file(FileIo& io, const std::string& path, const void* data,
                std::size_t size);

/// Counters a FaultyFileIo exposes for tests and benches.
struct FaultyIoStats {
  std::uint64_t ops{0};             ///< write + sync operations attempted
  std::uint64_t short_writes{0};    ///< injected torn writes
  std::uint64_t sync_failures{0};   ///< injected fsync failures
  std::uint64_t enospc_failures{0}; ///< ops failed inside an ENOSPC window
};

/// Wraps a base FileIo and injects StoreFaultSpec faults deterministically.
/// Thread-safe: the op counter and stats are mutex-guarded (the store's
/// writer thread is the usual caller, but tests may probe concurrently).
class FaultyFileIo final : public FileIo {
 public:
  FaultyFileIo(const StoreFaultSpec& spec, std::uint64_t seed,
               FileIo& base = real_file_io());

  std::unique_ptr<WritableFile> create(const std::string& path) override;

  [[nodiscard]] FaultyIoStats stats() const;

  /// Internal (used by the files this io creates): consumes one op index
  /// and throws IoError if that op must fail. `is_sync` selects the
  /// fsync decision stream; `written` reports how many bytes of a write
  /// landed before a short-write failure.
  void check_op(bool is_sync, std::size_t size, std::size_t* written);

 private:
  StoreFaultSpec spec_;
  std::uint64_t seed_;
  FileIo& base_;
  mutable std::mutex mu_;
  FaultyIoStats stats_;
};

}  // namespace datc::fault
