#include "fault/fault.hpp"

namespace datc::fault {

std::uint64_t mix64(std::uint64_t seed, std::uint64_t n) {
  // splitmix64 finalizer over the pair; the golden-ratio stride keeps
  // consecutive indices decorrelated.
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ull * (n + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

Real hash01(std::uint64_t seed, std::uint64_t n) {
  return static_cast<Real>(mix64(seed, n) >> 11) * 0x1.0p-53;
}

std::uint64_t derive_seed(std::uint64_t base, const std::string& tag) {
  std::uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a offset basis
  for (const char c : tag) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return mix64(base, h);
}

}  // namespace datc::fault
