#pragma once
// Decode-health monitor for the streaming receive chain. Watches the
// decoded event stream for two failure signatures:
//
//  * starvation — the link has produced no decoded events for longer
//    than `starvation_s` while signal time keeps advancing (dead TX,
//    saturated channel, detector collapse);
//  * garbage — the fraction of bad decode outcomes (invalid AER
//    addresses in shared mode, false-alarm bits in private mode) over a
//    sliding window exceeds `bad_rate`.
//
// While unhealthy, the session switches the reconstructor to a flagged
// envelope-hold (last good value, counted) instead of emitting garbage;
// the monitor recovers as soon as the window clears. Decisions depend
// only on the decoded stream and watermark times, never on wall time,
// so degraded output is deterministic and reproducible.

#include <cstddef>
#include <deque>

#include "dsp/types.hpp"

namespace datc::fault {

using dsp::Real;

struct LinkHealthConfig {
  /// Trip after this long without a decoded event (0 = starvation check
  /// off). Arms only once the first event has been decoded, so a silent
  /// lead-in does not trip it.
  Real starvation_s{0.0};
  /// Trip when bad / (good + bad) over the window exceeds this fraction
  /// (0 = bad-rate check off).
  Real bad_rate{0.0};
  /// Sliding window for the bad-rate check, seconds of watermark time.
  Real window_s{1.0};
  /// Bad-rate check needs at least this many observations in the window
  /// before it may trip (a single bad event is not a storm).
  std::size_t min_observations{8};

  [[nodiscard]] bool enabled() const {
    return starvation_s > 0.0 || bad_rate > 0.0;
  }
};

class DecodeHealthMonitor {
 public:
  explicit DecodeHealthMonitor(const LinkHealthConfig& config);

  /// Feed one chunk's outcome: the event-time watermark after the chunk,
  /// the number of well-decoded events and the number of bad outcomes
  /// (invalid addresses / false-alarm bits) it carried.
  void observe(Real watermark, std::size_t good, std::size_t bad);

  [[nodiscard]] bool healthy() const { return healthy_; }
  /// healthy -> unhealthy transitions so far.
  [[nodiscard]] std::size_t trips() const { return trips_; }
  /// "starved", "bad-rate" or "ok".
  [[nodiscard]] const char* reason() const { return reason_; }

  [[nodiscard]] const LinkHealthConfig& config() const { return config_; }

 private:
  struct Obs {
    Real t;
    std::size_t good;
    std::size_t bad;
  };

  LinkHealthConfig config_;
  std::deque<Obs> window_;
  std::size_t win_good_{0};
  std::size_t win_bad_{0};
  Real last_good_t_{0.0};
  bool armed_{false};  ///< first good event seen
  bool healthy_{true};
  std::size_t trips_{0};
  const char* reason_{"ok"};
};

}  // namespace datc::fault
