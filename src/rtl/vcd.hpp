#pragma once
// Minimal IEEE-1364 VCD (value change dump) writer so DTC runs can be
// inspected in GTKWave — and parsed back by the tests to validate the
// dump itself.

#include <fstream>
#include <string>
#include <vector>

#include "rtl/signal.hpp"

namespace datc::rtl {

class VcdWriter {
 public:
  /// \param timescale_ns  nanoseconds per simulator cycle tick
  VcdWriter(std::string path, dsp::Real timescale_ns = 500000.0);
  ~VcdWriter();
  VcdWriter(const VcdWriter&) = delete;
  VcdWriter& operator=(const VcdWriter&) = delete;

  /// Register a signal; must happen before the first sample.
  void track(SignalBase& s);

  /// Write header + initial values, then value changes per call.
  void sample(std::size_t cycle);

  /// Flush and close (also done by the destructor).
  void close();

  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  void write_header();
  static std::string id_for(std::size_t index);

  std::string path_;
  dsp::Real timescale_ns_;
  std::ofstream out_;
  bool header_written_{false};
  std::vector<SignalBase*> tracked_;
  std::vector<std::uint64_t> last_;
};

}  // namespace datc::rtl
