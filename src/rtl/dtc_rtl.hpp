#pragma once
// Structural register-transfer-level model of the DTC (Fig. 4), the
// design that was "implemented using a HDL and synthesized ... in a high
// voltage 0.18um CMOS technology". Registers and combinational clouds are
// explicit two-phase signals, so the simulation produces per-net toggle
// counts for the power model and is checked cycle-exact against the
// behavioural core::Dtc.
//
// Register inventory (10-bit datapath; max frame 800 needs 10 bits):
//   In_reg (1)        comparator synchroniser
//   d_out_prev (1)    event edge detector
//   counter (10)      ones count of the running frame
//   cycle (10)        frame position
//   n_one1/2/3 (3x10) frame history
//   set_vth (4)       DAC code
//
// Combinational clouds: frame-length compare, +1 incrementers, the Q8
// weighted-average datapath (shift-add multipliers by 166 and 90), the
// interval-ROM priority chain.

#include "core/dtc.hpp"
#include "core/interval_table.hpp"
#include "rtl/module.hpp"
#include "rtl/signal.hpp"

namespace datc::rtl {

class DtcRtl final : public Module {
 public:
  explicit DtcRtl(const core::DtcConfig& config);

  /// Primary input: the asynchronous comparator level for this cycle
  /// (write before Simulator::step()).
  void set_d_in(bool v) { d_in_.write(v); }

  // Primary outputs of the cycle that just completed. The combinational
  // nets themselves already show the next cycle's view after the clock
  // edge, so tick() latches the pre-edge values for the testbench.
  [[nodiscard]] bool d_out() const { return last_d_out_; }
  [[nodiscard]] bool event() const { return last_event_; }
  [[nodiscard]] bool end_of_frame() const { return last_eof_; }
  [[nodiscard]] unsigned set_vth() const { return set_vth_q_.read(); }

  // Internal state for equivalence checks.
  [[nodiscard]] std::uint32_t counter() const { return counter_q_.read(); }
  [[nodiscard]] std::uint32_t n_one3() const { return n3_q_.read(); }

  void eval() override;
  void tick() override;
  void reset() override;
  void describe(std::vector<ComponentDescriptor>& out) const override;

  [[nodiscard]] const core::DtcConfig& config() const { return config_; }

  /// Signals worth waving in a VCD dump.
  [[nodiscard]] std::vector<SignalBase*> trace_signals();

 private:
  core::DtcConfig config_;
  core::IntervalTable table_;
  std::uint32_t frame_len_;

  // Primary input.
  Bit& d_in_;
  // Registers.
  Bit& in_reg_q_;
  Bit& d_out_prev_q_;
  Bus& counter_q_;
  Bus& cycle_q_;
  Bus& n1_q_;
  Bus& n2_q_;
  Bus& n3_q_;
  Bus& set_vth_q_;
  // Combinational nets.
  Bit& d_out_c_;
  Bit& event_c_;
  Bit& eof_c_;
  Bus& count_now_c_;  ///< counter + current d_out (frame total at EOF)
  Bus& avr_c_;        ///< fixed-point weighted average
  Bus& level_c_;      ///< priority-encoded next Set_Vth
  // Pre-edge output latches for the testbench (see d_out()).
  bool last_d_out_{false};
  bool last_event_{false};
  bool last_eof_{false};
};

}  // namespace datc::rtl
