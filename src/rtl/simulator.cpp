#include "rtl/simulator.hpp"

#include <stdexcept>

#include "rtl/vcd.hpp"

namespace datc::rtl {

void Simulator::add(Module& m) {
  modules_.push_back(&m);
  for (auto* s : m.signals()) signals_.push_back(s);
}

void Simulator::reset() {
  for (auto* m : modules_) m->reset();
  for (auto* s : signals_) s->commit();
  // Record the reset state as time zero so the first cycle's changes are
  // visible in the waveform.
  if (vcd_ != nullptr) vcd_->sample(0);
}

void Simulator::settle() {
  for (unsigned depth = 1; depth <= max_delta_; ++depth) {
    for (auto* m : modules_) m->eval();
    bool changed = false;
    for (auto* s : signals_) changed = s->commit() || changed;
    ++stats_.delta_iterations;
    stats_.max_delta_depth = std::max<std::size_t>(stats_.max_delta_depth,
                                                   depth);
    if (!changed) return;
  }
  throw std::runtime_error(
      "rtl::Simulator: combinational logic failed to settle "
      "(loop or max_delta too small)");
}

void Simulator::step() {
  settle();
  for (auto* m : modules_) m->tick();
  for (auto* s : signals_) s->commit();
  // Register updates may ripple through combinational logic; settle again
  // so sampled outputs are consistent at the end of the cycle.
  settle();
  ++stats_.cycles;
  if (vcd_ != nullptr) vcd_->sample(stats_.cycles);
}

void Simulator::run(std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) step();
}

std::size_t Simulator::total_bit_toggles() const {
  std::size_t total = 0;
  for (const auto* s : signals_) total += s->bit_toggles();
  return total;
}

void Simulator::reset_toggles() {
  for (auto* s : signals_) s->reset_toggles();
}

}  // namespace datc::rtl
