#pragma once
// Module base class and the netlist self-description consumed by the
// synthesis cost model (src/synth). A Module owns signals and child
// modules; eval() models its combinational cloud, tick() its registers.

#include <memory>
#include <string>
#include <vector>

#include "rtl/signal.hpp"

namespace datc::rtl {

/// Structural summary of a hardware block, in units the technology mapper
/// understands. One descriptor ~ one datapath macro.
enum class ComponentKind {
  kFlipFlop,        // width = number of bits
  kHalfAdder,       // width = bits (incrementer stage)
  kFullAdder,       // width = bits (adder/subtractor/magnitude comparator)
  kComparatorEq,     // width = bits (XNOR + AND tree)
  kConstComparator,  // width = total bits compared against constants
  kMux2,             // width = bits per 2:1 mux column
  kRomBits,          // width = total stored bits (after constant folding)
  kPriorityEncoder,  // width = number of inputs
  kGateMisc,         // width = equivalent NAND2 count (control glue)
};

struct ComponentDescriptor {
  std::string name;
  ComponentKind kind{ComponentKind::kGateMisc};
  unsigned width{1};
};

class Module {
 public:
  explicit Module(std::string name) : name_(std::move(name)) {}
  virtual ~Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// Combinational evaluation: read current signal values, write
  /// combinational outputs. Must be idempotent at a fixed point.
  virtual void eval() {}

  /// Clock edge: read current values, write register outputs (visible
  /// after the simulator commits).
  virtual void tick() {}

  /// Asynchronous reset (the RST pin).
  virtual void reset() {}

  /// Append this block's structural description (for synthesis).
  virtual void describe(std::vector<ComponentDescriptor>& out) const {
    (void)out;
  }

  [[nodiscard]] const std::string& name() const { return name_; }

  [[nodiscard]] const std::vector<SignalBase*>& signals() const {
    return signals_;
  }

 protected:
  /// Create a signal owned by this module and registered for commits.
  template <typename T>
  Signal<T>& make_signal(const std::string& sig_name, unsigned width,
                         T reset_value = T{}) {
    auto s = std::make_unique<Signal<T>>(name_ + "." + sig_name, width,
                                         reset_value);
    auto* raw = s.get();
    owned_.push_back(std::move(s));
    signals_.push_back(raw);
    return *raw;
  }

 private:
  std::string name_;
  std::vector<std::unique_ptr<SignalBase>> owned_;
  std::vector<SignalBase*> signals_;
};

}  // namespace datc::rtl
