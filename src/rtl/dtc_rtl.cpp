#include "core/dtc.hpp"
#include "core/interval_table.hpp"
#include "core/predictor.hpp"
#include "dsp/types.hpp"
#include "rtl/dtc_rtl.hpp"
#include "rtl/module.hpp"
#include "rtl/signal.hpp"

namespace datc::rtl {

DtcRtl::DtcRtl(const core::DtcConfig& config)
    : Module("dtc"),
      config_(config),
      table_(config.dac_bits, config.duty_lo, config.duty_hi),
      frame_len_(core::frame_cycles(config.frame)),
      d_in_(make_signal<bool>("d_in", 1)),
      in_reg_q_(make_signal<bool>("in_reg_q", 1)),
      d_out_prev_q_(make_signal<bool>("d_out_prev_q", 1)),
      counter_q_(make_signal<std::uint32_t>("counter_q", 10)),
      cycle_q_(make_signal<std::uint32_t>("cycle_q", 10)),
      n1_q_(make_signal<std::uint32_t>("n_one1_q", 10)),
      n2_q_(make_signal<std::uint32_t>("n_one2_q", 10)),
      n3_q_(make_signal<std::uint32_t>("n_one3_q", 10)),
      set_vth_q_(make_signal<std::uint32_t>("set_vth_q", 4,
                                            config.reset_code)),
      d_out_c_(make_signal<bool>("d_out", 1)),
      event_c_(make_signal<bool>("event", 1)),
      eof_c_(make_signal<bool>("end_of_frame", 1)),
      count_now_c_(make_signal<std::uint32_t>("count_now", 10)),
      avr_c_(make_signal<std::uint32_t>("avr", 10)),
      level_c_(make_signal<std::uint32_t>("level_next", 4)) {
  dsp::require(config_.use_fixed_point,
               "DtcRtl: hardware implements the fixed-point datapath only");
}

void DtcRtl::eval() {
  const bool d_out = in_reg_q_.read();
  d_out_c_.write(d_out);
  event_c_.write(d_out && !d_out_prev_q_.read());

  const std::uint32_t count_now = counter_q_.read() + (d_out ? 1u : 0u);
  count_now_c_.write(count_now);
  eof_c_.write(cycle_q_.read() == frame_len_ - 1);

  // Weighted-average datapath. kCountFirst feeds the finishing frame's
  // total straight into the newest tap; kListingLiteral averages the three
  // previously completed frames.
  std::uint32_t avr = 0;
  switch (config_.order) {
    case core::PredictorUpdateOrder::kCountFirst:
      avr = core::weighted_average_fixed(config_.weights, count_now,
                                         n3_q_.read(), n2_q_.read());
      break;
    case core::PredictorUpdateOrder::kListingLiteral:
      avr = core::weighted_average_fixed(config_.weights, n3_q_.read(),
                                         n2_q_.read(), n1_q_.read());
      break;
  }
  avr_c_.write(avr);
  level_c_.write(core::select_level(table_, config_.frame,
                                    static_cast<dsp::Real>(avr),
                                    config_.min_code));
}

void DtcRtl::tick() {
  const bool eof = eof_c_.read();
  const bool d_out = d_out_c_.read();
  last_d_out_ = d_out;
  last_event_ = event_c_.read();
  last_eof_ = eof;

  in_reg_q_.write(d_in_.read());
  d_out_prev_q_.write(d_out);

  if (eof) {
    counter_q_.write(0);
    cycle_q_.write(0);
    n1_q_.write(n2_q_.read());
    n2_q_.write(n3_q_.read());
    n3_q_.write(count_now_c_.read());
    set_vth_q_.write(level_c_.read());
  } else {
    counter_q_.write(count_now_c_.read());
    cycle_q_.write(cycle_q_.read() + 1);
  }
}

void DtcRtl::reset() {
  in_reg_q_.reset_value_now();
  d_out_prev_q_.reset_value_now();
  counter_q_.reset_value_now();
  cycle_q_.reset_value_now();
  n1_q_.reset_value_now();
  n2_q_.reset_value_now();
  n3_q_.reset_value_now();
  set_vth_q_.force(config_.reset_code);
}

std::vector<SignalBase*> DtcRtl::trace_signals() {
  return {&d_in_, &in_reg_q_, &d_out_c_, &event_c_, &eof_c_,
          &counter_q_, &cycle_q_, &n1_q_, &n2_q_, &n3_q_,
          &avr_c_, &set_vth_q_};
}

void DtcRtl::describe(std::vector<ComponentDescriptor>& out) const {
  const unsigned nb = config_.dac_bits;
  const unsigned levels = 1u << nb;
  // Registers.
  out.push_back({"in_reg", ComponentKind::kFlipFlop, 1});
  out.push_back({"d_out_prev", ComponentKind::kFlipFlop, 1});
  out.push_back({"counter", ComponentKind::kFlipFlop, 10});
  out.push_back({"cycle", ComponentKind::kFlipFlop, 10});
  out.push_back({"n_one1", ComponentKind::kFlipFlop, 10});
  out.push_back({"n_one2", ComponentKind::kFlipFlop, 10});
  out.push_back({"n_one3", ComponentKind::kFlipFlop, 10});
  out.push_back({"set_vth", ComponentKind::kFlipFlop, nb});
  // Incrementers.
  out.push_back({"counter_inc", ComponentKind::kHalfAdder, 10});
  out.push_back({"cycle_inc", ComponentKind::kHalfAdder, 10});
  // Frame-length compare (cycle == frame-1) against a selector-muxed
  // constant.
  out.push_back({"frame_cmp", ComponentKind::kComparatorEq, 10});
  out.push_back({"frame_const_mux", ComponentKind::kMux2, 10});
  // Weighted-average datapath: shift-add multipliers for the Q8 weights
  // (166 = 4 set bits -> 3 adders, 90 = 4 set bits -> 3 adders), plus the
  // 3-operand final sum (2 adders, ~19 bits). The >>9 is wiring.
  out.push_back({"wmul_w2", ComponentKind::kFullAdder, 3 * 14});
  out.push_back({"wmul_w1", ComponentKind::kFullAdder, 3 * 14});
  out.push_back({"wsum", ComponentKind::kFullAdder, 2 * 19});
  // Interval ROM (constant-folded) + the priority comparison chain:
  // (levels-1) magnitude comparators on the 10-bit average.
  out.push_back({"interval_rom", ComponentKind::kRomBits,
                 static_cast<unsigned>(
                     core::IntervalTable(nb, config_.duty_lo, config_.duty_hi)
                         .rom_bits())});
  // Comparisons against ROM constants fold heavily in synthesis; modelled
  // as constant comparators rather than full subtractors.
  out.push_back({"interval_cmp", ComponentKind::kConstComparator,
                 static_cast<unsigned>((levels - 1) * 10)});
  out.push_back({"priority_enc", ComponentKind::kPriorityEncoder, levels});
  // Control glue: reset/enable fanout, EOF gating, clock gating cell.
  out.push_back({"control", ComponentKind::kGateMisc, 24});
}

}  // namespace datc::rtl
