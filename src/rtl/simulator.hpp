#pragma once
// Cycle-based RTL simulator: per clock cycle it settles the combinational
// clouds to a fixed point (delta cycles with an iteration cap), fires the
// clock edge, commits register outputs, and optionally samples a VCD
// trace. Sufficient and exact for fully synchronous designs like the DTC.

#include <functional>
#include <vector>

#include "rtl/module.hpp"
#include "rtl/signal.hpp"

namespace datc::rtl {

class VcdWriter;  // forward (rtl/vcd.hpp)

struct SimStats {
  std::size_t cycles{0};
  std::size_t delta_iterations{0};  ///< total eval passes
  std::size_t max_delta_depth{0};   ///< worst settle depth in one cycle
};

class Simulator {
 public:
  explicit Simulator(unsigned max_delta = 64) : max_delta_(max_delta) {}

  /// Register a module (its signals are picked up automatically).
  void add(Module& m);

  /// Asynchronous reset: calls Module::reset() and commits.
  void reset();

  /// One clock cycle. The caller typically writes primary inputs first.
  void step();

  /// Run n cycles.
  void run(std::size_t n);

  /// Attach a VCD writer sampled after each cycle (may be null).
  void attach_vcd(VcdWriter* vcd) { vcd_ = vcd; }

  [[nodiscard]] const SimStats& stats() const { return stats_; }

  /// Sum of bit toggles over every registered signal.
  [[nodiscard]] std::size_t total_bit_toggles() const;
  void reset_toggles();

  [[nodiscard]] const std::vector<SignalBase*>& signals() const {
    return signals_;
  }

 private:
  void settle();

  std::vector<Module*> modules_;
  std::vector<SignalBase*> signals_;
  unsigned max_delta_;
  SimStats stats_;
  VcdWriter* vcd_{nullptr};
};

}  // namespace datc::rtl
