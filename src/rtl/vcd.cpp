#include "dsp/types.hpp"
#include "rtl/signal.hpp"
#include "rtl/vcd.hpp"

#include <algorithm>
#include <cmath>

namespace datc::rtl {
namespace {

/// VCD identifier characters (printable ASCII ! .. ~).
constexpr char kIdFirst = '!';
constexpr int kIdRange = 94;

std::string sanitize(const std::string& name) {
  std::string s = name;
  std::replace(s.begin(), s.end(), ' ', '_');
  return s;
}

std::string binary_string(std::uint64_t v, unsigned width) {
  std::string s(width, '0');
  for (unsigned i = 0; i < width; ++i) {
    if ((v >> i) & 1u) s[width - 1 - i] = '1';
  }
  return s;
}

}  // namespace

VcdWriter::VcdWriter(std::string path, dsp::Real timescale_ns)
    : path_(std::move(path)), timescale_ns_(timescale_ns), out_(path_) {
  dsp::require(timescale_ns_ > 0.0, "VcdWriter: timescale must be positive");
  dsp::require(out_.good(), "VcdWriter: cannot open " + path_);
}

VcdWriter::~VcdWriter() { close(); }

void VcdWriter::track(SignalBase& s) {
  dsp::require(!header_written_, "VcdWriter: track() after first sample");
  tracked_.push_back(&s);
}

std::string VcdWriter::id_for(std::size_t index) {
  std::string id;
  do {
    id.push_back(static_cast<char>(kIdFirst + index % kIdRange));
    index /= kIdRange;
  } while (index != 0);
  return id;
}

void VcdWriter::write_header() {
  out_ << "$date reproduction run $end\n";
  out_ << "$version datc rtl kernel $end\n";
  out_ << "$timescale " << static_cast<long long>(timescale_ns_)
       << " ns $end\n";
  out_ << "$scope module dtc $end\n";
  for (std::size_t i = 0; i < tracked_.size(); ++i) {
    out_ << "$var wire " << tracked_[i]->width() << ' ' << id_for(i) << ' '
         << sanitize(tracked_[i]->name()) << " $end\n";
  }
  out_ << "$upscope $end\n$enddefinitions $end\n";
  out_ << "$dumpvars\n";
  last_.resize(tracked_.size());
  for (std::size_t i = 0; i < tracked_.size(); ++i) {
    const auto v = tracked_[i]->value_bits();
    last_[i] = v;
    if (tracked_[i]->width() == 1) {
      out_ << (v & 1u) << id_for(i) << '\n';
    } else {
      out_ << 'b' << binary_string(v, tracked_[i]->width()) << ' '
           << id_for(i) << '\n';
    }
  }
  out_ << "$end\n";
  header_written_ = true;
}

void VcdWriter::sample(std::size_t cycle) {
  if (!header_written_) write_header();
  bool stamped = false;
  for (std::size_t i = 0; i < tracked_.size(); ++i) {
    const auto v = tracked_[i]->value_bits();
    if (v == last_[i]) continue;
    if (!stamped) {
      out_ << '#' << cycle << '\n';
      stamped = true;
    }
    if (tracked_[i]->width() == 1) {
      out_ << (v & 1u) << id_for(i) << '\n';
    } else {
      out_ << 'b' << binary_string(v, tracked_[i]->width()) << ' '
           << id_for(i) << '\n';
    }
    last_[i] = v;
  }
}

void VcdWriter::close() {
  if (out_.is_open()) {
    if (!header_written_) write_header();
    out_.close();
  }
}

}  // namespace datc::rtl
