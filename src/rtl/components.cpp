#include "dsp/types.hpp"
#include "rtl/components.hpp"
#include "rtl/module.hpp"

namespace datc::rtl {

Counter::Counter(std::string name, unsigned width)
    : Module(std::move(name)),
      width_(width),
      mask_(width >= 32 ? 0xFFFFFFFFu : ((1u << width) - 1u)),
      enable_(make_signal<bool>("en", 1, false)),
      clear_(make_signal<bool>("clr", 1, false)),
      q_(make_signal<std::uint32_t>("q", width, 0)) {
  dsp::require(width_ >= 1 && width_ <= 32,
               "Counter: width must lie in [1,32]");
}

void Counter::tick() {
  if (clear_.read()) {
    q_.write(0);
  } else if (enable_.read()) {
    q_.write((q_.read() + 1u) & mask_);
  }
}

void Counter::reset() { q_.reset_value_now(); }

void Counter::describe(std::vector<ComponentDescriptor>& out) const {
  out.push_back({name() + ".ff", ComponentKind::kFlipFlop, width_});
  out.push_back({name() + ".inc", ComponentKind::kHalfAdder, width_});
  out.push_back({name() + ".ctl", ComponentKind::kGateMisc, width_ / 2 + 1});
}

ShiftRegisterBank::ShiftRegisterBank(std::string name, unsigned width,
                                     std::size_t stages)
    : Module(std::move(name)),
      width_(width),
      shift_(make_signal<bool>("shift", 1, false)),
      data_(make_signal<std::uint32_t>("d", width, 0)) {
  dsp::require(width_ >= 1 && width_ <= 32 && stages >= 1,
               "ShiftRegisterBank: bad geometry");
  q_.reserve(stages);
  for (std::size_t i = 0; i < stages; ++i) {
    // Built via append instead of `"q" + std::to_string(i)`: the rvalue
    // operator+ overload trips GCC 12's -Wrestrict false positive
    // (PR105651) when inlined at -O2.
    std::string stage_name = "q";
    stage_name += std::to_string(i);
    q_.push_back(&make_signal<std::uint32_t>(std::move(stage_name), width, 0));
  }
}

std::uint32_t ShiftRegisterBank::stage(std::size_t i) const {
  dsp::require(i < q_.size(), "ShiftRegisterBank: stage out of range");
  return q_[i]->read();
}

void ShiftRegisterBank::tick() {
  if (!shift_.read()) return;
  for (std::size_t i = q_.size(); i-- > 1;) {
    q_[i]->write(q_[i - 1]->read());
  }
  q_[0]->write(data_.read());
}

void ShiftRegisterBank::reset() {
  for (auto* s : q_) s->reset_value_now();
}

void ShiftRegisterBank::describe(
    std::vector<ComponentDescriptor>& out) const {
  out.push_back({name() + ".ff", ComponentKind::kFlipFlop,
                 static_cast<unsigned>(width_ * q_.size())});
  out.push_back({name() + ".ctl", ComponentKind::kGateMisc, 2});
}

EqualsConst::EqualsConst(std::string name, unsigned width,
                         std::uint32_t constant)
    : Module(std::move(name)),
      width_(width),
      constant_(constant),
      in_(make_signal<std::uint32_t>("in", width, 0)),
      eq_(make_signal<bool>("eq", 1, false)) {
  dsp::require(width_ >= 1 && width_ <= 32,
               "EqualsConst: width must lie in [1,32]");
}

void EqualsConst::eval() { eq_.write(in_.read() == constant_); }

void EqualsConst::describe(std::vector<ComponentDescriptor>& out) const {
  out.push_back({name(), ComponentKind::kComparatorEq, width_});
}

ThresholdPriorityEncoder::ThresholdPriorityEncoder(
    std::string name, std::vector<std::uint32_t> levels, unsigned min_index)
    : Module(std::move(name)),
      levels_(std::move(levels)),
      min_index_(min_index),
      in_(make_signal<std::uint32_t>("in", 32, 0)),
      code_(make_signal<std::uint32_t>("code", 8, min_index)) {
  dsp::require(!levels_.empty(),
               "ThresholdPriorityEncoder: need at least one level");
  dsp::require(min_index_ < levels_.size(),
               "ThresholdPriorityEncoder: min_index out of range");
}

void ThresholdPriorityEncoder::set_levels(std::vector<std::uint32_t> levels) {
  dsp::require(levels.size() == levels_.size(),
               "ThresholdPriorityEncoder: level count is fixed in hardware");
  levels_ = std::move(levels);
}

void ThresholdPriorityEncoder::eval() {
  const std::uint32_t v = in_.read();
  unsigned code = min_index_;
  for (unsigned k = static_cast<unsigned>(levels_.size()); k-- > min_index_ + 1;) {
    if (v >= levels_[k]) {
      code = k;
      break;
    }
  }
  code_.write(code);
}

void ThresholdPriorityEncoder::describe(
    std::vector<ComponentDescriptor>& out) const {
  out.push_back({name() + ".cmp", ComponentKind::kConstComparator,
                 static_cast<unsigned>(levels_.size() * 10)});
  out.push_back({name() + ".enc", ComponentKind::kPriorityEncoder,
                 static_cast<unsigned>(levels_.size())});
}

Rom::Rom(std::string name, std::vector<std::uint32_t> contents,
         unsigned width)
    : Module(std::move(name)),
      contents_(std::move(contents)),
      width_(width),
      addr_(make_signal<std::uint32_t>("addr", 8, 0)),
      data_(make_signal<std::uint32_t>("data", width, 0)) {
  dsp::require(!contents_.empty(), "Rom: empty contents");
  dsp::require(width_ >= 1 && width_ <= 32, "Rom: width must lie in [1,32]");
}

void Rom::eval() {
  const auto a = addr_.read();
  data_.write(a < contents_.size() ? contents_[a] : 0u);
}

void Rom::describe(std::vector<ComponentDescriptor>& out) const {
  out.push_back({name(), ComponentKind::kRomBits,
                 static_cast<unsigned>(contents_.size() * width_)});
}

}  // namespace datc::rtl
