#pragma once
// Reusable structural components for the RTL kernel: the generic versions
// of the Fig-4 sub-systems (counters, shift-register banks, comparators,
// priority encoders, ROMs). Each is a Module with explicit port wiring
// and a describe() implementation, so composed designs inherit a correct
// synthesis inventory for free.

#include <vector>

#include "rtl/module.hpp"

namespace datc::rtl {

/// Up-counter with synchronous enable and clear (clear wins).
class Counter final : public Module {
 public:
  Counter(std::string name, unsigned width);

  void set_enable(bool v) { enable_.write(v); }
  void set_clear(bool v) { clear_.write(v); }
  [[nodiscard]] std::uint32_t value() const { return q_.read(); }

  void tick() override;
  void reset() override;
  void describe(std::vector<ComponentDescriptor>& out) const override;

  [[nodiscard]] Bus& q() { return q_; }

 private:
  unsigned width_;
  std::uint32_t mask_;
  Bit& enable_;
  Bit& clear_;
  Bus& q_;
};

/// Parallel-load shift-register bank: N stages of `width` bits; on
/// shift-enable every stage takes its predecessor's value and stage 0
/// takes the data input (the N_one history of the DTC).
class ShiftRegisterBank final : public Module {
 public:
  ShiftRegisterBank(std::string name, unsigned width, std::size_t stages);

  void set_shift(bool v) { shift_.write(v); }
  void set_data(std::uint32_t v) { data_.write(v); }
  [[nodiscard]] std::uint32_t stage(std::size_t i) const;
  [[nodiscard]] std::size_t stages() const { return q_.size(); }

  void tick() override;
  void reset() override;
  void describe(std::vector<ComponentDescriptor>& out) const override;

 private:
  unsigned width_;
  Bit& shift_;
  Bus& data_;
  std::vector<Bus*> q_;
};

/// Combinational equality comparator against a programmable constant.
class EqualsConst final : public Module {
 public:
  EqualsConst(std::string name, unsigned width, std::uint32_t constant);

  void set_in(std::uint32_t v) { in_.write(v); }
  [[nodiscard]] bool out() const { return eq_.read(); }
  void set_constant(std::uint32_t c) { constant_ = c; }

  void eval() override;
  void describe(std::vector<ComponentDescriptor>& out) const override;

 private:
  unsigned width_;
  std::uint32_t constant_;
  Bus& in_;
  Bit& eq_;
};

/// Combinational priority encoder over threshold comparisons: given a
/// value and a monotone table of levels, outputs the highest index whose
/// level the value reaches (the Listing-1 chain as a reusable block).
class ThresholdPriorityEncoder final : public Module {
 public:
  ThresholdPriorityEncoder(std::string name, std::vector<std::uint32_t> levels,
                           unsigned min_index);

  void set_in(std::uint32_t v) { in_.write(v); }
  [[nodiscard]] unsigned out() const { return code_.read(); }
  void set_levels(std::vector<std::uint32_t> levels);

  void eval() override;
  void describe(std::vector<ComponentDescriptor>& out) const override;

 private:
  std::vector<std::uint32_t> levels_;
  unsigned min_index_;
  Bus& in_;
  Bus& code_;
};

/// Combinational ROM (constant table) with registered-free async read.
class Rom final : public Module {
 public:
  Rom(std::string name, std::vector<std::uint32_t> contents, unsigned width);

  void set_addr(std::uint32_t a) { addr_.write(a); }
  [[nodiscard]] std::uint32_t out() const { return data_.read(); }
  [[nodiscard]] std::size_t entries() const { return contents_.size(); }

  void eval() override;
  void describe(std::vector<ComponentDescriptor>& out) const override;

 private:
  std::vector<std::uint32_t> contents_;
  unsigned width_;
  Bus& addr_;
  Bus& data_;
};

}  // namespace datc::rtl
