#pragma once
// Two-phase signals for the cycle-based RTL kernel. Every write lands in
// the "next" slot; commit() moves it to "cur" and counts bit toggles — the
// activity data the synthesis power estimator consumes (toggle-count-based
// dynamic power, exactly what a gate-level simulation feeds into a power
// tool).

#include <bit>
#include <cstdint>
#include <string>

#include "dsp/types.hpp"

namespace datc::rtl {

class SignalBase {
 public:
  SignalBase(std::string name, unsigned width)
      : name_(std::move(name)), width_(width) {
    dsp::require(width_ >= 1 && width_ <= 64,
                 "Signal: width must lie in [1,64]");
  }
  virtual ~SignalBase() = default;
  SignalBase(const SignalBase&) = delete;
  SignalBase& operator=(const SignalBase&) = delete;

  /// Move next -> cur. Returns true when the value changed.
  virtual bool commit() = 0;

  /// Current value as raw bits (for VCD dumping).
  [[nodiscard]] virtual std::uint64_t value_bits() const = 0;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] unsigned width() const { return width_; }
  [[nodiscard]] std::size_t bit_toggles() const { return bit_toggles_; }
  void reset_toggles() { bit_toggles_ = 0; }

 protected:
  std::size_t bit_toggles_{0};

 private:
  std::string name_;
  unsigned width_;
};

template <typename T>
class Signal final : public SignalBase {
 public:
  Signal(std::string name, unsigned width, T reset_value = T{})
      : SignalBase(std::move(name), width),
        cur_(reset_value),
        next_(reset_value),
        reset_value_(reset_value) {}

  [[nodiscard]] T read() const { return cur_; }
  void write(T v) { next_ = v; }

  /// Immediate write of both phases (used at reset).
  void force(T v) {
    cur_ = v;
    next_ = v;
  }
  void reset_value_now() { force(reset_value_); }

  bool commit() override {
    if (next_ == cur_) return false;
    bit_toggles_ += toggled_bits(cur_, next_);
    cur_ = next_;
    return true;
  }

  [[nodiscard]] std::uint64_t value_bits() const override {
    if constexpr (std::is_same_v<T, bool>) {
      return cur_ ? 1u : 0u;
    } else {
      return static_cast<std::uint64_t>(cur_);
    }
  }

 private:
  static std::size_t toggled_bits(T a, T b) {
    if constexpr (std::is_same_v<T, bool>) {
      return a == b ? 0 : 1;
    } else {
      return static_cast<std::size_t>(std::popcount(
          static_cast<std::uint64_t>(a) ^ static_cast<std::uint64_t>(b)));
    }
  }

  T cur_;
  T next_;
  T reset_value_;
};

using Bit = Signal<bool>;
using Bus = Signal<std::uint32_t>;

}  // namespace datc::rtl
