#include "afe/comparator.hpp"
#include "dsp/types.hpp"

#include <cmath>

namespace datc::afe {

Comparator::Comparator(const ComparatorConfig& config,
                       std::optional<dsp::Rng> rng)
    : config_(config), rng_(std::move(rng)) {
  dsp::require(config_.hysteresis_v >= 0.0,
               "Comparator: hysteresis must be non-negative");
  dsp::require(config_.metastable_prob >= 0.0 &&
                   config_.metastable_prob <= 1.0,
               "Comparator: metastable probability outside [0,1]");
  if (config_.metastable_prob > 0.0) {
    dsp::require(rng_.has_value(),
                 "Comparator: metastability model needs an Rng");
  }
}

bool Comparator::compare(Real in_v, Real threshold_v) {
  const Real eff_in = in_v + config_.offset_v;
  const Real half_hyst = config_.hysteresis_v / 2.0;
  // Hysteresis: the switching level moves away from the current state.
  const Real level = last_ ? threshold_v - half_hyst : threshold_v + half_hyst;
  bool out = eff_in > level;
  if (config_.metastable_prob > 0.0 &&
      std::abs(eff_in - threshold_v) < config_.metastable_window_v &&
      rng_->chance(config_.metastable_prob)) {
    out = !out;  // unresolved decision captured wrongly
  }
  last_ = out;
  return out;
}

void Comparator::reset() { last_ = false; }

}  // namespace datc::afe
