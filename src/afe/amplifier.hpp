#pragma once
// Instrumentation-amplifier model for the sEMG preamplification stage.
// The paper's key observation is that this stage's effective gain varies
// with the electrode-skin interface, which is why a fixed threshold needs
// per-subject trimming; the gain/saturation/noise knobs here let the
// experiments exercise exactly that variability.

#include "dsp/rng.hpp"
#include "dsp/types.hpp"

namespace datc::afe {

using dsp::Real;

struct AmplifierConfig {
  Real gain{1.0};             ///< linear gain (V/V)
  Real supply_v{1.8};         ///< output saturates at +-supply/2 around mid
  Real input_noise_rms{0.0};  ///< input-referred noise (V RMS)
  bool soft_clip{true};       ///< tanh saturation instead of hard clipping
};

/// Stateless except for the noise stream.
class Amplifier {
 public:
  Amplifier(const AmplifierConfig& config, dsp::Rng rng);

  [[nodiscard]] Real process(Real in_v);

  /// Amplifies a whole record.
  [[nodiscard]] dsp::TimeSeries amplify(const dsp::TimeSeries& in);

  [[nodiscard]] const AmplifierConfig& config() const { return config_; }

 private:
  AmplifierConfig config_;
  dsp::Rng rng_;
};

}  // namespace datc::afe
