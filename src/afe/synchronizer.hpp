#pragma once
// Two-flip-flop synchroniser model (the paper's In_reg): brings the
// asynchronous comparator decision into the 2 kHz DTC clock domain. The
// behavioural effect is a fixed pipeline delay; an optional metastability
// model occasionally holds the previous value for one extra cycle, which
// is what a real synchroniser does when the first stage resolves late.

#include <optional>

#include "dsp/rng.hpp"
#include "dsp/types.hpp"

namespace datc::afe {

struct SynchronizerConfig {
  unsigned stages{2};
  dsp::Real metastable_prob{0.0};  ///< per-edge chance of one-cycle stall
};

class Synchronizer {
 public:
  explicit Synchronizer(const SynchronizerConfig& config = {},
                        std::optional<dsp::Rng> rng = std::nullopt);

  /// Clock in the asynchronous level; returns the synchronised level.
  [[nodiscard]] bool clock(bool async_in);

  void reset();

  [[nodiscard]] const SynchronizerConfig& config() const { return config_; }

 private:
  SynchronizerConfig config_;
  std::optional<dsp::Rng> rng_;
  std::vector<bool> stages_;
};

}  // namespace datc::afe
