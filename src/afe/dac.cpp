#include "afe/dac.hpp"
#include "dsp/types.hpp"

#include <cmath>

namespace datc::afe {

Dac::Dac(const DacConfig& config) : config_(config) {
  dsp::require(config_.bits >= 1 && config_.bits <= 16,
               "Dac: bits must lie in [1,16]");
  dsp::require(config_.vref > 0.0, "Dac: vref must be positive");
  max_code_ = (1u << config_.bits) - 1u;
  if (config_.inl_lsb_rms > 0.0) {
    dsp::Rng rng(config_.inl_seed);
    inl_v_.resize(max_code_ + 1u, 0.0);
    const Real lsb_v = config_.vref / static_cast<Real>(1u << config_.bits);
    for (auto& e : inl_v_) {
      e = config_.inl_lsb_rms * lsb_v * rng.gaussian();
    }
    inl_v_.front() = 0.0;  // endpoints are trimmed by construction
    inl_v_.back() = 0.0;
  }
}

Real Dac::voltage(unsigned code) const {
  if (code > max_code_) code = max_code_;
  const Real ideal = config_.vref * static_cast<Real>(code) /
                     static_cast<Real>(1u << config_.bits);
  if (inl_v_.empty()) return ideal;
  return ideal + inl_v_[code];
}

std::vector<Real> Dac::voltage_table() const {
  std::vector<Real> table(max_code_ + 1u);
  for (unsigned code = 0; code <= max_code_; ++code) {
    table[code] = voltage(code);
  }
  return table;
}

Real Dac::lsb() const {
  return config_.vref / static_cast<Real>(1u << config_.bits);
}

Adc::Adc(const AdcConfig& config) : config_(config) {
  dsp::require(config_.bits >= 1 && config_.bits <= 24,
               "Adc: bits must lie in [1,24]");
  dsp::require(config_.vmax > config_.vmin, "Adc: need vmax > vmin");
  max_code_ = (1u << config_.bits) - 1u;
  step_ = (config_.vmax - config_.vmin) / static_cast<Real>(max_code_ + 1u);
}

std::uint32_t Adc::code(Real v) const {
  if (v <= config_.vmin) return 0;
  const Real pos = (v - config_.vmin) / step_;
  auto c = static_cast<std::uint64_t>(pos);
  if (c > max_code_) c = max_code_;
  return static_cast<std::uint32_t>(c);
}

Real Adc::voltage(std::uint32_t code) const {
  if (code > max_code_) code = max_code_;
  return config_.vmin + (static_cast<Real>(code) + 0.5) * step_;
}

}  // namespace datc::afe
