#include "afe/synchronizer.hpp"
#include "dsp/types.hpp"

namespace datc::afe {

Synchronizer::Synchronizer(const SynchronizerConfig& config,
                           std::optional<dsp::Rng> rng)
    : config_(config), rng_(std::move(rng)),
      stages_(config.stages, false) {
  dsp::require(config_.stages >= 1 && config_.stages <= 8,
               "Synchronizer: stages must lie in [1,8]");
  dsp::require(config_.metastable_prob >= 0.0 &&
                   config_.metastable_prob <= 1.0,
               "Synchronizer: probability outside [0,1]");
  if (config_.metastable_prob > 0.0) {
    dsp::require(rng_.has_value(), "Synchronizer: metastability needs Rng");
  }
}

bool Synchronizer::clock(bool async_in) {
  bool in = async_in;
  if (config_.metastable_prob > 0.0 && in != stages_.front() &&
      rng_->chance(config_.metastable_prob)) {
    in = stages_.front();  // first stage failed to capture the new level
  }
  // Shift through the chain; output is the last stage *before* this edge.
  const bool out = stages_.back();
  for (std::size_t i = stages_.size(); i-- > 1;) {
    stages_[i] = stages_[i - 1];
  }
  stages_[0] = in;
  return out;
}

void Synchronizer::reset() {
  stages_.assign(stages_.size(), false);
}

}  // namespace datc::afe
