#pragma once
// Analog comparator model (Fig. 1: amplified sEMG vs the DAC threshold).
// Optional hysteresis suppresses chattering near the threshold, and an
// optional metastability model flips the decision with small probability
// when the differential input is inside a resolution window — the failure
// mode the DTC's In_reg synchroniser exists to contain.

#include <optional>

#include "dsp/rng.hpp"
#include "dsp/types.hpp"

namespace datc::afe {

using dsp::Real;

struct ComparatorConfig {
  Real hysteresis_v{0.0};       ///< total hysteresis band (V)
  Real offset_v{0.0};           ///< input-referred offset (V)
  Real metastable_window_v{0.0};  ///< |in - th| below which output may err
  Real metastable_prob{0.0};    ///< error probability inside the window
};

class Comparator {
 public:
  explicit Comparator(const ComparatorConfig& config = {},
                      std::optional<dsp::Rng> rng = std::nullopt);

  /// Returns true when `in_v` exceeds `threshold_v` (with hysteresis
  /// relative to the previous decision).
  [[nodiscard]] bool compare(Real in_v, Real threshold_v);

  void reset();

  [[nodiscard]] const ComparatorConfig& config() const { return config_; }

  /// True when the deterministic decision rule (offset + hysteresis, no
  /// stochastic metastability) fully describes compare() — the condition
  /// for the block-mode hot paths to inline the comparison.
  [[nodiscard]] bool is_deterministic() const {
    return config_.metastable_prob <= 0.0;
  }

  // Block-mode register access: the hot paths keep the hysteresis state in
  // a local and write it back once per block.
  [[nodiscard]] bool last_decision() const { return last_; }
  void set_last_decision(bool last) { last_ = last; }

 private:
  ComparatorConfig config_;
  std::optional<dsp::Rng> rng_;
  bool last_{false};
};

}  // namespace datc::afe
