#include "afe/amplifier.hpp"
#include "dsp/types.hpp"

#include <cmath>

namespace datc::afe {

Amplifier::Amplifier(const AmplifierConfig& config, dsp::Rng rng)
    : config_(config), rng_(rng) {
  dsp::require(config_.gain > 0.0, "Amplifier: gain must be positive");
  dsp::require(config_.supply_v > 0.0, "Amplifier: supply must be positive");
}

Real Amplifier::process(Real in_v) {
  Real v = in_v;
  if (config_.input_noise_rms > 0.0) {
    v += config_.input_noise_rms * rng_.gaussian();
  }
  v *= config_.gain;
  const Real limit = config_.supply_v / 2.0;
  if (config_.soft_clip) {
    return limit * std::tanh(v / limit);
  }
  if (v > limit) return limit;
  if (v < -limit) return -limit;
  return v;
}

dsp::TimeSeries Amplifier::amplify(const dsp::TimeSeries& in) {
  std::vector<Real> out(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) out[i] = process(in[i]);
  return dsp::TimeSeries(std::move(out), in.sample_rate_hz());
}

}  // namespace datc::afe
