#pragma once
// Threshold DAC (Eqn. 3): Vth = Vref * code / 2^Nb. The paper uses 4 bits
// and Vref = 1 V (62.5 mV steps); the bit width is a template-free runtime
// parameter so the DAC-resolution ablation can sweep it. Optional INL is
// modelled as a deterministic per-code error table.

#include <cstdint>
#include <vector>

#include "dsp/rng.hpp"
#include "dsp/types.hpp"

namespace datc::afe {

using dsp::Real;

struct DacConfig {
  unsigned bits{4};
  Real vref{1.0};
  Real inl_lsb_rms{0.0};  ///< static nonlinearity, RMS in LSBs
  std::uint64_t inl_seed{1};
};

class Dac {
 public:
  explicit Dac(const DacConfig& config = {});

  /// Output voltage for a code; codes clamp to [0, 2^bits - 1].
  [[nodiscard]] Real voltage(unsigned code) const;

  /// All 2^bits output voltages (INL included) — the block-mode encoders
  /// index this table instead of recomputing the DAC law per clock cycle.
  [[nodiscard]] std::vector<Real> voltage_table() const;

  [[nodiscard]] unsigned max_code() const { return max_code_; }
  [[nodiscard]] unsigned bits() const { return config_.bits; }
  [[nodiscard]] Real lsb() const;
  [[nodiscard]] const DacConfig& config() const { return config_; }

 private:
  DacConfig config_;
  unsigned max_code_;
  std::vector<Real> inl_v_;  ///< per-code voltage error (empty when ideal)
};

/// 12-bit mid-tread ADC used by the packet-based baseline system.
struct AdcConfig {
  unsigned bits{12};
  Real vmin{-1.0};
  Real vmax{1.0};
};

class Adc {
 public:
  explicit Adc(const AdcConfig& config = {});

  /// Quantise a voltage to a code in [0, 2^bits - 1] (clamping).
  [[nodiscard]] std::uint32_t code(Real v) const;

  /// Reconstruction level of a code.
  [[nodiscard]] Real voltage(std::uint32_t code) const;

  [[nodiscard]] unsigned bits() const { return config_.bits; }
  [[nodiscard]] const AdcConfig& config() const { return config_; }

 private:
  AdcConfig config_;
  std::uint32_t max_code_;
  Real step_;
};

}  // namespace datc::afe
