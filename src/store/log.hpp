#pragma once
// Append-only segmented event log: a directory of DATCSEG1 files
// (`seg-<seqno>.datcseg`) whose concatenated payloads form one
// time-sorted event stream.
//
// LogWriter appends events and rotates to a fresh segment on a size or
// time-span bound; opening an existing directory first repairs any
// crash-truncated tail segment (recover_segment) and resumes at the next
// sequence number. LogReader builds an in-memory catalog of segment
// headers (cheap: 64 bytes each) and answers time-range and per-channel
// queries in O(log segments + log segment_size + answer) via the
// catalog's monotone time bounds and the segments' implicit record index.

#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "fault/file_io.hpp"
#include "store/segment.hpp"

namespace datc::store {

/// `seg-<8-digit seqno>.datcseg` inside the log directory.
[[nodiscard]] std::string segment_filename(std::uint64_t seqno);
[[nodiscard]] std::string segment_path(const std::string& dir,
                                       std::uint64_t seqno);

struct LogWriterConfig {
  std::string dir;
  /// Rotate after this many events in the current segment.
  std::uint64_t max_events_per_segment{1u << 16};
  /// Rotate when the current segment spans more than this much time.
  Real max_segment_span_s{std::numeric_limits<Real>::infinity()};
  /// Segment file I/O goes through this seam when set (fault injection);
  /// nullptr writes through the real filesystem.
  std::shared_ptr<fault::FileIo> io{};
};

class LogWriter {
 public:
  /// Creates `config.dir` if needed, repairs a crashed tail segment, and
  /// positions the writer after the highest existing sequence number.
  explicit LogWriter(const LogWriterConfig& config);
  ~LogWriter();

  LogWriter(const LogWriter&) = delete;
  LogWriter& operator=(const LogWriter&) = delete;

  /// Appends one event. Time must be non-decreasing across the whole log.
  void append(const Event& e);
  void append(std::span<const Event> events);

  /// Forces a segment boundary (no-op when the current segment is empty).
  void rotate();

  /// Finalizes the open segment. Idempotent; runs from the destructor.
  void close();

  [[nodiscard]] std::uint64_t events_written() const {
    return events_written_;
  }
  [[nodiscard]] std::uint64_t segments_finalized() const {
    return segments_finalized_;
  }
  [[nodiscard]] std::uint64_t next_seqno() const { return next_seqno_; }
  [[nodiscard]] const LogWriterConfig& config() const { return config_; }

 private:
  LogWriterConfig config_;
  std::unique_ptr<SegmentWriter> current_;
  std::uint64_t next_seqno_{0};
  std::uint64_t events_written_{0};
  std::uint64_t segments_finalized_{0};
  Real last_time_s_{-std::numeric_limits<Real>::infinity()};
};

/// One catalog row per segment, ordered by seqno (== time order).
struct SegmentInfo {
  std::string path;
  SegmentHeader header;
};

class LogReader {
 public:
  /// Opens every segment header under `dir` (which must exist; an empty
  /// log directory yields an empty catalog). A non-finalized tail is
  /// readable through its valid prefix without being repaired.
  explicit LogReader(const std::string& dir);

  [[nodiscard]] const std::vector<SegmentInfo>& segments() const {
    return segments_;
  }
  [[nodiscard]] std::uint64_t total_events() const;
  [[nodiscard]] Real t_min() const;  ///< earliest event time (0 if empty)
  [[nodiscard]] Real t_max() const;  ///< latest event time (0 if empty)

  /// All events, in time order.
  [[nodiscard]] EventStream read_all() const;

  /// Events with time in [t_lo, t_hi), optionally restricted to one AER
  /// channel. Binary-searches the catalog's monotone time bounds, then
  /// each candidate segment's record index.
  [[nodiscard]] EventStream query(
      Real t_lo, Real t_hi,
      std::optional<std::uint16_t> channel = std::nullopt) const;

  /// Recomputes every finalized segment's payload CRC.
  [[nodiscard]] bool verify() const;

  [[nodiscard]] const std::string& dir() const { return dir_; }

 private:
  std::string dir_;
  std::vector<SegmentInfo> segments_;
  std::vector<std::size_t> order_;  ///< non-empty segments, seqno order
};

}  // namespace datc::store
