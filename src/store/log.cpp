#include "dsp/types.hpp"
#include "store/log.hpp"
#include "store/segment.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>

namespace datc::store {

namespace fs = std::filesystem;

namespace {

constexpr char kSegmentPrefix[] = "seg-";
constexpr char kSegmentSuffix[] = ".datcseg";

/// Parses `seg-<digits>.datcseg`; nullopt for foreign files.
std::optional<std::uint64_t> parse_seqno(const std::string& filename) {
  const std::string prefix = kSegmentPrefix;
  const std::string suffix = kSegmentSuffix;
  if (filename.size() <= prefix.size() + suffix.size()) return std::nullopt;
  if (filename.compare(0, prefix.size(), prefix) != 0) return std::nullopt;
  if (filename.compare(filename.size() - suffix.size(), suffix.size(),
                       suffix) != 0) {
    return std::nullopt;
  }
  const std::string digits = filename.substr(
      prefix.size(), filename.size() - prefix.size() - suffix.size());
  std::uint64_t seqno = 0;
  for (const char c : digits) {
    if (c < '0' || c > '9') return std::nullopt;
    seqno = seqno * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return seqno;
}

/// Seqno-sorted `{seqno, path}` pairs of every segment file in `dir`.
std::vector<std::pair<std::uint64_t, std::string>> list_segments(
    const std::string& dir) {
  std::vector<std::pair<std::uint64_t, std::string>> found;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    const auto seqno = parse_seqno(entry.path().filename().string());
    if (seqno) found.emplace_back(*seqno, entry.path().string());
  }
  std::sort(found.begin(), found.end());
  return found;
}

}  // namespace

std::string segment_filename(std::uint64_t seqno) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%s%08llu%s", kSegmentPrefix,
                static_cast<unsigned long long>(seqno), kSegmentSuffix);
  return buf;
}

std::string segment_path(const std::string& dir, std::uint64_t seqno) {
  return (fs::path(dir) / segment_filename(seqno)).string();
}

// --------------------------------------------------------------- LogWriter

LogWriter::LogWriter(const LogWriterConfig& config) : config_(config) {
  dsp::require(!config_.dir.empty(), "LogWriter: empty directory");
  dsp::require(config_.max_events_per_segment >= 1,
               "LogWriter: max_events_per_segment must be >= 1");
  dsp::require(config_.max_segment_span_s > 0.0,
               "LogWriter: max_segment_span_s must be positive");
  fs::create_directories(config_.dir);
  // Resume after an existing log: repair any crash-truncated tail, carry
  // the time watermark forward so monotonicity spans restarts.
  for (const auto& [seqno, path] : list_segments(config_.dir)) {
    recover_segment(path);
    SegmentReader reader(path);
    next_seqno_ = seqno + 1;
    if (reader.header().count > 0) {
      last_time_s_ = std::max(last_time_s_, reader.header().t_max);
    }
  }
}

LogWriter::~LogWriter() {
  try {
    close();
  } catch (...) {
    // Destructor must not throw; the tail stays recoverable.
  }
}

void LogWriter::append(const Event& e) {
  dsp::require(e.time_s >= last_time_s_,
               "LogWriter: events must arrive in non-decreasing time order");
  if (current_ != nullptr &&
      (current_->count() >= config_.max_events_per_segment ||
       e.time_s - current_->t_min() >= config_.max_segment_span_s)) {
    rotate();
  }
  if (current_ == nullptr) {
    // Segments are created lazily on first append, so the log never holds
    // an empty segment file and catalog time bounds stay meaningful.
    current_ = std::make_unique<SegmentWriter>(
        segment_path(config_.dir, next_seqno_), next_seqno_,
        /*decimation=*/1, config_.io.get());
    ++next_seqno_;
  }
  current_->append(e);
  last_time_s_ = e.time_s;
  ++events_written_;
}

void LogWriter::append(std::span<const Event> events) {
  for (const auto& e : events) append(e);
}

void LogWriter::rotate() {
  if (current_ == nullptr) return;
  current_->finalize();
  current_.reset();
  ++segments_finalized_;
}

void LogWriter::close() { rotate(); }

// --------------------------------------------------------------- LogReader

LogReader::LogReader(const std::string& dir) : dir_(dir) {
  dsp::require(fs::is_directory(dir), "LogReader: not a directory: " + dir);
  for (const auto& [seqno, path] : list_segments(dir)) {
    SegmentReader reader(path);
    segments_.push_back(SegmentInfo{path, reader.header()});
  }
  // Segments are seqno-sorted and the writer enforces a global time
  // order, so the catalog's bounds must be monotone — a violated order
  // means foreign or doctored files, which would silently corrupt the
  // binary search below. Empty segments (a fully-torn, recovered tail)
  // carry no time bounds and are excluded from the query order.
  Real last_max = -std::numeric_limits<Real>::infinity();
  for (std::size_t i = 0; i < segments_.size(); ++i) {
    const auto& h = segments_[i].header;
    if (h.count == 0) continue;
    dsp::require(h.t_min <= h.t_max && last_max <= h.t_min,
                 "LogReader: segment time bounds out of order in " + dir);
    last_max = h.t_max;
    order_.push_back(i);
  }
}

std::uint64_t LogReader::total_events() const {
  std::uint64_t total = 0;
  for (const auto& s : segments_) total += s.header.count;
  return total;
}

Real LogReader::t_min() const {
  for (const auto& s : segments_) {
    if (s.header.count > 0) return s.header.t_min;
  }
  return 0.0;
}

Real LogReader::t_max() const {
  for (auto it = segments_.rbegin(); it != segments_.rend(); ++it) {
    if (it->header.count > 0) return it->header.t_max;
  }
  return 0.0;
}

EventStream LogReader::read_all() const {
  EventStream out;
  out.reserve(static_cast<std::size_t>(total_events()));
  for (const auto& s : segments_) {
    if (s.header.count == 0) continue;
    SegmentReader reader(s.path);
    const auto part = reader.read_all();
    for (const auto& e : part.events()) {
      out.add(e.time_s, e.vth_code, e.channel);
    }
  }
  return out;
}

EventStream LogReader::query(Real t_lo, Real t_hi,
                             std::optional<std::uint16_t> channel) const {
  EventStream out;
  if (!(t_lo < t_hi)) return out;
  // First segment that can intersect [t_lo, t_hi): t_max is monotone
  // along the non-empty query order, so partition_point lands on the
  // first one with t_max >= t_lo in O(log segments).
  const auto first = std::partition_point(
      order_.begin(), order_.end(), [&](std::size_t i) {
        return segments_[i].header.t_max < t_lo;
      });
  for (auto it = first; it != order_.end(); ++it) {
    const auto& s = segments_[*it];
    if (!(s.header.t_min < t_hi)) break;
    if (channel && !segment_may_have_channel(s.header, *channel)) continue;
    SegmentReader reader(s.path);
    reader.query(t_lo, t_hi, channel, out);
  }
  return out;
}

bool LogReader::verify() const {
  for (const auto& s : segments_) {
    SegmentReader reader(s.path);
    if (!reader.verify()) return false;
  }
  return true;
}

}  // namespace datc::store
