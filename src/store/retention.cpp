#include "dsp/types.hpp"
#include "store/log.hpp"
#include "store/retention.hpp"
#include "store/segment.hpp"

#include <filesystem>

namespace datc::store {

namespace fs = std::filesystem;

namespace {

/// Rewrites one segment keeping every `step`-th event, preserving seqno
/// and recording `new_factor` (the segment's total density vs the
/// original stream) in the header, then atomically replaces the
/// original. Returns the kept event count.
std::uint64_t decimate_segment(const SegmentInfo& info, std::uint32_t step,
                               std::uint32_t new_factor) {
  const std::string tmp = info.path + ".compact";
  {
    SegmentReader reader(info.path);
    const auto events = reader.read_all();
    SegmentWriter writer(tmp, info.header.seqno, new_factor);
    for (std::size_t i = 0; i < events.size(); i += step) {
      writer.append(events[i]);
    }
    writer.finalize();
  }
  fs::rename(tmp, info.path);
  SegmentReader check(info.path);
  return check.header().count;
}

}  // namespace

RetentionStats apply_retention(const std::string& dir,
                               const RetentionPolicy& policy) {
  dsp::require(policy.max_age_s > 0.0,
               "apply_retention: max_age_s must be positive");
  dsp::require(policy.decimate_older_than_s > 0.0,
               "apply_retention: decimate_older_than_s must be positive");
  dsp::require(policy.decimation_factor >= 1,
               "apply_retention: decimation_factor must be >= 1");
  RetentionStats stats;
  const LogReader reader(dir);
  stats.events_before = reader.total_events();
  stats.events_after = stats.events_before;
  if (reader.segments().empty()) return stats;
  const Real newest = reader.t_max();
  for (const auto& s : reader.segments()) {
    if (!s.header.finalized || s.header.count == 0) continue;
    const Real age_s = newest - s.header.t_max;
    if (age_s > policy.max_age_s) {
      fs::remove(s.path);
      ++stats.segments_dropped;
      stats.events_dropped += s.header.count;
      stats.events_after -= s.header.count;
      continue;
    }
    if (policy.decimation_factor > 1 &&
        age_s > policy.decimate_older_than_s &&
        s.header.decimation < policy.decimation_factor &&
        policy.decimation_factor % s.header.decimation == 0) {
      // The header records the segment's density vs the ORIGINAL stream,
      // so escalating a policy (2 -> 4) must only thin by the remaining
      // step, not compound to 1/8. Factors that do not divide evenly
      // cannot express the target density exactly and are skipped by the
      // modulus guard above.
      const std::uint32_t step =
          policy.decimation_factor / s.header.decimation;
      const std::uint64_t kept =
          decimate_segment(s, step, policy.decimation_factor);
      ++stats.segments_decimated;
      stats.events_dropped += s.header.count - kept;
      stats.events_after -= s.header.count - kept;
    }
  }
  return stats;
}

}  // namespace datc::store
