#pragma once
// One segment of the persistent event log: a fixed 64-byte header plus a
// payload of packed DATCEVT2 event records (core::kEventRecordBytes each,
// byte-compatible with core/event_io's binary body). The header carries
// the segment sequence number, the payload's time bounds, event count,
// a CRC-32 of the record bytes, a 64-bit channel-presence bitmap and the
// decimation factor the retention pass applied.
//
// Records are fixed-width and time-sorted, so the time index is implicit:
// a time-range query binary-searches record offsets with O(log n) seeks
// instead of scanning the payload (see SegmentReader::lower_bound).
//
// Crash safety: a segment is written with `finalized = 0` and a sentinel
// count; finalize() rewrites the header in place once the payload is
// complete. A reader that meets a non-finalized segment (crash mid-write)
// reconstructs the valid whole-record, time-monotone prefix without
// touching the file; recover_segment() additionally truncates the file to
// that prefix and finalizes the header (the writer-side repair LogWriter
// runs on open).

#include <cstdint>
#include <fstream>
#include <memory>
#include <optional>
#include <string>

#include "core/crc32.hpp"
#include "core/event_io.hpp"
#include "core/events.hpp"
#include "fault/file_io.hpp"

namespace datc::store {

using core::Event;
using core::EventStream;
using dsp::Real;

inline constexpr std::size_t kSegmentHeaderBytes = 64;
inline constexpr char kSegmentMagic[8] = {'D', 'A', 'T', 'C',
                                          'S', 'E', 'G', '1'};
/// Sentinel count marking a segment still being written.
inline constexpr std::uint64_t kOpenSegmentCount = ~std::uint64_t{0};

struct SegmentHeader {
  std::uint64_t seqno{0};
  std::uint64_t count{0};
  Real t_min{0.0};
  Real t_max{0.0};
  std::uint64_t channel_bitmap{0};  ///< bit (channel % 64) set if present
  std::uint32_t payload_crc32{0};
  std::uint32_t decimation{1};  ///< retention kept every Nth event (1 = all)
  bool finalized{false};
};

/// Conservative per-channel filter: false means the segment definitely
/// holds no event of `channel`; true means it may. Exact only when every
/// channel id in play is < 64 — ids are hashed as `channel % 64`, so a
/// 64-bucket Bloom-style filter with false positives beyond that. Always
/// pair it with the per-record channel check.
[[nodiscard]] bool segment_may_have_channel(const SegmentHeader& header,
                                            std::uint16_t channel);

/// Appends events (non-decreasing time required) to a fresh segment file.
///
/// All file I/O goes through fault::FileIo with positional writes: record
/// k always lands at kSegmentHeaderBytes + k * kEventRecordBytes, and the
/// in-memory state (count, bounds, CRC) advances only after the write
/// succeeded. A failed append or finalize (fault::IoError) therefore
/// leaves the writer unchanged and retryable — the retry overwrites any
/// torn bytes at the same offset.
class SegmentWriter {
 public:
  /// `io` = nullptr writes through the real filesystem.
  SegmentWriter(const std::string& path, std::uint64_t seqno,
                std::uint32_t decimation = 1, fault::FileIo* io = nullptr);
  ~SegmentWriter();

  SegmentWriter(const SegmentWriter&) = delete;
  SegmentWriter& operator=(const SegmentWriter&) = delete;

  void append(const Event& e);
  /// Rewrites the header with the final count/bounds/CRC, syncs and
  /// closes the file. Idempotent once it succeeds; on failure the writer
  /// stays open so the call can be retried. The destructor finalizes an
  /// open segment (swallowing errors — the tail stays recoverable).
  void finalize();

  [[nodiscard]] std::uint64_t count() const { return header_.count; }
  [[nodiscard]] Real t_min() const { return header_.t_min; }
  [[nodiscard]] Real t_max() const { return header_.t_max; }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::unique_ptr<fault::WritableFile> file_;
  SegmentHeader header_;
  core::Crc32 crc_;
  bool open_{true};
};

/// Random-access reader over one segment file.
class SegmentReader {
 public:
  explicit SegmentReader(const std::string& path);

  [[nodiscard]] const SegmentHeader& header() const { return header_; }
  [[nodiscard]] const std::string& path() const { return path_; }

  /// First record index with time >= t (count() if none): binary search
  /// over the fixed-width records, O(log n) seeks.
  [[nodiscard]] std::uint64_t lower_bound(Real t);

  [[nodiscard]] Event read_record(std::uint64_t index);

  /// Appends every event with time in [t_lo, t_hi) — and, when `channel`
  /// is set, that exact channel — to `out`.
  void query(Real t_lo, Real t_hi, std::optional<std::uint16_t> channel,
             EventStream& out);

  /// Whole payload, verifying the CRC of finalized segments.
  [[nodiscard]] EventStream read_all();

  /// Recomputes the payload CRC; false on mismatch (finalized segments
  /// only — a recovered-but-unrepaired tail has no stored CRC to check).
  [[nodiscard]] bool verify();

 private:
  std::string path_;
  std::ifstream file_;
  SegmentHeader header_;
};

/// Writer-side crash repair: if `path` holds a non-finalized segment,
/// truncate it to its valid whole-record time-monotone prefix, rewrite
/// the header (count, bounds, bitmap, CRC, finalized) and return the
/// recovered event count. Finalized segments are left untouched.
std::uint64_t recover_segment(const std::string& path);

}  // namespace datc::store
