#include "store/replay.hpp"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>

#include "core/rate_calibration.hpp"
#include "core/reconstruct.hpp"
#include "dsp/types.hpp"
#include "fault/file_io.hpp"
#include "store/log.hpp"
#include "store/recorder.hpp"

namespace datc::store {

namespace {

constexpr char kEnvelopeName[] = "envelope.f64";

std::string envelope_path(const std::string& dir) {
  return (std::filesystem::path(dir) / kEnvelopeName).string();
}

}  // namespace

void write_envelope_f64(const std::string& dir, const std::vector<Real>& arv,
                        fault::FileIo* io) {
  // Through the FileIo seam like every other write in store/: the
  // sidecar write is fault-injectable and positionally retryable.
  fault::write_file(io != nullptr ? *io : fault::real_file_io(),
                    envelope_path(dir), arv.data(),
                    arv.size() * sizeof(Real));
}

std::vector<Real> read_envelope_f64(const std::string& dir) {
  const auto path = envelope_path(dir);
  std::ifstream f(path, std::ios::binary);
  dsp::require(f.good(), "read_envelope_f64: cannot open " + path);
  const auto bytes = std::filesystem::file_size(path);
  dsp::require(bytes % sizeof(Real) == 0,
               "read_envelope_f64: size not a multiple of 8 in " + path);
  std::vector<Real> arv(bytes / sizeof(Real));
  f.read(reinterpret_cast<char*>(arv.data()),
         static_cast<std::streamsize>(bytes));
  dsp::require(static_cast<std::uintmax_t>(f.gcount()) == bytes,
               "read_envelope_f64: short read in " + path);
  return arv;
}

bool has_envelope_f64(const std::string& dir) {
  return std::filesystem::is_regular_file(envelope_path(dir));
}

ReplayResult replay_envelope(const std::string& dir,
                             core::CalibrationPtr calibration) {
  ReplayResult out;
  out.manifest = read_manifest(dir);
  out.duration_s = out.manifest.duration_s;
  if (calibration == nullptr) {
    // Deterministic rebuild: the calibration is a fixed-seed Monte Carlo
    // run parameterised entirely by the manifest.
    core::RateCalibrationConfig cal_cfg;
    cal_cfg.analog_fs_hz = out.manifest.analog_fs_hz;
    cal_cfg.band_lo_hz = out.manifest.band_lo_hz;
    cal_cfg.band_hi_hz = out.manifest.band_hi_hz;
    cal_cfg.count_fs_hz = out.manifest.count_fs_hz;
    calibration = std::make_shared<core::RateCalibration>(cal_cfg);
  }
  const LogReader log(dir);
  const auto events = log.read_all();  // CRC-verified
  out.events = events.size();

  core::ReconstructionConfig rc;
  rc.window_s = out.manifest.window_s;
  rc.output_fs_hz = out.manifest.analog_fs_hz;
  rc.dac_vref = out.manifest.dac_vref;
  rc.dac_bits = out.manifest.dac_bits;
  const core::DatcReconstructor recon(rc, std::move(calibration));
  if (out.duration_s > 0.0) {
    out.arv = recon.reconstruct(events, out.duration_s);
  }
  return out;
}

core::EnvelopeParity check_replay_parity(const std::string& dir,
                                         const std::vector<Real>& live,
                                         core::CalibrationPtr calibration) {
  const auto replayed = replay_envelope(dir, std::move(calibration));
  const std::vector<Real> reference =
      live.empty() && has_envelope_f64(dir)
          ? read_envelope_f64(dir)
          : std::vector<Real>(live.begin(), live.end());
  return core::compare_envelopes(reference, replayed.arv);
}

}  // namespace datc::store
