#include "store/recorder.hpp"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <thread>

#include "dsp/types.hpp"
#include "fault/fault.hpp"
#include "fault/file_io.hpp"

namespace datc::store {

namespace {

/// Close() failures swallowed by ~Recorder (see the header).
std::atomic<std::uint64_t> g_destructor_close_errors{0};

}  // namespace

// ---------------------------------------------------------------- Recorder

Recorder::Recorder(const RecorderConfig& config)
    : config_(config), writer_(config.log) {
  dsp::require(config_.max_queued_events >= 1,
               "Recorder: need a queue bound of at least 1 event");
  thread_ = std::thread([this] { writer_loop(); });
}

Recorder::~Recorder() {
  try {
    close();
  } catch (...) {
    // Destructor must not throw, but the failure must not disappear
    // either: count it where tests and operators can see it.
    g_destructor_close_errors.fetch_add(1, std::memory_order_relaxed);
  }
  if (thread_.joinable()) thread_.join();
}

std::uint64_t Recorder::destructor_close_errors() {
  return g_destructor_close_errors.load(std::memory_order_relaxed);
}

void Recorder::offer(std::span<const Event> events) {
  if (events.empty()) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (stop_) {
    // A sink that can no longer accept must still not throw into the
    // decode strand (the EventTee contract): late offers count as
    // dropped, keeping offered == written + dropped.
    offered_ += events.size();
    dropped_ += events.size();
    return;
  }
  offered_ += events.size();
  // Enqueue the prefix that fits the bound and drop (count) the rest —
  // never the whole chunk. A chunk larger than the bound itself (one
  // link chunk can decode arbitrarily many events) still stores its
  // first max_queued_events worth instead of nothing, and a prefix keeps
  // the log's time order intact.
  const std::size_t space = config_.max_queued_events - queued_events_;
  const std::size_t accept = std::min(space, events.size());
  if (accept > 0) {
    queue_.emplace_back(events.begin(),
                        events.begin() + static_cast<long>(accept));
    queued_events_ += accept;
    cv_work_.notify_one();
  }
  dropped_ += events.size() - accept;
}

bool Recorder::append_with_retry(const Event& e) {
  Real backoff_ms = config_.io_backoff_initial_ms;
  for (std::size_t attempt = 0;; ++attempt) {
    try {
      writer_.append(e);
      return true;
    } catch (const fault::IoError& io) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++io_errors_;
        last_error_ = io.what();
      }
      if (!io.transient() || attempt >= config_.max_io_retries) {
        // Degraded mode: drop this event, keep the recorder alive. The
        // caller counts the drop; offered == written + dropped holds.
        return false;
      }
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++io_retries_;
      }
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(backoff_ms));
      backoff_ms = std::min(backoff_ms * 2.0, config_.io_backoff_max_ms);
    }
  }
}

void Recorder::writer_loop() {
  while (true) {
    std::vector<Event> chunk;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_work_.wait(lock, [this] {
        return stop_ || (!paused_ && !queue_.empty());
      });
      if (queue_.empty() && stop_) return;
      if (queue_.empty() || (paused_ && !stop_)) continue;
      chunk = std::move(queue_.front());
      queue_.pop_front();
      in_flight_ = true;
    }
    // Per-event append: I/O errors degrade per event (retry, then drop
    // and continue with the rest of the chunk); logic errors — e.g. a
    // time-order violation, which no retry can fix — abort the chunk and
    // surface through flush()/close() as before.
    std::size_t wrote = 0;
    std::size_t io_dropped = 0;
    std::exception_ptr err;
    for (std::size_t i = 0; i < chunk.size(); ++i) {
      try {
        if (append_with_retry(chunk[i])) {
          ++wrote;
        } else {
          ++io_dropped;
        }
      } catch (...) {
        err = std::current_exception();
        break;
      }
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      in_flight_ = false;
      queued_events_ -= chunk.size();
      segments_finalized_ = writer_.segments_finalized();
      written_ += wrote;
      io_dropped_ += io_dropped;
      // Everything not written was dropped — by exhausted retries or by
      // a chunk-aborting logic error — keeping offered == written +
      // dropped.
      dropped_ += chunk.size() - wrote;
      if (err != nullptr && error_ == nullptr) error_ = err;
      cv_drained_.notify_all();
    }
  }
}

void Recorder::rethrow_locked(std::unique_lock<std::mutex>& lock) {
  (void)lock;  // caller holds mu_
  if (error_ != nullptr) {
    const std::exception_ptr err = error_;
    error_ = nullptr;
    std::rethrow_exception(err);
  }
}

void Recorder::flush() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_drained_.wait(lock, [this] {
    return (queue_.empty() && !in_flight_) || (paused_ && !in_flight_);
  });
  rethrow_locked(lock);
}

void Recorder::close() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (stop_ && !thread_.joinable()) {
      rethrow_locked(lock);
      return;
    }
    paused_ = false;
    stop_ = true;
    cv_work_.notify_all();
  }
  if (thread_.joinable()) thread_.join();
  std::unique_lock<std::mutex> lock(mu_);
  // Finalize the tail segment BEFORE surfacing any writer-thread error:
  // a failed chunk must not leave the log needing crash recovery.
  // Transient I/O failures are retried with the same backoff as appends;
  // if they persist, the failure is recorded and swallowed — the
  // unfinalized tail stays recoverable (recover_segment on next open),
  // which beats throwing away a clean shutdown path.
  Real backoff_ms = config_.io_backoff_initial_ms;
  for (std::size_t attempt = 0;; ++attempt) {
    try {
      writer_.close();
      break;
    } catch (const fault::IoError& io) {
      ++io_errors_;
      last_error_ = io.what();
      if (!io.transient() || attempt >= config_.max_io_retries) break;
      ++io_retries_;
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(backoff_ms));
      backoff_ms = std::min(backoff_ms * 2.0, config_.io_backoff_max_ms);
    }
  }
  segments_finalized_ = writer_.segments_finalized();
  rethrow_locked(lock);
}

Recorder::Stats Recorder::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.offered = offered_;
  s.written = written_;
  s.dropped = dropped_;
  s.segments_finalized = segments_finalized_;
  s.io_errors = io_errors_;
  s.io_retries = io_retries_;
  s.io_dropped = io_dropped_;
  s.last_error = last_error_;
  return s;
}

void Recorder::set_paused(bool paused) {
  std::lock_guard<std::mutex> lock(mu_);
  paused_ = paused;
  if (!paused) cv_work_.notify_all();
}

// ---------------------------------------------------------------- manifest

namespace {

constexpr char kManifestName[] = "manifest.txt";

std::string manifest_path(const std::string& dir) {
  return (std::filesystem::path(dir) / kManifestName).string();
}

}  // namespace

void write_manifest(const std::string& dir, const SessionManifest& m,
                    fault::FileIo* io) {
  std::filesystem::create_directories(dir);
  std::ostringstream f;
  f.precision(17);
  f << "analog_fs_hz=" << m.analog_fs_hz << '\n'
    << "duration_s=" << m.duration_s << '\n'
    << "window_s=" << m.window_s << '\n'
    << "dac_vref=" << m.dac_vref << '\n'
    << "dac_bits=" << m.dac_bits << '\n'
    << "count_fs_hz=" << m.count_fs_hz << '\n'
    << "band_lo_hz=" << m.band_lo_hz << '\n'
    << "band_hi_hz=" << m.band_hi_hz << '\n'
    << "channel=" << m.channel << '\n';
  const std::string text = f.str();
  fault::write_file(io != nullptr ? *io : fault::real_file_io(),
                    manifest_path(dir), text.data(), text.size());
}

SessionManifest read_manifest(const std::string& dir) {
  // Same diagnostic discipline as the scenario parser: every rejection —
  // malformed line, unknown/duplicate/missing key, bad number — names
  // `path:line` so a hand-edited manifest fails with a usable message.
  const std::string path = manifest_path(dir);
  std::ifstream f(path);
  dsp::require(f.good(), "read_manifest: cannot open " + path);
  const auto fail = [&path](int line, const std::string& msg) {
    throw std::invalid_argument(path + ":" + std::to_string(line) + ": " +
                                msg);
  };
  struct Entry {
    std::string value;
    int line;
  };
  std::map<std::string, Entry> kv;
  std::string line;
  int lineno = 0;
  while (std::getline(f, line)) {
    ++lineno;
    if (line.empty()) continue;
    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      fail(lineno, "expected `key=value`, got '" + line + "'");
    }
    const std::string key = line.substr(0, eq);
    const std::string value = line.substr(eq + 1);
    if (key.empty()) fail(lineno, "missing key before '='");
    if (value.empty()) fail(lineno, "missing value for key '" + key + "'");
    const auto [it, inserted] = kv.emplace(key, Entry{value, lineno});
    if (!inserted) {
      fail(lineno, "duplicate key '" + key + "' (first set on line " +
                       std::to_string(it->second.line) + ")");
    }
  }
  const auto num = [&](const char* key) {
    const auto it = kv.find(key);
    if (it == kv.end()) {
      throw std::invalid_argument(path + ": missing key '" +
                                  std::string(key) + "'");
    }
    const std::string& s = it->second.value;
    errno = 0;
    char* end = nullptr;
    const double v = std::strtod(s.c_str(), &end);
    if (end == s.c_str() || errno == ERANGE) {
      fail(it->second.line, "key '" + std::string(key) +
                                "': not a number: '" + s + "'");
    }
    if (*end != '\0') {
      fail(it->second.line, "key '" + std::string(key) +
                                "': trailing characters after number: '" + s +
                                "'");
    }
    return v;
  };
  const auto uint = [&](const char* key) {
    const double v = num(key);
    const auto it = kv.find(key);
    if (v < 0.0 || v != static_cast<double>(static_cast<std::uint32_t>(v))) {
      fail(it->second.line, "key '" + std::string(key) +
                                "': expected a non-negative integer, got '" +
                                it->second.value + "'");
    }
    return static_cast<std::uint32_t>(v);
  };
  SessionManifest m;
  m.analog_fs_hz = num("analog_fs_hz");
  m.duration_s = num("duration_s");
  m.window_s = num("window_s");
  m.dac_vref = num("dac_vref");
  m.dac_bits = uint("dac_bits");
  m.count_fs_hz = num("count_fs_hz");
  m.band_lo_hz = num("band_lo_hz");
  m.band_hi_hz = num("band_hi_hz");
  m.channel = uint("channel");
  for (const auto& [key, entry] : kv) {
    static const char* const kKnown[] = {
        "analog_fs_hz", "duration_s",  "window_s",   "dac_vref", "dac_bits",
        "count_fs_hz",  "band_lo_hz",  "band_hi_hz", "channel"};
    bool known = false;
    for (const char* k : kKnown) known = known || key == k;
    if (!known) fail(entry.line, "unknown key '" + key + "'");
  }
  dsp::require(m.analog_fs_hz > 0.0 && m.duration_s >= 0.0 &&
                   m.window_s > 0.0 && m.count_fs_hz > 0.0,
               "read_manifest: non-physical parameters in " + path);
  return m;
}

}  // namespace datc::store
