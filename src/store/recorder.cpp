#include "store/recorder.hpp"

#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

namespace datc::store {

// ---------------------------------------------------------------- Recorder

Recorder::Recorder(const RecorderConfig& config)
    : config_(config), writer_(config.log) {
  dsp::require(config_.max_queued_events >= 1,
               "Recorder: need a queue bound of at least 1 event");
  thread_ = std::thread([this] { writer_loop(); });
}

Recorder::~Recorder() {
  try {
    close();
  } catch (...) {
    // Destructor must not throw; close() exposes writer errors.
  }
  if (thread_.joinable()) thread_.join();
}

void Recorder::offer(std::span<const Event> events) {
  if (events.empty()) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (stop_) {
    // A sink that can no longer accept must still not throw into the
    // decode strand (the EventTee contract): late offers count as
    // dropped, keeping offered == written + dropped.
    offered_ += events.size();
    dropped_ += events.size();
    return;
  }
  offered_ += events.size();
  // Enqueue the prefix that fits the bound and drop (count) the rest —
  // never the whole chunk. A chunk larger than the bound itself (one
  // link chunk can decode arbitrarily many events) still stores its
  // first max_queued_events worth instead of nothing, and a prefix keeps
  // the log's time order intact.
  const std::size_t space = config_.max_queued_events - queued_events_;
  const std::size_t accept = std::min(space, events.size());
  if (accept > 0) {
    queue_.emplace_back(events.begin(),
                        events.begin() + static_cast<long>(accept));
    queued_events_ += accept;
    cv_work_.notify_one();
  }
  dropped_ += events.size() - accept;
}

void Recorder::writer_loop() {
  while (true) {
    std::vector<Event> chunk;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_work_.wait(lock, [this] {
        return stop_ || (!paused_ && !queue_.empty());
      });
      if (queue_.empty() && stop_) return;
      if (queue_.empty() || (paused_ && !stop_)) continue;
      chunk = std::move(queue_.front());
      queue_.pop_front();
      in_flight_ = true;
    }
    std::exception_ptr err;
    try {
      writer_.append(std::span<const Event>(chunk));
    } catch (...) {
      err = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      in_flight_ = false;
      queued_events_ -= chunk.size();
      segments_finalized_ = writer_.segments_finalized();
      if (err != nullptr) {
        if (error_ == nullptr) error_ = err;
        // A failed chunk counts as dropped, keeping
        // offered == written + dropped.
        dropped_ += chunk.size();
      } else {
        written_ += chunk.size();
      }
      cv_drained_.notify_all();
    }
  }
}

void Recorder::rethrow_locked(std::unique_lock<std::mutex>& lock) {
  (void)lock;  // caller holds mu_
  if (error_ != nullptr) {
    const std::exception_ptr err = error_;
    error_ = nullptr;
    std::rethrow_exception(err);
  }
}

void Recorder::flush() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_drained_.wait(lock, [this] {
    return (queue_.empty() && !in_flight_) || (paused_ && !in_flight_);
  });
  rethrow_locked(lock);
}

void Recorder::close() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (stop_ && !thread_.joinable()) {
      rethrow_locked(lock);
      return;
    }
    paused_ = false;
    stop_ = true;
    cv_work_.notify_all();
  }
  if (thread_.joinable()) thread_.join();
  std::unique_lock<std::mutex> lock(mu_);
  // Finalize the tail segment BEFORE surfacing any writer-thread error:
  // a failed chunk must not leave the log needing crash recovery.
  writer_.close();
  segments_finalized_ = writer_.segments_finalized();
  rethrow_locked(lock);
}

Recorder::Stats Recorder::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.offered = offered_;
  s.written = written_;
  s.dropped = dropped_;
  s.segments_finalized = segments_finalized_;
  return s;
}

void Recorder::set_paused(bool paused) {
  std::lock_guard<std::mutex> lock(mu_);
  paused_ = paused;
  if (!paused) cv_work_.notify_all();
}

// ---------------------------------------------------------------- manifest

namespace {

constexpr char kManifestName[] = "manifest.txt";

std::string manifest_path(const std::string& dir) {
  return (std::filesystem::path(dir) / kManifestName).string();
}

}  // namespace

void write_manifest(const std::string& dir, const SessionManifest& m) {
  std::filesystem::create_directories(dir);
  std::ofstream f(manifest_path(dir));
  dsp::require(f.good(), "write_manifest: cannot write in " + dir);
  f.precision(17);
  f << "analog_fs_hz=" << m.analog_fs_hz << '\n'
    << "duration_s=" << m.duration_s << '\n'
    << "window_s=" << m.window_s << '\n'
    << "dac_vref=" << m.dac_vref << '\n'
    << "dac_bits=" << m.dac_bits << '\n'
    << "count_fs_hz=" << m.count_fs_hz << '\n'
    << "band_lo_hz=" << m.band_lo_hz << '\n'
    << "band_hi_hz=" << m.band_hi_hz << '\n'
    << "channel=" << m.channel << '\n';
  dsp::require(f.good(), "write_manifest: write failed in " + dir);
}

SessionManifest read_manifest(const std::string& dir) {
  std::ifstream f(manifest_path(dir));
  dsp::require(f.good(), "read_manifest: cannot open " + manifest_path(dir));
  std::map<std::string, std::string> kv;
  std::string line;
  while (std::getline(f, line)) {
    if (line.empty()) continue;
    const auto eq = line.find('=');
    dsp::require(eq != std::string::npos,
                 "read_manifest: malformed line: " + line);
    kv[line.substr(0, eq)] = line.substr(eq + 1);
  }
  const auto num = [&kv](const char* key) {
    const auto it = kv.find(key);
    dsp::require(it != kv.end(),
                 std::string("read_manifest: missing key ") + key);
    return std::stod(it->second);
  };
  SessionManifest m;
  m.analog_fs_hz = num("analog_fs_hz");
  m.duration_s = num("duration_s");
  m.window_s = num("window_s");
  m.dac_vref = num("dac_vref");
  m.dac_bits = static_cast<std::uint32_t>(num("dac_bits"));
  m.count_fs_hz = num("count_fs_hz");
  m.band_lo_hz = num("band_lo_hz");
  m.band_hi_hz = num("band_hi_hz");
  m.channel = static_cast<std::uint32_t>(num("channel"));
  dsp::require(m.analog_fs_hz > 0.0 && m.duration_s >= 0.0 &&
                   m.window_s > 0.0 && m.count_fs_hz > 0.0,
               "read_manifest: non-physical parameters");
  return m;
}

}  // namespace datc::store
