#pragma once
// Deterministic re-simulation from a recorded session directory: the
// stored event log (the receiver's decoded stream) is fed back through
// the same rate-inversion reconstruction the live session ran, yielding
// an ARV envelope that is bit-identical to the one the live run emitted.
// The sparse event stream — not the waveform — is the durable artifact;
// everything downstream of the radio can be recomputed from it.
//
// The recording path also persists the live envelope (`envelope.f64`,
// raw little-endian doubles) so replay parity is checkable offline
// without re-running the radio chain.

#include <string>
#include <vector>

#include "core/reconstruct.hpp"
#include "fault/file_io.hpp"
#include "store/recorder.hpp"

namespace datc::store {

/// Raw f64 envelope sidecar inside a session directory, written through
/// the FileIo seam (`io`; the real filesystem when null).
void write_envelope_f64(const std::string& dir, const std::vector<Real>& arv,
                        fault::FileIo* io = nullptr);
[[nodiscard]] std::vector<Real> read_envelope_f64(const std::string& dir);
[[nodiscard]] bool has_envelope_f64(const std::string& dir);

struct ReplayResult {
  std::vector<Real> arv;
  std::size_t events{0};
  Real duration_s{0.0};
  SessionManifest manifest{};
};

/// Rebuilds the ARV envelope from the stored events and manifest. Pass a
/// calibration to share one Monte Carlo table across replays; when null,
/// it is rebuilt deterministically from the manifest's rates/band.
[[nodiscard]] ReplayResult replay_envelope(
    const std::string& dir, core::CalibrationPtr calibration = nullptr);

/// Replays `dir` and compares bit-for-bit against the live envelope —
/// the given one, or the recorded `envelope.f64` sidecar when `live` is
/// empty. Returns the same core::EnvelopeParity the streaming==batch
/// gates use (`samples` is the reference envelope's length).
[[nodiscard]] core::EnvelopeParity check_replay_parity(
    const std::string& dir, const std::vector<Real>& live = {},
    core::CalibrationPtr calibration = nullptr);

}  // namespace datc::store
