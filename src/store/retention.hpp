#pragma once
// Retention and compaction over a segmented event log. Long-term
// monitoring accumulates segments forever; the retention pass bounds the
// footprint with two policies applied relative to the newest event in
// the log (not wall-clock — replayed/simulated sessions carry their own
// timeline):
//
//   drop-by-age:    whole segments whose newest event is older than
//                   `max_age_s` are deleted.
//   downsample-by-decimation: segments older than `decimate_older_than_s`
//                   are rewritten keeping every `decimation_factor`-th
//                   event — coarse history stays queryable at a fraction
//                   of the bytes. The applied factor is recorded in the
//                   segment header, so re-running the pass is idempotent.
//
// Compaction is crash-safe: the decimated segment is written to a
// temporary file and atomically renamed over the original.

#include <cstdint>
#include <limits>
#include <string>

#include "store/log.hpp"

namespace datc::store {

struct RetentionPolicy {
  /// Segments entirely older than (newest event - max_age_s) are dropped.
  Real max_age_s{std::numeric_limits<Real>::infinity()};
  /// Segments entirely older than (newest event - decimate_older_than_s)
  /// are decimated.
  Real decimate_older_than_s{std::numeric_limits<Real>::infinity()};
  /// Keep every Nth event when decimating (1 = keep everything).
  std::uint32_t decimation_factor{1};
};

struct RetentionStats {
  std::size_t segments_dropped{0};
  std::size_t segments_decimated{0};
  std::uint64_t events_dropped{0};   ///< by both policies combined
  std::uint64_t events_before{0};
  std::uint64_t events_after{0};
};

/// One pass over the log directory. Never touches a non-finalized
/// (still-being-written or crashed) tail segment.
RetentionStats apply_retention(const std::string& dir,
                               const RetentionPolicy& policy);

}  // namespace datc::store
