#include "core/crc32.hpp"
#include "core/event_io.hpp"
#include "dsp/types.hpp"
#include "fault/file_io.hpp"
#include "store/segment.hpp"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>

namespace datc::store {
namespace {

using core::kEventRecordBytes;

// Header layout (little-endian, 64 bytes):
//   0  char[8]  magic "DATCSEG1"
//   8  u32      flags (bit 0: finalized)
//   12 u32      decimation
//   16 u64      seqno
//   24 u64      count (kOpenSegmentCount while the writer is appending)
//   32 f64      t_min
//   40 f64      t_max
//   48 u64      channel_bitmap
//   56 u32      payload_crc32
//   60 u32      reserved (0)
constexpr std::uint32_t kFlagFinalized = 1u;

void encode_header(const SegmentHeader& h,
                   unsigned char out[kSegmentHeaderBytes]) {
  std::memset(out, 0, kSegmentHeaderBytes);
  std::memcpy(out, kSegmentMagic, sizeof(kSegmentMagic));
  const std::uint32_t flags = h.finalized ? kFlagFinalized : 0u;
  std::memcpy(out + 8, &flags, 4);
  std::memcpy(out + 12, &h.decimation, 4);
  std::memcpy(out + 16, &h.seqno, 8);
  std::memcpy(out + 24, &h.count, 8);
  std::memcpy(out + 32, &h.t_min, 8);
  std::memcpy(out + 40, &h.t_max, 8);
  std::memcpy(out + 48, &h.channel_bitmap, 8);
  std::memcpy(out + 56, &h.payload_crc32, 4);
}

SegmentHeader decode_header(const unsigned char in[kSegmentHeaderBytes],
                            const std::string& path) {
  dsp::require(std::memcmp(in, kSegmentMagic, sizeof(kSegmentMagic)) == 0,
               "segment " + path + ": bad magic");
  SegmentHeader h;
  std::uint32_t flags = 0;
  std::memcpy(&flags, in + 8, 4);
  h.finalized = (flags & kFlagFinalized) != 0;
  std::memcpy(&h.decimation, in + 12, 4);
  std::memcpy(&h.seqno, in + 16, 8);
  std::memcpy(&h.count, in + 24, 8);
  std::memcpy(&h.t_min, in + 32, 8);
  std::memcpy(&h.t_max, in + 40, 8);
  std::memcpy(&h.channel_bitmap, in + 48, 8);
  std::memcpy(&h.payload_crc32, in + 56, 4);
  dsp::require(h.decimation >= 1, "segment " + path + ": zero decimation");
  return h;
}

std::uint64_t bitmap_bit(std::uint16_t channel) {
  return std::uint64_t{1} << (channel % 64);
}

/// Scans the payload of a possibly crash-truncated segment: returns the
/// longest prefix of whole, time-monotone records and fills `out` with
/// the bounds/bitmap/CRC of that prefix.
std::uint64_t scan_valid_prefix(std::istream& is, std::uint64_t max_records,
                                SegmentHeader& out) {
  core::Crc32 crc;
  std::uint64_t valid = 0;
  Real last_t = 0.0;
  unsigned char record[kEventRecordBytes];
  out.count = 0;
  out.channel_bitmap = 0;
  while (valid < max_records) {
    is.read(reinterpret_cast<char*>(record), sizeof(record));
    if (static_cast<std::size_t>(is.gcount()) != sizeof(record)) break;
    const Event e = core::decode_event_record(record);
    // Torn tail: stop at the first record that is not a finite,
    // monotone time. Garbage bytes can decode to NaN, which would sail
    // through a plain `< last_t` check and poison the header bounds.
    if (!std::isfinite(e.time_s)) break;
    if (valid > 0 && e.time_s < last_t) break;
    crc.update(record, sizeof(record));
    if (valid == 0) out.t_min = e.time_s;
    out.t_max = e.time_s;
    out.channel_bitmap |= bitmap_bit(e.channel);
    last_t = e.time_s;
    ++valid;
  }
  out.count = valid;
  out.payload_crc32 = crc.value();
  return valid;
}

}  // namespace

bool segment_may_have_channel(const SegmentHeader& header,
                              std::uint16_t channel) {
  return (header.channel_bitmap & bitmap_bit(channel)) != 0;
}

// ----------------------------------------------------------- SegmentWriter

SegmentWriter::SegmentWriter(const std::string& path, std::uint64_t seqno,
                             std::uint32_t decimation, fault::FileIo* io) {
  dsp::require(decimation >= 1, "SegmentWriter: decimation must be >= 1");
  path_ = path;
  file_ = (io != nullptr ? *io : fault::real_file_io()).create(path);
  header_.seqno = seqno;
  header_.decimation = decimation;
  header_.count = 0;
  // On-disk header says "open": sentinel count, not finalized. The
  // in-memory header_ tracks the real running values.
  SegmentHeader open = header_;
  open.count = kOpenSegmentCount;
  unsigned char buf[kSegmentHeaderBytes];
  encode_header(open, buf);
  file_->pwrite(0, buf, sizeof(buf));
}

SegmentWriter::~SegmentWriter() {
  try {
    finalize();
  } catch (...) {
    // Destructor must not throw; an unfinalized file is recoverable.
  }
}

void SegmentWriter::append(const Event& e) {
  dsp::require(open_, "SegmentWriter: append after finalize");
  dsp::require(std::isfinite(e.time_s),
               "SegmentWriter: event time must be finite");
  dsp::require(header_.count == 0 || e.time_s >= header_.t_max,
               "SegmentWriter: events must arrive in non-decreasing time "
               "order");
  unsigned char record[core::kEventRecordBytes];
  core::encode_event_record(e, record);
  // Positional write at the record's fixed offset, state updated only on
  // success: a failed (possibly torn) write leaves count/bounds/CRC
  // untouched, and the retry overwrites the same bytes.
  file_->pwrite(kSegmentHeaderBytes + header_.count * kEventRecordBytes,
                record, sizeof(record));
  crc_.update(record, sizeof(record));
  if (header_.count == 0) header_.t_min = e.time_s;
  header_.t_max = e.time_s;
  header_.channel_bitmap |= bitmap_bit(e.channel);
  ++header_.count;
}

void SegmentWriter::finalize() {
  if (!open_) return;
  SegmentHeader final_header = header_;
  final_header.finalized = true;
  final_header.payload_crc32 = crc_.value();
  unsigned char buf[kSegmentHeaderBytes];
  encode_header(final_header, buf);
  file_->pwrite(0, buf, sizeof(buf));
  file_->sync();
  file_->close();
  // Mark closed only after everything succeeded, so a transient header
  // write or sync failure leaves the writer open and finalize retryable.
  header_ = final_header;
  open_ = false;
}

// ----------------------------------------------------------- SegmentReader

SegmentReader::SegmentReader(const std::string& path)
    : path_(path), file_(path, std::ios::binary) {
  dsp::require(file_.good(), "SegmentReader: cannot open " + path);
  unsigned char buf[kSegmentHeaderBytes];
  file_.read(reinterpret_cast<char*>(buf), sizeof(buf));
  dsp::require(static_cast<std::size_t>(file_.gcount()) == sizeof(buf),
               "SegmentReader: truncated header in " + path);
  header_ = decode_header(buf, path);
  if (!header_.finalized || header_.count == kOpenSegmentCount) {
    // Crash tail: reconstruct the valid prefix in memory (read-only —
    // recover_segment() is the repairing variant).
    header_.finalized = false;
    const std::uint64_t max_records =
        (std::filesystem::file_size(path) - kSegmentHeaderBytes) /
        core::kEventRecordBytes;
    scan_valid_prefix(file_, max_records, header_);
    file_.clear();
  } else {
    const auto payload_bytes =
        std::filesystem::file_size(path) - kSegmentHeaderBytes;
    dsp::require(payload_bytes / core::kEventRecordBytes >= header_.count,
                 "SegmentReader: " + path +
                     " payload shorter than its header count (corrupt)");
  }
}

Event SegmentReader::read_record(std::uint64_t index) {
  dsp::require(index < header_.count,
               "SegmentReader: record index out of range");
  file_.seekg(static_cast<std::streamoff>(
      kSegmentHeaderBytes + index * core::kEventRecordBytes));
  unsigned char record[core::kEventRecordBytes];
  file_.read(reinterpret_cast<char*>(record), sizeof(record));
  dsp::require(static_cast<std::size_t>(file_.gcount()) == sizeof(record),
               "SegmentReader: short read in " + path_);
  return core::decode_event_record(record);
}

std::uint64_t SegmentReader::lower_bound(Real t) {
  std::uint64_t lo = 0;
  std::uint64_t hi = header_.count;
  while (lo < hi) {
    const std::uint64_t mid = lo + (hi - lo) / 2;
    if (read_record(mid).time_s < t) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

void SegmentReader::query(Real t_lo, Real t_hi,
                          std::optional<std::uint16_t> channel,
                          EventStream& out) {
  if (header_.count == 0 || t_hi <= t_lo) return;
  if (t_lo > header_.t_max || t_hi <= header_.t_min) return;
  if (channel && !segment_may_have_channel(header_, *channel)) return;
  const std::uint64_t first = lower_bound(t_lo);
  if (first >= header_.count) return;
  // Sequential scan from the lower bound; records are contiguous, so one
  // seek serves the whole range.
  file_.seekg(static_cast<std::streamoff>(
      kSegmentHeaderBytes + first * core::kEventRecordBytes));
  unsigned char record[core::kEventRecordBytes];
  for (std::uint64_t i = first; i < header_.count; ++i) {
    file_.read(reinterpret_cast<char*>(record), sizeof(record));
    dsp::require(static_cast<std::size_t>(file_.gcount()) == sizeof(record),
                 "SegmentReader: short read in " + path_);
    const Event e = core::decode_event_record(record);
    if (!(e.time_s < t_hi)) break;
    if (!channel || e.channel == *channel) {
      out.add(e.time_s, e.vth_code, e.channel);
    }
  }
}

EventStream SegmentReader::read_all() {
  file_.clear();
  file_.seekg(kSegmentHeaderBytes);
  EventStream out;
  out.reserve(static_cast<std::size_t>(header_.count));
  core::Crc32 crc;
  unsigned char record[core::kEventRecordBytes];
  for (std::uint64_t i = 0; i < header_.count; ++i) {
    file_.read(reinterpret_cast<char*>(record), sizeof(record));
    dsp::require(static_cast<std::size_t>(file_.gcount()) == sizeof(record),
                 "SegmentReader: short read in " + path_);
    crc.update(record, sizeof(record));
    const Event e = core::decode_event_record(record);
    out.add(e.time_s, e.vth_code, e.channel);
  }
  if (header_.finalized) {
    dsp::require(crc.value() == header_.payload_crc32,
                 "SegmentReader: payload CRC mismatch in " + path_);
  }
  return out;
}

bool SegmentReader::verify() {
  file_.clear();
  file_.seekg(kSegmentHeaderBytes);
  core::Crc32 crc;
  unsigned char record[core::kEventRecordBytes];
  for (std::uint64_t i = 0; i < header_.count; ++i) {
    file_.read(reinterpret_cast<char*>(record), sizeof(record));
    if (static_cast<std::size_t>(file_.gcount()) != sizeof(record)) {
      return false;
    }
    crc.update(record, sizeof(record));
  }
  return !header_.finalized || crc.value() == header_.payload_crc32;
}

// ---------------------------------------------------------------- recovery

std::uint64_t recover_segment(const std::string& path) {
  SegmentHeader recovered;
  {
    std::ifstream in(path, std::ios::binary);
    dsp::require(in.good(), "recover_segment: cannot open " + path);
    unsigned char buf[kSegmentHeaderBytes];
    in.read(reinterpret_cast<char*>(buf), sizeof(buf));
    dsp::require(static_cast<std::size_t>(in.gcount()) == sizeof(buf),
                 "recover_segment: truncated header in " + path);
    const SegmentHeader on_disk = decode_header(buf, path);
    if (on_disk.finalized && on_disk.count != kOpenSegmentCount) {
      return on_disk.count;  // clean shutdown: nothing to repair
    }
    recovered = on_disk;
    recovered.finalized = false;
    const std::uint64_t max_records =
        (std::filesystem::file_size(path) - kSegmentHeaderBytes) /
        core::kEventRecordBytes;
    scan_valid_prefix(in, max_records, recovered);
  }
  // Truncate the torn tail, then persist the now-exact header.
  std::filesystem::resize_file(
      path, kSegmentHeaderBytes +
                recovered.count * core::kEventRecordBytes);
  recovered.finalized = true;
  std::fstream out(path, std::ios::binary | std::ios::in | std::ios::out);
  dsp::require(out.good(), "recover_segment: cannot reopen " + path);
  unsigned char buf[kSegmentHeaderBytes];
  encode_header(recovered, buf);
  out.write(reinterpret_cast<const char*>(buf), sizeof(buf));
  out.flush();
  dsp::require(out.good(), "recover_segment: header rewrite failed on " +
                               path);
  return recovered.count;
}

}  // namespace datc::store
