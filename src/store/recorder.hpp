#pragma once
// Recorder: the storage sink a live session tees decoded events into.
// A bounded in-memory queue decouples the decode strand from disk — the
// producer side (offer) never blocks and never touches the filesystem;
// a background thread drains the queue into a LogWriter. When the queue
// fills, the part of the offered chunk that does not fit is dropped and
// counted (storage pressure must not stall the radio chain), so
// `offered == written + dropped` always holds after close().
//
// The manifest records everything replay needs to re-simulate the
// receiver deterministically: sample rate, duration, reconstruction
// window/DAC parameters and the calibration's counting rate.

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "store/log.hpp"

namespace datc::store {

struct RecorderConfig {
  LogWriterConfig log;
  /// Queue bound in events; offers that would exceed it are dropped.
  std::size_t max_queued_events{1u << 16};
};

class Recorder {
 public:
  explicit Recorder(const RecorderConfig& config);
  ~Recorder();

  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  /// Thread-safe, non-blocking, never throws into the caller: enqueues a
  /// copy of the chunk's prefix up to the queue bound and drops (counts)
  /// whatever does not fit; after close() everything offered is dropped.
  void offer(std::span<const Event> events);

  /// Blocks until every queued chunk reached the LogWriter. Rethrows the
  /// first writer-thread error, if any.
  void flush();

  /// flush() + finalize the log. Idempotent; runs from the destructor
  /// (swallowing errors there — call close() to observe them).
  void close();

  struct Stats {
    std::uint64_t offered{0};
    std::uint64_t written{0};
    std::uint64_t dropped{0};
    std::uint64_t segments_finalized{0};
  };
  [[nodiscard]] Stats stats() const;

  /// Test/backpressure hook: while paused the writer thread leaves the
  /// queue untouched, so overflow (drop) behaviour is deterministic.
  void set_paused(bool paused);

  [[nodiscard]] const std::string& dir() const {
    return writer_.config().dir;
  }

 private:
  RecorderConfig config_;
  LogWriter writer_;  ///< writer-thread only after construction
  mutable std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_drained_;
  std::deque<std::vector<Event>> queue_;
  std::size_t queued_events_{0};
  std::uint64_t offered_{0};
  std::uint64_t written_{0};
  std::uint64_t dropped_{0};
  /// Mirror of writer_.segments_finalized(), updated under mu_ — the
  /// writer thread mutates writer_ outside the lock during append, so
  /// stats() must never touch writer_ directly while it runs.
  std::uint64_t segments_finalized_{0};
  bool paused_{false};
  bool stop_{false};
  bool in_flight_{false};  ///< writer is appending a popped chunk
  std::exception_ptr error_;
  std::thread thread_;

  void writer_loop();
  void rethrow_locked(std::unique_lock<std::mutex>& lock);
};

/// Everything `datc replay` needs to rebuild the receiver: written by the
/// recording path, read by the replay path. Plain `key=value` lines in
/// `manifest.txt` inside the session directory.
struct SessionManifest {
  Real analog_fs_hz{2500.0};
  Real duration_s{0.0};
  Real window_s{0.25};
  Real dac_vref{1.0};
  std::uint32_t dac_bits{4};
  Real count_fs_hz{2000.0};   ///< calibration counting rate (DTC clock)
  Real band_lo_hz{20.0};
  Real band_hi_hz{450.0};
  std::uint32_t channel{0};
};

void write_manifest(const std::string& dir, const SessionManifest& m);
[[nodiscard]] SessionManifest read_manifest(const std::string& dir);

}  // namespace datc::store
