#pragma once
// Recorder: the storage sink a live session tees decoded events into.
// A bounded in-memory queue decouples the decode strand from disk — the
// producer side (offer) never blocks and never touches the filesystem;
// a background thread drains the queue into a LogWriter. When the queue
// fills, the part of the offered chunk that does not fit is dropped and
// counted (storage pressure must not stall the radio chain), so
// `offered == written + dropped` always holds after close().
//
// Graceful degradation under storage faults: a transient fault::IoError
// from the log (injected or real) is retried per event with bounded
// exponential backoff; when retries are exhausted — or the error is not
// transient — the event is dropped, counted (Stats::io_dropped /
// io_errors / last_error) and the recorder keeps going in degraded mode
// rather than killing the session. Logic errors (e.g. a time-order
// violation) still surface through flush()/close() exactly as before.
//
// The manifest records everything replay needs to re-simulate the
// receiver deterministically: sample rate, duration, reconstruction
// window/DAC parameters and the calibration's counting rate.

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "fault/file_io.hpp"
#include "store/log.hpp"

namespace datc::store {

struct RecorderConfig {
  LogWriterConfig log;
  /// Queue bound in events; offers that would exceed it are dropped.
  std::size_t max_queued_events{1u << 16};
  /// Retry budget per event for transient I/O errors (0 = no retries).
  std::size_t max_io_retries{4};
  /// Exponential backoff between retries: initial delay, doubling up to
  /// the cap. Wall-clock only — never part of any determinism contract.
  Real io_backoff_initial_ms{0.5};
  Real io_backoff_max_ms{8.0};
};

class Recorder {
 public:
  explicit Recorder(const RecorderConfig& config);
  ~Recorder();

  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  /// Thread-safe, non-blocking, never throws into the caller: enqueues a
  /// copy of the chunk's prefix up to the queue bound and drops (counts)
  /// whatever does not fit; after close() everything offered is dropped.
  void offer(std::span<const Event> events);

  /// Blocks until every queued chunk reached the LogWriter. Rethrows the
  /// first writer-thread error, if any.
  void flush();

  /// flush() + finalize the log. Idempotent; runs from the destructor
  /// (swallowing errors there — call close() to observe them).
  void close();

  struct Stats {
    std::uint64_t offered{0};
    std::uint64_t written{0};
    std::uint64_t dropped{0};  ///< overflow + io_dropped + post-close offers
    std::uint64_t segments_finalized{0};
    std::uint64_t io_errors{0};   ///< I/O failures observed (incl. retried)
    std::uint64_t io_retries{0};  ///< retry attempts made
    std::uint64_t io_dropped{0};  ///< events dropped after exhausted retries
    std::string last_error;       ///< most recent I/O error message
  };
  [[nodiscard]] Stats stats() const;

  /// Process-wide count of close() errors swallowed by ~Recorder (a
  /// destructor cannot throw, but the failure must not vanish: tests and
  /// operators can watch this counter). Errors from an explicit close()
  /// are NOT counted — the caller saw them.
  [[nodiscard]] static std::uint64_t destructor_close_errors();

  /// Test/backpressure hook: while paused the writer thread leaves the
  /// queue untouched, so overflow (drop) behaviour is deterministic.
  void set_paused(bool paused);

  [[nodiscard]] const std::string& dir() const {
    return writer_.config().dir;
  }

 private:
  RecorderConfig config_;
  LogWriter writer_;  ///< writer-thread only after construction
  mutable std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_drained_;
  std::deque<std::vector<Event>> queue_;
  std::size_t queued_events_{0};
  std::uint64_t offered_{0};
  std::uint64_t written_{0};
  std::uint64_t dropped_{0};
  std::uint64_t io_errors_{0};
  std::uint64_t io_retries_{0};
  std::uint64_t io_dropped_{0};
  std::string last_error_;
  /// Mirror of writer_.segments_finalized(), updated under mu_ — the
  /// writer thread mutates writer_ outside the lock during append, so
  /// stats() must never touch writer_ directly while it runs.
  std::uint64_t segments_finalized_{0};
  bool paused_{false};
  bool stop_{false};
  bool in_flight_{false};  ///< writer is appending a popped chunk
  std::exception_ptr error_;
  std::thread thread_;

  void writer_loop();
  /// Writer thread only: appends one event, retrying transient IoErrors
  /// with bounded backoff. True = written, false = dropped (degraded).
  bool append_with_retry(const Event& e);
  void rethrow_locked(std::unique_lock<std::mutex>& lock);
};

/// Everything `datc replay` needs to rebuild the receiver: written by the
/// recording path, read by the replay path. Plain `key=value` lines in
/// `manifest.txt` inside the session directory.
struct SessionManifest {
  Real analog_fs_hz{2500.0};
  Real duration_s{0.0};
  Real window_s{0.25};
  Real dac_vref{1.0};
  std::uint32_t dac_bits{4};
  Real count_fs_hz{2000.0};   ///< calibration counting rate (DTC clock)
  Real band_lo_hz{20.0};
  Real band_hi_hz{450.0};
  std::uint32_t channel{0};
};

/// Writes `manifest.txt` through the FileIo seam (`io`; the real
/// filesystem when null) — store/ performs no write-side file I/O
/// outside the seam, so recordings stay fault-injectable end to end.
void write_manifest(const std::string& dir, const SessionManifest& m,
                    fault::FileIo* io = nullptr);
[[nodiscard]] SessionManifest read_manifest(const std::string& dir);

}  // namespace datc::store
