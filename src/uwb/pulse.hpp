#pragma once
// IR-UWB pulse shapes: derivatives of the Gaussian pulse, the classic
// waveforms radiated by all-digital UWB transmitters such as ref. [11]
// (0.3-4.4 GHz pulsed TX). The 5th derivative is the lowest order whose
// spectrum fits under the FCC indoor mask without extra filtering.

#include <vector>

#include "dsp/types.hpp"

namespace datc::uwb {

using dsp::Real;

struct PulseShapeConfig {
  unsigned derivative_order{5};  ///< 1 = monocycle, 2 = doublet, ...
  Real tau_s{80e-12};            ///< Gaussian time constant (~GHz band)
  Real amplitude_v{0.1};         ///< peak |amplitude| at the antenna
};

/// Value of the order-th derivative Gaussian pulse at time t (centred at
/// t = 0), normalised to unit peak magnitude.
[[nodiscard]] Real pulse_value(const PulseShapeConfig& shape, Real t_s);

/// Sampled waveform over +-support_sigmas*tau, at fs_hz.
[[nodiscard]] std::vector<Real> pulse_waveform(const PulseShapeConfig& shape,
                                               Real fs_hz,
                                               Real support_sigmas = 6.0);

/// Energy of the sampled pulse (V^2 s).
[[nodiscard]] Real pulse_energy(const PulseShapeConfig& shape, Real fs_hz);

/// Approximate centre frequency of the order-th derivative pulse:
/// f_c = sqrt(order) / (2 pi tau).
[[nodiscard]] Real pulse_center_freq_hz(const PulseShapeConfig& shape);

}  // namespace datc::uwb
