#include "dsp/types.hpp"
#include "uwb/pulse.hpp"

#include <array>
#include <cmath>
#include <numbers>

namespace datc::uwb {
namespace {

/// Hermite polynomial H_n(x) (physicists'), via the recurrence.
Real hermite(unsigned n, Real x) {
  Real h0 = 1.0;
  if (n == 0) return h0;
  Real h1 = 2.0 * x;
  for (unsigned k = 2; k <= n; ++k) {
    const Real h2 = 2.0 * x * h1 - 2.0 * static_cast<Real>(k - 1) * h0;
    h0 = h1;
    h1 = h2;
  }
  return h1;
}

/// Unnormalised n-th derivative of exp(-t^2 / (2 tau^2)):
/// d^n/dt^n exp(-x^2/2) = (-1)^n He_n(x) exp(-x^2/2) with x = t/tau.
/// Using physicists' H_n(x/sqrt2) keeps the recurrence simple; only the
/// normalised shape matters here.
/// 2^(-n/2), memoised for small n: std::pow is deterministic for a fixed
/// argument, so the cached value is bit-identical to calling it inline —
/// and it sat on the per-sample path of every waveform evaluation.
Real half_pow_scale(unsigned n) {
  static const auto table = [] {
    std::array<Real, 17> t{};
    for (unsigned k = 0; k < t.size(); ++k) {
      t[k] = std::pow(2.0, -static_cast<Real>(k) / 2.0);
    }
    return t;
  }();
  return n < table.size() ? table[n]
                          : std::pow(2.0, -static_cast<Real>(n) / 2.0);
}

Real gaussian_derivative(unsigned n, Real x) {
  const Real g = std::exp(-x * x / 2.0);
  const Real scale = half_pow_scale(n);
  return scale * hermite(n, x / std::numbers::sqrt2_v<Real>) * g *
         ((n % 2) ? -1.0 : 1.0);
}

Real shape_peak_search(unsigned n) {
  Real peak = 0.0;
  for (int i = -600; i <= 600; ++i) {
    const Real x = static_cast<Real>(i) / 100.0;
    peak = std::max(peak, std::abs(gaussian_derivative(n, x)));
  }
  return peak;
}

/// Peak magnitude of the order-th derivative shape. The numeric search is
/// deterministic per order, so it runs once per order (it used to run per
/// call — 1201 waveform evaluations on every receiver construction).
Real shape_peak(unsigned n) {
  static const auto peaks = [] {
    std::array<Real, 9> p{};
    for (unsigned k = 1; k < p.size(); ++k) p[k] = shape_peak_search(k);
    return p;
  }();
  return n < peaks.size() ? peaks[n] : shape_peak_search(n);
}

}  // namespace

Real pulse_value(const PulseShapeConfig& shape, Real t_s) {
  dsp::require(shape.tau_s > 0.0, "pulse_value: tau must be positive");
  dsp::require(shape.derivative_order >= 1 && shape.derivative_order <= 8,
               "pulse_value: derivative order must lie in [1,8]");
  const Real x = t_s / shape.tau_s;
  return shape.amplitude_v * gaussian_derivative(shape.derivative_order, x) /
         shape_peak(shape.derivative_order);
}

std::vector<Real> pulse_waveform(const PulseShapeConfig& shape, Real fs_hz,
                                 Real support_sigmas) {
  dsp::require(fs_hz > 0.0, "pulse_waveform: fs must be positive");
  const Real t_max = support_sigmas * shape.tau_s;
  const auto half = static_cast<std::size_t>(std::ceil(t_max * fs_hz));
  std::vector<Real> w(2 * half + 1);
  const Real peak = shape_peak(shape.derivative_order);
  for (std::size_t i = 0; i < w.size(); ++i) {
    const Real t = (static_cast<Real>(i) - static_cast<Real>(half)) / fs_hz;
    w[i] = shape.amplitude_v *
           gaussian_derivative(shape.derivative_order, t / shape.tau_s) /
           peak;
  }
  return w;
}

Real pulse_energy(const PulseShapeConfig& shape, Real fs_hz) {
  const auto w = pulse_waveform(shape, fs_hz);
  Real e = 0.0;
  for (const Real v : w) e += v * v;
  return e / fs_hz;
}

Real pulse_center_freq_hz(const PulseShapeConfig& shape) {
  return std::sqrt(static_cast<Real>(shape.derivative_order)) /
         (2.0 * std::numbers::pi_v<Real> * shape.tau_s);
}

}  // namespace datc::uwb
