#include "uwb/packet_baseline.hpp"

#include <cmath>

#include "dsp/envelope.hpp"
#include "dsp/stats.hpp"
#include "dsp/types.hpp"
#include "uwb/channel.hpp"
#include "uwb/pulse.hpp"
#include "uwb/receiver.hpp"

namespace datc::uwb {
namespace {

void append_bits(std::vector<bool>& bits, std::uint32_t value,
                 unsigned width) {
  for (unsigned b = width; b-- > 0;) {
    bits.push_back((value >> b) & 1u);
  }
}

std::uint32_t read_bits(const std::vector<bool>& bits, std::size_t& pos,
                        unsigned width) {
  std::uint32_t v = 0;
  for (unsigned b = 0; b < width; ++b) {
    v = (v << 1) | (bits[pos++] ? 1u : 0u);
  }
  return v;
}

}  // namespace

std::uint16_t crc16_ccitt(const std::vector<bool>& bits) {
  std::uint16_t crc = 0xFFFF;
  for (const bool bit : bits) {
    const bool msb = (crc & 0x8000u) != 0;
    crc = static_cast<std::uint16_t>(crc << 1);
    if (bit != msb) crc ^= 0x1021;
  }
  return crc;
}

std::vector<bool> Frame::to_bits(const PacketBaselineConfig& cfg) const {
  std::vector<bool> body;
  append_bits(body, cfg.node_id, 8);
  append_bits(body, seq, 8);
  for (const auto s : samples) append_bits(body, s, cfg.adc.bits);
  const std::uint16_t crc = crc16_ccitt(body);
  std::vector<bool> bits;
  append_bits(bits, cfg.sfd, 8);
  bits.insert(bits.end(), body.begin(), body.end());
  append_bits(bits, crc, 16);
  return bits;
}

PacketTxResult packetize(const dsp::TimeSeries& signal,
                         const PacketBaselineConfig& cfg) {
  dsp::require(cfg.samples_per_packet >= 1,
               "packetize: need >= 1 sample per packet");
  const afe::Adc adc(cfg.adc);
  PacketTxResult out;
  Frame current;
  std::uint8_t seq = 0;
  for (std::size_t i = 0; i < signal.size(); ++i) {
    current.samples.push_back(adc.code(signal[i]));
    if (current.samples.size() == cfg.samples_per_packet ||
        i + 1 == signal.size()) {
      current.seq = seq++;
      out.payload_bits += current.samples.size() * cfg.adc.bits;
      out.total_bits += current.to_bits(cfg).size();
      out.frames.push_back(std::move(current));
      current = Frame{};
    }
  }
  return out;
}

PacketRxResult transmit_and_decode(const PacketTxResult& tx,
                                   const PacketBaselineConfig& cfg,
                                   const EnergyDetectorConfig& det,
                                   const ChannelConfig& channel,
                                   const PulseShapeConfig& shape,
                                   dsp::Rng& rng) {
  // Per-slot OOK statistics from the energy-detector analysis: a 1-slot
  // survives with Pd (pulse detected), a 0-slot flips with Pfa.
  PulseShapeConfig rx_shape = shape;
  rx_shape.amplitude_v = shape.amplitude_v * channel_gain(channel);
  const Real fs_pulse = 64.0 / rx_shape.tau_s;
  const Real energy = pulse_energy(rx_shape, fs_pulse);
  Real pd = detection_probability(det, channel, energy);
  if (channel.erasure_prob > 0.0) pd *= (1.0 - channel.erasure_prob);
  const Real pfa = det.false_alarm_prob;

  PacketRxResult out;
  out.frames_sent = tx.frames.size();
  out.sample_rate_hz = cfg.tx_sample_rate_hz;
  const afe::Adc adc(cfg.adc);
  Real held = 0.0;

  for (const auto& frame : tx.frames) {
    auto bits = frame.to_bits(cfg);
    std::size_t errors = 0;
    for (std::size_t b = 0; b < bits.size(); ++b) {
      if (bits[b]) {
        if (!rng.chance(pd)) {
          bits[b] = false;
          ++errors;
        }
      } else if (pfa > 0.0 && rng.chance(pfa)) {
        bits[b] = true;
        ++errors;
      }
    }
    out.bit_errors += errors;

    // Sample count as the receiver derives it — from the physical frame
    // length (SFD 8 + node 8 + seq 8 + payload + CRC 16 bits), never from
    // the TX-side ground truth. The final frame of a record is usually
    // shorter than samples_per_packet; a real decoder only knows its
    // on-air length.
    dsp::require(bits.size() >= 40 && (bits.size() - 40) % cfg.adc.bits == 0,
                 "transmit_and_decode: malformed frame length");
    const std::size_t n_samples = (bits.size() - 40) / cfg.adc.bits;

    // SFD hunt: a corrupted delimiter means the frame is never found.
    std::size_t pos = 0;
    const std::uint32_t sfd = read_bits(bits, pos, 8);
    if (sfd != cfg.sfd) {
      ++out.frames_lost_sync;
      for (std::size_t k = 0; k < n_samples; ++k) {
        out.reconstructed.push_back(held);
      }
      continue;
    }
    // Body + CRC check.
    std::vector<bool> body(bits.begin() + 8, bits.end() - 16);
    std::size_t crc_pos = bits.size() - 16;
    const auto rx_crc =
        static_cast<std::uint16_t>(read_bits(bits, crc_pos, 16));
    if (crc16_ccitt(body) != rx_crc) {
      ++out.frames_crc_fail;
      for (std::size_t k = 0; k < n_samples; ++k) {
        out.reconstructed.push_back(held);
      }
      continue;
    }
    ++out.frames_ok;
    std::size_t body_pos = 0;
    (void)read_bits(body, body_pos, 8);  // node id
    (void)read_bits(body, body_pos, 8);  // seq
    for (std::size_t k = 0; k < n_samples; ++k) {
      const auto code = read_bits(body, body_pos, cfg.adc.bits);
      held = adc.voltage(code);
      out.reconstructed.push_back(held);
    }
  }
  return out;
}

PacketBaselineScore run_packet_baseline(const dsp::TimeSeries& signal,
                                        const PacketBaselineConfig& cfg,
                                        const EnergyDetectorConfig& det,
                                        const ChannelConfig& channel,
                                        const PulseShapeConfig& shape,
                                        dsp::Rng& rng, Real window_s) {
  const auto tx = packetize(signal, cfg);
  auto rx = transmit_and_decode(tx, cfg, det, channel, shape, rng);
  PacketBaselineScore score;
  score.total_bits = tx.total_bits;

  const auto truth =
      dsp::arv_envelope(signal.view(), signal.sample_rate_hz(), window_s);
  const auto est = dsp::arv_envelope(
      rx.reconstructed, signal.sample_rate_hz(), window_s);
  const std::size_t n = std::min(truth.size(), est.size());
  score.correlation_pct = dsp::correlation_percent(
      std::span<const Real>(truth.data(), n),
      std::span<const Real>(est.data(), n));
  score.rx = std::move(rx);
  return score;
}

}  // namespace datc::uwb
