#pragma once
// Event-to-pulse modulator. ATC radiates one bare pulse per event; D-ATC
// radiates the Fig. 2E packet: a marker pulse followed by the Set_Vth code
// in OOK bit slots. Pulses are represented symbolically (time, amplitude);
// waveform rendering is only needed for PSD/mask analysis.

#include <cstdint>
#include <vector>

#include "core/events.hpp"
#include "dsp/types.hpp"
#include "uwb/pulse.hpp"

namespace datc::uwb {

struct PulseEmission {
  Real time_s{0.0};
  Real amplitude_v{0.0};
  std::uint32_t packet_id{0};  ///< which event emitted it (diagnostics)
  bool is_marker{false};
};

class PulseTrain {
 public:
  void add(const PulseEmission& p) { pulses_.push_back(p); }
  void reserve(std::size_t n) { pulses_.reserve(n); }
  [[nodiscard]] const std::vector<PulseEmission>& pulses() const {
    return pulses_;
  }
  [[nodiscard]] std::size_t size() const { return pulses_.size(); }
  [[nodiscard]] bool empty() const { return pulses_.empty(); }
  void sort_by_time();

  /// Drop the pulses, keep the allocation (per-chunk buffer reuse in the
  /// streaming paths).
  void clear() { pulses_.clear(); }

  /// Renders the train into a sampled waveform over [t0, t1) at fs_hz.
  /// Meant for short PSD-analysis windows — rendering 20 s at 20 GS/s is
  /// deliberately not supported (throws above `max_samples`).
  [[nodiscard]] dsp::TimeSeries render(const PulseShapeConfig& shape, Real t0,
                                       Real t1, Real fs_hz,
                                       std::size_t max_samples = 1u << 24) const;

 private:
  std::vector<PulseEmission> pulses_;
};

struct ModulatorConfig {
  PulseShapeConfig shape{};
  Real symbol_period_s{100e-9};  ///< bit-slot spacing inside a packet
  unsigned code_bits{4};         ///< threshold bits per D-ATC packet
  bool msb_first{true};
};

/// ATC: one marker pulse per event.
[[nodiscard]] PulseTrain modulate_atc(const core::EventStream& events,
                                      const ModulatorConfig& config);

/// D-ATC: marker + OOK code bits per event (1 + code_bits slots).
[[nodiscard]] PulseTrain modulate_datc(const core::EventStream& events,
                                       const ModulatorConfig& config);

/// Shared-medium AER framing: marker, then `address_bits` OOK slots
/// carrying the event's channel address, then the `code_bits` threshold
/// slots — `1 + address_bits + code_bits` slots per event, matching
/// aer_symbols_per_event. Bit order of both fields follows
/// `config.msb_first`. With address_bits == 0 this is modulate_datc.
[[nodiscard]] PulseTrain modulate_aer(const core::EventStream& events,
                                      const ModulatorConfig& config,
                                      unsigned address_bits);

namespace detail {

/// Appends one event's frame — marker, then the optional AER address
/// field, then the code field — to the train. Shared by the batch
/// modulators and StreamingModulator so the pulse layout cannot drift
/// between the two paths.
void emit_frame(PulseTrain& train, const ModulatorConfig& config,
                unsigned address_bits, const core::Event& event,
                std::uint32_t id);

}  // namespace detail

/// Total on-air duration of one D-ATC packet.
[[nodiscard]] Real packet_duration_s(const ModulatorConfig& config);

/// Total on-air duration of one AER frame (marker + address + code).
[[nodiscard]] Real aer_frame_duration_s(const ModulatorConfig& config,
                                        unsigned address_bits);

}  // namespace datc::uwb
