#pragma once
// The "standard packet-based system" the paper compares against
// (Sec. II / Sec. III-B): every sEMG sample is ADC-converted and shipped
// in framed packets — SFD, ID, sequence number, 12-bit payload samples
// and a CRC-16 — as OOK bits over the same IR-UWB link the event schemes
// use. This module simulates that system end to end so the comparison is
// a measurement, not just symbol accounting:
//
//   signal -> ADC -> frames -> bit channel (Pd / Pfa per OOK slot)
//          -> SFD hunt -> CRC check -> sample recovery -> envelope
//
// Packets that fail CRC are dropped; the receiver holds the last good
// sample (the usual telemetry behaviour), which is where the baseline's
// robustness pays for its enormous symbol budget.

#include <cstdint>
#include <optional>
#include <vector>

#include "afe/dac.hpp"
#include "dsp/rng.hpp"
#include "dsp/types.hpp"
#include "uwb/channel.hpp"
#include "uwb/pulse.hpp"
#include "uwb/receiver.hpp"

namespace datc::uwb {

using dsp::Real;

/// CRC-16/CCITT-FALSE over a bit sequence (MSB-first), init 0xFFFF,
/// polynomial 0x1021. Bit-level so frames need not be byte aligned.
[[nodiscard]] std::uint16_t crc16_ccitt(const std::vector<bool>& bits);

struct PacketBaselineConfig {
  afe::AdcConfig adc{};            ///< 12-bit, +-1 V by default
  unsigned samples_per_packet{16};
  std::uint8_t sfd{0xA7};          ///< start-frame delimiter byte
  std::uint8_t node_id{0x3C};
  Real tx_sample_rate_hz{2500.0};  ///< every acquired sample is sent
};

/// One frame on the wire.
struct Frame {
  std::uint8_t seq{0};
  std::vector<std::uint32_t> samples;  ///< ADC codes
  [[nodiscard]] std::vector<bool> to_bits(
      const PacketBaselineConfig& cfg) const;
};

struct PacketTxResult {
  std::vector<Frame> frames;
  std::size_t total_bits{0};
  std::size_t payload_bits{0};
};

/// Digitise and frame a whole record.
[[nodiscard]] PacketTxResult packetize(const dsp::TimeSeries& signal,
                                       const PacketBaselineConfig& cfg);

struct PacketRxResult {
  std::vector<Real> reconstructed;  ///< held/decoded waveform (volts)
  std::size_t frames_sent{0};
  std::size_t frames_ok{0};
  std::size_t frames_crc_fail{0};
  std::size_t frames_lost_sync{0};
  std::size_t bit_errors{0};
  Real sample_rate_hz{0.0};
};

/// Runs the framed bit stream through a per-slot OOK channel derived from
/// the energy-detector statistics (P_detect for 1-slots, P_false-alarm
/// for 0-slots — equivalent to the pulse-level model under slot sync),
/// hunts for the SFD, validates CRCs and rebuilds the waveform.
[[nodiscard]] PacketRxResult transmit_and_decode(
    const PacketTxResult& tx, const PacketBaselineConfig& cfg,
    const EnergyDetectorConfig& det, const ChannelConfig& channel,
    const PulseShapeConfig& shape, dsp::Rng& rng);

/// Convenience: the whole baseline in one call, returning the correlation
/// of the reconstructed ARV envelope against the original's.
struct PacketBaselineScore {
  Real correlation_pct{0.0};
  PacketRxResult rx;
  std::size_t total_bits{0};
};

[[nodiscard]] PacketBaselineScore run_packet_baseline(
    const dsp::TimeSeries& signal, const PacketBaselineConfig& cfg,
    const EnergyDetectorConfig& det, const ChannelConfig& channel,
    const PulseShapeConfig& shape, dsp::Rng& rng, Real window_s = 0.25);

}  // namespace datc::uwb
