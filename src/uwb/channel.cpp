#include "dsp/types.hpp"
#include "uwb/channel.hpp"
#include "uwb/modulator.hpp"

#include <cmath>
#include <cstddef>
#include <vector>

namespace datc::uwb {

ChannelConfig noiseless_channel() {
  ChannelConfig ch;
  ch.distance_m = 0.3;
  ch.ref_loss_db = 30.0;
  ch.erasure_prob = 0.0;
  ch.jitter_rms_s = 0.0;
  return ch;
}

Real channel_gain(const ChannelConfig& config) {
  dsp::require(config.distance_m > 0.0 && config.ref_distance_m > 0.0,
               "channel_gain: distances must be positive");
  const Real pl_db =
      config.ref_loss_db +
      10.0 * config.path_loss_exponent *
          std::log10(std::max(config.distance_m / config.ref_distance_m,
                              Real{1.0}));
  return std::pow(10.0, -pl_db / 20.0);
}

Real noise_rms_v(const ChannelConfig& config, Real bw_hz) {
  dsp::require(bw_hz > 0.0, "noise_rms_v: bandwidth must be positive");
  const Real psd_dbm = config.noise_psd_dbm_hz + config.rx_noise_figure_db;
  const Real noise_w = std::pow(10.0, psd_dbm / 10.0) * 1e-3 * bw_hz;
  return std::sqrt(noise_w * 50.0);  // V RMS across 50 ohm
}

ChannelResult propagate(const PulseTrain& tx, const ChannelConfig& config,
                        dsp::Rng& rng) {
  dsp::require(config.erasure_prob >= 0.0 && config.erasure_prob <= 1.0,
               "propagate: erasure probability outside [0,1]");
  ChannelResult out;
  out.received.reserve(tx.size());
  const Real gain = channel_gain(config);
  if (config.erasure_prob <= 0.0) {
    // Erasure-free channel: the jitter draws are the only Rng consumption,
    // so they batch into one fill_gaussian (identical draw sequence to the
    // per-pulse split below and to StreamingChannel's chunked fills — the
    // batch/streaming parity tests hold on this stream by construction).
    std::vector<Real> jitter;
    if (config.jitter_rms_s > 0.0 && tx.size() > 0) {
      jitter.resize(tx.size());
      rng.fill_gaussian(jitter);
    }
    for (std::size_t i = 0; i < tx.size(); ++i) {
      PulseEmission rx = tx.pulses()[i];
      rx.amplitude_v = rx.amplitude_v * gain;
      if (config.jitter_rms_s > 0.0) {
        rx.time_s += config.jitter_rms_s * jitter[i];
      }
      out.received.add(rx);
    }
  } else {
    for (const auto& p : tx.pulses()) {
      if (rng.chance(config.erasure_prob)) {
        ++out.erased;
        continue;
      }
      PulseEmission rx = p;
      rx.amplitude_v = p.amplitude_v * gain;
      if (config.jitter_rms_s > 0.0) {
        // datc-lint: allow(hot-rng) — interleaved with erasure decisions;
        // see StreamingChannel::propagate_chunk.
        rx.time_s += config.jitter_rms_s * rng.gaussian_bm();
      }
      out.received.add(rx);
    }
  }
  out.received.sort_by_time();
  return out;
}

}  // namespace datc::uwb
