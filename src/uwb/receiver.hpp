#pragma once
// Non-coherent energy-detection receiver (the low-complexity RX class of
// refs [7],[11]). Detection statistics follow the standard energy-detector
// analysis: the test statistic is chi-square with 2BT degrees of freedom
// under noise, noncentral under pulse-plus-noise; both are treated with
// the usual Gaussian approximation. Packet recovery then re-assembles
// D-ATC events from marker + OOK bit slots, with honest failure modes
// (missed markers, bit errors, stray detections promoted to markers).
//
// The decode machinery itself lives in StreamingUwbReceiver
// (uwb/streaming_link.hpp), which keeps open-packet state across chunked
// calls; UwbReceiver is the whole-train wrapper over that core, so the
// batch and streaming paths cannot drift.

#include <cstdint>
#include <memory>

#include "core/events.hpp"
#include "dsp/rng.hpp"
#include "uwb/channel.hpp"
#include "uwb/modulator.hpp"

namespace datc::uwb {

struct EnergyDetectorConfig {
  Real integration_window_s{4e-9};
  Real bandwidth_hz{2e9};
  Real false_alarm_prob{1e-6};  ///< per bit-slot decision
};

/// Pd for a single pulse of energy `pulse_energy_v2s` (V^2 s across 50 ohm)
/// against the configured noise floor.
[[nodiscard]] Real detection_probability(const EnergyDetectorConfig& det,
                                         const ChannelConfig& ch,
                                         Real pulse_energy_v2s);

/// Energy-independent part of the detection statistic, hoisted so the
/// per-pulse hot path skips the iterative Q-inverse threshold solve (the
/// dominant cost of detection_probability). pd() evaluates the identical
/// expression sequence as detection_probability for the same det/ch, so
/// results are bit-identical; detection_probability itself delegates here.
class DetectionModel {
 public:
  DetectionModel(const EnergyDetectorConfig& det, const ChannelConfig& ch);

  /// Pd for one pulse of energy `pulse_energy_v2s` (V^2 s across 50 ohm).
  [[nodiscard]] Real pd(Real pulse_energy_v2s) const;

 private:
  Real n0_;     ///< one-sided noise PSD (W/Hz) incl. the RX noise figure
  Real m_;      ///< chi-square degrees of freedom, 2BT
  Real gamma_;  ///< CFAR threshold for the configured false-alarm rate
};

/// Upper-tail Gaussian probability Q(x) and its inverse (for thresholds).
[[nodiscard]] Real normal_q(Real x);
[[nodiscard]] Real normal_q_inv(Real p);

struct DecodeStats {
  std::size_t pulses_in{0};
  std::size_t pulses_detected{0};
  std::size_t packets_decoded{0};
  std::size_t code_bit_ones_missed{0};  ///< transmitted 1-bits not detected
  std::size_t false_alarm_bits{0};      ///< 0-slots read as 1
};

/// Field-wise difference `after - before`: the per-call view of a
/// cumulative counter snapshot.
[[nodiscard]] inline DecodeStats decode_stats_delta(const DecodeStats& after,
                                                    const DecodeStats& before) {
  return DecodeStats{after.pulses_in - before.pulses_in,
                     after.pulses_detected - before.pulses_detected,
                     after.packets_decoded - before.packets_decoded,
                     after.code_bit_ones_missed - before.code_bit_ones_missed,
                     after.false_alarm_bits - before.false_alarm_bits};
}

struct UwbReceiverConfig {
  EnergyDetectorConfig detector{};
  ModulatorConfig modulator{};  ///< packet layout (must match the TX)
  /// Width of the AER address field between the marker and the code bits
  /// (0 = single-channel D-ATC frames). Must match the TX framing
  /// (modulate_aer); decoded addresses land in core::Event::channel.
  unsigned address_bits{0};
  Real slot_tolerance{0.25};    ///< bit-slot timing tolerance, fraction of Ts
  bool decode_codes{true};      ///< false for plain ATC (marker-only) links
  /// Memoise detection_probability per distinct pulse energy. The detection
  /// statistic depends only on the received energy, and every pulse of a
  /// packet train shares one amplitude, so caching skips the iterative
  /// Q-inverse per pulse (~25x cheaper stage 1) while drawing the exact
  /// same Rng sequence — decoded streams are bit-identical either way
  /// (asserted in tests). Off by default: the uncached path is the
  /// reference the paper-reproduction benches time.
  bool cache_detection{false};
};

class StreamingUwbReceiver;

class UwbReceiver {
 public:
  UwbReceiver(const UwbReceiverConfig& config, const ChannelConfig& channel,
              dsp::Rng rng);
  ~UwbReceiver();
  UwbReceiver(UwbReceiver&&) noexcept;
  UwbReceiver& operator=(UwbReceiver&&) noexcept;

  /// Detects pulses and reassembles events from one complete train. For
  /// code-carrying links a detected pulse not claimed by an open packet
  /// starts a new packet. Repeated calls decode independent trains with a
  /// continuing Rng; stats() reports the last call, cumulative_stats()
  /// the running totals across every call.
  [[nodiscard]] core::EventStream decode(const PulseTrain& rx);

  /// Statistics of the most recent decode() call.
  [[nodiscard]] const DecodeStats& stats() const { return last_; }
  /// Running totals across every decode() call since construction.
  [[nodiscard]] const DecodeStats& cumulative_stats() const;

 private:
  std::unique_ptr<StreamingUwbReceiver> core_;
  DecodeStats last_;
};

}  // namespace datc::uwb
