#include "uwb/link_pipeline.hpp"

#include "dsp/rng.hpp"
#include "uwb/aer.hpp"
#include "uwb/channel.hpp"
#include "uwb/modulator.hpp"
#include "uwb/receiver.hpp"

namespace datc::uwb {

DatcLinkRun run_datc_over_link(const core::EventStream& tx,
                               const LinkConfig& link, unsigned code_bits,
                               bool cache_detection) {
  DatcLinkRun out;
  ModulatorConfig mod = link.modulator;
  mod.code_bits = code_bits;
  const auto train = modulate_datc(tx, mod);
  out.pulses_tx = train.size();

  // Both Rng streams derive from the seed BEFORE any propagation draw:
  // the receiver's stream must not depend on the pulse count consumed by
  // the channel, or no chunked execution could ever reproduce this run
  // (the streaming session derives the same two streams up front).
  dsp::Rng rng(link.seed);
  dsp::Rng rx_rng = rng.fork();
  const auto ch = propagate(train, link.channel, rng);
  out.pulses_erased = ch.erased;

  UwbReceiverConfig rxc;
  rxc.detector = link.detector;
  rxc.modulator = mod;
  rxc.decode_codes = true;
  rxc.cache_detection = cache_detection;
  UwbReceiver rx(rxc, link.channel, rx_rng);
  out.events_rx = rx.decode(ch.received);
  out.events_rx.sort_by_time();
  out.decode = rx.stats();
  return out;
}

SharedAerRun run_aer_over_link(
    const std::vector<core::EventStream>& tx_channels, const LinkConfig& link,
    const SharedAerConfig& shared, unsigned code_bits) {
  // An empty batch is a no-op, as in the per-channel mode (aer_split
  // would otherwise reject num_channels == 0 deep inside the pipeline).
  if (tx_channels.empty()) return SharedAerRun{};
  const auto num_channels = static_cast<unsigned>(tx_channels.size());
  AerStats arbiter;
  const auto merged = aer_merge(tx_channels, shared.aer, &arbiter);
  auto out = run_aer_over_link(merged, num_channels, link, shared, code_bits);
  out.arbiter = arbiter;
  return out;
}

SharedAerRun run_aer_over_link(const core::EventStream& merged_tx,
                               unsigned num_channels, const LinkConfig& link,
                               const SharedAerConfig& shared,
                               unsigned code_bits) {
  SharedAerRun out;
  out.merged_tx = merged_tx;

  if (shared.ideal_radio) {
    out.merged_rx = out.merged_tx;
  } else {
    ModulatorConfig mod = link.modulator;
    mod.code_bits = code_bits;
    const auto train =
        modulate_aer(out.merged_tx, mod, shared.aer.address_bits);
    out.pulses_tx = train.size();

    // RX stream forked before propagation — see run_datc_over_link.
    dsp::Rng rng(link.seed);
    dsp::Rng rx_rng = rng.fork();
    const auto ch = propagate(train, link.channel, rng);
    out.pulses_erased = ch.erased;

    UwbReceiverConfig rxc;
    rxc.detector = link.detector;
    rxc.modulator = mod;
    rxc.address_bits = shared.aer.address_bits;
    rxc.decode_codes = true;
    rxc.cache_detection = shared.cache_detection;
    UwbReceiver rx(rxc, link.channel, rx_rng);
    out.merged_rx = rx.decode(ch.received);
    out.merged_rx.sort_by_time();
    out.decode = rx.stats();
  }

  out.per_channel_rx = aer_split(out.merged_rx, num_channels, &out.demux);
  return out;
}

}  // namespace datc::uwb
