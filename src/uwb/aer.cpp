#include "dsp/types.hpp"
#include "uwb/aer.hpp"

#include <algorithm>

namespace datc::uwb {

core::EventStream aer_merge(const std::vector<core::EventStream>& channels,
                            const AerConfig& config, AerStats* stats) {
  // core::Event::channel is 16 bits wide; a larger address space would
  // truncate addresses on tagging and alias high channels onto low ones.
  dsp::require(config.address_bits <= 16,
               "aer_merge: address space wider than Event::channel");
  dsp::require(channels.size() <= (std::size_t{1} << config.address_bits),
               "aer_merge: more channels than the address space");
  dsp::require(config.min_spacing_s >= 0.0 && config.max_queue_delay_s >= 0.0,
               "aer_merge: timing parameters must be non-negative");

  // Gather and time-sort all events with their channel addresses.
  std::vector<core::Event> all;
  for (std::size_t c = 0; c < channels.size(); ++c) {
    for (const auto& e : channels[c].events()) {
      core::Event tagged = e;
      tagged.channel = static_cast<std::uint16_t>(c);
      all.push_back(tagged);
    }
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const core::Event& a, const core::Event& b) {
                     return a.time_s < b.time_s;
                   });

  AerStats local;
  local.in_events = all.size();
  core::EventStream out;
  Real next_free = -1.0;
  for (const auto& e : all) {
    const Real send_at = std::max(e.time_s, next_free);
    const Real delay = send_at - e.time_s;
    if (delay > config.max_queue_delay_s) {
      ++local.dropped;
      continue;
    }
    out.add(send_at, e.vth_code, e.channel);
    next_free = send_at + config.min_spacing_s;
    ++local.sent;
    local.max_delay_s = std::max(local.max_delay_s, delay);
  }
  if (stats != nullptr) *stats = local;
  return out;
}

std::vector<core::EventStream> aer_split(const core::EventStream& merged,
                                         unsigned num_channels,
                                         AerStats* stats) {
  dsp::require(num_channels >= 1, "aer_split: need >= 1 channel");
  AerStats local;
  local.in_events = merged.size();
  std::vector<core::EventStream> out(num_channels);
  for (const auto& e : merged.events()) {
    if (e.channel < num_channels) {
      out[e.channel].add(e.time_s, e.vth_code, e.channel);
      ++local.sent;
    } else {
      ++local.invalid_address;
    }
  }
  if (stats != nullptr) *stats = local;
  return out;
}

std::size_t aer_symbols_per_event(const AerConfig& config,
                                  unsigned code_bits) {
  return 1 + config.address_bits + code_bits;
}

}  // namespace datc::uwb
