#include "uwb/streaming_link.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "dsp/types.hpp"
#include "simd/dispatch.hpp"
#include "uwb/channel.hpp"
#include "uwb/modulator.hpp"
#include "uwb/pulse.hpp"
#include "uwb/receiver.hpp"

namespace datc::uwb {

namespace {

constexpr Real kNegInf = -std::numeric_limits<Real>::infinity();

/// Gaussian jitter is unbounded; 12 sigma bounds it for every practical
/// purpose (excursion probability ~1e-33 per pulse), and exactly for
/// jitter-free channels. See the StreamingChannel class comment.
constexpr Real kJitterSigmas = 12.0;

}  // namespace

// ------------------------------------------------------------- modulator

StreamingModulator::StreamingModulator(const ModulatorConfig& config,
                                       unsigned address_bits)
    : config_(config), address_bits_(address_bits) {
  dsp::require(config_.symbol_period_s > 0.0,
               "StreamingModulator: symbol period must be positive");
  dsp::require(config_.code_bits >= 1 && config_.code_bits <= 8,
               "StreamingModulator: code bits must lie in [1,8]");
  dsp::require(address_bits_ <= 16,
               "StreamingModulator: address bits must lie in [0,16]");
}

void StreamingModulator::modulate_chunk(std::span<const core::Event> events,
                                        PulseTrain& train) {
  const std::size_t before = train.size();
  for (const auto& e : events) {
    detail::emit_frame(train, config_, address_bits_, e, next_id_);
    ++next_id_;
  }
  pulses_ += train.size() - before;
}

// --------------------------------------------------------------- channel

StreamingChannel::StreamingChannel(const ChannelConfig& config, dsp::Rng rng)
    : config_(config),
      rng_(rng),
      gain_(channel_gain(config)),
      jitter_slack_(config.jitter_rms_s * kJitterSigmas),
      release_watermark_(kNegInf) {
  dsp::require(config_.erasure_prob >= 0.0 && config_.erasure_prob <= 1.0,
               "StreamingChannel: erasure probability outside [0,1]");
}

void StreamingChannel::propagate_chunk(const PulseTrain& tx, Real tx_watermark,
                                       PulseTrain& out) {
  // Per-pulse draws in TX (packet) order — the exact sequence the batch
  // propagate() consumes.
  const std::size_t n = tx.size();
  if (config_.erasure_prob <= 0.0) {
    // No erasure decisions interleave with the jitter stream, so the whole
    // chunk's Gaussians batch into one fill (Rng::fill_gaussian draws the
    // identical sequence as per-pulse gaussian_bm() calls — the default
    // jittered channel never touches the scalar polar tail).
    pulses_in_ += n;
    if (config_.jitter_rms_s > 0.0 && n > 0) {
      jitter_scratch_.resize(n);
      rng_.fill_gaussian(jitter_scratch_);
    }
    buffer_.reserve(buffer_.size() + n);
    for (std::size_t i = 0; i < n; ++i) {
      const auto& p = tx.pulses()[i];
      PulseEmission rx = p;
      rx.amplitude_v = p.amplitude_v * gain_;
      if (config_.jitter_rms_s > 0.0) {
        rx.time_s += config_.jitter_rms_s * jitter_scratch_[i];
      }
      buffer_.push_back(Held{rx, next_seq_++});
    }
  } else {
    for (const auto& p : tx.pulses()) {
      ++pulses_in_;
      const std::uint64_t seq = next_seq_++;
      if (rng_.chance(config_.erasure_prob)) {
        ++erased_;
        continue;
      }
      PulseEmission rx = p;
      rx.amplitude_v = p.amplitude_v * gain_;
      if (config_.jitter_rms_s > 0.0) {
        // datc-lint: allow(hot-rng) — erasure decisions interleave with the
        // jitter stream, so the draws cannot batch without reordering them.
        rx.time_s += config_.jitter_rms_s * rng_.gaussian_bm();
      }
      buffer_.push_back(Held{rx, seq});
    }
  }
  release_below(tx_watermark - jitter_slack_, out);
}

void StreamingChannel::flush(PulseTrain& out) {
  release_below(std::numeric_limits<Real>::infinity(), out);
}

void StreamingChannel::release_below(Real threshold, PulseTrain& out) {
  if (threshold <= release_watermark_) return;  // watermark is monotone
  release_watermark_ = threshold;
  // (time, seq) ordering == the batch stable sort by time over TX order.
  // Keys are unique (seq is), so the sorted order is a unique permutation
  // and skipping an already-sorted buffer is exact — the common case,
  // since jitter is far below the pulse spacing.
  const auto by_time_seq = [](const Held& a, const Held& b) {
    return a.pulse.time_s != b.pulse.time_s ? a.pulse.time_s < b.pulse.time_s
                                            : a.seq < b.seq;
  };
  if (!std::is_sorted(buffer_.begin(), buffer_.end(), by_time_seq)) {
    std::sort(buffer_.begin(), buffer_.end(), by_time_seq);
  }
  std::size_t n = 0;
  while (n < buffer_.size() && buffer_[n].pulse.time_s < threshold) {
    out.add(buffer_[n].pulse);
    ++n;
  }
  buffer_.erase(buffer_.begin(), buffer_.begin() + static_cast<long>(n));
}

// -------------------------------------------------------------- receiver

StreamingUwbReceiver::StreamingUwbReceiver(const UwbReceiverConfig& config,
                                           const ChannelConfig& channel,
                                           dsp::Rng rng)
    : config_(config),
      channel_(channel),
      // Two independent streams forked from the seed engine: detection
      // draws in pulse order, false-alarm draws in frame order. Each
      // stream's order is chunk-invariant, which is what makes decode
      // results independent of chunk boundaries.
      rng_detect_(rng.fork()),
      rng_frame_(rng.fork()),
      model_(config.detector, channel),
      watermark_(kNegInf) {
  dsp::require(config_.address_bits + config_.modulator.code_bits <= 24,
               "StreamingUwbReceiver: frame exceeds 24 bit slots");
  PulseShapeConfig unit = config_.modulator.shape;
  unit.amplitude_v = 1.0;
  // Sample the unit pulse finely enough for an accurate energy integral.
  const Real fs = 64.0 / unit.tau_s;
  unit_pulse_energy_ = pulse_energy(unit, fs);
}

void StreamingUwbReceiver::decode_chunk(const PulseTrain& rx, Real watermark,
                                        core::EventStream& out) {
  // Stage 1: per-pulse detection, in arrival (global time) order. The
  // energy map is a pure per-pulse function, so it runs as a batched SoA
  // pass (square_scale keeps the scalar expression order: (c*a)*a); only
  // the pd lookup and the sequential Rng decision stay in the loop.
  const std::size_t n = rx.size();
  stats_.pulses_in += n;
  scratch_amp_.resize(n);
  scratch_energy_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    scratch_amp_[i] = rx.pulses()[i].amplitude_v;
  }
  simd::kernels().square_scale(scratch_energy_.data(), scratch_amp_.data(),
                               unit_pulse_energy_, n);
  for (std::size_t i = 0; i < n; ++i) {
    const Real energy = scratch_energy_[i];
    Real pd;
    if (config_.cache_detection) {
      if (energy != cached_energy_) {
        cached_energy_ = energy;
        cached_pd_ = model_.pd(energy);
      }
      pd = cached_pd_;
    } else {
      pd = model_.pd(energy);
    }
    if (!rng_detect_.chance(pd)) continue;
    ++stats_.pulses_detected;
    if (config_.decode_codes) {
      pending_.push_back(rx.pulses()[i]);
    } else {
      out.add(rx.pulses()[i].time_s, 0);
    }
  }
  watermark_ = std::max(watermark_, watermark);
  if (config_.decode_codes) close_frames(watermark_, out);
}

void StreamingUwbReceiver::flush(core::EventStream& out) {
  watermark_ = std::numeric_limits<Real>::infinity();
  close_frames(watermark_, out);
}

void StreamingUwbReceiver::reset_stream() {
  dsp::require(pend_head_ == pending_.size(),
               "StreamingUwbReceiver::reset_stream: open frames pending "
               "(flush first)");
  pending_.clear();
  pend_head_ = 0;
  watermark_ = kNegInf;
}

Real StreamingUwbReceiver::event_time_watermark() const {
  // The next decoded event is either the oldest pending (unclaimed) pulse
  // promoted to a marker, or a pulse not yet received.
  return pend_head_ == pending_.size()
             ? watermark_
             : std::min(pending_[pend_head_].time_s, watermark_);
}

void StreamingUwbReceiver::close_frames(Real closable_before,
                                        core::EventStream& out) {
  const Real ts = config_.modulator.symbol_period_s;
  const unsigned bits = config_.address_bits + config_.modulator.code_bits;
  const Real window =
      static_cast<Real>(bits) * ts + config_.slot_tolerance * ts;
  // A frame closes only when no future pulse can still land in its
  // window: markers open at the oldest unclaimed pulse, exactly as the
  // batch claimed[] scan resumes at the first unclaimed index.
  while (pend_head_ < pending_.size() &&
         pending_[pend_head_].time_s + window < closable_before) {
    close_front_frame(out);
  }
  // Reclaim the dead prefix once it dominates the buffer; amortised O(1)
  // per pulse versus the old erase-per-frame front compaction.
  if (pend_head_ > 1024 && pend_head_ > pending_.size() / 2) {
    pending_.erase(pending_.begin(), pending_.begin() +
                                         static_cast<std::ptrdiff_t>(pend_head_));
    pend_head_ = 0;
  }
}

void StreamingUwbReceiver::close_front_frame(core::EventStream& out) {
  const Real ts = config_.modulator.symbol_period_s;
  const unsigned addr_bits = config_.address_bits;
  const unsigned code_bits = config_.modulator.code_bits;
  const unsigned bits = addr_bits + code_bits;
  const Real tol = config_.slot_tolerance * ts;

  const std::size_t head = pend_head_;
  const Real t0 = pending_[head].time_s;  // this frame's marker
  std::uint32_t bit = 0;  // addr_bits + code_bits <= 24, one register
  // Scan the in-window prefix (pending_ is time-sorted); pulses matching
  // a bit slot are claimed, off-slot pulses stay for the next frame.
  std::size_t scan = head + 1;  // head is the marker
  std::size_t keep = head + 1;
  while (scan < pending_.size() &&
         pending_[scan].time_s <= t0 + static_cast<Real>(bits) * ts + tol) {
    const Real dt = pending_[scan].time_s - t0;
    const auto slot = static_cast<long>(std::llround(dt / ts));
    if (slot >= 1 && slot <= static_cast<long>(bits) &&
        std::abs(dt - static_cast<Real>(slot) * ts) <= tol) {
      bit |= 1u << static_cast<unsigned>(slot - 1);
    } else {
      pending_[keep++] = pending_[scan];
    }
    ++scan;
  }
  // Advance the head past the marker and the claimed pulses: the kept
  // unclaimed block [head+1, keep) slides right against the untouched
  // tail at `scan`, so the live window stays contiguous and time-sorted
  // without erasing from the front.
  const std::size_t kept = keep - head - 1;
  std::copy_backward(pending_.begin() + static_cast<std::ptrdiff_t>(head + 1),
                     pending_.begin() + static_cast<std::ptrdiff_t>(keep),
                     pending_.begin() + static_cast<std::ptrdiff_t>(scan));
  pend_head_ = scan - kept;

  // False alarms inside empty slots (frame-order Rng stream).
  for (unsigned b = 0; b < bits; ++b) {
    if ((bit & (1u << b)) == 0 &&
        rng_frame_.chance(config_.detector.false_alarm_prob)) {
      bit |= 1u << b;
      ++stats_.false_alarm_bits;
    }
  }
  const auto field = [&](unsigned first, unsigned width) {
    std::uint32_t v = 0;
    for (unsigned b = 0; b < width; ++b) {
      const unsigned bit_index =
          config_.modulator.msb_first ? width - 1 - b : b;
      if ((bit & (1u << (first + b))) != 0) v |= (1u << bit_index);
    }
    return v;
  };
  const auto address = static_cast<std::uint16_t>(field(0, addr_bits));
  const auto code = static_cast<std::uint8_t>(field(addr_bits, code_bits));
  out.add(t0, code, address);
  ++stats_.packets_decoded;
}

}  // namespace datc::uwb
