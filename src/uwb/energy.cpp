#include "dsp/types.hpp"
#include "uwb/energy.hpp"

namespace datc::uwb {

TxEnergyReport event_tx_energy(std::size_t pulses, Real duration_s,
                               const TxEnergyConfig& cfg, bool with_dtc) {
  dsp::require(duration_s > 0.0, "event_tx_energy: duration must be > 0");
  TxEnergyReport r;
  r.radio_j = static_cast<Real>(pulses) * cfg.energy_per_pulse_j;
  r.logic_j = cfg.sleep_power_w * duration_s;
  if (with_dtc) r.logic_j += cfg.dtc_power_w * duration_s;
  r.total_j = r.radio_j + r.logic_j;
  return r;
}

TxEnergyReport packet_tx_energy(std::size_t total_bits, Real duration_s,
                                const TxEnergyConfig& cfg,
                                Real ones_fraction) {
  dsp::require(duration_s > 0.0, "packet_tx_energy: duration must be > 0");
  dsp::require(ones_fraction >= 0.0 && ones_fraction <= 1.0,
               "packet_tx_energy: ones fraction outside [0,1]");
  TxEnergyReport r;
  r.radio_j = static_cast<Real>(total_bits) * ones_fraction *
              cfg.energy_per_pulse_j;
  r.logic_j = (cfg.sleep_power_w + cfg.adc_power_w) * duration_s;
  r.total_j = r.radio_j + r.logic_j;
  return r;
}

}  // namespace datc::uwb
