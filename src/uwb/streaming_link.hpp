#pragma once
// Streaming (chunked, bounded-memory) counterparts of the batch UWB link
// stages: event -> pulse modulation, channel propagation and packet
// decode. Every stage carries its state (packet ids, Rng streams, reorder
// and reassembly buffers) across calls and is bit-identical to its batch
// counterpart for ANY chunking of the same input — the property the
// streaming session layer (runtime/session.hpp) is built on.
//
// The bit-identicality hinges on two disciplines:
//
//  1. Watermarks. Each stage receives, along with its input chunk, a time
//     `watermark` promising that no future input item carries a timestamp
//     below it. Outputs are released only once they are provably final
//     (no future item can sort before them / land in their packet
//     window), so chunk boundaries can never change what is emitted.
//
//  2. Split Rng streams. The batch receiver used to draw all per-pulse
//     detection randoms, then all per-frame false-alarm randoms, from one
//     engine — an order no chunked execution can reproduce. The receiver
//     now derives two independent streams from its seed Rng (detection in
//     pulse order, false alarms in frame order); each stream's draw order
//     is chunk-invariant, so batch and streaming consume identical
//     sequences. UwbReceiver (uwb/receiver.hpp) is a thin batch wrapper
//     over this core, making the equivalence hold by construction.

#include <cstdint>
#include <span>
#include <vector>

#include "core/events.hpp"
#include "dsp/rng.hpp"
#include "uwb/channel.hpp"
#include "uwb/modulator.hpp"
#include "uwb/receiver.hpp"

namespace datc::uwb {

/// Chunked event -> pulse modulation (D-ATC packets, optionally with an
/// AER address field). Stateless except for the diagnostic packet-id
/// counter; concatenating the chunk outputs reproduces modulate_datc /
/// modulate_aer on the concatenated events exactly.
class StreamingModulator {
 public:
  explicit StreamingModulator(const ModulatorConfig& config,
                              unsigned address_bits = 0);

  /// Appends this chunk's pulses to `train` (not cleared). Events must be
  /// the next contiguous slice of the stream, in time order.
  void modulate_chunk(std::span<const core::Event> events, PulseTrain& train);

  [[nodiscard]] std::size_t pulses_emitted() const { return pulses_; }
  [[nodiscard]] std::uint32_t packets_emitted() const { return next_id_; }
  [[nodiscard]] const ModulatorConfig& config() const { return config_; }
  [[nodiscard]] unsigned address_bits() const { return address_bits_; }

 private:
  ModulatorConfig config_;
  unsigned address_bits_{0};
  std::uint32_t next_id_{0};
  std::size_t pulses_{0};
};

/// Chunked channel propagation with carried Rng and a reorder buffer.
///
/// The batch `propagate` draws per-pulse randoms in TX (packet) order and
/// then stable-sorts the received train by time. This class draws in the
/// same order and releases received pulses in exactly that stable-sorted
/// order, holding back any pulse a future TX pulse could still sort
/// before. Jitter is Gaussian (unbounded), so the hold-back slack is a
/// 12-sigma bound: a larger excursion would break batch parity with
/// probability ~1e-33 per pulse — far below anything a test or a seed
/// sweep can encounter, and exactly zero for jitter-free channels.
class StreamingChannel {
 public:
  StreamingChannel(const ChannelConfig& config, dsp::Rng rng);

  /// Propagates the chunk's TX pulses (in packet order, exactly as the
  /// batch train is laid out) and advances the TX-time watermark: the
  /// caller promises every future TX pulse has time_s >= tx_watermark.
  /// Received pulses that are provably final are appended to `out`.
  void propagate_chunk(const PulseTrain& tx, Real tx_watermark,
                       PulseTrain& out);

  /// Releases everything still buffered (end of stream).
  void flush(PulseTrain& out);

  /// Every future released pulse has time_s >= this bound.
  [[nodiscard]] Real release_watermark() const { return release_watermark_; }
  [[nodiscard]] std::size_t erased() const { return erased_; }
  [[nodiscard]] std::size_t pulses_in() const { return pulses_in_; }
  [[nodiscard]] std::size_t buffered() const { return buffer_.size(); }

 private:
  struct Held {
    PulseEmission pulse;
    std::uint64_t seq;  ///< TX order, the stable-sort tie break
  };

  ChannelConfig config_;
  dsp::Rng rng_;
  Real gain_;
  Real jitter_slack_;
  std::vector<Held> buffer_;
  std::vector<Real> jitter_scratch_;  ///< batched jitter draws, reused
  std::uint64_t next_seq_{0};
  std::size_t erased_{0};
  std::size_t pulses_in_{0};
  Real release_watermark_{0.0};

  void release_below(Real threshold, PulseTrain& out);
};

/// Incremental energy-detection receiver: keeps open-packet reassembly
/// state across decode_chunk() calls, so frames spanning a chunk boundary
/// are reassembled exactly as if the whole train had been decoded at
/// once. Statistics accumulate across calls (see DecodeStats).
class StreamingUwbReceiver {
 public:
  StreamingUwbReceiver(const UwbReceiverConfig& config,
                       const ChannelConfig& channel, dsp::Rng rng);

  /// Decodes the next chunk of received pulses. Pulses must arrive
  /// globally time-sorted across calls (StreamingChannel's output order);
  /// `watermark` promises no future pulse has time_s < watermark.
  /// Completed events are appended to `out` in marker-time order.
  void decode_chunk(const PulseTrain& rx, Real watermark,
                    core::EventStream& out);

  /// Closes every open frame (end of stream) and appends its events.
  void flush(core::EventStream& out);

  /// Cumulative statistics over every chunk decoded so far.
  [[nodiscard]] const DecodeStats& stats() const { return stats_; }

  /// Every future decoded event has time_s >= this bound.
  [[nodiscard]] Real event_time_watermark() const;

  /// Detected pulses awaiting frame closure.
  [[nodiscard]] std::size_t pending() const {
    return pending_.size() - pend_head_;
  }

  /// Forgets stream position (watermark, open frames) for a new
  /// independent train; Rng streams and cumulative stats carry on. The
  /// batch UwbReceiver calls this between decode() calls.
  void reset_stream();

 private:
  UwbReceiverConfig config_;
  ChannelConfig channel_;
  dsp::Rng rng_detect_;  ///< per-pulse detection draws, pulse order
  dsp::Rng rng_frame_;   ///< per-frame false-alarm draws, frame order
  DetectionModel model_;  ///< threshold solve hoisted out of the pulse loop
  DecodeStats stats_;
  Real unit_pulse_energy_;  ///< energy of the shape at 1 V peak
  Real cached_energy_{-1.0};
  Real cached_pd_{0.0};
  /// Detected, unclaimed pulses in time order. The live window is
  /// [pend_head_, size): frame closure advances the head instead of
  /// erasing from the front, and the dead prefix is reclaimed lazily.
  std::vector<PulseEmission> pending_;
  std::size_t pend_head_{0};
  std::vector<Real> scratch_amp_;     ///< SoA chunk amplitudes, reused
  std::vector<Real> scratch_energy_;  ///< SoA chunk energies, reused
  Real watermark_{0.0};
  bool saw_pulse_{false};

  void close_frames(Real closable_before, core::EventStream& out);
  void close_front_frame(core::EventStream& out);
};

}  // namespace datc::uwb
