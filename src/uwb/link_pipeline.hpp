#pragma once
// The shared TX -> RX link stage: modulate an event stream, propagate it
// through the channel, decode with the energy-detection receiver. Both
// the reference pipeline (sim::EndToEnd) and the streaming engine
// (runtime::PipelineRunner / SessionManager) run their radio through
// these functions, so the two paths cannot drift.

#include <cstdint>
#include <vector>

#include "uwb/aer.hpp"
#include "uwb/channel.hpp"
#include "uwb/modulator.hpp"
#include "uwb/receiver.hpp"

namespace datc::uwb {

struct LinkConfig {
  ModulatorConfig modulator{};
  ChannelConfig channel{};
  EnergyDetectorConfig detector{};
  std::uint64_t seed{7};
};

/// One TX -> RX pass over the UWB link: modulate the D-ATC packet stream,
/// propagate, decode with an energy-detection receiver, sort by time.
struct DatcLinkRun {
  std::size_t pulses_tx{0};
  std::size_t pulses_erased{0};
  core::EventStream events_rx;
  DecodeStats decode{};
};

/// `cache_detection` memoises the per-pulse detection probability
/// (bit-identical output; the engine enables it, the reference path
/// keeps the seed cost model).
[[nodiscard]] DatcLinkRun run_datc_over_link(const core::EventStream& tx,
                                             const LinkConfig& link,
                                             unsigned code_bits,
                                             bool cache_detection = false);

/// Shared-medium AER link: N encoders contend for ONE radio.
struct SharedAerConfig {
  AerConfig aer{};            ///< arbiter parameters (address width, slot)
  /// Arbitration only — bypass modulate/propagate/decode. This is the
  /// ideal-radio reference the noiseless equality tests compare against.
  bool ideal_radio{false};
  bool cache_detection{true};
};

/// One pass of the arbitrated link:
/// per-channel TX streams -> AER merge -> modulate (marker + address +
/// code slots) -> channel -> address-aware decode -> demux per channel.
struct SharedAerRun {
  core::EventStream merged_tx;  ///< arbitrated stream offered to the radio
  core::EventStream merged_rx;  ///< decoded stream (== merged_tx when ideal)
  std::vector<core::EventStream> per_channel_rx;
  AerStats arbiter{};           ///< merge-side arbitration stats
  AerStats demux{};             ///< split-side stats (invalid addresses)
  std::size_t pulses_tx{0};
  std::size_t pulses_erased{0};
  DecodeStats decode{};
};

[[nodiscard]] SharedAerRun run_aer_over_link(
    const std::vector<core::EventStream>& tx_channels, const LinkConfig& link,
    const SharedAerConfig& shared, unsigned code_bits);

/// Radio-only variant for an already-arbitrated stream: modulate ->
/// channel -> decode -> demux, leaving `arbiter` stats zeroed (the caller
/// owns the merge). Sweeps whose grid axes touch only the radio hoist the
/// merge out of the loop with this overload.
[[nodiscard]] SharedAerRun run_aer_over_link(const core::EventStream& merged_tx,
                                             unsigned num_channels,
                                             const LinkConfig& link,
                                             const SharedAerConfig& shared,
                                             unsigned code_bits);

}  // namespace datc::uwb
