#pragma once
// Transmitter energy model — the paper's motivation made quantitative.
// "ATC joined to asynchronous IR-UWB permits power consumption decrease
// at the TX, since the transmission of an event occurs at a non-fixed
// pulse rate and it is data dependent": the radio's energy is per pulse
// (all-digital IR-UWB TXs of the ref-[11] class burn only when firing),
// the DTC adds its Table-I dynamic power, and the packet-based baseline
// additionally pays for a continuously running ADC.

#include <cstddef>

#include "dsp/types.hpp"

namespace datc::uwb {

using dsp::Real;

struct TxEnergyConfig {
  Real energy_per_pulse_j{50e-12};  ///< ~50 pJ/pulse (0.18 um all-digital TX)
  Real sleep_power_w{5e-9};         ///< leakage while idle
  Real dtc_power_w{70e-9};          ///< D-ATC control logic (Table I)
  Real adc_power_w{20e-6};          ///< 12-bit 2.5 kS/s ADC + packetiser
};

struct TxEnergyReport {
  Real radio_j{0.0};
  Real logic_j{0.0};
  Real total_j{0.0};
  [[nodiscard]] Real average_power_w(Real duration_s) const {
    return duration_s > 0.0 ? total_j / duration_s : 0.0;
  }
};

/// Event-driven schemes: `pulses` on-air pulses over `duration_s`.
/// `with_dtc` adds the DTC's dynamic power (D-ATC) on top of sleep.
[[nodiscard]] TxEnergyReport event_tx_energy(std::size_t pulses,
                                             Real duration_s,
                                             const TxEnergyConfig& cfg,
                                             bool with_dtc);

/// Packet-based baseline: OOK sends a pulse per 1-bit (~half the bits);
/// the ADC and framer run continuously.
[[nodiscard]] TxEnergyReport packet_tx_energy(std::size_t total_bits,
                                              Real duration_s,
                                              const TxEnergyConfig& cfg,
                                              Real ones_fraction = 0.5);

}  // namespace datc::uwb
