#pragma once
// Short-distance indoor UWB channel acting on the symbolic pulse train:
// log-distance path loss, per-pulse erasure (deep fades / blockage — the
// paper's "pulse missing"), timing jitter, and the receiver noise floor
// used by the energy-detector model.

#include "dsp/rng.hpp"
#include "uwb/modulator.hpp"

namespace datc::uwb {

struct ChannelConfig {
  Real distance_m{1.0};
  Real ref_distance_m{0.1};
  Real path_loss_exponent{1.8};   ///< body-area LOS values ~1.5-2
  Real ref_loss_db{40.0};         ///< loss at the reference distance
  Real erasure_prob{0.0};         ///< i.i.d. pulse loss probability
  Real jitter_rms_s{50e-12};      ///< received-time jitter
  Real noise_psd_dbm_hz{-174.0};  ///< thermal floor at the RX input
  Real rx_noise_figure_db{6.0};
};

/// A noiseless short-range configuration: no erasures, no jitter, mild
/// path loss. With a strong pulse and a tiny false-alarm rate the radio
/// becomes exactly transparent — the baseline the shared-AER equality
/// tests and the link sweep's zero-distance sanity point use.
[[nodiscard]] ChannelConfig noiseless_channel();

/// Amplitude attenuation (linear, voltage) over the configured distance.
[[nodiscard]] Real channel_gain(const ChannelConfig& config);

/// Noise RMS (volts) in an energy-detection bandwidth `bw_hz` across 50 ohm.
[[nodiscard]] Real noise_rms_v(const ChannelConfig& config, Real bw_hz);

struct ChannelResult {
  PulseTrain received;
  std::size_t erased{0};
};

/// Propagates a pulse train through the channel.
[[nodiscard]] ChannelResult propagate(const PulseTrain& tx,
                                      const ChannelConfig& config,
                                      dsp::Rng& rng);

}  // namespace datc::uwb
