#pragma once
// Address-Event Representation framing (refs [9],[12]): multiple sEMG
// channels share one IR-UWB link by prepending an address to each event.
// A simple arbiter enforces a minimum packet spacing on air; colliding
// events are delayed (queued) or dropped beyond a configurable latency
// budget — the trade-off the multi-channel glove system of ref. [12]
// navigates.

#include <cstdint>
#include <vector>

#include "core/events.hpp"
#include "dsp/types.hpp"

namespace datc::uwb {

using dsp::Real;

struct AerConfig {
  unsigned address_bits{3};       ///< up to 8 electrodes, as in the dataset
  Real min_spacing_s{1e-3};       ///< one packet per UWB slot
  Real max_queue_delay_s{20e-3};  ///< events later than this are dropped
};

struct AerStats {
  std::size_t in_events{0};
  std::size_t sent{0};
  std::size_t dropped{0};
  Real max_delay_s{0.0};
  /// Demux-side: events whose decoded address lies outside [0,
  /// num_channels) — address-field bit errors on a noisy link. They are
  /// excluded from the per-channel outputs but no longer vanish silently.
  std::size_t invalid_address{0};
};

/// Merges per-channel event streams into one arbitrated AER stream.
/// Events keep their vth codes; `channel` fields carry the address.
/// Requires `address_bits <= 16` (the width of core::Event::channel) and
/// `channels.size() <= 2^address_bits` so no address can alias.
[[nodiscard]] core::EventStream aer_merge(
    const std::vector<core::EventStream>& channels, const AerConfig& config,
    AerStats* stats = nullptr);

/// Splits an AER stream back into per-channel streams (receiver side).
/// Events with an address >= num_channels are counted in
/// `stats->invalid_address` (when stats is given) instead of being
/// silently discarded.
[[nodiscard]] std::vector<core::EventStream> aer_split(
    const core::EventStream& merged, unsigned num_channels,
    AerStats* stats = nullptr);

/// Symbols per AER event: marker + address + code bits.
[[nodiscard]] std::size_t aer_symbols_per_event(const AerConfig& config,
                                                unsigned code_bits);

}  // namespace datc::uwb
