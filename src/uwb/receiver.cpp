#include "uwb/receiver.hpp"

#include <cmath>
#include <numbers>

#include "dsp/stats.hpp"

namespace datc::uwb {

Real normal_q(Real x) { return dsp::normal_q(x); }

Real normal_q_inv(Real p) { return dsp::normal_q_inv(p); }

Real detection_probability(const EnergyDetectorConfig& det,
                           const ChannelConfig& ch, Real pulse_energy_v2s) {
  dsp::require(pulse_energy_v2s >= 0.0,
               "detection_probability: energy must be non-negative");
  // Noise PSD (one-sided) in W/Hz including the RX noise figure.
  const Real n0 =
      std::pow(10.0, (ch.noise_psd_dbm_hz + ch.rx_noise_figure_db) / 10.0) *
      1e-3;
  const Real energy_j = pulse_energy_v2s / 50.0;  // across 50 ohm
  const Real m = 2.0 * det.bandwidth_hz * det.integration_window_s;  // dof
  const Real lambda = 2.0 * energy_j / n0;  // noncentrality
  const Real gamma =
      m + normal_q_inv(det.false_alarm_prob) * std::sqrt(2.0 * m);
  const Real mean1 = m + lambda;
  const Real sd1 = std::sqrt(2.0 * (m + 2.0 * lambda));
  return normal_q((gamma - mean1) / sd1);
}

UwbReceiver::UwbReceiver(const UwbReceiverConfig& config,
                         const ChannelConfig& channel, dsp::Rng rng)
    : config_(config), channel_(channel), rng_(rng) {
  PulseShapeConfig unit = config_.modulator.shape;
  unit.amplitude_v = 1.0;
  // Sample the unit pulse finely enough for an accurate energy integral.
  const Real fs = 64.0 / unit.tau_s;
  unit_pulse_energy_ = pulse_energy(unit, fs);
}

core::EventStream UwbReceiver::decode(const PulseTrain& rx) {
  stats_ = DecodeStats{};
  core::EventStream out;
  const auto& pulses = rx.pulses();
  stats_.pulses_in = pulses.size();

  // Stage 1: per-pulse detection.
  std::vector<PulseEmission> detected;
  detected.reserve(pulses.size());
  Real cached_energy = -1.0;
  Real cached_pd = 0.0;
  for (const auto& p : pulses) {
    const Real energy = unit_pulse_energy_ * p.amplitude_v * p.amplitude_v;
    Real pd;
    if (config_.cache_detection) {
      if (energy != cached_energy) {
        cached_energy = energy;
        cached_pd = detection_probability(config_.detector, channel_, energy);
      }
      pd = cached_pd;
    } else {
      pd = detection_probability(config_.detector, channel_, energy);
    }
    if (rng_.chance(pd)) detected.push_back(p);
  }
  stats_.pulses_detected = detected.size();

  out.reserve(detected.size());
  if (!config_.decode_codes) {
    for (const auto& p : detected) out.add(p.time_s, 0);
    return out;
  }

  // Stage 2: packet reassembly. Any detected pulse not claimed as a bit of
  // an open packet is treated as a marker starting a new packet. A frame
  // carries the AER address field (when configured) followed by the code
  // field; both are OOK slots on the same grid.
  const Real ts = config_.modulator.symbol_period_s;
  const unsigned addr_bits = config_.address_bits;
  const unsigned code_bits = config_.modulator.code_bits;
  const unsigned bits = addr_bits + code_bits;
  const Real tol = config_.slot_tolerance * ts;
  // A pulse inside a frame's window that misses every slot tolerance is
  // not part of that frame (e.g. the jittered marker of the next one):
  // it stays unclaimed and reassembly resumes there, instead of being
  // swallowed with the frame and losing everything it started. Claimed
  // pulses (markers and bit slots of decoded frames) are never re-used —
  // a resumed frame must not promote an earlier frame's data bit to a
  // marker.
  std::vector<bool> claimed(detected.size(), false);
  std::size_t i = 0;
  while (i < detected.size()) {
    if (claimed[i]) {
      ++i;
      continue;
    }
    const Real t0 = detected[i].time_s;
    claimed[i] = true;  // this frame's marker
    std::vector<bool> bit(bits, false);
    for (std::size_t j = i + 1;
         j < detected.size() &&
         detected[j].time_s <= t0 + static_cast<Real>(bits) * ts + tol;
         ++j) {
      if (claimed[j]) continue;
      const Real dt = detected[j].time_s - t0;
      const auto slot = static_cast<long>(std::llround(dt / ts));
      if (slot >= 1 && slot <= static_cast<long>(bits) &&
          std::abs(dt - static_cast<Real>(slot) * ts) <= tol) {
        bit[static_cast<std::size_t>(slot - 1)] = true;
        claimed[j] = true;
      }
    }
    // False alarms inside empty slots.
    for (unsigned b = 0; b < bits; ++b) {
      if (!bit[b] && rng_.chance(config_.detector.false_alarm_prob)) {
        bit[b] = true;
        ++stats_.false_alarm_bits;
      }
    }
    const auto field = [&](unsigned first, unsigned width) {
      std::uint32_t v = 0;
      for (unsigned b = 0; b < width; ++b) {
        const unsigned bit_index =
            config_.modulator.msb_first ? width - 1 - b : b;
        if (bit[first + b]) v |= (1u << bit_index);
      }
      return v;
    };
    const auto address = static_cast<std::uint16_t>(field(0, addr_bits));
    const auto code = static_cast<std::uint8_t>(field(addr_bits, code_bits));
    out.add(t0, code, address);
    ++stats_.packets_decoded;
    ++i;  // the claimed[] scan skips to the first unclaimed pulse
  }
  return out;
}

}  // namespace datc::uwb
