#include "uwb/receiver.hpp"

#include <cmath>
#include <limits>
#include <numbers>

#include "dsp/stats.hpp"
#include "dsp/types.hpp"
#include "uwb/channel.hpp"
#include "uwb/modulator.hpp"
#include "uwb/streaming_link.hpp"

namespace datc::uwb {

Real normal_q(Real x) { return dsp::normal_q(x); }

Real normal_q_inv(Real p) { return dsp::normal_q_inv(p); }

DetectionModel::DetectionModel(const EnergyDetectorConfig& det,
                               const ChannelConfig& ch)
    // Noise PSD (one-sided) in W/Hz including the RX noise figure.
    : n0_(std::pow(10.0,
                   (ch.noise_psd_dbm_hz + ch.rx_noise_figure_db) / 10.0) *
          1e-3),
      m_(2.0 * det.bandwidth_hz * det.integration_window_s),  // dof
      gamma_(m_ + normal_q_inv(det.false_alarm_prob) * std::sqrt(2.0 * m_)) {}

Real DetectionModel::pd(Real pulse_energy_v2s) const {
  dsp::require(pulse_energy_v2s >= 0.0,
               "DetectionModel::pd: energy must be non-negative");
  const Real energy_j = pulse_energy_v2s / 50.0;  // across 50 ohm
  const Real lambda = 2.0 * energy_j / n0_;       // noncentrality
  const Real mean1 = m_ + lambda;
  const Real sd1 = std::sqrt(2.0 * (m_ + 2.0 * lambda));
  return normal_q((gamma_ - mean1) / sd1);
}

Real detection_probability(const EnergyDetectorConfig& det,
                           const ChannelConfig& ch, Real pulse_energy_v2s) {
  return DetectionModel(det, ch).pd(pulse_energy_v2s);
}

UwbReceiver::UwbReceiver(const UwbReceiverConfig& config,
                         const ChannelConfig& channel, dsp::Rng rng)
    : core_(std::make_unique<StreamingUwbReceiver>(config, channel, rng)) {}

UwbReceiver::~UwbReceiver() = default;
UwbReceiver::UwbReceiver(UwbReceiver&&) noexcept = default;
UwbReceiver& UwbReceiver::operator=(UwbReceiver&&) noexcept = default;

core::EventStream UwbReceiver::decode(const PulseTrain& rx) {
  const DecodeStats before = core_->stats();
  core::EventStream out;
  out.reserve(rx.size());
  // The train is complete: an infinite watermark closes every frame.
  core_->decode_chunk(rx, std::numeric_limits<Real>::infinity(), out);
  core_->reset_stream();
  last_ = decode_stats_delta(core_->stats(), before);
  return out;
}

const DecodeStats& UwbReceiver::cumulative_stats() const {
  return core_->stats();
}

}  // namespace datc::uwb
