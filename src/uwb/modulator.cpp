#include "dsp/types.hpp"
#include "uwb/modulator.hpp"
#include "uwb/pulse.hpp"

#include <algorithm>
#include <cmath>

namespace datc::uwb {

void PulseTrain::sort_by_time() {
  const auto by_time = [](const PulseEmission& a, const PulseEmission& b) {
    return a.time_s < b.time_s;
  };
  // Stable sort of an already-sorted range is the identity, so the O(n)
  // check skips the common case exactly: channel jitter is orders of
  // magnitude below the pulse spacing and almost never reorders.
  if (std::is_sorted(pulses_.begin(), pulses_.end(), by_time)) return;
  std::stable_sort(pulses_.begin(), pulses_.end(), by_time);
}

dsp::TimeSeries PulseTrain::render(const PulseShapeConfig& shape, Real t0,
                                   Real t1, Real fs_hz,
                                   std::size_t max_samples) const {
  dsp::require(t1 > t0 && fs_hz > 0.0, "PulseTrain::render: bad window");
  const Real n_req = (t1 - t0) * fs_hz;
  dsp::require(n_req <= static_cast<Real>(max_samples),
               "PulseTrain::render: window too large to render");
  const auto n = static_cast<std::size_t>(std::llround(n_req));
  std::vector<Real> out(n, 0.0);
  const Real support = 6.0 * shape.tau_s;
  for (const auto& p : pulses_) {
    if (p.time_s + support < t0 || p.time_s - support > t1) continue;
    const auto i_lo = static_cast<std::ptrdiff_t>(
        std::floor((p.time_s - support - t0) * fs_hz));
    const auto i_hi = static_cast<std::ptrdiff_t>(
        std::ceil((p.time_s + support - t0) * fs_hz));
    for (std::ptrdiff_t i = std::max<std::ptrdiff_t>(i_lo, 0);
         i <= i_hi && i < static_cast<std::ptrdiff_t>(n); ++i) {
      const Real t = t0 + static_cast<Real>(i) / fs_hz;
      PulseShapeConfig unit = shape;
      unit.amplitude_v = 1.0;
      out[static_cast<std::size_t>(i)] +=
          p.amplitude_v * pulse_value(unit, t - p.time_s);
    }
  }
  return dsp::TimeSeries(std::move(out), fs_hz);
}

PulseTrain modulate_atc(const core::EventStream& events,
                        const ModulatorConfig& config) {
  PulseTrain train;
  train.reserve(events.size());
  std::uint32_t id = 0;
  for (const auto& e : events.events()) {
    train.add(PulseEmission{e.time_s, config.shape.amplitude_v, id++,
                            /*is_marker=*/true});
  }
  return train;
}

namespace {

/// Appends the OOK pulses of one `width`-bit field whose first slot is
/// `first_slot` (slot 0 is the marker).
void emit_field(PulseTrain& train, const ModulatorConfig& config, Real t0,
                std::uint32_t value, unsigned width, unsigned first_slot,
                std::uint32_t id) {
  for (unsigned b = 0; b < width; ++b) {
    const unsigned bit_index = config.msb_first ? width - 1 - b : b;
    if (((value >> bit_index) & 1u) == 0) continue;  // OOK: silence for 0
    const Real t =
        t0 + static_cast<Real>(first_slot + b) * config.symbol_period_s;
    train.add(PulseEmission{t, config.shape.amplitude_v, id,
                            /*is_marker=*/false});
  }
}

}  // namespace

namespace detail {

void emit_frame(PulseTrain& train, const ModulatorConfig& config,
                unsigned address_bits, const core::Event& event,
                std::uint32_t id) {
  // With no address field the frame is a plain D-ATC packet; the event's
  // channel tag is simply not transmitted (modulate_datc semantics).
  dsp::require(address_bits == 0 || address_bits == 16 ||
                   event.channel < (std::uint32_t{1} << address_bits),
               "modulate_aer: event address outside the address space");
  train.add(PulseEmission{event.time_s, config.shape.amplitude_v, id,
                          /*is_marker=*/true});
  emit_field(train, config, event.time_s, event.channel, address_bits,
             /*first_slot=*/1, id);
  emit_field(train, config, event.time_s, event.vth_code, config.code_bits,
             /*first_slot=*/1 + address_bits, id);
}

}  // namespace detail

PulseTrain modulate_datc(const core::EventStream& events,
                         const ModulatorConfig& config) {
  dsp::require(config.symbol_period_s > 0.0,
               "modulate_datc: symbol period must be positive");
  dsp::require(config.code_bits >= 1 && config.code_bits <= 8,
               "modulate_datc: code bits must lie in [1,8]");
  PulseTrain train;
  // Worst case one marker plus all code bits set per event.
  train.reserve(events.size() * (1 + config.code_bits));
  std::uint32_t id = 0;
  for (const auto& e : events.events()) {
    detail::emit_frame(train, config, /*address_bits=*/0, e, id);
    ++id;
  }
  return train;
}

PulseTrain modulate_aer(const core::EventStream& events,
                        const ModulatorConfig& config,
                        unsigned address_bits) {
  dsp::require(config.symbol_period_s > 0.0,
               "modulate_aer: symbol period must be positive");
  dsp::require(config.code_bits >= 1 && config.code_bits <= 8,
               "modulate_aer: code bits must lie in [1,8]");
  dsp::require(address_bits <= 16,
               "modulate_aer: address bits must lie in [0,16]");
  PulseTrain train;
  train.reserve(events.size() * (1 + address_bits + config.code_bits));
  std::uint32_t id = 0;
  for (const auto& e : events.events()) {
    detail::emit_frame(train, config, address_bits, e, id);
    ++id;
  }
  return train;
}

Real packet_duration_s(const ModulatorConfig& config) {
  return static_cast<Real>(config.code_bits + 1) * config.symbol_period_s;
}

Real aer_frame_duration_s(const ModulatorConfig& config,
                          unsigned address_bits) {
  return static_cast<Real>(1 + address_bits + config.code_bits) *
         config.symbol_period_s;
}

}  // namespace datc::uwb
