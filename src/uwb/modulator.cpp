#include "uwb/modulator.hpp"

#include <algorithm>
#include <cmath>

namespace datc::uwb {

void PulseTrain::sort_by_time() {
  std::stable_sort(pulses_.begin(), pulses_.end(),
                   [](const PulseEmission& a, const PulseEmission& b) {
                     return a.time_s < b.time_s;
                   });
}

dsp::TimeSeries PulseTrain::render(const PulseShapeConfig& shape, Real t0,
                                   Real t1, Real fs_hz,
                                   std::size_t max_samples) const {
  dsp::require(t1 > t0 && fs_hz > 0.0, "PulseTrain::render: bad window");
  const Real n_req = (t1 - t0) * fs_hz;
  dsp::require(n_req <= static_cast<Real>(max_samples),
               "PulseTrain::render: window too large to render");
  const auto n = static_cast<std::size_t>(std::llround(n_req));
  std::vector<Real> out(n, 0.0);
  const Real support = 6.0 * shape.tau_s;
  for (const auto& p : pulses_) {
    if (p.time_s + support < t0 || p.time_s - support > t1) continue;
    const auto i_lo = static_cast<std::ptrdiff_t>(
        std::floor((p.time_s - support - t0) * fs_hz));
    const auto i_hi = static_cast<std::ptrdiff_t>(
        std::ceil((p.time_s + support - t0) * fs_hz));
    for (std::ptrdiff_t i = std::max<std::ptrdiff_t>(i_lo, 0);
         i <= i_hi && i < static_cast<std::ptrdiff_t>(n); ++i) {
      const Real t = t0 + static_cast<Real>(i) / fs_hz;
      PulseShapeConfig unit = shape;
      unit.amplitude_v = 1.0;
      out[static_cast<std::size_t>(i)] +=
          p.amplitude_v * pulse_value(unit, t - p.time_s);
    }
  }
  return dsp::TimeSeries(std::move(out), fs_hz);
}

PulseTrain modulate_atc(const core::EventStream& events,
                        const ModulatorConfig& config) {
  PulseTrain train;
  train.reserve(events.size());
  std::uint32_t id = 0;
  for (const auto& e : events.events()) {
    train.add(PulseEmission{e.time_s, config.shape.amplitude_v, id++,
                            /*is_marker=*/true});
  }
  return train;
}

PulseTrain modulate_datc(const core::EventStream& events,
                         const ModulatorConfig& config) {
  dsp::require(config.symbol_period_s > 0.0,
               "modulate_datc: symbol period must be positive");
  dsp::require(config.code_bits >= 1 && config.code_bits <= 8,
               "modulate_datc: code bits must lie in [1,8]");
  PulseTrain train;
  // Worst case one marker plus all code bits set per event.
  train.reserve(events.size() * (1 + config.code_bits));
  std::uint32_t id = 0;
  for (const auto& e : events.events()) {
    train.add(PulseEmission{e.time_s, config.shape.amplitude_v, id,
                            /*is_marker=*/true});
    for (unsigned b = 0; b < config.code_bits; ++b) {
      const unsigned bit_index =
          config.msb_first ? config.code_bits - 1 - b : b;
      const bool bit = (e.vth_code >> bit_index) & 1u;
      if (!bit) continue;  // OOK: no pulse for a zero bit
      const Real t =
          e.time_s + static_cast<Real>(b + 1) * config.symbol_period_s;
      train.add(PulseEmission{t, config.shape.amplitude_v, id,
                              /*is_marker=*/false});
    }
    ++id;
  }
  return train;
}

Real packet_duration_s(const ModulatorConfig& config) {
  return static_cast<Real>(config.code_bits + 1) * config.symbol_period_s;
}

}  // namespace datc::uwb
