#include "config/scenario_grid.hpp"

#include <algorithm>
#include <fstream>
#include <limits>

#include "config/factory.hpp"
#include "config/scenario.hpp"
#include "runtime/pipeline_runner.hpp"
#include "runtime/thread_pool.hpp"
#include "sim/table_writer.hpp"

namespace datc::config {

namespace {

std::string trim(const std::string& s) {
  const auto b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  const auto e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const auto pos = s.find(sep, start);
    const auto end = pos == std::string::npos ? s.size() : pos;
    out.push_back(trim(s.substr(start, end - start)));
    if (pos == std::string::npos) break;
    start = pos + 1;
  }
  return out;
}

}  // namespace

std::vector<ScenarioAxis> parse_axes(const std::string& text) {
  std::vector<ScenarioAxis> axes;
  for (const auto& part : split(text, ';')) {
    if (part.empty()) continue;
    const auto eq = part.find('=');
    if (eq == std::string::npos) {
      throw ScenarioError("axis '" + part +
                                  "': expected key=v1,v2,...");
    }
    ScenarioAxis axis;
    // Resolve now: an unknown axis key must fail before any point runs,
    // and the canonical name keeps report labels unambiguous.
    axis.key = config::resolve_scenario_key(trim(part.substr(0, eq))).key;
    for (const auto& v : split(part.substr(eq + 1), ',')) {
      if (v.empty()) {
        throw ScenarioError("axis '" + axis.key +
                                    "': empty value in list");
      }
      axis.values.push_back(v);
    }
    if (axis.values.empty()) {
      throw ScenarioError("axis '" + axis.key + "': no values");
    }
    axes.push_back(std::move(axis));
  }
  return axes;
}

ScenarioRunReport run_scenario(const ScenarioSpec& spec) {
  const PipelineFactory factory(spec);
  const auto recordings = factory.make_recordings();
  const auto runner = factory.make_runner();
  const auto batch = runner->run_serial(recordings);

  ScenarioRunReport out;
  out.scenario = spec.name;
  out.topology = spec.aer.topology == config::LinkTopology::kSharedAer
                     ? "shared"
                     : "private";
  out.channels = batch.channels.size();
  out.duration_s = spec.source.duration_s;
  out.wall_seconds = batch.wall_seconds;

  Real sum_rx = 0.0;
  Real sum_tx = 0.0;
  Real min_rx = std::numeric_limits<Real>::infinity();
  for (const auto& ch : batch.channels) {
    out.events_tx += ch.events_tx;
    out.events_rx += ch.events_rx;
    sum_rx += ch.rx_correlation_pct;
    sum_tx += ch.tx_correlation_pct;
    min_rx = std::min(min_rx, ch.rx_correlation_pct);
  }
  if (!batch.channels.empty()) {
    const auto n = static_cast<Real>(batch.channels.size());
    out.mean_rx_correlation_pct = sum_rx / n;
    out.mean_tx_correlation_pct = sum_tx / n;
    out.min_rx_correlation_pct = min_rx;
  }
  if (batch.link_mode == runtime::LinkMode::kSharedAer) {
    out.pulses_tx = batch.shared.pulses_tx;
    out.pulses_erased = batch.shared.pulses_erased;
    out.events_dropped = batch.shared.arbiter.dropped;
    out.invalid_address = batch.shared.demux.invalid_address;
  } else {
    for (const auto& ch : batch.channels) {
      out.pulses_tx += ch.pulses_tx;
      out.pulses_erased += ch.pulses_erased;
    }
  }
  return out;
}

ScenarioGridResult run_scenario_grid(const ScenarioGridConfig& config) {
  // Expand the cross-product row-major (last axis fastest).
  std::size_t n_points = 1;
  for (const auto& axis : config.axes) n_points *= axis.values.size();

  struct Point {
    ScenarioSpec spec;
    std::string overrides;
  };
  std::vector<Point> points;
  points.reserve(n_points);
  for (std::size_t index = 0; index < n_points; ++index) {
    Point p{config.base, ""};
    std::size_t stride = n_points;
    for (const auto& axis : config.axes) {
      stride /= axis.values.size();
      const auto& value = axis.values[(index / stride) % axis.values.size()];
      set_scenario_key(p.spec, axis.key, value);
      p.overrides += (p.overrides.empty() ? "" : " ") + axis.key + "=" +
                     value;
    }
    // Fail fast, naming the offending point, before any point runs.
    try {
      p.spec.validate_or_throw();
    } catch (const ScenarioError& e) {
      throw ScenarioError("grid point [" + p.overrides +
                                  "]: " + e.what());
    }
    points.push_back(std::move(p));
  }

  ScenarioGridResult result;
  result.points.resize(points.size());
  const auto run_point = [&points, &result](std::size_t i) {
    result.points[i] = run_scenario(points[i].spec);
    result.points[i].overrides = points[i].overrides;
  };
  if (config.jobs == 1 || points.size() <= 1) {
    for (std::size_t i = 0; i < points.size(); ++i) run_point(i);
  } else {
    runtime::ThreadPool pool(config.jobs);
    runtime::parallel_for(pool, points.size(), run_point);
  }
  return result;
}

std::string scenario_grid_table(const ScenarioGridResult& result) {
  sim::Table table({"scenario", "overrides", "mode", "ch", "events tx/rx",
               "drop", "rx corr % (mean/min)", "wall ms"});
  for (const auto& p : result.points) {
    table.add_row(
        {p.scenario, p.overrides.empty() ? "-" : p.overrides, p.topology,
         sim::Table::integer(p.channels),
         sim::Table::integer(p.events_tx) + "/" + sim::Table::integer(p.events_rx),
         sim::Table::integer(p.events_dropped),
         sim::Table::num(p.mean_rx_correlation_pct, 2) + "/" +
             sim::Table::num(p.min_rx_correlation_pct, 2),
         sim::Table::num(p.wall_seconds * 1e3, 1)});
  }
  return table.to_text();
}

void write_scenario_point_json(std::ostream& out,
                               const ScenarioRunReport& p) {
  out << "{\"scenario\": \"" << p.scenario << "\""
      << ", \"overrides\": \"" << p.overrides << "\""
      << ", \"topology\": \"" << p.topology << "\""
      << ", \"channels\": " << p.channels
      << ", \"duration_s\": " << p.duration_s
      << ", \"events_tx\": " << p.events_tx
      << ", \"pulses_tx\": " << p.pulses_tx
      << ", \"pulses_erased\": " << p.pulses_erased
      << ", \"events_rx\": " << p.events_rx
      << ", \"events_dropped\": " << p.events_dropped
      << ", \"invalid_address\": " << p.invalid_address
      << ", \"mean_rx_correlation_pct\": " << p.mean_rx_correlation_pct
      << ", \"min_rx_correlation_pct\": " << p.min_rx_correlation_pct
      << ", \"mean_tx_correlation_pct\": " << p.mean_tx_correlation_pct
      << ", \"wall_seconds\": " << p.wall_seconds << "}";
}

bool write_scenario_grid_json(const std::string& path,
                              const ScenarioGridResult& result) {
  std::ofstream json(path);
  if (!json.good()) return false;
  json.precision(12);
  json << "{\n  \"points\": [\n";
  for (std::size_t i = 0; i < result.points.size(); ++i) {
    json << "    ";
    write_scenario_point_json(json, result.points[i]);
    json << (i + 1 < result.points.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  return json.good();
}

}  // namespace datc::config
