#pragma once
// Scenario sweep driver: expands axis overrides over a base ScenarioSpec
// (cross-product, e.g. channels = 1,8,64 x distance = 0.2,1.0), runs
// every expanded scenario through PipelineFactory's batch engine
// across the thread pool, and emits ONE comparable report schema for
// every mode (private radios and shared AER alike). Backs the
// `datc sweep` CLI and bench_scenarios (BENCH_scenarios.json).

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "config/scenario.hpp"

namespace datc::config {

using dsp::Real;

/// One sweep axis: a scenario key (short forms allowed, see
/// set_scenario_key) and the values it steps through.
struct ScenarioAxis {
  std::string key;
  std::vector<std::string> values;
};

/// Parses "channels=1,8,64; distance=0.2,1.0" (';' separates axes, ','
/// separates values). Throws ScenarioError on malformed text or
/// unknown keys.
[[nodiscard]] std::vector<ScenarioAxis> parse_axes(const std::string& text);

struct ScenarioGridConfig {
  ScenarioSpec base;
  std::vector<ScenarioAxis> axes;  ///< empty = run the base spec once
  std::size_t jobs{0};  ///< grid points in flight; 0 = hardware threads
};

/// The one report schema every scenario run emits, whatever the mode.
struct ScenarioRunReport {
  std::string scenario;   ///< spec name
  std::string overrides;  ///< "channels=8 link.distance_m=1" ("" = base)
  std::string topology;   ///< "private" | "shared"
  std::size_t channels{0};
  Real duration_s{0.0};
  std::size_t events_tx{0};
  std::size_t pulses_tx{0};
  std::size_t pulses_erased{0};
  std::size_t events_rx{0};
  std::size_t events_dropped{0};    ///< lost in AER arbitration (shared)
  std::size_t invalid_address{0};   ///< demuxed outside [0, channels)
  Real mean_rx_correlation_pct{0.0};
  Real min_rx_correlation_pct{0.0};
  Real mean_tx_correlation_pct{0.0};  ///< lossless-link reference score
  Real wall_seconds{0.0};             ///< pipeline time (synthesis excluded)
};

/// Runs ONE scenario through the factory-built batch engine (serial; the
/// grid parallelises across points, not within them).
[[nodiscard]] ScenarioRunReport run_scenario(
    const ScenarioSpec& spec);

struct ScenarioGridResult {
  std::vector<ScenarioRunReport> points;  ///< row-major over the axes
};

/// Expands the axes and runs every point. Points are independent
/// (deterministic per spec), so the result is identical for any `jobs`.
/// Throws ScenarioError if any expanded point fails validation.
[[nodiscard]] ScenarioGridResult run_scenario_grid(
    const ScenarioGridConfig& config);

/// Aligned text table (one row per point).
[[nodiscard]] std::string scenario_grid_table(
    const ScenarioGridResult& result);

/// One point as a JSON object (no trailing separator) — the ONE
/// ScenarioRunReport serialization, shared by write_scenario_grid_json
/// and bench_scenarios so the schema cannot drift.
void write_scenario_point_json(std::ostream& out,
                               const ScenarioRunReport& point);

/// JSON report; returns false on I/O failure. This is the
/// BENCH_scenarios.json schema CI gates on.
[[nodiscard]] bool write_scenario_grid_json(const std::string& path,
                                            const ScenarioGridResult& result);

}  // namespace datc::config
