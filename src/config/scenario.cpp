#include "config/scenario.hpp"
#include "core/frame.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

namespace datc::config {

namespace {

// ------------------------------------------------------------- primitives

std::string trim(const std::string& s) {
  const auto b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  const auto e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

/// Shortest decimal form that parses back to exactly `v` (clean presets,
/// exact round-trip).
std::string fmt_real(Real v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%g", v);
  if (std::strtod(buf, nullptr) == v || std::isnan(v)) return buf;
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

Real parse_real(const std::string& s) {
  std::size_t pos = 0;
  Real v = 0.0;
  try {
    v = std::stod(s, &pos);
  } catch (const std::exception&) {
    throw ScenarioError("not a number: '" + s + "'");
  }
  if (pos != s.size()) {
    throw ScenarioError("trailing characters after number: '" + s + "'");
  }
  return v;
}

std::uint64_t parse_u64(const std::string& s) {
  if (s.empty() || s[0] == '-') {
    throw ScenarioError("expected a non-negative integer, got '" + s + "'");
  }
  std::size_t pos = 0;
  std::uint64_t v = 0;
  try {
    v = std::stoull(s, &pos);
  } catch (const std::exception&) {
    throw ScenarioError("not an integer: '" + s + "'");
  }
  if (pos != s.size()) {
    throw ScenarioError("trailing characters after integer: '" + s + "'");
  }
  return v;
}

std::uint64_t parse_uint_max(const std::string& s, std::uint64_t max) {
  const auto v = parse_u64(s);
  if (v > max) {
    throw ScenarioError("value " + s + " exceeds the maximum " +
                        std::to_string(max));
  }
  return v;
}

bool parse_bool(const std::string& s) {
  if (s == "true" || s == "1" || s == "yes") return true;
  if (s == "false" || s == "0" || s == "no") return false;
  throw ScenarioError("expected true/false, got '" + s + "'");
}

const char* model_name(SourceModel m) {
  switch (m) {
    case SourceModel::kMotorUnitPool: return "pool";
    case SourceModel::kFilteredNoise: return "noise";
    case SourceModel::kFatigued: return "fatigued";
  }
  return "pool";
}

SourceModel parse_model(const std::string& s) {
  if (s == "pool") return SourceModel::kMotorUnitPool;
  if (s == "noise") return SourceModel::kFilteredNoise;
  if (s == "fatigued") return SourceModel::kFatigued;
  throw ScenarioError("unknown model '" + s + "' (pool|noise|fatigued)");
}

const char* topology_name(LinkTopology t) {
  return t == LinkTopology::kSharedAer ? "shared" : "private";
}

LinkTopology parse_topology(const std::string& s) {
  if (s == "private") return LinkTopology::kPrivate;
  if (s == "shared") return LinkTopology::kSharedAer;
  throw ScenarioError("unknown topology '" + s + "' (private|shared)");
}

const char* recon_mode_name(ReconMode m) {
  return m == ReconMode::kCodeDuty ? "code-duty" : "rate-inversion";
}

ReconMode parse_recon_mode(const std::string& s) {
  if (s == "rate-inversion") return ReconMode::kRateInversion;
  if (s == "code-duty") return ReconMode::kCodeDuty;
  throw ScenarioError("unknown recon mode '" + s +
                      "' (rate-inversion|code-duty)");
}

core::FrameSize parse_frame(const std::string& s) {
  const auto v = parse_u64(s);
  for (const auto f : core::kAllFrameSizes) {
    if (v == static_cast<std::uint64_t>(f)) return f;
  }
  throw ScenarioError("frame must be one of 100|200|400|800, got '" + s +
                      "'");
}

std::string name_value(const std::string& s) {
  if (s.empty()) throw ScenarioError("scenario name must not be empty");
  for (const char c : s) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                    c == '-';
    if (!ok) {
      throw ScenarioError(
          "scenario name may only contain [A-Za-z0-9._-], got '" + s + "'");
    }
  }
  return s;
}

// ------------------------------------------------------------ key registry

#define DATC_REAL_KEY(key_str, field, doc_str)                          \
  ScenarioKey {                                                         \
    key_str, doc_str,                                                   \
        [](const ScenarioSpec& s) { return fmt_real(s.field); },        \
        [](ScenarioSpec& s, const std::string& v) {                     \
          s.field = parse_real(v);                                      \
        }                                                               \
  }

#define DATC_BOOL_KEY(key_str, field, doc_str)                            \
  ScenarioKey {                                                           \
    key_str, doc_str,                                                     \
        [](const ScenarioSpec& s) {                                       \
          return std::string(s.field ? "true" : "false");                 \
        },                                                                \
        [](ScenarioSpec& s, const std::string& v) {                       \
          s.field = parse_bool(v);                                        \
        }                                                                 \
  }

#define DATC_UINT_KEY(key_str, field, type, max, doc_str)               \
  ScenarioKey {                                                         \
    key_str, doc_str,                                                   \
        [](const ScenarioSpec& s) {                                     \
          return std::to_string(s.field);                               \
        },                                                              \
        [](ScenarioSpec& s, const std::string& v) {                     \
          s.field = static_cast<type>(parse_uint_max(v, max));          \
        }                                                               \
  }

std::vector<ScenarioKey> build_registry() {
  constexpr std::uint64_t kU64Max = ~std::uint64_t{0};
  std::vector<ScenarioKey> keys;

  keys.push_back(ScenarioKey{
      "scenario", "scenario name ([A-Za-z0-9._-]; labels reports)",
      [](const ScenarioSpec& s) { return s.name; },
      [](ScenarioSpec& s, const std::string& v) { s.name = name_value(v); }});

  // ---- source
  keys.push_back(DATC_UINT_KEY("source.channels", source.channels,
                               std::size_t, 1u << 20,
                               "number of sEMG channels [1, 4096]"));
  keys.push_back(DATC_REAL_KEY("source.duration_s", source.duration_s,
                               "record length per channel, seconds"));
  keys.push_back(DATC_REAL_KEY(
      "source.sample_rate_hz", source.sample_rate_hz,
      "analog sample rate; also the reconstruction output grid"));
  keys.push_back(DATC_UINT_KEY("source.seed", source.seed, std::uint64_t,
                               kU64Max,
                               "synthesis seed; channel i uses seed + i"));
  keys.push_back(DATC_REAL_KEY(
      "source.gain_lo_v", source.gain_lo_v,
      "full-MVC ARV of the weakest channel, volts"));
  keys.push_back(DATC_REAL_KEY(
      "source.gain_hi_v", source.gain_hi_v,
      "full-MVC ARV of the strongest channel (log spread between)"));
  keys.push_back(DATC_REAL_KEY("source.start_mvc", source.start_mvc,
                               "grip protocol's starting effort (0, 1]"));
  keys.push_back(ScenarioKey{
      "source.model", "synthesis model: pool | noise | fatigued",
      [](const ScenarioSpec& s) {
        return std::string(model_name(s.source.model));
      },
      [](ScenarioSpec& s, const std::string& v) {
        s.source.model = parse_model(v);
      }});
  keys.push_back(DATC_REAL_KEY("source.fatigue_tau_s", source.fatigue_tau_s,
                               "fatigue accumulation time constant, s"));
  keys.push_back(DATC_REAL_KEY(
      "source.fatigue_sigma_stretch", source.fatigue_sigma_stretch,
      "MUAP stretch factor at full fatigue"));
  keys.push_back(DATC_REAL_KEY(
      "source.fatigue_amplitude_gain", source.fatigue_amplitude_gain,
      "amplitude change at full fatigue"));
  keys.push_back(DATC_UINT_KEY(
      "source.artifact_seed", source.artifact_seed, std::uint64_t, kU64Max,
      "artifact injection seed; channel i uses seed ^ i"));
  keys.push_back(DATC_REAL_KEY("source.powerline_amplitude_v",
                               source.powerline_amplitude_v,
                               "50 Hz interference amplitude, volts"));
  keys.push_back(DATC_REAL_KEY("source.powerline_freq_hz",
                               source.powerline_freq_hz,
                               "powerline interference frequency"));
  keys.push_back(DATC_REAL_KEY("source.baseline_wander_amp_v",
                               source.baseline_wander_amp_v,
                               "slow baseline drift amplitude, volts"));
  keys.push_back(DATC_REAL_KEY("source.baseline_wander_hz",
                               source.baseline_wander_hz,
                               "baseline drift frequency"));
  keys.push_back(DATC_REAL_KEY("source.motion_burst_rate_hz",
                               source.motion_burst_rate_hz,
                               "expected motion-artifact bursts per second"));
  keys.push_back(DATC_REAL_KEY("source.motion_burst_amp_v",
                               source.motion_burst_amp_v,
                               "motion burst peak amplitude, volts"));
  keys.push_back(DATC_REAL_KEY("source.spike_rate_hz", source.spike_rate_hz,
                               "random impulse artifacts per second"));
  keys.push_back(DATC_REAL_KEY("source.spike_amp_v", source.spike_amp_v,
                               "impulse artifact amplitude, volts"));

  // ---- encoder
  keys.push_back(DATC_REAL_KEY(
      "encoder.window_s", encoder.window_s,
      "RX event window and ground-truth ARV window, seconds"));
  keys.push_back(DATC_REAL_KEY("encoder.clock_hz", encoder.clock_hz,
                               "DTC clock (2 kHz in the paper)"));
  keys.push_back(DATC_UINT_KEY("encoder.dac_bits", encoder.dac_bits,
                               unsigned, 32,
                               "threshold DAC width = code bits per packet"));
  keys.push_back(DATC_REAL_KEY("encoder.dac_vref", encoder.dac_vref,
                               "DAC reference voltage (Eqn. 3)"));
  keys.push_back(ScenarioKey{
      "encoder.frame", "DTC frame length in clock cycles: 100|200|400|800",
      [](const ScenarioSpec& s) {
        return std::to_string(static_cast<unsigned>(s.encoder.frame));
      },
      [](ScenarioSpec& s, const std::string& v) {
        s.encoder.frame = parse_frame(v);
      }});
  keys.push_back(DATC_REAL_KEY("encoder.band_lo_hz", encoder.band_lo_hz,
                               "assumed sEMG band low edge at the RX"));
  keys.push_back(DATC_REAL_KEY("encoder.band_hi_hz", encoder.band_hi_hz,
                               "assumed sEMG band high edge at the RX"));

  // ---- link
  keys.push_back(DATC_UINT_KEY(
      "link.seed", link.seed, std::uint64_t, kU64Max,
      "radio seed; private channel i draws from seed ^ i"));
  keys.push_back(DATC_REAL_KEY("link.distance_m", link.distance_m,
                               "TX-RX distance, metres"));
  keys.push_back(DATC_REAL_KEY("link.ref_loss_db", link.ref_loss_db,
                               "path loss at the 0.1 m reference distance"));
  keys.push_back(DATC_REAL_KEY("link.path_loss_exponent",
                               link.path_loss_exponent,
                               "log-distance path loss exponent"));
  keys.push_back(DATC_REAL_KEY("link.erasure_prob", link.erasure_prob,
                               "i.i.d. pulse loss probability [0, 1)"));
  keys.push_back(DATC_REAL_KEY("link.jitter_rms_s", link.jitter_rms_s,
                               "received-time jitter RMS, seconds"));
  keys.push_back(DATC_REAL_KEY("link.pulse_amplitude_v",
                               link.pulse_amplitude_v,
                               "pulse peak amplitude at the antenna, volts"));
  keys.push_back(DATC_REAL_KEY("link.symbol_period_s", link.symbol_period_s,
                               "bit-slot spacing inside a packet, seconds"));
  keys.push_back(DATC_REAL_KEY(
      "link.false_alarm_prob", link.false_alarm_prob,
      "energy detector per-slot false alarm probability (0, 0.5)"));
  keys.push_back(DATC_BOOL_KEY(
      "link.cache_detection", link.cache_detection,
      "memoise per-energy detection probability (bit-identical)"));

  // ---- aer
  keys.push_back(ScenarioKey{
      "aer.topology", "link topology: private | shared (one AER radio)",
      [](const ScenarioSpec& s) {
        return std::string(topology_name(s.aer.topology));
      },
      [](ScenarioSpec& s, const std::string& v) {
        s.aer.topology = parse_topology(v);
      }});
  keys.push_back(DATC_UINT_KEY(
      "aer.address_bits", aer.address_bits, unsigned, 32,
      "AER address width; 0 = smallest covering the channel count"));
  keys.push_back(DATC_REAL_KEY("aer.min_spacing_s", aer.min_spacing_s,
                               "arbiter's minimum on-air packet spacing"));
  keys.push_back(DATC_REAL_KEY(
      "aer.max_queue_delay_s", aer.max_queue_delay_s,
      "arbiter latency budget; later events are dropped"));

  // ---- session
  keys.push_back(DATC_UINT_KEY("session.chunk_samples",
                               session.chunk_samples, std::size_t,
                               std::uint64_t{1} << 32,
                               "streaming chunk size per channel [1, 1e6]"));
  keys.push_back(DATC_UINT_KEY("session.jobs", session.jobs, std::size_t,
                               1u << 16,
                               "worker threads [0, 1024]; 0 = hardware"));
  keys.push_back(DATC_UINT_KEY(
      "session.channel", session.channel, std::uint32_t, 0xFFFFFFFFull,
      "channel id (AER address) of a single streamed session"));

  // ---- recon
  keys.push_back(ScenarioKey{
      "recon.mode", "D-ATC decode: rate-inversion | code-duty",
      [](const ScenarioSpec& s) {
        return std::string(recon_mode_name(s.recon.mode));
      },
      [](ScenarioSpec& s, const std::string& v) {
        s.recon.mode = parse_recon_mode(v);
      }});

  // ---- serve (ingest daemon; shapes the server, never the pipeline)
  keys.push_back(DATC_UINT_KEY(
      "serve.port", serve.port, std::uint16_t, 65535,
      "ingest daemon TCP port; 0 = ephemeral (loopback testing)"));
  keys.push_back(DATC_UINT_KEY(
      "serve.shards", serve.shards, std::size_t, 1u << 10,
      "SessionManager shards; sessions land by id hash [1, 256]"));
  keys.push_back(DATC_UINT_KEY(
      "serve.max_sessions", serve.max_sessions, std::size_t, 1u << 24,
      "concurrent session cap; later HELLOs get a typed reject"));
  keys.push_back(DATC_UINT_KEY(
      "serve.inflight", serve.max_inflight_chunks, std::size_t, 1u << 16,
      "per-connection inflight-chunk bound before TCP pushback [1, 1024]"));

  // ---- fault (all defaults off: bit-identical to the fault-free chain)
  keys.push_back(DATC_UINT_KEY(
      "fault.seed", fault.seed, std::uint64_t, kU64Max,
      "fault plan seed; drives every injected-fault decision stream"));
  keys.push_back(DATC_REAL_KEY(
      "fault.store_write_fail_prob", fault.store_write_fail_prob,
      "torn-write probability per store I/O write op [0, 1]"));
  keys.push_back(DATC_REAL_KEY(
      "fault.store_fsync_fail_prob", fault.store_fsync_fail_prob,
      "failure probability per store sync op [0, 1]"));
  keys.push_back(DATC_UINT_KEY(
      "fault.store_enospc_every_ops", fault.store_enospc_every_ops,
      std::uint64_t, kU64Max,
      "every Nth store op period ends in an ENOSPC window (0 = off)"));
  keys.push_back(DATC_UINT_KEY(
      "fault.store_enospc_window_ops", fault.store_enospc_window_ops,
      std::uint64_t, kU64Max,
      "failing ops at the end of each ENOSPC period"));
  keys.push_back(DATC_REAL_KEY(
      "fault.chunk_drop_prob", fault.chunk_drop_prob,
      "probability a session chunk is dropped before delivery [0, 1]"));
  keys.push_back(DATC_REAL_KEY(
      "fault.chunk_dup_prob", fault.chunk_dup_prob,
      "probability a session chunk is delivered twice [0, 1]"));
  keys.push_back(DATC_REAL_KEY(
      "fault.chunk_stall_prob", fault.chunk_stall_prob,
      "probability chunk delivery stalls (exercises the watchdog)"));
  keys.push_back(DATC_REAL_KEY("fault.chunk_stall_ms", fault.chunk_stall_ms,
                               "stall duration, wall-clock milliseconds"));
  keys.push_back(DATC_REAL_KEY(
      "fault.chunk_poison_prob", fault.chunk_poison_prob,
      "probability chunk delivery throws (exercises quarantine)"));
  keys.push_back(DATC_REAL_KEY(
      "fault.sensor_dropout_prob", fault.sensor_dropout_prob,
      "per-chunk probability of a lead-off burst (samples read 0 V)"));
  keys.push_back(DATC_REAL_KEY(
      "fault.sensor_saturate_prob", fault.sensor_saturate_prob,
      "per-chunk probability of a saturation burst (clips to the rail)"));
  keys.push_back(DATC_REAL_KEY("fault.sensor_rail_v", fault.sensor_rail_v,
                               "saturation rail voltage"));
  keys.push_back(DATC_REAL_KEY(
      "fault.health_starvation_s", fault.health_starvation_s,
      "decode-health: trip after this long without events (0 = off)"));
  keys.push_back(DATC_REAL_KEY(
      "fault.health_bad_rate", fault.health_bad_rate,
      "decode-health: trip when bad-decode fraction exceeds this (0 = "
      "off)"));
  keys.push_back(DATC_REAL_KEY(
      "fault.health_window_s", fault.health_window_s,
      "decode-health: sliding window for the bad-rate check, seconds"));

  return keys;
}

#undef DATC_REAL_KEY
#undef DATC_BOOL_KEY
#undef DATC_UINT_KEY

std::string last_component(const std::string& key) {
  const auto dot = key.rfind('.');
  return dot == std::string::npos ? key : key.substr(dot + 1);
}

}  // namespace

const std::vector<ScenarioKey>& scenario_keys() {
  static const std::vector<ScenarioKey> keys = build_registry();
  return keys;
}

const ScenarioKey& resolve_scenario_key(const std::string& key) {
  const auto& keys = scenario_keys();
  for (const auto& k : keys) {
    if (k.key == key) return k;
  }
  // Short form: the last path component, or a unique prefix of it.
  for (const int pass : {0, 1}) {
    std::vector<const ScenarioKey*> hits;
    for (const auto& k : keys) {
      const auto leaf = last_component(k.key);
      const bool match = pass == 0 ? leaf == key : leaf.rfind(key, 0) == 0;
      if (match) hits.push_back(&k);
    }
    if (hits.size() == 1) return *hits.front();
    if (hits.size() > 1) {
      std::string candidates;
      for (const auto* k : hits) {
        candidates += candidates.empty() ? k->key : ", " + k->key;
      }
      throw ScenarioError("ambiguous key '" + key + "' (matches " +
                          candidates + ")");
    }
  }
  throw ScenarioError("unknown key '" + key +
                      "' (see `datc scenario keys`)");
}

void set_scenario_key(ScenarioSpec& spec, const std::string& key,
                      const std::string& value) {
  const auto& k = resolve_scenario_key(key);
  try {
    k.set(spec, value);
  } catch (const std::exception& e) {
    throw ScenarioError(k.key + ": " + e.what());
  }
}

// --------------------------------------------------------------- ScenarioSpec

unsigned ScenarioSpec::resolved_address_bits() const {
  if (aer.address_bits != 0) return aer.address_bits;
  unsigned bits = 0;
  while ((std::size_t{1} << bits) < source.channels) ++bits;
  return bits;
}

Real ScenarioSpec::gain_for_channel(std::size_t channel) const {
  if (source.channels <= 1) return source.gain_lo_v;
  return source.gain_lo_v *
         std::pow(source.gain_hi_v / source.gain_lo_v,
                  static_cast<Real>(channel) /
                      static_cast<Real>(source.channels - 1));
}

bool ScenarioSpec::has_artifacts() const {
  return source.powerline_amplitude_v > 0.0 ||
         source.baseline_wander_amp_v > 0.0 ||
         source.motion_burst_rate_hz > 0.0 || source.spike_rate_hz > 0.0;
}

bool ScenarioSpec::has_faults() const {
  return fault.store_write_fail_prob > 0.0 ||
         fault.store_fsync_fail_prob > 0.0 ||
         fault.store_enospc_every_ops > 0 || fault.chunk_drop_prob > 0.0 ||
         fault.chunk_dup_prob > 0.0 || fault.chunk_stall_prob > 0.0 ||
         fault.chunk_poison_prob > 0.0 || fault.sensor_dropout_prob > 0.0 ||
         fault.sensor_saturate_prob > 0.0;
}

std::vector<ScenarioSpec::Issue> ScenarioSpec::validate() const {
  std::vector<Issue> issues;
  const auto bad = [&issues](const char* key, const std::string& msg) {
    issues.push_back(Issue{key, msg});
  };
  const auto positive = [&bad](const char* key, Real v, const char* what) {
    if (!std::isfinite(v) || v <= 0.0) {
      bad(key, std::string(what) + " must be finite and > 0, got " +
                   fmt_real(v));
    }
  };
  const auto non_negative = [&bad](const char* key, Real v,
                                   const char* what) {
    if (!std::isfinite(v) || v < 0.0) {
      bad(key, std::string(what) + " must be finite and >= 0, got " +
                   fmt_real(v));
    }
  };

  if (source.channels < 1 || source.channels > 4096) {
    bad("source.channels", "channel count must lie in [1, 4096], got " +
                               std::to_string(source.channels));
  }
  positive("source.duration_s", source.duration_s, "duration");
  positive("source.sample_rate_hz", source.sample_rate_hz, "sample rate");
  positive("source.gain_lo_v", source.gain_lo_v, "gain_lo_v");
  if (!std::isfinite(source.gain_hi_v) ||
      source.gain_hi_v < source.gain_lo_v) {
    bad("source.gain_hi_v", "need gain_lo_v <= gain_hi_v, got " +
                                fmt_real(source.gain_hi_v));
  }
  if (!std::isfinite(source.start_mvc) || source.start_mvc <= 0.0 ||
      source.start_mvc > 1.0) {
    bad("source.start_mvc",
        "start effort must lie in (0, 1], got " + fmt_real(source.start_mvc));
  }
  positive("source.fatigue_tau_s", source.fatigue_tau_s, "fatigue tau");
  positive("source.fatigue_sigma_stretch", source.fatigue_sigma_stretch,
           "fatigue sigma stretch");
  positive("source.fatigue_amplitude_gain", source.fatigue_amplitude_gain,
           "fatigue amplitude gain");
  non_negative("source.powerline_amplitude_v", source.powerline_amplitude_v,
               "powerline amplitude");
  positive("source.powerline_freq_hz", source.powerline_freq_hz,
           "powerline frequency");
  non_negative("source.baseline_wander_amp_v", source.baseline_wander_amp_v,
               "baseline wander amplitude");
  positive("source.baseline_wander_hz", source.baseline_wander_hz,
           "baseline wander frequency");
  non_negative("source.motion_burst_rate_hz", source.motion_burst_rate_hz,
               "motion burst rate");
  non_negative("source.motion_burst_amp_v", source.motion_burst_amp_v,
               "motion burst amplitude");
  non_negative("source.spike_rate_hz", source.spike_rate_hz, "spike rate");
  non_negative("source.spike_amp_v", source.spike_amp_v, "spike amplitude");

  positive("encoder.window_s", encoder.window_s, "window");
  positive("encoder.clock_hz", encoder.clock_hz, "DTC clock");
  if (encoder.dac_bits < 1 || encoder.dac_bits > 8) {
    bad("encoder.dac_bits", "DAC width must lie in [1, 8] bits, got " +
                                std::to_string(encoder.dac_bits));
  }
  positive("encoder.dac_vref", encoder.dac_vref, "DAC reference");
  positive("encoder.band_lo_hz", encoder.band_lo_hz, "band low edge");
  if (!std::isfinite(encoder.band_hi_hz) ||
      encoder.band_hi_hz <= encoder.band_lo_hz) {
    bad("encoder.band_hi_hz", "need band_lo_hz < band_hi_hz, got " +
                                  fmt_real(encoder.band_hi_hz));
  } else if (std::isfinite(source.sample_rate_hz) &&
             encoder.band_hi_hz >= source.sample_rate_hz / 2.0) {
    bad("encoder.band_hi_hz",
        "band high edge must stay below the Nyquist rate " +
            fmt_real(source.sample_rate_hz / 2.0) + " Hz");
  }

  positive("link.distance_m", link.distance_m, "distance");
  non_negative("link.ref_loss_db", link.ref_loss_db, "reference loss");
  positive("link.path_loss_exponent", link.path_loss_exponent,
           "path loss exponent");
  if (!std::isfinite(link.erasure_prob) || link.erasure_prob < 0.0 ||
      link.erasure_prob >= 1.0) {
    bad("link.erasure_prob", "erasure probability must lie in [0, 1), got " +
                                 fmt_real(link.erasure_prob));
  }
  non_negative("link.jitter_rms_s", link.jitter_rms_s, "jitter");
  positive("link.pulse_amplitude_v", link.pulse_amplitude_v,
           "pulse amplitude");
  positive("link.symbol_period_s", link.symbol_period_s, "symbol period");
  if (!std::isfinite(link.false_alarm_prob) ||
      link.false_alarm_prob <= 0.0 || link.false_alarm_prob >= 0.5) {
    bad("link.false_alarm_prob",
        "false alarm probability must lie in (0, 0.5), got " +
            fmt_real(link.false_alarm_prob));
  }

  if (aer.topology == LinkTopology::kSharedAer) {
    const unsigned bits = resolved_address_bits();
    if (bits > 16) {
      bad("aer.address_bits",
          "address width " + std::to_string(bits) +
              " exceeds the 16-bit event address field");
    } else if ((std::size_t{1} << bits) < source.channels) {
      bad("aer.address_bits",
          std::to_string(aer.address_bits) + " address bit(s) cover only " +
              std::to_string(std::size_t{1} << bits) +
              " endpoints but the scenario has " +
              std::to_string(source.channels) + " channels");
    }
  } else if (aer.address_bits > 16) {
    bad("aer.address_bits", "address width must lie in [0, 16], got " +
                                std::to_string(aer.address_bits));
  }
  non_negative("aer.min_spacing_s", aer.min_spacing_s, "AER spacing");
  positive("aer.max_queue_delay_s", aer.max_queue_delay_s,
           "AER latency budget");

  if (session.chunk_samples < 1 || session.chunk_samples > 1000000) {
    bad("session.chunk_samples",
        "chunk size must lie in [1, 1e6] samples, got " +
            std::to_string(session.chunk_samples));
  }
  if (session.jobs > 1024) {
    bad("session.jobs", "jobs must lie in [0, 1024], got " +
                            std::to_string(session.jobs));
  }
  if (session.channel > 65535) {
    bad("session.channel",
        "session channel id must fit the 16-bit AER address field, got " +
            std::to_string(session.channel));
  }

  if (serve.shards < 1 || serve.shards > 256) {
    bad("serve.shards", "shard count must lie in [1, 256], got " +
                            std::to_string(serve.shards));
  }
  if (serve.max_sessions < 1) {
    bad("serve.max_sessions", "session cap must be >= 1");
  }
  if (serve.max_inflight_chunks < 1 || serve.max_inflight_chunks > 1024) {
    bad("serve.inflight",
        "inflight-chunk bound must lie in [1, 1024], got " +
            std::to_string(serve.max_inflight_chunks));
  }

  const auto prob = [&bad](const char* key, Real v, const char* what) {
    if (!std::isfinite(v) || v < 0.0 || v > 1.0) {
      bad(key, std::string(what) + " must lie in [0, 1], got " +
                   fmt_real(v));
    }
  };
  prob("fault.store_write_fail_prob", fault.store_write_fail_prob,
       "store write-fail probability");
  prob("fault.store_fsync_fail_prob", fault.store_fsync_fail_prob,
       "store fsync-fail probability");
  if (fault.store_enospc_every_ops > 0 &&
      fault.store_enospc_window_ops < 1) {
    bad("fault.store_enospc_window_ops",
        "ENOSPC window must cover at least 1 op when the period is set");
  }
  prob("fault.chunk_drop_prob", fault.chunk_drop_prob,
       "chunk drop probability");
  prob("fault.chunk_dup_prob", fault.chunk_dup_prob,
       "chunk duplicate probability");
  prob("fault.chunk_stall_prob", fault.chunk_stall_prob,
       "chunk stall probability");
  non_negative("fault.chunk_stall_ms", fault.chunk_stall_ms,
               "chunk stall duration");
  prob("fault.chunk_poison_prob", fault.chunk_poison_prob,
       "chunk poison probability");
  prob("fault.sensor_dropout_prob", fault.sensor_dropout_prob,
       "sensor dropout probability");
  prob("fault.sensor_saturate_prob", fault.sensor_saturate_prob,
       "sensor saturation probability");
  positive("fault.sensor_rail_v", fault.sensor_rail_v, "sensor rail");
  non_negative("fault.health_starvation_s", fault.health_starvation_s,
               "health starvation threshold");
  prob("fault.health_bad_rate", fault.health_bad_rate,
       "health bad-rate threshold");
  positive("fault.health_window_s", fault.health_window_s,
           "health window");
  return issues;
}

void ScenarioSpec::validate_or_throw() const {
  const auto issues = validate();
  if (issues.empty()) return;
  std::string msg = "invalid scenario '" + name + "':";
  for (const auto& i : issues) {
    msg += "\n  " + i.key + ": " + i.message;
  }
  throw ScenarioError(msg);
}

// --------------------------------------------------------- parse/serialize

ScenarioSpec parse_scenario(const std::string& text,
                            const std::string& origin) {
  ScenarioSpec spec;
  std::map<std::string, int> line_of;
  std::istringstream in(text);
  std::string raw;
  int lineno = 0;
  const auto fail = [&origin](int line, const std::string& msg) {
    throw ScenarioError(origin + ":" + std::to_string(line) + ": " + msg);
  };
  while (std::getline(in, raw)) {
    ++lineno;
    const auto hash = raw.find('#');
    const auto line = trim(hash == std::string::npos ? raw
                                                     : raw.substr(0, hash));
    if (line.empty()) continue;
    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      fail(lineno, "expected `key = value`, got '" + line + "'");
    }
    const auto key = trim(line.substr(0, eq));
    const auto value = trim(line.substr(eq + 1));
    if (key.empty()) fail(lineno, "missing key before '='");
    if (value.empty()) fail(lineno, "missing value for key '" + key + "'");
    const ScenarioKey* k = nullptr;
    try {
      k = &resolve_scenario_key(key);
    } catch (const ScenarioError& e) {
      fail(lineno, e.what());
    }
    const auto [it, inserted] = line_of.emplace(k->key, lineno);
    if (!inserted) {
      fail(lineno, "duplicate key '" + k->key + "' (first set on line " +
                       std::to_string(it->second) + ")");
    }
    try {
      k->set(spec, value);
    } catch (const std::exception& e) {
      fail(lineno, k->key + ": " + e.what());
    }
  }

  const auto issues = spec.validate();
  if (!issues.empty()) {
    std::string msg;
    for (const auto& i : issues) {
      if (!msg.empty()) msg += "\n";
      const auto it = line_of.find(i.key);
      if (it != line_of.end()) {
        msg += origin + ":" + std::to_string(it->second) + ": " + i.key +
               ": " + i.message;
      } else {
        msg += origin + ": " + i.key + ": " + i.message + " (default value)";
      }
    }
    throw ScenarioError(msg);
  }
  return spec;
}

ScenarioSpec parse_scenario_file(const std::string& path) {
  std::ifstream f(path);
  if (!f.good()) {
    throw ScenarioError("cannot open scenario file " + path);
  }
  std::ostringstream text;
  text << f.rdbuf();
  return parse_scenario(text.str(), path);
}

std::string serialize_scenario(const ScenarioSpec& spec) {
  std::string out =
      "# D-ATC pipeline scenario (see `datc scenario keys` for the full\n"
      "# key reference; `datc pipeline --scenario FILE` runs it).\n";
  std::string section;
  for (const auto& k : scenario_keys()) {
    const auto dot = k.key.find('.');
    const auto sec = dot == std::string::npos ? std::string()
                                              : k.key.substr(0, dot);
    if (sec != section) {
      section = sec;
      out += "\n# ---- " + section + "\n";
    }
    out += k.key + " = " + k.get(spec) + "\n";
  }
  return out;
}

bool scenario_equal(const ScenarioSpec& a, const ScenarioSpec& b) {
  for (const auto& k : scenario_keys()) {
    if (k.get(a) != k.get(b)) return false;
  }
  return true;
}

// ----------------------------------------------------------------- presets

namespace {

struct PresetDef {
  const char* name;
  const char* summary;
  std::vector<std::pair<const char*, const char*>> overrides;
};

const std::vector<PresetDef>& preset_defs() {
  static const std::vector<PresetDef> defs = {
      {"paper-baseline",
       "single channel, 20 s grip protocol, 0.5 m body-area link (the "
       "paper's showcase regime)",
       {{"scenario", "paper-baseline"}, {"source.seed", "4221"}}},
      {"shared-aer-8ch",
       "8 channels contending for one arbitrated AER radio (the dataset's "
       "electrode count)",
       {{"scenario", "shared-aer-8ch"},
        {"source.channels", "8"},
        {"source.duration_s", "10"},
        {"source.gain_lo_v", "0.16"},
        {"source.gain_hi_v", "0.85"},
        {"aer.topology", "shared"}}},
      {"shared-aer-64ch",
       "64-channel shared-AER grid (high-density array; fast noise model)",
       {{"scenario", "shared-aer-64ch"},
        {"source.channels", "64"},
        {"source.duration_s", "5"},
        {"source.gain_lo_v", "0.16"},
        {"source.gain_hi_v", "0.85"},
        {"source.model", "noise"},
        {"aer.topology", "shared"},
        {"aer.min_spacing_s", "1e-6"}}},
      {"artifact-burst",
       "motion bursts + spikes + 50 Hz hum at the electrode (graceful-"
       "degradation claim)",
       {{"scenario", "artifact-burst"},
        {"source.powerline_amplitude_v", "0.03"},
        {"source.baseline_wander_amp_v", "0.03"},
        {"source.motion_burst_rate_hz", "0.5"},
        {"source.motion_burst_amp_v", "0.25"},
        {"source.spike_rate_hz", "2"},
        {"source.spike_amp_v", "0.4"}}},
      {"fatigue-drift",
       "sustained-effort fatigue: conduction slowing compresses the sEMG "
       "spectrum under the encoder",
       {{"scenario", "fatigue-drift"},
        {"source.model", "fatigued"},
        {"source.gain_lo_v", "0.35"},
        {"source.gain_hi_v", "0.35"},
        {"source.fatigue_tau_s", "8"},
        {"source.fatigue_sigma_stretch", "1.5"}}},
      {"lossy-far-link",
       "2 m link with 10 % pulse erasures and a strong pulse (the "
       "pulse-missing robustness regime)",
       {{"scenario", "lossy-far-link"},
        {"source.duration_s", "10"},
        {"link.distance_m", "2"},
        {"link.erasure_prob", "0.1"},
        {"link.pulse_amplitude_v", "0.5"}}},
      {"serve-smoke",
       "loopback ingest-daemon smoke: short fast-noise sessions streamed "
       "over TCP into 2 shards (`datc serve` / `datc loadgen` / CI gate)",
       {{"scenario", "serve-smoke"},
        {"source.model", "noise"},
        {"source.duration_s", "2"},
        {"session.chunk_samples", "256"},
        {"serve.shards", "2"},
        {"serve.max_sessions", "2048"},
        {"serve.inflight", "4"}}},
      {"chaos-soak",
       "everything degrades at once: lossy link, sensor bursts, chunk "
       "drops/dups/stalls, store I/O faults, health monitor armed "
       "(deterministic fault seed)",
       {{"scenario", "chaos-soak"},
        {"source.model", "noise"},
        {"source.duration_s", "10"},
        {"link.erasure_prob", "0.1"},
        {"fault.store_write_fail_prob", "0.05"},
        {"fault.store_fsync_fail_prob", "0.02"},
        {"fault.store_enospc_every_ops", "4096"},
        {"fault.store_enospc_window_ops", "8"},
        {"fault.chunk_drop_prob", "0.02"},
        {"fault.chunk_dup_prob", "0.02"},
        {"fault.chunk_stall_prob", "0.01"},
        {"fault.chunk_stall_ms", "2"},
        {"fault.sensor_dropout_prob", "0.05"},
        {"fault.sensor_saturate_prob", "0.03"},
        {"fault.health_starvation_s", "0.5"},
        {"fault.health_bad_rate", "0.5"},
        {"fault.health_window_s", "1"}}},
  };
  return defs;
}

}  // namespace

const std::vector<std::string>& preset_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> n;
    for (const auto& d : preset_defs()) n.push_back(d.name);
    return n;
  }();
  return names;
}

std::string preset_summary(const std::string& name) {
  for (const auto& d : preset_defs()) {
    if (name == d.name) return d.summary;
  }
  throw ScenarioError("unknown preset '" + name + "'");
}

ScenarioSpec make_preset(const std::string& name) {
  for (const auto& d : preset_defs()) {
    if (name != d.name) continue;
    ScenarioSpec spec;
    for (const auto& [key, value] : d.overrides) {
      set_scenario_key(spec, key, value);
    }
    spec.validate_or_throw();
    return spec;
  }
  std::string known;
  for (const auto& n : preset_names()) {
    known += known.empty() ? n : ", " + n;
  }
  throw ScenarioError("unknown preset '" + name + "' (known: " + known +
                      ")");
}

ScenarioSpec load_scenario(const std::string& ref) {
  std::error_code ec;
  if (std::filesystem::is_regular_file(ref, ec)) {
    return parse_scenario_file(ref);
  }
  for (const auto& n : preset_names()) {
    if (ref == n) return make_preset(ref);
  }
  throw ScenarioError("'" + ref +
                      "' is neither a scenario file nor a built-in preset");
}

}  // namespace datc::config
