#pragma once
// Declarative scenario layer: ONE spec describes everything a D-ATC
// pipeline run needs — signal source, encoder, UWB link, AER arbitration,
// session chunking, reconstruction and seeds — in a human-writable
// `key = value` text format (scenarios/*.datc). Every construction path
// in the repo (batch sim, PipelineRunner, streaming sessions, replay,
// the CLI and the benches) is built from a ScenarioSpec through
// config::PipelineFactory, so a default lives in exactly one place.
//
// The same key registry drives parsing, serialization, validation,
// `datc scenario keys` documentation and the sweep driver's axis
// overrides (sim::run_scenario_grid) — adding a key once wires it into
// all five.

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/frame.hpp"
#include "dsp/types.hpp"

namespace datc::config {

using dsp::Real;

/// Which synthesiser produces the sEMG for each channel.
enum class SourceModel {
  kMotorUnitPool,  ///< physiological Fuglevand pool (dataset default)
  kFilteredNoise,  ///< AM band-limited noise (~20x faster; big sweeps)
  kFatigued,       ///< motor-unit pool with progressive conduction slowing
};

/// Link topology: a private radio per channel, or one arbitrated medium.
enum class LinkTopology { kPrivate, kSharedAer };

/// How the receiver inverts D-ATC events into a force estimate.
enum class ReconMode { kRateInversion, kCodeDuty };

/// The one declarative description of a pipeline run. Field defaults ARE
/// the project defaults — the CLI, benches and presets start from
/// ScenarioSpec{} and override, never restate.
struct ScenarioSpec {
  std::string name{"unnamed"};

  struct Source {
    std::size_t channels{1};
    Real duration_s{20.0};
    Real sample_rate_hz{2500.0};  ///< dataset rate; also the recon grid
    std::uint64_t seed{1};        ///< channel i synthesises with seed + i
    Real gain_lo_v{0.28};         ///< ARV at 100 % MVC, weakest channel
    Real gain_hi_v{0.28};         ///< strongest channel (log spread between)
    Real start_mvc{0.7};          ///< grip protocol starts at 70 % MVC
    SourceModel model{SourceModel::kMotorUnitPool};
    // Fatigue model parameters (model = fatigued).
    Real fatigue_tau_s{30.0};
    Real fatigue_sigma_stretch{1.4};
    Real fatigue_amplitude_gain{1.1};
    // Artifact injection at the electrode (all zero = clean).
    std::uint64_t artifact_seed{606};  ///< channel i injects with seed ^ i
    Real powerline_amplitude_v{0.0};
    Real powerline_freq_hz{50.0};
    Real baseline_wander_amp_v{0.0};
    Real baseline_wander_hz{0.3};
    Real motion_burst_rate_hz{0.0};
    Real motion_burst_amp_v{0.0};
    Real spike_rate_hz{0.0};
    Real spike_amp_v{0.0};
  } source;

  struct Encoder {
    Real window_s{0.25};    ///< RX window and ground-truth ARV window
    Real clock_hz{2000.0};  ///< DTC clock (fclk = 2 * f_sEMG,max)
    unsigned dac_bits{4};
    Real dac_vref{1.0};
    core::FrameSize frame{core::FrameSize::k100};
    Real band_lo_hz{20.0};  ///< assumed sEMG band at the receiver
    Real band_hi_hz{450.0};
  } encoder;

  struct Link {
    std::uint64_t seed{7};  ///< base radio seed (xor channel id, private)
    Real distance_m{0.5};
    Real ref_loss_db{30.0};  ///< body-area reference loss
    Real path_loss_exponent{1.8};
    Real erasure_prob{0.0};
    Real jitter_rms_s{50e-12};
    Real pulse_amplitude_v{0.1};
    Real symbol_period_s{100e-9};
    Real false_alarm_prob{1e-6};
    bool cache_detection{true};  ///< bit-identical fast detection stage
  } link;

  struct Aer {
    LinkTopology topology{LinkTopology::kPrivate};
    unsigned address_bits{0};  ///< 0 = smallest width covering channels
    Real min_spacing_s{2e-6};
    Real max_queue_delay_s{20e-3};
  } aer;

  struct Session {
    std::size_t chunk_samples{256};  ///< streaming chunk (per channel)
    std::size_t jobs{0};             ///< worker threads; 0 = hardware
    std::uint32_t channel{0};        ///< id of a single streamed session
  } session;

  struct Recon {
    ReconMode mode{ReconMode::kRateInversion};
  } recon;

  /// Ingest-daemon parameters (`datc serve`): the TCP listener and the
  /// sharded session fan-out. Sessions accepted by the daemon are built
  /// through the same PipelineFactory as every other path, so serve.*
  /// only shapes the server, never the pipeline.
  struct Serve {
    std::uint16_t port{0};        ///< TCP port; 0 = ephemeral (loopback)
    std::size_t shards{2};        ///< SessionManager shards (by id hash)
    std::size_t max_sessions{4096};  ///< concurrent session cap
    /// Per-connection inflight-chunk bound: once this many submitted
    /// chunks have not yet produced their envelope, the server stops
    /// reading the socket (TCP pushback towards the client).
    std::size_t max_inflight_chunks{4};
  } serve;

  /// Deterministic fault injection + graceful-degradation thresholds.
  /// All defaults are "off": a spec with default fault.* keys runs the
  /// exact pre-fault pipeline, bit for bit. Probabilities are decided by
  /// seeded hashes of operation indices (src/fault), never wall time, so
  /// a fixed fault.seed reproduces identical fault sequences and counts.
  struct Fault {
    std::uint64_t seed{4242};  ///< one seed drives every fault stream
    // Store I/O faults (recorder/log writer path).
    Real store_write_fail_prob{0.0};   ///< torn-write prob per write op
    Real store_fsync_fail_prob{0.0};   ///< failure prob per sync op
    std::uint64_t store_enospc_every_ops{0};   ///< ENOSPC period (0 = off)
    std::uint64_t store_enospc_window_ops{16}; ///< failing ops per period
    // Session chunk-stream faults.
    Real chunk_drop_prob{0.0};
    Real chunk_dup_prob{0.0};
    Real chunk_stall_prob{0.0};
    Real chunk_stall_ms{5.0};
    Real chunk_poison_prob{0.0};  ///< chunk delivery throws (quarantine)
    // Sensor faults (dropout / saturation bursts at the electrode).
    Real sensor_dropout_prob{0.0};
    Real sensor_saturate_prob{0.0};
    Real sensor_rail_v{1.0};
    // Decode-health monitor thresholds (0 = check off).
    Real health_starvation_s{0.0};
    Real health_bad_rate{0.0};
    Real health_window_s{1.0};
  } fault;

  /// AER address width actually used on air: the configured width, or the
  /// smallest width covering `source.channels` when it is 0.
  [[nodiscard]] unsigned resolved_address_bits() const;

  /// Channel i's full-MVC gain: log spread from gain_lo_v to gain_hi_v
  /// (a single channel gets gain_lo_v).
  [[nodiscard]] Real gain_for_channel(std::size_t channel) const;

  /// True when any artifact amplitude/rate is non-zero.
  [[nodiscard]] bool has_artifacts() const;

  /// True when any fault.* probability/period is armed (seed, stall
  /// duration, rail and health thresholds alone do not count — they only
  /// shape faults once one is armed).
  [[nodiscard]] bool has_faults() const;

  /// Cross-field validation (no silent nonsense: NaN or non-positive
  /// rates, window sizes of 0, an AER address width too small for the
  /// channel count, ... all rejected). Returns every violated rule;
  /// empty means the spec is runnable.
  struct Issue {
    std::string key;      ///< registry key the rule anchors to
    std::string message;  ///< human-readable rule violation
  };
  [[nodiscard]] std::vector<Issue> validate() const;

  /// Throws ScenarioError listing every issue; no-op on a valid spec.
  void validate_or_throw() const;
};

/// Parse/validation failure. `what()` carries origin:line context for
/// errors attributable to an input line.
class ScenarioError : public std::runtime_error {
 public:
  explicit ScenarioError(const std::string& what) : std::runtime_error(what) {}
};

// ------------------------------------------------------------- key registry

/// One settable/serializable scenario key.
struct ScenarioKey {
  std::string key;  ///< dotted name, e.g. "link.distance_m"
  std::string doc;  ///< one-line reference shown by `datc scenario keys`
  std::string (*get)(const ScenarioSpec&);
  void (*set)(ScenarioSpec&, const std::string&);
};

/// The full registry, in serialization order.
[[nodiscard]] const std::vector<ScenarioKey>& scenario_keys();

/// Sets one key. Accepts the exact dotted name or an unambiguous short
/// form (the last path component, e.g. "channels", optionally a unique
/// prefix of it like "distance"). Throws ScenarioError on an unknown or
/// ambiguous name or an unparsable value.
void set_scenario_key(ScenarioSpec& spec, const std::string& key,
                      const std::string& value);

/// Resolves a short-form key name to its registry entry (see
/// set_scenario_key). Throws ScenarioError when unknown/ambiguous.
[[nodiscard]] const ScenarioKey& resolve_scenario_key(const std::string& key);

// --------------------------------------------------------- parse/serialize

/// Parses `key = value` text ('#' starts a comment, blank lines ignored).
/// Unknown keys, duplicate keys, malformed values and validation failures
/// throw ScenarioError with `origin:line:` context (validation failures
/// of keys left at their defaults cite the key instead of a line).
[[nodiscard]] ScenarioSpec parse_scenario(const std::string& text,
                                          const std::string& origin =
                                              "<scenario>");

/// parse_scenario over a file's contents.
[[nodiscard]] ScenarioSpec parse_scenario_file(const std::string& path);

/// Serializes every key (grouped, commented). parse(serialize(s)) == s.
[[nodiscard]] std::string serialize_scenario(const ScenarioSpec& spec);

/// Specs equal key-for-key (the round-trip identity the tests gate).
[[nodiscard]] bool scenario_equal(const ScenarioSpec& a,
                                  const ScenarioSpec& b);

// ----------------------------------------------------------------- presets

/// Names of the built-in presets, in display order. Each is also shipped
/// as scenarios/<name>.datc (generated by `datc scenario emit`).
[[nodiscard]] const std::vector<std::string>& preset_names();

/// One-line description of a preset (for `datc scenario list`).
[[nodiscard]] std::string preset_summary(const std::string& name);

/// Builds a built-in preset by name. Throws ScenarioError when unknown.
[[nodiscard]] ScenarioSpec make_preset(const std::string& name);

/// Loads a scenario from `ref`: an existing file path first, else a
/// built-in preset name. Throws ScenarioError when neither resolves.
[[nodiscard]] ScenarioSpec load_scenario(const std::string& ref);

}  // namespace datc::config
