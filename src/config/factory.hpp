#pragma once
// PipelineFactory: the ONLY place a D-ATC pipeline is wired. Every
// construction path — the batch reference sim (sim::EndToEnd), the
// multi-channel engine (runtime::PipelineRunner), streaming sessions
// (per-channel and shared-AER), and the store's record/replay setup —
// is derived here from one validated ScenarioSpec, so the five paths are
// parameterised identically by construction. The factory-built pipelines
// are bit-identical to the pre-refactor hand-wired ones (gated by
// config_scenario_test's factory-vs-legacy parity suite).

#include <memory>
#include <string>
#include <vector>

#include "config/scenario.hpp"
#include "core/reconstruct.hpp"
#include "emg/dataset.hpp"
#include "fault/fault.hpp"
#include "fault/health.hpp"
#include "runtime/faulty_session.hpp"
#include "runtime/pipeline_runner.hpp"
#include "runtime/session.hpp"
#include "sim/end_to_end.hpp"
#include "sim/evaluation.hpp"
#include "store/recorder.hpp"

namespace datc::config {

class PipelineFactory {
 public:
  /// Validates the spec (throws ScenarioError on any issue).
  explicit PipelineFactory(ScenarioSpec spec);

  [[nodiscard]] const ScenarioSpec& spec() const { return spec_; }

  // ---- derived configuration structs (one mapping each, no restating)
  [[nodiscard]] sim::EvalConfig eval_config() const;
  [[nodiscard]] sim::LinkConfig link_config() const;
  [[nodiscard]] sim::SharedAerConfig shared_config() const;
  [[nodiscard]] runtime::RunnerConfig runner_config() const;
  /// Includes the decode-health thresholds from fault.health_* (disabled
  /// by default, in which case sessions are bit-identical to pre-fault).
  [[nodiscard]] runtime::SessionConfig session_config() const;

  // ---- fault injection (the chaos layer; everything defaults to off)
  /// The spec's fault.* keys as one seeded FaultPlan.
  [[nodiscard]] fault::FaultPlan fault_plan() const;
  /// Decode-health monitor thresholds from fault.health_*.
  [[nodiscard]] fault::LinkHealthConfig health_config() const;
  /// Recorder config for a session directory: store faults armed in the
  /// spec route segment I/O through a seeded FaultyFileIo (owned by the
  /// returned config), otherwise the real filesystem.
  [[nodiscard]] store::RecorderConfig recorder_config(
      const std::string& dir) const;
  /// Wraps a session in a FaultySession (chunk/sensor faults, stream
  /// seeded per `channel_id`) when the spec arms any session fault;
  /// returns the session unchanged otherwise.
  [[nodiscard]] std::unique_ptr<runtime::Session> wrap_session_faults(
      std::unique_ptr<runtime::Session> session,
      std::uint32_t channel_id) const;

  /// The D-ATC rate calibration (expensive Monte Carlo run): built on
  /// first use, shared by every session/reconstructor from this factory.
  [[nodiscard]] core::CalibrationPtr calibration() const;

  // ---- signal source
  [[nodiscard]] emg::RecordingSpec recording_spec(std::size_t channel) const;
  /// Synthesises channel `channel` (fatigue model and artifact injection
  /// applied per the spec).
  [[nodiscard]] emg::Recording make_recording(std::size_t channel) const;
  /// All `source.channels` recordings, in channel order.
  [[nodiscard]] std::vector<emg::Recording> make_recordings() const;

  // ---- the five construction paths
  /// (1) Batch reference pipeline.
  [[nodiscard]] sim::EndToEnd make_end_to_end() const;
  /// (2) High-throughput multi-channel engine (honours aer.topology).
  [[nodiscard]] std::unique_ptr<runtime::PipelineRunner> make_runner() const;
  /// (3) One streaming channel over its private radio.
  [[nodiscard]] std::unique_ptr<runtime::StreamingSession>
  make_streaming_session(std::uint32_t channel_id) const;
  /// (4) All channels streamed over one arbitrated AER radio.
  [[nodiscard]] std::unique_ptr<runtime::SharedAerStreamingSession>
  make_shared_session() const;
  /// (5) Replay setup: the manifest `datc record` persists and
  /// store::replay_envelope rebuilds the receiver from.
  [[nodiscard]] store::SessionManifest manifest(Real duration_s) const;

 private:
  ScenarioSpec spec_;
  mutable core::CalibrationPtr calibration_;  ///< lazy, shared
};

}  // namespace datc::config
