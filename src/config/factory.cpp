#include "config/factory.hpp"

#include "config/scenario.hpp"
#include "core/rate_calibration.hpp"
#include "core/reconstruct.hpp"
#include "core/symbols.hpp"
#include "emg/artifacts.hpp"
#include "emg/dataset.hpp"
#include "emg/fatigue.hpp"
#include "emg/force_profile.hpp"
#include "emg/generator.hpp"
#include "emg/motor_unit.hpp"
#include "fault/fault.hpp"
#include "fault/file_io.hpp"
#include "fault/health.hpp"
#include "runtime/faulty_session.hpp"
#include "runtime/pipeline_runner.hpp"
#include "runtime/session.hpp"
#include "sim/end_to_end.hpp"
#include "sim/stream_parity.hpp"
#include "store/recorder.hpp"
#include "uwb/link_pipeline.hpp"

namespace datc::config {

PipelineFactory::PipelineFactory(ScenarioSpec spec)
    : spec_(std::move(spec)) {
  spec_.validate_or_throw();
}

sim::EvalConfig PipelineFactory::eval_config() const {
  sim::EvalConfig eval;
  eval.window_s = spec_.encoder.window_s;
  eval.datc_clock_hz = spec_.encoder.clock_hz;
  eval.dtc.dac_bits = spec_.encoder.dac_bits;
  eval.dtc.frame = spec_.encoder.frame;
  eval.dac_vref = spec_.encoder.dac_vref;
  eval.analog_fs_hz = spec_.source.sample_rate_hz;
  eval.band_lo_hz = spec_.encoder.band_lo_hz;
  eval.band_hi_hz = spec_.encoder.band_hi_hz;
  eval.datc_mode = spec_.recon.mode == ReconMode::kCodeDuty
                       ? core::DatcDecodeMode::kCodeDuty
                       : core::DatcDecodeMode::kRateInversion;
  return eval;
}

sim::LinkConfig PipelineFactory::link_config() const {
  sim::LinkConfig link;
  link.seed = spec_.link.seed;
  link.modulator.shape.amplitude_v = spec_.link.pulse_amplitude_v;
  link.modulator.symbol_period_s = spec_.link.symbol_period_s;
  link.modulator.code_bits = spec_.encoder.dac_bits;
  link.channel.distance_m = spec_.link.distance_m;
  link.channel.ref_loss_db = spec_.link.ref_loss_db;
  link.channel.path_loss_exponent = spec_.link.path_loss_exponent;
  link.channel.erasure_prob = spec_.link.erasure_prob;
  link.channel.jitter_rms_s = spec_.link.jitter_rms_s;
  link.detector.false_alarm_prob = spec_.link.false_alarm_prob;
  return link;
}

sim::SharedAerConfig PipelineFactory::shared_config() const {
  sim::SharedAerConfig shared;
  shared.aer.address_bits = spec_.resolved_address_bits();
  shared.aer.min_spacing_s = spec_.aer.min_spacing_s;
  shared.aer.max_queue_delay_s = spec_.aer.max_queue_delay_s;
  shared.cache_detection = spec_.link.cache_detection;
  return shared;
}

runtime::RunnerConfig PipelineFactory::runner_config() const {
  runtime::RunnerConfig cfg;
  cfg.jobs = spec_.session.jobs;
  cfg.link_mode = spec_.aer.topology == LinkTopology::kSharedAer
                      ? runtime::LinkMode::kSharedAer
                      : runtime::LinkMode::kPerChannel;
  cfg.shared = shared_config();
  cfg.eval = eval_config();
  cfg.link = link_config();
  return cfg;
}

core::CalibrationPtr PipelineFactory::calibration() const {
  if (calibration_ == nullptr) {
    const auto eval = eval_config();
    calibration_ = core::shared_rate_calibration(
        sim::calibration_config(eval, eval.datc_clock_hz));
  }
  return calibration_;
}

runtime::SessionConfig PipelineFactory::session_config() const {
  // Streaming reconstruction implements the rate-inversion decoder only;
  // refuse rather than silently decode differently from the batch path.
  if (spec_.recon.mode != ReconMode::kRateInversion) {
    throw ScenarioError(
        "scenario '" + spec_.name +
        "': streaming sessions support recon.mode = rate-inversion only");
  }
  auto cfg = sim::make_session_config(eval_config(), link_config(),
                                      calibration());
  cfg.cache_detection = spec_.link.cache_detection;
  cfg.health = health_config();
  return cfg;
}

fault::FaultPlan PipelineFactory::fault_plan() const {
  fault::FaultPlan plan;
  plan.seed = spec_.fault.seed;
  plan.store.write_fail_prob = spec_.fault.store_write_fail_prob;
  plan.store.fsync_fail_prob = spec_.fault.store_fsync_fail_prob;
  plan.store.enospc_every_ops = spec_.fault.store_enospc_every_ops;
  plan.store.enospc_window_ops = spec_.fault.store_enospc_window_ops;
  plan.session.chunk_drop_prob = spec_.fault.chunk_drop_prob;
  plan.session.chunk_dup_prob = spec_.fault.chunk_dup_prob;
  plan.session.chunk_stall_prob = spec_.fault.chunk_stall_prob;
  plan.session.chunk_stall_ms = spec_.fault.chunk_stall_ms;
  plan.session.chunk_poison_prob = spec_.fault.chunk_poison_prob;
  plan.session.sensor_dropout_prob = spec_.fault.sensor_dropout_prob;
  plan.session.sensor_saturate_prob = spec_.fault.sensor_saturate_prob;
  plan.session.sensor_rail_v = spec_.fault.sensor_rail_v;
  return plan;
}

fault::LinkHealthConfig PipelineFactory::health_config() const {
  fault::LinkHealthConfig health;
  health.starvation_s = spec_.fault.health_starvation_s;
  health.bad_rate = spec_.fault.health_bad_rate;
  health.window_s = spec_.fault.health_window_s;
  return health;
}

store::RecorderConfig PipelineFactory::recorder_config(
    const std::string& dir) const {
  store::RecorderConfig cfg;
  cfg.log.dir = dir;
  const auto plan = fault_plan();
  if (plan.store.any()) {
    cfg.log.io = std::make_shared<fault::FaultyFileIo>(plan.store,
                                                       plan.store_seed());
  }
  return cfg;
}

std::unique_ptr<runtime::Session> PipelineFactory::wrap_session_faults(
    std::unique_ptr<runtime::Session> session,
    std::uint32_t channel_id) const {
  const auto plan = fault_plan();
  if (!plan.session.any()) return session;
  return std::make_unique<runtime::FaultySession>(
      std::move(session), plan.session, plan.session_seed(channel_id));
}

emg::RecordingSpec PipelineFactory::recording_spec(
    std::size_t channel) const {
  emg::RecordingSpec rs;
  rs.seed = spec_.source.seed + channel;
  rs.sample_rate_hz = spec_.source.sample_rate_hz;
  rs.duration_s = spec_.source.duration_s;
  rs.gain_v = spec_.gain_for_channel(channel);
  rs.start_mvc = spec_.source.start_mvc;
  rs.model = spec_.source.model == SourceModel::kFilteredNoise
                 ? emg::EmgModel::kFilteredNoise
                 : emg::EmgModel::kMotorUnitPool;
  rs.name = spec_.name + "-ch" + std::to_string(channel);
  return rs;
}

emg::Recording PipelineFactory::make_recording(std::size_t channel) const {
  const auto rs = recording_spec(channel);
  emg::Recording rec;
  if (spec_.source.model == SourceModel::kFatigued) {
    // Mirrors emg::make_recording's seeding (protocol then synthesis from
    // one stream) with the fatigue-capable synthesiser.
    dsp::Rng rng(rs.seed);
    rec.spec = rs;
    rec.force = emg::grip_protocol(rng, rs.start_mvc, rs.duration_s,
                                   rs.sample_rate_hz);
    emg::FatigueConfig fatigue;
    fatigue.tau_s = spec_.source.fatigue_tau_s;
    fatigue.sigma_stretch = spec_.source.fatigue_sigma_stretch;
    fatigue.amplitude_gain = spec_.source.fatigue_amplitude_gain;
    rec.emg_v = emg::synthesize_fatigued(rec.force,
                                         emg::MotorUnitPoolConfig{}, fatigue,
                                         rng);
    for (auto& v : rec.emg_v.samples()) v *= rs.gain_v;
  } else {
    rec = emg::make_recording(rs);
  }
  if (spec_.has_artifacts()) {
    emg::ArtifactConfig art;
    art.powerline_amplitude = spec_.source.powerline_amplitude_v;
    art.powerline_freq_hz = spec_.source.powerline_freq_hz;
    art.baseline_wander_amp = spec_.source.baseline_wander_amp_v;
    art.baseline_wander_hz = spec_.source.baseline_wander_hz;
    art.motion_burst_rate_hz = spec_.source.motion_burst_rate_hz;
    art.motion_burst_amp = spec_.source.motion_burst_amp_v;
    art.spike_rate_hz = spec_.source.spike_rate_hz;
    art.spike_amp = spec_.source.spike_amp_v;
    dsp::Rng rng(spec_.source.artifact_seed ^
                 static_cast<std::uint64_t>(channel));
    emg::inject_artifacts(rec.emg_v, art, rng);
  }
  return rec;
}

std::vector<emg::Recording> PipelineFactory::make_recordings() const {
  std::vector<emg::Recording> recs;
  recs.reserve(spec_.source.channels);
  for (std::size_t c = 0; c < spec_.source.channels; ++c) {
    recs.push_back(make_recording(c));
  }
  return recs;
}

sim::EndToEnd PipelineFactory::make_end_to_end() const {
  return sim::EndToEnd(eval_config(), link_config());
}

std::unique_ptr<runtime::PipelineRunner> PipelineFactory::make_runner()
    const {
  return std::make_unique<runtime::PipelineRunner>(runner_config());
}

std::unique_ptr<runtime::StreamingSession>
PipelineFactory::make_streaming_session(std::uint32_t channel_id) const {
  return std::make_unique<runtime::StreamingSession>(session_config(),
                                                     channel_id);
}

std::unique_ptr<runtime::SharedAerStreamingSession>
PipelineFactory::make_shared_session() const {
  return std::make_unique<runtime::SharedAerStreamingSession>(
      session_config(), shared_config(), spec_.source.channels);
}

store::SessionManifest PipelineFactory::manifest(Real duration_s) const {
  return sim::make_session_manifest(eval_config(), spec_.session.channel,
                                    duration_s);
}

}  // namespace datc::config
