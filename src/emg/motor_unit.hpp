#pragma once
// Fuglevand-style motor-unit pool model of surface EMG generation
// (Fuglevand, Winter & Patla 1993). Units are recruited by the size
// principle; each active unit fires stochastically and contributes a
// biphasic motor-unit action potential (MUAP) to the surface signal.
//
// This is the physiological substitute for the paper's 190 recorded
// patterns: the encoding schemes only see the resulting amplitude
// statistics and 20-450 Hz bandwidth, both of which this model reproduces.

#include <cstdint>
#include <vector>

#include "dsp/rng.hpp"
#include "dsp/types.hpp"
#include "emg/force_profile.hpp"

namespace datc::emg {

/// Parameters of the motor-unit pool. Defaults follow the classic
/// Fuglevand configuration scaled for a forearm-flexor surface recording.
struct MotorUnitPoolConfig {
  std::size_t num_units{120};
  Real recruitment_range{30.0};   ///< RTE_max / RTE_min (exp distribution)
  Real amplitude_range{30.0};     ///< largest/smallest MUAP amplitude
  Real min_rate_hz{8.0};          ///< firing rate at recruitment
  Real peak_rate_hz{35.0};        ///< saturation firing rate
  Real rate_gain_hz{40.0};        ///< Hz of rate per unit of excitation
  Real isi_cv{0.2};               ///< ISI coefficient of variation
  Real muap_sigma_s{0.6e-3};      ///< MUAP half-width of the smallest unit
  Real muap_sigma_spread{1.4};    ///< duration ratio largest/smallest unit
  Real noise_rms{0.01};           ///< additive measurement noise (relative)
};

/// One motor unit's static properties.
struct MotorUnit {
  Real recruitment_threshold{};  ///< excitation at which the unit turns on
  Real amplitude{};              ///< MUAP peak amplitude (arbitrary units)
  Real sigma_s{};                ///< MUAP time constant
};

/// Generates surface EMG from an excitation (% MVC) trajectory.
///
/// The output is normalised so that a sustained 100 % MVC contraction has
/// an ARV of approximately 1.0 "unit"; the analog front end then applies
/// the subject/electrode gain.
class MotorUnitPool {
 public:
  MotorUnitPool(const MotorUnitPoolConfig& config, dsp::Rng rng);

  /// Synthesises sEMG driven by `drive` (values in [0, 1]).
  /// Output sample rate equals the drive's.
  [[nodiscard]] dsp::TimeSeries synthesize(const ForceProfile& drive);

  [[nodiscard]] const std::vector<MotorUnit>& units() const { return units_; }
  [[nodiscard]] const MotorUnitPoolConfig& config() const { return config_; }

  /// Instantaneous firing rate of unit `u` at excitation `e` (Hz; 0 when
  /// not recruited). Exposed for tests of the recruitment model.
  [[nodiscard]] Real firing_rate(std::size_t u, Real e) const;

 private:
  MotorUnitPoolConfig config_;
  dsp::Rng rng_;
  std::vector<MotorUnit> units_;
  Real arv_norm_{1.0};  ///< normalisation so ARV(100% MVC) ~ 1

  [[nodiscard]] std::vector<Real> muap_waveform(const MotorUnit& mu,
                                                Real fs_hz) const;
};

}  // namespace datc::emg
