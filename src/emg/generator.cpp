#include "emg/generator.hpp"

#include <cmath>
#include <numbers>

#include "dsp/biquad.hpp"
#include "dsp/filter_design.hpp"
#include "dsp/stats.hpp"
#include "dsp/types.hpp"
#include "emg/force_profile.hpp"
#include "emg/motor_unit.hpp"

namespace datc::emg {

dsp::TimeSeries synthesize_filtered_noise(const ForceProfile& drive,
                                          const FilteredNoiseConfig& config,
                                          dsp::Rng& rng) {
  const Real fs = drive.sample_rate_hz;
  dsp::require(config.band_hi_hz < fs / 2.0,
               "synthesize_filtered_noise: band exceeds Nyquist");
  const std::size_t n = drive.fraction_mvc.size();
  std::vector<Real> white(n);
  for (auto& v : white) v = rng.gaussian();
  dsp::BiquadCascade band(dsp::butterworth_bandpass(
      config.filter_order, config.band_lo_hz, config.band_hi_hz, fs));
  auto shaped = band.filter(white);

  // Normalise the carrier to unit ARV, then amplitude-modulate by the drive.
  Real arv = 0.0;
  for (const Real v : shaped) arv += std::abs(v);
  arv /= static_cast<Real>(std::max<std::size_t>(n, 1));
  const Real norm = arv > 0.0 ? 1.0 / arv : 1.0;
  for (std::size_t i = 0; i < n; ++i) {
    shaped[i] = shaped[i] * norm * drive.fraction_mvc[i] +
                config.noise_floor_rms * rng.gaussian();
  }
  return dsp::TimeSeries(std::move(shaped), fs);
}

dsp::TimeSeries synthesize_pool(const ForceProfile& drive,
                                const MotorUnitPoolConfig& config,
                                dsp::Rng& rng) {
  MotorUnitPool pool(config, rng.fork());
  return pool.synthesize(drive);
}

dsp::TimeSeries synthesize(EmgModel model, const ForceProfile& drive,
                           dsp::Rng& rng) {
  switch (model) {
    case EmgModel::kMotorUnitPool:
      return synthesize_pool(drive, MotorUnitPoolConfig{}, rng);
    case EmgModel::kFilteredNoise:
      return synthesize_filtered_noise(drive, FilteredNoiseConfig{}, rng);
  }
  throw std::logic_error("synthesize: unknown model");
}

}  // namespace datc::emg
