#pragma once
// Interference and artifact models. The paper argues D-ATC tolerates
// artifact-induced extra pulses ("artifacts effect is similar to pulse
// missing"); these injectors let the robustness benches test that claim.

#include "dsp/rng.hpp"
#include "dsp/types.hpp"

namespace datc::emg {

using dsp::Real;

struct ArtifactConfig {
  Real powerline_amplitude{0.0};   ///< 50 Hz interference amplitude (V)
  Real powerline_freq_hz{50.0};
  Real baseline_wander_amp{0.0};   ///< slow drift amplitude (V)
  Real baseline_wander_hz{0.3};
  Real motion_burst_rate_hz{0.0};  ///< expected bursts per second
  Real motion_burst_amp{0.0};      ///< burst peak amplitude (V)
  Real spike_rate_hz{0.0};         ///< random impulse artifacts per second
  Real spike_amp{0.0};
};

/// Adds the configured artifacts to a signal in place, drawing randomness
/// from `rng`. Returns the number of motion bursts + spikes injected, so
/// tests can assert the injection actually happened.
std::size_t inject_artifacts(dsp::TimeSeries& signal,
                             const ArtifactConfig& config, dsp::Rng& rng);

/// Adds white Gaussian noise with the given RMS; returns the same signal.
void add_white_noise(dsp::TimeSeries& signal, Real rms, dsp::Rng& rng);

/// Scales a signal so that its ARV over the whole record equals
/// `target_arv`. Throws if the signal is identically zero.
void normalize_arv(dsp::TimeSeries& signal, Real target_arv);

}  // namespace datc::emg
