#include "emg/force_profile.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "dsp/biquad.hpp"
#include "dsp/filter_design.hpp"
#include "dsp/types.hpp"

namespace datc::emg {
namespace {

std::size_t count_samples(Real duration_s, Real fs_hz) {
  dsp::require(duration_s > 0.0 && fs_hz > 0.0,
               "force profile: duration and fs must be positive");
  return static_cast<std::size_t>(std::llround(duration_s * fs_hz));
}

void check_level(Real level) {
  dsp::require(level >= 0.0 && level <= 1.0,
               "force profile: MVC fraction must lie in [0,1]");
}

}  // namespace

ForceProfile constant_force(Real level, Real duration_s, Real fs_hz) {
  check_level(level);
  ForceProfile p;
  p.sample_rate_hz = fs_hz;
  p.fraction_mvc.assign(count_samples(duration_s, fs_hz), level);
  return p;
}

ForceProfile trapezoid_force(Real level, Real ramp_s, Real hold_s, Real rest_s,
                             Real fs_hz) {
  check_level(level);
  const auto n_ramp = count_samples(std::max(ramp_s, 1.0 / fs_hz), fs_hz);
  const auto n_hold = count_samples(std::max(hold_s, 1.0 / fs_hz), fs_hz);
  const auto n_rest = count_samples(std::max(rest_s, 1.0 / fs_hz), fs_hz);
  ForceProfile p;
  p.sample_rate_hz = fs_hz;
  auto& f = p.fraction_mvc;
  f.insert(f.end(), n_rest, 0.0);
  for (std::size_t i = 0; i < n_ramp; ++i) {
    f.push_back(level * static_cast<Real>(i) / static_cast<Real>(n_ramp));
  }
  f.insert(f.end(), n_hold, level);
  for (std::size_t i = 0; i < n_ramp; ++i) {
    f.push_back(level *
                (1.0 - static_cast<Real>(i) / static_cast<Real>(n_ramp)));
  }
  f.insert(f.end(), n_rest, 0.0);
  return p;
}

ForceProfile staircase_force(Real start_level, std::size_t num_steps,
                             Real step_duration_s, Real fs_hz) {
  check_level(start_level);
  dsp::require(num_steps >= 1, "staircase_force: need at least one step");
  ForceProfile p;
  p.sample_rate_hz = fs_hz;
  const auto n_step = count_samples(step_duration_s, fs_hz);
  for (std::size_t s = 0; s < num_steps; ++s) {
    const Real level = start_level *
                       (1.0 - static_cast<Real>(s) /
                                  static_cast<Real>(num_steps - 1 == 0
                                                        ? 1
                                                        : num_steps - 1));
    p.fraction_mvc.insert(p.fraction_mvc.end(), n_step,
                          std::max(level, 0.0));
  }
  return p;
}

ForceProfile sinusoid_force(Real offset, Real amp, Real freq_hz,
                            Real duration_s, Real fs_hz) {
  const auto n = count_samples(duration_s, fs_hz);
  ForceProfile p;
  p.sample_rate_hz = fs_hz;
  p.fraction_mvc.resize(n);
  constexpr Real kTwoPi = 2.0 * std::numbers::pi_v<Real>;
  for (std::size_t i = 0; i < n; ++i) {
    const Real t = static_cast<Real>(i) / fs_hz;
    p.fraction_mvc[i] =
        std::clamp(offset + amp * std::sin(kTwoPi * freq_hz * t), 0.0, 1.0);
  }
  return p;
}

ForceProfile grip_protocol(dsp::Rng& rng, Real start_level, Real duration_s,
                           Real fs_hz) {
  check_level(start_level);
  const auto n_total = count_samples(duration_s, fs_hz);
  ForceProfile p;
  p.sample_rate_hz = fs_hz;
  p.fraction_mvc.reserve(n_total);

  // Plateau levels descend from start_level to 0 with multiplicative jitter;
  // plateau durations are 1.5-3.5 s with brief relaxations in between.
  Real level = start_level;
  while (p.fraction_mvc.size() < n_total) {
    const Real plateau_s = rng.uniform(1.5, 3.5);
    const Real gap_s = rng.uniform(0.3, 0.8);
    const auto n_plateau = count_samples(plateau_s, fs_hz);
    const auto n_gap = count_samples(gap_s, fs_hz);
    const Real jittered =
        std::clamp(level * rng.uniform(0.85, 1.1), 0.0, 1.0);
    for (std::size_t i = 0; i < n_plateau && p.fraction_mvc.size() < n_total;
         ++i) {
      // Small physiological tremor on top of the plateau.
      p.fraction_mvc.push_back(
          std::clamp(jittered * (1.0 + 0.03 * rng.gaussian()), 0.0, 1.0));
    }
    for (std::size_t i = 0; i < n_gap && p.fraction_mvc.size() < n_total;
         ++i) {
      p.fraction_mvc.push_back(0.0);
    }
    level = std::max(0.0, level - start_level * rng.uniform(0.12, 0.25));
  }
  p.fraction_mvc.resize(n_total);
  return smooth_profile(p);
}

ForceProfile smooth_profile(const ForceProfile& p, Real fc_hz) {
  dsp::require(fc_hz > 0.0 && fc_hz < p.sample_rate_hz / 2.0,
               "smooth_profile: cutoff must lie in (0, fs/2)");
  dsp::BiquadCascade lp(
      dsp::butterworth_lowpass(2, fc_hz, p.sample_rate_hz));
  ForceProfile out;
  out.sample_rate_hz = p.sample_rate_hz;
  out.fraction_mvc = lp.filter(p.fraction_mvc);
  for (auto& v : out.fraction_mvc) v = std::clamp(v, 0.0, 1.0);
  return out;
}

}  // namespace datc::emg
