#include "dsp/types.hpp"
#include "emg/force_profile.hpp"
#include "emg/motor_unit.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>

namespace datc::emg {
namespace {

/// Normalised biphasic MUAP shape: h(x) = x * exp(-x^2 / 2), peak ~ 0.607.
Real muap_shape(Real x) { return x * std::exp(-x * x / 2.0); }

/// Peak of |muap_shape| (at x = 1).
const Real kShapePeak = std::exp(-0.5);

}  // namespace

MotorUnitPool::MotorUnitPool(const MotorUnitPoolConfig& config, dsp::Rng rng)
    : config_(config), rng_(rng) {
  dsp::require(config_.num_units >= 1, "MotorUnitPool: need >= 1 unit");
  dsp::require(config_.recruitment_range > 1.0 &&
                   config_.amplitude_range >= 1.0,
               "MotorUnitPool: ranges must exceed 1");
  dsp::require(config_.peak_rate_hz >= config_.min_rate_hz &&
                   config_.min_rate_hz > 0.0,
               "MotorUnitPool: rates must satisfy 0 < min <= peak");

  const auto n = config_.num_units;
  units_.resize(n);
  // All units are recruited by 70 % excitation (upper recruitment limit for
  // hand muscles); recruitment thresholds and amplitudes follow the
  // exponential size-principle distributions of Fuglevand et al.
  constexpr Real kMaxRecruitExcitation = 0.7;
  for (std::size_t i = 0; i < n; ++i) {
    const Real frac =
        n == 1 ? 0.0
               : static_cast<Real>(i) / static_cast<Real>(n - 1);
    units_[i].recruitment_threshold =
        kMaxRecruitExcitation *
        std::exp(std::log(config_.recruitment_range) * (frac - 1.0));
    units_[i].amplitude =
        std::exp(std::log(config_.amplitude_range) * frac);
    units_[i].sigma_s =
        config_.muap_sigma_s *
        (1.0 + (config_.muap_sigma_spread - 1.0) * frac);
  }

  // Campbell's theorem calibration: for a shot-noise superposition the
  // variance is sum_i rate_i * integral h_i(t)^2 dt. With h peak-normalised
  // to amplitude a and time constant sigma, integral h^2 = a^2 sigma
  // sqrt(pi)/2 / kShapePeak^2. A dense interference pattern is ~Gaussian,
  // so ARV = sigma_signal * sqrt(2/pi).
  Real var_full = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const Real rate = firing_rate(i, 1.0);
    const Real h2 = units_[i].amplitude * units_[i].amplitude *
                    units_[i].sigma_s * (std::sqrt(std::numbers::pi_v<Real>) / 2.0) /
                    (kShapePeak * kShapePeak);
    var_full += rate * h2;
  }
  const Real arv_full =
      std::sqrt(var_full) * std::sqrt(2.0 / std::numbers::pi_v<Real>);
  dsp::require(arv_full > 0.0, "MotorUnitPool: degenerate calibration");
  arv_norm_ = 1.0 / arv_full;
}

Real MotorUnitPool::firing_rate(std::size_t u, Real e) const {
  dsp::require(u < units_.size(), "firing_rate: unit index out of range");
  const auto& mu = units_[u];
  if (e < mu.recruitment_threshold) return 0.0;
  const Real r = config_.min_rate_hz +
                 config_.rate_gain_hz * (e - mu.recruitment_threshold);
  return std::min(r, config_.peak_rate_hz);
}

std::vector<Real> MotorUnitPool::muap_waveform(const MotorUnit& mu,
                                               Real fs_hz) const {
  // Support of +-4 sigma around the centre.
  const auto half = static_cast<std::size_t>(
      std::ceil(4.0 * mu.sigma_s * fs_hz));
  const std::size_t len = 2 * half + 1;
  std::vector<Real> w(len);
  for (std::size_t i = 0; i < len; ++i) {
    const Real t = (static_cast<Real>(i) - static_cast<Real>(half)) / fs_hz;
    w[i] = mu.amplitude * muap_shape(t / mu.sigma_s) / kShapePeak;
  }
  return w;
}

dsp::TimeSeries MotorUnitPool::synthesize(const ForceProfile& drive) {
  const Real fs = drive.sample_rate_hz;
  dsp::require(fs > 0.0, "synthesize: sample rate must be positive");
  const std::size_t n = drive.fraction_mvc.size();
  std::vector<Real> out(n, 0.0);
  if (n == 0) return dsp::TimeSeries(std::move(out), fs);

  // Precompute MUAP kernels.
  std::vector<std::vector<Real>> kernels;
  kernels.reserve(units_.size());
  for (const auto& mu : units_) kernels.push_back(muap_waveform(mu, fs));

  // Per-unit firing state: time of next spike (in samples); negative means
  // currently de-recruited.
  constexpr Real kInactive = -1.0;
  std::vector<Real> next_spike(units_.size(), kInactive);

  const Real min_isi_frac = 0.3;  // refractory floor as a fraction of 1/rate
  for (std::size_t s = 0; s < n; ++s) {
    const Real e = std::clamp(drive.fraction_mvc[s], 0.0, 1.0);
    for (std::size_t u = 0; u < units_.size(); ++u) {
      const Real rate = firing_rate(u, e);
      if (rate <= 0.0) {
        next_spike[u] = kInactive;
        continue;
      }
      const Real mean_isi_samples = fs / rate;
      if (next_spike[u] < 0.0) {
        // Newly recruited: random phase within one ISI.
        next_spike[u] = static_cast<Real>(s) +
                        rng_.uniform() * mean_isi_samples;
      }
      while (next_spike[u] <= static_cast<Real>(s)) {
        // Stamp this unit's MUAP centred at the spike sample.
        const auto& k = kernels[u];
        const auto half = (k.size() - 1) / 2;
        const auto centre = static_cast<std::ptrdiff_t>(
            std::llround(next_spike[u]));
        for (std::size_t j = 0; j < k.size(); ++j) {
          const std::ptrdiff_t idx =
              centre + static_cast<std::ptrdiff_t>(j) -
              static_cast<std::ptrdiff_t>(half);
          if (idx >= 0 && idx < static_cast<std::ptrdiff_t>(n)) {
            out[static_cast<std::size_t>(idx)] += k[j];
          }
        }
        const Real isi =
            mean_isi_samples *
            std::max(min_isi_frac,
                     1.0 + config_.isi_cv * rng_.gaussian());
        next_spike[u] += isi;
      }
    }
  }

  // Normalise so ARV at sustained 100 % MVC ~ 1, then add measurement noise.
  for (auto& v : out) v *= arv_norm_;
  if (config_.noise_rms > 0.0) {
    for (auto& v : out) v += config_.noise_rms * rng_.gaussian();
  }
  return dsp::TimeSeries(std::move(out), fs);
}

}  // namespace datc::emg
