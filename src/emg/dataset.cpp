#include "dsp/types.hpp"
#include "emg/dataset.hpp"
#include "emg/force_profile.hpp"
#include "emg/generator.hpp"

#include <cmath>
#include <limits>

namespace datc::emg {

DatasetFactory::DatasetFactory(DatasetConfig config)
    : config_(std::move(config)) {
  dsp::require(config_.num_patterns >= 1 && config_.num_subjects >= 1,
               "DatasetFactory: need >= 1 pattern and subject");
  dsp::require(config_.gain_lo_v > 0.0 &&
                   config_.gain_hi_v >= config_.gain_lo_v,
               "DatasetFactory: invalid gain range");

  dsp::Rng rng(config_.base_seed);
  // Per-subject base gains: log-uniform across the population spread.
  std::vector<Real> subject_gain(config_.num_subjects);
  for (auto& g : subject_gain) {
    g = rng.log_uniform(config_.gain_lo_v, config_.gain_hi_v);
  }

  specs_.reserve(config_.num_patterns);
  for (std::size_t i = 0; i < config_.num_patterns; ++i) {
    RecordingSpec spec;
    spec.seed = rng.integer(1, std::numeric_limits<std::uint64_t>::max() / 2);
    spec.sample_rate_hz = config_.sample_rate_hz;
    spec.duration_s = config_.duration_s;
    const std::size_t subject = i % config_.num_subjects;
    // Session-to-session electrode variability on top of the subject gain.
    spec.gain_v = subject_gain[subject] * rng.uniform(0.8, 1.25);
    spec.start_mvc = 0.7;
    spec.model = config_.model;
    spec.name = "subj" + std::to_string(subject + 1) + "_pat" +
                std::to_string(i + 1);
    specs_.push_back(std::move(spec));
  }
}

Recording DatasetFactory::make(std::size_t index) const {
  dsp::require(index < specs_.size(), "DatasetFactory::make: index range");
  return make_recording(specs_[index]);
}

std::vector<Recording> DatasetFactory::make_all() const {
  std::vector<Recording> out;
  out.reserve(specs_.size());
  for (const auto& s : specs_) out.push_back(make_recording(s));
  return out;
}

Recording make_recording(const RecordingSpec& spec) {
  dsp::Rng rng(spec.seed);
  Recording rec;
  rec.spec = spec;
  rec.force = grip_protocol(rng, spec.start_mvc, spec.duration_s,
                            spec.sample_rate_hz);
  rec.emg_v = synthesize(spec.model, rec.force, rng);
  // Scale from normalised units (ARV(100 % MVC) ~ 1) to volts.
  for (auto& v : rec.emg_v.samples()) v *= spec.gain_v;
  return rec;
}

Recording showcase_recording() {
  RecordingSpec spec;
  spec.seed = 4221;  // chosen for clear high- and low-force episodes
  spec.sample_rate_hz = 2500.0;
  spec.duration_s = 20.0;
  spec.gain_v = 0.28;  // puts ATC(0.3 V) in the paper's ~91 % regime
  spec.start_mvc = 0.7;
  spec.model = EmgModel::kMotorUnitPool;
  spec.name = "showcase";
  return make_recording(spec);
}

}  // namespace datc::emg
