#pragma once
// Muscle-force (% MVC) trajectory generators. The paper's dataset follows a
// cylindrical power-grip protocol sweeping from 70 % MVC down to 0 %; these
// profiles drive the motor-unit pool in src/emg/motor_unit.hpp.

#include <vector>

#include "dsp/rng.hpp"
#include "dsp/types.hpp"

namespace datc::emg {

using dsp::Real;

/// A force profile is a normalised excitation trajectory in [0, 1]
/// (fraction of MVC) sampled at a given rate.
struct ForceProfile {
  std::vector<Real> fraction_mvc;  ///< values in [0, 1]
  Real sample_rate_hz{1.0};

  [[nodiscard]] dsp::TimeSeries as_series() const {
    return dsp::TimeSeries(fraction_mvc, sample_rate_hz);
  }
};

/// Constant hold at `level` MVC.
[[nodiscard]] ForceProfile constant_force(Real level, Real duration_s,
                                          Real fs_hz);

/// Trapezoid: rest, linear ramp up to `level`, hold, ramp down, rest.
[[nodiscard]] ForceProfile trapezoid_force(Real level, Real ramp_s,
                                           Real hold_s, Real rest_s,
                                           Real fs_hz);

/// Descending staircase from `start_level` to 0 in `num_steps` plateaus —
/// the paper's 70 % -> 0 % MVC grip protocol.
[[nodiscard]] ForceProfile staircase_force(Real start_level,
                                           std::size_t num_steps,
                                           Real step_duration_s, Real fs_hz);

/// Sinusoidal modulation: offset + amp * sin(2*pi*f*t), clamped to [0, 1].
[[nodiscard]] ForceProfile sinusoid_force(Real offset, Real amp, Real freq_hz,
                                          Real duration_s, Real fs_hz);

/// Randomised grip-session protocol: a sequence of plateaus whose levels
/// descend (with jitter) from about `start_level` to 0, separated by short
/// transitions, then low-pass smoothed so the drive is physiological.
/// Total duration is exactly `duration_s`.
[[nodiscard]] ForceProfile grip_protocol(dsp::Rng& rng, Real start_level,
                                         Real duration_s, Real fs_hz);

/// Smooths a profile with a 2nd-order Butterworth low-pass at `fc_hz`
/// (default 2 Hz — voluntary force bandwidth) and clamps to [0, 1].
[[nodiscard]] ForceProfile smooth_profile(const ForceProfile& p,
                                          Real fc_hz = 2.0);

}  // namespace datc::emg
