#pragma once
// Synthetic reproduction of the paper's measurement campaign: 190 sEMG
// patterns from 8 subjects (cylindrical power grip, 70 % MVC -> 0 %,
// 50 000 samples over 20 s). Subjects differ in effective gain — the
// skin-thickness / gender / electrode-placement variability that defeats a
// fixed threshold in the paper — modelled as a log-uniform spread of the
// full-MVC ARV expressed in volts at the comparator input.

#include <cstdint>
#include <string>
#include <vector>

#include "dsp/rng.hpp"
#include "dsp/types.hpp"
#include "emg/force_profile.hpp"
#include "emg/generator.hpp"

namespace datc::emg {

/// Parameters describing one synthetic recording.
struct RecordingSpec {
  std::uint64_t seed{0};
  Real sample_rate_hz{2500.0};  ///< 50 000 samples / 20 s
  Real duration_s{20.0};
  Real gain_v{0.5};      ///< ARV at 100 % MVC, in volts after amplification
  Real start_mvc{0.7};   ///< protocol starts at 70 % MVC
  EmgModel model{EmgModel::kMotorUnitPool};
  std::string name;
};

/// One synthesised recording plus its ground truth.
struct Recording {
  RecordingSpec spec;
  dsp::TimeSeries emg_v;     ///< amplified sEMG in volts (bipolar)
  ForceProfile force;        ///< the drive that generated it (fraction MVC)
};

/// Configuration of the whole dataset.
struct DatasetConfig {
  std::size_t num_patterns{190};
  std::size_t num_subjects{8};
  std::uint64_t base_seed{20150309};  ///< DATE'15 started March 9, 2015
  // Population spread calibrated so the weakest recordings land at the
  // paper's reported D-ATC correlation floor (~85 %, Fig. 5) while still
  // defeating the fixed 0.3 V threshold (ATC floor ~47 %).
  Real gain_lo_v{0.16};  ///< weakest subject/electrode combination
  Real gain_hi_v{0.85};  ///< strongest
  Real sample_rate_hz{2500.0};
  Real duration_s{20.0};
  EmgModel model{EmgModel::kMotorUnitPool};
};

/// Deterministic factory: the same config always produces the same specs
/// and recordings.
class DatasetFactory {
 public:
  explicit DatasetFactory(DatasetConfig config);

  /// Specs of all patterns (cheap; no synthesis performed).
  [[nodiscard]] const std::vector<RecordingSpec>& specs() const {
    return specs_;
  }

  /// Synthesises pattern `index`.
  [[nodiscard]] Recording make(std::size_t index) const;

  /// Synthesises every pattern (the Fig. 5 sweep).
  [[nodiscard]] std::vector<Recording> make_all() const;

  [[nodiscard]] const DatasetConfig& config() const { return config_; }

 private:
  DatasetConfig config_;
  std::vector<RecordingSpec> specs_;
};

/// Synthesises a single recording from its spec (usable without a factory).
[[nodiscard]] Recording make_recording(const RecordingSpec& spec);

/// The paper's "showcase" recording used by Figs. 3 and 6: a mid-gain
/// pattern with clear high- and low-amplitude episodes.
[[nodiscard]] Recording showcase_recording();

}  // namespace datc::emg
