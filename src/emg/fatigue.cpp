#include "dsp/types.hpp"
#include "emg/fatigue.hpp"
#include "emg/force_profile.hpp"
#include "emg/motor_unit.hpp"

#include <algorithm>
#include <cmath>

namespace datc::emg {

std::vector<Real> fatigue_trajectory(const ForceProfile& drive,
                                     const FatigueConfig& f) {
  dsp::require(f.tau_s > 0.0, "fatigue_trajectory: tau must be positive");
  std::vector<Real> state(drive.fraction_mvc.size(), 0.0);
  const Real dt = 1.0 / drive.sample_rate_hz;
  Real x = 0.0;
  for (std::size_t i = 0; i < state.size(); ++i) {
    // Effort accumulates towards 1 under drive, recovers towards 0 at
    // rest, both with time constant tau (recovery ~3x slower).
    const Real e = std::clamp(drive.fraction_mvc[i], 0.0, 1.0);
    const Real target = e;
    const Real tau = e > x ? f.tau_s : 3.0 * f.tau_s;
    x += (target - x) * dt / tau;
    state[i] = std::clamp(x, 0.0, 1.0);
  }
  return state;
}

dsp::TimeSeries synthesize_fatigued(const ForceProfile& drive,
                                    const MotorUnitPoolConfig& base,
                                    const FatigueConfig& fatigue,
                                    dsp::Rng& rng, Real block_s) {
  dsp::require(block_s > 0.0, "synthesize_fatigued: block must be positive");
  const Real fs = drive.sample_rate_hz;
  const std::size_t n = drive.fraction_mvc.size();
  const auto state = fatigue_trajectory(drive, fatigue);
  std::vector<Real> out;
  out.reserve(n);

  const auto block_len = static_cast<std::size_t>(block_s * fs);
  for (std::size_t start = 0; start < n; start += block_len) {
    const std::size_t len = std::min(block_len, n - start);
    const Real s = state[start + len / 2];
    MotorUnitPoolConfig cfg = base;
    cfg.muap_sigma_s = base.muap_sigma_s *
                       (1.0 + (fatigue.sigma_stretch - 1.0) * s);
    cfg.amplitude_range = base.amplitude_range;
    ForceProfile block;
    block.sample_rate_hz = fs;
    block.fraction_mvc.assign(
        drive.fraction_mvc.begin() + static_cast<std::ptrdiff_t>(start),
        drive.fraction_mvc.begin() + static_cast<std::ptrdiff_t>(start + len));
    MotorUnitPool pool(cfg, rng.fork());
    auto sig = pool.synthesize(block);
    const Real gain = 1.0 + (fatigue.amplitude_gain - 1.0) * s;
    for (const Real v : sig.samples()) out.push_back(v * gain);
  }
  return dsp::TimeSeries(std::move(out), fs);
}

}  // namespace datc::emg
