#pragma once
// End-to-end scheme evaluation on one recording: encode, reconstruct at
// the receiver, and score against the ground-truth ARV envelope — the
// pipeline behind every figure in the paper's evaluation section.

#include <string>

#include "core/atc_encoder.hpp"
#include "core/datc_encoder.hpp"
#include "core/dtc.hpp"
#include "core/rate_calibration.hpp"
#include "core/reconstruct.hpp"
#include "core/symbols.hpp"
#include "emg/dataset.hpp"

namespace datc::emg {

using dsp::Real;

struct EvalConfig {
  Real window_s{0.25};          ///< RX windowing and ground-truth ARV window
  Real datc_clock_hz{2000.0};
  core::DtcConfig dtc{};
  Real dac_vref{1.0};
  Real analog_fs_hz{2500.0};    ///< dataset sample rate (for calibration)
  Real band_lo_hz{20.0};        ///< assumed sEMG band at the receiver
  Real band_hi_hz{450.0};
  core::AtcDecodeMode atc_mode{core::AtcDecodeMode::kLinearRate};
  core::DatcDecodeMode datc_mode{core::DatcDecodeMode::kRateInversion};
};

/// The ONE EvalConfig -> transmitter mapping. Every path that encodes
/// D-ATC (Evaluator, EndToEnd, PipelineRunner, streaming sessions via
/// make_session_config, config::PipelineFactory) derives its encoder from
/// here, so a default cannot drift between them.
[[nodiscard]] core::DatcEncoderConfig datc_encoder_config(
    const EvalConfig& config);

/// The ONE EvalConfig -> receiver-reconstruction mapping (same contract).
/// The DTC interval-table span travels with it, as the reconstructor's
/// code-duty inversion must match the transmitter's Eqn-2 table.
[[nodiscard]] core::ReconstructionConfig datc_reconstruction_config(
    const EvalConfig& config);

/// The ONE EvalConfig -> Monte-Carlo-calibration mapping; `count_fs_hz`
/// is the rate crossings are counted at (DTC clock for D-ATC, the analog
/// rate for ATC).
[[nodiscard]] core::RateCalibrationConfig calibration_config(
    const EvalConfig& config, Real count_fs_hz);

struct SchemeEvaluation {
  std::string scheme;
  std::size_t num_events{0};
  core::SymbolCounts symbols{};
  Real correlation_pct{0.0};
  Real mean_rate_hz{0.0};
  Real duty_cycle{0.0};  ///< comparator duty (diagnostics)
};

/// Builds the (expensive) receiver calibrations once and evaluates many
/// recordings against them.
class Evaluator {
 public:
  explicit Evaluator(const EvalConfig& config = {});

  /// Fixed-threshold ATC at the given threshold voltage.
  [[nodiscard]] SchemeEvaluation atc(const Recording& rec,
                                     Real threshold_v) const;

  /// D-ATC with the configured DTC.
  [[nodiscard]] SchemeEvaluation datc(const Recording& rec) const;

  /// Ground-truth ARV envelope used for scoring.
  [[nodiscard]] std::vector<Real> ground_truth(
      const Recording& rec) const;

  /// Reconstructed envelopes (for benches that print the waveforms).
  [[nodiscard]] std::vector<Real> reconstruct_atc(
      const core::EventStream& events, Real threshold_v,
      Real duration_s) const;
  [[nodiscard]] std::vector<Real> reconstruct_datc(
      const core::EventStream& events, Real duration_s) const;

  [[nodiscard]] const EvalConfig& config() const { return config_; }
  [[nodiscard]] core::CalibrationPtr atc_calibration() const {
    return atc_cal_;
  }
  [[nodiscard]] core::CalibrationPtr datc_calibration() const {
    return datc_cal_;
  }

 private:
  EvalConfig config_;
  core::CalibrationPtr atc_cal_;   ///< crossings counted at the analog rate
  core::CalibrationPtr datc_cal_;  ///< crossings counted at the DTC clock
};

}  // namespace datc::emg
