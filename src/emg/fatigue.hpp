#pragma once
// Muscle-fatigue extension of the synthesiser. Sustained contractions
// slow muscle-fibre conduction velocity, which stretches the MUAPs and
// compresses the sEMG spectrum (the median frequency drops) while the
// amplitude stays similar or grows. A threshold-crossing encoder sees a
// lower crossing rate for the same amplitude, so fatigue is a spectrum
// perturbation the paper's scheme implicitly has to survive — this model
// lets the benches measure by how much.

#include "dsp/types.hpp"
#include "emg/force_profile.hpp"
#include "emg/motor_unit.hpp"

namespace datc::emg {

struct FatigueConfig {
  /// MUAP time constants stretch by this factor at full fatigue (typical
  /// conduction-velocity slowdowns give 1.2-1.6).
  Real sigma_stretch{1.4};
  /// Amplitude change at full fatigue (slight growth is common).
  Real amplitude_gain{1.1};
  /// Time constant of fatigue accumulation under full drive (s).
  Real tau_s{30.0};
};

/// Synthesises sEMG with progressive fatigue: the record is generated in
/// short blocks whose MUAP parameters follow the accumulated fatigue
/// state (effort integrated with time constant tau).
[[nodiscard]] dsp::TimeSeries synthesize_fatigued(
    const ForceProfile& drive, const MotorUnitPoolConfig& base,
    const FatigueConfig& fatigue, dsp::Rng& rng, Real block_s = 1.0);

/// The fatigue state trajectory (0 = fresh, 1 = fully fatigued) for a
/// drive, exposed for tests.
[[nodiscard]] std::vector<Real> fatigue_trajectory(const ForceProfile& drive,
                                                   const FatigueConfig& f);

}  // namespace datc::emg
