#pragma once
// High-level sEMG synthesis entry points. Two models are provided:
//
//  * kMotorUnitPool — physiological Fuglevand pool (default; used for the
//    dataset reproduction),
//  * kFilteredNoise — amplitude-modulated band-limited Gaussian noise
//    (classic phenomenological EMG model; ~20x faster, used by property
//    sweeps that need thousands of records).
//
// Both produce signals normalised so that ARV(100 % MVC) ~ 1 "unit"; the
// analog front end (or the dataset factory) scales that to volts.

#include "dsp/rng.hpp"
#include "dsp/types.hpp"
#include "emg/force_profile.hpp"
#include "emg/motor_unit.hpp"

namespace datc::emg {

enum class EmgModel { kMotorUnitPool, kFilteredNoise };

struct FilteredNoiseConfig {
  Real band_lo_hz{20.0};
  Real band_hi_hz{450.0};
  int filter_order{4};
  Real noise_floor_rms{0.01};  ///< measurement noise relative to MVC ARV
};

/// Band-limited Gaussian noise whose instantaneous ARV tracks the drive.
[[nodiscard]] dsp::TimeSeries synthesize_filtered_noise(
    const ForceProfile& drive, const FilteredNoiseConfig& config,
    dsp::Rng& rng);

/// Physiological synthesis through a freshly constructed motor-unit pool.
[[nodiscard]] dsp::TimeSeries synthesize_pool(const ForceProfile& drive,
                                              const MotorUnitPoolConfig& config,
                                              dsp::Rng& rng);

/// Dispatches on `model` with default per-model configurations.
[[nodiscard]] dsp::TimeSeries synthesize(EmgModel model,
                                         const ForceProfile& drive,
                                         dsp::Rng& rng);

}  // namespace datc::emg
