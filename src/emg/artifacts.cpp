#include "emg/artifacts.hpp"

#include <cmath>
#include <numbers>

#include "dsp/envelope.hpp"
#include "dsp/stats.hpp"
#include "dsp/types.hpp"

namespace datc::emg {
namespace {
constexpr Real kTwoPi = 2.0 * std::numbers::pi_v<Real>;
}

std::size_t inject_artifacts(dsp::TimeSeries& signal,
                             const ArtifactConfig& config, dsp::Rng& rng) {
  const Real fs = signal.sample_rate_hz();
  auto& x = signal.samples();
  const std::size_t n = x.size();
  std::size_t injected = 0;
  if (n == 0) return injected;

  if (config.powerline_amplitude > 0.0) {
    const Real phase = rng.uniform(0.0, kTwoPi);
    for (std::size_t i = 0; i < n; ++i) {
      const Real t = static_cast<Real>(i) / fs;
      x[i] += config.powerline_amplitude *
              std::sin(kTwoPi * config.powerline_freq_hz * t + phase);
    }
  }

  if (config.baseline_wander_amp > 0.0) {
    const Real phase = rng.uniform(0.0, kTwoPi);
    const Real f2 = config.baseline_wander_hz * rng.uniform(1.3, 2.2);
    const Real phase2 = rng.uniform(0.0, kTwoPi);
    for (std::size_t i = 0; i < n; ++i) {
      const Real t = static_cast<Real>(i) / fs;
      x[i] += config.baseline_wander_amp *
              (0.7 * std::sin(kTwoPi * config.baseline_wander_hz * t + phase) +
               0.3 * std::sin(kTwoPi * f2 * t + phase2));
    }
  }

  if (config.motion_burst_rate_hz > 0.0 && config.motion_burst_amp > 0.0) {
    // Poisson bursts: damped 3 Hz oscillations ~0.5 s long.
    const Real p_per_sample = config.motion_burst_rate_hz / fs;
    for (std::size_t i = 0; i < n; ++i) {
      if (!rng.chance(p_per_sample)) continue;
      ++injected;
      const Real burst_f = rng.uniform(2.0, 6.0);
      const Real tau = rng.uniform(0.1, 0.25);
      const auto len = static_cast<std::size_t>(0.6 * fs);
      for (std::size_t j = 0; j < len && i + j < n; ++j) {
        const Real t = static_cast<Real>(j) / fs;
        x[i + j] += config.motion_burst_amp * std::exp(-t / tau) *
                    std::sin(kTwoPi * burst_f * t);
      }
    }
  }

  if (config.spike_rate_hz > 0.0 && config.spike_amp > 0.0) {
    const Real p_per_sample = config.spike_rate_hz / fs;
    for (std::size_t i = 0; i < n; ++i) {
      if (!rng.chance(p_per_sample)) continue;
      ++injected;
      x[i] += (rng.chance(0.5) ? 1.0 : -1.0) * config.spike_amp;
    }
  }
  return injected;
}

void add_white_noise(dsp::TimeSeries& signal, Real rms, dsp::Rng& rng) {
  dsp::require(rms >= 0.0, "add_white_noise: rms must be non-negative");
  if (rms <= 0.0) return;
  for (auto& v : signal.samples()) v += rms * rng.gaussian();
}

void normalize_arv(dsp::TimeSeries& signal, Real target_arv) {
  dsp::require(target_arv > 0.0, "normalize_arv: target must be positive");
  const auto rect = dsp::rectify(signal.view());
  const Real current = dsp::mean(rect);
  dsp::require(current > 0.0, "normalize_arv: signal is identically zero");
  const Real scale = target_arv / current;
  for (auto& v : signal.samples()) v *= scale;
}

}  // namespace datc::emg
