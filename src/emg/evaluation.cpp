#include "emg/evaluation.hpp"

#include "core/atc_encoder.hpp"
#include "core/datc_encoder.hpp"
#include "core/predictor.hpp"
#include "core/rate_calibration.hpp"
#include "core/reconstruct.hpp"
#include "core/symbols.hpp"
#include "dsp/envelope.hpp"
#include "dsp/stats.hpp"
#include "emg/dataset.hpp"

namespace datc::emg {

core::DatcEncoderConfig datc_encoder_config(const EvalConfig& config) {
  core::DatcEncoderConfig enc;
  enc.dtc = config.dtc;
  enc.clock_hz = config.datc_clock_hz;
  enc.dac_vref = config.dac_vref;
  return enc;
}

core::ReconstructionConfig datc_reconstruction_config(
    const EvalConfig& config) {
  core::ReconstructionConfig rc;
  rc.window_s = config.window_s;
  rc.output_fs_hz = config.analog_fs_hz;
  rc.dac_vref = config.dac_vref;
  rc.dac_bits = config.dtc.dac_bits;
  rc.duty_lo = config.dtc.duty_lo;
  rc.duty_hi = config.dtc.duty_hi;
  rc.min_code = config.dtc.min_code;
  return rc;
}

core::RateCalibrationConfig calibration_config(const EvalConfig& config,
                                               Real count_fs_hz) {
  core::RateCalibrationConfig c;
  c.analog_fs_hz = config.analog_fs_hz;
  c.band_lo_hz = config.band_lo_hz;
  c.band_hi_hz = config.band_hi_hz;
  c.count_fs_hz = count_fs_hz;
  return c;
}

Evaluator::Evaluator(const EvalConfig& config) : config_(config) {
  // Memoised: repeated Evaluator construction (scenario grid points,
  // per-point EndToEnd instances) shares the immutable tables.
  atc_cal_ = core::shared_rate_calibration(
      calibration_config(config_, config_.analog_fs_hz));
  datc_cal_ = core::shared_rate_calibration(
      calibration_config(config_, config_.datc_clock_hz));
}

std::vector<Real> Evaluator::ground_truth(const Recording& rec) const {
  return dsp::arv_envelope(rec.emg_v.view(), rec.emg_v.sample_rate_hz(),
                           config_.window_s);
}

std::vector<Real> Evaluator::reconstruct_atc(const core::EventStream& events,
                                             Real threshold_v,
                                             Real duration_s) const {
  const core::AtcReconstructor recon(threshold_v,
                                     datc_reconstruction_config(config_),
                                     atc_cal_, config_.atc_mode);
  return recon.reconstruct(events, duration_s);
}

std::vector<Real> Evaluator::reconstruct_datc(const core::EventStream& events,
                                              Real duration_s) const {
  const core::DatcReconstructor recon(datc_reconstruction_config(config_),
                                      datc_cal_, config_.datc_mode);
  return recon.reconstruct(events, duration_s);
}

SchemeEvaluation Evaluator::atc(const Recording& rec,
                                Real threshold_v) const {
  core::AtcEncoderConfig enc;
  enc.threshold_v = threshold_v;
  const auto result = core::encode_atc(rec.emg_v, enc);
  const Real duration = rec.emg_v.duration_s();

  SchemeEvaluation ev;
  ev.scheme = "ATC(Vth=" + std::to_string(threshold_v).substr(0, 4) + "V)";
  ev.num_events = result.events.size();
  ev.symbols = core::atc_symbols(ev.num_events);
  ev.mean_rate_hz = result.events.mean_rate_hz(duration);
  ev.duty_cycle = result.duty_cycle;

  const auto truth = ground_truth(rec);
  const auto recon = reconstruct_atc(result.events, threshold_v, duration);
  const std::size_t n = std::min(truth.size(), recon.size());
  ev.correlation_pct = dsp::correlation_percent(
      std::span<const Real>(truth.data(), n),
      std::span<const Real>(recon.data(), n));
  return ev;
}

SchemeEvaluation Evaluator::datc(const Recording& rec) const {
  const auto result =
      core::encode_datc(rec.emg_v, datc_encoder_config(config_));
  const Real duration = rec.emg_v.duration_s();

  SchemeEvaluation ev;
  ev.scheme = "D-ATC";
  ev.num_events = result.events.size();
  ev.symbols = core::datc_symbols(ev.num_events, config_.dtc.dac_bits);
  ev.mean_rate_hz = result.events.mean_rate_hz(duration);
  std::size_t ones = 0;
  for (const auto b : result.trace.d_out) ones += b;
  ev.duty_cycle = result.trace.d_out.empty()
                      ? 0.0
                      : static_cast<Real>(ones) /
                            static_cast<Real>(result.trace.d_out.size());

  const auto truth = ground_truth(rec);
  const auto recon = reconstruct_datc(result.events, duration);
  const std::size_t n = std::min(truth.size(), recon.size());
  ev.correlation_pct = dsp::correlation_percent(
      std::span<const Real>(truth.data(), n),
      std::span<const Real>(recon.data(), n));
  return ev;
}

}  // namespace datc::emg
