#include "dsp/fir.hpp"

#include <cmath>
#include <numbers>

#include "dsp/spectral.hpp"
#include "dsp/types.hpp"

namespace datc::dsp {
namespace {
constexpr Real kPi = std::numbers::pi_v<Real>;

Real sinc(Real x) {
  if (std::abs(x) < 1e-12) return 1.0;
  return std::sin(kPi * x) / (kPi * x);
}
}  // namespace

FirFilter::FirFilter(std::vector<Real> taps)
    : taps_(std::move(taps)), delay_(taps_.size(), 0.0) {
  require(!taps_.empty(), "FirFilter: empty tap vector");
}

Real FirFilter::process(Real x) {
  delay_[head_] = x;
  Real acc = 0.0;
  std::size_t idx = head_;
  for (const Real t : taps_) {
    acc += t * delay_[idx];
    idx = (idx == 0) ? delay_.size() - 1 : idx - 1;
  }
  head_ = (head_ + 1) % delay_.size();
  return acc;
}

std::vector<Real> FirFilter::filter(std::span<const Real> x) {
  std::vector<Real> y(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = process(x[i]);
  return y;
}

void FirFilter::reset() {
  std::fill(delay_.begin(), delay_.end(), 0.0);
  head_ = 0;
}

std::vector<Real> design_fir_lowpass(std::size_t num_taps, Real fc_hz,
                                     Real fs_hz) {
  require(num_taps >= 3 && num_taps % 2 == 1,
          "design_fir_lowpass: taps must be odd and >= 3");
  require(fc_hz > 0.0 && fc_hz < fs_hz / 2.0,
          "design_fir_lowpass: cutoff must lie in (0, fs/2)");
  const Real fc_norm = fc_hz / fs_hz;  // cycles/sample
  const auto window = make_window(WindowKind::kHamming, num_taps);
  const auto mid = static_cast<Real>(num_taps - 1) / 2.0;
  std::vector<Real> taps(num_taps);
  Real sum = 0.0;
  for (std::size_t i = 0; i < num_taps; ++i) {
    const Real n = static_cast<Real>(i) - mid;
    taps[i] = 2.0 * fc_norm * sinc(2.0 * fc_norm * n) * window[i];
    sum += taps[i];
  }
  for (auto& t : taps) t /= sum;  // unity DC gain
  return taps;
}

std::vector<Real> design_fir_highpass(std::size_t num_taps, Real fc_hz,
                                      Real fs_hz) {
  auto taps = design_fir_lowpass(num_taps, fc_hz, fs_hz);
  for (auto& t : taps) t = -t;
  taps[(num_taps - 1) / 2] += 1.0;  // spectral inversion
  return taps;
}

std::vector<Real> matched_filter_taps(std::span<const Real> template_pulse) {
  require(!template_pulse.empty(), "matched_filter_taps: empty template");
  Real energy = 0.0;
  for (const Real v : template_pulse) energy += v * v;
  require(energy > 0.0, "matched_filter_taps: zero-energy template");
  const Real norm = 1.0 / std::sqrt(energy);
  std::vector<Real> taps(template_pulse.rbegin(), template_pulse.rend());
  for (auto& t : taps) t *= norm;
  return taps;
}

std::vector<Real> convolve(std::span<const Real> x,
                           std::span<const Real> taps) {
  require(!x.empty() && !taps.empty(), "convolve: empty input");
  std::vector<Real> y(x.size() + taps.size() - 1, 0.0);
  for (std::size_t i = 0; i < x.size(); ++i) {
    for (std::size_t j = 0; j < taps.size(); ++j) {
      y[i + j] += x[i] * taps[j];
    }
  }
  return y;
}

}  // namespace datc::dsp
