#pragma once
// Descriptive statistics and similarity metrics. The paper's headline
// figure of merit is the Pearson correlation (×100 %) between the
// reconstructed envelope at the receiver and the original ARV envelope.

#include <span>
#include <vector>

#include "dsp/types.hpp"

namespace datc::dsp {

/// Arithmetic mean; 0 for an empty span.
[[nodiscard]] Real mean(std::span<const Real> x);

/// Population variance (divide by N); 0 for spans shorter than 1.
[[nodiscard]] Real variance(std::span<const Real> x);

/// Population standard deviation.
[[nodiscard]] Real std_dev(std::span<const Real> x);

/// Root mean square.
[[nodiscard]] Real rms(std::span<const Real> x);

/// Minimum value; throws on empty input.
[[nodiscard]] Real min_value(std::span<const Real> x);

/// Maximum value; throws on empty input.
[[nodiscard]] Real max_value(std::span<const Real> x);

/// Linear-interpolated percentile, p in [0, 100]; throws on empty input.
[[nodiscard]] Real percentile(std::span<const Real> x, Real p);

/// Pearson correlation coefficient in [-1, 1]. Inputs must be the same
/// length and at least 2 samples. If either input is constant the
/// correlation is defined here as 0 (no linear relation recoverable).
[[nodiscard]] Real pearson(std::span<const Real> a, std::span<const Real> b);

/// The paper's metric: 100 * pearson(a, b).
[[nodiscard]] Real correlation_percent(std::span<const Real> a,
                                       std::span<const Real> b);

/// Root-mean-square error between equal-length spans.
[[nodiscard]] Real rmse(std::span<const Real> a, std::span<const Real> b);

/// Normalised RMSE: rmse / (max(a) - min(a)); throws if a is constant.
[[nodiscard]] Real nrmse(std::span<const Real> a, std::span<const Real> b);

/// Upper-tail probability Q(x) of the standard normal.
[[nodiscard]] Real normal_q(Real x);

/// Inverse of normal_q (bisection; p in (0,1)).
[[nodiscard]] Real normal_q_inv(Real p);

/// Summary of a sample set, used by the Fig. 5 dataset experiment.
struct Summary {
  Real min{};
  Real max{};
  Real mean{};
  Real std_dev{};
  Real p05{};  ///< 5th percentile
  Real p50{};  ///< median
  Real p95{};  ///< 95th percentile
};

[[nodiscard]] Summary summarize(std::span<const Real> x);

}  // namespace datc::dsp
