#pragma once
// Minimal radix-2 FFT, sufficient for the Welch PSD estimates used to
// check the IR-UWB pulse train against the FCC -41.3 dBm/MHz mask and to
// characterise the synthetic sEMG spectrum.

#include <complex>
#include <span>
#include <vector>

#include "dsp/types.hpp"

namespace datc::dsp {

using Complex = std::complex<Real>;

/// In-place iterative radix-2 decimation-in-time FFT.
/// x.size() must be a power of two (>= 1).
void fft_inplace(std::vector<Complex>& x);

/// Inverse FFT (normalised by 1/N).
void ifft_inplace(std::vector<Complex>& x);

/// FFT of a real signal, zero-padded up to the next power of two.
/// Returns the full complex spectrum of the padded length.
[[nodiscard]] std::vector<Complex> fft_real(std::span<const Real> x);

/// O(N^2) reference DFT used to validate the FFT in tests.
[[nodiscard]] std::vector<Complex> dft_reference(std::span<const Complex> x);

/// Smallest power of two >= n (n >= 1).
[[nodiscard]] std::size_t next_pow2(std::size_t n);

}  // namespace datc::dsp
