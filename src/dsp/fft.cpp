#include "dsp/fft.hpp"
#include "dsp/types.hpp"

#include <cmath>
#include <numbers>

namespace datc::dsp {
namespace {

constexpr Real kPi = std::numbers::pi_v<Real>;

bool is_pow2(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

void bit_reverse_permute(std::vector<Complex>& x) {
  const std::size_t n = x.size();
  std::size_t j = 0;
  for (std::size_t i = 1; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(x[i], x[j]);
  }
}

void fft_core(std::vector<Complex>& x, bool inverse) {
  const std::size_t n = x.size();
  require(is_pow2(n), "fft: size must be a power of two");
  bit_reverse_permute(x);
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const Real ang = (inverse ? 2.0 : -2.0) * kPi / static_cast<Real>(len);
    const Complex wlen(std::cos(ang), std::sin(ang));
    for (std::size_t i = 0; i < n; i += len) {
      Complex w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const Complex u = x[i + k];
        const Complex v = x[i + k + len / 2] * w;
        x[i + k] = u + v;
        x[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

}  // namespace

void fft_inplace(std::vector<Complex>& x) { fft_core(x, /*inverse=*/false); }

void ifft_inplace(std::vector<Complex>& x) {
  fft_core(x, /*inverse=*/true);
  const Real inv_n = 1.0 / static_cast<Real>(x.size());
  for (auto& v : x) v *= inv_n;
}

std::vector<Complex> fft_real(std::span<const Real> x) {
  require(!x.empty(), "fft_real: empty input");
  std::vector<Complex> buf(next_pow2(x.size()), Complex{0.0, 0.0});
  for (std::size_t i = 0; i < x.size(); ++i) buf[i] = Complex{x[i], 0.0};
  fft_inplace(buf);
  return buf;
}

std::vector<Complex> dft_reference(std::span<const Complex> x) {
  const std::size_t n = x.size();
  std::vector<Complex> out(n, Complex{0.0, 0.0});
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t i = 0; i < n; ++i) {
      const Real ang =
          -2.0 * kPi * static_cast<Real>(k * i) / static_cast<Real>(n);
      out[k] += x[i] * Complex{std::cos(ang), std::sin(ang)};
    }
  }
  return out;
}

std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace datc::dsp
