#pragma once
// Normalised cross-correlation and lag estimation. Used to verify that
// the receiver's reconstructed envelope is time-aligned with the ground
// truth (group delay would silently inflate RMSE while Pearson-at-lag-0
// merely drops a little — the lag estimate makes misalignment visible).

#include <span>
#include <vector>

#include "dsp/types.hpp"

namespace datc::dsp {

/// Pearson correlation between a and b with b shifted by `lag` samples
/// (positive lag = b delayed). Only the overlapping region is scored;
/// the overlap must keep at least `min_overlap` samples.
[[nodiscard]] Real correlation_at_lag(std::span<const Real> a,
                                      std::span<const Real> b, long lag,
                                      std::size_t min_overlap = 8);

struct LagEstimate {
  long lag_samples{0};
  Real correlation{0.0};  ///< Pearson at the best lag
};

/// Scans lags in [-max_lag, +max_lag] and returns the maximiser.
[[nodiscard]] LagEstimate best_lag(std::span<const Real> a,
                                   std::span<const Real> b,
                                   std::size_t max_lag);

/// Full normalised cross-correlation sequence for lags
/// -max_lag .. +max_lag (2*max_lag + 1 values).
[[nodiscard]] std::vector<Real> xcorr_normalized(std::span<const Real> a,
                                                 std::span<const Real> b,
                                                 std::size_t max_lag);

}  // namespace datc::dsp
