#include "dsp/stats.hpp"
#include "dsp/types.hpp"

#include <algorithm>
#include <cmath>

namespace datc::dsp {

Real mean(std::span<const Real> x) {
  if (x.empty()) return 0.0;
  Real acc = 0.0;
  for (const Real v : x) acc += v;
  return acc / static_cast<Real>(x.size());
}

Real variance(std::span<const Real> x) {
  if (x.size() < 2) return 0.0;
  const Real m = mean(x);
  Real acc = 0.0;
  for (const Real v : x) acc += (v - m) * (v - m);
  return acc / static_cast<Real>(x.size());
}

Real std_dev(std::span<const Real> x) { return std::sqrt(variance(x)); }

Real rms(std::span<const Real> x) {
  if (x.empty()) return 0.0;
  Real acc = 0.0;
  for (const Real v : x) acc += v * v;
  return std::sqrt(acc / static_cast<Real>(x.size()));
}

Real min_value(std::span<const Real> x) {
  require(!x.empty(), "min_value: empty input");
  return *std::min_element(x.begin(), x.end());
}

Real max_value(std::span<const Real> x) {
  require(!x.empty(), "max_value: empty input");
  return *std::max_element(x.begin(), x.end());
}

Real percentile(std::span<const Real> x, Real p) {
  require(!x.empty(), "percentile: empty input");
  require(p >= 0.0 && p <= 100.0, "percentile: p outside [0,100]");
  std::vector<Real> sorted(x.begin(), x.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const Real pos = p / 100.0 * static_cast<Real>(sorted.size() - 1);
  const auto i0 = static_cast<std::size_t>(pos);
  const Real frac = pos - static_cast<Real>(i0);
  if (i0 + 1 >= sorted.size()) return sorted.back();
  return sorted[i0] + frac * (sorted[i0 + 1] - sorted[i0]);
}

Real pearson(std::span<const Real> a, std::span<const Real> b) {
  require(a.size() == b.size(), "pearson: size mismatch");
  require(a.size() >= 2, "pearson: need at least 2 samples");
  const Real ma = mean(a);
  const Real mb = mean(b);
  Real sab = 0.0;
  Real saa = 0.0;
  Real sbb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const Real da = a[i] - ma;
    const Real db = b[i] - mb;
    sab += da * db;
    saa += da * da;
    sbb += db * db;
  }
  if (saa <= 0.0 || sbb <= 0.0) return 0.0;
  return sab / std::sqrt(saa * sbb);
}

Real correlation_percent(std::span<const Real> a, std::span<const Real> b) {
  return 100.0 * pearson(a, b);
}

Real rmse(std::span<const Real> a, std::span<const Real> b) {
  require(a.size() == b.size(), "rmse: size mismatch");
  require(!a.empty(), "rmse: empty input");
  Real acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const Real d = a[i] - b[i];
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<Real>(a.size()));
}

Real nrmse(std::span<const Real> a, std::span<const Real> b) {
  const Real range = max_value(a) - min_value(a);
  require(range > 0.0, "nrmse: reference signal is constant");
  return rmse(a, b) / range;
}

Real normal_q(Real x) { return 0.5 * std::erfc(x / std::sqrt(2.0)); }

Real normal_q_inv(Real p) {
  require(p > 0.0 && p < 1.0, "normal_q_inv: p outside (0,1)");
  Real lo = -8.5;
  Real hi = 8.5;
  for (int i = 0; i < 100; ++i) {
    const Real mid = (lo + hi) / 2.0;
    if (normal_q(mid) > p) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return (lo + hi) / 2.0;
}

Summary summarize(std::span<const Real> x) {
  Summary s;
  s.min = min_value(x);
  s.max = max_value(x);
  s.mean = mean(x);
  s.std_dev = std_dev(x);
  s.p05 = percentile(x, 5.0);
  s.p50 = percentile(x, 50.0);
  s.p95 = percentile(x, 95.0);
  return s;
}

}  // namespace datc::dsp
