#pragma once
// FIR filtering with windowed-sinc design. Used where linear phase matters
// (ground-truth envelope extraction ablations) and by the UWB receiver's
// matched filter.

#include <span>
#include <vector>

#include "dsp/types.hpp"

namespace datc::dsp {

/// Stateful FIR filter (direct form).
class FirFilter {
 public:
  explicit FirFilter(std::vector<Real> taps);

  [[nodiscard]] Real process(Real x);
  [[nodiscard]] std::vector<Real> filter(std::span<const Real> x);
  void reset();

  [[nodiscard]] const std::vector<Real>& taps() const { return taps_; }
  /// Group delay in samples for the linear-phase (symmetric) case.
  [[nodiscard]] Real group_delay() const {
    return static_cast<Real>(taps_.size() - 1) / 2.0;
  }

 private:
  std::vector<Real> taps_;
  std::vector<Real> delay_;
  std::size_t head_{0};
};

/// Windowed-sinc low-pass design with unity DC gain.
/// \param num_taps  odd tap count >= 3
[[nodiscard]] std::vector<Real> design_fir_lowpass(std::size_t num_taps,
                                                   Real fc_hz, Real fs_hz);

/// Windowed-sinc high-pass (spectral inversion of the low-pass).
[[nodiscard]] std::vector<Real> design_fir_highpass(std::size_t num_taps,
                                                    Real fc_hz, Real fs_hz);

/// Matched filter taps for a template pulse: time-reversed template,
/// normalised to unit energy.
[[nodiscard]] std::vector<Real> matched_filter_taps(
    std::span<const Real> template_pulse);

/// Full convolution of x with taps (length x.size() + taps.size() - 1).
[[nodiscard]] std::vector<Real> convolve(std::span<const Real> x,
                                         std::span<const Real> taps);

}  // namespace datc::dsp
