#include "dsp/spectral.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "dsp/fft.hpp"
#include "dsp/types.hpp"

namespace datc::dsp {
namespace {
constexpr Real kPi = std::numbers::pi_v<Real>;
}

std::vector<Real> make_window(WindowKind kind, std::size_t n) {
  require(n >= 1, "make_window: n must be >= 1");
  std::vector<Real> w(n, 1.0);
  const Real denom = static_cast<Real>(n);  // periodic window
  for (std::size_t i = 0; i < n; ++i) {
    const Real t = 2.0 * kPi * static_cast<Real>(i) / denom;
    switch (kind) {
      case WindowKind::kRect:
        w[i] = 1.0;
        break;
      case WindowKind::kHann:
        w[i] = 0.5 * (1.0 - std::cos(t));
        break;
      case WindowKind::kHamming:
        w[i] = 0.54 - 0.46 * std::cos(t);
        break;
      case WindowKind::kBlackman:
        w[i] = 0.42 - 0.5 * std::cos(t) + 0.08 * std::cos(2.0 * t);
        break;
    }
  }
  return w;
}

PsdEstimate welch_psd(std::span<const Real> x, Real fs_hz, std::size_t segment,
                      WindowKind window) {
  require(fs_hz > 0.0, "welch_psd: fs must be positive");
  require(!x.empty(), "welch_psd: empty input");
  require(segment >= 2, "welch_psd: segment must be >= 2");
  const std::size_t nseg = next_pow2(std::min(segment, x.size()));
  const std::size_t hop = std::max<std::size_t>(1, nseg / 2);
  const auto w = make_window(window, nseg);
  Real win_power = 0.0;
  for (const Real v : w) win_power += v * v;

  const std::size_t nbins = nseg / 2 + 1;
  std::vector<Real> acc(nbins, 0.0);
  std::size_t count = 0;
  std::vector<Complex> buf(nseg);
  for (std::size_t start = 0; start + nseg <= x.size(); start += hop) {
    for (std::size_t i = 0; i < nseg; ++i) {
      buf[i] = Complex{x[start + i] * w[i], 0.0};
    }
    fft_inplace(buf);
    for (std::size_t k = 0; k < nbins; ++k) {
      acc[k] += std::norm(buf[k]);
    }
    ++count;
  }
  if (count == 0) {
    // Record shorter than one segment: single zero-padded segment.
    buf.assign(nseg, Complex{0.0, 0.0});
    for (std::size_t i = 0; i < x.size(); ++i) {
      buf[i] = Complex{x[i] * w[i % nseg], 0.0};
    }
    fft_inplace(buf);
    for (std::size_t k = 0; k < nbins; ++k) acc[k] += std::norm(buf[k]);
    count = 1;
  }

  PsdEstimate out;
  out.freq_hz.resize(nbins);
  out.psd_v2_hz.resize(nbins);
  const Real scale = 1.0 / (fs_hz * win_power * static_cast<Real>(count));
  for (std::size_t k = 0; k < nbins; ++k) {
    out.freq_hz[k] =
        static_cast<Real>(k) * fs_hz / static_cast<Real>(nseg);
    Real p = acc[k] * scale;
    // One-sided: double the interior bins.
    if (k != 0 && k != nbins - 1) p *= 2.0;
    out.psd_v2_hz[k] = p;
  }
  return out;
}

Real psd_to_dbm_per_mhz(Real psd_v2_hz, Real ohms) {
  require(ohms > 0.0, "psd_to_dbm_per_mhz: resistance must be positive");
  // V^2/Hz -> W/Hz -> mW/MHz: * 1e3 (mW/W) * 1e6 (Hz/MHz).
  const Real mw_per_mhz = psd_v2_hz / ohms * 1.0e9;
  if (mw_per_mhz <= 0.0) return -300.0;  // floor for empty bins
  return 10.0 * std::log10(mw_per_mhz);
}

Real peak_dbm_per_mhz(const PsdEstimate& psd, Real f_lo_hz, Real f_hi_hz,
                      Real ohms) {
  require(f_lo_hz <= f_hi_hz, "peak_dbm_per_mhz: need f_lo <= f_hi");
  Real best = -300.0;
  for (std::size_t k = 0; k < psd.freq_hz.size(); ++k) {
    if (psd.freq_hz[k] < f_lo_hz || psd.freq_hz[k] > f_hi_hz) continue;
    best = std::max(best, psd_to_dbm_per_mhz(psd.psd_v2_hz[k], ohms));
  }
  return best;
}

}  // namespace datc::dsp
