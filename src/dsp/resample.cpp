#include "dsp/resample.hpp"

#include <cmath>

#include "dsp/biquad.hpp"
#include "dsp/filter_design.hpp"
#include "dsp/types.hpp"

namespace datc::dsp {

TimeSeries resample_linear(const TimeSeries& x, Real new_rate_hz) {
  require(new_rate_hz > 0.0, "resample_linear: rate must be positive");
  const auto n_out =
      static_cast<std::size_t>(std::llround(x.duration_s() * new_rate_hz));
  std::vector<Real> out(n_out);
  for (std::size_t i = 0; i < n_out; ++i) {
    out[i] = x.at_time(static_cast<Real>(i) / new_rate_hz);
  }
  return TimeSeries(std::move(out), new_rate_hz);
}

TimeSeries decimate(const TimeSeries& x, std::size_t factor) {
  require(factor >= 1, "decimate: factor must be >= 1");
  if (factor == 1) return x;
  const Real fs = x.sample_rate_hz();
  const Real fc = 0.4 * fs / static_cast<Real>(factor);
  BiquadCascade aa(butterworth_lowpass(8, fc, fs));
  const auto filtered = aa.filter(x.view());
  std::vector<Real> out;
  out.reserve(x.size() / factor + 1);
  for (std::size_t i = 0; i < filtered.size(); i += factor) {
    out.push_back(filtered[i]);
  }
  return TimeSeries(std::move(out), fs / static_cast<Real>(factor));
}

TimeSeries hold_upsample(const TimeSeries& x, std::size_t factor) {
  require(factor >= 1, "hold_upsample: factor must be >= 1");
  std::vector<Real> out;
  out.reserve(x.size() * factor);
  for (const Real v : x.samples()) {
    for (std::size_t k = 0; k < factor; ++k) out.push_back(v);
  }
  return TimeSeries(std::move(out),
                    x.sample_rate_hz() * static_cast<Real>(factor));
}

}  // namespace datc::dsp
