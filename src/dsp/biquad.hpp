#pragma once
// Direct-form-II-transposed biquad section and cascades. Used by the sEMG
// synthesiser (band-shaping), the analog-front-end models and the receiver
// envelope smoothing.

#include <array>
#include <span>
#include <vector>

#include "dsp/types.hpp"

namespace datc::dsp {

/// Normalised biquad coefficients (a0 == 1):
///   y[n] = b0 x[n] + b1 x[n-1] + b2 x[n-2] - a1 y[n-1] - a2 y[n-2]
struct BiquadCoeffs {
  Real b0{1.0};
  Real b1{0.0};
  Real b2{0.0};
  Real a1{0.0};
  Real a2{0.0};

  /// Magnitude of the frequency response at normalised frequency
  /// w = 2*pi*f/fs (radians/sample).
  [[nodiscard]] Real magnitude_at(Real w) const;

  /// True when both poles lie strictly inside the unit circle.
  [[nodiscard]] bool is_stable() const;
};

/// One stateful biquad section (direct form II transposed — the form with
/// the best numerical behaviour for low-frequency biological signals).
class Biquad {
 public:
  Biquad() = default;
  explicit Biquad(const BiquadCoeffs& c) : c_(c) {}

  [[nodiscard]] Real process(Real x) {
    const Real y = c_.b0 * x + s1_;
    s1_ = c_.b1 * x - c_.a1 * y + s2_;
    s2_ = c_.b2 * x - c_.a2 * y;
    return y;
  }

  void reset() {
    s1_ = 0.0;
    s2_ = 0.0;
  }

  [[nodiscard]] const BiquadCoeffs& coeffs() const { return c_; }

 private:
  BiquadCoeffs c_{};
  Real s1_{0.0};
  Real s2_{0.0};
};

/// A cascade of biquad sections applied in sequence.
class BiquadCascade {
 public:
  BiquadCascade() = default;
  explicit BiquadCascade(std::vector<BiquadCoeffs> sections);

  [[nodiscard]] Real process(Real x) {
    for (auto& s : sections_) x = s.process(x);
    return x;
  }

  /// Filter a whole signal (stateful; call reset() between records).
  [[nodiscard]] std::vector<Real> filter(std::span<const Real> x);

  void reset();

  [[nodiscard]] std::size_t num_sections() const { return sections_.size(); }

  /// Combined magnitude response at normalised frequency w (rad/sample).
  [[nodiscard]] Real magnitude_at(Real w) const;

  [[nodiscard]] bool is_stable() const;

 private:
  std::vector<Biquad> sections_;
};

}  // namespace datc::dsp
