#pragma once
// Basic numeric types and the sampled-signal container shared by all
// datc libraries.

#include <cstddef>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace datc::dsp {

/// Scalar type used for all signal processing. Double keeps the behavioural
/// models comfortably above the 16-step DAC quantisation noise floor.
using Real = double;

/// A uniformly sampled real-valued signal with an associated sample rate.
///
/// Invariant: sample_rate_hz > 0. Samples may be empty.
class TimeSeries {
 public:
  TimeSeries() = default;

  TimeSeries(std::vector<Real> samples, Real sample_rate_hz)
      : samples_(std::move(samples)), sample_rate_hz_(sample_rate_hz) {
    if (sample_rate_hz_ <= 0.0) {
      throw std::invalid_argument("TimeSeries: sample rate must be positive");
    }
  }

  [[nodiscard]] const std::vector<Real>& samples() const { return samples_; }
  [[nodiscard]] std::vector<Real>& samples() { return samples_; }
  [[nodiscard]] Real sample_rate_hz() const { return sample_rate_hz_; }
  [[nodiscard]] std::size_t size() const { return samples_.size(); }
  [[nodiscard]] bool empty() const { return samples_.empty(); }
  [[nodiscard]] Real duration_s() const {
    return static_cast<Real>(samples_.size()) / sample_rate_hz_;
  }

  [[nodiscard]] Real operator[](std::size_t i) const { return samples_[i]; }
  [[nodiscard]] Real& operator[](std::size_t i) { return samples_[i]; }

  /// Time (seconds) of sample index i.
  [[nodiscard]] Real time_of(std::size_t i) const {
    return static_cast<Real>(i) / sample_rate_hz_;
  }

  /// Linear interpolation of the signal at an arbitrary time. Times outside
  /// the record clamp to the first/last sample (signals are held at their
  /// boundary values, which is what a sample-and-hold front end would see).
  [[nodiscard]] Real at_time(Real t_s) const {
    if (samples_.empty()) {
      throw std::logic_error("TimeSeries::at_time on empty signal");
    }
    const Real pos = t_s * sample_rate_hz_;
    if (pos <= 0.0) return samples_.front();
    const auto last = static_cast<Real>(samples_.size() - 1);
    if (pos >= last) return samples_.back();
    const auto i0 = static_cast<std::size_t>(pos);
    const Real frac = pos - static_cast<Real>(i0);
    return samples_[i0] + frac * (samples_[i0 + 1] - samples_[i0]);
  }

  [[nodiscard]] std::span<const Real> view() const { return samples_; }

 private:
  std::vector<Real> samples_;
  Real sample_rate_hz_{1.0};
};

/// Throws std::invalid_argument with a composed message when `ok` is false.
/// Used to validate public-API preconditions.
inline void require(bool ok, const std::string& what) {
  if (!ok) throw std::invalid_argument(what);
}

}  // namespace datc::dsp
