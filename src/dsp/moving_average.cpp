#include "dsp/moving_average.hpp"
#include "dsp/types.hpp"

#include <algorithm>

namespace datc::dsp {

std::vector<Real> moving_average(std::span<const Real> x, std::size_t window) {
  require(window >= 1, "moving_average: window must be >= 1");
  std::vector<Real> y(x.size());
  Real sum = 0.0;
  for (std::size_t n = 0; n < x.size(); ++n) {
    sum += x[n];
    if (n >= window) sum -= x[n - window];
    const std::size_t effective = std::min(n + 1, window);
    y[n] = sum / static_cast<Real>(effective);
  }
  return y;
}

std::vector<Real> centered_moving_average(std::span<const Real> x,
                                          std::size_t window) {
  require(window >= 1, "centered_moving_average: window must be >= 1");
  std::vector<Real> y(x.size());
  if (x.empty()) return y;
  // Prefix sums make each output O(1).
  std::vector<Real> prefix(x.size() + 1, 0.0);
  for (std::size_t i = 0; i < x.size(); ++i) prefix[i + 1] = prefix[i] + x[i];
  const std::size_t h = window / 2;
  for (std::size_t n = 0; n < x.size(); ++n) {
    const std::size_t lo = n >= h ? n - h : 0;
    const std::size_t hi = std::min(n + h, x.size() - 1);
    y[n] = (prefix[hi + 1] - prefix[lo]) / static_cast<Real>(hi - lo + 1);
  }
  return y;
}

MovingAverager::MovingAverager(std::size_t window) : buf_(window, 0.0) {
  require(window >= 1, "MovingAverager: window must be >= 1");
}

Real MovingAverager::process(Real x) {
  sum_ -= buf_[head_];
  buf_[head_] = x;
  sum_ += x;
  head_ = (head_ + 1) % buf_.size();
  if (filled_ < buf_.size()) ++filled_;
  return sum_ / static_cast<Real>(filled_);
}

void MovingAverager::reset() {
  std::fill(buf_.begin(), buf_.end(), 0.0);
  head_ = 0;
  filled_ = 0;
  sum_ = 0.0;
}

std::vector<Real> median_filter(std::span<const Real> x, std::size_t window) {
  require(window >= 1 && window % 2 == 1,
          "median_filter: window must be odd and >= 1");
  std::vector<Real> y(x.size());
  if (x.empty()) return y;
  const std::size_t h = window / 2;
  std::vector<Real> scratch;
  scratch.reserve(window);
  for (std::size_t n = 0; n < x.size(); ++n) {
    const std::size_t lo = n >= h ? n - h : 0;
    const std::size_t hi = std::min(n + h, x.size() - 1);
    scratch.assign(x.begin() + static_cast<std::ptrdiff_t>(lo),
                   x.begin() + static_cast<std::ptrdiff_t>(hi + 1));
    const auto mid = scratch.begin() +
                     static_cast<std::ptrdiff_t>(scratch.size() / 2);
    std::nth_element(scratch.begin(), mid, scratch.end());
    y[n] = *mid;
  }
  return y;
}

}  // namespace datc::dsp
