#include "dsp/biquad.hpp"

#include <cmath>
#include <complex>

namespace datc::dsp {

Real BiquadCoeffs::magnitude_at(Real w) const {
  const std::complex<Real> z = std::polar<Real>(1.0, -w);
  const std::complex<Real> z2 = z * z;
  const std::complex<Real> num = b0 + b1 * z + b2 * z2;
  const std::complex<Real> den = Real{1.0} + a1 * z + a2 * z2;
  return std::abs(num / den);
}

bool BiquadCoeffs::is_stable() const {
  // Jury criterion for a 2nd-order polynomial z^2 + a1 z + a2.
  return std::abs(a2) < 1.0 && std::abs(a1) < 1.0 + a2;
}

BiquadCascade::BiquadCascade(std::vector<BiquadCoeffs> sections) {
  sections_.reserve(sections.size());
  for (const auto& c : sections) sections_.emplace_back(c);
}

std::vector<Real> BiquadCascade::filter(std::span<const Real> x) {
  std::vector<Real> y(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = process(x[i]);
  return y;
}

void BiquadCascade::reset() {
  for (auto& s : sections_) s.reset();
}

Real BiquadCascade::magnitude_at(Real w) const {
  Real m = 1.0;
  for (const auto& s : sections_) m *= s.coeffs().magnitude_at(w);
  return m;
}

bool BiquadCascade::is_stable() const {
  for (const auto& s : sections_) {
    if (!s.coeffs().is_stable()) return false;
  }
  return true;
}

}  // namespace datc::dsp
