#pragma once
// Sliding-window smoothers: moving average (the receiver's "low-complexity
// windowing", ref [9]/[10]) and a median filter for artifact suppression.

#include <span>
#include <vector>

#include "dsp/types.hpp"

namespace datc::dsp {

/// O(N) causal moving average over `window` samples. y[n] is the mean of
/// the most recent min(n+1, window) inputs (warm-up uses the samples seen
/// so far rather than zero-padding, which would bias the envelope onset).
[[nodiscard]] std::vector<Real> moving_average(std::span<const Real> x,
                                               std::size_t window);

/// Zero-lag (centred) moving average: y[n] = mean(x[n-h .. n+h]) with
/// h = window/2, clamped at the record boundaries. This is the form used
/// for ground-truth ARV envelopes so that correlation is not penalised by
/// group delay.
[[nodiscard]] std::vector<Real> centered_moving_average(
    std::span<const Real> x, std::size_t window);

/// Streaming causal moving average (used inside the receiver models).
class MovingAverager {
 public:
  explicit MovingAverager(std::size_t window);

  [[nodiscard]] Real process(Real x);
  void reset();
  [[nodiscard]] std::size_t window() const { return buf_.size(); }

 private:
  std::vector<Real> buf_;
  std::size_t head_{0};
  std::size_t filled_{0};
  Real sum_{0.0};
};

/// Centred median filter with odd window; boundaries use the available
/// neighbourhood. Robust against the spike artifacts injected by
/// emg::ArtifactInjector.
[[nodiscard]] std::vector<Real> median_filter(std::span<const Real> x,
                                              std::size_t window);

}  // namespace datc::dsp
