#include "dsp/envelope.hpp"

#include <algorithm>
#include <cmath>

#include "dsp/moving_average.hpp"
#include "dsp/types.hpp"

namespace datc::dsp {

std::vector<Real> rectify(std::span<const Real> x) {
  std::vector<Real> y(x.size());
  std::transform(x.begin(), x.end(), y.begin(),
                 [](Real v) { return std::abs(v); });
  return y;
}

std::vector<Real> rectify_half(std::span<const Real> x) {
  std::vector<Real> y(x.size());
  std::transform(x.begin(), x.end(), y.begin(),
                 [](Real v) { return v > 0.0 ? v : 0.0; });
  return y;
}

std::size_t window_samples(Real fs_hz, Real window_s) {
  require(fs_hz > 0.0 && window_s > 0.0,
          "window_samples: fs and window must be positive");
  auto n = static_cast<std::size_t>(std::lround(fs_hz * window_s));
  if (n < 1) n = 1;
  if (n % 2 == 0) ++n;  // odd so the centred window is symmetric
  return n;
}

std::vector<Real> arv_envelope(std::span<const Real> x, Real fs_hz,
                               Real window_s) {
  const auto rect = rectify(x);
  return centered_moving_average(rect, window_samples(fs_hz, window_s));
}

std::vector<Real> rms_envelope(std::span<const Real> x, Real fs_hz,
                               Real window_s) {
  std::vector<Real> sq(x.size());
  std::transform(x.begin(), x.end(), sq.begin(),
                 [](Real v) { return v * v; });
  auto mean_sq =
      centered_moving_average(sq, window_samples(fs_hz, window_s));
  for (auto& v : mean_sq) v = std::sqrt(v);
  return mean_sq;
}

}  // namespace datc::dsp
