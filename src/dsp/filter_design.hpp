#pragma once
// IIR filter design: Butterworth low/high/band-pass via bilinear transform
// with frequency prewarping (RBJ-style second-order sections), plus a
// powerline notch. These shape the synthetic sEMG spectrum and model the
// analog front end's band limiting.

#include <vector>

#include "dsp/biquad.hpp"
#include "dsp/types.hpp"

namespace datc::dsp {

/// N-th order Butterworth low-pass as a cascade of second-order sections
/// (plus one first-order section when `order` is odd).
///
/// \param order   filter order, >= 1
/// \param fc_hz   -3 dB cutoff, 0 < fc < fs/2
/// \param fs_hz   sample rate
[[nodiscard]] std::vector<BiquadCoeffs> butterworth_lowpass(int order,
                                                            Real fc_hz,
                                                            Real fs_hz);

/// N-th order Butterworth high-pass (same conventions as the low-pass).
[[nodiscard]] std::vector<BiquadCoeffs> butterworth_highpass(int order,
                                                             Real fc_hz,
                                                             Real fs_hz);

/// Band-pass built as the cascade HP(order, f_lo) . LP(order, f_hi) — the
/// usual construction for EMG conditioning chains.
/// Requires 0 < f_lo < f_hi < fs/2.
[[nodiscard]] std::vector<BiquadCoeffs> butterworth_bandpass(int order,
                                                             Real f_lo_hz,
                                                             Real f_hi_hz,
                                                             Real fs_hz);

/// Second-order notch at f0 with quality factor Q (RBJ cookbook). Used to
/// remove 50/60 Hz interference injected by the artifact models.
[[nodiscard]] BiquadCoeffs notch(Real f0_hz, Real q, Real fs_hz);

/// Single RBJ low-pass biquad with explicit Q; building block for envelope
/// smoothing filters.
[[nodiscard]] BiquadCoeffs rbj_lowpass(Real fc_hz, Real q, Real fs_hz);

/// Single RBJ high-pass biquad with explicit Q.
[[nodiscard]] BiquadCoeffs rbj_highpass(Real fc_hz, Real q, Real fs_hz);

}  // namespace datc::dsp
