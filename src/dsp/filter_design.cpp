#include "dsp/biquad.hpp"
#include "dsp/filter_design.hpp"
#include "dsp/types.hpp"

#include <cmath>
#include <numbers>

namespace datc::dsp {
namespace {

constexpr Real kPi = std::numbers::pi_v<Real>;

void check_band(Real fc_hz, Real fs_hz, const char* who) {
  require(fs_hz > 0.0, std::string(who) + ": fs must be positive");
  require(fc_hz > 0.0 && fc_hz < fs_hz / 2.0,
          std::string(who) + ": cutoff must lie in (0, fs/2)");
}

/// Q factors of the conjugate-pole sections of an N-th order Butterworth
/// prototype: Q_k = 1 / (2 sin(pi (2k+1) / (2N))), k = 0 .. floor(N/2)-1.
std::vector<Real> butterworth_qs(int order) {
  std::vector<Real> qs;
  for (int k = 0; k < order / 2; ++k) {
    const Real gamma = kPi * static_cast<Real>(2 * k + 1) /
                       (2.0 * static_cast<Real>(order));
    qs.push_back(1.0 / (2.0 * std::sin(gamma)));
  }
  return qs;
}

/// First-order low-pass section via bilinear transform of 1/(s+1).
BiquadCoeffs first_order_lowpass(Real fc_hz, Real fs_hz) {
  const Real k = 1.0 / std::tan(kPi * fc_hz / fs_hz);
  BiquadCoeffs c;
  c.b0 = 1.0 / (k + 1.0);
  c.b1 = c.b0;
  c.b2 = 0.0;
  c.a1 = (1.0 - k) / (k + 1.0);
  c.a2 = 0.0;
  return c;
}

/// First-order high-pass section via bilinear transform of s/(s+1).
BiquadCoeffs first_order_highpass(Real fc_hz, Real fs_hz) {
  const Real k = 1.0 / std::tan(kPi * fc_hz / fs_hz);
  BiquadCoeffs c;
  c.b0 = k / (k + 1.0);
  c.b1 = -c.b0;
  c.b2 = 0.0;
  c.a1 = (1.0 - k) / (k + 1.0);
  c.a2 = 0.0;
  return c;
}

}  // namespace

BiquadCoeffs rbj_lowpass(Real fc_hz, Real q, Real fs_hz) {
  check_band(fc_hz, fs_hz, "rbj_lowpass");
  require(q > 0.0, "rbj_lowpass: Q must be positive");
  const Real w0 = 2.0 * kPi * fc_hz / fs_hz;
  const Real alpha = std::sin(w0) / (2.0 * q);
  const Real cw = std::cos(w0);
  const Real a0 = 1.0 + alpha;
  BiquadCoeffs c;
  c.b0 = (1.0 - cw) / 2.0 / a0;
  c.b1 = (1.0 - cw) / a0;
  c.b2 = c.b0;
  c.a1 = (-2.0 * cw) / a0;
  c.a2 = (1.0 - alpha) / a0;
  return c;
}

BiquadCoeffs rbj_highpass(Real fc_hz, Real q, Real fs_hz) {
  check_band(fc_hz, fs_hz, "rbj_highpass");
  require(q > 0.0, "rbj_highpass: Q must be positive");
  const Real w0 = 2.0 * kPi * fc_hz / fs_hz;
  const Real alpha = std::sin(w0) / (2.0 * q);
  const Real cw = std::cos(w0);
  const Real a0 = 1.0 + alpha;
  BiquadCoeffs c;
  c.b0 = (1.0 + cw) / 2.0 / a0;
  c.b1 = -(1.0 + cw) / a0;
  c.b2 = c.b0;
  c.a1 = (-2.0 * cw) / a0;
  c.a2 = (1.0 - alpha) / a0;
  return c;
}

BiquadCoeffs notch(Real f0_hz, Real q, Real fs_hz) {
  check_band(f0_hz, fs_hz, "notch");
  require(q > 0.0, "notch: Q must be positive");
  const Real w0 = 2.0 * kPi * f0_hz / fs_hz;
  const Real alpha = std::sin(w0) / (2.0 * q);
  const Real cw = std::cos(w0);
  const Real a0 = 1.0 + alpha;
  BiquadCoeffs c;
  c.b0 = 1.0 / a0;
  c.b1 = (-2.0 * cw) / a0;
  c.b2 = 1.0 / a0;
  c.a1 = (-2.0 * cw) / a0;
  c.a2 = (1.0 - alpha) / a0;
  return c;
}

std::vector<BiquadCoeffs> butterworth_lowpass(int order, Real fc_hz,
                                              Real fs_hz) {
  require(order >= 1, "butterworth_lowpass: order must be >= 1");
  check_band(fc_hz, fs_hz, "butterworth_lowpass");
  std::vector<BiquadCoeffs> sections;
  for (const Real q : butterworth_qs(order)) {
    sections.push_back(rbj_lowpass(fc_hz, q, fs_hz));
  }
  if (order % 2 == 1) sections.push_back(first_order_lowpass(fc_hz, fs_hz));
  return sections;
}

std::vector<BiquadCoeffs> butterworth_highpass(int order, Real fc_hz,
                                               Real fs_hz) {
  require(order >= 1, "butterworth_highpass: order must be >= 1");
  check_band(fc_hz, fs_hz, "butterworth_highpass");
  std::vector<BiquadCoeffs> sections;
  for (const Real q : butterworth_qs(order)) {
    sections.push_back(rbj_highpass(fc_hz, q, fs_hz));
  }
  if (order % 2 == 1) sections.push_back(first_order_highpass(fc_hz, fs_hz));
  return sections;
}

std::vector<BiquadCoeffs> butterworth_bandpass(int order, Real f_lo_hz,
                                               Real f_hi_hz, Real fs_hz) {
  require(f_lo_hz < f_hi_hz, "butterworth_bandpass: need f_lo < f_hi");
  auto hp = butterworth_highpass(order, f_lo_hz, fs_hz);
  auto lp = butterworth_lowpass(order, f_hi_hz, fs_hz);
  hp.insert(hp.end(), lp.begin(), lp.end());
  return hp;
}

}  // namespace datc::dsp
