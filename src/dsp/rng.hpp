#pragma once
// Deterministic random-number helpers. All stochastic components in the
// repository draw from a Rng seeded explicitly, so every experiment is
// reproducible from its seed alone.

#include <cstdint>
#include <random>
#include <span>

#include "dsp/types.hpp"

namespace datc::dsp {

/// Thin deterministic wrapper around std::mt19937_64 with the distributions
/// this project needs. Copyable; copies continue the same stream
/// independently.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform in [0, 1).
  [[nodiscard]] Real uniform() {
    return std::uniform_real_distribution<Real>(0.0, 1.0)(engine_);
  }

  /// Uniform in [lo, hi).
  [[nodiscard]] Real uniform(Real lo, Real hi) {
    return std::uniform_real_distribution<Real>(lo, hi)(engine_);
  }

  /// Standard normal.
  [[nodiscard]] Real gaussian() {
    return std::normal_distribution<Real>(0.0, 1.0)(engine_);
  }

  [[nodiscard]] Real gaussian(Real mean, Real sigma) {
    return std::normal_distribution<Real>(mean, sigma)(engine_);
  }

  /// Log-uniform in [lo, hi]; lo, hi must be positive.
  [[nodiscard]] Real log_uniform(Real lo, Real hi) {
    require(lo > 0.0 && hi >= lo, "Rng::log_uniform: need 0 < lo <= hi");
    const Real u = uniform(std::log(lo), std::log(hi));
    return std::exp(u);
  }

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::uint64_t integer(std::uint64_t lo, std::uint64_t hi) {
    return std::uniform_int_distribution<std::uint64_t>(lo, hi)(engine_);
  }

  /// Bernoulli with probability p.
  [[nodiscard]] bool chance(Real p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Uniform in [0, 1) from the top 53 engine bits. Unlike uniform()
  /// (std::uniform_real_distribution, implementation-defined mapping),
  /// this fixed mapping is part of the repository's reproducibility
  /// contract — it is the stream gaussian_bm()/fill_gaussian() consume.
  [[nodiscard]] Real canonical() {
    return static_cast<Real>(engine_() >> 11) * 0x1.0p-53;
  }

  /// Standard normal via the Marsaglia polar method over canonical(),
  /// with the usual one-value spare cache. This is the HOT-PATH gaussian
  /// stream: fill_gaussian() draws the exact same sequence in batches
  /// (SIMD log/sqrt tail), so per-call and batched consumers reproduce
  /// identically from a seed for any chunking. gaussian() (the
  /// std::normal_distribution stream) is unrelated and unchanged.
  [[nodiscard]] Real gaussian_bm();

  /// Batched gaussian_bm(): fills `out` with the next out.size() values
  /// of that stream, vectorising the log/sqrt tail through the active
  /// simd backend (bit-identical across backends).
  void fill_gaussian(std::span<Real> out);

  /// Batched canonical(): the next out.size() values of that stream.
  void fill_uniform(std::span<Real> out);

  /// Derive an independent child stream (e.g. one per dataset pattern).
  [[nodiscard]] Rng fork() { return Rng(engine_()); }

  [[nodiscard]] std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  Real spare_{0.0};       ///< cached second polar variate
  bool has_spare_{false};
};

}  // namespace datc::dsp
