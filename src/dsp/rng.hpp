#pragma once
// Deterministic random-number helpers. All stochastic components in the
// repository draw from a Rng seeded explicitly, so every experiment is
// reproducible from its seed alone.

#include <cstdint>
#include <random>

#include "dsp/types.hpp"

namespace datc::dsp {

/// Thin deterministic wrapper around std::mt19937_64 with the distributions
/// this project needs. Copyable; copies continue the same stream
/// independently.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform in [0, 1).
  [[nodiscard]] Real uniform() {
    return std::uniform_real_distribution<Real>(0.0, 1.0)(engine_);
  }

  /// Uniform in [lo, hi).
  [[nodiscard]] Real uniform(Real lo, Real hi) {
    return std::uniform_real_distribution<Real>(lo, hi)(engine_);
  }

  /// Standard normal.
  [[nodiscard]] Real gaussian() {
    return std::normal_distribution<Real>(0.0, 1.0)(engine_);
  }

  [[nodiscard]] Real gaussian(Real mean, Real sigma) {
    return std::normal_distribution<Real>(mean, sigma)(engine_);
  }

  /// Log-uniform in [lo, hi]; lo, hi must be positive.
  [[nodiscard]] Real log_uniform(Real lo, Real hi) {
    require(lo > 0.0 && hi >= lo, "Rng::log_uniform: need 0 < lo <= hi");
    const Real u = uniform(std::log(lo), std::log(hi));
    return std::exp(u);
  }

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::uint64_t integer(std::uint64_t lo, std::uint64_t hi) {
    return std::uniform_int_distribution<std::uint64_t>(lo, hi)(engine_);
  }

  /// Bernoulli with probability p.
  [[nodiscard]] bool chance(Real p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Derive an independent child stream (e.g. one per dataset pattern).
  [[nodiscard]] Rng fork() { return Rng(engine_()); }

  [[nodiscard]] std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace datc::dsp
