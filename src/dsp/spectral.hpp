#pragma once
// Welch power-spectral-density estimation and window functions, used for
// the FCC emission-mask check on the IR-UWB pulse train and for spectrum
// sanity tests on the synthetic sEMG.

#include <span>
#include <vector>

#include "dsp/types.hpp"

namespace datc::dsp {

enum class WindowKind { kRect, kHann, kHamming, kBlackman };

/// Window of length n (n >= 1), periodic form (suitable for spectral
/// averaging).
[[nodiscard]] std::vector<Real> make_window(WindowKind kind, std::size_t n);

struct PsdEstimate {
  std::vector<Real> freq_hz;     ///< bin centre frequencies, 0 .. fs/2
  std::vector<Real> psd_v2_hz;   ///< one-sided PSD, V^2/Hz
};

/// Welch PSD with `segment` samples per segment (rounded up to a power of
/// two), 50 % overlap and the given window.
[[nodiscard]] PsdEstimate welch_psd(std::span<const Real> x, Real fs_hz,
                                    std::size_t segment,
                                    WindowKind window = WindowKind::kHann);

/// Converts a one-sided PSD in V^2/Hz (across a resistance of `ohms`)
/// to dBm/MHz — the unit of the FCC UWB mask (-41.3 dBm/MHz).
[[nodiscard]] Real psd_to_dbm_per_mhz(Real psd_v2_hz, Real ohms = 50.0);

/// Maximum of a PSD in dBm/MHz over a frequency band [f_lo, f_hi].
[[nodiscard]] Real peak_dbm_per_mhz(const PsdEstimate& psd, Real f_lo_hz,
                                    Real f_hi_hz, Real ohms = 50.0);

}  // namespace datc::dsp
