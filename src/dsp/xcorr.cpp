#include "dsp/xcorr.hpp"

#include "dsp/stats.hpp"
#include "dsp/types.hpp"

namespace datc::dsp {

Real correlation_at_lag(std::span<const Real> a, std::span<const Real> b,
                        long lag, std::size_t min_overlap) {
  require(a.size() == b.size(), "correlation_at_lag: size mismatch");
  const auto n = static_cast<long>(a.size());
  // b delayed by `lag` means b[i] = a[i - lag]; score a[i] against
  // b[i + lag] over the overlap.
  const long start_a = lag > 0 ? 0 : -lag;
  const long start_b = lag > 0 ? lag : 0;
  const long overlap = n - (lag > 0 ? lag : -lag);
  require(overlap >= static_cast<long>(min_overlap),
          "correlation_at_lag: overlap too small");
  return pearson(a.subspan(static_cast<std::size_t>(start_a),
                           static_cast<std::size_t>(overlap)),
                 b.subspan(static_cast<std::size_t>(start_b),
                           static_cast<std::size_t>(overlap)));
}

LagEstimate best_lag(std::span<const Real> a, std::span<const Real> b,
                     std::size_t max_lag) {
  require(a.size() == b.size() && a.size() > 2 * max_lag + 8,
          "best_lag: record too short for the lag range");
  LagEstimate best;
  best.correlation = -2.0;
  for (long lag = -static_cast<long>(max_lag);
       lag <= static_cast<long>(max_lag); ++lag) {
    const Real c = correlation_at_lag(a, b, lag);
    if (c > best.correlation) {
      best.correlation = c;
      best.lag_samples = lag;
    }
  }
  return best;
}

std::vector<Real> xcorr_normalized(std::span<const Real> a,
                                   std::span<const Real> b,
                                   std::size_t max_lag) {
  require(a.size() == b.size() && a.size() > 2 * max_lag + 8,
          "xcorr_normalized: record too short for the lag range");
  std::vector<Real> out;
  out.reserve(2 * max_lag + 1);
  for (long lag = -static_cast<long>(max_lag);
       lag <= static_cast<long>(max_lag); ++lag) {
    out.push_back(correlation_at_lag(a, b, lag));
  }
  return out;
}

}  // namespace datc::dsp
