#include "dsp/emg_metrics.hpp"
#include "dsp/spectral.hpp"
#include "dsp/types.hpp"

#include <cmath>
#include <numbers>

namespace datc::dsp {

Real median_frequency_hz(const PsdEstimate& psd) {
  require(!psd.psd_v2_hz.empty(), "median_frequency_hz: empty PSD");
  Real total = 0.0;
  for (const Real p : psd.psd_v2_hz) total += p;
  require(total > 0.0, "median_frequency_hz: zero-power PSD");
  Real acc = 0.0;
  for (std::size_t k = 0; k < psd.psd_v2_hz.size(); ++k) {
    const Real next = acc + psd.psd_v2_hz[k];
    if (next >= total / 2.0) {
      // Linear interpolation inside the crossing bin.
      const Real need = total / 2.0 - acc;
      const Real frac = psd.psd_v2_hz[k] > 0.0 ? need / psd.psd_v2_hz[k] : 0.0;
      const Real df = k + 1 < psd.freq_hz.size()
                          ? psd.freq_hz[k + 1] - psd.freq_hz[k]
                          : (k > 0 ? psd.freq_hz[k] - psd.freq_hz[k - 1]
                                   : 0.0);
      return psd.freq_hz[k] + frac * df;
    }
    acc = next;
  }
  return psd.freq_hz.back();
}

Real mean_frequency_hz(const PsdEstimate& psd) {
  require(!psd.psd_v2_hz.empty(), "mean_frequency_hz: empty PSD");
  Real total = 0.0;
  Real weighted = 0.0;
  for (std::size_t k = 0; k < psd.psd_v2_hz.size(); ++k) {
    total += psd.psd_v2_hz[k];
    weighted += psd.psd_v2_hz[k] * psd.freq_hz[k];
  }
  require(total > 0.0, "mean_frequency_hz: zero-power PSD");
  return weighted / total;
}

Real median_frequency_hz(std::span<const Real> x, Real fs_hz,
                         std::size_t segment) {
  return median_frequency_hz(welch_psd(x, fs_hz, segment));
}

Real goertzel_power(std::span<const Real> x, Real fs_hz, Real f_hz) {
  require(!x.empty(), "goertzel_power: empty input");
  require(fs_hz > 0.0 && f_hz >= 0.0 && f_hz <= fs_hz / 2.0,
          "goertzel_power: frequency outside [0, fs/2]");
  const Real w = 2.0 * std::numbers::pi_v<Real> * f_hz / fs_hz;
  const Real coeff = 2.0 * std::cos(w);
  Real s0 = 0.0;
  Real s1 = 0.0;
  Real s2 = 0.0;
  for (const Real v : x) {
    s0 = v + coeff * s1 - s2;
    s2 = s1;
    s1 = s0;
  }
  const Real n = static_cast<Real>(x.size());
  const Real power =
      (s1 * s1 + s2 * s2 - coeff * s1 * s2) / (n * n / 4.0);
  return power;  // ~A^2 for a tone of amplitude A at f_hz
}

Real tone_power_fraction(std::span<const Real> x, Real fs_hz, Real f_hz) {
  Real total = 0.0;
  for (const Real v : x) total += v * v;
  if (total <= 0.0) return 0.0;
  const Real tone = goertzel_power(x, fs_hz, f_hz) *
                    static_cast<Real>(x.size()) / 2.0;
  return std::min(tone / total, Real{1.0});
}

}  // namespace datc::dsp
