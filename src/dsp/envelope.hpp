#pragma once
// Rectification and envelope extraction. Muscle force is read out of sEMG
// as the Average Rectified Value (ARV) — the quantity the paper correlates
// reconstructed signals against (Fig. 3D).

#include <span>
#include <vector>

#include "dsp/types.hpp"

namespace datc::dsp {

/// Full-wave rectification |x|.
[[nodiscard]] std::vector<Real> rectify(std::span<const Real> x);

/// Half-wave rectification max(x, 0).
[[nodiscard]] std::vector<Real> rectify_half(std::span<const Real> x);

/// ARV envelope: centred moving average of |x| over `window_s` seconds.
/// Zero-lag so that correlations are not degraded by group delay.
[[nodiscard]] std::vector<Real> arv_envelope(std::span<const Real> x,
                                             Real fs_hz, Real window_s);

/// RMS envelope over a centred window of `window_s` seconds.
[[nodiscard]] std::vector<Real> rms_envelope(std::span<const Real> x,
                                             Real fs_hz, Real window_s);

/// Converts a window duration to an odd sample count >= 1.
[[nodiscard]] std::size_t window_samples(Real fs_hz, Real window_s);

}  // namespace datc::dsp
