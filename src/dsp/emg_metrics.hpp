#pragma once
// Classical sEMG spectral metrics: median/mean frequency (the standard
// fatigue indicators) and a Goertzel single-bin DFT used to measure
// powerline contamination. These support the fatigue-robustness
// experiments: D-ATC must keep tracking force while the sEMG spectrum
// compresses.

#include <span>

#include "dsp/spectral.hpp"
#include "dsp/types.hpp"

namespace datc::dsp {

/// Median frequency: the frequency splitting the PSD into equal halves.
[[nodiscard]] Real median_frequency_hz(const PsdEstimate& psd);

/// Mean (centroid) frequency of the PSD.
[[nodiscard]] Real mean_frequency_hz(const PsdEstimate& psd);

/// Convenience: Welch PSD + median frequency of a record.
[[nodiscard]] Real median_frequency_hz(std::span<const Real> x, Real fs_hz,
                                       std::size_t segment = 1024);

/// Goertzel algorithm: power of a single frequency bin (V^2), exact for
/// tones at bin centres and far cheaper than a full FFT for one bin.
[[nodiscard]] Real goertzel_power(std::span<const Real> x, Real fs_hz,
                                  Real f_hz);

/// Ratio of power at f_hz (via Goertzel, one bin) to total power — the
/// powerline-contamination figure used by the artifact benches.
[[nodiscard]] Real tone_power_fraction(std::span<const Real> x, Real fs_hz,
                                       Real f_hz);

}  // namespace datc::dsp
