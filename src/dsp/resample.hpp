#pragma once
// Sample-rate conversion. The dataset is acquired at 2.5 kHz while the DTC
// clock runs at 2 kHz; the encoder resamples the comparator output across
// that boundary (paper: "resampled hence synchronized with the DTC system
// clock").

#include "dsp/types.hpp"

namespace datc::dsp {

/// Linear-interpolation resampling of a whole record to a new rate.
/// Output length is round(duration * new_rate).
[[nodiscard]] TimeSeries resample_linear(const TimeSeries& x, Real new_rate_hz);

/// Integer-factor decimation with prior 8th-order Butterworth anti-alias
/// low-pass at 0.4 * (fs / factor).
[[nodiscard]] TimeSeries decimate(const TimeSeries& x, std::size_t factor);

/// Zero-order hold upsampling by an integer factor (models a DAC output).
[[nodiscard]] TimeSeries hold_upsample(const TimeSeries& x,
                                       std::size_t factor);

}  // namespace datc::dsp
