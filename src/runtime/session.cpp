#include "runtime/session.hpp"

#include <algorithm>
#include <limits>

#include "core/streaming.hpp"
#include "core/streaming_reconstruct.hpp"
#include "dsp/types.hpp"
#include "runtime/thread_pool.hpp"
#include "uwb/aer.hpp"
#include "uwb/link_pipeline.hpp"
#include "uwb/modulator.hpp"
#include "uwb/receiver.hpp"

namespace datc::runtime {

namespace {

/// Receiver configuration shared by both session flavours — must mirror
/// run_datc_over_link / run_aer_over_link exactly.
uwb::UwbReceiverConfig receiver_config(const SessionConfig& config,
                                       const uwb::ModulatorConfig& mod,
                                       unsigned address_bits) {
  uwb::UwbReceiverConfig rxc;
  rxc.detector = config.link.detector;
  rxc.modulator = mod;
  rxc.address_bits = address_bits;
  rxc.decode_codes = true;
  rxc.cache_detection = config.cache_detection;
  return rxc;
}

uwb::ModulatorConfig frame_modulator(const SessionConfig& config) {
  uwb::ModulatorConfig mod = config.link.modulator;
  mod.code_bits = config.encoder.dtc.dac_bits;
  return mod;
}

/// The two link Rng streams, derived exactly as the batch link functions
/// derive them (channel stream = the seed engine after forking off the
/// receiver stream).
struct LinkRngs {
  dsp::Rng rx;
  dsp::Rng channel;
};

LinkRngs link_rngs(std::uint64_t seed) {
  dsp::Rng rng(seed);
  dsp::Rng rx = rng.fork();
  return LinkRngs{rx, rng};
}

}  // namespace

SessionReport session_report_delta(const SessionReport& after,
                                   const SessionReport& before) {
  SessionReport d;
  d.channel = after.channel;
  d.samples_in = after.samples_in - before.samples_in;
  d.events_tx = after.events_tx - before.events_tx;
  d.pulses_tx = after.pulses_tx - before.pulses_tx;
  d.pulses_erased = after.pulses_erased - before.pulses_erased;
  d.events_rx = after.events_rx - before.events_rx;
  d.arv_emitted = after.arv_emitted - before.arv_emitted;
  d.events_quarantined = after.events_quarantined - before.events_quarantined;
  d.arv_held = after.arv_held - before.arv_held;
  d.health_trips = after.health_trips - before.health_trips;
  d.decode = uwb::decode_stats_delta(after.decode, before.decode);
  return d;
}

// ------------------------------------------------------- StreamingSession

StreamingSession::StreamingSession(const SessionConfig& config,
                                   std::uint32_t channel_id)
    : config_(config),
      channel_id_(channel_id),
      encoder_(config.encoder, config.analog_fs_hz,
               core::ArenaSink{&events_chunk_},
               static_cast<std::uint16_t>(channel_id & 0xffffu)),
      modulator_(frame_modulator(config), /*address_bits=*/0),
      channel_(config.link.channel,
               link_rngs(config.link.seed ^ channel_id).channel),
      receiver_(receiver_config(config, frame_modulator(config), 0),
                config.link.channel,
                link_rngs(config.link.seed ^ channel_id).rx),
      reconstructor_(config.recon, config.calibration),
      health_(config.health) {
  dsp::require(config_.calibration != nullptr,
               "StreamingSession: null calibration");
}

void StreamingSession::run_link_chunk(Real watermark, bool flush) {
  // Single-channel frames carry no address field (the channel tag rides
  // on the event struct only), so the pulse layout is modulate_datc's.
  tx_chunk_.clear();
  modulator_.modulate_chunk(events_chunk_.events(), tx_chunk_);

  rx_chunk_.clear();
  channel_.propagate_chunk(tx_chunk_, watermark, rx_chunk_);
  if (flush) channel_.flush(rx_chunk_);

  decoded_chunk_.clear();
  receiver_.decode_chunk(rx_chunk_,
                         flush ? std::numeric_limits<Real>::infinity()
                               : channel_.release_watermark(),
                         decoded_chunk_);
  events_rx_ += decoded_chunk_.size();
  if (config_.keep_rx_events) {
    for (const auto& e : decoded_chunk_.events()) {
      rx_events_.add(e.time_s, e.vth_code, e.channel);
    }
  }
  if (event_tee_ && !decoded_chunk_.empty()) {
    event_tee_(decoded_chunk_.events());
  }

  // Decode health: in private mode the garbage signal is false-alarm
  // code bits (noise decoded as data). The monitor never changes the
  // chain while disabled or healthy, preserving bit-identicality.
  const Real duration = static_cast<Real>(samples_in_) / config_.analog_fs_hz;
  const std::uint64_t bad_bits = receiver_.stats().false_alarm_bits;
  health_.observe(flush ? duration : receiver_.event_time_watermark(),
                  decoded_chunk_.size(),
                  static_cast<std::size_t>(bad_bits - last_bad_bits_));
  last_bad_bits_ = bad_bits;

  const bool hold = !health_.healthy();
  if (hold) {
    // Envelope hold: withhold this chunk's (suspect) events from the
    // reconstructor; the watermark still advances, and the freshly
    // drained samples are pinned to the last good value below.
    events_quarantined_ += decoded_chunk_.size();
  } else {
    reconstructor_.push_events(decoded_chunk_.events());
  }
  if (flush) {
    if (samples_in_ > 0) reconstructor_.finish(duration);
  } else {
    reconstructor_.advance_to(receiver_.event_time_watermark());
  }
  const std::size_t before = arv_.size();
  reconstructor_.drain(arv_);
  if (hold) {
    for (std::size_t i = before; i < arv_.size(); ++i) {
      arv_[i] = last_good_arv_;
    }
    arv_held_ += arv_.size() - before;
  } else if (arv_.size() > before) {
    last_good_arv_ = arv_.back();
  }
  arv_emitted_ = reconstructor_.emitted();
  peak_bytes_ = std::max(peak_bytes_, buffered_bytes());
}

void StreamingSession::push_chunk(std::span<const Real> samples_v) {
  dsp::require(!finished_, "StreamingSession: push_chunk after finish");
  if (samples_v.empty()) return;
  events_chunk_.clear();
  encoder_.push_block(samples_v);
  samples_in_ += samples_v.size();
  // The reconstruction watermark must also bound the (still unknown)
  // final duration, so cap the encoder's clock watermark at the newest
  // sample's record time.
  const Real t_signal =
      static_cast<Real>(samples_in_) / config_.analog_fs_hz;
  run_link_chunk(std::min(encoder_.event_time_watermark(), t_signal),
                 /*flush=*/false);
}

void StreamingSession::finish() {
  if (finished_) return;
  finished_ = true;
  events_chunk_.clear();
  run_link_chunk(std::numeric_limits<Real>::infinity(), /*flush=*/true);
}

void StreamingSession::drain_arv(std::vector<Real>& out) {
  out.insert(out.end(), arv_.begin(), arv_.end());
  arv_.clear();
}

SessionReport StreamingSession::report() const {
  SessionReport r;
  r.channel = channel_id_;
  r.samples_in = samples_in_;
  r.events_tx = encoder_.events_emitted();
  r.pulses_tx = modulator_.pulses_emitted();
  r.pulses_erased = channel_.erased();
  r.events_rx = events_rx_;
  r.arv_emitted = arv_emitted_;
  r.events_quarantined = events_quarantined_;
  r.arv_held = arv_held_;
  r.health_trips = health_.trips();
  r.decode = receiver_.stats();
  return r;
}

SessionReport StreamingSession::take_delta() {
  const SessionReport now = report();
  const SessionReport d = session_report_delta(now, last_delta_);
  last_delta_ = now;
  return d;
}

std::size_t StreamingSession::buffered_bytes() const {
  return channel_.buffered() * sizeof(uwb::PulseEmission) +
         receiver_.pending() * sizeof(uwb::PulseEmission) +
         reconstructor_.buffered_bytes() + arv_.capacity() * sizeof(Real) +
         tx_chunk_.pulses().capacity() * sizeof(uwb::PulseEmission) +
         rx_chunk_.pulses().capacity() * sizeof(uwb::PulseEmission) +
         events_chunk_.capacity() * sizeof(core::Event);
}

// ----------------------------------------------- SharedAerStreamingSession

SharedAerStreamingSession::SharedAerStreamingSession(
    const SessionConfig& config, const uwb::SharedAerConfig& shared,
    std::size_t num_channels)
    : config_(config),
      shared_(shared),
      modulator_(frame_modulator(config), shared.aer.address_bits),
      channel_(config.link.channel, link_rngs(config.link.seed).channel),
      receiver_(receiver_config(config, frame_modulator(config),
                                shared.aer.address_bits),
                config.link.channel, link_rngs(config.link.seed).rx),
      health_(config.health) {
  dsp::require(config_.calibration != nullptr,
               "SharedAerStreamingSession: null calibration");
  dsp::require(num_channels >= 1,
               "SharedAerStreamingSession: need >= 1 channel");
  dsp::require(shared_.aer.address_bits <= 16,
               "SharedAerStreamingSession: address space wider than "
               "Event::channel");
  dsp::require(num_channels <= (std::size_t{1} << shared_.aer.address_bits),
               "SharedAerStreamingSession: more channels than the address "
               "space");
  dsp::require(shared_.aer.min_spacing_s >= 0.0 &&
                   shared_.aer.max_queue_delay_s >= 0.0,
               "SharedAerStreamingSession: timing parameters must be "
               "non-negative");
  dsp::require(!shared_.ideal_radio,
               "SharedAerStreamingSession: ideal_radio is a batch-only "
               "reference mode");
  queues_.resize(num_channels);
  rx_events_.resize(num_channels);
  arv_.resize(num_channels);
  events_rx_.assign(num_channels, 0);
  arv_emitted_.assign(num_channels, 0);
  arv_held_.assign(num_channels, 0);
  last_good_arv_.assign(num_channels, 0.0);
  encoders_.reserve(num_channels);
  reconstructors_.reserve(num_channels);
  for (std::size_t c = 0; c < num_channels; ++c) {
    encoders_.push_back(
        std::make_unique<core::StreamingDatcEncoderT<core::ArenaSink>>(
            config_.encoder, config_.analog_fs_hz,
            core::ArenaSink{&events_chunk_},
            static_cast<std::uint16_t>(c)));
    reconstructors_.push_back(std::make_unique<core::StreamingDatcReconstructor>(
        config_.recon, config_.calibration));
  }
}

/// Pops every event that is provably next in aer_merge's stable
/// (time, channel, FIFO) order and runs the arbiter recurrence on it.
void SharedAerStreamingSession::merge_below(Real watermark) {
  merged_chunk_.clear();
  while (true) {
    std::size_t best = queues_.size();
    for (std::size_t c = 0; c < queues_.size(); ++c) {
      if (queues_[c].empty()) continue;
      if (best == queues_.size() ||
          queues_[c].front().time_s < queues_[best].front().time_s) {
        best = c;  // strict <: equal times keep the lower channel
      }
    }
    if (best == queues_.size()) break;
    const core::Event e = queues_[best].front();
    // An event at or beyond the watermark may still be preceded by a
    // future event of another (currently drained) channel: wait.
    if (!(e.time_s < watermark)) break;
    queues_[best].pop_front();
    ++arbiter_.in_events;
    const Real send_at = std::max(e.time_s, next_free_);
    const Real delay = send_at - e.time_s;
    if (delay > shared_.aer.max_queue_delay_s) {
      ++arbiter_.dropped;
      continue;
    }
    merged_chunk_.add(send_at, e.vth_code,
                      static_cast<std::uint16_t>(best));
    next_free_ = send_at + shared_.aer.min_spacing_s;
    ++arbiter_.sent;
    arbiter_.max_delay_s = std::max(arbiter_.max_delay_s, delay);
  }
}

void SharedAerStreamingSession::run_link_chunk(Real merged_watermark,
                                               Real recon_watermark_cap,
                                               bool flush) {
  tx_chunk_.clear();
  modulator_.modulate_chunk(merged_chunk_.events(), tx_chunk_);

  rx_chunk_.clear();
  channel_.propagate_chunk(tx_chunk_, merged_watermark, rx_chunk_);
  if (flush) channel_.flush(rx_chunk_);

  decoded_chunk_.clear();
  receiver_.decode_chunk(rx_chunk_,
                         flush ? std::numeric_limits<Real>::infinity()
                               : channel_.release_watermark(),
                         decoded_chunk_);

  if (event_tee_ && !decoded_chunk_.empty()) {
    event_tee_(decoded_chunk_.events());
  }

  // Decode health is link-wide in shared mode: one radio, one monitor.
  // The garbage signal is demux address errors (decoded frames whose
  // address is outside the channel map).
  const Real duration = static_cast<Real>(samples_in_per_channel_) /
                        config_.analog_fs_hz;
  std::size_t chunk_good = 0;
  std::size_t chunk_bad = 0;
  for (const auto& e : decoded_chunk_.events()) {
    (e.channel < queues_.size() ? chunk_good : chunk_bad) += 1;
  }
  health_.observe(flush ? duration
                        : std::min(receiver_.event_time_watermark(),
                                   recon_watermark_cap),
                  chunk_good, chunk_bad);
  const bool hold = !health_.healthy();

  // Demux straight into the per-channel reconstructors (withholding the
  // whole chunk while the monitor is tripped — envelope hold below).
  for (const auto& e : decoded_chunk_.events()) {
    ++demux_.in_events;
    if (e.channel < queues_.size()) {
      ++demux_.sent;
      ++events_rx_[e.channel];
      if (config_.keep_rx_events) {
        rx_events_[e.channel].add(e.time_s, e.vth_code, e.channel);
      }
      if (hold) {
        ++events_quarantined_;
      } else {
        reconstructors_[e.channel]->push_events({&e, 1});
      }
    } else {
      ++demux_.invalid_address;
    }
  }
  // Arbitration backlog can push send times past the (still unknown)
  // record end, but the reconstruction watermark must never exceed the
  // final duration — cap it at the newest sample's record time.
  const Real event_watermark =
      std::min(receiver_.event_time_watermark(), recon_watermark_cap);
  for (std::size_t c = 0; c < reconstructors_.size(); ++c) {
    if (flush) {
      if (samples_in_per_channel_ > 0) reconstructors_[c]->finish(duration);
    } else {
      reconstructors_[c]->advance_to(event_watermark);
    }
    const std::size_t before = arv_[c].size();
    reconstructors_[c]->drain(arv_[c]);
    if (hold) {
      for (std::size_t i = before; i < arv_[c].size(); ++i) {
        arv_[c][i] = last_good_arv_[c];
      }
      arv_held_[c] += arv_[c].size() - before;
    } else if (arv_[c].size() > before) {
      last_good_arv_[c] = arv_[c].back();
    }
    arv_emitted_[c] = reconstructors_[c]->emitted();
  }
}

void SharedAerStreamingSession::push_chunk(std::span<const Real> samples_v) {
  dsp::require(!finished_,
               "SharedAerStreamingSession: push_chunk after finish");
  const std::size_t n_ch = queues_.size();
  dsp::require(samples_v.size() % n_ch == 0,
               "SharedAerStreamingSession: chunk must hold the same sample "
               "count for every channel (channel-major)");
  const std::size_t k = samples_v.size() / n_ch;
  if (k == 0) return;
  Real watermark = std::numeric_limits<Real>::infinity();
  for (std::size_t c = 0; c < n_ch; ++c) {
    events_chunk_.clear();
    encoders_[c]->push_block(samples_v.subspan(c * k, k));
    for (const auto& e : events_chunk_.events()) queues_[c].push_back(e);
    watermark = std::min(watermark, encoders_[c]->event_time_watermark());
  }
  samples_in_per_channel_ += k;
  const Real t_signal = static_cast<Real>(samples_in_per_channel_) /
                        config_.analog_fs_hz;
  watermark = std::min(watermark, t_signal);
  merge_below(watermark);
  // Future merged events leave at max(event time, arbiter busy-until).
  run_link_chunk(std::max(watermark, next_free_), t_signal,
                 /*flush=*/false);
}

void SharedAerStreamingSession::finish() {
  if (finished_) return;
  finished_ = true;
  const Real inf = std::numeric_limits<Real>::infinity();
  merge_below(inf);
  run_link_chunk(inf, inf, /*flush=*/true);
}

void SharedAerStreamingSession::drain_arv(std::size_t channel,
                                          std::vector<Real>& out) {
  auto& src = arv_.at(channel);
  out.insert(out.end(), src.begin(), src.end());
  src.clear();
}

SessionReport SharedAerStreamingSession::report(std::size_t channel) const {
  dsp::require(channel < queues_.size(),
               "SharedAerStreamingSession: channel out of range");
  SessionReport r;
  r.channel = static_cast<std::uint32_t>(channel);
  r.samples_in = samples_in_per_channel_;
  r.events_tx = encoders_[channel]->events_emitted();
  // The radio is link-wide in shared mode; per-channel pulse counts do
  // not exist (mirrors the batch SharedLinkReport split).
  r.events_rx = events_rx_[channel];
  r.arv_emitted = arv_emitted_[channel];
  // Quarantine count and trips are link-wide (one radio, one monitor);
  // held samples are per channel.
  r.events_quarantined = events_quarantined_;
  r.arv_held = arv_held_[channel];
  r.health_trips = health_.trips();
  return r;
}

// --------------------------------------------------------- SessionManager

SessionManager::SessionManager(const Config& config)
    : config_(config),
      pool_(std::make_unique<ThreadPool>(config.jobs)) {
  dsp::require(config_.max_pending_chunks >= 1,
               "SessionManager: need a queue bound of at least 1");
  dsp::require(config_.stall_timeout_s >= 0.0,
               "SessionManager: stall timeout must be non-negative");
  if (config_.stall_timeout_s > 0.0) {
    watchdog_ = std::thread([this] { watchdog_loop(); });
  }
}

SessionManager::~SessionManager() {
  try {
    drain();
  } catch (...) {
    // Destruction must not throw; errors were the caller's to collect.
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    cv_watchdog_.notify_all();
  }
  if (watchdog_.joinable()) watchdog_.join();
}

void SessionManager::watchdog_loop() {
  // Polls at a quarter of the timeout: a stall is flagged no later than
  // 1.25 timeouts after it began. The flag is sticky and observational —
  // the chunk is never interrupted (there is no safe way to kill it),
  // the operator just learns which strand is wedged.
  const auto period = std::chrono::duration<double>(
      std::max(config_.stall_timeout_s / 4.0, 1e-3));
  std::unique_lock<std::mutex> lock(mu_);
  while (!stopping_) {
    cv_watchdog_.wait_for(lock, period, [this] { return stopping_; });
    if (stopping_) return;
    const auto now = std::chrono::steady_clock::now();
    for (auto& slot : slots_) {
      if (!slot->running || slot->stall_flagged) continue;
      const std::chrono::duration<double> elapsed = now - slot->run_start;
      if (elapsed.count() > config_.stall_timeout_s) {
        slot->stall_flagged = true;
      }
    }
  }
}

std::size_t SessionManager::jobs() const { return pool_->size(); }

std::size_t SessionManager::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slots_.size();
}

SessionManager::SessionId SessionManager::add(
    std::unique_ptr<Session> session) {
  dsp::require(session != nullptr, "SessionManager: null session");
  std::lock_guard<std::mutex> lock(mu_);
  auto slot = std::make_unique<Slot>();
  slot->session = std::move(session);
  slots_.push_back(std::move(slot));
  return slots_.size() - 1;
}

Session& SessionManager::session(SessionId id) {
  std::lock_guard<std::mutex> lock(mu_);
  dsp::require(id < slots_.size(), "SessionManager: bad session id");
  dsp::require(slots_[id]->session != nullptr,
               "SessionManager: session was released");
  return *slots_[id]->session;
}

void SessionManager::release(SessionId id) {
  std::unique_lock<std::mutex> lock(mu_);
  dsp::require(id < slots_.size(), "SessionManager: bad session id");
  Slot& slot = *slots_[id];
  dsp::require(slot.queue.empty() && !slot.finish_pending,
               "SessionManager: release with work still queued");
  // The strand may still be between its last session call and marking
  // itself idle; session calls only happen while active, so waiting for
  // !active makes the reset safe (finished sessions are already idle —
  // this wait is a few instructions, not a chunk).
  cv_idle_.wait(lock, [&slot] { return !slot.active; });
  slot.session.reset();
}

void SessionManager::submit_chunk(SessionId id,
                                  std::span<const Real> samples_v) {
  std::unique_lock<std::mutex> lock(mu_);
  dsp::require(id < slots_.size(), "SessionManager: bad session id");
  Slot& slot = *slots_[id];
  dsp::require(slot.session != nullptr,
               "SessionManager: submit to a released session");
  if (slot.quarantined) {
    ++slot.discarded;
    return;
  }
  cv_space_.wait(lock, [&slot, this] {
    return slot.quarantined ||
           slot.queue.size() < config_.max_pending_chunks;
  });
  if (slot.quarantined) {
    ++slot.discarded;
    return;
  }
  slot.queue.emplace_back(samples_v.begin(), samples_v.end());
  schedule_locked(id);
}

void SessionManager::submit_finish(SessionId id) {
  std::lock_guard<std::mutex> lock(mu_);
  dsp::require(id < slots_.size(), "SessionManager: bad session id");
  dsp::require(slots_[id]->session != nullptr,
               "SessionManager: submit to a released session");
  if (slots_[id]->quarantined) return;
  slots_[id]->finish_pending = true;
  schedule_locked(id);
}

SessionManager::SessionHealth SessionManager::health(SessionId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  dsp::require(id < slots_.size(), "SessionManager: bad session id");
  const Slot& slot = *slots_[id];
  SessionHealth h;
  h.quarantined = slot.quarantined;
  h.error = slot.error;
  h.chunks_discarded = slot.discarded;
  h.stall_flagged = slot.stall_flagged;
  return h;
}

std::size_t SessionManager::quarantined_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& slot : slots_) n += slot->quarantined ? 1 : 0;
  return n;
}

void SessionManager::schedule_locked(SessionId id) {
  Slot& slot = *slots_[id];
  if (slot.active) return;  // the running strand will pick the work up
  if (slot.queue.empty() && !slot.finish_pending) return;
  slot.active = true;
  pool_->submit([this, id] { run_strand(id); });
}

void SessionManager::run_strand(SessionId id) {
  Slot* slot_ptr = nullptr;
  {
    // slots_ may grow (reallocate) concurrently; the Slot itself is
    // heap-stable once added.
    std::lock_guard<std::mutex> lock(mu_);
    slot_ptr = slots_[id].get();
  }
  Slot& slot = *slot_ptr;
  while (true) {
    std::vector<Real> chunk;
    bool do_finish = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!slot.queue.empty()) {
        chunk = std::move(slot.queue.front());
        slot.queue.pop_front();
      } else if (slot.finish_pending) {
        slot.finish_pending = false;
        do_finish = true;
      } else {
        slot.active = false;
        cv_idle_.notify_all();
        return;
      }
    }
    cv_space_.notify_all();
    {
      std::lock_guard<std::mutex> lock(mu_);
      slot.running = true;
      slot.run_start = std::chrono::steady_clock::now();
    }
    try {
      if (do_finish) {
        slot.session->finish();
      } else {
        slot.session->push_chunk(chunk);
      }
      std::lock_guard<std::mutex> lock(mu_);
      slot.running = false;
    } catch (const std::exception& e) {
      quarantine(slot, std::current_exception(), e.what());
      return;
    } catch (...) {
      quarantine(slot, std::current_exception(),
                 "(non-std exception from session)");
      return;
    }
  }
}

void SessionManager::quarantine(Slot& slot, std::exception_ptr err,
                                const char* what) {
  // Fault isolation: the throwing session is retired with its error
  // recorded and its pending work discarded (counted); every other
  // session keeps running. The engine stays alive either way.
  std::lock_guard<std::mutex> lock(mu_);
  slot.running = false;
  if (first_error_ == nullptr) first_error_ = err;
  slot.quarantined = true;
  slot.error = what;
  slot.discarded += slot.queue.size();
  slot.queue.clear();
  slot.finish_pending = false;
  slot.active = false;
  cv_space_.notify_all();
  cv_idle_.notify_all();
}

void SessionManager::drain() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_idle_.wait(lock, [this] {
    for (const auto& slot : slots_) {
      if (slot->active || !slot->queue.empty() || slot->finish_pending) {
        return false;
      }
    }
    return true;
  });
  if (config_.rethrow_on_drain && first_error_ != nullptr) {
    const std::exception_ptr err = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(err);
  }
}

}  // namespace datc::runtime
