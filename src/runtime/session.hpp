#pragma once
// Streaming session engine: the full D-ATC chain — encode -> modulate ->
// channel -> decode -> reconstruct — run incrementally on sample chunks
// with O(chunk + window) working set, for long-lived sessions the batch
// PipelineRunner cannot serve (it needs the whole recording, the whole
// event stream and the whole pulse train in memory before scoring).
//
// Bit-identicality contract: for the same seeds, a session fed any
// chunking of a recording emits exactly the events, decoded stream and
// ARV samples of the batch pipeline (run_channel / run_shared). Each
// stage guarantees this through watermarks and split Rng streams — see
// uwb/streaming_link.hpp and core/streaming_reconstruct.hpp. Tests sweep
// chunk sizes {1, 7, 64, 4096, whole record} against the batch engine.
//
// SessionManager multiplexes many concurrent sessions over the thread
// pool: chunks of one session run strictly in submission order (a strand),
// different sessions run in parallel, and a bounded per-session queue
// gives the producer backpressure instead of unbounded buffering.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "core/datc_encoder.hpp"
#include "core/event_arena.hpp"
#include "core/reconstruct.hpp"
#include "core/streaming.hpp"
#include "core/streaming_reconstruct.hpp"
#include "fault/health.hpp"
#include "uwb/aer.hpp"
#include "uwb/link_pipeline.hpp"
#include "uwb/modulator.hpp"
#include "uwb/receiver.hpp"
#include "uwb/streaming_link.hpp"

namespace datc::runtime {

class ThreadPool;

using dsp::Real;

/// Everything one streaming channel needs; sim::make_session_config
/// derives it from the batch EvalConfig + LinkConfig so the streaming and
/// batch pipelines are parameterised identically.
struct SessionConfig {
  core::DatcEncoderConfig encoder{};
  Real analog_fs_hz{2500.0};
  uwb::LinkConfig link{};  ///< link.seed is the base seed (xor channel id)
  core::ReconstructionConfig recon{};
  core::CalibrationPtr calibration;  ///< required (shared across sessions)
  bool cache_detection{true};  ///< bit-identical fast detection stage
  bool keep_rx_events{false};  ///< retain decoded events (tests/debug)
  /// Decode-health thresholds; default-disabled (all zero), in which case
  /// the session is bit-identical to one without the monitor. When armed
  /// and the monitor trips, the session holds the envelope at the last
  /// good value instead of reconstructing from garbage (counted in
  /// SessionReport::arv_held / events_quarantined).
  fault::LinkHealthConfig health{};
};

/// Cumulative per-session counters. SessionManager consumers read either
/// the running totals or the delta since their last poll.
struct SessionReport {
  std::uint32_t channel{0};
  std::size_t samples_in{0};
  std::size_t events_tx{0};
  std::size_t pulses_tx{0};
  std::size_t pulses_erased{0};
  std::size_t events_rx{0};
  std::size_t arv_emitted{0};
  /// Graceful-degradation counters (0 unless the health monitor is armed
  /// and tripped): decoded events withheld from reconstruction, ARV
  /// samples pinned to the last good value, and monitor trips.
  std::size_t events_quarantined{0};
  std::size_t arv_held{0};
  std::size_t health_trips{0};
  uwb::DecodeStats decode{};
};

/// Field-wise `after - before` (cumulative-counter delta).
[[nodiscard]] SessionReport session_report_delta(const SessionReport& after,
                                                 const SessionReport& before);

/// Sink for decoded events, called once per chunk with the events the
/// receiver released in that chunk (time-sorted, cumulative across calls).
/// The persistent event store's Recorder::offer is the intended target —
/// it copies and returns without blocking, so storage pressure never
/// stalls the decode strand. The tee runs on whichever thread drives the
/// session (a SessionManager strand worker, under its ordering guarantee).
using EventTee = std::function<void(std::span<const core::Event>)>;

/// Abstract chunk consumer the SessionManager schedules.
class Session {
 public:
  virtual ~Session() = default;
  /// Feed the next chunk of analog samples (layout is session-defined).
  virtual void push_chunk(std::span<const Real> samples_v) = 0;
  /// End of stream: flush every stage.
  virtual void finish() = 0;
};

/// One channel end-to-end over its private radio (the streaming
/// counterpart of PipelineRunner::run_channel; link seed = base ^ id).
class StreamingSession final : public Session {
 public:
  StreamingSession(const SessionConfig& config, std::uint32_t channel_id);

  void push_chunk(std::span<const Real> samples_v) override;
  void finish() override;

  /// Moves ARV samples emitted since the last drain into `out`.
  void drain_arv(std::vector<Real>& out);

  /// Tees every decoded chunk into `tee` (e.g. a store::Recorder). Set
  /// before the first push_chunk so the recording covers the session.
  void set_event_tee(EventTee tee) { event_tee_ = std::move(tee); }

  [[nodiscard]] SessionReport report() const;
  /// Cumulative report delta since the previous take_delta() call.
  [[nodiscard]] SessionReport take_delta();
  [[nodiscard]] const fault::DecodeHealthMonitor& health() const {
    return health_;
  }
  [[nodiscard]] bool finished() const { return finished_; }
  [[nodiscard]] const core::EventStream& rx_events() const {
    return rx_events_;
  }
  /// Working-set proxy (reorder + reassembly + reconstruction buffers).
  [[nodiscard]] std::size_t buffered_bytes() const;
  [[nodiscard]] std::size_t peak_buffered_bytes() const { return peak_bytes_; }

 private:
  SessionConfig config_;
  std::uint32_t channel_id_;
  core::EventArena events_chunk_;
  core::StreamingDatcEncoderT<core::ArenaSink> encoder_;
  uwb::StreamingModulator modulator_;
  uwb::StreamingChannel channel_;
  uwb::StreamingUwbReceiver receiver_;
  core::StreamingDatcReconstructor reconstructor_;
  uwb::PulseTrain tx_chunk_;
  uwb::PulseTrain rx_chunk_;
  core::EventStream decoded_chunk_;
  std::vector<Real> arv_;
  core::EventStream rx_events_;
  EventTee event_tee_;
  std::size_t samples_in_{0};
  std::size_t events_rx_{0};
  std::size_t arv_emitted_{0};
  std::size_t peak_bytes_{0};
  fault::DecodeHealthMonitor health_;
  std::size_t events_quarantined_{0};
  std::size_t arv_held_{0};
  Real last_good_arv_{0.0};
  std::uint64_t last_bad_bits_{0};  ///< false_alarm_bits at previous chunk
  bool finished_{false};
  SessionReport last_delta_{};

  void run_link_chunk(Real watermark, bool flush);
};

/// N channels contending for ONE arbitrated AER radio, streamed: the
/// per-channel encoders feed an incremental arbiter (carried next_free
/// state, k-way time/channel merge — exactly aer_merge's stable order),
/// one radio chain, and per-channel reconstructors after the demux.
/// Chunks arrive in lockstep rounds: push_chunk takes the samples of ALL
/// channels, channel-major ([ch0 k samples][ch1 k samples]...).
class SharedAerStreamingSession final : public Session {
 public:
  SharedAerStreamingSession(const SessionConfig& config,
                            const uwb::SharedAerConfig& shared,
                            std::size_t num_channels);

  void push_chunk(std::span<const Real> samples_v) override;
  void finish() override;

  /// Tees every decoded chunk (all channels, addresses on the events)
  /// into `tee`; one recording captures the whole shared link.
  void set_event_tee(EventTee tee) { event_tee_ = std::move(tee); }

  void drain_arv(std::size_t channel, std::vector<Real>& out);
  [[nodiscard]] SessionReport report(std::size_t channel) const;
  [[nodiscard]] const uwb::AerStats& arbiter_stats() const { return arbiter_; }
  [[nodiscard]] const uwb::AerStats& demux_stats() const { return demux_; }
  [[nodiscard]] const uwb::DecodeStats& decode_stats() const {
    return receiver_.stats();
  }
  [[nodiscard]] std::size_t num_channels() const { return encoders_.size(); }
  [[nodiscard]] const core::EventStream& rx_events(std::size_t channel) const {
    return rx_events_[channel];
  }
  [[nodiscard]] std::size_t pulses_tx() const {
    return modulator_.pulses_emitted();
  }
  [[nodiscard]] std::size_t pulses_erased() const { return channel_.erased(); }
  /// Link-wide health monitor (one radio → one monitor; bad = demux
  /// invalid-address outcomes).
  [[nodiscard]] const fault::DecodeHealthMonitor& health() const {
    return health_;
  }

 private:
  SessionConfig config_;
  uwb::SharedAerConfig shared_;
  core::EventArena events_chunk_;
  std::vector<std::unique_ptr<core::StreamingDatcEncoderT<core::ArenaSink>>>
      encoders_;
  std::vector<std::deque<core::Event>> queues_;  ///< per-channel, pre-merge
  uwb::AerStats arbiter_{};
  Real next_free_{-1.0};
  uwb::StreamingModulator modulator_;
  uwb::StreamingChannel channel_;
  uwb::StreamingUwbReceiver receiver_;
  std::vector<std::unique_ptr<core::StreamingDatcReconstructor>>
      reconstructors_;
  uwb::AerStats demux_{};
  core::EventStream merged_chunk_;
  uwb::PulseTrain tx_chunk_;
  uwb::PulseTrain rx_chunk_;
  core::EventStream decoded_chunk_;
  EventTee event_tee_;
  std::vector<std::vector<Real>> arv_;
  std::vector<core::EventStream> rx_events_;
  std::vector<std::size_t> events_rx_;
  std::vector<std::size_t> arv_emitted_;
  fault::DecodeHealthMonitor health_;
  std::size_t events_quarantined_{0};
  std::vector<std::size_t> arv_held_;
  std::vector<Real> last_good_arv_;
  std::size_t samples_in_per_channel_{0};
  bool finished_{false};

  void merge_below(Real watermark);
  void run_link_chunk(Real merged_watermark, Real recon_watermark_cap,
                      bool flush);
};

/// Schedules many Sessions over one thread pool. Per-session ordering is
/// strict (chunks run in submission order, never concurrently with each
/// other); cross-session execution is parallel. submit_chunk blocks once
/// `max_pending_chunks` chunks of that session are queued — backpressure
/// towards the producer instead of unbounded memory.
///
/// Fault isolation: a session that throws is quarantined — its pending
/// work is discarded, later submissions to it are counted and dropped,
/// and its error is surfaced through health() — while every other
/// session keeps running untouched. With `rethrow_on_drain` (the
/// default) drain() additionally rethrows the first session error, which
/// single-session callers expect; chaos callers set it to false and read
/// per-session health instead. An optional watchdog thread flags strands
/// whose chunk has been executing for more than `stall_timeout_s`
/// (sticky flag, observation only — the chunk is never interrupted).
class SessionManager {
 public:
  struct Config {
    std::size_t jobs{0};  ///< worker threads; 0 = hardware concurrency
    std::size_t max_pending_chunks{4};  ///< per-session queue bound
    /// drain() rethrows the first session error (pre-quarantine
    /// behaviour). False = errors only surface through health().
    bool rethrow_on_drain{true};
    /// Watchdog: flag a strand whose single chunk/finish call has been
    /// running longer than this (wall-clock seconds; 0 = no watchdog).
    Real stall_timeout_s{0.0};
  };

  explicit SessionManager(const Config& config);
  ~SessionManager();

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  using SessionId = std::size_t;

  /// Per-session degradation state, readable any time.
  struct SessionHealth {
    bool quarantined{false};
    std::string error;  ///< what() of the quarantining exception
    std::uint64_t chunks_discarded{0};  ///< dropped by quarantine
    bool stall_flagged{false};  ///< watchdog saw a too-long chunk (sticky)
  };

  /// Registers a session; the manager owns it. The returned id addresses
  /// submissions; the raw pointer stays valid for reading reports after
  /// drain().
  SessionId add(std::unique_ptr<Session> session);

  /// Enqueues a chunk for the session (copies the samples). Blocks while
  /// the session's queue is full. Chunks for a quarantined session are
  /// discarded and counted instead of enqueued — the producer keeps
  /// running against a failed session without blocking or throwing.
  void submit_chunk(SessionId id, std::span<const Real> samples_v);

  /// Enqueues the end-of-stream flush after every queued chunk.
  void submit_finish(SessionId id);

  /// Destroys a completed session and frees its memory: waits for the
  /// strand to go idle (requires every queued chunk/finish to have run
  /// already), then resets the slot's Session. The id stays allocated —
  /// ids are slot indices and are never reused — but submitting to or
  /// reading a released session is a contract violation; health() keeps
  /// answering (quarantine state survives release). Long-running callers
  /// (the ingest daemon) release each finished session so daemon memory
  /// tracks the ACTIVE population, not the total ever served.
  void release(SessionId id);

  /// Blocks until every queued chunk and finish has run. Rethrows the
  /// first session exception if config.rethrow_on_drain is set.
  void drain();

  [[nodiscard]] Session& session(SessionId id);
  [[nodiscard]] SessionHealth health(SessionId id) const;
  [[nodiscard]] std::size_t quarantined_count() const;
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t jobs() const;

 private:
  struct Slot {
    std::unique_ptr<Session> session;  ///< null once released
    std::deque<std::vector<Real>> queue;
    bool finish_pending{false};
    bool active{false};  ///< a worker is currently running this strand
    bool quarantined{false};
    std::string error;
    std::uint64_t discarded{0};
    /// Watchdog view of the in-flight call: run start in steady-clock
    /// ticks (running == true while a chunk/finish executes).
    bool running{false};
    std::chrono::steady_clock::time_point run_start{};
    bool stall_flagged{false};
  };

  Config config_;
  std::unique_ptr<ThreadPool> pool_;
  mutable std::mutex mu_;
  std::condition_variable cv_space_;
  std::condition_variable cv_idle_;
  std::vector<std::unique_ptr<Slot>> slots_;
  std::exception_ptr first_error_;
  std::thread watchdog_;
  std::condition_variable cv_watchdog_;
  bool stopping_{false};

  void schedule_locked(SessionId id);
  void run_strand(SessionId id);
  void quarantine(Slot& slot, std::exception_ptr err, const char* what);
  void watchdog_loop();
};

}  // namespace datc::runtime
